// Fieldupdate: the paper's core claim is that a programmable BIST unit
// "could accommodate changes in the test algorithm with no impact on
// the hardware". This example plays out that scenario: a part ships
// with March C loaded; a new data-retention failure mechanism is found
// at the fab; the test program is upgraded to March C+ — and the
// comparison shows the microcode controller hardware is bit-for-bit
// identical, while the hardwired baseline has to be re-synthesised into
// a different (larger) netlist.
package main

import (
	"fmt"
	"log"

	mbist "repro"
	"repro/internal/faults"
	"repro/internal/hardbist"
	"repro/internal/march"
	"repro/internal/microbist"
)

// mustMem exits on facade constructor errors; this example hardwires
// valid geometry and faults.
func mustMem(m mbist.Memory, err error) mbist.Memory {
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	log.SetFlags(0)
	lib := mbist.TechLibrary()
	hwCfg := microbist.HWConfig{Slots: 28, AddrBits: 10, Width: 1, Ports: 1,
		ScanOnlyStorage: true, DelayTimerBits: 8}

	// Rev A: the part ships testing with March C.
	revA, err := microbist.Assemble(march.MarchC(), microbist.AssembleOpts{})
	if err != nil {
		log.Fatal(err)
	}
	ctrlA, err := microbist.BuildHardware(revA, hwCfg)
	if err != nil {
		log.Fatal(err)
	}
	statsA := ctrlA.Netlist.StatsFor(lib)
	fmt.Printf("rev A: March C  -> %d microcode words, controller %.0f um2\n",
		revA.Len(), statsA.AreaUm2)

	// The fab reports escapes that look like data-retention defects:
	// verify that March C really misses them.
	drf := mbist.Fault{Kind: faults.DRF, Cell: 123, Value: true, Port: faults.AnyPort}
	escaped := mustMem(mbist.NewFaultyMemory(1024, 1, 1, drf))
	res, err := revA.Run(escaped, microbist.ExecOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("       retention defect under March C: detected=%v (an escape)\n", res.Detected())

	// Rev B: upgrade the *program* to March C+ — a scan-chain reload,
	// no silicon change.
	revB, err := microbist.Assemble(march.MarchCPlus(), microbist.AssembleOpts{})
	if err != nil {
		log.Fatal(err)
	}
	ctrlB, err := microbist.BuildHardware(revB, hwCfg)
	if err != nil {
		log.Fatal(err)
	}
	statsB := ctrlB.Netlist.StatsFor(lib)
	fmt.Printf("rev B: March C+ -> %d microcode words, controller %.0f um2\n",
		revB.Len(), statsB.AreaUm2)
	fmt.Printf("       hardware change: %.0f um2 (same netlist, new storage contents)\n",
		statsB.AreaUm2-statsA.AreaUm2)

	caught := mustMem(mbist.NewFaultyMemory(1024, 1, 1, drf))
	res2, err := revB.Run(caught, microbist.ExecOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("       retention defect under March C+: detected=%v\n\n", res2.Detected())

	// The hardwired alternative: a new controller must be synthesised.
	hc, err := hardbist.Generate(march.MarchC(), hardbist.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	hcNet, err := hc.Synthesise()
	if err != nil {
		log.Fatal(err)
	}
	cfgPlus := hardbist.DefaultConfig()
	cfgPlus.DelayTimerBits = 8
	hcp, err := hardbist.Generate(march.MarchCPlus(), cfgPlus)
	if err != nil {
		log.Fatal(err)
	}
	hcpNet, err := hcp.Synthesise()
	if err != nil {
		log.Fatal(err)
	}
	a := hcNet.StatsFor(lib)
	b := hcpNet.StatsFor(lib)
	fmt.Printf("hardwired March C:  %2d states, %.0f um2\n", hc.NumStates(), a.AreaUm2)
	fmt.Printf("hardwired March C+: %2d states, %.0f um2 (re-design: +%.0f um2, new mask set)\n",
		hcp.NumStates(), b.AreaUm2, b.AreaUm2-a.AreaUm2)
}
