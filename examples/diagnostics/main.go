// Diagnostics: the paper motivates programmable BIST with diagnosis and
// process monitoring — the same controller that gives a go/no-go in
// production collects a full fail log in the lab. This example injects
// a coupling fault and a retention fault, captures complete fail logs,
// builds fail bitmaps and classifies the defects.
package main

import (
	"fmt"
	"log"

	mbist "repro"
	"repro/internal/diag"
	"repro/internal/faults"
)

// mustMem exits on facade constructor errors; this example hardwires
// valid geometry and faults.
func mustMem(m mbist.Memory, err error) mbist.Memory {
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	log.SetFlags(0)

	investigate("idempotent coupling <↑;1> aggressor 11 -> victim 21",
		"marchc",
		mbist.Fault{Kind: faults.CFid, Aggressor: 11, Cell: 21, AggVal: true, Value: true, Port: faults.AnyPort})

	investigate("data retention on cell 9 (leaks to 0)",
		"marchc+",
		mbist.Fault{Kind: faults.DRF, Cell: 9, Value: false, Port: faults.AnyPort})

	investigate("address decoder maps address 5 onto address 6",
		"marchc",
		mbist.Fault{Kind: faults.AFMap, Addr: 5, AggAddr: 6, Port: faults.AnyPort})
}

func investigate(title, algName string, f mbist.Fault) {
	const size = 32
	fmt.Printf("=== %s ===\n", title)
	alg, ok := mbist.AlgorithmByName(algName)
	if !ok {
		log.Fatalf("unknown algorithm %q", algName)
	}

	mem := mustMem(mbist.NewFaultyMemory(size, 1, 1, f))
	// MaxFails 0: diagnostic mode, log every miscompare.
	res, err := mbist.Run(mbist.Microcode, alg, mem, mbist.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if res.Pass {
		fmt.Printf("%s did not expose the defect — escalate the test algorithm\n\n", alg.Name)
		return
	}
	fmt.Printf("%s failed %d reads (signature %04x)\n", alg.Name, len(res.Fails), res.Signature)

	d := diag.Classify(res.Fails, alg, size, 1)
	fmt.Printf("classification: %v, implicated cells %v", d.Class, d.Cells)
	if d.RetentionOnly {
		fmt.Print(" — every fail follows a pause: retention defect")
	}
	fmt.Println()

	bm := diag.BuildBitmap(res.Fails, size, 1)
	fmt.Printf("failing addresses: %v\n", bm.FailingAddresses())

	// For a single implicated victim, run the active aggressor probe —
	// the adaptive second pass a programmable BIST unit can execute.
	if d.Class == diag.ClassSingleCell && !d.RetentionOnly {
		probe := mustMem(mbist.NewFaultyMemory(size, 1, 1, f))
		suspects := diag.LocateAggressor(probe, 0, d.Cells[0])
		switch cells := diag.AggressorCells(suspects); {
		case len(cells) == 0:
			fmt.Println("aggressor probe: none — isolated single-cell defect")
		case len(cells) <= 2:
			fmt.Printf("aggressor probe: coupling from cell(s) %v (%v)\n", cells, suspects[0])
		default:
			fmt.Printf("aggressor probe: %d cells implicated — not a coupling defect\n", len(cells))
		}
	}
	fmt.Println()
}
