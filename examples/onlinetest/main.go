// Onlinetest: the paper's conclusion argues the microcode controller's
// flexibility "expands its application from diagnostics to on-line
// testing". This example plays the on-line scenario: a memory holds
// live application data; periodic transparent March C+ tests run
// between workload bursts without disturbing the data, and the test
// catches a data-retention defect that develops mid-life.
package main

import (
	"fmt"
	"log"
	"math/rand"

	mbist "repro"
	"repro/internal/faults"
	"repro/internal/march"
	"repro/internal/transparent"
)

// mustMem exits on facade constructor errors; this example hardwires
// valid geometry and faults.
func mustMem(m mbist.Memory, err error) mbist.Memory {
	if err != nil {
		log.Fatal(err)
	}
	return m
}

const (
	size  = 256
	width = 8
)

func main() {
	log.SetFlags(0)

	tr, err := transparent.Transform(march.MarchCPlus())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on-line test: %s\n  %s\n\n", tr.Name, tr)

	// The "system memory", holding live data. Healthy at first; a
	// retention defect develops at epoch 3 (modelled by swapping in an
	// identically-loaded faulty array).
	rng := rand.New(rand.NewSource(77))
	data := make([]uint64, size)
	for a := range data {
		data[a] = rng.Uint64() & 0xFF
	}
	load := func(m mbist.Memory) {
		for a, v := range data {
			m.Write(0, a, v)
		}
	}

	healthy := mustMem(mbist.NewSRAM(size, width, 1))
	load(healthy)
	defect := mustMem(mbist.NewFaultyMemory(size, width, 1, mbist.Fault{
		Kind: faults.DRF, Cell: 57*width + 2, Value: true, Port: faults.AnyPort,
	}))
	load(defect)

	for epoch := 1; epoch <= 5; epoch++ {
		mem := healthy
		if epoch >= 3 {
			mem = defect
		}

		// Application burst: read-modify-write traffic.
		for i := 0; i < 100; i++ {
			a := rng.Intn(size)
			v := mem.Read(0, a)
			mem.Write(0, a, (v+1)&0xFF)
			data[a] = (data[a] + 1) & 0xFF
			if epoch >= 3 {
				healthy.Write(0, a, data[a]) // keep arrays in step
			} else {
				defect.Write(0, a, data[a])
			}
		}

		// Idle window: run the transparent test in place.
		res, err := tr.Run(mem, 0)
		if err != nil {
			log.Fatal(err)
		}
		status := "healthy"
		if res.Detected() {
			status = "FAULT DETECTED"
		}
		fmt.Printf("epoch %d: signatures %04x/%04x -> %-14s content preserved: %v\n",
			epoch, res.SignaturePredicted, res.SignatureObserved, status, res.ContentPreserved)

		// The application data must have survived the test.
		for a := range data {
			if got := mem.Read(0, a); got != data[a] {
				// A retention fault genuinely corrupts the cell — the
				// test detected it; everything else must be intact.
				if !res.Detected() {
					log.Fatalf("epoch %d: word %d corrupted (%x != %x) without detection",
						epoch, a, got, data[a])
				}
			}
		}
	}
	fmt.Println("\nthe same programmable controller runs production March tests and on-line transparent tests")
}
