// Quickstart: assemble March C for the microcode-based BIST controller,
// run it on a clean memory and on a memory with a stuck-at fault, and
// print the verdicts — the five-minute tour of the library.
package main

import (
	"fmt"
	"log"

	mbist "repro"
	"repro/internal/faults"
	"repro/internal/microbist"
)

// mustMem exits on facade constructor errors; this example hardwires
// valid geometry and faults.
func mustMem(m mbist.Memory, err error) mbist.Memory {
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	log.SetFlags(0)

	// Pick a march algorithm from the library.
	alg, ok := mbist.AlgorithmByName("marchc")
	if !ok {
		log.Fatal("March C missing from the library")
	}
	fmt.Printf("algorithm: %s = %s (%dN ops)\n\n", alg.Name, alg, alg.OpCount())

	// Assemble it into the microcode-based controller's 10-bit ISA.
	// The Repeat instruction folds the algorithm's symmetric half.
	prog, err := microbist.Assemble(alg, microbist.AssembleOpts{
		WordOriented: true, Multiport: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(prog.Listing())

	// Run the BIST on a clean 1K x 1 memory.
	clean := mustMem(mbist.NewSRAM(1024, 1, 1))
	res, err := mbist.Run(mbist.Microcode, alg, clean, mbist.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean memory:  pass=%v, %d memory ops in %d controller cycles\n",
		res.Pass, res.Operations, res.Cycles)

	// Run it on a memory with cell 300 stuck at 1.
	faulty := mustMem(mbist.NewFaultyMemory(1024, 1, 1, mbist.Fault{
		Kind: faults.SA, Cell: 300, Value: true, Port: faults.AnyPort,
	}))
	res, err = mbist.Run(mbist.Microcode, alg, faulty, mbist.RunOptions{MaxFails: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("faulty memory: pass=%v\n", res.Pass)
	for _, f := range res.Fails {
		fmt.Printf("  %v\n", f)
	}
}
