// Multiport: test a word-oriented dual-port register file. The paper's
// trailing microcode instructions (Fig. 2, instructions 8 and 9) repeat
// the whole algorithm for every data background and every port; this
// example shows why both loops are necessary — an intra-word coupling
// fault is invisible under the solid background, and a port-1 read
// fault is invisible through port 0.
package main

import (
	"fmt"
	"log"

	mbist "repro"
	"repro/internal/faults"
	"repro/internal/march"
)

// mustMem exits on facade constructor errors; this example hardwires
// valid geometry and faults.
func mustMem(m mbist.Memory, err error) mbist.Memory {
	if err != nil {
		log.Fatal(err)
	}
	return m
}

const (
	size  = 64
	width = 8
	ports = 2
)

func main() {
	log.SetFlags(0)
	alg, _ := mbist.AlgorithmByName("marchc")
	fmt.Printf("memory: %d x %d bits, %d ports; algorithm %s\n\n", size, width, ports, alg.Name)

	// A state coupling fault between two bits of word 20: bit 1
	// aggresses bit 0. Under the solid background both bits always
	// carry the same value, so the fault never shows; the checkerboard
	// background drives them apart.
	intraWord := mbist.Fault{
		Kind: faults.CFst, Aggressor: 20*width + 1, Cell: 20 * width,
		AggVal: true, Value: true, Port: faults.AnyPort,
	}
	// A read-circuit defect visible only through port 1.
	portFault := mbist.Fault{
		Kind: faults.SA, Cell: 40 * width, Value: true, Port: 1,
	}

	mem := mustMem(mbist.NewFaultyMemory(size, width, ports, intraWord, portFault))
	res, err := mbist.Run(mbist.Microcode, alg, mem, mbist.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full test (all backgrounds, all ports): pass=%v, %d fails, %d cycles\n",
		res.Pass, len(res.Fails), res.Cycles)
	byLoop := map[string]int{}
	for _, f := range res.Fails {
		switch {
		case f.Port == 1:
			byLoop["caught by the port loop (port 1)"]++
		case f.Background > 0:
			byLoop["caught by the background loop (bg > 0)"]++
		default:
			byLoop["caught on the first pass"]++
		}
	}
	for k, v := range byLoop {
		fmt.Printf("  %-42s %d fails\n", k, v)
	}

	// Show the blind spots: the same faults under restricted runs of
	// the reference runner (solid background only / port 0 only).
	fmt.Println("\nrestricted runs on fresh copies of the same faulty memory:")

	m1 := mustMem(mbist.NewFaultyMemory(size, width, ports, intraWord))
	r1, err := march.Run(alg, m1, march.RunOpts{SingleBackground: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  intra-word fault, solid background only: detected=%v (fault hidden)\n", r1.Detected())

	m2 := mustMem(mbist.NewFaultyMemory(size, width, ports, portFault))
	r2, err := march.Run(alg, m2, march.RunOpts{SinglePort: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  port-1 fault, testing port 0 only:       detected=%v (fault hidden)\n", r2.Detected())
}
