package mbist

// Extension benches beyond the paper's tables: the lifecycle
// test-logic comparison (the paper's §1 "overall overhead" claim), the
// scan-load cost sweep (the paper's criticism of ref. [3]), transparent
// BIST (the paper's conclusion's on-line testing application), and the
// gate-level closed-loop simulation speed.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fsmbist"
	"repro/internal/gatesim"
	"repro/internal/hardbist"
	"repro/internal/logicbist"
	"repro/internal/march"
	"repro/internal/memory"
	"repro/internal/microbist"
	"repro/internal/netlist"
	"repro/internal/transparent"
)

// BenchmarkLifecycle quantifies the paper's §1 claim: one programmable
// controller versus a hardwired controller per fabrication-stage
// algorithm.
func BenchmarkLifecycle(b *testing.B) {
	var lc *core.LifecycleCost
	for i := 0; i < b.N; i++ {
		var err error
		lc, err = core.MeasureLifecycle(&netlist.CMOS5SLike)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lc.Saving()*100, "saving%")
	printBench("Lifecycle overhead", lc.String())
}

// BenchmarkLoadCost sweeps the microcode storage size against the
// number of scan loads March A++ needs — quantifying the paper's
// criticism of small-buffer architectures that require "loading the
// necessary microcodes through multiple loads".
func BenchmarkLoadCost(b *testing.B) {
	alg := march.MarchAPlusPlus()
	var rows string
	for i := 0; i < b.N; i++ {
		rows = ""
		for _, slots := range []int{8, 12, 16, 20, 24, 28} {
			lc, err := core.MicrocodeLoadCost(alg, slots)
			if err != nil {
				b.Fatal(err)
			}
			rows += fmt.Sprintf("slots=%-3d program=%d words -> %d load(s), %4d scan cycles total\n",
				slots, lc.ProgramWords, lc.Loads, lc.TotalScanCycles)
		}
	}
	printBench("Scan-load cost, March A++", rows)
}

// BenchmarkTransparent measures the transparent (on-line) test: run
// time and coverage relative to the standard test.
func BenchmarkTransparent(b *testing.B) {
	tr, err := transparent.Transform(march.MarchC())
	if err != nil {
		b.Fatal(err)
	}
	universe := faults.Universe(16, 1, faults.UniverseOpts{})
	var detected, total int
	for i := 0; i < b.N; i++ {
		detected, total = 0, 0
		for _, f := range universe {
			if f.Kind == faults.DRF {
				continue
			}
			total++
			mem := faults.NewInjected(16, 1, 1, f)
			res, err := tr.Run(mem, 0)
			if err != nil {
				b.Fatal(err)
			}
			if res.Detected() {
				detected++
			}
		}
	}
	b.ReportMetric(100*float64(detected)/float64(total), "coverage%")
	printBench("Transparent March C", fmt.Sprintf("%s\ncoverage %d/%d faults\n", tr, detected, total))
}

// BenchmarkGateLevelClosedLoop measures the speed of a complete
// gate-level BIST unit self-testing a memory (the verification
// workhorse behind the area tables).
func BenchmarkGateLevelClosedLoop(b *testing.B) {
	p, err := microbist.Assemble(march.MarchC(), microbist.AssembleOpts{Multiport: true})
	if err != nil {
		b.Fatal(err)
	}
	hw, err := microbist.BuildHardware(p, microbist.HWConfig{
		Slots: p.Len(), AddrBits: 5, Width: 1, Ports: 1, IncludeDatapath: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var cycles int
	for i := 0; i < b.N; i++ {
		mem := memory.NewSRAM(32, 1, 1)
		res, err := gatesim.RunBISTUnit(hw.Netlist, mem, 10000)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Ended || res.Detected() {
			b.Fatalf("gate run ended=%v detected=%v", res.Ended, res.Detected())
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "gate-cycles")
}

// BenchmarkTestability grades both programmable controllers' own logic
// under full-scan random-pattern logic BIST — the paper's §3 point that
// the BIST hardware must itself be testable, with the scan chains as
// stimulus points.
func BenchmarkTestability(b *testing.B) {
	microProg, err := microbist.Assemble(march.MarchC(), microbist.AssembleOpts{WordOriented: true, Multiport: true})
	if err != nil {
		b.Fatal(err)
	}
	microHW, err := microbist.BuildHardware(microProg, microbist.HWConfig{
		Slots: microProg.Len(), AddrBits: 4, Width: 1, Ports: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	fsmProg, err := fsmbist.Compile(march.MarchC(), fsmbist.CompileOpts{WordOriented: true, Multiport: true})
	if err != nil {
		b.Fatal(err)
	}
	fsmHW, err := fsmbist.BuildHardware(fsmProg, fsmbist.HWConfig{
		Slots: fsmProg.Len(), AddrBits: 4, Width: 1, Ports: 1,
	})
	if err != nil {
		b.Fatal(err)
	}

	var rows string
	for i := 0; i < b.N; i++ {
		rows = ""
		for _, c := range []struct {
			name string
			nl   *netlist.Netlist
		}{
			{"microcode controller", microHW.Netlist},
			{"prog-fsm controller", fsmHW.Netlist},
		} {
			res, err := logicbist.RandomPatternCoverage(c.nl, 128, 11)
			if err != nil {
				b.Fatal(err)
			}
			rows += fmt.Sprintf("%-22s %s\n", c.name, res)
		}
	}
	printBench("Controller logic testability", rows)
}

// BenchmarkEncodingAblation compares binary and one-hot state encoding
// for the hardwired controllers — the synthesis-style sensitivity of
// the Table 1 baselines.
func BenchmarkEncodingAblation(b *testing.B) {
	var rows string
	for i := 0; i < b.N; i++ {
		rows = ""
		for _, algf := range []func() march.Algorithm{march.MarchC, march.MarchA} {
			alg := algf()
			for _, oneHot := range []bool{false, true} {
				cfg := hardbist.DefaultConfig()
				cfg.OneHot = oneHot
				c, err := hardbist.Generate(alg, cfg)
				if err != nil {
					b.Fatal(err)
				}
				nl, err := c.Synthesise()
				if err != nil {
					b.Fatal(err)
				}
				s := nl.StatsFor(&netlist.CMOS5SLike)
				enc := "binary "
				if oneHot {
					enc = "one-hot"
				}
				rows += fmt.Sprintf("%-10s %s %3d FFs %8.1f GE %8.0f um2\n",
					alg.Name, enc, s.FlipFlops, s.GE, s.AreaUm2)
			}
		}
	}
	printBench("State-encoding ablation", rows)
}

// BenchmarkStorageSizeSweep is the Table 1 ablation: controller area
// versus microcode storage capacity, full-scan and scan-only.
func BenchmarkStorageSizeSweep(b *testing.B) {
	var rows string
	for i := 0; i < b.N; i++ {
		rows = ""
		for _, slots := range []int{8, 16, 28} {
			for _, scan := range []bool{false, true} {
				hw, err := microbist.BuildHardware(nil, microbist.HWConfig{
					Slots: slots, AddrBits: 10, Width: 1, Ports: 1, ScanOnlyStorage: scan,
				})
				if err != nil {
					b.Fatal(err)
				}
				s := hw.Netlist.StatsFor(&netlist.CMOS5SLike)
				kind := "full-scan"
				if scan {
					kind = "scan-only"
				}
				rows += fmt.Sprintf("slots=%-3d %-9s %8.1f GE %9.0f um2\n", slots, kind, s.GE, s.AreaUm2)
			}
		}
	}
	printBench("Storage-size ablation", rows)
}
