package mbist

// Paired benchmarks for the two fault-simulation fast paths: the
// bit-parallel (64-lane PPSFP) logic-BIST engine versus the serial
// oracle, and the worker-pool functional-fault grading versus the
// serial path. Run with
//
//	go test -bench='LogicBIST|Grade' -benchtime=1x
//
// to measure the speedups recorded in CHANGES.md / BENCH_pr1.json.

import (
	"runtime"
	"testing"

	"repro/internal/coverage"
	"repro/internal/logicbist"
	"repro/internal/march"
	"repro/internal/microbist"
	"repro/internal/netlist"
)

// microcodeControllerNetlist synthesises the netlist both logic-BIST
// engines are benchmarked on — the same controller the §3 testability
// measurements grade.
func microcodeControllerNetlist(b *testing.B) *netlist.Netlist {
	b.Helper()
	p, err := microbist.Assemble(march.MarchC(), microbist.AssembleOpts{WordOriented: true, Multiport: true})
	if err != nil {
		b.Fatal(err)
	}
	hw, err := microbist.BuildHardware(p, microbist.HWConfig{
		Slots: p.Len(), AddrBits: 4, Width: 1, Ports: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return hw.Netlist
}

const logicBISTBenchPatterns = 64

func BenchmarkLogicBISTSerial(b *testing.B) {
	nl := microcodeControllerNetlist(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res *logicbist.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = logicbist.RandomPatternCoverageSerial(nl, logicBISTBenchPatterns, 11)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Coverage(), "coverage%")
}

func BenchmarkLogicBISTWordParallel(b *testing.B) {
	nl := microcodeControllerNetlist(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res *logicbist.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = logicbist.RandomPatternCoverage(nl, logicBISTBenchPatterns, 11)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Coverage(), "coverage%")
}

func benchGrade(b *testing.B, workers int) {
	alg, _ := AlgorithmByName("marchc")
	b.ReportAllocs()
	var rep *coverage.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = coverage.Grade(alg, coverage.Microcode, coverage.Options{Size: 16, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Overall.Percent(), "coverage%")
}

func BenchmarkGradeSerial(b *testing.B) { benchGrade(b, 1) }

func BenchmarkGradeParallel(b *testing.B) {
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	benchGrade(b, 0)
}
