package mbist

// Paired benchmarks for the two fault-simulation fast paths: the
// bit-parallel (64-lane PPSFP) logic-BIST engine versus the serial
// oracle, and the worker-pool functional-fault grading versus the
// serial path. The bodies live in internal/benchsuite so that
// cmd/mbistbench — the CI regression gate — measures exactly the same
// workloads. Run with
//
//	go test -bench='LogicBIST|Grade' -benchtime=1x
//
// or regenerate the machine-readable snapshot with
//
//	go run ./cmd/mbistbench -out BENCH_pr3.json

import (
	"fmt"
	"testing"

	"repro/internal/benchsuite"
	"repro/internal/obs"
)

func BenchmarkLogicBISTSerial(b *testing.B)       { benchsuite.LogicBISTSerial(b) }
func BenchmarkLogicBISTWordParallel(b *testing.B) { benchsuite.LogicBISTWordParallel(b) }
func BenchmarkGradeSerial(b *testing.B)           { benchsuite.GradeSerial(b) }
func BenchmarkGradeParallel(b *testing.B)         { benchsuite.GradeParallel(b) }
func BenchmarkGradeLane(b *testing.B)             { benchsuite.GradeLane(b) }
func BenchmarkGradeLaneParallel(b *testing.B)     { benchsuite.GradeLaneParallel(b) }

// BenchmarkGradeLaneInterpreted pins the per-op interpreted replay the
// compiled µop kernels are validated against; its gap to
// BenchmarkGradeLane is the compiled-replay speedup (EXPERIMENTS.md
// X12).
func BenchmarkGradeLaneInterpreted(b *testing.B) { benchsuite.GradeLaneInterpreted(b) }

// MetricsOn variants quantify the observability overhead budget: with
// the obs registry enabled, the parallel engines must stay within 2%
// of their uninstrumented counterparts (DESIGN.md "Observability").
func BenchmarkLogicBISTWordParallelMetricsOn(b *testing.B) {
	obs.Enable()
	defer obs.Disable()
	benchsuite.LogicBISTWordParallel(b)
}

func BenchmarkGradeParallelMetricsOn(b *testing.B) {
	obs.Enable()
	defer obs.Disable()
	benchsuite.GradeParallel(b)
}

func BenchmarkGradeLaneMetricsOn(b *testing.B) {
	benchsuite.GradeLaneMetricsOn(b)
}

// BenchmarkGradeSharded measures the 4-shard sweep path (grade slices,
// merge states, rebuild report) against BenchmarkGradeLane's unsharded
// baseline — the overhead mbistd pays for distributable sweeps.
func BenchmarkGradeSharded(b *testing.B) {
	benchsuite.GradeSharded(b)
}

// BenchmarkGradeLaneWidth sweeps the logical lane width of the batch
// engine — 64 (one plane) through 512 (eight planes) — on one worker;
// EXPERIMENTS.md X10 records the resulting speedup curve. Run with
//
//	go test -bench=GradeLaneWidth -benchtime=20x
func BenchmarkGradeLaneWidth(b *testing.B) {
	for _, lanes := range []int{64, 128, 256, 512} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), benchsuite.GradeLaneWidth(lanes))
	}
}
