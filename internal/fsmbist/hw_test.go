package fsmbist

import (
	"testing"

	"repro/internal/fsm"
	"repro/internal/march"
	"repro/internal/netlist"
)

func TestLowerSpecValid(t *testing.T) {
	sp := LowerSpec()
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sp.States) != 7 {
		t.Errorf("lower controller has %d states, want 7 (Fig. 4a)", len(sp.States))
	}
}

// TestLowerSpecWalksComponents drives the behavioural lower FSM through
// each SM component and checks the visited op states and the sweep
// looping match the component's op count.
func TestLowerSpecWalksComponents(t *testing.T) {
	sp := LowerSpec()
	in := sp.Inputs
	inputVec := func(start, lastAddr, hold bool, s SM) uint64 {
		var v uint64
		if start {
			v |= 1 << uint(in.Bit("start"))
		}
		if lastAddr {
			v |= 1 << uint(in.Bit("last_addr"))
		}
		if hold {
			v |= 1 << uint(in.Bit("hold"))
		}
		v |= uint64(s&1) << uint(in.Bit("sm0"))
		v |= uint64(s&2>>1) << uint(in.Bit("sm1"))
		v |= uint64(s&4>>2) << uint(in.Bit("sm2"))
		return v
	}

	for s := SM0; s <= SM7; s++ {
		m := fsm.NewMachine(sp)
		if m.StateName() != "Idle" {
			t.Fatalf("reset state %s", m.StateName())
		}
		m.Step(inputVec(true, false, false, s))
		if m.StateName() != "Reset" {
			t.Fatalf("%v: after start: %s", s, m.StateName())
		}
		m.Step(inputVec(false, false, false, s))

		// Two full address positions (not last, then last).
		for _, last := range []bool{false, true} {
			for op := 0; op < s.NumOps(); op++ {
				wantState := 2 + op // stOp1 + op
				if m.State() != wantState {
					t.Fatalf("%v last=%v op %d: in state %s", s, last, op, m.StateName())
				}
				if !m.Output("active") {
					t.Fatalf("%v: active not asserted in %s", s, m.StateName())
				}
				gotIdx := 0
				if m.Output(opBitName(0)) {
					gotIdx |= 1
				}
				if m.Output(opBitName(1)) {
					gotIdx |= 2
				}
				if gotIdx != op {
					t.Fatalf("%v op %d: op index outputs say %d", s, op, gotIdx)
				}
				m.Step(inputVec(false, last, false, s))
			}
		}
		if m.StateName() != "Done" {
			t.Fatalf("%v: after last address: %s", s, m.StateName())
		}
		// Hold keeps it in Done; release goes to Idle.
		m.Step(inputVec(false, false, true, s))
		if m.StateName() != "Done" {
			t.Fatalf("%v: hold did not hold: %s", s, m.StateName())
		}
		m.Step(inputVec(false, false, false, s))
		if m.StateName() != "Idle" {
			t.Fatalf("%v: release did not idle: %s", s, m.StateName())
		}
	}
}

func TestOpDecodeAgainstPatterns(t *testing.T) {
	for s := SM0; s <= SM7; s++ {
		ops := s.Ops(false)
		for oi, op := range ops {
			r, w, d, inc := opDecode(s, oi)
			if r != (op.Kind == march.Read) || w != (op.Kind == march.Write) {
				t.Errorf("%v op %d: decode r=%v w=%v for %v", s, oi, r, w, op)
			}
			if d != op.Data {
				t.Errorf("%v op %d: relative polarity %v, want %v", s, oi, d, op.Data)
			}
			if inc != (oi == len(ops)-1) {
				t.Errorf("%v op %d: addrInc %v", s, oi, inc)
			}
		}
	}
}

func TestBuildHardwareValidates(t *testing.T) {
	p, err := Compile(march.MarchC(), CompileOpts{WordOriented: true, Multiport: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []HWConfig{
		DefaultHWConfig(),
		{Slots: 8, AddrBits: 10, Width: 8, Ports: 2, IncludeDatapath: true},
		{Slots: 8, AddrBits: 10, Width: 1, Ports: 1, DelayTimerBits: 8},
	} {
		hw, err := BuildHardware(p, cfg)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if err := hw.Netlist.Validate(); err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
	}
}

func TestBufferUsesFullScanCells(t *testing.T) {
	// The circular buffer shifts at functional clock, so it cannot use
	// scan-only storage — the microcode architecture's Table 3 trick
	// does not apply here. All buffer cells must be full-scan.
	p, _ := Compile(march.MarchC(), CompileOpts{})
	hw, err := BuildHardware(p, DefaultHWConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := hw.Netlist.StatsFor(&netlist.CMOS5SLike)
	if s.CellCount[netlist.CellSODFF] != 0 {
		t.Errorf("FSM-based buffer uses %d scan-only cells", s.CellCount[netlist.CellSODFF])
	}
	if s.CellCount[netlist.CellSDFF] != 8*WordBits {
		t.Errorf("buffer cells = %d, want %d", s.CellCount[netlist.CellSDFF], 8*WordBits)
	}
}

func TestSlotsGrowToFitProgram(t *testing.T) {
	p, err := Compile(march.MarchAPlusPlus(), CompileOpts{WordOriented: true, Multiport: true})
	if err != nil {
		t.Fatal(err)
	}
	hw, err := BuildHardware(p, HWConfig{Slots: 4, AddrBits: 6, Width: 1, Ports: 1})
	if err != nil {
		t.Fatal(err)
	}
	if hw.Config.Slots < p.Len() {
		t.Errorf("slots = %d < program %d", hw.Config.Slots, p.Len())
	}
}

func TestAreaIndependentOfProgramContents(t *testing.T) {
	lib := &netlist.CMOS5SLike
	var areas []float64
	for _, algf := range []func() march.Algorithm{march.MarchC, march.MarchA} {
		p, err := Compile(algf(), CompileOpts{})
		if err != nil {
			t.Fatal(err)
		}
		hw, err := BuildHardware(p, HWConfig{Slots: 8, AddrBits: 10, Width: 1, Ports: 1})
		if err != nil {
			t.Fatal(err)
		}
		areas = append(areas, hw.Netlist.StatsFor(lib).AreaUm2)
	}
	if areas[0] != areas[1] {
		t.Errorf("area depends on program contents: %v", areas)
	}
}
