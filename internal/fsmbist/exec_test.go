package fsmbist

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/march"
	"repro/internal/memory"
)

// execVsOracle compiles the algorithm, runs the executor, and requires
// the fail log to match the march reference runner executing the
// *realized* algorithm (identical to the source when no decomposition
// occurred).
func execVsOracle(t *testing.T, alg march.Algorithm, size, width, ports int, fs ...faults.Fault) {
	t.Helper()
	p, err := Compile(alg, CompileOpts{WordOriented: width > 1, Multiport: ports > 1})
	if err != nil {
		t.Fatalf("%s: %v", alg.Name, err)
	}

	memA := faults.NewInjected(size, width, ports, fs...)
	got, err := p.Run(memA, ExecOpts{})
	if err != nil {
		t.Fatalf("%s: %v", alg.Name, err)
	}
	if !got.Terminated {
		t.Fatalf("%s: executor hit the cycle budget", alg.Name)
	}

	memB := faults.NewInjected(size, width, ports, fs...)
	want, err := march.Run(p.Realized, memB, march.RunOpts{
		SinglePort:       ports == 1,
		SingleBackground: width == 1,
	})
	if err != nil {
		t.Fatalf("%s oracle: %v", alg.Name, err)
	}

	if len(got.Fails) != len(want.Fails) {
		t.Fatalf("%s with %v: executor %d fails, oracle %d\nexec: %v\noracle: %v",
			alg.Name, fs, len(got.Fails), len(want.Fails), got.Fails, want.Fails)
	}
	for i := range got.Fails {
		if got.Fails[i] != want.Fails[i] {
			t.Fatalf("%s with %v: fail %d differs\nexec:   %v\noracle: %v",
				alg.Name, fs, i, got.Fails[i], want.Fails[i])
		}
	}
	if got.Operations != want.Operations {
		t.Errorf("%s: executor %d ops, oracle %d", alg.Name, got.Operations, want.Operations)
	}
	if got.PauseCount != want.PauseCount {
		t.Errorf("%s: executor %d pauses, oracle %d", alg.Name, got.PauseCount, want.PauseCount)
	}
}

func TestExecutorMatchesOracleCleanMemory(t *testing.T) {
	for name, f := range march.Library() {
		t.Run(name, func(t *testing.T) {
			execVsOracle(t, f(), 16, 1, 1)
		})
	}
}

func TestExecutorMatchesOracleUnderFaults(t *testing.T) {
	universe := faults.Universe(8, 1, faults.UniverseOpts{})
	algs := []march.Algorithm{
		march.MATSPlus(), march.MarchC(), march.MarchA(),
		march.MarchCPlus(), march.MarchCPlusPlus(), march.MarchB(),
	}
	for _, alg := range algs {
		for _, f := range universe {
			execVsOracle(t, alg, 8, 1, 1, f)
		}
	}
}

func TestExecutorMatchesOracleWordOriented(t *testing.T) {
	universe := faults.Universe(8, 4, faults.UniverseOpts{CellSample: 6, CouplingPairs: 8, AddrSample: 2, Seed: 3})
	for _, f := range universe {
		execVsOracle(t, march.MarchC(), 8, 4, 1, f)
	}
}

func TestExecutorMatchesOracleMultiport(t *testing.T) {
	universe := faults.Universe(8, 2, faults.UniverseOpts{CellSample: 4, CouplingPairs: 4, AddrSample: 2, Ports: 2, Seed: 5})
	for _, f := range universe {
		execVsOracle(t, march.MarchC(), 8, 2, 2, f)
	}
}

func TestExecutorDetectsDRF(t *testing.T) {
	p, err := Compile(march.MarchCPlus(), CompileOpts{})
	if err != nil {
		t.Fatal(err)
	}
	mem := faults.NewInjected(16, 1, 1, faults.Fault{
		Kind: faults.DRF, Cell: 9, Value: true, Port: faults.AnyPort,
	})
	res, err := p.Run(mem, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected() {
		t.Error("FSM-based March C+ missed a DRF")
	}
	if res.PauseCount != 2 {
		t.Errorf("pauses = %d, want 2", res.PauseCount)
	}
}

func TestExecutorCycleOverheadPerComponent(t *testing.T) {
	// March C on N=32 bit-oriented: 10N memory-op cycles + 2 cycles
	// (Reset+Done) per component per pass + 1 terminate-path cycle.
	p, err := Compile(march.MarchC(), CompileOpts{Multiport: true})
	if err != nil {
		t.Fatal(err)
	}
	mem := memory.NewSRAM(32, 1, 1)
	res, err := p.Run(mem, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	wantOps := 10 * 32
	if res.Operations != wantOps {
		t.Errorf("operations = %d, want %d", res.Operations, wantOps)
	}
	wantCycles := wantOps + 2*6 + 1 // 6 components, one port loop-back
	if res.Cycles != wantCycles {
		t.Errorf("cycles = %d, want %d", res.Cycles, wantCycles)
	}
}

func TestExecutorMaxFails(t *testing.T) {
	var fs []faults.Fault
	for c := 0; c < 16; c++ {
		fs = append(fs, faults.Fault{Kind: faults.SA, Cell: c, Value: true, Port: faults.AnyPort})
	}
	p, _ := Compile(march.MarchC(), CompileOpts{})
	mem := faults.NewInjected(16, 1, 1, fs...)
	res, err := p.Run(mem, ExecOpts{MaxFails: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fails) != 4 {
		t.Errorf("fails = %d, want 4", len(res.Fails))
	}
}

func TestExecutorEmptyProgramError(t *testing.T) {
	p := &Program{Name: "empty"}
	if _, err := p.Run(memory.NewSRAM(8, 1, 1), ExecOpts{}); err == nil {
		t.Error("empty program ran")
	}
}

func TestMicrocodeAndFSMArchitecturesAgree(t *testing.T) {
	// Cross-architecture check: for exactly-realizable algorithms, both
	// programmable architectures must produce identical fail logs.
	universe := faults.Universe(8, 1, faults.UniverseOpts{CellSample: 4, CouplingPairs: 6, AddrSample: 2, Seed: 9})
	for _, algf := range []func() march.Algorithm{march.MarchC, march.MarchA, march.MarchCPlus} {
		alg := algf()
		fp, err := Compile(alg, CompileOpts{})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range universe {
			memA := faults.NewInjected(8, 1, 1, f)
			ra, err := fp.Run(memA, ExecOpts{})
			if err != nil {
				t.Fatal(err)
			}
			memB := faults.NewInjected(8, 1, 1, f)
			rb, err := march.Run(alg, memB, march.RunOpts{SinglePort: true, SingleBackground: true})
			if err != nil {
				t.Fatal(err)
			}
			if ra.Detected() != rb.Detected() {
				t.Errorf("%s with %v: FSM %v, oracle %v", alg.Name, f, ra.Detected(), rb.Detected())
			}
		}
	}
}
