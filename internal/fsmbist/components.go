// Package fsmbist implements the paper's programmable FSM-based memory
// BIST architecture (§2.2, Figs 3-5): a parameter-driven 7-state lower
// controller realising the eight standard march components SM0-SM7 of
// Eq. 2, under an upper controller built from a two-dimensional circular
// buffer of 8-bit instructions.
//
// A march algorithm is compiled to a sequence of SM components. Elements
// that are not one of the eight patterns are decomposed into several
// consecutive SM sweeps when possible — the architecture's flexibility
// limit (the paper rates it MEDIUM against the microcode architecture's
// HIGH): decomposition multiplies address sweeps and therefore test
// time, and some op sequences are not realisable at all.
package fsmbist

import (
	"fmt"

	"repro/internal/march"
)

// SM identifies one of the eight standard march components of Eq. 2.
type SM uint8

// The component patterns, written relative to the instruction's base
// data polarity d ("0" = d, "1" = d̄):
//
//	SM0 ⇕(w d)              SM4 ⇕(r d, r d, r d)
//	SM1 ⇕(r d, w d̄)         SM5 ⇕(r d)
//	SM2 ⇕(r d, w d̄, r d̄, w d)  SM6 ⇕(r d, w d̄, w d, w d̄)
//	SM3 ⇕(r d, w d̄, w d)     SM7 ⇕(r d, w d̄, r d̄)
const (
	SM0 SM = iota
	SM1
	SM2
	SM3
	SM4
	SM5
	SM6
	SM7
)

// relOp is an op with polarity relative to the base data d.
type relOp struct {
	kind march.OpKind
	inv  bool // true = complement of d
}

var smPatterns = [8][]relOp{
	SM0: {{march.Write, false}},
	SM1: {{march.Read, false}, {march.Write, true}},
	SM2: {{march.Read, false}, {march.Write, true}, {march.Read, true}, {march.Write, false}},
	SM3: {{march.Read, false}, {march.Write, true}, {march.Write, false}},
	SM4: {{march.Read, false}, {march.Read, false}, {march.Read, false}},
	SM5: {{march.Read, false}},
	SM6: {{march.Read, false}, {march.Write, true}, {march.Write, false}, {march.Write, true}},
	SM7: {{march.Read, false}, {march.Write, true}, {march.Read, true}},
}

// Ops returns the component's op sequence for base polarity d.
func (s SM) Ops(d bool) []march.Op {
	pat := smPatterns[s]
	ops := make([]march.Op, len(pat))
	for i, p := range pat {
		ops[i] = march.Op{Kind: p.kind, Data: p.inv != d}
	}
	return ops
}

// NumOps returns the op count of the component.
func (s SM) NumOps() int { return len(smPatterns[s]) }

func (s SM) String() string { return fmt.Sprintf("SM%d", int(s)) }

// Instruction is one 8-bit word of the upper controller's circular
// buffer (Fig. 5). Field layout (LSB first):
//
//	bit 0   Hold     — hold the lower controller in Done after this
//	                   component (the retention-delay phase)
//	bit 1   AddrDown — reference address order
//	bit 2   DataInc  — step the data-background generator (loop-back
//	                   instruction; no memory sweep)
//	bit 3   DataInv  — base data polarity d
//	bit 4   PortInc  — activate the next port (loop-back path B; no
//	                   memory sweep; terminates the test after the last
//	                   port)
//	bits 5-7 SM      — march component selector
type Instruction struct {
	Hold     bool
	AddrDown bool
	DataInc  bool
	DataInv  bool
	PortInc  bool
	SM       SM
}

// WordBits is the instruction width of the upper controller.
const WordBits = 8

// Encode packs the instruction into its 8-bit binary form.
func (in Instruction) Encode() uint8 {
	var w uint8
	set := func(bit int, v bool) {
		if v {
			w |= 1 << uint(bit)
		}
	}
	set(0, in.Hold)
	set(1, in.AddrDown)
	set(2, in.DataInc)
	set(3, in.DataInv)
	set(4, in.PortInc)
	w |= uint8(in.SM&7) << 5
	return w
}

// Decode unpacks an 8-bit word.
func Decode(w uint8) Instruction {
	get := func(bit int) bool { return w>>uint(bit)&1 == 1 }
	return Instruction{
		Hold:     get(0),
		AddrDown: get(1),
		DataInc:  get(2),
		DataInv:  get(3),
		PortInc:  get(4),
		SM:       SM(w >> 5 & 7),
	}
}

// IsFlow reports whether the instruction is a loop-back word (data
// background or port advance) that performs no memory sweep; its SM
// field is a don't-care, like the "xxx" rows of Fig. 5.
func (in Instruction) IsFlow() bool { return in.DataInc || in.PortInc }

func (in Instruction) String() string {
	if in.DataInc {
		return "loopdata"
	}
	if in.PortInc {
		return "loopport"
	}
	s := in.SM.String()
	if in.AddrDown {
		s += " down"
	} else {
		s += " up"
	}
	s += " d=" + map[bool]string{false: "0", true: "1"}[in.DataInv]
	if in.Hold {
		s += " hold"
	}
	return s
}
