package fsmbist

import (
	"fmt"

	"repro/internal/bist"
	"repro/internal/fsm"
	"repro/internal/logic"
	"repro/internal/march"
	"repro/internal/netlist"
)

// Lower-controller state indices (Fig. 4(a)): Idle, Reset, four R/W
// operation states and Done.
const (
	stIdle = iota
	stReset
	stOp1
	stOp2
	stOp3
	stOp4
	stDone
)

// LowerSpec builds the parameter-driven 7-state lower controller of
// Fig. 4(a). Inputs: start, last_addr, hold, and the 3-bit SM selector
// (sm0..sm2). The number of R/W states visited per address is the op
// count of the selected component.
func LowerSpec() *fsm.Spec {
	in := fsm.NewInputSet("start", "last_addr", "hold", "sm0", "sm1", "sm2")
	smIs := func(s SM) fsm.Guard {
		g := in.If("sm0", s&1 != 0)
		g = g.And(in.If("sm1", s&2 != 0))
		return g.And(in.If("sm2", s&4 != 0))
	}

	// lastOpState returns the operation state in which the component's
	// final op executes.
	lastOpState := func(s SM) int { return stOp1 + s.NumOps() - 1 }

	states := make([]fsm.State, 7)
	states[stIdle] = fsm.State{Name: "Idle", Transitions: []fsm.Transition{
		{Guard: in.If("start", true), Next: stReset},
	}}
	states[stReset] = fsm.State{
		Name:        "Reset",
		Outputs:     map[string]bool{"addr_rst": true},
		Transitions: []fsm.Transition{{Guard: fsm.Always, Next: stOp1}},
	}
	for op := stOp1; op <= stOp4; op++ {
		st := fsm.State{
			Name:    fmt.Sprintf("Op%d", op-stOp1+1),
			Outputs: map[string]bool{"active": true, opBitName(0): (op-stOp1)&1 != 0, opBitName(1): (op-stOp1)&2 != 0},
		}
		for s := SM0; s <= SM7; s++ {
			if lastOpState(s) == op {
				// Final op of the component: loop per address or finish.
				st.Transitions = append(st.Transitions,
					fsm.Transition{Guard: smIs(s).And(in.If("last_addr", true)), Next: stDone},
					fsm.Transition{Guard: smIs(s), Next: stOp1},
				)
			} else if lastOpState(s) > op {
				st.Transitions = append(st.Transitions,
					fsm.Transition{Guard: smIs(s), Next: op + 1},
				)
			}
			// Components with fewer ops never reach this state.
		}
		states[op] = st
	}
	states[stDone] = fsm.State{
		Name:    "Done",
		Outputs: map[string]bool{"done": true},
		Transitions: []fsm.Transition{
			{Guard: in.If("hold", true), Next: stDone},
			{Guard: fsm.Always, Next: stIdle},
		},
	}

	return &fsm.Spec{
		Name:    "fsmbist-lower",
		Inputs:  in,
		Outputs: []string{"active", "done", "addr_rst", opBitName(0), opBitName(1)},
		States:  states,
		Reset:   stIdle,
	}
}

func opBitName(i int) string { return fmt.Sprintf("op_b%d", i) }

// opDecode computes the read/write/data-polarity/address-increment
// controls for a component's op index — the combinational decode beside
// the lower FSM. It is the shared truth between the netlist generator
// and its test.
func opDecode(s SM, opIdx int) (read, write, dataInv, addrInc bool) {
	pat := smPatterns[s]
	if opIdx >= len(pat) {
		return false, false, false, false
	}
	p := pat[opIdx]
	return p.kind == march.Read, p.kind == march.Write, p.inv, opIdx == len(pat)-1
}

// HWConfig sizes the structural model of the programmable FSM-based
// BIST unit.
type HWConfig struct {
	// Slots is the circular-buffer capacity in instructions.
	Slots int
	// AddrBits, Width, Ports describe the memory geometry.
	AddrBits int
	Width    int
	Ports    int
	// IncludeDatapath adds the shared datapath to the netlist.
	IncludeDatapath bool
	// DelayTimerBits adds a retention delay timer.
	DelayTimerBits int
}

// DefaultHWConfig matches the paper's first experiment.
func DefaultHWConfig() HWConfig {
	return HWConfig{Slots: 8, AddrBits: 10, Width: 1, Ports: 1}
}

// Hardware couples the generated netlist with its interface nets.
type Hardware struct {
	Netlist *netlist.Netlist
	Config  HWConfig

	Head                     []netlist.NetID // instruction at the buffer head
	ReadEn, WriteEn, DataInv netlist.NetID
	AddrInc, AddrDown        netlist.NetID
	Done                     netlist.NetID
}

// BuildHardware generates the structural netlist of the programmable
// FSM-based BIST unit (Fig. 3): the 2-D circular buffer (full-scan
// registers — they shift at functional clock for every march component,
// which is why the Table 3 scan-only re-design does not apply here), the
// synthesised 7-state lower controller, the op-decode logic and the
// upper-controller loop-back decode.
func BuildHardware(p *Program, cfg HWConfig) (*Hardware, error) {
	if cfg.Slots <= 0 {
		cfg.Slots = 8
	}
	if p != nil && p.Len() > cfg.Slots {
		cfg.Slots = p.Len()
	}
	if cfg.AddrBits <= 0 {
		return nil, fmt.Errorf("fsmbist: AddrBits must be positive")
	}
	n := cfg.Slots

	nl := netlist.New("prog-fsm-bist")
	hw := &Hardware{Netlist: nl, Config: cfg}

	start := nl.AddInput("start")
	lastAddr := nl.AddInput("last_address")
	lastData := nl.AddInput("last_data")
	lastPort := nl.AddInput("last_port")

	// Circular buffer: n words of 8 bits. The head word drives the
	// lower controller; on "next instruction" every word shifts one
	// position with wrap-around (loop-back path A of Fig. 4(b)).
	rows := make([][]netlist.NetID, n)
	for i := range rows {
		var init []bool
		if p != nil && i < p.Len() {
			enc := p.Instructions[i].Encode()
			init = make([]bool, WordBits)
			for b := 0; b < WordBits; b++ {
				init[b] = enc>>uint(b)&1 == 1
			}
		}
		rows[i] = make([]netlist.NetID, WordBits)
		for b := 0; b < WordBits; b++ {
			iv := false
			if init != nil {
				iv = init[b]
			}
			rows[i][b] = nl.AddFF(netlist.CellSDFF, nl.Const0(), iv)
			nl.SetNetName(rows[i][b], fmt.Sprintf("buf%d[%d]", i, b))
		}
	}
	head := rows[0]
	hw.Head = head

	// Head word field split.
	holdBit, addrDown := head[0], head[1]
	dataInc, dataInv, portInc := head[2], head[3], head[4]
	sm := []netlist.NetID{head[5], head[6], head[7]}

	// Delay timer gates the hold release when configured.
	holdCond := holdBit
	if cfg.DelayTimerBits > 0 {
		timer := nl.BuildCounter("delay", cfg.DelayTimerBits, nl.Const1(), netlist.Invalid, netlist.Invalid)
		holdCond = nl.And2(holdBit, nl.Inv(timer.Terminal))
	}

	// Lower controller.
	lower, err := fsm.SynthesiseIntoWith(LowerSpec(), nl, "lfsm_", map[string]netlist.NetID{
		"start":     start,
		"last_addr": lastAddr,
		"hold":      holdCond,
		"sm0":       sm[0],
		"sm1":       sm[1],
		"sm2":       sm[2],
	})
	if err != nil {
		return nil, err
	}
	active := lower.OutputNet["active"]
	done := lower.OutputNet["done"]
	opb := []netlist.NetID{lower.OutputNet[opBitName(0)], lower.OutputNet[opBitName(1)]}

	// Op decode: (SM, op index) -> read/write/relative polarity/addrInc.
	vars := []netlist.NetID{sm[0], sm[1], sm[2], opb[0], opb[1]}
	mk := func(which int) netlist.NetID {
		tt := logic.NewTruthTable(5)
		for row := 0; row < tt.NumRows(); row++ {
			s := SM(row & 7)
			oi := row >> 3 & 3
			r, w, d, inc := opDecode(s, oi)
			v := [4]bool{r, w, d, inc}[which]
			tt.SetBool(row, v)
		}
		return nl.FromTruthTable(tt, vars)
	}
	readRel, writeRel, dataRel, incRel := mk(0), mk(1), mk(2), mk(3)

	hw.ReadEn = nl.And2(active, readRel)
	hw.WriteEn = nl.And2(active, writeRel)
	hw.DataInv = nl.Xor2(dataRel, dataInv) // relative polarity XOR base d
	hw.AddrInc = nl.And2(active, incRel)
	hw.AddrDown = addrDown
	hw.Done = done

	// Upper-controller loop-back decode. The buffer always rotates
	// through all words (loop-back path A of Fig. 4(b)); the paper's
	// "Checking Condition" register gates the port word: while the
	// background loop is still cycling (checking = 0) the port word is
	// a plain rotation, and only once the last background completed
	// (checking = 1) does it take path B — advance the port or, at the
	// last port, raise the termination condition.
	checking := nl.AddFF(netlist.CellDFF, nl.Const0(), true)
	nl.SetNetName(checking, "checking")
	nl.SetFFInput(checking, nl.Mux2(dataInc, checking, lastData))

	isFlow := nl.Or2(dataInc, portInc)
	shift := nl.Or2(nl.And2(done, nl.Inv(holdCond)), isFlow)
	stepData := nl.And2(dataInc, nl.Inv(lastData))
	portActive := nl.And2(portInc, checking)
	stepPort := nl.And2(portActive, nl.Inv(lastPort))
	testEnd := nl.And2(portActive, lastPort)
	for i := 0; i < n; i++ {
		next := rows[(i+1)%n]
		for b := 0; b < WordBits; b++ {
			nl.SetFFInput(rows[i][b], nl.Mux2(shift, rows[i][b], next[b]))
		}
	}

	nl.AddOutput("read_en", hw.ReadEn)
	nl.AddOutput("write_en", hw.WriteEn)
	nl.AddOutput("data_inv", hw.DataInv)
	nl.AddOutput("addr_inc", hw.AddrInc)
	nl.AddOutput("addr_down", hw.AddrDown)
	nl.AddOutput("addr_rst", lower.OutputNet["addr_rst"])
	nl.AddOutput("done", done)
	nl.AddOutput("step_data", stepData)
	nl.AddOutput("step_port", stepPort)
	nl.AddOutput("test_end", testEnd)

	if cfg.IncludeDatapath {
		ag := bist.BuildAddressGen(nl, cfg.AddrBits, hw.AddrInc, hw.AddrDown, lower.OutputNet["addr_rst"])
		// The port loop restarts the background sequence (loop-back
		// path B of Fig. 4(b)).
		dg := bist.BuildDataGen(nl, cfg.Width, stepData, stepPort, hw.DataInv)
		read := make([]netlist.NetID, cfg.Width)
		for i := range read {
			read[i] = nl.AddInput(fmt.Sprintf("mem_q[%d]", i))
		}
		mismatch := bist.BuildComparator(nl, read, dg.Pattern, hw.ReadEn)
		nl.AddOutput("mismatch", mismatch)
		for i, q := range ag.Q {
			nl.AddOutput(fmt.Sprintf("mem_addr[%d]", i), q)
		}
		for i, d := range dg.Pattern {
			nl.AddOutput(fmt.Sprintf("mem_d[%d]", i), d)
		}
		nl.AddOutput("dp_last_address", ag.Last)
		nl.AddOutput("dp_last_data", dg.Last)
		if cfg.Ports > 1 {
			pq, plast := bist.BuildPortCounter(nl, cfg.Ports, stepPort, netlist.Invalid)
			for i, q := range pq {
				nl.AddOutput(fmt.Sprintf("mem_port[%d]", i), q)
			}
			nl.AddOutput("dp_last_port", plast)
		}
	}

	nl.SweepDead()
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return hw, nil
}
