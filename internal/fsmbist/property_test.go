package fsmbist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/faults"
	"repro/internal/march"
)

// TestRandomAlgorithmEquivalenceProperty fuzzes the compiler: random
// valid march algorithms either fail compilation (flexibility limit) or
// run to a fail log identical to the reference runner executing the
// realized algorithm.
func TestRandomAlgorithmEquivalenceProperty(t *testing.T) {
	universe := faults.Universe(8, 1, faults.UniverseOpts{})
	compiled, rejected := 0, 0
	f := func(seed int64, faultIdx uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		alg := march.Random(rng)
		fault := universe[int(faultIdx)%len(universe)]

		p, err := Compile(alg, CompileOpts{})
		if err != nil {
			rejected++
			return true // a documented flexibility limit, not a bug
		}
		compiled++

		memA := faults.NewInjected(8, 1, 1, fault)
		got, err := p.Run(memA, ExecOpts{})
		if err != nil || !got.Terminated {
			return false
		}
		memB := faults.NewInjected(8, 1, 1, fault)
		want, err := march.Run(p.Realized, memB, march.RunOpts{SinglePort: true, SingleBackground: true})
		if err != nil {
			return false
		}
		if len(got.Fails) != len(want.Fails) || got.Operations != want.Operations {
			return false
		}
		for i := range got.Fails {
			if got.Fails[i] != want.Fails[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
	if compiled == 0 {
		t.Error("every random algorithm was rejected; generator or compiler too restrictive")
	}
	t.Logf("compiled %d, rejected %d (flexibility limit)", compiled, rejected)
}
