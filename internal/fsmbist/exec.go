package fsmbist

import (
	"fmt"

	"repro/internal/bist"
	"repro/internal/march"
	"repro/internal/memory"
)

// ExecOpts tunes the behavioural executor.
type ExecOpts struct {
	// MaxFails caps the fail log (0 = unlimited).
	MaxFails int
	// MaxCycles overrides the runaway-protection budget.
	MaxCycles int
}

// ExecResult is the outcome of running a compiled program.
type ExecResult struct {
	Fails      []march.Fail
	Cycles     int
	Operations int
	PauseCount int
	Signature  uint16
	Terminated bool
}

// Detected reports whether any miscompare occurred.
func (r *ExecResult) Detected() bool { return len(r.Fails) > 0 }

// Run executes the program against the memory: the upper controller
// steps through the circular buffer, the lower 7-state FSM sweeps the
// address space per SM component. Cycle accounting models the lower
// controller: one Reset cycle and one Done cycle per component plus one
// cycle per memory operation; loop-back words take one cycle.
func (p *Program) Run(mem memory.Memory, opts ExecOpts) (*ExecResult, error) {
	if len(p.Instructions) == 0 {
		return nil, fmt.Errorf("fsmbist: empty program")
	}
	addrGen := bist.NewAddressGenerator(mem.Size())
	dataGen := bist.NewDataGenerator(mem.Width())
	portSel := bist.NewPortSelector(mem.Ports())
	analyzer := bist.NewResponseAnalyzer(opts.MaxFails)
	res := &ExecResult{}

	budget := opts.MaxCycles
	if budget == 0 {
		perPass := 2 * len(p.Instructions)
		for _, in := range p.Instructions {
			if !in.IsFlow() {
				perPass += in.SM.NumOps() * mem.Size()
			}
		}
		budget = (perPass+16)*dataGen.Count()*mem.Ports() + 256
	}

	pc := 0
	for res.Cycles < budget {
		in := p.Instructions[pc]

		if in.DataInc {
			res.Cycles++
			if dataGen.Last() {
				dataGen.Reset()
				pc++
			} else {
				dataGen.Step()
				pc = 0
			}
			if pc >= len(p.Instructions) {
				res.Terminated = true
				break
			}
			continue
		}
		if in.PortInc {
			res.Cycles++
			if portSel.Last() {
				res.Terminated = true
				break
			}
			portSel.Step()
			dataGen.Reset()
			pc = 0
			continue
		}

		// Lower controller: Reset, sweep, Done.
		res.Cycles++ // Reset state
		addrGen.Reset(in.AddrDown)
		ops := in.SM.Ops(in.DataInv)
		elem := p.Source[pc]
		for {
			for oi, op := range ops {
				if res.Cycles >= budget {
					res.Fails = analyzer.Fails()
					res.Signature = analyzer.Signature()
					return res, nil
				}
				res.Cycles++
				switch op.Kind {
				case march.Write:
					mem.Write(portSel.Port(), addrGen.Addr(), dataGen.Pattern(op.Data))
					res.Operations++
				case march.Read:
					expected := dataGen.Pattern(op.Data)
					got := mem.Read(portSel.Port(), addrGen.Addr())
					res.Operations++
					analyzer.Compare(got, expected, march.Fail{
						Port:       portSel.Port(),
						Background: dataGen.Background(),
						Element:    elem,
						OpIndex:    oi,
						Addr:       addrGen.Addr(),
					})
					if opts.MaxFails > 0 && len(analyzer.Fails()) >= opts.MaxFails {
						res.Fails = analyzer.Fails()
						res.Signature = analyzer.Signature()
						res.Terminated = true
						return res, nil
					}
				}
			}
			if addrGen.Last() {
				break
			}
			addrGen.Step()
		}
		res.Cycles++ // Done state
		if in.Hold {
			// Hold in Done: the retention delay phase.
			mem.Pause()
			res.PauseCount++
			res.Cycles++
		}
		pc++
		if pc >= len(p.Instructions) {
			res.Terminated = true
			break
		}
	}

	res.Fails = analyzer.Fails()
	res.Signature = analyzer.Signature()
	return res, nil
}
