package fsmbist

import (
	"fmt"

	"repro/internal/march"
)

// Program is a compiled upper-controller instruction sequence.
type Program struct {
	Name         string
	Instructions []Instruction
	// Realized is the march algorithm the program actually executes.
	// When every element maps to a single SM component it equals the
	// source algorithm; decomposed elements appear as several
	// consecutive elements with the same address order.
	Realized march.Algorithm
	// Decomposed reports whether any element needed decomposition —
	// the architecture's flexibility penalty versus the microcode
	// controller.
	Decomposed bool
	// Source maps each instruction to its realized element (-1 for the
	// loop-back flow words).
	Source []int
}

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.Instructions) }

// CompileOpts configures the compiler.
type CompileOpts struct {
	// WordOriented emits the data-background loop-back word.
	WordOriented bool
	// Multiport emits the port loop-back word.
	Multiport bool
}

// Compile translates a march algorithm into SM-component instructions.
// Each element must match one of the eight SM patterns, or decompose
// into a sequence of them; otherwise compilation fails — the
// programmable FSM architecture cannot run the algorithm, in contrast
// to the microcode architecture.
func Compile(a march.Algorithm, opts CompileOpts) (*Program, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	p := &Program{Name: a.Name, Realized: march.Algorithm{Name: a.Name}}

	for ei, e := range a.Elements {
		chunks, err := decompose(e.Ops)
		if err != nil {
			return nil, fmt.Errorf("fsmbist: %s element %d %v: %w", a.Name, ei, e, err)
		}
		if len(chunks) > 1 {
			p.Decomposed = true
		}
		if e.PauseBefore {
			// The retention delay is realised by holding the lower
			// controller in Done after the previous component.
			if len(p.Instructions) == 0 {
				return nil, fmt.Errorf("fsmbist: %s element %d: leading pause not realisable (no previous component to hold)", a.Name, ei)
			}
			p.Instructions[len(p.Instructions)-1].Hold = true
		}
		for ci, ch := range chunks {
			p.Instructions = append(p.Instructions, Instruction{
				AddrDown: e.Order == march.Down,
				DataInv:  ch.d,
				SM:       ch.sm,
			})
			p.Source = append(p.Source, len(p.Realized.Elements))
			p.Realized.Elements = append(p.Realized.Elements, march.Element{
				Order:       e.Order,
				Ops:         ch.sm.Ops(ch.d),
				PauseBefore: e.PauseBefore && ci == 0,
			})
		}
	}

	if opts.WordOriented {
		p.Instructions = append(p.Instructions, Instruction{DataInc: true})
		p.Source = append(p.Source, -1)
	}
	if opts.Multiport {
		p.Instructions = append(p.Instructions, Instruction{PortInc: true})
		p.Source = append(p.Source, -1)
	}

	if err := p.Realized.Validate(); err != nil {
		return nil, fmt.Errorf("fsmbist: realized algorithm inconsistent: %w", err)
	}
	return p, nil
}

// chunk is one SM component of a decomposed element.
type chunk struct {
	sm SM
	d  bool
}

// matchSM finds the component and polarity realising the op sequence
// exactly.
func matchSM(ops []march.Op) (SM, bool, bool) {
	for s := SM0; s <= SM7; s++ {
		if s.NumOps() != len(ops) {
			continue
		}
		for _, d := range []bool{false, true} {
			if opsEqual(s.Ops(d), ops) {
				return s, d, true
			}
		}
	}
	return 0, false, false
}

func opsEqual(a, b []march.Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// decompose splits an op sequence into SM chunks, preferring the
// longest-prefix match at each step (fewest sweeps). It fails when no
// prefix matches any component.
func decompose(ops []march.Op) ([]chunk, error) {
	var out []chunk
	rest := ops
	for len(rest) > 0 {
		matched := false
		for l := min(4, len(rest)); l >= 1; l-- {
			if s, d, ok := matchSM(rest[:l]); ok {
				out = append(out, chunk{sm: s, d: d})
				rest = rest[l:]
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("no SM component matches op prefix of %v", rest)
		}
	}
	return out, nil
}

// Listing renders the program one instruction per line, like Fig. 5.
func (p *Program) Listing() string {
	s := fmt.Sprintf("%s (%d instructions", p.Name, p.Len())
	if p.Decomposed {
		s += ", decomposed"
	}
	s += ")\n"
	for i, in := range p.Instructions {
		s += fmt.Sprintf("%2d: %-16s ; %08b\n", i+1, in.String(), in.Encode())
	}
	return s
}
