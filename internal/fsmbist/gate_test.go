package fsmbist

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/gatesim"
	"repro/internal/march"
	"repro/internal/memory"
)

func buildUnit(t *testing.T, alg march.Algorithm, addrBits, width int) (*Hardware, *Program) {
	t.Helper()
	p, err := Compile(alg, CompileOpts{WordOriented: width > 1, Multiport: true})
	if err != nil {
		t.Fatal(err)
	}
	hw, err := BuildHardware(p, HWConfig{
		Slots: p.Len(), AddrBits: addrBits, Width: width, Ports: 1,
		IncludeDatapath: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return hw, p
}

// TestGateLevelClosedLoop runs the complete programmable FSM-based BIST
// unit — circular buffer, synthesised 7-state lower controller, op
// decode and datapath — closed-loop against a memory and compares the
// observed operation stream with the realized algorithm's canonical
// stream.
func TestGateLevelClosedLoop(t *testing.T) {
	cases := []struct {
		alg   march.Algorithm
		width int
	}{
		{march.MATSPlus(), 1},
		{march.MarchC(), 1},
		{march.MarchA(), 1},
		{march.MarchB(), 1}, // decomposed element
		{march.MarchC(), 4}, // background loop
	}
	const addrBits = 3
	size := 1 << addrBits
	for _, c := range cases {
		t.Run(c.alg.Name, func(t *testing.T) {
			hw, p := buildUnit(t, c.alg, addrBits, c.width)
			mem := memory.NewSRAM(size, c.width, 1)
			want := march.OpStream(p.Realized, size, c.width)

			res, err := gatesim.RunBISTUnit(hw.Netlist, mem, 20*len(want)+500)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Ended {
				t.Fatalf("unit did not raise test_end in %d cycles (%d/%d ops)",
					res.Cycles, len(res.Ops), len(want))
			}
			if res.Detected() {
				t.Fatalf("comparator flagged a clean memory at %v", res.MismatchAddrs)
			}
			if len(res.Ops) != len(want) {
				t.Fatalf("unit issued %d ops, want %d", len(res.Ops), len(want))
			}
			for i := range want {
				got := res.Ops[i]
				if got.Write != want[i].Write || got.Addr != want[i].Addr || got.Data != want[i].Data {
					t.Fatalf("op %d: gate %+v, golden %+v", i, got, want[i])
				}
			}
		})
	}
}

// TestGateLevelMultiport exercises the port loop-back (path B of
// Fig. 4(b)) and the checking-condition register at gate level.
func TestGateLevelMultiport(t *testing.T) {
	const addrBits, width, ports = 3, 2, 2
	size := 1 << addrBits
	alg := march.MarchC()
	p, err := Compile(alg, CompileOpts{WordOriented: true, Multiport: true})
	if err != nil {
		t.Fatal(err)
	}
	hw, err := BuildHardware(p, HWConfig{
		Slots: p.Len(), AddrBits: addrBits, Width: width, Ports: ports,
		IncludeDatapath: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mem := memory.NewSRAM(size, width, ports)
	want := march.OpStreamPorts(p.Realized, size, width, ports)
	res, err := gatesim.RunBISTUnit(hw.Netlist, mem, 20*len(want)+500)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ended || res.Detected() {
		t.Fatalf("clean multiport run: ended=%v mismatches=%v (%d/%d ops)",
			res.Ended, res.MismatchAddrs, len(res.Ops), len(want))
	}
	if len(res.Ops) != len(want) {
		t.Fatalf("unit issued %d ops, want %d", len(res.Ops), len(want))
	}
	for i := range want {
		got := res.Ops[i]
		if got.Write != want[i].Write || got.Port != want[i].Port ||
			got.Addr != want[i].Addr || got.Data != want[i].Data {
			t.Fatalf("op %d: gate %+v, golden %+v", i, got, want[i])
		}
	}
}

func TestGateLevelDetectsFault(t *testing.T) {
	const addrBits = 3
	size := 1 << addrBits
	alg := march.MarchC()
	f := faults.Fault{Kind: faults.TF, Cell: 2, Value: true, Port: faults.AnyPort}

	hw, p := buildUnit(t, alg, addrBits, 1)
	mem := faults.NewInjected(size, 1, 1, f)
	res, err := gatesim.RunBISTUnit(hw.Netlist, mem, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ended || !res.Detected() {
		t.Fatalf("ended=%v detected=%v", res.Ended, res.Detected())
	}

	oracle := faults.NewInjected(size, 1, 1, f)
	want, err := march.Run(p.Realized, oracle, march.RunOpts{SinglePort: true, SingleBackground: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MismatchAddrs) != len(want.Fails) {
		t.Fatalf("gate mismatches %d, oracle fails %d", len(res.MismatchAddrs), len(want.Fails))
	}
	for i, addr := range res.MismatchAddrs {
		if addr != want.Fails[i].Addr {
			t.Errorf("mismatch %d at addr %d, oracle at %d", i, addr, want.Fails[i].Addr)
		}
	}
}
