package fsmbist

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/march"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(w uint8) bool {
		return Decode(w).Encode() == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSMPatternsMatchEq2(t *testing.T) {
	// Spot-check the component definitions against Eq. 2 with d = 0.
	cases := []struct {
		sm   SM
		want string
	}{
		{SM0, "w0"},
		{SM1, "r0 w1"},
		{SM2, "r0 w1 r1 w0"},
		{SM3, "r0 w1 w0"},
		{SM4, "r0 r0 r0"},
		{SM5, "r0"},
		{SM6, "r0 w1 w0 w1"},
		{SM7, "r0 w1 r1"},
	}
	for _, c := range cases {
		var parts []string
		for _, op := range c.sm.Ops(false) {
			parts = append(parts, op.String())
		}
		if got := strings.Join(parts, " "); got != c.want {
			t.Errorf("%v(d=0) = %q, want %q", c.sm, got, c.want)
		}
	}
	// Polarity d=1 complements every op.
	ops := SM1.Ops(true)
	if ops[0].String() != "r1" || ops[1].String() != "w0" {
		t.Errorf("SM1(d=1) = %v %v", ops[0], ops[1])
	}
}

func TestCompileMarchCMatchesFig5(t *testing.T) {
	// Fig. 5: March C compiles to 8 instructions — 6 components plus
	// the data-background and port loop-backs.
	p, err := Compile(march.MarchC(), CompileOpts{WordOriented: true, Multiport: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 8 {
		t.Fatalf("March C compiles to %d instructions, want 8:\n%s", p.Len(), p.Listing())
	}
	if p.Decomposed {
		t.Error("March C should map 1:1 onto SM components")
	}
	want := []struct {
		sm   SM
		down bool
		d    bool
	}{
		{SM0, false, false}, // ⇕(w0)
		{SM1, false, false}, // ⇑(r0,w1)
		{SM1, false, true},  // ⇑(r1,w0)
		{SM1, true, false},  // ⇓(r0,w1)
		{SM1, true, true},   // ⇓(r1,w0)
		{SM5, false, false}, // ⇕(r0)
	}
	for i, w := range want {
		in := p.Instructions[i]
		if in.SM != w.sm || in.AddrDown != w.down || in.DataInv != w.d {
			t.Errorf("instr %d = %v, want %v down=%v d=%v", i+1, in, w.sm, w.down, w.d)
		}
	}
	if !p.Instructions[6].DataInc || !p.Instructions[7].PortInc {
		t.Errorf("loop-back words wrong: %v %v", p.Instructions[6], p.Instructions[7])
	}
}

func TestCompileMarchAUsesSM6AndSM3(t *testing.T) {
	p, err := Compile(march.MarchA(), CompileOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Decomposed {
		t.Error("March A should map 1:1 onto SM components")
	}
	wantSM := []SM{SM0, SM6, SM3, SM6, SM3}
	for i, w := range wantSM {
		if p.Instructions[i].SM != w {
			t.Errorf("instr %d = %v, want %v", i+1, p.Instructions[i].SM, w)
		}
	}
}

func TestCompileMarchBDecomposes(t *testing.T) {
	// March B's 6-op first element is not an SM component; it must
	// decompose into SM2 + SM1.
	p, err := Compile(march.MarchB(), CompileOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Decomposed {
		t.Error("March B compiled without decomposition")
	}
	if p.Instructions[1].SM != SM2 || p.Instructions[2].SM != SM1 {
		t.Errorf("March B element 1 decomposed to %v,%v, want SM2,SM1",
			p.Instructions[1].SM, p.Instructions[2].SM)
	}
	if p.Realized.OpCount() != march.MarchB().OpCount() {
		t.Errorf("March B decomposition changed op count: %d vs %d",
			p.Realized.OpCount(), march.MarchB().OpCount())
	}
}

func TestCompileTripleReadVariants(t *testing.T) {
	// March C++/A++ decompose via SM4 (triple read) + SM0.
	for _, alg := range []march.Algorithm{march.MarchCPlusPlus(), march.MarchAPlusPlus()} {
		p, err := Compile(alg, CompileOpts{})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name, err)
		}
		if !p.Decomposed {
			t.Errorf("%s compiled without decomposition", alg.Name)
		}
		usesSM4 := false
		for _, in := range p.Instructions {
			if !in.IsFlow() && in.SM == SM4 {
				usesSM4 = true
			}
		}
		if !usesSM4 {
			t.Errorf("%s does not use the SM4 triple-read component", alg.Name)
		}
	}
}

func TestCompileRetentionSetsHold(t *testing.T) {
	p, err := Compile(march.MarchCPlus(), CompileOpts{})
	if err != nil {
		t.Fatal(err)
	}
	holds := 0
	for _, in := range p.Instructions {
		if in.Hold {
			holds++
		}
	}
	if holds != 2 {
		t.Errorf("March C+ program has %d hold bits, want 2\n%s", holds, p.Listing())
	}
}

func TestCompileRejectsLeadingPause(t *testing.T) {
	a := march.Algorithm{Name: "leading-pause", Elements: []march.Element{
		{Order: march.Any, Ops: []march.Op{march.W(false)}, PauseBefore: true},
	}}
	if _, err := Compile(a, CompileOpts{}); err == nil {
		t.Error("leading pause compiled; the FSM architecture cannot hold before the first component")
	}
}

func TestCompileAllLibrary(t *testing.T) {
	for name, f := range march.Library() {
		p, err := Compile(f(), CompileOpts{WordOriented: true, Multiport: true})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := p.Realized.Validate(); err != nil {
			t.Errorf("%s realized: %v", name, err)
		}
	}
}

func TestRealizedEqualsSourceWhenExact(t *testing.T) {
	for _, alg := range []march.Algorithm{march.MATSPlus(), march.MarchX(), march.MarchY(), march.MarchC(), march.MarchA(), march.MarchCPlus()} {
		p, err := Compile(alg, CompileOpts{})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name, err)
		}
		if p.Decomposed {
			t.Errorf("%s unexpectedly decomposed", alg.Name)
			continue
		}
		if len(p.Realized.Elements) != len(alg.Elements) {
			t.Errorf("%s realized has %d elements, want %d", alg.Name, len(p.Realized.Elements), len(alg.Elements))
			continue
		}
		for i := range alg.Elements {
			if !p.Realized.Elements[i].Equal(alg.Elements[i]) {
				t.Errorf("%s element %d: realized %v, source %v", alg.Name, i, p.Realized.Elements[i], alg.Elements[i])
			}
		}
	}
}

func TestListing(t *testing.T) {
	p, err := Compile(march.MarchC(), CompileOpts{WordOriented: true, Multiport: true})
	if err != nil {
		t.Fatal(err)
	}
	l := p.Listing()
	for _, frag := range []string{"SM0", "SM1", "SM5", "loopdata", "loopport"} {
		if !strings.Contains(l, frag) {
			t.Errorf("listing missing %q:\n%s", frag, l)
		}
	}
}
