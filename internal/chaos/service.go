package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Service is one mbistd process spawned under chaos control: the
// harness behind the service-level robustness tests that kill the
// daemon mid-job (SIGKILL via -chaos-crash-after-checkpoints, so the
// cut lands at a deterministic journal record) and restart it against
// the same journal directory to assert resume and byte-identical
// reports.
//
// The harness talks to the process only over its public HTTP API and
// observes only its exit status — it asserts what an operator would
// see, not internal state.
type Service struct {
	// URL is the base URL of the process's HTTP API.
	URL string

	cmd    *exec.Cmd
	stderr bytes.Buffer
	mu     sync.Mutex // guards stderr between the copier and Stderr()

	waitOnce sync.Once
	waitDone chan struct{}
	waitErr  error
}

// ServiceOptions configures one spawned mbistd process.
type ServiceOptions struct {
	// Binary is the path of the mbistd binary to spawn. Required.
	Binary string
	// Addr is the listen address. Required (pick one with FreePort);
	// the harness does not parse the child's logs to discover it.
	Addr string
	// JournalDir is passed as -journal-dir when non-empty.
	JournalDir string
	// Args are extra flags appended verbatim, e.g.
	// "-chaos-crash-after-checkpoints", "3".
	Args []string
}

// FreePort reserves an ephemeral localhost port and returns it. The
// port is released before returning, so a raced claim is possible but
// vanishingly unlikely within one test process.
func FreePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port, nil
}

// StartService spawns mbistd and returns once the process is running
// (not necessarily serving yet — follow with WaitReady). The caller
// owns the process: use Stop for a graceful drain, Kill to tear it
// down unconditionally.
func StartService(opts ServiceOptions) (*Service, error) {
	if opts.Binary == "" || opts.Addr == "" {
		return nil, fmt.Errorf("chaos: service needs Binary and Addr")
	}
	args := []string{"-addr", opts.Addr}
	if opts.JournalDir != "" {
		args = append(args, "-journal-dir", opts.JournalDir)
	}
	args = append(args, opts.Args...)
	s := &Service{
		URL:      "http://" + strings.Replace(opts.Addr, "0.0.0.0", "127.0.0.1", 1),
		cmd:      exec.Command(opts.Binary, args...),
		waitDone: make(chan struct{}),
	}
	stderr, err := s.cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := s.cmd.Start(); err != nil {
		return nil, fmt.Errorf("chaos: spawn %s: %w", opts.Binary, err)
	}
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := stderr.Read(buf)
			if n > 0 {
				s.mu.Lock()
				s.stderr.Write(buf[:n])
				s.mu.Unlock()
			}
			if err != nil {
				return
			}
		}
	}()
	return s, nil
}

// Stderr returns everything the process has written to stderr so far.
func (s *Service) Stderr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stderr.String()
}

// Wait blocks until the process exits and returns its exit code. A
// process killed by a signal (the chaos SIGKILL) reports -1.
func (s *Service) Wait(ctx context.Context) (int, error) {
	s.waitOnce.Do(func() {
		go func() {
			s.waitErr = s.cmd.Wait()
			close(s.waitDone)
		}()
	})
	select {
	case <-s.waitDone:
	case <-ctx.Done():
		return 0, fmt.Errorf("chaos: waiting for %s to exit: %w", s.cmd.Path, ctx.Err())
	}
	if s.waitErr == nil {
		return 0, nil
	}
	var exit *exec.ExitError
	if errors.As(s.waitErr, &exit) {
		return exit.ExitCode(), nil
	}
	return 0, s.waitErr
}

// Stop sends SIGTERM (graceful drain) and waits for exit.
func (s *Service) Stop(ctx context.Context) (int, error) {
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return 0, err
	}
	return s.Wait(ctx)
}

// Kill tears the process down unconditionally. Safe to call on an
// already-dead process (teardown path).
func (s *Service) Kill() {
	if s.cmd.Process != nil {
		s.cmd.Process.Kill()
	}
}

// WaitReady polls the healthz endpoint until the process serves it.
func (s *Service) WaitReady(ctx context.Context) error {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.URL+"/v1/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("chaos: %s never became ready: %w (stderr: %s)", s.URL, ctx.Err(), s.Stderr())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Submit posts a job request body and returns the HTTP status and the
// job ID the service assigned (empty unless 202 or 200).
func (s *Service) Submit(ctx context.Context, body string) (int, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	var st struct {
		ID string `json:"id"`
	}
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return resp.StatusCode, "", err
		}
	}
	return resp.StatusCode, st.ID, nil
}

// JobState fetches a job's current state string ("queued", "running",
// "done", "failed", "quarantined").
func (s *Service) JobState(ctx context.Context, id string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("chaos: job %s: status %d", id, resp.StatusCode)
	}
	var st struct {
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", err
	}
	return st.State, nil
}

// WaitJob polls a job until it reaches a terminal state and returns
// that state.
func (s *Service) WaitJob(ctx context.Context, id string) (string, error) {
	for {
		state, err := s.JobState(ctx, id)
		if err != nil {
			return "", err
		}
		switch state {
		case "done", "failed", "quarantined":
			return state, nil
		}
		select {
		case <-ctx.Done():
			return "", fmt.Errorf("chaos: job %s never finished (last state %s): %w", id, state, ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Report fetches a done job's report text.
func (s *Service) Report(ctx context.Context, id string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.URL+"/v1/jobs/"+id+"/report", nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("chaos: report %s: status %d: %s", id, resp.StatusCode, raw)
	}
	return string(raw), nil
}
