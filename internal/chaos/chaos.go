// Package chaos is the grading pipeline's failure-injection harness:
// deterministic fault hooks that panic inside coverage workers, file
// mutilators for checkpoint corruption tests, and netlists that
// legitimately never settle. The injectors are deliberately
// deterministic — keyed on fault index or byte offset, never on time
// or scheduling — so the robustness tests built on them can assert
// byte-identical reports at any worker count.
package chaos

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/netlist"
)

// PanicOn returns a coverage FaultHook that panics every time one of
// the given universe indices is about to be graded. The panic value is
// a pure function of the index, so quarantine verdicts — which record
// the panic message — stay byte-identical across engines, retries and
// worker counts. The hook is safe for concurrent use.
func PanicOn(indices ...int) func(int) {
	target := make(map[int]bool, len(indices))
	for _, i := range indices {
		target[i] = true
	}
	return func(i int) {
		if target[i] {
			panic(fmt.Sprintf("chaos: injected panic at fault %d", i))
		}
	}
}

// PanicOnce returns a FaultHook that panics the first time each of the
// given indices is seen and lets every later attempt through: a
// "flaky" worker failure the retry path must absorb without
// quarantining anything. Safe for concurrent use.
func PanicOnce(indices ...int) func(int) {
	target := make(map[int]bool, len(indices))
	for _, i := range indices {
		target[i] = true
	}
	var mu sync.Mutex
	fired := make(map[int]bool, len(indices))
	return func(i int) {
		if !target[i] {
			return
		}
		mu.Lock()
		first := !fired[i]
		fired[i] = true
		mu.Unlock()
		if first {
			panic(fmt.Sprintf("chaos: flaky panic at fault %d", i))
		}
	}
}

// CancelAfter returns a FaultHook that invokes cancel once n hook
// calls have happened: mid-run cancellation at a reproducible point in
// the grading workload. Safe for concurrent use.
func CancelAfter(n int, cancel func()) func(int) {
	var mu sync.Mutex
	seen := 0
	return func(int) {
		mu.Lock()
		seen++
		hit := seen == n
		mu.Unlock()
		if hit {
			cancel()
		}
	}
}

// Chain composes hooks left to right into one FaultHook.
func Chain(hooks ...func(int)) func(int) {
	return func(i int) {
		for _, h := range hooks {
			h(i)
		}
	}
}

// FlipByte XORs the byte at offset with 0xff in place — the minimal
// corruption a checksummed checkpoint must catch. A negative offset
// counts from the end of the file.
func FlipByte(path string, offset int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if offset < 0 {
		offset += int64(len(data))
	}
	if offset < 0 || offset >= int64(len(data)) {
		return fmt.Errorf("chaos: offset %d outside %d-byte file %s", offset, len(data), path)
	}
	data[offset] ^= 0xff
	return os.WriteFile(path, data, 0o600)
}

// Truncate cuts the file to its first keep bytes, simulating a write
// torn by a crash (which the atomic rename-on-write protocol prevents
// for real checkpoints — this mutilates the finished file directly).
func Truncate(path string, keep int64) error {
	return os.Truncate(path, keep)
}

// Oscillator builds x = INV(x): the smallest netlist whose relaxation
// settle can never reach a fixpoint, for driving the gatesim
// non-convergence watchdog.
func Oscillator() *netlist.Netlist {
	n := netlist.New("chaos-osc")
	a := n.AddInput("a")
	x := n.Add(netlist.CellInv, a)
	n.SetGateInput(x, 0, x)
	n.AddOutput("x", x)
	return n
}
