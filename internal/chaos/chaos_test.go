package chaos_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/chaos"
	"repro/internal/coverage"
	"repro/internal/faults"
	"repro/internal/gatesim"
	"repro/internal/march"
	"repro/internal/resilience"
)

func marchC(t *testing.T) march.Algorithm {
	t.Helper()
	alg, ok := march.ByName("marchc")
	if !ok {
		t.Fatal("library lacks marchc")
	}
	return alg
}

func reportJSON(t *testing.T, rep *coverage.Report) []byte {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return b
}

// universeSize mirrors Grade's enumeration for the test geometry.
func universeSize(size int) int {
	return len(faults.Universe(size, 1, faults.UniverseOpts{Ports: 1}))
}

// TestQuarantineDeterminism injects always-panicking faults spanning
// three lane batches and asserts the same panic set yields the same
// byte-identical report on both engines at every worker count: the
// quarantine list is sorted, stackless and excluded from the coverage
// tallies, and no other verdict is disturbed.
func TestQuarantineDeterminism(t *testing.T) {
	alg := marchC(t)
	n := universeSize(16)
	targets := []int{3, 63, 64, 127}
	for _, i := range targets {
		if i >= n {
			t.Fatalf("universe has only %d faults, target %d out of range", n, i)
		}
	}

	var golden []byte
	for _, engine := range []coverage.Engine{coverage.EngineAuto, coverage.EngineScalar} {
		for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
			opts := coverage.Options{
				Size: 16, Workers: w, Engine: engine,
				FaultHook: chaos.PanicOn(targets...),
			}
			rep, err := coverage.Grade(alg, coverage.Reference, opts)
			if err != nil {
				t.Fatalf("engine %v workers %d: %v", engine, w, err)
			}
			if rep.Partial {
				t.Fatalf("engine %v workers %d: report marked partial", engine, w)
			}
			if len(rep.Quarantined) != len(targets) {
				t.Fatalf("engine %v workers %d: quarantined %d faults, want %d: %+v",
					engine, w, len(rep.Quarantined), len(targets), rep.Quarantined)
			}
			for i, q := range rep.Quarantined {
				if q.Index != targets[i] {
					t.Fatalf("engine %v workers %d: quarantine[%d] = fault %d, want %d",
						engine, w, i, q.Index, targets[i])
				}
				if want := fmt.Sprintf("panic: chaos: injected panic at fault %d", q.Index); q.Err != want {
					t.Fatalf("quarantine err = %q, want %q", q.Err, want)
				}
			}
			if rep.Overall.Total != n-len(targets) {
				t.Fatalf("engine %v workers %d: Overall.Total = %d, want %d (universe %d minus quarantine)",
					engine, w, rep.Overall.Total, n-len(targets), n)
			}
			if rep.Graded != n {
				t.Fatalf("engine %v workers %d: Graded = %d, want %d", engine, w, rep.Graded, n)
			}
			got := reportJSON(t, rep)
			if golden == nil {
				golden = got
			} else if !bytes.Equal(golden, got) {
				t.Fatalf("engine %v workers %d: report diverged from first configuration:\n%s\nvs\n%s",
					engine, w, golden, got)
			}
		}
	}
}

// TestFlakyPanicIsRetriedNotQuarantined injects panics that fire only
// on the first grading attempt per fault: the retry path must absorb
// them and produce a report byte-identical to an unpoisoned run, with
// nothing quarantined.
func TestFlakyPanicIsRetriedNotQuarantined(t *testing.T) {
	alg := marchC(t)
	clean, err := coverage.Grade(alg, coverage.Reference, coverage.Options{Size: 16, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	goldenJSON := reportJSON(t, clean)
	for _, engine := range []coverage.Engine{coverage.EngineAuto, coverage.EngineScalar} {
		for _, w := range []int{1, 2} {
			opts := coverage.Options{
				Size: 16, Workers: w, Engine: engine,
				FaultHook: chaos.PanicOnce(5, 70),
			}
			rep, err := coverage.Grade(alg, coverage.Reference, opts)
			if err != nil {
				t.Fatalf("engine %v workers %d: %v", engine, w, err)
			}
			if len(rep.Quarantined) != 0 {
				t.Fatalf("engine %v workers %d: flaky faults quarantined: %+v", engine, w, rep.Quarantined)
			}
			if got := reportJSON(t, rep); !bytes.Equal(goldenJSON, got) {
				t.Fatalf("engine %v workers %d: report differs from unpoisoned run", engine, w)
			}
		}
	}
}

// TestMidRunCancellationEmitsValidPartialReport cancels the context
// from inside the workload and checks the partial report is internally
// consistent, the error wraps context.Canceled, and the final
// checkpoint flushed on the way out matches the report.
func TestMidRunCancellationEmitsValidPartialReport(t *testing.T) {
	alg := marchC(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last *coverage.State
	opts := coverage.Options{
		Size: 16, Workers: 2, Engine: coverage.EngineScalar,
		FaultHook:       chaos.CancelAfter(40, cancel),
		Checkpoint:      func(s *coverage.State) { last = s },
		CheckpointEvery: 1 << 30, // only the final flush fires
	}
	rep, err := coverage.GradeContext(ctx, alg, coverage.Reference, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("cancelled grade returned a nil report")
	}
	if !rep.Partial {
		t.Fatal("cancelled report not marked Partial")
	}
	if rep.Graded == 0 || rep.Graded >= rep.Universe {
		t.Fatalf("Graded = %d of %d, want a strict mid-run cut", rep.Graded, rep.Universe)
	}
	if rep.Overall.Total != rep.Graded {
		t.Fatalf("Overall.Total = %d, Graded = %d: partial tallies disagree", rep.Overall.Total, rep.Graded)
	}
	sum, det := 0, 0
	for _, r := range rep.ByKind {
		sum += r.Total
		det += r.Detected
	}
	if sum != rep.Overall.Total || det != rep.Overall.Detected {
		t.Fatalf("ByKind sums (%d/%d) disagree with Overall %v", det, sum, rep.Overall)
	}
	if len(rep.Missed)+rep.Overall.Detected != rep.Overall.Total {
		t.Fatalf("missed %d + detected %d != total %d", len(rep.Missed), rep.Overall.Detected, rep.Overall.Total)
	}
	if last == nil {
		t.Fatal("no final checkpoint flushed on cancellation")
	}
	if got := last.GradedCount(); got != rep.Graded {
		t.Fatalf("final checkpoint has %d graded faults, report says %d", got, rep.Graded)
	}
}

// TestResumeEquivalence is the kill-and-resume contract: a run that is
// cancelled mid-flight (with quarantined faults in play), persisted
// through the real checkpoint store, loaded back and resumed must
// finish with a report byte-identical to an uninterrupted run under
// the same panic set.
func TestResumeEquivalence(t *testing.T) {
	alg := marchC(t)
	targets := []int{3, 64}
	golden, err := coverage.Grade(alg, coverage.Reference, coverage.Options{
		Size: 16, Workers: 2, FaultHook: chaos.PanicOn(targets...),
	})
	if err != nil {
		t.Fatal(err)
	}
	goldenJSON := reportJSON(t, golden)

	// Interrupted run: same panic set, cancelled mid-workload.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last *coverage.State
	_, err = coverage.GradeContext(ctx, alg, coverage.Reference, coverage.Options{
		Size: 16, Workers: 2,
		FaultHook:       chaos.Chain(chaos.PanicOn(targets...), chaos.CancelAfter(120, cancel)),
		Checkpoint:      func(s *coverage.State) { last = s },
		CheckpointEvery: 16,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	if last == nil {
		t.Fatal("interrupted run flushed no checkpoint")
	}
	if last.Complete() {
		t.Fatal("interrupted run completed before cancellation; cancel point too late for this universe")
	}

	// Round-trip the state through the on-disk checkpoint store.
	path := filepath.Join(t.TempDir(), "state.json")
	const fp = "chaos-resume-test"
	if err := resilience.Save(path, fp, last); err != nil {
		t.Fatal(err)
	}
	var loaded coverage.State
	if err := resilience.Load(path, fp, &loaded); err != nil {
		t.Fatal(err)
	}

	resumed, err := coverage.Grade(alg, coverage.Reference, coverage.Options{
		Size: 16, Workers: 2,
		FaultHook: chaos.PanicOn(targets...),
		Resume:    &loaded,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, resumed); !bytes.Equal(goldenJSON, got) {
		t.Fatalf("resumed report differs from uninterrupted run:\n%s\nvs\n%s", goldenJSON, got)
	}
}

// TestCheckpointMutilationDetected drives the corruption injectors
// over a real grading State: a flipped byte and a torn write must
// surface as ErrCorrupt, a foreign workload as ErrMismatch — never as
// a silently mis-resumed state.
func TestCheckpointMutilationDetected(t *testing.T) {
	st := &coverage.State{
		Graded:   []bool{true, true, false, true, false, false, true, true, true, false},
		Detected: []bool{true, false, false, true, false, false, false, true, true, false},
		Quarantined: []coverage.FaultVerdict{
			{Index: 6, Fault: "SA0(c6)", Err: "panic: chaos"},
		},
	}
	path := filepath.Join(t.TempDir(), "state.json")
	const fp = "chaos-mutilation-test"

	save := func() {
		t.Helper()
		if err := resilience.Save(path, fp, st); err != nil {
			t.Fatal(err)
		}
	}
	save()
	var round coverage.State
	if err := resilience.Load(path, fp, &round); err != nil {
		t.Fatalf("clean round-trip: %v", err)
	}
	if round.GradedCount() != st.GradedCount() || len(round.Quarantined) != 1 {
		t.Fatalf("round-trip lost state: %+v", round)
	}

	if err := chaos.FlipByte(path, -25); err != nil {
		t.Fatal(err)
	}
	if err := resilience.Load(path, fp, &coverage.State{}); !errors.Is(err, resilience.ErrCorrupt) {
		t.Fatalf("flipped byte: err = %v, want ErrCorrupt", err)
	}

	save()
	if err := chaos.Truncate(path, 40); err != nil {
		t.Fatal(err)
	}
	if err := resilience.Load(path, fp, &coverage.State{}); !errors.Is(err, resilience.ErrCorrupt) {
		t.Fatalf("truncated file: err = %v, want ErrCorrupt", err)
	}

	save()
	if err := resilience.Load(path, "another-workload", &coverage.State{}); !errors.Is(err, resilience.ErrMismatch) {
		t.Fatalf("foreign fingerprint: err = %v, want ErrMismatch", err)
	}
}

// TestOscillatorTripsWatchdog feeds the never-settling netlist to both
// simulators and expects the bounded-relaxation watchdog, not a hang.
func TestOscillatorTripsWatchdog(t *testing.T) {
	nl := chaos.Oscillator()
	s, err := gatesim.New(nl)
	if err != nil {
		t.Fatalf("scalar New: %v", err)
	}
	if err := s.Err(); !errors.Is(err, gatesim.ErrUnsettled) {
		t.Fatalf("scalar Err = %v, want ErrUnsettled", err)
	}
	w, err := gatesim.NewWord(nl)
	if err != nil {
		t.Fatalf("word New: %v", err)
	}
	if err := w.Err(); !errors.Is(err, gatesim.ErrUnsettled) {
		t.Fatalf("word Err = %v, want ErrUnsettled", err)
	}
}
