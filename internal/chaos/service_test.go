package chaos_test

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/resilience"
	"repro/internal/sweep"
)

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// mbistdBinary builds cmd/mbistd once per test run and returns its
// path.
func mbistdBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "mbistd-chaos-*")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "mbistd")
		cmd := exec.Command("go", "build", "-o", buildBin, "repro/cmd/mbistd")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build mbistd: %v: %s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildBin
}

func startService(t *testing.T, journalDir string, extra ...string) *chaos.Service {
	t.Helper()
	port, err := chaos.FreePort()
	if err != nil {
		t.Fatal(err)
	}
	s, err := chaos.StartService(chaos.ServiceOptions{
		Binary:     mbistdBinary(t),
		Addr:       fmt.Sprintf("127.0.0.1:%d", port),
		JournalDir: journalDir,
		Args:       extra,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Kill)
	return s
}

// TestServiceCrashRecoveryByteIdentical is the X14 scenario end to
// end, across a real process boundary: mbistd SIGKILLs itself after a
// deterministic number of journaled checkpoints mid-grade, a second
// process on the same journal directory re-enqueues the job, resumes
// it from the last checkpoint, and serves a report byte-identical to
// an uninterrupted in-process run of the same sweep.Spec.
func TestServiceCrashRecoveryByteIdentical(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// The uninterrupted reference, computed in-process by the same
	// library the daemon wraps.
	spec := sweep.Spec{Algs: "marchc,marchx", Size: 32}
	w, err := spec.Workload()
	if err != nil {
		t.Fatal(err)
	}
	reports, err := w.Grade(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := w.RenderText(reports)

	dir := t.TempDir()
	victim := startService(t, dir,
		"-grade-workers", "1",
		"-checkpoint-every", "64",
		"-chaos-crash-after-checkpoints", "3",
	)
	if err := victim.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	code, id, err := victim.Submit(ctx, `{"kind":"grade","key":"x14","grade":{"algs":"marchc,marchx","size":32}}`)
	if err != nil || code != 202 {
		t.Fatalf("submit: code=%d err=%v", code, err)
	}

	// The daemon kills itself (power-cut semantics: SIGKILL, no
	// cleanup) after the third fsync'd checkpoint record.
	exit, err := victim.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if exit != -1 {
		t.Fatalf("victim exit code %d, want -1 (killed by SIGKILL); stderr:\n%s", exit, victim.Stderr())
	}

	// Same journal directory, no crash flag: the job must come back and
	// finish from where the journal left it.
	survivor := startService(t, dir, "-grade-workers", "1", "-checkpoint-every", "64")
	if err := survivor.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	state, err := survivor.WaitJob(ctx, id)
	if err != nil {
		t.Fatalf("%v; survivor stderr:\n%s", err, survivor.Stderr())
	}
	if state != "done" {
		t.Fatalf("recovered job ended %q; survivor stderr:\n%s", state, survivor.Stderr())
	}
	got, err := survivor.Report(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("resumed report diverges from uninterrupted run:\n--- resumed\n%s\n--- uninterrupted\n%s", got, want)
	}

	// The idempotency key survives the crash too: resubmitting on the
	// survivor replays the finished job instead of grading again.
	code, dupID, err := survivor.Submit(ctx, `{"kind":"grade","key":"x14","grade":{"algs":"marchc,marchx","size":32}}`)
	if err != nil || code != 200 || dupID != id {
		t.Fatalf("key replay: code=%d id=%s err=%v, want 200 %s", code, dupID, err, id)
	}

	if exit, err := survivor.Stop(ctx); err != nil || exit != 0 {
		t.Fatalf("survivor drain: exit=%d err=%v; stderr:\n%s", exit, err, survivor.Stderr())
	}
}

// TestServiceRefusesCorruptJournal pins exit code 4: a journal record
// mutilated on disk must keep the daemon from starting.
func TestServiceRefusesCorruptJournal(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	dir := t.TempDir()
	first := startService(t, dir, "-grade-workers", "1")
	if err := first.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	code, id, err := first.Submit(ctx, `{"kind":"grade","grade":{"algs":"mats+","size":16}}`)
	if err != nil || code != 202 {
		t.Fatalf("submit: code=%d err=%v", code, err)
	}
	if state, err := first.WaitJob(ctx, id); err != nil || state != "done" {
		t.Fatalf("job: state=%s err=%v", state, err)
	}
	if exit, err := first.Stop(ctx); err != nil || exit != 0 {
		t.Fatalf("drain: exit=%d err=%v", exit, err)
	}

	// Flip one byte inside the first record of the journal — a complete,
	// fsync'd line whose CRC can no longer verify.
	journal := filepath.Join(dir, "jobs.journal")
	if err := chaos.FlipByte(journal, 20); err != nil {
		t.Fatal(err)
	}
	refused := startService(t, dir)
	exit, err := refused.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if exit != 4 {
		t.Fatalf("exit code %d on a corrupt journal, want 4; stderr:\n%s", exit, refused.Stderr())
	}
	if !strings.Contains(refused.Stderr(), "untrusted journal") {
		t.Errorf("stderr lacks the refusal notice:\n%s", refused.Stderr())
	}
}

// TestServiceRefusesForeignJournal pins the fingerprint check across
// the process boundary: a structurally valid journal written by a
// different owner must be refused with exit code 4, not replayed.
func TestServiceRefusesForeignJournal(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	dir := t.TempDir()
	j, _, err := resilience.OpenJournal(filepath.Join(dir, "jobs.journal"), "some-other-tool/1")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(map[string]string{"op": "accepted", "id": "job-1"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	refused := startService(t, dir)
	exit, err := refused.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if exit != 4 {
		t.Fatalf("exit code %d on a foreign journal, want 4; stderr:\n%s", exit, refused.Stderr())
	}
}
