package coverage

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/march"
	"repro/internal/obs"
)

// Sharded sweeps split one grading workload into independent slices
// that can run on separate workers, processes or machines, then merge
// back into a report byte-identical to the unsharded sweep:
//
//	states := make([]*State, n)
//	for s := range states {
//		states[s], _ = GradeShard(alg, arch, opts, s, n)  // anywhere
//	}
//	merged, _ := MergeStates(states...)
//	rep, _ := ReportFromState(alg, arch, opts, merged)
//
// Each shard grades a contiguous slice of the deterministic fault
// universe and returns a State — the same type Options.Checkpoint
// hands out — so a shard is persisted, shipped and validated with the
// exact machinery mbistcov already uses for interrupt/resume
// (internal/resilience envelopes keyed by Fingerprint). Per-fault
// verdicts are deterministic and independent, so the merged report
// cannot depend on the shard count.

// ShardRange returns the half-open universe slice [lo, hi) that shard
// s of n grades. Slices are contiguous, disjoint, cover the whole
// universe and differ in size by at most one fault.
func ShardRange(universeSize, shard, of int) (lo, hi int) {
	return shard * universeSize / of, (shard + 1) * universeSize / of
}

// GradeShard grades shard `shard` of `of` and returns its State.
func GradeShard(alg march.Algorithm, arch Architecture, opts Options, shard, of int) (*State, error) {
	//mbist:exempt ctxflow compatibility wrapper over GradeShardContext
	return GradeShardContext(context.Background(), alg, arch, opts, shard, of)
}

// GradeShardContext grades one contiguous universe slice under a
// context. The returned State has a verdict for exactly the faults in
// ShardRange(universe, shard, of) — merge all `of` shard states with
// MergeStates and render with ReportFromState. Options.Checkpoint and
// Options.Resume work per shard: a resumed state must cover only
// in-shard faults. On cancellation the partial shard State is returned
// alongside the context error, resumable like any checkpoint.
func GradeShardContext(ctx context.Context, alg march.Algorithm, arch Architecture, opts Options, shard, of int) (*State, error) {
	if of <= 0 {
		return nil, fmt.Errorf("coverage: shard count %d, want at least 1", of)
	}
	if shard < 0 || shard >= of {
		return nil, fmt.Errorf("coverage: shard %d of %d out of range", shard, of)
	}
	opts.normalise()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	universe := cachedUniverse(opts)
	lo, hi := ShardRange(len(universe), shard, of)
	if s := opts.Resume; s != nil {
		if len(s.Graded) != len(universe) {
			return nil, fmt.Errorf("coverage: shard resume state covers %d faults, universe has %d",
				len(s.Graded), len(universe))
		}
		for i, g := range s.Graded {
			if g && (i < lo || i >= hi) {
				return nil, fmt.Errorf("coverage: shard %d/%d resume state grades fault %d outside its slice [%d,%d)",
					shard, of, i, lo, hi)
			}
		}
	}
	r, err := newGradeRun(ctx, alg, arch, opts, universe)
	if err != nil {
		return nil, err
	}
	// Out-of-shard faults are marked resumed but not graded: every
	// engine skips them exactly as it skips checkpoint-settled faults,
	// and the snapshot records verdicts only for this shard's slice.
	for i := range r.resumed {
		if i < lo || i >= hi {
			r.resumed[i] = true
		}
	}
	obs.Active().Counter("coverage.shards_graded").Add(1)
	if err := r.runEngine(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.opts.Checkpoint != nil {
		r.checkpointLocked()
	}
	s := r.snapshotLocked()
	r.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return s, fmt.Errorf("coverage: shard %d/%d of %s on %s cancelled after %d/%d faults: %w",
			shard, of, alg.Name, arch, s.GradedCount(), hi-lo, err)
	}
	return s, nil
}

// MergeStates combines disjoint shard states into one State covering
// their union. All states must span the same universe, and no fault
// may be graded by more than one state — overlap means two shards
// graded the same slice, which is a sharding-plan error, not something
// to paper over by picking a winner.
func MergeStates(states ...*State) (*State, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("coverage: merge of zero shard states")
	}
	n := len(states[0].Graded)
	merged := &State{
		Graded:   make([]bool, n),
		Detected: make([]bool, n),
	}
	for si, s := range states {
		if s == nil {
			return nil, fmt.Errorf("coverage: merge: shard state %d is nil", si)
		}
		if len(s.Graded) != n || len(s.Detected) != len(s.Graded) {
			return nil, fmt.Errorf("coverage: merge: shard state %d covers %d faults, shard state 0 covers %d",
				si, len(s.Graded), n)
		}
		for i, g := range s.Graded {
			if !g {
				continue
			}
			if merged.Graded[i] {
				return nil, fmt.Errorf("coverage: merge: fault %d graded by two shard states (overlapping shards?)", i)
			}
			merged.Graded[i] = true
			merged.Detected[i] = s.Detected[i]
		}
		for _, q := range s.Quarantined {
			if q.Index < 0 || q.Index >= n || !s.Graded[q.Index] {
				return nil, fmt.Errorf("coverage: merge: shard state %d quarantines fault %d outside its graded set",
					si, q.Index)
			}
			merged.Quarantined = append(merged.Quarantined, q)
		}
	}
	sort.Slice(merged.Quarantined, func(a, b int) bool {
		return merged.Quarantined[a].Index < merged.Quarantined[b].Index
	})
	return merged, nil
}

// ReportFromState renders the final report of a completed sweep from
// its merged State without grading anything. The state must be
// complete — for a partial state, resume the sweep with Options.Resume
// instead. The report is byte-identical to the one an unsharded
// Grade of the same workload returns.
func ReportFromState(alg march.Algorithm, arch Architecture, opts Options, s *State) (*Report, error) {
	if s == nil {
		return nil, fmt.Errorf("coverage: report from nil state")
	}
	opts.normalise()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if !s.Complete() {
		return nil, fmt.Errorf("coverage: state grades %d/%d faults; a report needs a complete sweep (missing shards, or resume with Options.Resume)",
			s.GradedCount(), len(s.Graded))
	}
	universe := cachedUniverse(opts)
	opts.Resume = s
	opts.Checkpoint = nil
	//mbist:exempt ctxflow merge is pure in-memory bookkeeping; the run never starts workers
	r, err := newGradeRun(context.Background(), alg, arch, opts, universe)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	rep := r.buildReportLocked()
	r.mu.Unlock()
	return rep, nil
}
