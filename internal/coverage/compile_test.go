package coverage

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/march"
	"repro/internal/obs"
)

// TestCompiledReplayMatchesInterpreted is the acceptance property of
// the compiled replay path: for every architecture and every algorithm
// in the march library, at the narrowest and widest lane widths and at
// serial and GOMAXPROCS worker counts, grading with ReplayCompiled must
// produce a Report byte-identical to ReplayInterpreted — the reference
// the kernels are validated against.
func TestCompiledReplayMatchesInterpreted(t *testing.T) {
	names := make([]string, 0, len(march.Library()))
	for name := range march.Library() {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, arch := range []Architecture{Reference, Microcode, ProgFSM, Hardwired} {
		for _, name := range names {
			alg, _ := march.ByName(name)
			for _, lanes := range []int{64, 512} {
				want, err := Grade(alg, arch, Options{
					Size: 8, Lanes: lanes, Workers: 1, Replay: ReplayInterpreted,
				})
				if err != nil {
					t.Fatalf("%s on %s lanes=%d: interpreted: %v", name, arch, lanes, err)
				}
				for _, workers := range []int{1, 0} {
					got, err := Grade(alg, arch, Options{
						Size: 8, Lanes: lanes, Workers: workers, Replay: ReplayCompiled,
					})
					if err != nil {
						t.Fatalf("%s on %s lanes=%d workers=%d: compiled: %v", name, arch, lanes, workers, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s on %s lanes=%d workers=%d: compiled report differs from interpreted:\ngot  %v\nwant %v",
							name, arch, lanes, workers, got, want)
					}
					if got.String() != want.String() {
						t.Errorf("%s on %s lanes=%d workers=%d: rendered report differs", name, arch, lanes, workers)
					}
				}
			}
		}
	}
}

// TestCompiledReplayResumeQuarantine extends the equivalence property
// through the resilience machinery: with always-panicking faults
// spanning several partition batches (quarantine path) and a mid-run
// checkpoint that a second run resumes from, both replay modes must
// still converge on byte-identical reports — including resuming a
// checkpoint written by the *other* mode, since State is
// replay-agnostic.
func TestCompiledReplayResumeQuarantine(t *testing.T) {
	alg, _ := march.ByName("marchc")
	targets := map[int]bool{3: true, 63: true, 64: true, 127: true}
	hook := func(i int) {
		if targets[i] {
			panic("chaos: injected fault hook panic")
		}
	}
	run := func(replay Replay, resume *State) (*Report, *State) {
		var first *State
		opts := Options{
			Size: 16, Workers: 1, Replay: replay,
			FaultHook:       hook,
			CheckpointEvery: 200,
			Resume:          resume,
			Checkpoint: func(s *State) {
				if first == nil && len(s.Quarantined) > 0 {
					first = s
				}
			},
		}
		rep, err := Grade(alg, Microcode, opts)
		if err != nil {
			t.Fatalf("replay=%d resume=%v: %v", replay, resume != nil, err)
		}
		return rep, first
	}

	repI, ckI := run(ReplayInterpreted, nil)
	repC, ckC := run(ReplayCompiled, nil)
	if len(repI.Quarantined) != len(targets) {
		t.Fatalf("interpreted run quarantined %d faults, want %d", len(repI.Quarantined), len(targets))
	}
	if !reflect.DeepEqual(repC, repI) {
		t.Errorf("compiled report differs from interpreted under quarantine:\ngot  %v\nwant %v", repC, repI)
	}
	if ckI == nil || ckC == nil {
		t.Fatal("no mid-run checkpoint with quarantine entries was captured")
	}

	// Resume every (checkpoint origin, replay mode) pairing; all four
	// must land on the uninterrupted interpreted report.
	for _, tc := range []struct {
		name   string
		replay Replay
		ck     *State
	}{
		{"interpreted from interpreted ckpt", ReplayInterpreted, ckI},
		{"compiled from compiled ckpt", ReplayCompiled, ckC},
		{"compiled from interpreted ckpt", ReplayCompiled, ckI},
		{"interpreted from compiled ckpt", ReplayInterpreted, ckC},
	} {
		got, _ := run(tc.replay, tc.ck)
		if !reflect.DeepEqual(got, repI) {
			t.Errorf("%s: resumed report differs from uninterrupted run", tc.name)
		}
	}
}

// TestInterpretedReplayPinsNoCompile pins the Options.Replay knob: the
// interpreted mode must never compile the stream or dispatch a
// specialized kernel.
func TestInterpretedReplayPinsNoCompile(t *testing.T) {
	reg := obs.Enable()
	defer obs.Disable()
	alg, _ := march.ByName("marchc")
	if _, err := Grade(alg, Microcode, Options{Size: 8, Replay: ReplayInterpreted}); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("coverage.compiled_streams").Value(); n != 0 {
		t.Errorf("interpreted replay compiled %d streams, want 0", n)
	}
	if n := reg.Counter("coverage.fast_kernel_batches").Value(); n != 0 {
		t.Errorf("interpreted replay took %d specialized kernel batches, want 0", n)
	}
	if reg.Counter("coverage.batches_replayed").Value() == 0 {
		t.Error("interpreted replay did not use the batched engine")
	}
	// A clean grade must replay every batch in-lane: panic retries on
	// the interpreted path mean it silently degraded to the scalar
	// engine (correct reports, interpreted-vs-compiled timings bogus).
	if n := reg.Counter("coverage.panic_retries").Value(); n != 0 {
		t.Errorf("interpreted replay fell back to %d scalar panic retries, want 0", n)
	}
}

// TestArenaPoolEviction pins the pool hygiene contract: the pool grows
// toward one arena per distinct batch while under its limit, reuses
// them batch-affine across repeated grades, and is emptied whole when
// the partition artifact cache flushes (its plans own the batch slices
// the arenas are armed with).
func TestArenaPoolEviction(t *testing.T) {
	flushArenas()
	partitionCache.Flush()
	alg, _ := march.ByName("marchc")
	if _, err := Grade(alg, Microcode, Options{Size: 16, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	keys, arenas := arenaPoolStats()
	if keys == 0 || arenas == 0 {
		t.Fatalf("pool empty after a batched grade (keys=%d arenas=%d)", keys, arenas)
	}
	if _, err := Grade(alg, Microcode, Options{Size: 16, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if k2, a2 := arenaPoolStats(); k2 != keys || a2 != arenas {
		t.Errorf("repeat grade grew the pool: keys %d->%d arenas %d->%d", keys, k2, arenas, a2)
	}
	partitionCache.Flush()
	if k, a := arenaPoolStats(); k != 0 || a != 0 {
		t.Errorf("pool not emptied by partition cache flush: keys=%d arenas=%d", k, a)
	}
	universeCache.Flush()
	if k, a := arenaPoolStats(); k != 0 || a != 0 {
		t.Errorf("pool not emptied by universe cache flush: keys=%d arenas=%d", k, a)
	}
}
