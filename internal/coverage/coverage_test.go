package coverage

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/march"
)

func TestGradeReferenceMarchC(t *testing.T) {
	rep, err := Grade(march.MarchC(), Reference, Options{Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	// March C detects 100% of SA, TF, AF and unlinked CFs.
	for _, k := range []faults.Kind{faults.SA, faults.TF, faults.CFin, faults.CFid, faults.CFst, faults.AFNone, faults.AFMap, faults.AFMulti} {
		if r := rep.ByKind[k]; r.Detected != r.Total {
			t.Errorf("March C misses %s faults: %s", k, r)
		}
	}
	// But not DRF (no pause) nor RDF (single reads).
	if r := rep.ByKind[faults.DRF]; r.Detected != 0 {
		t.Errorf("March C detects DRFs without pausing: %s", r)
	}
	if r := rep.ByKind[faults.RDF]; r.Detected != 0 {
		t.Errorf("March C detects RDFs with single reads: %s", r)
	}
}

func TestEnhancementsCloseCoverageGaps(t *testing.T) {
	// C+ adds DRF coverage, C++ adds RDF coverage on top.
	base, err := Grade(march.MarchC(), Reference, Options{Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	plus, err := Grade(march.MarchCPlus(), Reference, Options{Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	pp, err := Grade(march.MarchCPlusPlus(), Reference, Options{Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r := plus.ByKind[faults.DRF]; r.Detected != r.Total {
		t.Errorf("March C+ DRF coverage: %s", r)
	}
	if r := plus.ByKind[faults.RDF]; r.Detected != 0 {
		t.Errorf("March C+ RDF coverage should be zero: %s", r)
	}
	if r := pp.ByKind[faults.DRF]; r.Detected != r.Total {
		t.Errorf("March C++ DRF coverage: %s", r)
	}
	if r := pp.ByKind[faults.RDF]; r.Detected != r.Total {
		t.Errorf("March C++ RDF coverage: %s", r)
	}
	if !(base.Overall.Percent() < plus.Overall.Percent() && plus.Overall.Percent() < pp.Overall.Percent()) {
		t.Errorf("coverage not increasing: %v %v %v", base.Overall, plus.Overall, pp.Overall)
	}
}

func TestAllArchitecturesReachReferenceCoverage(t *testing.T) {
	// The central cross-check: for each algorithm, the three controller
	// architectures must detect exactly the faults the reference runner
	// detects.
	opts := Options{Size: 8}
	for _, algf := range []func() march.Algorithm{march.MarchC, march.MarchCPlus, march.MarchA} {
		alg := algf()
		ref, err := Grade(alg, Reference, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, arch := range []Architecture{Microcode, Hardwired} {
			rep, err := Grade(alg, arch, opts)
			if err != nil {
				t.Fatalf("%s on %s: %v", alg.Name, arch, err)
			}
			if rep.Overall != ref.Overall {
				t.Errorf("%s on %s: %v, reference %v", alg.Name, arch, rep.Overall, ref.Overall)
			}
		}
		// The programmable FSM may decompose (equal-or-better coverage).
		rep, err := Grade(alg, ProgFSM, opts)
		if err != nil {
			t.Fatalf("%s on prog-fsm: %v", alg.Name, err)
		}
		if rep.Overall.Detected < ref.Overall.Detected {
			t.Errorf("%s on prog-fsm: %v below reference %v", alg.Name, rep.Overall, ref.Overall)
		}
	}
}

func TestStaticFaultsNeedMarchSS(t *testing.T) {
	// WDF needs a non-transition write, DRDF needs back-to-back reads:
	// March C detects neither; March SS detects both (and IRF, which
	// any read detects).
	mc, err := Grade(march.MarchC(), Reference, Options{Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := Grade(march.MarchSS(), Reference, Options{Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	// March C's only non-transition write is the initialisation w0
	// landing on the all-zero power-up state, which sensitises exactly
	// the WDF<0w0> half of the class; WDF<1w1> stays undetected.
	if r := mc.ByKind[faults.WDF]; r.Detected != r.Total/2 {
		t.Errorf("March C WDF coverage %s, want exactly the <0w0> half", r)
	}
	if r := mc.ByKind[faults.DRDF]; r.Detected != 0 {
		t.Errorf("March C detects DRDFs without back-to-back reads: %s", r)
	}
	if r := mc.ByKind[faults.IRF]; r.Detected != r.Total {
		t.Errorf("March C misses IRFs: %s", r)
	}
	for _, k := range []faults.Kind{faults.WDF, faults.IRF, faults.DRDF, faults.SA, faults.TF} {
		if r := ss.ByKind[k]; r.Detected != r.Total {
			t.Errorf("March SS misses %s faults: %s", k, r)
		}
	}
}

func TestTripleReadsDetectDRDF(t *testing.T) {
	pp, err := Grade(march.MarchCPlusPlus(), Reference, Options{Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r := pp.ByKind[faults.DRDF]; r.Detected != r.Total {
		t.Errorf("March C++ misses DRDFs: %s", r)
	}
}

func TestMarchGCoversRetentionAndSOF(t *testing.T) {
	g, err := Grade(march.MarchG(), Reference, Options{Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []faults.Kind{faults.DRF, faults.SOF, faults.SA, faults.TF, faults.CFin, faults.CFid} {
		if r := g.ByKind[k]; r.Detected != r.Total {
			t.Errorf("March G misses %s faults: %s", k, r)
		}
	}
}

func TestMATSPlusWeakerThanMarchC(t *testing.T) {
	mats, err := Grade(march.MATSPlus(), Reference, Options{Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := Grade(march.MarchC(), Reference, Options{Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	if mats.Overall.Percent() >= mc.Overall.Percent() {
		t.Errorf("MATS+ %.1f%% >= March C %.1f%%", mats.Overall.Percent(), mc.Overall.Percent())
	}
}

func TestMultiportCoverageNeedsPortLoop(t *testing.T) {
	opts := Options{Size: 8, Ports: 2}
	rep, err := Grade(march.MarchC(), Microcode, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Every port-specific fault must be caught by the port loop.
	for _, f := range rep.Missed {
		if f.Port != faults.AnyPort {
			t.Errorf("port loop missed port-specific fault %v", f)
		}
	}
	// And the microcode controller must match the reference exactly.
	ref, err := Grade(march.MarchC(), Reference, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overall != ref.Overall {
		t.Errorf("microcode multiport %v, reference %v", rep.Overall, ref.Overall)
	}
}

func TestMatrixRenders(t *testing.T) {
	out, err := Matrix([]march.Algorithm{march.MATSPlus(), march.MarchC()}, Reference, Options{Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"MATS+", "March C", "SA", "overall"} {
		if !strings.Contains(out, frag) {
			t.Errorf("matrix missing %q:\n%s", frag, out)
		}
	}
}

func TestRatioPercentEdge(t *testing.T) {
	if (Ratio{}).Percent() != 100 {
		t.Error("empty ratio should be 100%")
	}
	if (Ratio{Detected: 1, Total: 4}).Percent() != 25 {
		t.Error("25% ratio wrong")
	}
}

func TestGradeUnknownArchitecture(t *testing.T) {
	if _, err := Grade(march.MarchC(), Architecture(99), Options{Size: 4}); err == nil {
		t.Error("unknown architecture graded")
	}
}

// TestGradeParallelDeterminism pins the worker-pool contract: any
// worker count produces a Report byte-identical to the serial path —
// same per-kind ratios, same overall ratio, and the same Missed slice
// in the same (universe) order.
func TestGradeParallelDeterminism(t *testing.T) {
	algs := []func() march.Algorithm{march.MarchC, march.MarchCPlus, march.MarchCPlusPlus}
	for _, algf := range algs {
		alg := algf()
		for _, arch := range []Architecture{Reference, Microcode} {
			serial, err := Grade(alg, arch, Options{Size: 8, Workers: 1})
			if err != nil {
				t.Fatalf("%s on %s serial: %v", alg.Name, arch, err)
			}
			for _, workers := range []int{2, 8} {
				par, err := Grade(alg, arch, Options{Size: 8, Workers: workers})
				if err != nil {
					t.Fatalf("%s on %s with %d workers: %v", alg.Name, arch, workers, err)
				}
				if !reflect.DeepEqual(par, serial) {
					t.Errorf("%s on %s: %d-worker report differs from serial", alg.Name, arch, workers)
				}
				if par.String() != serial.String() {
					t.Errorf("%s on %s: %d-worker rendering differs from serial", alg.Name, arch, workers)
				}
			}
		}
	}
}

// TestGradeDefaultsToParallel checks the zero Options value opts into
// the worker pool (Workers defaults to the CPU count, never zero).
func TestGradeDefaultsToParallel(t *testing.T) {
	var o Options
	o.normalise()
	if o.Workers < 1 {
		t.Errorf("normalised Workers = %d, want >= 1", o.Workers)
	}
}
