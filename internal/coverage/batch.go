package coverage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/artifact"
	"repro/internal/faults"
	"repro/internal/march"
	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// The lane-parallel grading engine (PPSFP applied to the behavioural
// memory model). All four architectures emit the same canonical
// operation stream on a fault-free memory, and with MaxFails:1 their
// control flow is data-independent up to the first failing read — a
// faulty run is a prefix of the clean run's stream ending at that read.
// Detection is therefore equivalent to "any read mismatches its
// expected value when the full clean stream is replayed". That lets
// one replay of the captured stream grade a whole batch at once: lane 0
// of a faults.LaneInjected is the good machine and logical lanes
// 1..Lanes-1 each carry one fault; every read compares all lanes
// against the expected value in parallel and accumulates a per-plane
// fail mask.

// captureStream builds the architecture's runner, executes it once over
// a Recorder-wrapped fault-free memory and returns the captured
// operation stream. ok reports whether the capture matches the
// canonical reference stream (march.FullStream on the same geometry) —
// the guard the batched engine requires; a divergent capture (e.g. a
// decomposed prog-FSM program) returns ok=false so the caller falls
// back to the scalar oracle.
func captureStream(alg march.Algorithm, arch Architecture, opts Options) ([]march.StreamOp, bool, error) {
	run, err := buildRunner(alg, arch, opts)
	if err != nil {
		return nil, false, err
	}
	rec := &march.Recorder{Mem: memory.NewSRAM(opts.Size, opts.Width, opts.Ports)}
	detected, err := run(rec)
	if err != nil {
		return nil, false, fmt.Errorf("coverage: %s on %s stream capture: %w", alg.Name, arch, err)
	}
	if detected {
		return nil, false, fmt.Errorf("coverage: %s on %s detected a fail on fault-free memory", alg.Name, arch)
	}
	want := march.FullStream(alg, opts.Size, opts.Width, opts.Ports, opts.Width == 1)
	if !streamsEqual(rec.Ops, want) {
		return nil, false, nil
	}
	return rec.Ops, true, nil
}

// Captured streams (and their verification verdicts, including negative
// ones) are deterministic per workload, so they are content-addressed
// in the artifact cache and shared across Grade calls and service
// requests: matrix sweeps and benchmark loops re-grade the same
// (algorithm, architecture, geometry) many times, and re-running the
// controller plus re-expanding the reference stream dominated the
// per-call allocation budget. Entries are immutable once stored
// (replay only reads the stream).
type streamKey struct {
	algFP              uint64
	arch               Architecture
	size, width, ports int
}

type streamEntry struct {
	ops []march.StreamOp
	ok  bool
}

var streamCache = artifact.New[streamKey, streamEntry]("stream", 0)

// cachedCaptureStream is captureStream memoised on the workload key.
// Errors are never cached (they may be transient panics of a chaos
// hook's making — the artifact cache drops failed builds); verification
// verdicts are, so a decomposed program pays its capture exactly once.
func cachedCaptureStream(alg march.Algorithm, arch Architecture, opts Options) ([]march.StreamOp, bool, error) {
	key := streamKey{
		algFP: march.Fingerprint(alg), arch: arch,
		size: opts.Size, width: opts.Width, ports: opts.Ports,
	}
	e, err := streamCache.Get(key, func() (streamEntry, error) {
		ops, ok, err := captureStream(alg, arch, opts)
		if err != nil {
			return streamEntry{}, err
		}
		return streamEntry{ops: ops, ok: ok}, nil
	})
	if err != nil {
		return nil, false, err
	}
	return e.ops, e.ok, nil
}

func streamsEqual(a, b []march.StreamOp) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// laneScratch is one grading worker's reusable state: the interpreted
// read plane buffer and the lazily built scalar-retry runner. The lane
// arenas themselves live in the batch-affine pool below.
type laneScratch struct {
	reads []uint64
	retry runner
}

// Arenas are recycled across Grade calls through a bounded free-list
// keyed by geometry and plane capacity: a warm arena's fault tables
// already hold the capacity the same workload's batches need, so
// steady-state grading (benchmark loops, matrix sweeps) re-injects into
// retained storage instead of allocating. arenaGet further prefers the
// arena already armed with the requested batch slice — cached partition
// plans hand out stable slices, so the match lets ResetPlanes skip
// re-injection entirely (batch-affine reuse). Arenas suspected of panic
// corruption are never returned.
//
// Keys whose free-list empties keep their (empty, capacity-bearing)
// slice so the steady-state get/put cycle never re-allocates backing
// arrays; dead keys are swept when the pool reaches its limit, and the
// whole pool is flushed whenever the universe or partition artifact
// caches flush: under a heterogeneous job stream (mbistd) dead
// geometries neither pin map keys nor outlive the plans their batches
// came from.
type arenaKey struct {
	size, width, ports, planes int
}

var (
	arenaMu   sync.Mutex
	arenaPool = map[arenaKey][]*faults.LaneInjected{}
	arenaN    int
)

const arenaPoolLimit = 32

func init() {
	universeCache.SetFlushHook(flushArenas)
	partitionCache.SetFlushHook(flushArenas)
}

func arenaGet(k arenaKey, batch []faults.Fault) *faults.LaneInjected {
	arenaMu.Lock()
	defer arenaMu.Unlock()
	list := arenaPool[k]
	n := len(list)
	pick := -1
	for j := n - 1; j >= 0; j-- {
		if list[j].SameBatch(batch) {
			pick = j
			break
		}
	}
	if pick < 0 {
		// No arena is armed with this batch. While the pool has headroom
		// let the caller allocate a fresh arena instead of recycling a
		// mismatched one: the put after the batch grows the pool toward
		// one arena per distinct batch, which is what makes every later
		// get a re-injection-free hit. Only recycle (pay re-injection,
		// save the allocation) once the pool is at capacity.
		if arenaN < arenaPoolLimit || n == 0 {
			return nil
		}
		pick = n - 1
	}
	m := list[pick]
	list[pick] = list[n-1]
	list[n-1] = nil
	arenaPool[k] = list[:n-1]
	arenaN--
	return m
}

func arenaPut(k arenaKey, m *faults.LaneInjected) {
	if m == nil {
		return
	}
	arenaMu.Lock()
	defer arenaMu.Unlock()
	if arenaN >= arenaPoolLimit {
		// Full: this arena is dropped anyway; take the chance to evict
		// keys whose free-lists have drained (dead geometries under a
		// heterogeneous job stream).
		for key, list := range arenaPool {
			if len(list) == 0 {
				delete(arenaPool, key)
			}
		}
		return
	}
	arenaPool[k] = append(arenaPool[k], m)
	arenaN++
}

// flushArenas empties the pool; registered as the flush hook of the
// universe and partition caches, whose lifetimes bound the batches the
// arenas are armed with.
func flushArenas() {
	arenaMu.Lock()
	arenaPool = map[arenaKey][]*faults.LaneInjected{}
	arenaN = 0
	arenaMu.Unlock()
}

// arenaPoolStats reports the pool's key and arena counts (tests).
func arenaPoolStats() (keys, arenas int) {
	arenaMu.Lock()
	defer arenaMu.Unlock()
	return len(arenaPool), arenaN
}

// gradeBatched grades the universe by replaying the captured stream
// over kind-partitioned lane batches of at most opts.Lanes-1 faults
// (see buildPartition). Verdicts commit through each batch's universe
// indices, so the Report — including the Missed ordering — is
// byte-identical to the scalar oracle at any worker count, lane width
// or replay mode: partitioning reorders grading, never the
// universe-ordered verdict assembly. By default the stream is lowered
// to a compiled µop program replayed through capability-gated kernels
// (faults.Replay); Options.Replay can pin the interpreted per-op path,
// which is also the automatic fallback if compilation fails. A panic
// anywhere in a batch (hook, injector or replay) fails only that
// batch: each of its faults is retried individually on the scalar
// oracle and quarantined if it panics again. Cancellation stops the
// claim loop at the next batch boundary.
func (r *gradeRun) gradeBatched(stream []march.StreamOp) error {
	universe := r.universe
	maxPlanes := r.opts.Lanes / 64
	plan := cachedPartition(r.opts, universe)
	var cs *faults.CompiledStream
	reg := obs.Active()
	if r.opts.Replay == ReplayCompiled {
		var err error
		if cs, err = cachedCompiledStream(r.alg, r.opts, stream); err != nil {
			// A verified capture that fails µop validation should be
			// impossible; degrade to the interpreted replay rather than
			// failing the run.
			reg.Counter("coverage.compile_fallbacks").Add(1)
			cs = nil
		}
	}
	if cs != nil {
		reg.Counter("coverage.compiled_streams").Add(1)
	}
	batches := len(plan)
	workers := r.opts.Workers
	if workers > batches {
		workers = batches
	}
	reg.Gauge("coverage.workers").Set(int64(workers))
	reg.Gauge("coverage.lane_width").Set(int64(r.opts.Lanes))
	mBatches := reg.Counter("coverage.batches_replayed")
	mFastKernels := reg.Counter("coverage.fast_kernel_batches")
	mLanes := reg.Span("coverage.batch_lanes")
	mBatch := reg.Span("coverage.batch_ns")
	mFaults := reg.Counter("coverage.faults_graded")

	pendingIn := func(bt *laneBatch) int {
		pending := 0
		for _, ui := range bt.idx {
			if !r.resumed[ui] {
				pending++
			}
		}
		return pending
	}

	akey := arenaKey{size: r.opts.Size, width: r.opts.Width, ports: r.opts.Ports, planes: maxPlanes}

	// gradeOne replays one batch; a panic escapes as a *PanicError for
	// the caller's scalar retry. Arenas are fetched batch-affine from
	// the pool and returned unless the batch panicked (the arena may be
	// mid-mutation).
	gradeOne := func(b int, sc *laneScratch) error {
		bt := &plan[b]
		pending := pendingIn(bt)
		if pending == 0 {
			// Fully settled by the resumed checkpoint: nothing to replay.
			return nil
		}
		t0 := mBatch.Start()
		var fail [faults.MaxPlanes]uint64
		kern := faults.KernelGeneral
		var mem *faults.LaneInjected
		var rerr error
		perr := resilience.Capture(func() {
			if r.opts.FaultHook != nil {
				for _, ui := range bt.idx {
					if !r.resumed[ui] {
						r.opts.FaultHook(int(ui))
					}
				}
			}
			mem = arenaGet(akey, bt.faults)
			if mem == nil {
				mem = faults.NewLaneInjectedPlanes(r.opts.Size, r.opts.Width, r.opts.Ports, maxPlanes, nil)
			}
			mem.ResetPlanes(bt.faults, bt.planes)
			if cs != nil {
				kern, rerr = mem.Replay(cs, &fail)
			} else {
				fail, sc.reads, rerr = replayStream(mem, stream, sc.reads)
			}
		})
		if perr != nil {
			return perr
		}
		arenaPut(akey, mem)
		if rerr != nil {
			return fmt.Errorf("coverage: batch %d (%d faults): %w", b, len(bt.faults), rerr)
		}
		r.commitBatch(bt.idx, &fail)
		mBatch.ObserveSince(t0)
		mBatches.Add(1)
		if cs != nil && kern != faults.KernelGeneral {
			mFastKernels.Add(1)
		}
		mLanes.Observe(int64(len(bt.faults)))
		mFaults.Add(int64(pending))
		return nil
	}

	// runBatch grades one batch, degrading to per-fault scalar retries
	// when the lane replay panics. The scalar fallback runner is per
	// worker, built lazily on first panic and rebuilt after any panic
	// that may have corrupted it. A fault that panics in the scalar loop
	// is itself retried once before quarantine: a wide batch can panic
	// before ever reaching this fault (e.g. an earlier fault's hook blew
	// up first), so the scalar attempt may be the fault's first — the
	// quarantine contract is two panics on the fault itself, matching
	// scalarWorker.
	runBatch := func(sc *laneScratch, b int) error {
		err := gradeOne(b, sc)
		if err == nil {
			return nil
		}
		if _, ok := resilience.AsPanic(err); !ok {
			return err
		}
		r.mRetries.Add(1)
		rebuild := func() error {
			sc.retry, err = buildRunnerFresh(r.alg, r.arch, r.opts)
			return err
		}
		for _, ui := range plan[b].idx {
			i := int(ui)
			if r.resumed[i] {
				continue
			}
			if r.ctx.Err() != nil {
				return nil
			}
			if sc.retry == nil {
				if err := rebuild(); err != nil {
					return err
				}
			}
			d, ferr := r.scalarOne(sc.retry, i)
			if ferr != nil {
				if _, ok := resilience.AsPanic(ferr); !ok {
					return fmt.Errorf("coverage: %s on %s with %v: %w", r.alg.Name, r.arch, universe[i], ferr)
				}
				r.mRetries.Add(1)
				if err := rebuild(); err != nil {
					return err
				}
				if d, ferr = r.scalarOne(sc.retry, i); ferr != nil {
					p, ok := resilience.AsPanic(ferr)
					if !ok {
						return fmt.Errorf("coverage: %s on %s with %v: %w", r.alg.Name, r.arch, universe[i], ferr)
					}
					r.quarantine(i, p)
					sc.retry = nil
					continue
				}
			}
			r.record(i, d)
			mFaults.Add(1)
		}
		return nil
	}

	if workers <= 1 {
		var sc laneScratch
		for b := 0; b < batches; b++ {
			if r.ctx.Err() != nil {
				return nil
			}
			if err := runBatch(&sc, b); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		cursor atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		emu    sync.Mutex
	)
	errBatch := batches
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc laneScratch
			for {
				b := int(cursor.Add(1)) - 1
				if b >= batches || failed.Load() || r.ctx.Err() != nil {
					return
				}
				if err := runBatch(&sc, b); err != nil {
					emu.Lock()
					if b < errBatch {
						errBatch, firstErr = b, err
					}
					emu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// replayStream drives the captured stream through a lane memory and
// returns the accumulated per-plane fail masks: bit b of fail[p] set
// means logical lane p*64+b's value diverged from the expected
// (fault-free) value on some read. reads is a scratch buffer threaded
// through for reuse. The replay exits early once every occupied lane
// has failed; lane 0 failing means the good machine diverged from the
// recorded clean run, which would break the engine's equivalence
// argument, so it is an error.
//
//mbist:hotpath
func replayStream(mem *faults.LaneInjected, stream []march.StreamOp, reads []uint64) ([faults.MaxPlanes]uint64, []uint64, error) {
	np := mem.Planes()
	var occ, fail [faults.MaxPlanes]uint64
	for p := 0; p < np; p++ {
		occ[p] = mem.FaultMaskPlane(p)
	}
	for _, op := range stream {
		switch {
		case op.Pause:
			mem.Pause()
		case op.Write:
			mem.Write(op.Port, op.Addr, op.Data)
		default:
			reads = mem.ReadLanes(op.Port, op.Addr, reads[:0])
			// reads holds np planes per word bit: [bit*np+p].
			i := 0
			for bit := 0; i < len(reads); bit++ {
				var exp uint64
				if op.Data>>uint(bit)&1 == 1 {
					exp = ^uint64(0)
				}
				for p := 0; p < np; p++ {
					fail[p] |= reads[i] ^ exp
					i++
				}
			}
			if fail[0]&1 != 0 {
				return fail, reads, fmt.Errorf("good machine (lane 0) failed at read port %d addr %d", op.Port, op.Addr)
			}
			done := true
			for p := 0; p < np; p++ {
				if fail[p]&occ[p] != occ[p] {
					done = false
					break
				}
			}
			if done {
				return fail, reads, nil
			}
		}
	}
	return fail, reads, nil
}
