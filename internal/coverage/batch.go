package coverage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/artifact"
	"repro/internal/faults"
	"repro/internal/march"
	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// The lane-parallel grading engine (PPSFP applied to the behavioural
// memory model). All four architectures emit the same canonical
// operation stream on a fault-free memory, and with MaxFails:1 their
// control flow is data-independent up to the first failing read — a
// faulty run is a prefix of the clean run's stream ending at that read.
// Detection is therefore equivalent to "any read mismatches its
// expected value when the full clean stream is replayed". That lets
// one replay of the captured stream grade a whole batch at once: lane 0
// of a faults.LaneInjected is the good machine and logical lanes
// 1..Lanes-1 each carry one fault; every read compares all lanes
// against the expected value in parallel and accumulates a per-plane
// fail mask.

// captureStream builds the architecture's runner, executes it once over
// a Recorder-wrapped fault-free memory and returns the captured
// operation stream. ok reports whether the capture matches the
// canonical reference stream (march.FullStream on the same geometry) —
// the guard the batched engine requires; a divergent capture (e.g. a
// decomposed prog-FSM program) returns ok=false so the caller falls
// back to the scalar oracle.
func captureStream(alg march.Algorithm, arch Architecture, opts Options) ([]march.StreamOp, bool, error) {
	run, err := buildRunner(alg, arch, opts)
	if err != nil {
		return nil, false, err
	}
	rec := &march.Recorder{Mem: memory.NewSRAM(opts.Size, opts.Width, opts.Ports)}
	detected, err := run(rec)
	if err != nil {
		return nil, false, fmt.Errorf("coverage: %s on %s stream capture: %w", alg.Name, arch, err)
	}
	if detected {
		return nil, false, fmt.Errorf("coverage: %s on %s detected a fail on fault-free memory", alg.Name, arch)
	}
	want := march.FullStream(alg, opts.Size, opts.Width, opts.Ports, opts.Width == 1)
	if !streamsEqual(rec.Ops, want) {
		return nil, false, nil
	}
	return rec.Ops, true, nil
}

// Captured streams (and their verification verdicts, including negative
// ones) are deterministic per workload, so they are content-addressed
// in the artifact cache and shared across Grade calls and service
// requests: matrix sweeps and benchmark loops re-grade the same
// (algorithm, architecture, geometry) many times, and re-running the
// controller plus re-expanding the reference stream dominated the
// per-call allocation budget. Entries are immutable once stored
// (replay only reads the stream).
type streamKey struct {
	algFP              uint64
	arch               Architecture
	size, width, ports int
}

type streamEntry struct {
	ops []march.StreamOp
	ok  bool
}

var streamCache = artifact.New[streamKey, streamEntry]("stream", 0)

// cachedCaptureStream is captureStream memoised on the workload key.
// Errors are never cached (they may be transient panics of a chaos
// hook's making — the artifact cache drops failed builds); verification
// verdicts are, so a decomposed program pays its capture exactly once.
func cachedCaptureStream(alg march.Algorithm, arch Architecture, opts Options) ([]march.StreamOp, bool, error) {
	key := streamKey{
		algFP: march.Fingerprint(alg), arch: arch,
		size: opts.Size, width: opts.Width, ports: opts.Ports,
	}
	e, err := streamCache.Get(key, func() (streamEntry, error) {
		ops, ok, err := captureStream(alg, arch, opts)
		if err != nil {
			return streamEntry{}, err
		}
		return streamEntry{ops: ops, ok: ok}, nil
	})
	if err != nil {
		return nil, false, err
	}
	return e.ops, e.ok, nil
}

func streamsEqual(a, b []march.StreamOp) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// laneScratch is one grading worker's arena: the lane memory is built
// on the first batch and Reset for every batch after it, and the read
// plane buffer is threaded through the replay, so the steady-state
// batch loop allocates nothing. A panic mid-batch discards the memory —
// it may have been left mid-mutation — and the next batch rebuilds it.
type laneScratch struct {
	mem   *faults.LaneInjected
	reads []uint64
	retry runner
}

// Worker arenas are recycled across Grade calls through a bounded
// free-list keyed by geometry and plane count: a warm arena's fault
// tables already hold the capacity the same workload's batches need, so
// steady-state grading (benchmark loops, matrix sweeps) re-injects into
// retained storage instead of allocating. Arenas suspected of panic
// corruption are never returned.
type arenaKey struct {
	size, width, ports, planes int
}

var (
	arenaMu   sync.Mutex
	arenaPool = map[arenaKey][]*faults.LaneInjected{}
	arenaN    int
)

const arenaPoolLimit = 32

func arenaGet(k arenaKey) *faults.LaneInjected {
	arenaMu.Lock()
	defer arenaMu.Unlock()
	list := arenaPool[k]
	if n := len(list); n > 0 {
		m := list[n-1]
		list[n-1] = nil
		arenaPool[k] = list[:n-1]
		arenaN--
		return m
	}
	return nil
}

func arenaPut(k arenaKey, m *faults.LaneInjected) {
	if m == nil {
		return
	}
	arenaMu.Lock()
	defer arenaMu.Unlock()
	if arenaN >= arenaPoolLimit {
		return
	}
	arenaPool[k] = append(arenaPool[k], m)
	arenaN++
}

// gradeBatched grades the universe by replaying the captured stream
// over lane batches of opts.Lanes-1 faults packed into opts.Lanes/64
// bit-planes. Batch b grades universe[b*(Lanes-1):...] in universe
// order, so the verdicts — and with them the Report's Missed ordering —
// are byte-identical to the scalar oracle at any worker count or lane
// width. A panic anywhere in a batch (hook, injector or replay) fails
// only that batch: each of its faults is retried individually on the
// scalar oracle and quarantined if it panics again. Cancellation stops
// the claim loop at the next batch boundary.
func (r *gradeRun) gradeBatched(stream []march.StreamOp) error {
	universe := r.universe
	planes := r.opts.Lanes / 64
	batchCap := faults.BatchLimit(planes)
	batches := (len(universe) + batchCap - 1) / batchCap
	workers := r.opts.Workers
	if workers > batches {
		workers = batches
	}
	reg := obs.Active()
	reg.Gauge("coverage.workers").Set(int64(workers))
	reg.Gauge("coverage.lane_width").Set(int64(r.opts.Lanes))
	mBatches := reg.Counter("coverage.batches_replayed")
	mLanes := reg.Span("coverage.batch_lanes")
	mBatch := reg.Span("coverage.batch_ns")
	mFaults := reg.Counter("coverage.faults_graded")

	batchSpan := func(b int) (start, end, pending int) {
		start = b * batchCap
		end = min(start+batchCap, len(universe))
		for i := start; i < end; i++ {
			if !r.resumed[i] {
				pending++
			}
		}
		return start, end, pending
	}

	// gradeOne replays one batch; a panic escapes as a *PanicError for
	// the caller's scalar retry.
	gradeOne := func(b int, sc *laneScratch) error {
		start, end, pending := batchSpan(b)
		if pending == 0 {
			// Fully settled by the resumed checkpoint: nothing to replay.
			return nil
		}
		batch := universe[start:end]
		t0 := mBatch.Start()
		var fail [faults.MaxPlanes]uint64
		var rerr error
		perr := resilience.Capture(func() {
			if r.opts.FaultHook != nil {
				for i := start; i < end; i++ {
					if !r.resumed[i] {
						r.opts.FaultHook(i)
					}
				}
			}
			if sc.mem == nil {
				sc.mem = faults.NewLaneInjectedPlanes(r.opts.Size, r.opts.Width, r.opts.Ports, planes, batch)
			} else {
				sc.mem.Reset(batch)
			}
			fail, sc.reads, rerr = replayStream(sc.mem, stream, sc.reads)
		})
		if perr != nil {
			sc.mem = nil
			return perr
		}
		if rerr != nil {
			return fmt.Errorf("coverage: batch %d (faults %d..%d): %w", b, start, end-1, rerr)
		}
		r.commitBatch(start, end, &fail)
		mBatch.ObserveSince(t0)
		mBatches.Add(1)
		mLanes.Observe(int64(len(batch)))
		mFaults.Add(int64(pending))
		return nil
	}

	// runBatch grades one batch, degrading to per-fault scalar retries
	// when the lane replay panics. The scalar fallback runner is per
	// worker, built lazily on first panic and rebuilt after any panic
	// that may have corrupted it. A fault that panics in the scalar loop
	// is itself retried once before quarantine: a wide batch can panic
	// before ever reaching this fault (e.g. an earlier fault's hook blew
	// up first), so the scalar attempt may be the fault's first — the
	// quarantine contract is two panics on the fault itself, matching
	// scalarWorker.
	runBatch := func(sc *laneScratch, b int) error {
		err := gradeOne(b, sc)
		if err == nil {
			return nil
		}
		if _, ok := resilience.AsPanic(err); !ok {
			return err
		}
		r.mRetries.Add(1)
		start, end, _ := batchSpan(b)
		rebuild := func() error {
			sc.retry, err = buildRunnerFresh(r.alg, r.arch, r.opts)
			return err
		}
		for i := start; i < end; i++ {
			if r.resumed[i] {
				continue
			}
			if r.ctx.Err() != nil {
				return nil
			}
			if sc.retry == nil {
				if err := rebuild(); err != nil {
					return err
				}
			}
			d, ferr := r.scalarOne(sc.retry, i)
			if ferr != nil {
				if _, ok := resilience.AsPanic(ferr); !ok {
					return fmt.Errorf("coverage: %s on %s with %v: %w", r.alg.Name, r.arch, universe[i], ferr)
				}
				r.mRetries.Add(1)
				if err := rebuild(); err != nil {
					return err
				}
				if d, ferr = r.scalarOne(sc.retry, i); ferr != nil {
					p, ok := resilience.AsPanic(ferr)
					if !ok {
						return fmt.Errorf("coverage: %s on %s with %v: %w", r.alg.Name, r.arch, universe[i], ferr)
					}
					r.quarantine(i, p)
					sc.retry = nil
					continue
				}
			}
			r.record(i, d)
			mFaults.Add(1)
		}
		return nil
	}

	akey := arenaKey{size: r.opts.Size, width: r.opts.Width, ports: r.opts.Ports, planes: planes}

	if workers <= 1 {
		sc := laneScratch{mem: arenaGet(akey)}
		for b := 0; b < batches; b++ {
			if r.ctx.Err() != nil {
				arenaPut(akey, sc.mem)
				return nil
			}
			if err := runBatch(&sc, b); err != nil {
				arenaPut(akey, sc.mem)
				return err
			}
		}
		arenaPut(akey, sc.mem)
		return nil
	}

	var (
		cursor atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		emu    sync.Mutex
	)
	errBatch := batches
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := laneScratch{mem: arenaGet(akey)}
			defer func() { arenaPut(akey, sc.mem) }()
			for {
				b := int(cursor.Add(1)) - 1
				if b >= batches || failed.Load() || r.ctx.Err() != nil {
					return
				}
				if err := runBatch(&sc, b); err != nil {
					emu.Lock()
					if b < errBatch {
						errBatch, firstErr = b, err
					}
					emu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// replayStream drives the captured stream through a lane memory and
// returns the accumulated per-plane fail masks: bit b of fail[p] set
// means logical lane p*64+b's value diverged from the expected
// (fault-free) value on some read. reads is a scratch buffer threaded
// through for reuse. The replay exits early once every occupied lane
// has failed; lane 0 failing means the good machine diverged from the
// recorded clean run, which would break the engine's equivalence
// argument, so it is an error.
func replayStream(mem *faults.LaneInjected, stream []march.StreamOp, reads []uint64) ([faults.MaxPlanes]uint64, []uint64, error) {
	np := mem.Planes()
	var occ, fail [faults.MaxPlanes]uint64
	for p := 0; p < np; p++ {
		occ[p] = mem.FaultMaskPlane(p)
	}
	for _, op := range stream {
		switch {
		case op.Pause:
			mem.Pause()
		case op.Write:
			mem.Write(op.Port, op.Addr, op.Data)
		default:
			reads = mem.ReadLanes(op.Port, op.Addr, reads[:0])
			// reads holds np planes per word bit: [bit*np+p].
			i := 0
			for bit := 0; i < len(reads); bit++ {
				var exp uint64
				if op.Data>>uint(bit)&1 == 1 {
					exp = ^uint64(0)
				}
				for p := 0; p < np; p++ {
					fail[p] |= reads[i] ^ exp
					i++
				}
			}
			if fail[0]&1 != 0 {
				return fail, reads, fmt.Errorf("good machine (lane 0) failed at read port %d addr %d", op.Port, op.Addr)
			}
			done := true
			for p := 0; p < np; p++ {
				if fail[p]&occ[p] != occ[p] {
					done = false
					break
				}
			}
			if done {
				return fail, reads, nil
			}
		}
	}
	return fail, reads, nil
}
