package coverage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/march"
	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// The lane-parallel grading engine (PPSFP applied to the behavioural
// memory model). All four architectures emit the same canonical
// operation stream on a fault-free memory, and with MaxFails:1 their
// control flow is data-independent up to the first failing read — a
// faulty run is a prefix of the clean run's stream ending at that read.
// Detection is therefore equivalent to "any read mismatches its
// expected value when the full clean stream is replayed". That lets
// one replay of the captured stream grade 63 faults at once: lane 0 of
// a faults.LaneInjected is the good machine and lanes 1..63 each carry
// one fault; every read compares all lanes against the expected value
// in parallel and accumulates a per-lane fail mask.

// captureStream builds the architecture's runner, executes it once over
// a Recorder-wrapped fault-free memory and returns the captured
// operation stream. ok reports whether the capture matches the
// canonical reference stream (march.FullStream on the same geometry) —
// the guard the batched engine requires; a divergent capture (e.g. a
// decomposed prog-FSM program) returns ok=false so the caller falls
// back to the scalar oracle.
func captureStream(alg march.Algorithm, arch Architecture, opts Options) ([]march.StreamOp, bool, error) {
	run, err := buildRunner(alg, arch, opts)
	if err != nil {
		return nil, false, err
	}
	rec := &march.Recorder{Mem: memory.NewSRAM(opts.Size, opts.Width, opts.Ports)}
	detected, err := run(rec)
	if err != nil {
		return nil, false, fmt.Errorf("coverage: %s on %s stream capture: %w", alg.Name, arch, err)
	}
	if detected {
		return nil, false, fmt.Errorf("coverage: %s on %s detected a fail on fault-free memory", alg.Name, arch)
	}
	want := march.FullStream(alg, opts.Size, opts.Width, opts.Ports, opts.Width == 1)
	if !streamsEqual(rec.Ops, want) {
		return nil, false, nil
	}
	return rec.Ops, true, nil
}

func streamsEqual(a, b []march.StreamOp) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// gradeBatched grades the universe by replaying the captured stream
// over 63-fault lane batches. Batch b grades universe[b*MaxLanes:...]
// in universe order, so the verdicts — and with them the Report's
// Missed ordering — are byte-identical to the scalar oracle at any
// worker count. A panic anywhere in a batch (hook, injector or replay)
// fails only that batch: each of its faults is retried individually on
// the scalar oracle and quarantined if it panics again. Cancellation
// stops the claim loop at the next batch boundary.
func (r *gradeRun) gradeBatched(stream []march.StreamOp) error {
	universe := r.universe
	batches := (len(universe) + faults.MaxLanes - 1) / faults.MaxLanes
	workers := r.opts.Workers
	if workers > batches {
		workers = batches
	}
	reg := obs.Active()
	reg.Gauge("coverage.workers").Set(int64(workers))
	mBatches := reg.Counter("coverage.batches_replayed")
	mLanes := reg.Span("coverage.batch_lanes")
	mBatch := reg.Span("coverage.batch_ns")
	mFaults := reg.Counter("coverage.faults_graded")

	batchSpan := func(b int) (start, end, pending int) {
		start = b * faults.MaxLanes
		end = min(start+faults.MaxLanes, len(universe))
		for i := start; i < end; i++ {
			if !r.resumed[i] {
				pending++
			}
		}
		return start, end, pending
	}

	// gradeOne replays one batch; a panic escapes as a *PanicError for
	// the caller's scalar retry.
	gradeOne := func(b int, planes []uint64) ([]uint64, error) {
		start, end, pending := batchSpan(b)
		if pending == 0 {
			// Fully settled by the resumed checkpoint: nothing to replay.
			return planes, nil
		}
		batch := universe[start:end]
		t0 := mBatch.Start()
		var failMask uint64
		var rerr error
		perr := resilience.Capture(func() {
			if r.opts.FaultHook != nil {
				for i := start; i < end; i++ {
					if !r.resumed[i] {
						r.opts.FaultHook(i)
					}
				}
			}
			mem := faults.NewLaneInjected(r.opts.Size, r.opts.Width, r.opts.Ports, batch)
			failMask, planes, rerr = replayStream(mem, stream, planes)
		})
		if perr != nil {
			return planes, perr
		}
		if rerr != nil {
			return planes, fmt.Errorf("coverage: batch %d (faults %d..%d): %w", b, start, end-1, rerr)
		}
		r.commitBatch(start, end, failMask)
		mBatch.ObserveSince(t0)
		mBatches.Add(1)
		mLanes.Observe(int64(len(batch)))
		mFaults.Add(int64(pending))
		return planes, nil
	}

	// runBatch grades one batch, degrading to per-fault scalar retries
	// when the lane replay panics. The scalar fallback runner is per
	// worker, built lazily on first panic and rebuilt after any panic
	// that may have corrupted it.
	runBatch := func(retry *runner, b int, planes []uint64) ([]uint64, error) {
		planes, err := gradeOne(b, planes)
		if err == nil {
			return planes, nil
		}
		if _, ok := resilience.AsPanic(err); !ok {
			return planes, err
		}
		r.mRetries.Add(1)
		start, end, _ := batchSpan(b)
		for i := start; i < end; i++ {
			if r.resumed[i] {
				continue
			}
			if r.ctx.Err() != nil {
				return planes, nil
			}
			if *retry == nil {
				if *retry, err = buildRunner(r.alg, r.arch, r.opts); err != nil {
					return planes, err
				}
			}
			d, ferr := r.scalarOne(*retry, i)
			if ferr != nil {
				p, ok := resilience.AsPanic(ferr)
				if !ok {
					return planes, fmt.Errorf("coverage: %s on %s with %v: %w", r.alg.Name, r.arch, universe[i], ferr)
				}
				r.quarantine(i, p)
				*retry = nil
				continue
			}
			r.record(i, d)
			mFaults.Add(1)
		}
		return planes, nil
	}

	if workers <= 1 {
		var retry runner
		var planes []uint64
		var err error
		for b := 0; b < batches; b++ {
			if r.ctx.Err() != nil {
				return nil
			}
			if planes, err = runBatch(&retry, b, planes); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		cursor atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		emu    sync.Mutex
	)
	errBatch := batches
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var retry runner
			var planes []uint64
			for {
				b := int(cursor.Add(1)) - 1
				if b >= batches || failed.Load() || r.ctx.Err() != nil {
					return
				}
				var err error
				if planes, err = runBatch(&retry, b, planes); err != nil {
					emu.Lock()
					if b < errBatch {
						errBatch, firstErr = b, err
					}
					emu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// replayStream drives the captured stream through a lane memory and
// returns the accumulated per-lane fail mask: bit k set means lane k's
// value diverged from the expected (fault-free) value on some read.
// planes is a scratch buffer threaded through for reuse. The replay
// exits early once every occupied lane has failed; lane 0 failing
// means the good machine diverged from the recorded clean run, which
// would break the engine's equivalence argument, so it is an error.
func replayStream(mem *faults.LaneInjected, stream []march.StreamOp, planes []uint64) (uint64, []uint64, error) {
	occupied := mem.FaultMask()
	var failMask uint64
	for _, op := range stream {
		switch {
		case op.Pause:
			mem.Pause()
		case op.Write:
			mem.Write(op.Port, op.Addr, op.Data)
		default:
			planes = mem.ReadLanes(op.Port, op.Addr, planes[:0])
			for bit, plane := range planes {
				var exp uint64
				if op.Data>>uint(bit)&1 == 1 {
					exp = ^uint64(0)
				}
				failMask |= plane ^ exp
			}
			if failMask&1 != 0 {
				return failMask, planes, fmt.Errorf("good machine (lane 0) failed at read port %d addr %d", op.Port, op.Addr)
			}
			if failMask&occupied == occupied {
				return failMask, planes, nil
			}
		}
	}
	return failMask, planes, nil
}
