package coverage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/march"
	"repro/internal/memory"
	"repro/internal/obs"
)

// The lane-parallel grading engine (PPSFP applied to the behavioural
// memory model). All four architectures emit the same canonical
// operation stream on a fault-free memory, and with MaxFails:1 their
// control flow is data-independent up to the first failing read — a
// faulty run is a prefix of the clean run's stream ending at that read.
// Detection is therefore equivalent to "any read mismatches its
// expected value when the full clean stream is replayed". That lets
// one replay of the captured stream grade 63 faults at once: lane 0 of
// a faults.LaneInjected is the good machine and lanes 1..63 each carry
// one fault; every read compares all lanes against the expected value
// in parallel and accumulates a per-lane fail mask.

// captureStream builds the architecture's runner, executes it once over
// a Recorder-wrapped fault-free memory and returns the captured
// operation stream. ok reports whether the capture matches the
// canonical reference stream (march.FullStream on the same geometry) —
// the guard the batched engine requires; a divergent capture (e.g. a
// decomposed prog-FSM program) returns ok=false so the caller falls
// back to the scalar oracle.
func captureStream(alg march.Algorithm, arch Architecture, opts Options) ([]march.StreamOp, bool, error) {
	run, err := buildRunner(alg, arch, opts)
	if err != nil {
		return nil, false, err
	}
	rec := &march.Recorder{Mem: memory.NewSRAM(opts.Size, opts.Width, opts.Ports)}
	detected, err := run(rec)
	if err != nil {
		return nil, false, fmt.Errorf("coverage: %s on %s stream capture: %w", alg.Name, arch, err)
	}
	if detected {
		return nil, false, fmt.Errorf("coverage: %s on %s detected a fail on fault-free memory", alg.Name, arch)
	}
	want := march.FullStream(alg, opts.Size, opts.Width, opts.Ports, opts.Width == 1)
	if !streamsEqual(rec.Ops, want) {
		return nil, false, nil
	}
	return rec.Ops, true, nil
}

func streamsEqual(a, b []march.StreamOp) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// gradeBatched fills detected[] by replaying the captured stream over
// 63-fault lane batches. Batch b grades universe[b*MaxLanes:...] in
// universe order, so detected[] — and with it the Report's Missed
// ordering — is byte-identical to the scalar oracle at any worker
// count.
func gradeBatched(opts Options, universe []faults.Fault, stream []march.StreamOp, detected []bool) error {
	batches := (len(universe) + faults.MaxLanes - 1) / faults.MaxLanes
	workers := opts.Workers
	if workers > batches {
		workers = batches
	}
	reg := obs.Active()
	reg.Gauge("coverage.workers").Set(int64(workers))
	mBatches := reg.Counter("coverage.batches_replayed")
	mLanes := reg.Span("coverage.batch_lanes")
	mBatch := reg.Span("coverage.batch_ns")
	mFaults := reg.Counter("coverage.faults_graded")

	gradeOne := func(b int, planes []uint64) ([]uint64, error) {
		start := b * faults.MaxLanes
		end := start + faults.MaxLanes
		if end > len(universe) {
			end = len(universe)
		}
		batch := universe[start:end]
		t0 := mBatch.Start()
		mem := faults.NewLaneInjected(opts.Size, opts.Width, opts.Ports, batch)
		failMask, planes, err := replayStream(mem, stream, planes)
		if err != nil {
			return planes, fmt.Errorf("coverage: batch %d (faults %d..%d): %w", b, start, end-1, err)
		}
		for i := range batch {
			detected[start+i] = failMask>>uint(i+1)&1 == 1
		}
		mBatch.ObserveSince(t0)
		mBatches.Add(1)
		mLanes.Observe(int64(len(batch)))
		mFaults.Add(int64(len(batch)))
		return planes, nil
	}

	if workers <= 1 {
		var planes []uint64
		var err error
		for b := 0; b < batches; b++ {
			if planes, err = gradeOne(b, planes); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		cursor atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		mu     sync.Mutex
	)
	errBatch := batches
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var planes []uint64
			for {
				b := int(cursor.Add(1)) - 1
				if b >= batches || failed.Load() {
					return
				}
				var err error
				if planes, err = gradeOne(b, planes); err != nil {
					mu.Lock()
					if b < errBatch {
						errBatch, firstErr = b, err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// replayStream drives the captured stream through a lane memory and
// returns the accumulated per-lane fail mask: bit k set means lane k's
// value diverged from the expected (fault-free) value on some read.
// planes is a scratch buffer threaded through for reuse. The replay
// exits early once every occupied lane has failed; lane 0 failing
// means the good machine diverged from the recorded clean run, which
// would break the engine's equivalence argument, so it is an error.
func replayStream(mem *faults.LaneInjected, stream []march.StreamOp, planes []uint64) (uint64, []uint64, error) {
	occupied := mem.FaultMask()
	var failMask uint64
	for _, op := range stream {
		switch {
		case op.Pause:
			mem.Pause()
		case op.Write:
			mem.Write(op.Port, op.Addr, op.Data)
		default:
			planes = mem.ReadLanes(op.Port, op.Addr, planes[:0])
			for bit, plane := range planes {
				var exp uint64
				if op.Data>>uint(bit)&1 == 1 {
					exp = ^uint64(0)
				}
				failMask |= plane ^ exp
			}
			if failMask&1 != 0 {
				return failMask, planes, fmt.Errorf("good machine (lane 0) failed at read port %d addr %d", op.Port, op.Addr)
			}
			if failMask&occupied == occupied {
				return failMask, planes, nil
			}
		}
	}
	return failMask, planes, nil
}
