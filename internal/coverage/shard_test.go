package coverage

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/march"
)

// TestShardMergeByteIdentical pins the sharding contract from the
// service design: a sweep split into N shards, graded independently
// and merged produces a report byte-identical to the unsharded sweep,
// for every shard count, including counts that do not divide the
// universe evenly.
func TestShardMergeByteIdentical(t *testing.T) {
	alg, ok := march.ByName("marchc")
	if !ok {
		t.Fatal("march library lost marchc")
	}
	opts := Options{Size: 16, Workers: 2}

	for _, arch := range []Architecture{Reference, Microcode, ProgFSM, Hardwired} {
		full, err := Grade(alg, arch, opts)
		if err != nil {
			t.Fatalf("%v: unsharded grade: %v", arch, err)
		}
		for _, n := range []int{1, 2, 4, 5} {
			states := make([]*State, n)
			covered := 0
			for s := 0; s < n; s++ {
				if states[s], err = GradeShard(alg, arch, opts, s, n); err != nil {
					t.Fatalf("%v: shard %d/%d: %v", arch, s, n, err)
				}
				covered += states[s].GradedCount()
			}
			if covered != full.Universe {
				t.Fatalf("%v: %d shards graded %d faults, universe has %d", arch, n, covered, full.Universe)
			}
			merged, err := MergeStates(states...)
			if err != nil {
				t.Fatalf("%v: merge %d shards: %v", arch, n, err)
			}
			rep, err := ReportFromState(alg, arch, opts, merged)
			if err != nil {
				t.Fatalf("%v: report from %d-shard merge: %v", arch, n, err)
			}
			if got, want := rep.String(), full.String(); got != want {
				t.Errorf("%v: %d-shard merged report diverges from unsharded:\n--- merged\n%s\n--- unsharded\n%s",
					arch, n, got, want)
			}
			if !reflect.DeepEqual(rep, full) {
				t.Errorf("%v: %d-shard merged report struct diverges from unsharded", arch, n)
			}
		}
	}
}

// TestShardRangeCovers checks the slice arithmetic: contiguous,
// disjoint, covering, balanced to within one fault.
func TestShardRangeCovers(t *testing.T) {
	for _, size := range []int{0, 1, 7, 64, 1000} {
		for _, of := range []int{1, 2, 3, 7, 64} {
			prev := 0
			for s := 0; s < of; s++ {
				lo, hi := ShardRange(size, s, of)
				if lo != prev {
					t.Fatalf("size %d, %d shards: shard %d starts at %d, previous ended at %d", size, of, s, lo, prev)
				}
				if hi < lo {
					t.Fatalf("size %d, %d shards: shard %d is [%d,%d)", size, of, s, lo, hi)
				}
				if n := hi - lo; n > size/of+1 {
					t.Fatalf("size %d, %d shards: shard %d grades %d faults, want at most %d", size, of, s, n, size/of+1)
				}
				prev = hi
			}
			if prev != size {
				t.Fatalf("size %d, %d shards: slices end at %d", size, of, prev)
			}
		}
	}
}

func TestGradeShardRejectsBadPlan(t *testing.T) {
	alg, _ := march.ByName("mats+")
	opts := Options{Size: 8}
	for _, tc := range []struct{ shard, of int }{{0, 0}, {-1, 2}, {2, 2}, {5, 3}} {
		if _, err := GradeShard(alg, Reference, opts, tc.shard, tc.of); err == nil {
			t.Errorf("shard %d of %d accepted, want error", tc.shard, tc.of)
		}
	}
}

func TestGradeShardRejectsForeignResume(t *testing.T) {
	alg, _ := march.ByName("mats+")
	opts := Options{Size: 8}
	s0, err := GradeShard(alg, Reference, opts, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A shard-0 state resumes shard 0 but must be rejected by shard 1.
	opts.Resume = s0
	if _, err := GradeShard(alg, Reference, opts, 1, 2); err == nil ||
		!strings.Contains(err.Error(), "outside its slice") {
		t.Fatalf("shard 1 accepted shard 0's state, err=%v", err)
	}
	if _, err := GradeShard(alg, Reference, opts, 0, 2); err != nil {
		t.Fatalf("shard 0 rejected its own state: %v", err)
	}
}

func TestMergeStatesRejectsOverlapAndMismatch(t *testing.T) {
	alg, _ := march.ByName("mats+")
	opts := Options{Size: 8}
	s0, err := GradeShard(alg, Reference, opts, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeStates(); err == nil {
		t.Error("merge of zero states accepted")
	}
	if _, err := MergeStates(s0, s0); err == nil ||
		!strings.Contains(err.Error(), "overlapping") {
		t.Errorf("merge of overlapping states accepted, err=%v", err)
	}
	short := &State{Graded: make([]bool, 3), Detected: make([]bool, 3)}
	if _, err := MergeStates(s0, short); err == nil {
		t.Error("merge of mismatched universes accepted")
	}
	if _, err := MergeStates(s0, nil); err == nil {
		t.Error("merge with nil state accepted")
	}
	bad := &State{
		Graded:      append([]bool(nil), s0.Graded...),
		Detected:    append([]bool(nil), s0.Detected...),
		Quarantined: []FaultVerdict{{Index: len(s0.Graded) - 1}},
	}
	bad.Graded[len(bad.Graded)-1] = false
	if _, err := MergeStates(bad); err == nil {
		t.Error("merge accepted quarantine entry outside graded set")
	}
}

func TestReportFromStateRequiresComplete(t *testing.T) {
	alg, _ := march.ByName("mats+")
	opts := Options{Size: 8}
	s0, err := GradeShard(alg, Reference, opts, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReportFromState(alg, Reference, opts, s0); err == nil ||
		!strings.Contains(err.Error(), "complete") {
		t.Fatalf("report built from half a sweep, err=%v", err)
	}
	if _, err := ReportFromState(alg, Reference, opts, nil); err == nil {
		t.Error("report built from nil state")
	}
}
