package coverage

import (
	"testing"

	"repro/internal/march"
	"repro/internal/obs"
)

// TestRepeatGradeServedFromArtifactCache pins the service-facing cache
// contract: a repeated identical grade request re-synthesises nothing —
// the fault universe, the captured operation stream and the controller
// program are all served from the artifact cache, observable through
// the artifact.<name>.builds counters.
func TestRepeatGradeServedFromArtifactCache(t *testing.T) {
	reg := obs.Enable()
	defer obs.Disable()

	alg, ok := march.ByName("marchc")
	if !ok {
		t.Fatal("march library lost marchc")
	}
	// A geometry no other test in this package grades, so the first
	// Grade here is the one that populates the cache.
	opts := Options{Size: 24, Width: 2, Workers: 2}

	builds := func(name string) int64 {
		return reg.Counter("artifact." + name + ".builds").Value()
	}
	hits := func(name string) int64 {
		return reg.Counter("artifact." + name + ".hits").Value()
	}

	first, err := Grade(alg, Microcode, opts)
	if err != nil {
		t.Fatal(err)
	}
	u1, s1, c1 := builds("universe"), builds("stream"), builds("controller")
	if u1 > 1 || s1 > 1 || c1 > 1 {
		t.Fatalf("first grade synthesised universe=%d stream=%d controller=%d times, want at most 1 each",
			u1, s1, c1)
	}

	second, err := Grade(alg, Microcode, opts)
	if err != nil {
		t.Fatal(err)
	}
	if u, s, c := builds("universe"), builds("stream"), builds("controller"); u != u1 || s != s1 || c != c1 {
		t.Fatalf("repeat grade re-synthesised: universe %d->%d, stream %d->%d, controller %d->%d",
			u1, u, s1, s, c1, c)
	}
	if hits("universe") == 0 || hits("stream") == 0 {
		t.Fatalf("repeat grade did not hit the cache: universe hits=%d, stream hits=%d",
			hits("universe"), hits("stream"))
	}
	if first.String() != second.String() {
		t.Fatalf("cached grade diverged:\n%s\nvs\n%s", first, second)
	}
}
