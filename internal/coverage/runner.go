package coverage

import (
	"fmt"

	"repro/internal/artifact"
	"repro/internal/fsmbist"
	"repro/internal/hardbist"
	"repro/internal/march"
	"repro/internal/memory"
	"repro/internal/microbist"
)

// runner executes one test and reports detection.
type runner func(mem memory.Memory) (bool, error)

// Synthesised controllers are content-addressed in the artifact cache:
// assembling a microcode program, compiling an FSM program or
// generating a hardwired Moore machine is deterministic per
// (algorithm, architecture, geometry-relevant options), and every
// worker of every Grade call used to redo it. Programs and controllers
// are immutable once built — Run constructs fresh execution state per
// call — so one cached instance is safely shared across workers and
// service requests. The panic-retry path deliberately bypasses the
// cache (buildRunnerFresh) so a controller suspected of panic
// corruption is never re-shared.
type controllerKey struct {
	algFP        uint64
	arch         Architecture
	word, multi  bool
	width, ports int
}

var controllerCache = artifact.New[controllerKey, any]("controller", 0)

// synthController synthesises the architecture's controller artifact:
// a *microbist.Program, *fsmbist.Program or *hardbist.Controller (nil
// for Reference, which runs the march directly).
func synthController(alg march.Algorithm, arch Architecture, opts Options) (any, error) {
	word := opts.Width > 1
	multi := opts.Ports > 1
	switch arch {
	case Reference:
		return nil, nil
	case Microcode:
		p, err := microbist.Assemble(alg, microbist.AssembleOpts{WordOriented: word, Multiport: multi})
		if err != nil {
			return nil, err
		}
		return p, nil
	case ProgFSM:
		p, err := fsmbist.Compile(alg, fsmbist.CompileOpts{WordOriented: word, Multiport: multi})
		if err != nil {
			return nil, err
		}
		return p, nil
	case Hardwired:
		c, err := hardbist.Generate(alg, hardbist.Config{
			WordOriented: word, Multiport: multi,
			Width: opts.Width, Ports: opts.Ports, AddrBits: 10,
		})
		if err != nil {
			return nil, err
		}
		return c, nil
	default:
		return nil, fmt.Errorf("coverage: unknown architecture %d", arch)
	}
}

// cachedController is synthController memoised on the content key.
func cachedController(alg march.Algorithm, arch Architecture, opts Options) (any, error) {
	key := controllerKey{
		algFP: march.Fingerprint(alg), arch: arch,
		word: opts.Width > 1, multi: opts.Ports > 1,
		width: opts.Width, ports: opts.Ports,
	}
	return controllerCache.Get(key, func() (any, error) {
		return synthController(alg, arch, opts)
	})
}

// runnerFor wraps a synthesised controller as a detection runner.
func runnerFor(alg march.Algorithm, arch Architecture, opts Options, ctrl any) runner {
	word := opts.Width > 1
	multi := opts.Ports > 1
	switch arch {
	case Reference:
		return func(mem memory.Memory) (bool, error) {
			res, err := march.Run(alg, mem, march.RunOpts{
				MaxFails: 1, SinglePort: !multi, SingleBackground: !word,
			})
			if err != nil {
				return false, err
			}
			return res.Detected(), nil
		}
	case Microcode:
		p := ctrl.(*microbist.Program)
		return func(mem memory.Memory) (bool, error) {
			res, err := p.Run(mem, microbist.ExecOpts{MaxFails: 1})
			if err != nil {
				return false, err
			}
			return res.Detected(), nil
		}
	case ProgFSM:
		p := ctrl.(*fsmbist.Program)
		return func(mem memory.Memory) (bool, error) {
			res, err := p.Run(mem, fsmbist.ExecOpts{MaxFails: 1})
			if err != nil {
				return false, err
			}
			return res.Detected(), nil
		}
	case Hardwired:
		c := ctrl.(*hardbist.Controller)
		return func(mem memory.Memory) (bool, error) {
			res, err := c.Run(mem, hardbist.ExecOpts{MaxFails: 1})
			if err != nil {
				return false, err
			}
			return res.Detected(), nil
		}
	default:
		return nil
	}
}

// buildRunner returns the per-fault test executor for the architecture,
// sharing the content-addressed controller from the artifact cache.
func buildRunner(alg march.Algorithm, arch Architecture, opts Options) (runner, error) {
	ctrl, err := cachedController(alg, arch, opts)
	if err != nil {
		return nil, err
	}
	return runnerFor(alg, arch, opts, ctrl), nil
}

// buildRunnerFresh synthesises a brand-new controller, bypassing the
// artifact cache. The panic-retry paths use it: a panic mid-run could
// in principle have left the shared program observable mid-corruption,
// and the quarantine machinery's contract is a retry on pristine state.
func buildRunnerFresh(alg march.Algorithm, arch Architecture, opts Options) (runner, error) {
	ctrl, err := synthController(alg, arch, opts)
	if err != nil {
		return nil, err
	}
	return runnerFor(alg, arch, opts, ctrl), nil
}
