package coverage

import (
	"repro/internal/artifact"
	"repro/internal/faults"
	"repro/internal/march"
)

// Stream compilation and batch planning for the lane engine's compiled
// replay path.
//
// The interpreted replay pays per-op dispatch tax: every captured
// march.StreamOp re-validates its access, re-runs redirect decode and
// walks the full fault machinery whether or not the batch contains the
// faults that need it. The compiled path removes both taxes at their
// roots: the stream is lowered once per (algorithm, geometry) into a
// validated faults.CompiledStream (bounds proven at compile time, cell
// indices pre-resolved), and the universe is packed into batches
// partitioned by fault-mechanism class, so nearly every batch replays
// through a specialized kernel that carries only the machinery its
// class needs (see faults.Kernel). Both artifacts are deterministic per
// workload and content-addressed in the artifact cache next to the
// streams and universes they derive from.

// compiledKey content-addresses a compiled stream. The architecture is
// deliberately absent: the batched engine only runs streams verified
// equal to the canonical reference stream (see captureStream), so every
// architecture that passes verification shares one compilation.
type compiledKey struct {
	algFP              uint64
	size, width, ports int
}

var compiledCache = artifact.New[compiledKey, *faults.CompiledStream]("uops", 0)

// cachedCompiledStream lowers a verified captured stream to µops,
// memoised on the workload key.
func cachedCompiledStream(alg march.Algorithm, opts Options, stream []march.StreamOp) (*faults.CompiledStream, error) {
	key := compiledKey{
		algFP: march.Fingerprint(alg),
		size:  opts.Size, width: opts.Width, ports: opts.Ports,
	}
	return compiledCache.Get(key, func() (*faults.CompiledStream, error) {
		return compileStream(opts, stream)
	})
}

// compileStream lowers march.StreamOps into the flat µop form:
// pre-resolved first-cell indices, expected-value words and validated
// port/address bounds, so replay kernels run without per-op checks.
func compileStream(opts Options, stream []march.StreamOp) (*faults.CompiledStream, error) {
	uops := make([]faults.UOp, len(stream))
	for i, op := range stream {
		switch {
		case op.Pause:
			uops[i] = faults.UOp{Kind: faults.UOpPause}
		case op.Write:
			uops[i] = faults.UOp{
				Kind: faults.UOpWrite, Port: uint8(op.Port),
				Addr: int32(op.Addr), Cell: int32(op.Addr * opts.Width),
				Data: op.Data,
			}
		default:
			uops[i] = faults.UOp{
				Kind: faults.UOpRead, Port: uint8(op.Port),
				Addr: int32(op.Addr), Cell: int32(op.Addr * opts.Width),
				Data: op.Data,
			}
		}
	}
	return faults.NewCompiledStream(opts.Size, opts.Width, opts.Ports, uops)
}

// laneBatch is one planned batch of a partitioned universe: the packed
// fault slice (logical lane k carries faults[k-1]), each fault's
// universe index for verdict commitment, and the active plane count the
// batch needs (small batches replay proportionally fewer planes).
type laneBatch struct {
	faults []faults.Fault
	idx    []int32
	planes int
}

// kernelClass partitions fault kinds by the replay capability they
// demand; batches drawn from one class select that class's specialized
// kernel (faults.Kernel). CFst is split from CFin/CFid so that
// trigger-only coupling batches skip dirty tracking entirely.
func kernelClass(k faults.Kind) int {
	switch k {
	case faults.SOF, faults.RDF, faults.DRDF:
		return 1 // read-path state → KernelLatch
	case faults.CFin, faults.CFid:
		return 2 // triggers only → KernelCoupling (hasCFst=false)
	case faults.CFst:
		return 3 // triggers + state re-application → KernelCoupling
	case faults.AFNone, faults.AFMap, faults.AFMulti:
		return 4 // decoder faults → KernelAF
	default:
		return 0 // SA/TF/WDF/IRF/DRF pure masks → KernelMask
	}
}

const numClasses = 5

// partitionKey content-addresses a batch plan: the universe key plus
// the lane width that bounds batch capacity.
type partitionKey struct {
	size, width int
	uopts       faults.UniverseOpts
	lanes       int
}

var partitionCache = artifact.New[partitionKey, []laneBatch]("partition", 0)

// cachedPartition returns the batch plan for a workload, memoised on
// the universe key + lane width. Cached plans are shared and immutable;
// crucially, their fault slices are *stable*, so an arena that already
// replayed a batch recognises the identical slice on the next Grade
// call and skips re-injection (faults.LaneInjected.ResetPlanes).
func cachedPartition(opts Options, universe []faults.Fault) []laneBatch {
	key := partitionKey{size: opts.Size, width: opts.Width, uopts: opts.Universe, lanes: opts.Lanes}
	plan, _ := partitionCache.Get(key, func() ([]laneBatch, error) {
		return buildPartition(universe, opts.Lanes/64), nil
	})
	return plan
}

// buildPartition packs the universe into kind-partitioned batches of at
// most BatchLimit(maxPlanes) faults. Within a class, universe order is
// preserved; classes are emitted in fixed order, so the plan — like
// everything else about grading — is deterministic. Verdicts commit
// through each batch's idx slice in universe order regardless of how
// partitioning reordered the grading itself.
func buildPartition(universe []faults.Fault, maxPlanes int) []laneBatch {
	var classes [numClasses][]int32
	for i, f := range universe {
		c := kernelClass(f.Kind)
		classes[c] = append(classes[c], int32(i))
	}
	batchCap := faults.BatchLimit(maxPlanes)
	var batches []laneBatch
	for _, idxs := range classes {
		for start := 0; start < len(idxs); start += batchCap {
			end := min(start+batchCap, len(idxs))
			chunk := idxs[start:end]
			packed := make([]faults.Fault, len(chunk))
			for j, ui := range chunk {
				packed[j] = universe[ui]
			}
			// A batch of n faults occupies logical lanes 1..n and only
			// needs ceil((n+1)/64) planes' worth of mask and cell traffic.
			planes := min((len(chunk)+64)/64, maxPlanes)
			batches = append(batches, laneBatch{faults: packed, idx: chunk, planes: planes})
		}
	}
	return batches
}
