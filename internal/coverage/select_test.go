package coverage

import (
	"testing"

	"repro/internal/faults"
)

func TestSelectStuckAtOnlyPicksCheapest(t *testing.T) {
	sel, err := Select([]faults.Kind{faults.SA, faults.AFNone, faults.AFMap}, Options{Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	// MATS+ (5N) fully covers SAFs and AFs and is the cheapest library
	// algorithm.
	if sel.Best.Name != "MATS+" {
		t.Errorf("selected %s for SA+AF, want MATS+", sel.Best.Name)
	}
}

func TestSelectCouplingNeedsMarchC(t *testing.T) {
	sel, err := Select([]faults.Kind{faults.SA, faults.TF, faults.CFid, faults.CFst}, Options{Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best.OpCount() < 10 {
		t.Errorf("selected %s (%dN) for full coupling coverage; nothing under 10N covers CFid",
			sel.Best.Name, sel.Best.OpCount())
	}
	// MATS+ must have been rejected with a coupling kind.
	if k, ok := sel.Rejected["MATS+"]; !ok {
		t.Error("MATS+ not rejected")
	} else if k != faults.TF && k != faults.CFid && k != faults.CFst {
		t.Errorf("MATS+ rejected for %v", k)
	}
}

func TestSelectRetention(t *testing.T) {
	sel, err := Select([]faults.Kind{faults.SA, faults.DRF}, Options{Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best.Pauses() == 0 {
		t.Errorf("selected %s without pauses for DRF coverage", sel.Best.Name)
	}
}

func TestSelectStaticFaults(t *testing.T) {
	sel, err := Select([]faults.Kind{faults.WDF, faults.DRDF}, Options{Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best.Name != "March SS" {
		t.Errorf("selected %s for WDF+DRDF, want March SS", sel.Best.Name)
	}
}

func TestSelectImpossibleCombination(t *testing.T) {
	// No single library algorithm covers retention AND write-disturb
	// AND read-disturb... actually March C++ lacks WDF<1w1>; March SS
	// lacks DRF. The union should be unsatisfiable.
	_, err := Select([]faults.Kind{faults.DRF, faults.WDF}, Options{Size: 8})
	if err == nil {
		t.Skip("library gained an algorithm covering DRF+WDF; update this test")
	}
}

func TestSelectEmptyTarget(t *testing.T) {
	if _, err := Select(nil, Options{Size: 8}); err == nil {
		t.Error("empty target accepted")
	}
}
