package coverage

import (
	"fmt"
	"sort"

	"repro/internal/faults"
	"repro/internal/march"
)

// Selection is the outcome of algorithm selection: the cheapest
// algorithm (fewest operations per cell) achieving full coverage of the
// requested fault classes, plus every candidate's evaluation.
type Selection struct {
	Best       march.Algorithm
	BestReport *Report
	// Rejected maps candidate names to the first fault class they do
	// not fully cover.
	Rejected map[string]faults.Kind
}

// Select picks the cheapest library algorithm that detects 100% of each
// requested fault kind on the reference runner. This is the flow a DFT
// engineer runs when programming the BIST unit for a new test
// requirement: choose the weakest (fastest) algorithm that still covers
// the fault classes the fab reports.
func Select(target []faults.Kind, opts Options) (*Selection, error) {
	if len(target) == 0 {
		return nil, fmt.Errorf("coverage: no target fault kinds")
	}
	lib := march.Library()
	names := make([]string, 0, len(lib))
	for name := range lib {
		names = append(names, name)
	}
	// Cheapest first; names break ties deterministically.
	sort.Slice(names, func(i, j int) bool {
		a, b := lib[names[i]](), lib[names[j]]()
		if a.OpCount() != b.OpCount() {
			return a.OpCount() < b.OpCount()
		}
		return names[i] < names[j]
	})

	sel := &Selection{Rejected: make(map[string]faults.Kind)}
	for _, name := range names {
		alg := lib[name]()
		rep, err := Grade(alg, Reference, opts)
		if err != nil {
			return nil, err
		}
		miss, ok := fullCoverage(rep, target)
		if !ok {
			sel.Rejected[alg.Name] = miss
			continue
		}
		sel.Best = alg
		sel.BestReport = rep
		return sel, nil
	}
	return nil, fmt.Errorf("coverage: no library algorithm covers all of %v", target)
}

func fullCoverage(rep *Report, target []faults.Kind) (faults.Kind, bool) {
	for _, k := range target {
		r := rep.ByKind[k]
		if r.Detected != r.Total {
			return k, false
		}
	}
	return 0, true
}
