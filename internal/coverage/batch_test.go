package coverage

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/fsmbist"
	"repro/internal/march"
	"repro/internal/obs"
)

// TestBatchedEngineMatchesScalarOracle is the acceptance gate for the
// lane-parallel engine: for every architecture and every algorithm in
// the march library, Grade (EngineAuto) must produce a byte-identical
// Report — including the Missed ordering — to the scalar GradeSerial
// oracle, at worker counts 1, 2 and GOMAXPROCS (Workers: 0).
func TestBatchedEngineMatchesScalarOracle(t *testing.T) {
	names := make([]string, 0, len(march.Library()))
	for name := range march.Library() {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, arch := range []Architecture{Reference, Microcode, ProgFSM, Hardwired} {
		for _, name := range names {
			alg, _ := march.ByName(name)
			want, err := GradeSerial(alg, arch, Options{Size: 8})
			if err != nil {
				t.Fatalf("%s on %s: oracle: %v", name, arch, err)
			}
			for _, workers := range []int{1, 2, 0} {
				got, err := Grade(alg, arch, Options{Size: 8, Workers: workers})
				if err != nil {
					t.Fatalf("%s on %s workers=%d: %v", name, arch, workers, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s on %s workers=%d: batched report differs from scalar oracle:\ngot  %v\nwant %v",
						name, arch, workers, got, want)
				}
				if got.String() != want.String() {
					t.Errorf("%s on %s workers=%d: rendered report differs", name, arch, workers)
				}
			}
		}
	}
}

// TestBatchedEngineMatchesScalarOracleWordMultiport repeats the
// equivalence check on a word-oriented multiport geometry so the lane
// engine's per-bit planes and port handling are exercised end to end.
func TestBatchedEngineMatchesScalarOracleWordMultiport(t *testing.T) {
	opts := Options{Size: 4, Width: 2, Ports: 2}
	for _, arch := range []Architecture{Reference, Microcode, ProgFSM, Hardwired} {
		for _, name := range []string{"marchc+", "marchss", "marchlr"} {
			alg, _ := march.ByName(name)
			want, err := GradeSerial(alg, arch, opts)
			if err != nil {
				t.Fatalf("%s on %s: oracle: %v", name, arch, err)
			}
			for _, workers := range []int{1, 0} {
				o := opts
				o.Workers = workers
				got, err := Grade(alg, arch, o)
				if err != nil {
					t.Fatalf("%s on %s workers=%d: %v", name, arch, workers, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s on %s workers=%d: batched report differs from scalar oracle", name, arch, workers)
				}
			}
		}
	}
}

// TestBatchedEngineEngaged pins that the default Grade path actually
// replays lane batches (rather than silently falling back) for the
// canonical microcode configuration, that batch occupancy respects the
// configured lane width, and that the lane_width gauge reports it.
func TestBatchedEngineEngaged(t *testing.T) {
	for _, lanes := range []int{0, 64, 128, 256, 512} {
		reg := obs.Enable()
		alg, _ := march.ByName("marchc")
		rep, err := Grade(alg, Microcode, Options{Size: 16, Lanes: lanes})
		if err != nil {
			obs.Disable()
			t.Fatal(err)
		}
		want := lanes
		if want == 0 {
			want = DefaultLanes
		}
		batches := reg.Counter("coverage.batches_replayed").Value()
		if batches == 0 {
			t.Fatalf("lanes=%d: batched engine not engaged for marchc on microcode", lanes)
		}
		if fb := reg.Counter("coverage.stream_fallbacks").Value(); fb != 0 {
			t.Errorf("lanes=%d: unexpected stream fallbacks: %d", lanes, fb)
		}
		if lw := reg.Gauge("coverage.lane_width").Value(); int(lw) != want {
			t.Errorf("lanes=%d: lane_width gauge %d, want %d", lanes, lw, want)
		}
		count, sum, _, max := reg.Span("coverage.batch_lanes").Stats()
		if count != batches {
			t.Errorf("lanes=%d: batch_lanes count %d, batches %d", lanes, count, batches)
		}
		if int(sum) != rep.Overall.Total {
			t.Errorf("lanes=%d: lane occupancy sum %d, universe size %d", lanes, sum, rep.Overall.Total)
		}
		if int(max) > want-1 {
			t.Errorf("lanes=%d: batch occupancy %d exceeds %d fault lanes", lanes, max, want-1)
		}
		if graded := reg.Counter("coverage.faults_graded").Value(); int(graded) != rep.Overall.Total {
			t.Errorf("lanes=%d: faults_graded %d, universe size %d", lanes, graded, rep.Overall.Total)
		}
		if cs := reg.Counter("coverage.compiled_streams").Value(); cs == 0 {
			t.Errorf("lanes=%d: stream was not compiled to µops", lanes)
		}
		// Kind-partitioned batches are capability-pure, so every batch
		// must dispatch to a specialized kernel — the general catch-all
		// engaging here would mean the partitioner mixed mechanism
		// classes.
		if fast := reg.Counter("coverage.fast_kernel_batches").Value(); fast != batches {
			t.Errorf("lanes=%d: %d/%d batches took a specialized kernel", lanes, fast, batches)
		}
		obs.Disable()
	}
}

// TestBatchedEngineMatchesScalarOracleAllLaneWidths sweeps the lane
// width across every supported plane count on the canonical geometry:
// each width must reproduce the scalar oracle's report byte-for-byte at
// 1, 2 and GOMAXPROCS workers (acceptance criterion for the multi-plane
// engine).
func TestBatchedEngineMatchesScalarOracleAllLaneWidths(t *testing.T) {
	alg, _ := march.ByName("marchc")
	for _, arch := range []Architecture{Reference, Microcode, ProgFSM, Hardwired} {
		want, err := GradeSerial(alg, arch, Options{Size: 16})
		if err != nil {
			t.Fatalf("%s: oracle: %v", arch, err)
		}
		for _, lanes := range []int{64, 128, 256, 512} {
			for _, workers := range []int{1, 2, 0} {
				got, err := Grade(alg, arch, Options{Size: 16, Lanes: lanes, Workers: workers})
				if err != nil {
					t.Fatalf("%s lanes=%d workers=%d: %v", arch, lanes, workers, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s lanes=%d workers=%d: report differs from scalar oracle", arch, lanes, workers)
				}
				if got.String() != want.String() {
					t.Errorf("%s lanes=%d workers=%d: rendered report differs", arch, lanes, workers)
				}
			}
		}
	}
}

// TestGradeRejectsBadLaneWidth pins Options.Lanes validation.
func TestGradeRejectsBadLaneWidth(t *testing.T) {
	alg, _ := march.ByName("marchc")
	for _, lanes := range []int{-1, 1, 63, 96, 1024} {
		if _, err := Grade(alg, Reference, Options{Size: 8, Lanes: lanes}); err == nil {
			t.Errorf("lanes=%d: no error", lanes)
		}
	}
}

// TestStreamFallbackOnDecomposedProgram pins the automatic fallback:
// a prog-FSM program whose realised algorithm was decomposed emits an
// operation stream that diverges from the reference stream, so Grade
// must take the scalar path — and still match the oracle (already
// guaranteed by sharing the scalar engine, checked again here on one
// instance for the fallback specifically).
func TestStreamFallbackOnDecomposedProgram(t *testing.T) {
	var decomposed march.Algorithm
	found := false
	for name := range march.Library() {
		alg, _ := march.ByName(name)
		p, err := fsmbist.Compile(alg, fsmbist.CompileOpts{})
		if err == nil && p.Decomposed {
			decomposed, found = alg, true
			break
		}
	}
	if !found {
		t.Skip("no library algorithm decomposes under the prog-FSM compiler")
	}
	reg := obs.Enable()
	defer obs.Disable()
	got, err := Grade(decomposed, ProgFSM, Options{Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	if fb := reg.Counter("coverage.stream_fallbacks").Value(); fb == 0 {
		t.Fatalf("%s on prog-fsm: expected a stream-capture fallback", decomposed.Name)
	}
	if reg.Counter("coverage.batches_replayed").Value() != 0 {
		t.Errorf("%s on prog-fsm: batches replayed despite fallback", decomposed.Name)
	}
	want, err := GradeSerial(decomposed, ProgFSM, Options{Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s on prog-fsm: fallback report differs from oracle", decomposed.Name)
	}
}

// TestStreamsEqual pins the guard helper.
func TestStreamsEqual(t *testing.T) {
	a := []march.StreamOp{{Write: true, Addr: 1, Data: 1}, {Addr: 1, Data: 1}}
	if !streamsEqual(a, a) {
		t.Error("identical streams compared unequal")
	}
	if streamsEqual(a, a[:1]) {
		t.Error("length mismatch compared equal")
	}
	b := []march.StreamOp{{Write: true, Addr: 1, Data: 1}, {Addr: 2, Data: 1}}
	if streamsEqual(a, b) {
		t.Error("differing streams compared equal")
	}
}

// TestGradeSerialForcesScalarEngine pins that the oracle entry point
// never touches the lane engine.
func TestGradeSerialForcesScalarEngine(t *testing.T) {
	reg := obs.Enable()
	defer obs.Disable()
	alg, _ := march.ByName("marchc")
	if _, err := GradeSerial(alg, Reference, Options{Size: 8}); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("coverage.batches_replayed").Value(); n != 0 {
		t.Errorf("GradeSerial replayed %d batches, want 0", n)
	}
	if n := reg.Counter("coverage.faults_graded").Value(); n == 0 {
		t.Error("GradeSerial graded no faults")
	}
}
