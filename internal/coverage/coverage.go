// Package coverage grades march algorithms and BIST architectures
// against the functional fault universe. Two engines exist: the scalar
// oracle builds a fresh memory per fault, injects it and executes the
// full test (one complete run per fault); the lane-parallel engine
// captures the architecture's canonical operation stream once and
// replays it over 63-fault batches packed into uint64 bit-planes
// (PPSFP applied to the behavioural memory model). Both produce
// byte-identical Reports; the lane engine is used automatically
// whenever the captured stream matches the reference stream.
//
// Grading is hardened against the three failure modes of matrix-scale
// sweeps: cancellation (GradeContext stops workers at the next fault or
// batch boundary and still emits a valid partial Report), worker panics
// (a panicking fault batch is retried on the scalar oracle and, if it
// panics again, quarantined into Report.Quarantined instead of taking
// the pool down), and interruption (Options.Checkpoint/Resume persist
// per-fault verdicts so a killed run resumes to a byte-identical
// report; see State).
package coverage

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/artifact"
	"repro/internal/faults"
	"repro/internal/march"
	"repro/internal/obs"
)

// Architecture selects the execution engine.
type Architecture uint8

const (
	// Reference is the direct march runner (the oracle).
	Reference Architecture = iota
	// Microcode is the microcode-based programmable controller.
	Microcode
	// ProgFSM is the programmable FSM-based controller.
	ProgFSM
	// Hardwired is the per-algorithm non-programmable controller.
	Hardwired
)

var archNames = [...]string{"reference", "microcode", "prog-fsm", "hardwired"}

func (a Architecture) String() string {
	if int(a) < len(archNames) {
		return archNames[a]
	}
	return fmt.Sprintf("arch(%d)", int(a))
}

// Engine selects the fault-simulation engine.
type Engine uint8

const (
	// EngineAuto captures the architecture's operation stream on a
	// fault-free memory and, when it matches the canonical reference
	// stream, replays it over 63-fault lane batches; otherwise it falls
	// back to EngineScalar. Reports are byte-identical either way.
	EngineAuto Engine = iota
	// EngineScalar simulates one fault at a time: a fresh injected
	// memory and one complete test execution per fault — the oracle the
	// lane engine is checked against.
	EngineScalar
)

// Replay selects how the batched engine executes the captured stream.
type Replay uint8

const (
	// ReplayCompiled (the default) lowers the captured stream once per
	// (algorithm, geometry) into a validated µop program and replays
	// batches through capability-gated kernels (faults.Kernel): batches
	// free of decoder/coupling/latch machinery skip those code paths
	// entirely. Verdicts are byte-identical to ReplayInterpreted.
	ReplayCompiled Replay = iota
	// ReplayInterpreted dispatches each captured march.StreamOp through
	// the general Write/ReadLanes path — the reference the compiled
	// kernels are validated against, and the automatic fallback when
	// compilation fails.
	ReplayInterpreted
)

// Options configures a grading run.
//
// Every field must either be folded into the checkpoint fingerprint
// (see Fingerprint in state.go) or carry an //mbist:fingerprint-exclude
// annotation arguing why it cannot change verdicts; the fingerprint
// analyzer in internal/vet enforces this.
//
//mbist:fingerprint-source
type Options struct {
	// Size, Width, Ports set the memory geometry (defaults 16×1, 1 port).
	Size  int
	Width int
	Ports int
	// Universe tunes fault enumeration; the zero value is exhaustive.
	Universe faults.UniverseOpts
	// Workers sets the number of concurrent grading workers; 0 means
	// runtime.GOMAXPROCS(0), 1 forces the serial path. The report is
	// byte-identical at any worker count.
	//mbist:fingerprint-exclude verdicts are byte-identical at any worker count
	Workers int
	// Engine selects the fault-simulation engine (default EngineAuto).
	//mbist:fingerprint-exclude engines are validated byte-identical; a throughput knob, not workload identity
	Engine Engine
	// Lanes sets the batched engine's logical lane width — how many
	// machines (1 good + Lanes-1 faulty) one stream replay carries,
	// packed into Lanes/64 uint64 bit-planes per cell. Valid values are
	// 64, 128, 256 and 512; 0 means DefaultLanes. The report is
	// byte-identical at any lane width (verdicts commit in universe
	// order), so this is purely a throughput knob; it is ignored by the
	// scalar engine and excluded from Fingerprint.
	//mbist:fingerprint-exclude lane width only re-partitions batches; verdicts commit in universe order
	Lanes int
	// Replay selects the batched engine's stream execution mode
	// (default ReplayCompiled). Reports are byte-identical in both
	// modes — this is a throughput/validation knob, ignored by the
	// scalar engine and excluded from Fingerprint.
	//mbist:fingerprint-exclude compiled and interpreted replay are validated byte-identical
	Replay Replay

	// FaultHook, when non-nil, is called with each fault's universe
	// index immediately before that fault is graded (once per occupied
	// lane at batch start on the batched engine). It is the chaos
	// injection point: a panic raised by the hook is indistinguishable
	// from an engine panic and flows through the same
	// recover/retry/quarantine path. The hook must be safe for
	// concurrent use and deterministic per index if report determinism
	// matters.
	//mbist:fingerprint-exclude chaos instrumentation, not workload identity; a hook that panics only quarantines
	FaultHook func(index int)
	// Checkpoint, when non-nil, receives a consistent snapshot of
	// grading progress roughly every CheckpointEvery graded faults and
	// once more when the run finishes or is cancelled, so an
	// interrupted run always leaves its final state behind. The
	// callback runs with grading paused; keep it brief (an atomic file
	// write — see internal/resilience).
	//mbist:fingerprint-exclude persistence callback; observes progress, never alters verdicts
	Checkpoint func(*State)
	// CheckpointEvery is the checkpoint cadence in graded faults
	// (default 256). Ignored when Checkpoint is nil.
	//mbist:fingerprint-exclude cadence of snapshots, not their content
	CheckpointEvery int
	// Resume seeds the run with a prior State (typically loaded from a
	// checkpoint): already-graded faults keep their verdicts — including
	// quarantine verdicts — and are not re-graded. The State must come
	// from the same workload (same algorithm, architecture, geometry
	// and universe options; see Fingerprint); its bitset lengths are
	// validated against the universe. A resumed run's final report is
	// byte-identical to an uninterrupted one.
	//mbist:fingerprint-exclude the fingerprint's consumer: Resume is validated against it, never folded into it
	Resume *State
}

// DefaultLanes is the lane width Options.Lanes == 0 selects. 256 lanes
// (4 bit-planes) won the EXPERIMENTS.md X10 sweep on the benchmark
// geometry: wide enough to amortise the stream replay over ~4x the
// faults of a single plane, small enough that a batch's planes still
// fit comfortably in L1.
const DefaultLanes = 256

func (o *Options) normalise() {
	if o.Size <= 0 {
		o.Size = 16
	}
	if o.Width <= 0 {
		o.Width = 1
	}
	if o.Ports <= 0 {
		o.Ports = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Lanes == 0 {
		o.Lanes = DefaultLanes
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 256
	}
	o.Universe.Ports = o.Ports
}

// validate rejects option values normalise cannot default away.
func (o *Options) validate() error {
	switch o.Lanes {
	case 64, 128, 256, 512:
		return nil
	default:
		return fmt.Errorf("coverage: lane width %d not one of 64, 128, 256, 512", o.Lanes)
	}
}

// Ratio is detected-over-total.
type Ratio struct {
	Detected int
	Total    int
}

// Percent returns the detection percentage (100 for an empty class).
func (r Ratio) Percent() float64 {
	if r.Total == 0 {
		return 100
	}
	return 100 * float64(r.Detected) / float64(r.Total)
}

func (r Ratio) String() string {
	return fmt.Sprintf("%d/%d (%.1f%%)", r.Detected, r.Total, r.Percent())
}

// Report is the coverage of one algorithm on one architecture.
type Report struct {
	Algorithm    string
	Architecture Architecture
	ByKind       map[faults.Kind]Ratio
	Overall      Ratio
	Missed       []faults.Fault
	// Quarantined lists faults whose grading panicked and panicked
	// again on the scalar retry, in universe order. They are excluded
	// from ByKind/Overall/Missed so a poisoned fault can neither
	// masquerade as covered nor inflate the missed list.
	Quarantined []FaultVerdict
	// Graded counts faults with a verdict (detected, missed or
	// quarantined); Universe is the total enumerated for the geometry.
	// Partial is true when the run was cancelled before Graded reached
	// Universe — the tallies above then cover only the graded prefix of
	// the work, though every individual verdict is still exact.
	Graded   int
	Universe int
	Partial  bool
}

// Grade runs the algorithm against every fault in the universe on the
// selected architecture, using the engine Options selects (lane-batched
// stream replay by default, with automatic fallback to the scalar
// oracle). The Report — including the Missed and Quarantined orderings —
// is byte-identical across engines and worker counts.
func Grade(alg march.Algorithm, arch Architecture, opts Options) (*Report, error) {
	//mbist:exempt ctxflow compatibility wrapper over GradeContext for non-cancellable callers
	return GradeContext(context.Background(), alg, arch, opts)
}

// GradeContext is Grade with cancellation: once ctx is cancelled or
// past its deadline, workers stop at the next fault (or batch) boundary
// and the partial report — valid, with Partial set and every graded
// verdict exact — is returned alongside an error wrapping the context's
// error. A nil report is only returned for hard failures (bad options,
// runner compile errors, engine divergence).
func GradeContext(ctx context.Context, alg march.Algorithm, arch Architecture, opts Options) (*Report, error) {
	opts.normalise()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return gradeUniverse(ctx, alg, arch, opts, cachedUniverse(opts))
}

// Fault universes are deterministic per (geometry, UniverseOpts), so
// they are content-addressed in the artifact cache and shared across
// Grade calls and service requests: matrix sweeps and benchmark loops
// re-enumerate the same universe thousands of times, and the
// enumeration was a fixed per-call allocation cost. Cached slices are
// shared — grading only reads them. Concurrent first requests (service
// traffic) enumerate exactly once (artifact singleflight).
type universeKey struct {
	size, width int
	opts        faults.UniverseOpts
}

var universeCache = artifact.New[universeKey, []faults.Fault]("universe", 0)

func cachedUniverse(opts Options) []faults.Fault {
	key := universeKey{size: opts.Size, width: opts.Width, opts: opts.Universe}
	u, _ := universeCache.Get(key, func() ([]faults.Fault, error) {
		return faults.Universe(opts.Size, opts.Width, opts.Universe), nil
	})
	return u
}

// UniverseSize returns the number of faults a grading run with these
// options enumerates — the denominator a driver streaming progress
// (e.g. the grading service) reports against before the run finishes.
func UniverseSize(opts Options) int {
	opts.normalise()
	return len(cachedUniverse(opts))
}

// GradeSerial grades with the scalar per-fault engine: one injected
// memory and one complete test execution per fault. It is the oracle
// Grade's lane-parallel engine is validated against ("serial" means
// one fault at a time, matching logicbist.RandomPatternCoverageSerial;
// the per-fault work still fans out over opts.Workers).
func GradeSerial(alg march.Algorithm, arch Architecture, opts Options) (*Report, error) {
	opts.Engine = EngineScalar
	return Grade(alg, arch, opts)
}

// gradeUniverse grades a pre-enumerated universe; opts must be
// normalised and the universe enumerated with opts.Universe on the
// opts geometry. Matrix and Select use it to enumerate the fault
// universe once per geometry and share it across Grade calls.
func gradeUniverse(ctx context.Context, alg march.Algorithm, arch Architecture, opts Options, universe []faults.Fault) (*Report, error) {
	r, err := newGradeRun(ctx, alg, arch, opts, universe)
	if err != nil {
		return nil, err
	}
	if err := r.runEngine(); err != nil {
		return nil, err
	}
	return r.finish()
}

// runEngine grades every unresolved fault with the engine the options
// select: the lane-batched stream replay when EngineAuto's captured
// stream matches the reference stream, the scalar oracle otherwise.
func (r *gradeRun) runEngine() error {
	if r.opts.Engine == EngineAuto {
		stream, ok, err := cachedCaptureStream(r.alg, r.arch, r.opts)
		if err != nil {
			return err
		}
		if ok {
			return r.gradeBatched(stream)
		}
		// The captured stream diverged from the reference stream (e.g.
		// a decomposed prog-FSM program): grade with the scalar oracle.
		obs.Active().Counter("coverage.stream_fallbacks").Add(1)
	}
	return r.gradeScalar()
}

// String renders the report as an aligned table sorted by fault kind.
func (rep *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s: %s overall\n", rep.Algorithm, rep.Architecture, rep.Overall)
	kinds := make([]faults.Kind, 0, len(rep.ByKind))
	for k := range rep.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-8s %s\n", k, rep.ByKind[k])
	}
	if len(rep.Quarantined) > 0 {
		fmt.Fprintf(&b, "  quarantined %d fault(s)\n", len(rep.Quarantined))
	}
	if rep.Partial {
		fmt.Fprintf(&b, "  PARTIAL: %d/%d faults graded\n", rep.Graded, rep.Universe)
	}
	return b.String()
}

// Matrix grades several algorithms on one architecture and renders a
// kind-by-algorithm coverage table. The fault universe is enumerated
// once for the geometry and shared across all Grade calls.
func Matrix(algs []march.Algorithm, arch Architecture, opts Options) (string, error) {
	//mbist:exempt ctxflow compatibility wrapper over MatrixContext, mirroring Grade
	return MatrixContext(context.Background(), algs, arch, opts)
}

// MatrixContext is Matrix with cancellation: the context is threaded
// into every per-algorithm grade, so cancelling it stops the sweep at
// the next fault (or batch) boundary. Unlike GradeContext no partial
// table is rendered — a cancelled sweep returns only the error.
func MatrixContext(ctx context.Context, algs []march.Algorithm, arch Architecture, opts Options) (string, error) {
	opts.normalise()
	if err := opts.validate(); err != nil {
		return "", err
	}
	universe := cachedUniverse(opts)
	var reports []*Report
	for _, alg := range algs {
		rep, err := gradeUniverse(ctx, alg, arch, opts, universe)
		if err != nil {
			return "", err
		}
		reports = append(reports, rep)
	}
	return RenderMatrix(reports), nil
}

// RenderMatrix renders graded reports as a fault-kind × algorithm
// table: the body of Matrix, exported so drivers that grade the
// algorithms themselves (for per-algorithm checkpoint/resume) can reuse
// the rendering.
func RenderMatrix(reports []*Report) string {
	kindSet := map[faults.Kind]bool{}
	for _, rep := range reports {
		for k := range rep.ByKind {
			kindSet[k] = true
		}
	}
	kinds := make([]faults.Kind, 0, len(kindSet))
	for k := range kindSet {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })

	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "fault\\alg")
	for _, rep := range reports {
		fmt.Fprintf(&b, " %12s", rep.Algorithm)
	}
	b.WriteByte('\n')
	for _, k := range kinds {
		fmt.Fprintf(&b, "%-12s", k.String())
		for _, rep := range reports {
			fmt.Fprintf(&b, " %11.1f%%", rep.ByKind[k].Percent())
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-12s", "overall")
	for _, rep := range reports {
		fmt.Fprintf(&b, " %11.1f%%", rep.Overall.Percent())
	}
	b.WriteByte('\n')
	return b.String()
}
