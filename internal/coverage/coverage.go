// Package coverage grades march algorithms and BIST architectures
// against the functional fault universe. Two engines exist: the scalar
// oracle builds a fresh memory per fault, injects it and executes the
// full test (one complete run per fault); the lane-parallel engine
// captures the architecture's canonical operation stream once and
// replays it over 63-fault batches packed into uint64 bit-planes
// (PPSFP applied to the behavioural memory model). Both produce
// byte-identical Reports; the lane engine is used automatically
// whenever the captured stream matches the reference stream.
package coverage

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/fsmbist"
	"repro/internal/hardbist"
	"repro/internal/march"
	"repro/internal/memory"
	"repro/internal/microbist"
	"repro/internal/obs"
)

// Architecture selects the execution engine.
type Architecture uint8

const (
	// Reference is the direct march runner (the oracle).
	Reference Architecture = iota
	// Microcode is the microcode-based programmable controller.
	Microcode
	// ProgFSM is the programmable FSM-based controller.
	ProgFSM
	// Hardwired is the per-algorithm non-programmable controller.
	Hardwired
)

var archNames = [...]string{"reference", "microcode", "prog-fsm", "hardwired"}

func (a Architecture) String() string {
	if int(a) < len(archNames) {
		return archNames[a]
	}
	return fmt.Sprintf("arch(%d)", int(a))
}

// Engine selects the fault-simulation engine.
type Engine uint8

const (
	// EngineAuto captures the architecture's operation stream on a
	// fault-free memory and, when it matches the canonical reference
	// stream, replays it over 63-fault lane batches; otherwise it falls
	// back to EngineScalar. Reports are byte-identical either way.
	EngineAuto Engine = iota
	// EngineScalar simulates one fault at a time: a fresh injected
	// memory and one complete test execution per fault — the oracle the
	// lane engine is checked against.
	EngineScalar
)

// Options configures a grading run.
type Options struct {
	// Size, Width, Ports set the memory geometry (defaults 16×1, 1 port).
	Size  int
	Width int
	Ports int
	// Universe tunes fault enumeration; the zero value is exhaustive.
	Universe faults.UniverseOpts
	// Workers sets the number of concurrent grading workers; 0 means
	// runtime.GOMAXPROCS(0), 1 forces the serial path. The report is
	// byte-identical at any worker count.
	Workers int
	// Engine selects the fault-simulation engine (default EngineAuto).
	Engine Engine
}

func (o *Options) normalise() {
	if o.Size <= 0 {
		o.Size = 16
	}
	if o.Width <= 0 {
		o.Width = 1
	}
	if o.Ports <= 0 {
		o.Ports = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	o.Universe.Ports = o.Ports
}

// Ratio is detected-over-total.
type Ratio struct {
	Detected int
	Total    int
}

// Percent returns the detection percentage (100 for an empty class).
func (r Ratio) Percent() float64 {
	if r.Total == 0 {
		return 100
	}
	return 100 * float64(r.Detected) / float64(r.Total)
}

func (r Ratio) String() string {
	return fmt.Sprintf("%d/%d (%.1f%%)", r.Detected, r.Total, r.Percent())
}

// Report is the coverage of one algorithm on one architecture.
type Report struct {
	Algorithm    string
	Architecture Architecture
	ByKind       map[faults.Kind]Ratio
	Overall      Ratio
	Missed       []faults.Fault
}

// Grade runs the algorithm against every fault in the universe on the
// selected architecture, using the engine Options selects (lane-batched
// stream replay by default, with automatic fallback to the scalar
// oracle). The Report — including the Missed ordering — is
// byte-identical across engines and worker counts.
func Grade(alg march.Algorithm, arch Architecture, opts Options) (*Report, error) {
	opts.normalise()
	universe := faults.Universe(opts.Size, opts.Width, opts.Universe)
	return gradeUniverse(alg, arch, opts, universe)
}

// GradeSerial grades with the scalar per-fault engine: one injected
// memory and one complete test execution per fault. It is the oracle
// Grade's lane-parallel engine is validated against ("serial" means
// one fault at a time, matching logicbist.RandomPatternCoverageSerial;
// the per-fault work still fans out over opts.Workers).
func GradeSerial(alg march.Algorithm, arch Architecture, opts Options) (*Report, error) {
	opts.Engine = EngineScalar
	return Grade(alg, arch, opts)
}

// gradeUniverse grades a pre-enumerated universe; opts must be
// normalised and the universe enumerated with opts.Universe on the
// opts geometry. Matrix and Select use it to enumerate the fault
// universe once per geometry and share it across Grade calls.
func gradeUniverse(alg march.Algorithm, arch Architecture, opts Options, universe []faults.Fault) (*Report, error) {
	detected := make([]bool, len(universe))
	reg := obs.Active()
	if opts.Engine == EngineAuto {
		stream, ok, err := captureStream(alg, arch, opts)
		if err != nil {
			return nil, err
		}
		if ok {
			if err := gradeBatched(opts, universe, stream, detected); err != nil {
				return nil, err
			}
			return buildReport(alg, arch, universe, detected), nil
		}
		// The captured stream diverged from the reference stream (e.g.
		// a decomposed prog-FSM program): grade with the scalar oracle.
		reg.Counter("coverage.stream_fallbacks").Add(1)
	}
	if err := gradeScalar(alg, arch, opts, universe, detected); err != nil {
		return nil, err
	}
	return buildReport(alg, arch, universe, detected), nil
}

func buildReport(alg march.Algorithm, arch Architecture, universe []faults.Fault, detected []bool) *Report {
	rep := &Report{
		Algorithm:    alg.Name,
		Architecture: arch,
		ByKind:       make(map[faults.Kind]Ratio),
	}
	for i, f := range universe {
		r := rep.ByKind[f.Kind]
		r.Total++
		rep.Overall.Total++
		if detected[i] {
			r.Detected++
			rep.Overall.Detected++
		} else {
			rep.Missed = append(rep.Missed, f)
		}
		rep.ByKind[f.Kind] = r
	}
	obs.Active().Counter("coverage.detected").Add(int64(rep.Overall.Detected))
	return rep
}

// gradeScalar fills detected[] with the per-fault oracle: universe[i]
// is injected into a fresh memory and the test executed to its first
// fail.
func gradeScalar(alg march.Algorithm, arch Architecture, opts Options, universe []faults.Fault, detected []bool) error {
	workers := opts.Workers
	if workers > len(universe) {
		workers = len(universe)
	}
	reg := obs.Active()
	reg.Gauge("coverage.workers").Set(int64(workers))
	mFaults := reg.Counter("coverage.faults_graded")
	mFault := reg.Span("coverage.fault_ns")
	if workers <= 1 {
		runner, err := buildRunner(alg, arch, opts)
		if err != nil {
			return err
		}
		mWorker := reg.Counter("coverage.worker.00.faults")
		for i, f := range universe {
			start := mFault.Start()
			mem := faults.NewInjected(opts.Size, opts.Width, opts.Ports, f)
			d, err := runner(mem)
			if err != nil {
				return fmt.Errorf("coverage: %s on %s with %v: %w", alg.Name, arch, f, err)
			}
			detected[i] = d
			mFault.ObserveSince(start)
			mFaults.Add(1)
			mWorker.Add(1)
		}
		return nil
	}
	return gradeParallel(alg, arch, opts, universe, detected, workers)
}

// gradeParallel fans the fault universe out over a worker pool, filling
// detected[i] for universe[i]. Each worker builds its own runner; work
// is claimed dynamically through an atomic cursor so uneven per-fault
// run times balance out. On error the workers drain and the error for
// the lowest-indexed failing fault is returned, keeping failures as
// deterministic as the serial path.
func gradeParallel(alg march.Algorithm, arch Architecture, opts Options,
	universe []faults.Fault, detected []bool, workers int) error {
	var (
		cursor atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		mu     sync.Mutex
	)
	errIndex := len(universe)
	var firstErr error
	// Metrics: per-worker fault throughput plus the wait from pool
	// launch to each worker's first claim (runner compilation latency —
	// the pool's equivalent of queue wait). Nil no-op instruments when
	// metrics are off.
	reg := obs.Active()
	mFaults := reg.Counter("coverage.faults_graded")
	mFault := reg.Span("coverage.fault_ns")
	mWait := reg.Span("coverage.worker_start_wait_ns")
	for w := 0; w < workers; w++ {
		wg.Add(1)
		mWorker := reg.Counter(fmt.Sprintf("coverage.worker.%02d.faults", w))
		go func() {
			defer wg.Done()
			launched := mWait.Start()
			runner, err := buildRunner(alg, arch, opts)
			if err != nil {
				// A compile failure precedes any fault in the serial
				// path, so it outranks per-fault errors.
				mu.Lock()
				if errIndex > -1 {
					errIndex, firstErr = -1, err
				}
				mu.Unlock()
				failed.Store(true)
				return
			}
			first := true
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(universe) || failed.Load() {
					return
				}
				if first {
					mWait.ObserveSince(launched)
					first = false
				}
				start := mFault.Start()
				f := universe[i]
				mem := faults.NewInjected(opts.Size, opts.Width, opts.Ports, f)
				d, err := runner(mem)
				if err != nil {
					mu.Lock()
					if i < errIndex {
						errIndex = i
						firstErr = fmt.Errorf("coverage: %s on %s with %v: %w", alg.Name, arch, f, err)
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
				detected[i] = d
				mFault.ObserveSince(start)
				mFaults.Add(1)
				mWorker.Add(1)
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// runner executes one test and reports detection.
type runner func(mem memory.Memory) (bool, error)

func buildRunner(alg march.Algorithm, arch Architecture, opts Options) (runner, error) {
	word := opts.Width > 1
	multi := opts.Ports > 1
	switch arch {
	case Reference:
		return func(mem memory.Memory) (bool, error) {
			res, err := march.Run(alg, mem, march.RunOpts{
				MaxFails: 1, SinglePort: !multi, SingleBackground: !word,
			})
			if err != nil {
				return false, err
			}
			return res.Detected(), nil
		}, nil
	case Microcode:
		p, err := microbist.Assemble(alg, microbist.AssembleOpts{WordOriented: word, Multiport: multi})
		if err != nil {
			return nil, err
		}
		return func(mem memory.Memory) (bool, error) {
			res, err := p.Run(mem, microbist.ExecOpts{MaxFails: 1})
			if err != nil {
				return false, err
			}
			return res.Detected(), nil
		}, nil
	case ProgFSM:
		p, err := fsmbist.Compile(alg, fsmbist.CompileOpts{WordOriented: word, Multiport: multi})
		if err != nil {
			return nil, err
		}
		return func(mem memory.Memory) (bool, error) {
			res, err := p.Run(mem, fsmbist.ExecOpts{MaxFails: 1})
			if err != nil {
				return false, err
			}
			return res.Detected(), nil
		}, nil
	case Hardwired:
		cfg := hardbist.Config{
			WordOriented: word, Multiport: multi,
			Width: opts.Width, Ports: opts.Ports, AddrBits: 10,
		}
		c, err := hardbist.Generate(alg, cfg)
		if err != nil {
			return nil, err
		}
		return func(mem memory.Memory) (bool, error) {
			res, err := c.Run(mem, hardbist.ExecOpts{MaxFails: 1})
			if err != nil {
				return false, err
			}
			return res.Detected(), nil
		}, nil
	default:
		return nil, fmt.Errorf("coverage: unknown architecture %d", arch)
	}
}

// String renders the report as an aligned table sorted by fault kind.
func (rep *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s: %s overall\n", rep.Algorithm, rep.Architecture, rep.Overall)
	kinds := make([]faults.Kind, 0, len(rep.ByKind))
	for k := range rep.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-8s %s\n", k, rep.ByKind[k])
	}
	return b.String()
}

// Matrix grades several algorithms on one architecture and renders a
// kind-by-algorithm coverage table. The fault universe is enumerated
// once for the geometry and shared across all Grade calls.
func Matrix(algs []march.Algorithm, arch Architecture, opts Options) (string, error) {
	opts.normalise()
	universe := faults.Universe(opts.Size, opts.Width, opts.Universe)
	var reports []*Report
	kindSet := map[faults.Kind]bool{}
	for _, alg := range algs {
		rep, err := gradeUniverse(alg, arch, opts, universe)
		if err != nil {
			return "", err
		}
		reports = append(reports, rep)
		for k := range rep.ByKind {
			kindSet[k] = true
		}
	}
	kinds := make([]faults.Kind, 0, len(kindSet))
	for k := range kindSet {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })

	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "fault\\alg")
	for _, rep := range reports {
		fmt.Fprintf(&b, " %12s", rep.Algorithm)
	}
	b.WriteByte('\n')
	for _, k := range kinds {
		fmt.Fprintf(&b, "%-12s", k.String())
		for _, rep := range reports {
			fmt.Fprintf(&b, " %11.1f%%", rep.ByKind[k].Percent())
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-12s", "overall")
	for _, rep := range reports {
		fmt.Fprintf(&b, " %11.1f%%", rep.Overall.Percent())
	}
	b.WriteByte('\n')
	return b.String(), nil
}
