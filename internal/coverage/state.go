package coverage

import (
	"encoding/json"
	"fmt"

	"repro/internal/march"
	"repro/internal/resilience"
)

// FaultVerdict records one quarantined fault: grading it panicked on
// the primary engine and panicked again on the scalar retry, so the
// fault has no detected/missed verdict.
type FaultVerdict struct {
	// Index is the fault's position in the deterministic universe
	// ordering (faults.Universe on the run geometry).
	Index int `json:"index"`
	// Fault is the fault's van-de-Goor notation, for diagnostics.
	Fault string `json:"fault"`
	// Err is the captured panic message. It carries no stack trace —
	// stacks embed goroutine ids and argument addresses, which would
	// break byte-identical reports across runs and worker counts.
	Err string `json:"err"`
}

// State is the resumable progress of one grading run: a verdict bit
// per universe fault plus the quarantine list. It is what
// Options.Checkpoint hands out and Options.Resume takes back, and what
// mbistcov persists through internal/resilience. Per-fault verdicts
// are deterministic, so a run resumed from any State prefix produces a
// report byte-identical to an uninterrupted run.
type State struct {
	// Graded[i] is true once universe fault i has a verdict (detected,
	// missed or quarantined). Detected[i] is meaningful only when
	// Graded[i] is set.
	Graded   []bool
	Detected []bool
	// Quarantined lists the graded-by-quarantine faults, sorted by
	// Index.
	Quarantined []FaultVerdict
}

// Complete reports whether every fault has a verdict.
func (s *State) Complete() bool {
	for _, g := range s.Graded {
		if !g {
			return false
		}
	}
	return true
}

// GradedCount returns the number of faults with a verdict.
func (s *State) GradedCount() int {
	n := 0
	for _, g := range s.Graded {
		if g {
			n++
		}
	}
	return n
}

// stateJSON is the wire form: the bool slices travel as hex bitsets
// (2 digits per 8 faults instead of ~6 bytes per fault of JSON bools),
// keeping matrix-scale checkpoints compact and cheap to checksum.
type stateJSON struct {
	Faults      int            `json:"faults"`
	Graded      string         `json:"graded"`
	Detected    string         `json:"detected"`
	Quarantined []FaultVerdict `json:"quarantined,omitempty"`
}

// MarshalJSON encodes the state with hex-packed verdict bitsets.
func (s *State) MarshalJSON() ([]byte, error) {
	if len(s.Detected) != len(s.Graded) {
		return nil, fmt.Errorf("coverage: state bitsets disagree: %d graded, %d detected",
			len(s.Graded), len(s.Detected))
	}
	return json.Marshal(stateJSON{
		Faults:      len(s.Graded),
		Graded:      resilience.MarshalBits(s.Graded),
		Detected:    resilience.MarshalBits(s.Detected),
		Quarantined: s.Quarantined,
	})
}

// UnmarshalJSON decodes and validates the wire form: bitset lengths
// must match the declared fault count and quarantine indices must be
// in range, so a tampered or truncated payload surfaces here rather
// than as a silent mis-resume.
func (s *State) UnmarshalJSON(data []byte) error {
	var w stateJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	graded, err := resilience.UnmarshalBits(w.Graded, w.Faults)
	if err != nil {
		return fmt.Errorf("coverage: state graded bitset: %w", err)
	}
	detected, err := resilience.UnmarshalBits(w.Detected, w.Faults)
	if err != nil {
		return fmt.Errorf("coverage: state detected bitset: %w", err)
	}
	for _, q := range w.Quarantined {
		if q.Index < 0 || q.Index >= w.Faults {
			return fmt.Errorf("coverage: state quarantines fault %d of a %d-fault universe", q.Index, w.Faults)
		}
	}
	s.Graded, s.Detected, s.Quarantined = graded, detected, w.Quarantined
	return nil
}

// Fingerprint identifies the workload a State belongs to: the
// algorithm (name and march notation), architecture, geometry and
// universe options — everything that determines the fault universe and
// the per-fault verdicts. Worker count, engine and lane width are
// deliberately excluded: reports are byte-identical across all three,
// so a checkpoint taken at -workers 8 -lanes 512 on the lane engine
// resumes correctly at -workers 1 on the scalar oracle (and any
// combination in between).
func Fingerprint(alg march.Algorithm, arch Architecture, opts Options) string {
	opts.normalise()
	u := opts.Universe
	return fmt.Sprintf("%s|%s|%dx%d/%d|pairs=%d cells=%d addrs=%d seed=%d|%s",
		arch, alg.Name, opts.Size, opts.Width, opts.Ports,
		u.CouplingPairs, u.CellSample, u.AddrSample, u.Seed, alg)
}
