package coverage

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/march"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// gradeRun owns the mutable state of one grading run: the per-fault
// verdict arrays, the quarantine list and the checkpoint cadence. All
// mutation funnels through the mutex, so a Checkpoint snapshot is
// always a consistent cut no matter how many workers are grading, and
// the race detector stays quiet across engines.
type gradeRun struct {
	ctx      context.Context
	alg      march.Algorithm
	arch     Architecture
	opts     Options
	universe []faults.Fault

	// resumed marks faults settled by Options.Resume. It is immutable
	// once workers start, so they read it without the lock.
	resumed []bool

	mu          sync.Mutex
	graded      []bool
	detected    []bool
	quarantined []FaultVerdict
	gradedCount int
	sinceCkpt   int

	mQuarantined *obs.Counter
	mRetries     *obs.Counter
	mCheckpoints *obs.Counter
}

func newGradeRun(ctx context.Context, alg march.Algorithm, arch Architecture, opts Options, universe []faults.Fault) (*gradeRun, error) {
	if ctx == nil {
		ctx = context.Background() //mbist:exempt ctxflow nil-context guard for internal callers, not an invented root
	}
	reg := obs.Active()
	// One backing allocation for the three per-fault bit arrays (full
	// capacity slices, so appends can never alias across them).
	n := len(universe)
	flags := make([]bool, 3*n)
	r := &gradeRun{
		ctx: ctx, alg: alg, arch: arch, opts: opts, universe: universe,
		resumed:      flags[0:n:n],
		graded:       flags[n : 2*n : 2*n],
		detected:     flags[2*n : 3*n : 3*n],
		mQuarantined: reg.Counter("coverage.quarantined"),
		mRetries:     reg.Counter("coverage.panic_retries"),
		mCheckpoints: reg.Counter("coverage.checkpoints"),
	}
	if s := opts.Resume; s != nil {
		if len(s.Graded) != len(universe) || len(s.Detected) != len(universe) {
			return nil, fmt.Errorf("coverage: resume state covers %d faults, universe has %d (checkpoint from a different workload?)",
				len(s.Graded), len(universe))
		}
		copy(r.graded, s.Graded)
		copy(r.detected, s.Detected)
		copy(r.resumed, s.Graded)
		for _, g := range s.Graded {
			if g {
				r.gradedCount++
			}
		}
		for _, q := range s.Quarantined {
			if q.Index < 0 || q.Index >= len(universe) || !s.Graded[q.Index] {
				return nil, fmt.Errorf("coverage: resume state quarantines fault %d outside its graded set", q.Index)
			}
			r.quarantined = append(r.quarantined, q)
		}
	}
	return r, nil
}

// record commits one fault's verdict.
//
//mbist:hotpath
func (r *gradeRun) record(i int, detected bool) {
	r.mu.Lock()
	r.graded[i] = true
	r.detected[i] = detected
	r.gradedCount++
	r.maybeCheckpointLocked(1)
	r.mu.Unlock()
}

// commitBatch commits a lane batch's verdicts in one critical section:
// idx[k] is the universe index of the fault on logical lane k+1 (plane
// (k+1)/64, bit (k+1)%64 of the fail masks) — batches are
// kind-partitioned, so lanes map to arbitrary universe indices while
// the verdict arrays stay universe-ordered. Faults already settled by
// a resumed checkpoint keep their prior verdict (the replay result is
// identical anyway — verdicts are deterministic — but the resumed
// state stays authoritative).
//
//mbist:hotpath
func (r *gradeRun) commitBatch(idx []int32, fail *[faults.MaxPlanes]uint64) {
	r.mu.Lock()
	n := 0
	for k, ui := range idx {
		i := int(ui)
		if r.resumed[i] {
			continue
		}
		l := k + 1
		r.graded[i] = true
		r.detected[i] = fail[l>>6]>>uint(l&63)&1 == 1
		r.gradedCount++
		n++
	}
	r.maybeCheckpointLocked(n)
	r.mu.Unlock()
}

// quarantine settles fault i as unjudgeable: grading it panicked and
// panicked again on the retry. The verdict text is the stackless panic
// message so reports stay byte-identical across runs and worker counts.
func (r *gradeRun) quarantine(i int, cause error) {
	r.mu.Lock()
	r.graded[i] = true
	r.gradedCount++
	r.quarantined = append(r.quarantined, FaultVerdict{
		Index: i, Fault: r.universe[i].String(), Err: cause.Error(),
	})
	r.mQuarantined.Add(1)
	r.maybeCheckpointLocked(1)
	r.mu.Unlock()
}

func (r *gradeRun) maybeCheckpointLocked(justGraded int) {
	if r.opts.Checkpoint == nil {
		return
	}
	r.sinceCkpt += justGraded
	if r.sinceCkpt < r.opts.CheckpointEvery {
		return
	}
	r.sinceCkpt = 0
	r.checkpointLocked()
}

func (r *gradeRun) checkpointLocked() {
	r.opts.Checkpoint(r.snapshotLocked())
	r.mCheckpoints.Add(1)
}

// snapshotLocked deep-copies the verdict state; the caller-facing State
// never aliases worker-mutated arrays. Quarantine entries are sorted by
// universe index so snapshots are deterministic for a given verdict
// set, regardless of which worker quarantined first.
func (r *gradeRun) snapshotLocked() *State {
	s := &State{
		Graded:      append([]bool(nil), r.graded...),
		Detected:    append([]bool(nil), r.detected...),
		Quarantined: append([]FaultVerdict(nil), r.quarantined...),
	}
	sort.Slice(s.Quarantined, func(a, b int) bool { return s.Quarantined[a].Index < s.Quarantined[b].Index })
	return s
}

// finish writes the final checkpoint, renders the report and surfaces
// cancellation. It is the single exit path of every engine: a cancelled
// run still yields a valid partial report alongside the context error.
func (r *gradeRun) finish() (*Report, error) {
	r.mu.Lock()
	if r.opts.Checkpoint != nil {
		r.checkpointLocked()
	}
	rep := r.buildReportLocked()
	r.mu.Unlock()
	if err := r.ctx.Err(); err != nil && rep.Partial {
		return rep, fmt.Errorf("coverage: %s on %s cancelled after %d/%d faults: %w",
			r.alg.Name, r.arch, rep.Graded, rep.Universe, err)
	}
	return rep, nil
}

func (r *gradeRun) buildReportLocked() *Report {
	rep := &Report{
		Algorithm:    r.alg.Name,
		Architecture: r.arch,
		ByKind:       make(map[faults.Kind]Ratio, 16),
		Universe:     len(r.universe),
	}
	var inQuarantine map[int]bool
	if len(r.quarantined) > 0 {
		inQuarantine = make(map[int]bool, len(r.quarantined))
		for _, q := range r.quarantined {
			inQuarantine[q.Index] = true
		}
	}
	missed := 0
	for i := range r.universe {
		if r.graded[i] && !r.detected[i] && !inQuarantine[i] {
			missed++
		}
	}
	if missed > 0 {
		rep.Missed = make([]faults.Fault, 0, missed)
	}
	// Tally per-kind ratios into a flat array (Kind is a small enum) and
	// build the map once at the end: the per-fault map updates were the
	// hottest part of report construction on cached-universe workloads.
	var byKind [faults.NumKinds]Ratio
	for i, f := range r.universe {
		if !r.graded[i] {
			rep.Partial = true
			continue
		}
		rep.Graded++
		if inQuarantine[i] {
			continue
		}
		byKind[f.Kind].Total++
		rep.Overall.Total++
		if r.detected[i] {
			byKind[f.Kind].Detected++
			rep.Overall.Detected++
		} else {
			rep.Missed = append(rep.Missed, f)
		}
	}
	for k, kr := range byKind {
		if kr.Total > 0 {
			rep.ByKind[faults.Kind(k)] = kr
		}
	}
	if len(r.quarantined) > 0 {
		rep.Quarantined = append([]FaultVerdict(nil), r.quarantined...)
		sort.Slice(rep.Quarantined, func(a, b int) bool { return rep.Quarantined[a].Index < rep.Quarantined[b].Index })
	}
	obs.Active().Counter("coverage.detected").Add(int64(rep.Overall.Detected))
	return rep
}

// scalarOne grades one fault with the scalar oracle, converting a panic
// anywhere in the hook, the injector or the runner into a *PanicError
// instead of unwinding the worker.
func (r *gradeRun) scalarOne(run runner, i int) (detected bool, err error) {
	var ferr error
	perr := resilience.Capture(func() {
		if r.opts.FaultHook != nil {
			r.opts.FaultHook(i)
		}
		mem := faults.NewInjected(r.opts.Size, r.opts.Width, r.opts.Ports, r.universe[i])
		detected, ferr = run(mem)
	})
	if perr != nil {
		return false, perr
	}
	return detected, ferr
}

// workerFaultCounters precomputes the per-worker fault counter names
// so spawning workers does no name formatting. Runs with more workers
// than slots wrap and share counters, which merges their tallies but
// never builds a name on the spawn path.
var workerFaultCounters = func() [64]string {
	var t [64]string
	for i := range t {
		t[i] = fmt.Sprintf("coverage.worker.%02d.faults", i)
	}
	return t
}()

// gradeScalar grades every unresolved fault with the per-fault oracle:
// universe[i] is injected into a fresh memory and the test executed to
// its first fail. Panics are retried once on a rebuilt runner and then
// quarantined; cancellation stops the claim loop at the next fault.
func (r *gradeRun) gradeScalar() error {
	workers := r.opts.Workers
	if workers > len(r.universe) {
		workers = len(r.universe)
	}
	reg := obs.Active()
	reg.Gauge("coverage.workers").Set(int64(workers))
	if workers <= 1 {
		mWorker := reg.Counter("coverage.worker.00.faults")
		next := 0
		var firstErr error
		r.scalarWorker(mWorker,
			func() int {
				if next >= len(r.universe) {
					return -1
				}
				i := next
				next++
				return i
			},
			func(i int, err error) { firstErr = err })
		return firstErr
	}

	// Parallel: work is claimed dynamically through an atomic cursor so
	// uneven per-fault run times balance out. On a hard error the
	// workers drain and the error for the lowest-indexed failing fault
	// is reported, keeping failures as deterministic as the serial path
	// (runner compile errors carry index -1 and outrank every fault).
	var (
		cursor atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		emu    sync.Mutex
	)
	errIndex := len(r.universe) + 1
	var firstErr error
	mWait := reg.Span("coverage.worker_start_wait_ns")
	for w := 0; w < workers; w++ {
		wg.Add(1)
		mWorker := reg.Counter(workerFaultCounters[w%len(workerFaultCounters)])
		go func() {
			defer wg.Done()
			launched := mWait.Start()
			first := true
			r.scalarWorker(mWorker,
				func() int {
					i := int(cursor.Add(1)) - 1
					if i >= len(r.universe) || failed.Load() {
						return -1
					}
					if first {
						mWait.ObserveSince(launched)
						first = false
					}
					return i
				},
				func(i int, err error) {
					emu.Lock()
					if i < errIndex {
						errIndex, firstErr = i, err
					}
					emu.Unlock()
					failed.Store(true)
				})
		}()
	}
	wg.Wait()
	return firstErr
}

// scalarWorker is one scalar grading worker: claim a fault index, grade
// it, commit the verdict. A panic is retried once on a freshly built
// runner — the panic may have corrupted the old runner's internal
// state — and quarantined if it recurs; any non-panic error is a hard
// failure handed to fail (index -1 for runner build errors, which
// outrank per-fault errors). claim returning a negative index ends the
// worker; a cancelled context ends it at the next claim.
func (r *gradeRun) scalarWorker(mWorker *obs.Counter, claim func() int, fail func(i int, err error)) {
	reg := obs.Active()
	mFaults := reg.Counter("coverage.faults_graded")
	mFault := reg.Span("coverage.fault_ns")
	run, err := buildRunner(r.alg, r.arch, r.opts)
	if err != nil {
		fail(-1, err)
		return
	}
	rebuild := func() bool {
		if run, err = buildRunnerFresh(r.alg, r.arch, r.opts); err != nil {
			fail(-1, err)
			return false
		}
		return true
	}
	for {
		i := claim()
		if i < 0 {
			return
		}
		if r.resumed[i] {
			continue
		}
		if r.ctx.Err() != nil {
			// Cancelled: stop claiming. finish() renders the partial
			// report and surfaces the context error.
			return
		}
		start := mFault.Start()
		d, ferr := r.scalarOne(run, i)
		if ferr != nil {
			if _, isPanic := resilience.AsPanic(ferr); !isPanic {
				fail(i, fmt.Errorf("coverage: %s on %s with %v: %w", r.alg.Name, r.arch, r.universe[i], ferr))
				return
			}
			r.mRetries.Add(1)
			if !rebuild() {
				return
			}
			if d, ferr = r.scalarOne(run, i); ferr != nil {
				if p, ok := resilience.AsPanic(ferr); ok {
					r.quarantine(i, p)
					if !rebuild() {
						return
					}
					continue
				}
				fail(i, fmt.Errorf("coverage: %s on %s with %v: %w", r.alg.Name, r.arch, r.universe[i], ferr))
				return
			}
		}
		r.record(i, d)
		mFault.ObserveSince(start)
		mFaults.Add(1)
		mWorker.Add(1)
	}
}
