package march

import (
	"context"
	"errors"
	"testing"

	"repro/internal/memory"
)

func TestRunCancelledReturnsPartialResult(t *testing.T) {
	alg := MustParse("marchc", "b(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); b(r0)")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mem := memory.NewSRAM(16, 1, 1)
	res, err := Run(alg, mem, RunOpts{Ctx: ctx, SinglePort: true, SingleBackground: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled Run returned a nil Result; want a valid partial result")
	}
	if res.Operations != 0 {
		t.Errorf("pre-cancelled run issued %d operations, want 0", res.Operations)
	}
}

func TestRunNilContextRunsToCompletion(t *testing.T) {
	alg := MustParse("marchc", "b(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); b(r0)")
	mem := memory.NewSRAM(16, 1, 1)
	res, err := Run(alg, mem, RunOpts{SinglePort: true, SingleBackground: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected() {
		t.Error("fault-free memory failed the march test")
	}
}

func TestFullStreamContextMatchesFullStream(t *testing.T) {
	alg := MustParse("marchc", "b(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); b(r0)")
	want := FullStream(alg, 16, 4, 2, false)
	got, err := FullStreamContext(context.Background(), alg, 16, 4, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("stream lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestFullStreamContextCancelled(t *testing.T) {
	alg := MustParse("marchc", "b(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); b(r0)")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ops, err := FullStreamContext(ctx, alg, 16, 1, 1, true)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ops != nil {
		t.Errorf("cancelled expansion returned %d ops, want nil", len(ops))
	}
}
