package march

import (
	"fmt"
	"strings"
)

// Parse reads a march algorithm from its ASCII notation: semicolon-
// separated elements of the form
//
//	[del] ORDER(op,op,...)
//
// where ORDER is u/up/⇑ (ascending), d/down/⇓ (descending) or b/any/⇕
// (either), ops are r0, r1, w0, w1, and a leading "del" inserts a
// retention delay before the element. Example (March C):
//
//	b(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); b(r0)
func Parse(name, text string) (Algorithm, error) {
	a := Algorithm{Name: name}
	for i, raw := range strings.Split(text, ";") {
		field := strings.TrimSpace(raw)
		if field == "" {
			continue
		}
		e, err := parseElement(field)
		if err != nil {
			return Algorithm{}, fmt.Errorf("march: element %d %q: %w", i, field, err)
		}
		a.Elements = append(a.Elements, e)
	}
	if err := a.Validate(); err != nil {
		return Algorithm{}, err
	}
	return a, nil
}

func parseElement(s string) (Element, error) {
	var e Element
	low := strings.ToLower(s)
	if strings.HasPrefix(low, "del") {
		e.PauseBefore = true
		s = strings.TrimSpace(s[3:])
		low = strings.ToLower(s)
	}
	open := strings.IndexByte(low, '(')
	if open < 0 || !strings.HasSuffix(low, ")") {
		return e, fmt.Errorf("want ORDER(ops)")
	}
	switch strings.TrimSpace(low[:open]) {
	case "u", "up", "⇑":
		e.Order = Up
	case "d", "down", "⇓":
		e.Order = Down
	case "b", "any", "both", "⇕":
		e.Order = Any
	default:
		return e, fmt.Errorf("unknown address order %q", strings.TrimSpace(low[:open]))
	}
	body := low[open+1 : len(low)-1]
	for _, tok := range strings.Split(body, ",") {
		tok = strings.TrimSpace(tok)
		if len(tok) != 2 {
			return e, fmt.Errorf("bad op %q", tok)
		}
		var op Op
		switch tok[0] {
		case 'r':
			op.Kind = Read
		case 'w':
			op.Kind = Write
		default:
			return e, fmt.Errorf("bad op kind %q", tok)
		}
		switch tok[1] {
		case '0':
			op.Data = false
		case '1':
			op.Data = true
		default:
			return e, fmt.Errorf("bad op data %q", tok)
		}
		e.Ops = append(e.Ops, op)
	}
	if len(e.Ops) == 0 {
		return e, fmt.Errorf("empty element")
	}
	return e, nil
}

// MustParse is Parse that panics on error, for tests and tables of
// known-good algorithms.
func MustParse(name, text string) Algorithm {
	a, err := Parse(name, text)
	if err != nil {
		panic(err)
	}
	return a
}
