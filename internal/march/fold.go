package march

// Fold describes a detected symmetry in a march algorithm: the block of
// elements [Start, Start+Len) reappears at [Start+Len, Start+2*Len)
// transformed by Mask. The microcode-based BIST architecture encodes the
// second block as a single Repeat instruction whose fields load the
// reference register with the mask (paper §2.1), halving the storage the
// symmetric part of the algorithm needs.
type Fold struct {
	Start int
	Len   int
	Mask  Mask
}

// allMasks enumerates the reference-register masks in preference
// order. The identity mask comes first: a literally repeated block is
// encodable as a Repeat instruction that complements nothing, and
// matching it this way keeps the executed address order identical to
// the unfolded program (an Order-complementing match would run the
// repeat pass in the opposite direction).
var allMasks = []Mask{
	{},
	{Order: true},
	{Data: true},
	{Compare: true},
	{Order: true, Data: true},
	{Order: true, Compare: true},
	{Data: true, Compare: true},
	{Order: true, Data: true, Compare: true},
}

// FindFold searches for the longest foldable block. When several folds
// tie on length the earliest start and then the first mask in
// enumeration order wins, making the result deterministic.
func (a Algorithm) FindFold() (Fold, bool) {
	best := Fold{}
	found := false
	n := len(a.Elements)
	for length := n / 2; length >= 1; length-- {
		for start := 0; start+2*length <= n; start++ {
			for _, m := range allMasks {
				if a.foldMatches(start, length, m) {
					if !found || length > best.Len {
						best = Fold{Start: start, Len: length, Mask: m}
						found = true
					}
					break
				}
			}
			if found && best.Len == length {
				break
			}
		}
		if found {
			break // lengths descend, so the first hit is the longest
		}
	}
	return best, found
}

func (a Algorithm) foldMatches(start, length int, m Mask) bool {
	for i := 0; i < length; i++ {
		e := a.Elements[start+i]
		if m.Order && e.Order == Any {
			// Transform leaves Any unchanged, so the notations match —
			// but the hardware Repeat complements the executed address
			// direction while runners execute the unfolded ⇕ element in
			// a fixed direction. Folding here would change the read
			// order and thus the MISR signature.
			return false
		}
		if !a.Elements[start+length+i].Equal(e.Transform(m)) {
			return false
		}
	}
	return true
}

// Folded returns the algorithm with the folded block removed and the
// fold descriptor; when no fold exists it returns the algorithm
// unchanged and ok=false.
func (a Algorithm) Folded() (reduced Algorithm, fold Fold, ok bool) {
	fold, ok = a.FindFold()
	if !ok {
		return a, Fold{}, false
	}
	reduced = Algorithm{Name: a.Name}
	reduced.Elements = append(reduced.Elements, a.Elements[:fold.Start+fold.Len]...)
	reduced.Elements = append(reduced.Elements, a.Elements[fold.Start+2*fold.Len:]...)
	return reduced, fold, true
}

// Unfold re-expands a folded algorithm, re-inserting the transformed
// block. It is the inverse of Folded and exists so tests can prove the
// fold round-trips.
func Unfold(reduced Algorithm, fold Fold) Algorithm {
	out := Algorithm{Name: reduced.Name}
	out.Elements = append(out.Elements, reduced.Elements[:fold.Start+fold.Len]...)
	for i := 0; i < fold.Len; i++ {
		out.Elements = append(out.Elements, reduced.Elements[fold.Start+i].Transform(fold.Mask))
	}
	out.Elements = append(out.Elements, reduced.Elements[fold.Start+fold.Len:]...)
	return out
}
