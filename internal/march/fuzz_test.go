package march

import (
	"strings"
	"testing"

	"repro/internal/memory"
)

// FuzzParse throws arbitrary notation at the march parser and checks
// the invariants every accepted algorithm must satisfy: it validates,
// its rendered notation parses back to the identical element sequence,
// and it runs clean on a fault-free memory (the Validate contract: all
// read expectations match the uniform cell state).
func FuzzParse(f *testing.F) {
	for _, build := range Library() {
		alg := build()
		f.Add(strings.Trim(alg.String(), "{}"))
	}
	f.Add("b(w0); u(r0,w1); d(r1,w0)")
	f.Add("del u(r0)")
	f.Add("⇕(w1); ⇓(r1,w0,r0)")
	f.Add("b(w0); ; u(r0)")
	f.Add("up (w0,w1) ;down(r1)")
	f.Fuzz(func(t *testing.T, text string) {
		a, err := Parse("fuzz", text)
		if err != nil {
			return
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("Parse accepted %q but Validate rejects it: %v", text, err)
		}

		// Round-trip through the renderer.
		back, err := Parse("roundtrip", strings.Trim(a.String(), "{}"))
		if err != nil {
			t.Fatalf("rendered notation %q does not parse back: %v", a, err)
		}
		if len(back.Elements) != len(a.Elements) {
			t.Fatalf("round-trip changed element count: %d vs %d", len(back.Elements), len(a.Elements))
		}
		for i := range a.Elements {
			if !back.Elements[i].Equal(a.Elements[i]) {
				t.Fatalf("round-trip changed element %d: %v vs %v", i, back.Elements[i], a.Elements[i])
			}
		}

		// Any validated algorithm passes on a fault-free memory. Bound
		// the work so pathological mega-algorithms don't stall the fuzzer.
		if a.OpCount() > 64 {
			return
		}
		const size = 8
		res, err := Run(a, memory.NewSRAM(size, 1, 1), RunOpts{})
		if err != nil {
			t.Fatalf("run of parsed algorithm %q: %v", a, err)
		}
		if res.Detected() {
			t.Fatalf("parsed algorithm %q detects faults on a fault-free memory: %+v", a, res.Fails)
		}
		if res.Operations != a.OpCount()*size {
			t.Fatalf("operations = %d, want %d", res.Operations, a.OpCount()*size)
		}
	})
}
