package march

import (
	"strings"
	"testing"
)

func TestLibraryAllValid(t *testing.T) {
	for name, f := range Library() {
		a := f()
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestOpCounts(t *testing.T) {
	cases := []struct {
		alg  Algorithm
		want int
	}{
		{MATSPlus(), 5},
		{MarchX(), 6},
		{MarchY(), 8},
		{MarchC(), 10},
		{MarchCOriginal(), 11},
		{MarchA(), 15},
		{MarchB(), 17},
		{MarchCPlus(), 14},     // 10 + (r,w,r) + (r)
		{MarchCPlusPlus(), 30}, // 14 with 8 reads tripled
		{MarchAPlus(), 19},
		{MarchAPlusPlus(), 33}, // 19 with 7 reads tripled
	}
	for _, c := range cases {
		if got := c.alg.OpCount(); got != c.want {
			t.Errorf("%s: OpCount = %d, want %d (%s)", c.alg.Name, got, c.want, c.alg)
		}
	}
}

func TestRetentionVariantsHavePauses(t *testing.T) {
	for _, a := range []Algorithm{MarchCPlus(), MarchCPlusPlus(), MarchAPlus(), MarchAPlusPlus()} {
		if got := a.Pauses(); got != 2 {
			t.Errorf("%s: pauses = %d, want 2", a.Name, got)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
	if MarchC().Pauses() != 0 {
		t.Error("March C has unexpected pauses")
	}
}

func TestValidateCatchesBadAlgorithms(t *testing.T) {
	bad := Algorithm{Name: "bad-read-first", Elements: []Element{
		{Order: Up, Ops: []Op{R(false)}},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("read-before-write accepted")
	}
	bad2 := Algorithm{Name: "bad-expect", Elements: []Element{
		{Order: Any, Ops: []Op{W(false)}},
		{Order: Up, Ops: []Op{R(true)}},
	}}
	if err := bad2.Validate(); err == nil {
		t.Error("wrong expected polarity accepted")
	}
	bad3 := Algorithm{Name: "empty-element", Elements: []Element{
		{Order: Any, Ops: []Op{W(false)}},
		{Order: Up},
	}}
	if err := bad3.Validate(); err == nil {
		t.Error("empty element accepted")
	}
	if err := (Algorithm{Name: "empty"}).Validate(); err == nil {
		t.Error("empty algorithm accepted")
	}
}

func TestStringNotation(t *testing.T) {
	got := MarchC().String()
	want := "{⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)}"
	if got != want {
		t.Errorf("March C = %s, want %s", got, want)
	}
	if s := MarchCPlus().String(); !strings.Contains(s, "Del ⇕(r0,w1,r1)") {
		t.Errorf("March C+ missing retention element: %s", s)
	}
}

func TestTransformMask(t *testing.T) {
	e := Element{Order: Up, Ops: []Op{R(false), W(true)}}
	// Order-only flip.
	got := e.Transform(Mask{Order: true})
	want := Element{Order: Down, Ops: []Op{R(false), W(true)}}
	if !got.Equal(want) {
		t.Errorf("order-only transform = %v", got)
	}
	// Full complement.
	got = e.Complement()
	want = Element{Order: Down, Ops: []Op{R(true), W(false)}}
	if !got.Equal(want) {
		t.Errorf("complement = %v", got)
	}
	// Data flips writes only; compare flips reads only.
	got = e.Transform(Mask{Data: true})
	want = Element{Order: Up, Ops: []Op{R(false), W(false)}}
	if !got.Equal(want) {
		t.Errorf("data transform = %v", got)
	}
	got = e.Transform(Mask{Compare: true})
	want = Element{Order: Up, Ops: []Op{R(true), W(true)}}
	if !got.Equal(want) {
		t.Errorf("compare transform = %v", got)
	}
	// Any order stays Any under order flip.
	anyE := Element{Order: Any, Ops: []Op{W(false)}}
	if anyE.Transform(Mask{Order: true}).Order != Any {
		t.Error("Any order changed under order flip")
	}
}

func TestTransformInvolution(t *testing.T) {
	for _, a := range []Algorithm{MarchC(), MarchA(), MarchB()} {
		for _, m := range allMasks {
			for _, e := range a.Elements {
				if !e.Transform(m).Transform(m).Equal(e) {
					t.Errorf("%s: transform %v is not an involution on %v", a.Name, m, e)
				}
			}
		}
	}
}

func TestFindFoldMarchC(t *testing.T) {
	fold, ok := MarchC().FindFold()
	if !ok {
		t.Fatal("March C has no fold")
	}
	if fold.Start != 1 || fold.Len != 2 {
		t.Errorf("March C fold = %+v, want start 1 len 2", fold)
	}
	if !fold.Mask.Order || fold.Mask.Data || fold.Mask.Compare {
		t.Errorf("March C fold mask = %v, want order-only", fold.Mask)
	}
}

func TestFindFoldMarchA(t *testing.T) {
	fold, ok := MarchA().FindFold()
	if !ok {
		t.Fatal("March A has no fold")
	}
	if fold.Start != 1 || fold.Len != 2 {
		t.Errorf("March A fold = %+v, want start 1 len 2", fold)
	}
	if !fold.Mask.Order || !fold.Mask.Data || !fold.Mask.Compare {
		t.Errorf("March A fold mask = %v, want full complement", fold.Mask)
	}
}

func TestFoldRoundTrip(t *testing.T) {
	for _, a := range []Algorithm{MarchC(), MarchA(), MarchCPlus(), MarchAPlus(), MATSPlus(), MarchX()} {
		reduced, fold, ok := a.Folded()
		if !ok {
			continue
		}
		back := Unfold(reduced, fold)
		if len(back.Elements) != len(a.Elements) {
			t.Errorf("%s: unfold length %d, want %d", a.Name, len(back.Elements), len(a.Elements))
			continue
		}
		for i := range a.Elements {
			if !back.Elements[i].Equal(a.Elements[i]) {
				t.Errorf("%s: element %d round-trip: %v vs %v", a.Name, i, back.Elements[i], a.Elements[i])
			}
		}
	}
}

func TestFoldReducesStorage(t *testing.T) {
	reduced, _, ok := MarchC().Folded()
	if !ok {
		t.Fatal("March C should fold")
	}
	if len(reduced.Elements) != 4 {
		t.Errorf("folded March C has %d elements, want 4", len(reduced.Elements))
	}
}

func TestNoFoldOnAsymmetric(t *testing.T) {
	// MATS+ ⇑(r0,w1) / ⇓(r1,w0) IS a full complement pair — it folds.
	if _, ok := MATSPlus().FindFold(); !ok {
		t.Error("MATS+ complement pair not found")
	}
	// A genuinely asymmetric algorithm (no two adjacent blocks are
	// related by any reference-register mask — op counts differ).
	a := MustParse("asym", "b(w0); u(r0,w1); u(r1,w0,w1)")
	if f, ok := a.FindFold(); ok {
		t.Errorf("asymmetric algorithm folded: %+v", f)
	}
}

func TestParseRoundTrip(t *testing.T) {
	a := MustParse("March C", "b(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); b(r0)")
	lib := MarchC()
	if len(a.Elements) != len(lib.Elements) {
		t.Fatalf("parsed %d elements, want %d", len(a.Elements), len(lib.Elements))
	}
	for i := range a.Elements {
		if !a.Elements[i].Equal(lib.Elements[i]) {
			t.Errorf("element %d: parsed %v, library %v", i, a.Elements[i], lib.Elements[i])
		}
	}
}

func TestParseDelPrefix(t *testing.T) {
	a := MustParse("ret", "b(w0); del b(r0,w1,r1); del b(r1)")
	if !a.Elements[1].PauseBefore || !a.Elements[2].PauseBefore {
		t.Error("del prefix not parsed")
	}
	if a.Elements[0].PauseBefore {
		t.Error("spurious pause on first element")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"x(w0)",          // bad order
		"u(w2)",          // bad data
		"u(q0)",          // bad kind
		"u w0",           // missing parens
		"u()",            // empty element
		"u(r0)",          // read before write (validation)
		"b(w0); u(r1)",   // wrong polarity (validation)
		"b(w0); u(r0,)",  // trailing comma
		"b(w0); u(read)", // word op
	}
	for _, text := range cases {
		if _, err := Parse("bad", text); err == nil {
			t.Errorf("Parse(%q) accepted", text)
		}
	}
}

func TestBackgrounds(t *testing.T) {
	if got := Backgrounds(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("Backgrounds(1) = %v", got)
	}
	got := Backgrounds(8)
	want := []uint64{0x00, 0xAA, 0xCC, 0xF0}
	if len(got) != len(want) {
		t.Fatalf("Backgrounds(8) = %x, want %x", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Backgrounds(8)[%d] = %x, want %x", i, got[i], want[i])
		}
	}
	// log2(w)+1 backgrounds.
	if got := Backgrounds(16); len(got) != 5 {
		t.Errorf("Backgrounds(16) has %d patterns, want 5", len(got))
	}
	// Non-power-of-two width still terminates and starts with 0.
	if got := Backgrounds(12); len(got) != 5 || got[0] != 0 {
		t.Errorf("Backgrounds(12) = %x", got)
	}
}

func TestFinalState(t *testing.T) {
	if MarchC().FinalState() != false {
		t.Error("March C final state should be 0")
	}
	if MarchA().FinalState() != false {
		t.Error("March A final state should be 0")
	}
	inv := MustParse("inv", "b(w1); u(r1,w0); u(r0,w1)")
	if inv.FinalState() != true {
		t.Error("final state should be 1")
	}
}

func TestReadCount(t *testing.T) {
	if got := MarchC().ReadCount(); got != 5 {
		t.Errorf("March C reads = %d, want 5", got)
	}
	if got := MarchCPlusPlus().ReadCount(); got != 24 {
		t.Errorf("March C++ reads = %d, want 21", got)
	}
}
