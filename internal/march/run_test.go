package march

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/memory"
)

func TestRunCleanMemoryPasses(t *testing.T) {
	for name, f := range Library() {
		a := f()
		mem := memory.NewSRAM(64, 1, 1)
		res, err := Run(a, mem, RunOpts{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Detected() {
			t.Errorf("%s: false positive on clean memory: %v", name, res.Fails[0])
		}
		if res.Operations != a.OpCount()*64 {
			t.Errorf("%s: operations = %d, want %d", name, res.Operations, a.OpCount()*64)
		}
	}
}

func TestRunDetectsStuckAt(t *testing.T) {
	for name, f := range Library() {
		a := f()
		for _, v := range []bool{false, true} {
			mem := faults.NewInjected(32, 1, 1, faults.Fault{
				Kind: faults.SA, Cell: 13, Value: v, Port: faults.AnyPort,
			})
			res, err := Run(a, mem, RunOpts{MaxFails: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Detected() {
				t.Errorf("%s missed SA%v", name, v)
			}
		}
	}
}

func TestMarchCDetectsCoupling(t *testing.T) {
	// March C detects unlinked inversion and idempotent coupling faults
	// in both aggressor/victim address orders.
	a := MarchC()
	for _, f := range []faults.Fault{
		{Kind: faults.CFin, Aggressor: 3, Cell: 9, AggVal: true, Port: faults.AnyPort},
		{Kind: faults.CFin, Aggressor: 9, Cell: 3, AggVal: false, Port: faults.AnyPort},
		{Kind: faults.CFid, Aggressor: 3, Cell: 9, AggVal: true, Value: true, Port: faults.AnyPort},
		{Kind: faults.CFid, Aggressor: 9, Cell: 3, AggVal: false, Value: false, Port: faults.AnyPort},
		{Kind: faults.CFst, Aggressor: 3, Cell: 9, AggVal: true, Value: true, Port: faults.AnyPort},
	} {
		mem := faults.NewInjected(16, 1, 1, f)
		res, err := Run(a, mem, RunOpts{MaxFails: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Detected() {
			t.Errorf("March C missed %v", f)
		}
	}
}

func TestMATSPlusMissesSomeCoupling(t *testing.T) {
	// MATS+ does not cover all coupling faults — sanity check that the
	// fault grading discriminates between algorithms.
	missed := 0
	for _, pair := range [][2]int{{3, 9}, {9, 3}, {0, 15}, {15, 0}} {
		for _, aggRise := range []bool{false, true} {
			for _, val := range []bool{false, true} {
				f := faults.Fault{Kind: faults.CFid, Aggressor: pair[0], Cell: pair[1],
					AggVal: aggRise, Value: val, Port: faults.AnyPort}
				mem := faults.NewInjected(16, 1, 1, f)
				res, _ := Run(MATSPlus(), mem, RunOpts{MaxFails: 1})
				if !res.Detected() {
					missed++
				}
			}
		}
	}
	if missed == 0 {
		t.Error("MATS+ detected every idempotent coupling fault; grading cannot discriminate")
	}
}

func TestRetentionNeededForDRF(t *testing.T) {
	drf := faults.Fault{Kind: faults.DRF, Cell: 5, Value: true, Port: faults.AnyPort}

	mem := faults.NewInjected(16, 1, 1, drf)
	res, _ := Run(MarchC(), mem, RunOpts{MaxFails: 1})
	if res.Detected() {
		t.Error("March C (no pause) detected a DRF; fault model broken")
	}

	mem2 := faults.NewInjected(16, 1, 1, drf)
	res2, _ := Run(MarchCPlus(), mem2, RunOpts{MaxFails: 1})
	if !res2.Detected() {
		t.Error("March C+ missed a DRF")
	}

	// Both polarities.
	drf0 := faults.Fault{Kind: faults.DRF, Cell: 5, Value: false, Port: faults.AnyPort}
	mem3 := faults.NewInjected(16, 1, 1, drf0)
	res3, _ := Run(MarchCPlus(), mem3, RunOpts{MaxFails: 1})
	if !res3.Detected() {
		t.Error("March C+ missed a DRF0")
	}
}

func TestTripleReadsNeededForRDF(t *testing.T) {
	for _, v := range []bool{false, true} {
		rdf := faults.Fault{Kind: faults.RDF, Cell: 7, Value: v, Port: faults.AnyPort}

		mem := faults.NewInjected(16, 1, 1, rdf)
		res, _ := Run(MarchCPlus(), mem, RunOpts{MaxFails: 1})
		if res.Detected() {
			t.Errorf("March C+ (single reads) detected RDF%v; fault model broken", v)
		}

		mem2 := faults.NewInjected(16, 1, 1, rdf)
		res2, _ := Run(MarchCPlusPlus(), mem2, RunOpts{MaxFails: 1})
		if !res2.Detected() {
			t.Errorf("March C++ missed RDF%v", v)
		}
	}
}

func TestRunDetectsAddressFaults(t *testing.T) {
	for _, f := range []faults.Fault{
		{Kind: faults.AFNone, Addr: 3, Port: faults.AnyPort},
		{Kind: faults.AFMap, Addr: 3, AggAddr: 4, Port: faults.AnyPort},
		{Kind: faults.AFMulti, Addr: 3, AggAddr: 4, Port: faults.AnyPort},
	} {
		mem := faults.NewInjected(16, 1, 1, f)
		res, _ := Run(MATSPlus(), mem, RunOpts{MaxFails: 1})
		if !res.Detected() {
			t.Errorf("MATS+ missed %v", f)
		}
	}
}

func TestWordOrientedBackgroundsCatchIntraWordCoupling(t *testing.T) {
	// A coupling fault between two bits of the same word is invisible
	// under the solid background (both bits always carry the same value,
	// and a write updates aggressor and victim together), but a
	// checkerboard background drives them to opposite values.
	f := faults.Fault{Kind: faults.CFst, Aggressor: 8*4 + 1, Cell: 8*4 + 0,
		AggVal: true, Value: true, Port: faults.AnyPort}

	mem := faults.NewInjected(16, 4, 1, f)
	res, _ := Run(MarchC(), mem, RunOpts{MaxFails: 1, SingleBackground: true})
	if res.Detected() {
		t.Fatalf("intra-word CFst detected under solid background: %v", res.Fails)
	}

	mem2 := faults.NewInjected(16, 4, 1, f)
	res2, _ := Run(MarchC(), mem2, RunOpts{MaxFails: 1})
	if !res2.Detected() {
		t.Error("intra-word CFst missed even with all backgrounds")
	}
}

func TestMultiportPortLoopNeeded(t *testing.T) {
	// A read-circuit fault on port 1 only: testing port 0 alone misses
	// it, the full port loop catches it.
	f := faults.Fault{Kind: faults.SA, Cell: 6, Value: true, Port: 1}

	mem := faults.NewInjected(16, 1, 2, f)
	res, _ := Run(MarchC(), mem, RunOpts{MaxFails: 1, SinglePort: true})
	if res.Detected() {
		t.Fatal("port-1 fault detected while testing only port 0")
	}

	mem2 := faults.NewInjected(16, 1, 2, f)
	res2, _ := Run(MarchC(), mem2, RunOpts{MaxFails: 1})
	if !res2.Detected() {
		t.Error("port-1 fault missed by full port loop")
	}
}

func TestRunMaxFailsBounds(t *testing.T) {
	// Whole-array stuck-at-1 produces many fails; MaxFails caps them.
	var fs []faults.Fault
	for c := 0; c < 16; c++ {
		fs = append(fs, faults.Fault{Kind: faults.SA, Cell: c, Value: true, Port: faults.AnyPort})
	}
	mem := faults.NewInjected(16, 1, 1, fs...)
	res, _ := Run(MarchC(), mem, RunOpts{MaxFails: 5})
	if len(res.Fails) != 5 {
		t.Errorf("fails = %d, want capped at 5", len(res.Fails))
	}
	mem2 := faults.NewInjected(16, 1, 1, fs...)
	res2, _ := Run(MarchC(), mem2, RunOpts{})
	if len(res2.Fails) <= 5 {
		t.Errorf("uncapped run logged only %d fails", len(res2.Fails))
	}
}

func TestRunRejectsInvalidAlgorithm(t *testing.T) {
	bad := Algorithm{Name: "bad", Elements: []Element{{Order: Up, Ops: []Op{R(true)}}}}
	if _, err := Run(bad, memory.NewSRAM(8, 1, 1), RunOpts{}); err == nil {
		t.Error("Run accepted an invalid algorithm")
	}
}

func TestFailString(t *testing.T) {
	f := Fail{Port: 1, Background: 2, Element: 3, OpIndex: 0, Addr: 7, Expected: 1, Got: 0}
	s := f.String()
	for _, frag := range []string{"port 1", "bg 2", "elem 3", "addr 7"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Fail.String() = %q missing %q", s, frag)
		}
	}
}
