package march

import (
	"strings"
	"testing"
)

// TestParseErrorPaths pins each failure mode of the ASCII parser to its
// diagnostic, so a future grammar change cannot silently swallow one
// class of mistake into another.
func TestParseErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string // substring of the returned error
	}{
		{"empty text", "", "no elements"},
		{"only separators", " ; ;; ", "no elements"},
		{"unknown order", "x(w0)", "unknown address order"},
		{"unicode garbage order", "⇗(w0)", "unknown address order"},
		{"missing open paren", "u w0", "want ORDER(ops)"},
		{"missing close paren", "u(w0", "want ORDER(ops)"},
		{"empty ops", "u()", "bad op"},
		{"blank op", "b(w0); u(r0,)", "bad op"},
		{"one-char op", "u(w)", "bad op"},
		{"three-char op", "u(w01)", "bad op"},
		{"bad op kind", "u(q0)", "bad op kind"},
		{"bad op data", "u(w2)", "bad op data"},
		{"word op", "b(w0); u(read)", "bad op"},
		{"read before write", "u(r0)", "reads before any write"},
		{"polarity mismatch", "b(w0); u(r1)", "expects true but cells hold false"},
		{"stale state across elements", "b(w0); u(r0,w1); d(r0)", "expects false but cells hold true"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("bad", c.text)
			if err == nil {
				t.Fatalf("Parse(%q) accepted", c.text)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("Parse(%q) error = %q, want substring %q", c.text, err, c.want)
			}
		})
	}
}

// TestParseErrorLocatesElement checks the error wraps the failing
// element's index and text, the part a user needs to find the typo.
func TestParseErrorLocatesElement(t *testing.T) {
	_, err := Parse("bad", "b(w0); u(r0,w1); u(oops)")
	if err == nil {
		t.Fatal("bad element accepted")
	}
	for _, want := range []string{"element 2", `"u(oops)"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not contain %q", err, want)
		}
	}
}

// TestParseAcceptsNotationVariants covers the tolerant parts of the
// grammar: order aliases, arrow glyphs, case and whitespace.
func TestParseAcceptsNotationVariants(t *testing.T) {
	cases := []struct {
		text  string
		order Order
	}{
		{"b(w0); u(r0)", Up},
		{"b(w0); up(r0)", Up},
		{"b(w0); ⇑(r0)", Up},
		{"b(w0); d(r0)", Down},
		{"b(w0); down(r0)", Down},
		{"b(w0); ⇓(r0)", Down},
		{"b(w0); b(r0)", Any},
		{"b(w0); any(r0)", Any},
		{"b(w0); both(r0)", Any},
		{"b(w0); ⇕(r0)", Any},
		{"b(w0); U( r0 )", Up},
		{"  b(w0) ;\tu(r0)  ", Up},
	}
	for _, c := range cases {
		a, err := Parse("variant", c.text)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.text, err)
			continue
		}
		if len(a.Elements) != 2 || a.Elements[1].Order != c.order {
			t.Errorf("Parse(%q) = %v, want second element order %v", c.text, a, c.order)
		}
	}
}

func TestParseDelCaseInsensitive(t *testing.T) {
	a, err := Parse("ret", "b(w0); DEL b(r0)")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Elements[1].PauseBefore {
		t.Error("upper-case DEL prefix not recognised")
	}
	if a.Elements[0].PauseBefore {
		t.Error("pause leaked onto the first element")
	}
}
