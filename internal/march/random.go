package march

import "math/rand"

// Random builds a random, guaranteed-valid march algorithm: polarities
// are chained so every read expects the uniform state the preceding
// operations established. It drives the property-based tests that fuzz
// the assemblers, compilers and executors against the reference runner.
func Random(rng *rand.Rand) Algorithm {
	a := Algorithm{Name: "random"}
	state := rng.Intn(2) == 1
	a.Elements = append(a.Elements, Element{
		Order: Order(rng.Intn(3)),
		Ops:   []Op{W(state)},
	})
	n := 1 + rng.Intn(5)
	for i := 0; i < n; i++ {
		e := Element{Order: Order(rng.Intn(3)), PauseBefore: rng.Intn(4) == 0}
		k := 1 + rng.Intn(4)
		for j := 0; j < k; j++ {
			if rng.Intn(2) == 0 {
				e.Ops = append(e.Ops, R(state))
			} else {
				state = rng.Intn(2) == 1
				e.Ops = append(e.Ops, W(state))
			}
		}
		a.Elements = append(a.Elements, e)
	}
	return a
}
