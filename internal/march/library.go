package march

// Standard march test algorithms, and the enhanced deviations the paper
// evaluates its non-programmable controllers on.

// MATSPlus is MATS+ (5N): detects all address-decoder and stuck-at
// faults.
func MATSPlus() Algorithm {
	return Algorithm{Name: "MATS+", Elements: []Element{
		{Order: Any, Ops: []Op{W(false)}},
		{Order: Up, Ops: []Op{R(false), W(true)}},
		{Order: Down, Ops: []Op{R(true), W(false)}},
	}}
}

// MarchX is March X (6N): MATS+ plus a final verify, adding inversion
// coupling fault coverage.
func MarchX() Algorithm {
	return Algorithm{Name: "March X", Elements: []Element{
		{Order: Any, Ops: []Op{W(false)}},
		{Order: Up, Ops: []Op{R(false), W(true)}},
		{Order: Down, Ops: []Op{R(true), W(false)}},
		{Order: Any, Ops: []Op{R(false)}},
	}}
}

// MarchY is March Y (8N): March X with read-back after writes, adding
// linked transition fault coverage.
func MarchY() Algorithm {
	return Algorithm{Name: "March Y", Elements: []Element{
		{Order: Any, Ops: []Op{W(false)}},
		{Order: Up, Ops: []Op{R(false), W(true), R(true)}},
		{Order: Down, Ops: []Op{R(true), W(false), R(false)}},
		{Order: Any, Ops: []Op{R(false)}},
	}}
}

// MarchC is the 10N March C of the paper's Eq. 1 (the variant usually
// called March C- in the literature): it detects stuck-at, transition,
// address-decoder and unlinked coupling faults. Note the down-order
// elements complement the up-order pair — the symmetry the microcode
// architecture's Repeat instruction folds away (Fig. 2 of the paper).
func MarchC() Algorithm {
	return Algorithm{Name: "March C", Elements: []Element{
		{Order: Any, Ops: []Op{W(false)}},
		{Order: Up, Ops: []Op{R(false), W(true)}},
		{Order: Up, Ops: []Op{R(true), W(false)}},
		{Order: Down, Ops: []Op{R(false), W(true)}},
		{Order: Down, Ops: []Op{R(true), W(false)}},
		{Order: Any, Ops: []Op{R(false)}},
	}}
}

// MarchCOriginal is the 11N March C with the redundant middle verify
// element, as originally published by Marinescu.
func MarchCOriginal() Algorithm {
	return Algorithm{Name: "March C (11N)", Elements: []Element{
		{Order: Any, Ops: []Op{W(false)}},
		{Order: Up, Ops: []Op{R(false), W(true)}},
		{Order: Up, Ops: []Op{R(true), W(false)}},
		{Order: Any, Ops: []Op{R(false)}},
		{Order: Down, Ops: []Op{R(false), W(true)}},
		{Order: Down, Ops: []Op{R(true), W(false)}},
		{Order: Any, Ops: []Op{R(false)}},
	}}
}

// MarchA is March A (15N): detects linked idempotent coupling faults.
func MarchA() Algorithm {
	return Algorithm{Name: "March A", Elements: []Element{
		{Order: Any, Ops: []Op{W(false)}},
		{Order: Up, Ops: []Op{R(false), W(true), W(false), W(true)}},
		{Order: Up, Ops: []Op{R(true), W(false), W(true)}},
		{Order: Down, Ops: []Op{R(true), W(false), W(true), W(false)}},
		{Order: Down, Ops: []Op{R(false), W(true), W(false)}},
	}}
}

// MarchB is March B (17N): March A with additional read verification,
// detecting linked transition and coupling fault combinations.
func MarchB() Algorithm {
	return Algorithm{Name: "March B", Elements: []Element{
		{Order: Any, Ops: []Op{W(false)}},
		{Order: Up, Ops: []Op{R(false), W(true), R(true), W(false), R(false), W(true)}},
		{Order: Up, Ops: []Op{R(true), W(false), W(true)}},
		{Order: Down, Ops: []Op{R(true), W(false), W(true), W(false)}},
		{Order: Down, Ops: []Op{R(false), W(true), W(false)}},
	}}
}

// MarchSS is March SS (Hamdioui et al., 22N): the simple static fault
// test. Its non-transition writes and back-to-back reads detect write
// disturb (WDF), incorrect read (IRF) and deceptive read-destructive
// (DRDF) faults that the classical tests miss.
func MarchSS() Algorithm {
	return Algorithm{Name: "March SS", Elements: []Element{
		{Order: Any, Ops: []Op{W(false)}},
		{Order: Up, Ops: []Op{R(false), R(false), W(false), R(false), W(true)}},
		{Order: Up, Ops: []Op{R(true), R(true), W(true), R(true), W(false)}},
		{Order: Down, Ops: []Op{R(false), R(false), W(false), R(false), W(true)}},
		{Order: Down, Ops: []Op{R(true), R(true), W(true), R(true), W(false)}},
		{Order: Any, Ops: []Op{R(false)}},
	}}
}

// MarchLR is March LR (van de Goor et al., 14N): detects linked
// (mutually masking) coupling faults.
func MarchLR() Algorithm {
	return Algorithm{Name: "March LR", Elements: []Element{
		{Order: Any, Ops: []Op{W(false)}},
		{Order: Down, Ops: []Op{R(false), W(true)}},
		{Order: Up, Ops: []Op{R(true), W(false), R(false), W(true)}},
		{Order: Up, Ops: []Op{R(true), W(false)}},
		{Order: Up, Ops: []Op{R(false), W(true), R(true), W(false)}},
		{Order: Up, Ops: []Op{R(false)}},
	}}
}

// MarchG is March G (van de Goor, 23N + 2 delays): March B extended
// with data-retention phases — the most thorough of the classical
// tests.
func MarchG() Algorithm {
	return Algorithm{Name: "March G", Elements: []Element{
		{Order: Any, Ops: []Op{W(false)}},
		{Order: Up, Ops: []Op{R(false), W(true), R(true), W(false), R(false), W(true)}},
		{Order: Up, Ops: []Op{R(true), W(false), W(true)}},
		{Order: Down, Ops: []Op{R(true), W(false), W(true), W(false)}},
		{Order: Down, Ops: []Op{R(false), W(true), W(false)}},
		{PauseBefore: true, Order: Any, Ops: []Op{R(false), W(true), R(true)}},
		{PauseBefore: true, Order: Any, Ops: []Op{R(true), W(false), R(false)}},
	}}
}

// WithRetention appends the paper's data-retention extension: a delay
// phase, a read/write-back/read sweep, a second delay, and a final
// verify. This is the "+" deviation (March C+, March A+): it detects
// data-retention faults in both leakage polarities.
func WithRetention(a Algorithm) Algorithm {
	s := a.FinalState()
	out := Algorithm{Name: a.Name + "+"}
	out.Elements = append(out.Elements, a.Elements...)
	out.Elements = append(out.Elements,
		Element{PauseBefore: true, Order: Any, Ops: []Op{R(s), W(!s), R(!s)}},
		Element{PauseBefore: true, Order: Any, Ops: []Op{R(!s)}},
	)
	return out
}

// WithTripleReads replaces every read by three consecutive reads — the
// "++" deviation (March C++, March A++), which excites and detects
// disconnected pull-up/pull-down devices (read-disturb faults).
func WithTripleReads(a Algorithm) Algorithm {
	out := Algorithm{Name: a.Name + "×3r"}
	for _, e := range a.Elements {
		ne := Element{Order: e.Order, PauseBefore: e.PauseBefore}
		for _, op := range e.Ops {
			if op.Kind == Read {
				ne.Ops = append(ne.Ops, op, op, op)
			} else {
				ne.Ops = append(ne.Ops, op)
			}
		}
		out.Elements = append(out.Elements, ne)
	}
	return out
}

// MarchCPlus is March C+ — March C with the retention extension.
func MarchCPlus() Algorithm {
	a := WithRetention(MarchC())
	a.Name = "March C+"
	return a
}

// MarchCPlusPlus is March C++ — March C+ with every read tripled.
func MarchCPlusPlus() Algorithm {
	a := WithTripleReads(WithRetention(MarchC()))
	a.Name = "March C++"
	return a
}

// MarchAPlus is March A+ — March A with the retention extension.
func MarchAPlus() Algorithm {
	a := WithRetention(MarchA())
	a.Name = "March A+"
	return a
}

// MarchAPlusPlus is March A++ — March A+ with every read tripled.
func MarchAPlusPlus() Algorithm {
	a := WithTripleReads(WithRetention(MarchA()))
	a.Name = "March A++"
	return a
}

// Library returns the standard algorithms by canonical lower-case name.
func Library() map[string]func() Algorithm {
	return map[string]func() Algorithm{
		"mats+":    MATSPlus,
		"marchx":   MarchX,
		"marchy":   MarchY,
		"marchc":   MarchC,
		"marchc11": MarchCOriginal,
		"marchc+":  MarchCPlus,
		"marchc++": MarchCPlusPlus,
		"marcha":   MarchA,
		"marcha+":  MarchAPlus,
		"marcha++": MarchAPlusPlus,
		"marchb":   MarchB,
		"marchss":  MarchSS,
		"marchlr":  MarchLR,
		"marchg":   MarchG,
	}
}

// ByName looks up a library algorithm by its canonical name.
func ByName(name string) (Algorithm, bool) {
	f, ok := Library()[name]
	if !ok {
		return Algorithm{}, false
	}
	return f(), true
}
