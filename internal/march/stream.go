package march

import (
	"context"
	"fmt"

	"repro/internal/memory"
)

// StreamOp is one entry of the canonical memory-operation stream of a
// march test on a fault-free memory: reads carry the value a clean
// memory returns (the expected pattern), writes the written word.
// Pause entries (Pause true, every other field zero) mark retention
// delay phases; OpStream/OpStreamPorts omit them, FullStream and
// Recorder include them.
type StreamOp struct {
	Write bool
	Pause bool
	Port  int
	Addr  int
	Data  uint64
}

// OpStream expands the algorithm into its full operation stream for a
// memory of the given geometry through one port, all data backgrounds
// included. It is the golden sequence the gate-level BIST harness runs
// are compared against. Pause phases are not included; see FullStream.
func OpStream(a Algorithm, size, width int) []StreamOp {
	return OpStreamPorts(a, size, width, 1)
}

// OpStreamPorts is OpStream with the outer port loop included: the
// whole test repeats per port (the Fig. 2 instruction-9 nesting).
func OpStreamPorts(a Algorithm, size, width, ports int) []StreamOp {
	return expandStream(a, size, width, ports, false, false)
}

// FullStream is the canonical stream including Pause entries, with the
// same loop structure as the reference runner (ports outer, data
// backgrounds inner, a Pause entry before each PauseBefore element on
// every pass). singleBackground restricts the expansion to the solid
// background, matching RunOpts.SingleBackground. A fault-free memory
// driven by this stream behaves exactly as under march.Run, so it is
// the reference the lane-parallel grading engine validates captured
// controller streams against.
func FullStream(a Algorithm, size, width, ports int, singleBackground bool) []StreamOp {
	return expandStream(a, size, width, ports, singleBackground, true)
}

// FullStreamContext is FullStream with cancellation for matrix-scale
// geometries, where one expansion can reach millions of entries: the
// context is checked at element boundaries and a cancelled expansion
// returns nil with the context's error.
func FullStreamContext(ctx context.Context, a Algorithm, size, width, ports int, singleBackground bool) ([]StreamOp, error) {
	mask := wordMask(width)
	bgs := Backgrounds(width)
	if singleBackground {
		bgs = bgs[:1]
	}
	var ops []StreamOp
	for port := 0; port < ports; port++ {
		for _, bg := range bgs {
			for _, e := range a.Elements {
				if err := ctx.Err(); err != nil {
					return nil, fmt.Errorf("march: %s stream expansion cancelled: %w", a.Name, err)
				}
				ops = appendElement(ops, e, size, port, bg, mask, true)
			}
		}
	}
	return ops, nil
}

func expandStream(a Algorithm, size, width, ports int, singleBackground, pauses bool) []StreamOp {
	mask := wordMask(width)
	bgs := Backgrounds(width)
	if singleBackground {
		bgs = bgs[:1]
	}
	var ops []StreamOp
	for port := 0; port < ports; port++ {
		for _, bg := range bgs {
			for _, e := range a.Elements {
				ops = appendElement(ops, e, size, port, bg, mask, pauses)
			}
		}
	}
	return ops
}

// appendElement expands one march element over the address range into
// ops — the shared inner loop of every stream expansion.
func appendElement(ops []StreamOp, e Element, size, port int, bg, mask uint64, pauses bool) []StreamOp {
	if pauses && e.PauseBefore {
		ops = append(ops, StreamOp{Pause: true})
	}
	for k := 0; k < size; k++ {
		addr := k
		if e.Order == Down {
			addr = size - 1 - k
		}
		for _, op := range e.Ops {
			data := bg
			if op.Data {
				data = ^bg & mask
			}
			ops = append(ops, StreamOp{
				Write: op.Kind == Write,
				Port:  port,
				Addr:  addr,
				Data:  data,
			})
		}
	}
	return ops
}

// Recorder wraps a memory and records every operation issued to it as
// a StreamOp, reads carrying the value the inner memory returned.
// Running a BIST controller over a Recorder around a fault-free memory
// captures the controller's canonical operation stream — the input the
// lane-parallel grading engine replays against fault batches.
type Recorder struct {
	Mem memory.Memory
	Ops []StreamOp
}

// Size returns the inner memory's address count.
func (r *Recorder) Size() int { return r.Mem.Size() }

// Width returns the inner memory's word width.
func (r *Recorder) Width() int { return r.Mem.Width() }

// Ports returns the inner memory's port count.
func (r *Recorder) Ports() int { return r.Mem.Ports() }

// Read forwards to the inner memory and records the returned value.
func (r *Recorder) Read(port, addr int) uint64 {
	v := r.Mem.Read(port, addr)
	r.Ops = append(r.Ops, StreamOp{Port: port, Addr: addr, Data: v})
	return v
}

// Write forwards to the inner memory and records the written value.
func (r *Recorder) Write(port, addr int, data uint64) {
	r.Mem.Write(port, addr, data)
	r.Ops = append(r.Ops, StreamOp{Write: true, Port: port, Addr: addr, Data: data})
}

// Pause forwards to the inner memory and records a pause entry.
func (r *Recorder) Pause() {
	r.Mem.Pause()
	r.Ops = append(r.Ops, StreamOp{Pause: true})
}

var _ memory.Memory = (*Recorder)(nil)
