package march

// StreamOp is one entry of the canonical memory-operation stream of a
// march test on a fault-free memory: reads carry the value a clean
// memory returns (the expected pattern), writes the written word.
type StreamOp struct {
	Write bool
	Port  int
	Addr  int
	Data  uint64
}

// OpStream expands the algorithm into its full operation stream for a
// memory of the given geometry through one port, all data backgrounds
// included. It is the golden sequence the gate-level BIST harness runs
// are compared against.
func OpStream(a Algorithm, size, width int) []StreamOp {
	return OpStreamPorts(a, size, width, 1)
}

// OpStreamPorts is OpStream with the outer port loop included: the
// whole test repeats per port (the Fig. 2 instruction-9 nesting).
func OpStreamPorts(a Algorithm, size, width, ports int) []StreamOp {
	mask := wordMask(width)
	var ops []StreamOp
	for port := 0; port < ports; port++ {
		for _, bg := range Backgrounds(width) {
			for _, e := range a.Elements {
				for k := 0; k < size; k++ {
					addr := k
					if e.Order == Down {
						addr = size - 1 - k
					}
					for _, op := range e.Ops {
						data := bg
						if op.Data {
							data = ^bg & mask
						}
						ops = append(ops, StreamOp{
							Write: op.Kind == Write,
							Port:  port,
							Addr:  addr,
							Data:  data,
						})
					}
				}
			}
		}
	}
	return ops
}
