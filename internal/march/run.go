package march

import (
	"context"
	"fmt"

	"repro/internal/memory"
	"repro/internal/obs"
)

// Backgrounds returns the data-background patterns for a word width:
// the solid pattern plus log2(width) alternating "checkerboard" patterns
// of doubling stripe size. Width 1 has the single background 0. Each
// pattern and its complement are exercised by the algorithm's own 0/1
// polarity, so only the base patterns are listed.
func Backgrounds(width int) []uint64 {
	bgs := []uint64{0}
	for stripe := 1; stripe < width; stripe <<= 1 {
		var bg uint64
		for bit := 0; bit < width; bit++ {
			if bit/stripe%2 == 1 {
				bg |= 1 << uint(bit)
			}
		}
		bgs = append(bgs, bg)
	}
	return bgs
}

// Fail records one miscompare observed while running a march test.
type Fail struct {
	Port       int
	Background int // index into the background list
	Element    int // element index within the algorithm
	OpIndex    int // op index within the element
	Addr       int
	Expected   uint64
	Got        uint64
}

func (f Fail) String() string {
	return fmt.Sprintf("port %d bg %d elem %d op %d addr %d: read %0b, expected %0b",
		f.Port, f.Background, f.Element, f.OpIndex, f.Addr, f.Got, f.Expected)
}

// Result is the outcome of a march test run.
type Result struct {
	Fails      []Fail
	Operations int // memory read+write operations issued
	PauseCount int // retention delays taken
}

// Detected reports whether any miscompare occurred.
func (r *Result) Detected() bool { return len(r.Fails) > 0 }

// RunOpts tunes the reference runner.
type RunOpts struct {
	// MaxFails stops the run after this many miscompares (0 = run to
	// completion, logging every fail — the diagnostic mode).
	MaxFails int
	// SinglePort restricts testing to port 0 even on multiport
	// memories.
	SinglePort bool
	// SingleBackground restricts testing to the solid background even
	// on word-oriented memories.
	SingleBackground bool
	// Ctx, when non-nil, is checked at every march-element boundary:
	// once cancelled or past its deadline, Run stops and returns the
	// partial Result alongside the context's error. Nil means run to
	// completion (context.Background semantics, without the lookup).
	Ctx context.Context
}

// Run executes the algorithm directly against the memory: the reference
// (behavioural) implementation of a march test, used as the oracle for
// every BIST controller architecture. Ports are the outer loop and data
// backgrounds the inner loop, matching the microcode architecture's
// instruction 8/9 nesting in Fig. 2 of the paper.
func Run(a Algorithm, mem memory.Memory, opts RunOpts) (*Result, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}
	mask := wordMask(mem.Width())
	bgs := Backgrounds(mem.Width())
	if opts.SingleBackground {
		bgs = bgs[:1]
	}
	ports := mem.Ports()
	if opts.SinglePort {
		ports = 1
	}
	n := mem.Size()

	// Metrics: total reads/writes plus the per-element operation-count
	// distribution. Reads and writes accumulate in locals and flush per
	// element so the memory loop stays free of atomics; nil no-op
	// instruments when metrics are off.
	reg := obs.Active()
	mRuns := reg.Counter("march.runs")
	mReads := reg.Counter("march.reads")
	mWrites := reg.Counter("march.writes")
	mPauses := reg.Counter("march.pauses")
	mElemOps := reg.Span("march.element_ops")
	mRuns.Add(1)
	var reads, writes int64

	for port := 0; port < ports; port++ {
		for bgIdx, bg := range bgs {
			for ei, e := range a.Elements {
				if opts.Ctx != nil {
					if err := opts.Ctx.Err(); err != nil {
						mReads.Add(reads)
						mWrites.Add(writes)
						return res, fmt.Errorf("march: %s cancelled at port %d bg %d element %d: %w",
							a.Name, port, bgIdx, ei, err)
					}
				}
				if e.PauseBefore {
					mem.Pause()
					res.PauseCount++
					mPauses.Add(1)
				}
				elemStart := res.Operations
				for k := 0; k < n; k++ {
					addr := k
					if e.Order == Down {
						addr = n - 1 - k
					}
					for oi, op := range e.Ops {
						data := bg
						if op.Data {
							data = ^bg & mask
						}
						switch op.Kind {
						case Write:
							mem.Write(port, addr, data)
							res.Operations++
							writes++
						case Read:
							got := mem.Read(port, addr)
							res.Operations++
							reads++
							if got != data {
								res.Fails = append(res.Fails, Fail{
									Port: port, Background: bgIdx,
									Element: ei, OpIndex: oi, Addr: addr,
									Expected: data, Got: got,
								})
								if opts.MaxFails > 0 && len(res.Fails) >= opts.MaxFails {
									mElemOps.Observe(int64(res.Operations - elemStart))
									mReads.Add(reads)
									mWrites.Add(writes)
									return res, nil
								}
							}
						}
					}
				}
				mElemOps.Observe(int64(res.Operations - elemStart))
			}
		}
	}
	mReads.Add(reads)
	mWrites.Add(writes)
	return res, nil
}

func wordMask(width int) uint64 {
	if width == 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(width) - 1
}
