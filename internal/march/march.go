// Package march models march memory-test algorithms: the element
// notation of van de Goor ("Testing Semiconductor Memories"), a library
// of standard algorithms and the paper's enhanced variants, a text
// parser, structural analysis (well-formedness, symmetry folding for the
// microcode architecture), and a reference runner that serves as the
// functional oracle every BIST controller in this repository is checked
// against.
package march

import (
	"fmt"
	"strings"
)

// Order is the address order of a march element.
type Order uint8

const (
	// Up traverses addresses 0 .. N-1.
	Up Order = iota
	// Down traverses addresses N-1 .. 0.
	Down
	// Any means the order is irrelevant for fault coverage; runners use
	// ascending order.
	Any
)

func (o Order) String() string {
	switch o {
	case Up:
		return "⇑"
	case Down:
		return "⇓"
	default:
		return "⇕"
	}
}

// Reverse returns the opposite traversal order; Any stays Any.
func (o Order) Reverse() Order {
	switch o {
	case Up:
		return Down
	case Down:
		return Up
	default:
		return Any
	}
}

// OpKind distinguishes read and write operations.
type OpKind uint8

const (
	// Read reads a cell and compares against the expected data.
	Read OpKind = iota
	// Write stores data into the cell.
	Write
)

// Op is a single read or write within a march element. Data is the
// polarity relative to the current data background: false writes/expects
// the background pattern ("0"), true its complement ("1").
type Op struct {
	Kind OpKind
	Data bool
}

func (op Op) String() string {
	k := "r"
	if op.Kind == Write {
		k = "w"
	}
	d := "0"
	if op.Data {
		d = "1"
	}
	return k + d
}

// Invert returns the op with complemented data polarity.
func (op Op) Invert() Op {
	op.Data = !op.Data
	return op
}

// R and W build ops concisely: R(false) is r0, W(true) is w1.
func R(data bool) Op { return Op{Kind: Read, Data: data} }

// W builds a write op.
func W(data bool) Op { return Op{Kind: Write, Data: data} }

// Element is one march element: an address order and an op sequence
// applied to each cell before advancing. PauseBefore inserts a retention
// delay before the element starts (the "Hold"/Del phase of the paper's
// March C+ and A+ deviations).
type Element struct {
	Order       Order
	Ops         []Op
	PauseBefore bool
}

func (e Element) String() string {
	var b strings.Builder
	if e.PauseBefore {
		b.WriteString("Del ")
	}
	b.WriteString(e.Order.String())
	b.WriteByte('(')
	for i, op := range e.Ops {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(op.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Mask selects which fields of an element the microcode architecture's
// reference register complements on a Repeat: the address order, the
// write data polarity and the read compare polarity. These are the three
// auxiliary bits of the paper's 4-bit reference register.
type Mask struct {
	Order   bool
	Data    bool // write polarity
	Compare bool // read (expected-data) polarity
}

// IsZero reports whether the mask transforms nothing.
func (m Mask) IsZero() bool { return !m.Order && !m.Data && !m.Compare }

func (m Mask) String() string {
	s := ""
	if m.Order {
		s += "order"
	}
	if m.Data {
		if s != "" {
			s += "+"
		}
		s += "data"
	}
	if m.Compare {
		if s != "" {
			s += "+"
		}
		s += "compare"
	}
	if s == "" {
		return "none"
	}
	return s
}

// Transform applies a reference-register mask to the element.
func (e Element) Transform(m Mask) Element {
	out := Element{Order: e.Order, PauseBefore: e.PauseBefore}
	if m.Order {
		out.Order = e.Order.Reverse()
	}
	out.Ops = make([]Op, len(e.Ops))
	for i, op := range e.Ops {
		flip := m.Data
		if op.Kind == Read {
			flip = m.Compare
		}
		if flip {
			op = op.Invert()
		}
		out.Ops[i] = op
	}
	return out
}

// Complement returns the element under the full mask (order, data and
// compare all inverted).
func (e Element) Complement() Element {
	return e.Transform(Mask{Order: true, Data: true, Compare: true})
}

// Equal reports structural equality of two elements.
func (e Element) Equal(f Element) bool {
	if e.Order != f.Order || e.PauseBefore != f.PauseBefore || len(e.Ops) != len(f.Ops) {
		return false
	}
	for i := range e.Ops {
		if e.Ops[i] != f.Ops[i] {
			return false
		}
	}
	return true
}

// Algorithm is a complete march test.
type Algorithm struct {
	Name     string
	Elements []Element
}

// String renders the algorithm in the paper's notation, e.g.
// "{⇕(w0); ⇑(r0,w1); ...}".
func (a Algorithm) String() string {
	parts := make([]string, len(a.Elements))
	for i, e := range a.Elements {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, "; ") + "}"
}

// OpCount returns the number of operations per cell, i.e. the k of the
// algorithm's kN complexity.
func (a Algorithm) OpCount() int {
	n := 0
	for _, e := range a.Elements {
		n += len(e.Ops)
	}
	return n
}

// Pauses returns the number of retention delay phases.
func (a Algorithm) Pauses() int {
	n := 0
	for _, e := range a.Elements {
		if e.PauseBefore {
			n++
		}
	}
	return n
}

// Validate checks well-formedness: the algorithm must start by writing
// before it reads, and every read's expected polarity must match the
// uniform cell state produced by the preceding operations.
func (a Algorithm) Validate() error {
	if len(a.Elements) == 0 {
		return fmt.Errorf("march %s: no elements", a.Name)
	}
	known := false
	var state bool
	for ei, e := range a.Elements {
		if len(e.Ops) == 0 {
			return fmt.Errorf("march %s: element %d is empty", a.Name, ei)
		}
		// Track the state of the *current* cell through the element.
		// Because every cell sees the same op sequence, the uniform
		// pre-element state is the post-element state of the previous
		// element's last cell.
		cur := state
		for oi, op := range e.Ops {
			switch op.Kind {
			case Read:
				if !known {
					return fmt.Errorf("march %s: element %d op %d reads before any write", a.Name, ei, oi)
				}
				if op.Data != cur {
					return fmt.Errorf("march %s: element %d op %d expects %v but cells hold %v",
						a.Name, ei, oi, op.Data, cur)
				}
			case Write:
				cur = op.Data
				known = true
			}
		}
		state = cur
	}
	return nil
}

// FinalState returns the uniform cell state after the algorithm
// completes. Validate must pass for the result to be meaningful.
func (a Algorithm) FinalState() bool {
	var state bool
	for _, e := range a.Elements {
		for _, op := range e.Ops {
			if op.Kind == Write {
				state = op.Data
			}
		}
	}
	return state
}

// ReadCount returns the number of read operations per cell.
func (a Algorithm) ReadCount() int {
	n := 0
	for _, e := range a.Elements {
		for _, op := range e.Ops {
			if op.Kind == Read {
				n++
			}
		}
	}
	return n
}
