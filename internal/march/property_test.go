package march

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/memory"
)

// randomAlgorithm aliases the exported fuzz helper.
func randomAlgorithm(rng *rand.Rand) Algorithm { return Random(rng) }

func TestRandomAlgorithmsValidateProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := randomAlgorithm(rand.New(rand.NewSource(seed)))
		return a.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRandomAlgorithmsPassCleanMemoryProperty: any valid march
// algorithm runs clean on a fault-free memory.
func TestRandomAlgorithmsPassCleanMemoryProperty(t *testing.T) {
	f := func(seed int64, width8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomAlgorithm(rng)
		width := 1 + int(width8)%8
		mem := memory.NewSRAM(16, width, 1)
		res, err := Run(a, mem, RunOpts{})
		if err != nil {
			return false
		}
		return !res.Detected() && res.Operations == a.OpCount()*16*len(Backgrounds(width))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFoldUnfoldIdentityProperty: for any valid algorithm, folding and
// unfolding is the identity.
func TestFoldUnfoldIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := randomAlgorithm(rand.New(rand.NewSource(seed)))
		reduced, fold, ok := a.Folded()
		if !ok {
			return true
		}
		back := Unfold(reduced, fold)
		if len(back.Elements) != len(a.Elements) {
			return false
		}
		for i := range a.Elements {
			if !back.Elements[i].Equal(a.Elements[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestParsePrintRoundTripProperty: printing an algorithm in ASCII
// notation and re-parsing it reproduces the same algorithm.
func TestParsePrintRoundTripProperty(t *testing.T) {
	toASCII := func(a Algorithm) string {
		s := ""
		for i, e := range a.Elements {
			if i > 0 {
				s += "; "
			}
			if e.PauseBefore {
				s += "del "
			}
			switch e.Order {
			case Up:
				s += "u("
			case Down:
				s += "d("
			default:
				s += "b("
			}
			for j, op := range e.Ops {
				if j > 0 {
					s += ","
				}
				s += op.String()
			}
			s += ")"
		}
		return s
	}
	f := func(seed int64) bool {
		a := randomAlgorithm(rand.New(rand.NewSource(seed)))
		back, err := Parse("round", toASCII(a))
		if err != nil {
			return false
		}
		if len(back.Elements) != len(a.Elements) {
			return false
		}
		for i := range a.Elements {
			if !back.Elements[i].Equal(a.Elements[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestOpStreamLengthProperty: the op stream length is
// OpCount × size × backgrounds.
func TestOpStreamLengthProperty(t *testing.T) {
	f := func(seed int64, size8, width8 uint8) bool {
		a := randomAlgorithm(rand.New(rand.NewSource(seed)))
		size := 1 + int(size8)%32
		width := 1 + int(width8)%8
		stream := OpStream(a, size, width)
		return len(stream) == a.OpCount()*size*len(Backgrounds(width))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
