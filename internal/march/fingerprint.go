package march

// Fingerprint hashes an algorithm's full structure (name, element
// orders, pause flags and operation lists) with FNV-1a, so two
// different algorithms sharing a Name cannot alias a content-addressed
// cache entry. It is the algorithm component of every synthesis cache
// key (internal/artifact consumers in coverage, lint and the grading
// service).
func Fingerprint(alg Algorithm) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	mixByte := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 0; i < len(alg.Name); i++ {
		mixByte(alg.Name[i])
	}
	for _, e := range alg.Elements {
		mixByte(0xff) // element delimiter
		mixByte(byte(e.Order))
		if e.PauseBefore {
			mixByte(1)
		} else {
			mixByte(0)
		}
		for _, op := range e.Ops {
			mixByte(byte(op.Kind))
			if op.Data {
				mixByte(1)
			} else {
				mixByte(0)
			}
		}
	}
	return h
}
