package march

import (
	"testing"

	"repro/internal/memory"
)

// TestFullStreamMatchesOpStreamPlusPauses: stripping the pause entries
// from FullStream must recover OpStreamPorts exactly, and the number of
// pause entries must be Pauses() per background per port.
func TestFullStreamMatchesOpStreamPlusPauses(t *testing.T) {
	for _, algf := range []func() Algorithm{MarchC, MarchCPlus, MarchG, MarchA} {
		alg := algf()
		size, width, ports := 6, 2, 2
		full := FullStream(alg, size, width, ports, false)
		var stripped []StreamOp
		pauses := 0
		for _, op := range full {
			if op.Pause {
				pauses++
				continue
			}
			stripped = append(stripped, op)
		}
		want := OpStreamPorts(alg, size, width, ports)
		if len(stripped) != len(want) {
			t.Fatalf("%s: stripped FullStream has %d ops, OpStreamPorts %d", alg.Name, len(stripped), len(want))
		}
		for i := range want {
			if stripped[i] != want[i] {
				t.Fatalf("%s: op %d differs: %+v vs %+v", alg.Name, i, stripped[i], want[i])
			}
		}
		wantPauses := alg.Pauses() * len(Backgrounds(width)) * ports
		if pauses != wantPauses {
			t.Errorf("%s: %d pause entries, want %d", alg.Name, pauses, wantPauses)
		}
	}
}

// TestRecorderCapturesReferenceRun: driving the reference runner over a
// Recorder-wrapped fault-free memory must capture exactly FullStream —
// the property the lane-parallel grading engine's stream guard relies
// on.
func TestRecorderCapturesReferenceRun(t *testing.T) {
	for _, tc := range []struct {
		width, ports int
	}{{1, 1}, {2, 1}, {1, 2}, {2, 2}} {
		for _, algf := range []func() Algorithm{MarchC, MarchCPlus, MarchSS} {
			alg := algf()
			size := 5
			rec := &Recorder{Mem: memory.NewSRAM(size, tc.width, tc.ports)}
			res, err := Run(alg, rec, RunOpts{
				MaxFails:         1,
				SinglePort:       tc.ports == 1,
				SingleBackground: tc.width == 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Detected() {
				t.Fatalf("%s: fault-free run detected a fail", alg.Name)
			}
			want := FullStream(alg, size, tc.width, tc.ports, tc.width == 1)
			if len(rec.Ops) != len(want) {
				t.Fatalf("%s %dx%d/%dp: captured %d ops, want %d",
					alg.Name, size, tc.width, tc.ports, len(rec.Ops), len(want))
			}
			for i := range want {
				if rec.Ops[i] != want[i] {
					t.Fatalf("%s: op %d captured %+v, want %+v", alg.Name, i, rec.Ops[i], want[i])
				}
			}
		}
	}
}

// TestRecorderForwardsGeometry: the wrapper must present the inner
// memory's geometry unchanged.
func TestRecorderForwardsGeometry(t *testing.T) {
	rec := &Recorder{Mem: memory.NewSRAM(8, 4, 2)}
	if rec.Size() != 8 || rec.Width() != 4 || rec.Ports() != 2 {
		t.Errorf("recorder geometry %dx%d/%dp, want 8x4/2p", rec.Size(), rec.Width(), rec.Ports())
	}
}
