// Package logicbist grades the testability of the BIST controllers'
// own logic — the paper's §3 discussion: the controller must itself be
// testable, and the two programmable architectures differ in how their
// storage units are exercised (scan-only registers "could be used as a
// set of stimulus test points to test the entire memory BIST unit",
// versus random logic BIST over the FSM architecture's functional-clock
// register file).
//
// The model is standard full-scan random-pattern logic BIST: every
// flip-flop is scan-controllable and scan-observable, so each random
// pattern assigns all primary inputs and flip-flop outputs
// (pseudo-inputs) and observes all primary outputs and flip-flop D
// inputs (pseudo-outputs). Faults are single stuck-at-0/1 on every
// driven net.
//
// Two fault-simulation engines grade the same model: the bit-parallel
// default packs the good machine and up to 63 faulty machines into the
// lanes of a gatesim.WordSimulator (PPSFP), while the serial engine
// re-settles the netlist once per fault per pattern. Both produce
// identical Results for the same seed; the serial engine remains as the
// cross-check oracle and benchmark baseline.
package logicbist

import (
	"fmt"
	"math/rand"

	"repro/internal/gatesim"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// wordPlanes is the bit-plane count of the parallel engine's simulator:
// 4 planes carry 256 logical lanes (one good machine + 255 fault
// machines) per settle. Chosen by benchmark — wider batches amortize
// the per-batch force/diff/restore overhead, while the per-gate settle
// cost stays proportional to live faults because detected faults drop
// out of the pending set.
const wordPlanes = 4

// Fault is a single stuck-at fault on a net.
type Fault struct {
	Net     netlist.NetID
	StuckAt bool
}

// EnumerateFaults lists stuck-at-0 and stuck-at-1 on every primary
// input and every instance output — the collapsed-enough fault list a
// logic BIST grading uses.
func EnumerateFaults(nl *netlist.Netlist) []Fault {
	var fs []Fault
	add := func(id netlist.NetID) {
		fs = append(fs, Fault{Net: id, StuckAt: false}, Fault{Net: id, StuckAt: true})
	}
	for _, id := range nl.Inputs() {
		add(id)
	}
	for _, inst := range nl.Instances() {
		add(inst.Out)
	}
	return fs
}

// Result reports a random-pattern fault-grading run.
type Result struct {
	Faults   int
	Detected int
	Patterns int
	// CumulativeDetected[i] is the detected-fault count after pattern
	// i+1 — the logic-BIST coverage curve.
	CumulativeDetected []int
}

// Coverage returns the final fault coverage in [0,1].
func (r *Result) Coverage() float64 {
	if r.Faults == 0 {
		return 1
	}
	return float64(r.Detected) / float64(r.Faults)
}

func (r *Result) String() string {
	return fmt.Sprintf("%d/%d stuck-at faults detected (%.1f%%) with %d random patterns",
		r.Detected, r.Faults, 100*r.Coverage(), r.Patterns)
}

// scanAccess computes the controllable and observable net sets under
// full scan: primary inputs and flip-flop outputs are controllable,
// primary outputs and flip-flop D inputs are observable.
func scanAccess(nl *netlist.Netlist) (controls, observes []netlist.NetID, err error) {
	controls = append(controls, nl.Inputs()...)
	observes = append(observes, nl.Outputs()...)
	for _, inst := range nl.Instances() {
		if inst.Kind.IsSequential() {
			controls = append(controls, inst.Out)
			observes = append(observes, inst.In[0])
		}
	}
	if len(controls) == 0 || len(observes) == 0 {
		return nil, nil, fmt.Errorf("logicbist: netlist %s has no scan test access", nl.Name)
	}
	return controls, observes, nil
}

// RandomPatternCoverage grades the netlist's combinational logic under
// full-scan random-pattern BIST: patterns random patterns are applied
// to primary inputs and flip-flop outputs, and fault effects are
// observed at primary outputs and flip-flop D inputs.
//
// Faults are simulated wordPlanes×64−1 at a time on a multi-plane
// bit-parallel WordSimulator: logical lane 0 carries the good machine
// and each remaining lane a faulty machine with its fault net
// force-masked to the stuck value. One settle pass therefore replaces
// up to 255 serial re-settles, and detected faults drop out of the
// pending set after every pattern so later batches stay densely packed.
// The result is bit-identical to RandomPatternCoverageSerial for the
// same seed.
func RandomPatternCoverage(nl *netlist.Netlist, patterns int, seed int64) (*Result, error) {
	sim, err := gatesim.NewWordPlanes(nl, wordPlanes)
	if err != nil {
		return nil, err
	}
	// Dense single-plane engine for the dropped-down tail: once the live
	// set fits 63 fault lanes the narrow layout wins on cache density
	// (and the multi-plane engine is never needed again, because the
	// pending set only shrinks). Levelisation is shared via the cache,
	// so the second simulator costs two value arrays.
	sim1, err := gatesim.NewWord(nl)
	if err != nil {
		return nil, err
	}
	controls, observes, err := scanAccess(nl)
	if err != nil {
		return nil, err
	}

	faults := EnumerateFaults(nl)
	res := &Result{Faults: len(faults), Patterns: patterns}
	detected := make([]bool, len(faults))

	// Forcing a controllable net corrupts its stored word in the forced
	// lanes; ctrlIdx maps those nets back to their pattern value for the
	// post-batch restore (-1: not controllable). A flat slice, because
	// the restore loop runs once per fault per batch.
	ctrlIdx := make([]int, nl.NumNets()+1)
	for i := range ctrlIdx {
		ctrlIdx[i] = -1
	}
	for i, id := range controls {
		ctrlIdx[id] = i
	}

	// pending holds the indices of still-undetected faults in
	// enumeration order, compacted in place as faults drop out.
	pending := make([]int, len(faults))
	for i := range pending {
		pending[i] = i
	}

	const faultLanes = wordPlanes*gatesim.Lanes - 1 // lane 0 is the good machine

	// Metrics: pattern and batch counts plus the faults-per-batch
	// distribution, which shows how well detection drop-out keeps the
	// fault lanes occupied, and the running count of faults retired
	// from the pending set. Nil no-op instruments when disabled.
	reg := obs.Active()
	mPatterns := reg.Counter("logicbist.patterns")
	mBatches := reg.Counter("logicbist.batches")
	mBatchFaults := reg.Span("logicbist.batch_faults")
	mDetected := reg.Counter("logicbist.detected")
	mDropped := reg.Counter("logicbist.faults_dropped")

	// A batch this large needs every plane of the wide engine anyway, so
	// its unrolled full-width kernel applies; smaller remainders go to
	// the dense single-plane engine instead of a partially occupied wide
	// settle, whose strided layout wastes cache bandwidth.
	const wideThreshold = (wordPlanes - 1) * gatesim.Lanes

	rng := rand.New(rand.NewSource(seed))
	vals := make([]bool, len(controls))
	for p := 0; p < patterns; p++ {
		// Apply one random pattern, broadcast across all lanes of both
		// engines (full scan re-drives every control each pattern, so
		// the engines stay interchangeable chunk to chunk). The RNG draw
		// order matches the serial engine exactly.
		wide := len(pending) >= wideThreshold
		for i, id := range controls {
			vals[i] = rng.Intn(2) == 1
			sim1.Set(id, vals[i])
			if wide {
				sim.Set(id, vals[i])
			}
		}
		mPatterns.Add(1)

		for start := 0; start < len(pending); {
			// Full-width chunks ride the wide engine's unrolled kernel;
			// the dropped-down tail rides the dense single-plane layout.
			eng, lanesCap := sim1, gatesim.Lanes-1
			if len(pending)-start >= wideThreshold {
				eng, lanesCap = sim, faultLanes
			}
			end := start + lanesCap
			if end > len(pending) {
				end = len(pending)
			}
			batch := pending[start:end]
			start = end
			mBatches.Add(1)
			mBatchFaults.Observe(int64(len(batch)))
			// Settle only the planes this batch occupies: once dropping
			// has thinned the pending set, the per-gate cost shrinks with
			// it instead of paying for the full allocated lane width.
			np := len(batch)>>6 + 1 // ceil((len(batch)+1)/64)
			eng.SetActivePlanes(np)
			for k, fi := range batch {
				eng.ForceLane(faults[fi].Net, k+1, faults[fi].StuckAt)
			}
			eng.Eval()
			// A lane detects its fault when any observable differs from
			// the good machine in logical lane 0 (plane 0, bit 0).
			var diff [wordPlanes]uint64
			for _, id := range observes {
				w0 := eng.GetPlane(id, 0)
				g := -(w0 & 1) // replicates lane 0 into all lanes
				diff[0] |= w0 ^ g
				for p := 1; p < np; p++ {
					diff[p] |= eng.GetPlane(id, p) ^ g
				}
			}
			for k, fi := range batch {
				l := k + 1
				if diff[l>>6]>>uint(l&63)&1 == 1 {
					detected[fi] = true
					res.Detected++
				}
			}
			eng.ClearForces()
			// Restore controllable words corrupted by forcing; driven
			// nets recover on the next settle by themselves.
			for _, fi := range batch {
				if ci := ctrlIdx[faults[fi].Net]; ci >= 0 {
					eng.Set(faults[fi].Net, vals[ci])
				}
			}
		}

		// Fault dropping: retire every fault this pattern detected so the
		// next pattern's batches pack only live faults into fresh lanes.
		live := pending[:0]
		for _, fi := range pending {
			if !detected[fi] {
				live = append(live, fi)
			}
		}
		mDropped.Add(int64(len(pending) - len(live)))
		pending = live
		res.CumulativeDetected = append(res.CumulativeDetected, res.Detected)
	}
	mDetected.Add(int64(res.Detected))
	return res, nil
}

// RandomPatternCoverageSerial is the one-fault-at-a-time reference
// engine: the whole netlist is re-settled per fault per pattern. It
// exists as the oracle the bit-parallel engine is cross-checked against
// and as the benchmark baseline; results are bit-identical to
// RandomPatternCoverage for the same seed.
func RandomPatternCoverageSerial(nl *netlist.Netlist, patterns int, seed int64) (*Result, error) {
	sim, err := gatesim.New(nl)
	if err != nil {
		return nil, err
	}
	controls, observes, err := scanAccess(nl)
	if err != nil {
		return nil, err
	}

	faults := EnumerateFaults(nl)
	res := &Result{Faults: len(faults), Patterns: patterns}
	detected := make([]bool, len(faults))

	ctrlIdx := make(map[netlist.NetID]int, len(controls))
	for i, id := range controls {
		ctrlIdx[id] = i
	}

	rng := rand.New(rand.NewSource(seed))
	good := make([]bool, len(observes))
	vals := make([]bool, len(controls))
	for p := 0; p < patterns; p++ {
		// Apply one random pattern.
		for i, id := range controls {
			vals[i] = rng.Intn(2) == 1
			sim.Set(id, vals[i])
		}
		sim.Eval()
		for i, id := range observes {
			good[i] = sim.Get(id)
		}

		// Serial fault simulation against the good responses.
		for fi, f := range faults {
			if detected[fi] {
				continue
			}
			sim.Force(f.Net, f.StuckAt)
			sim.Eval()
			for i, id := range observes {
				if sim.Get(id) != good[i] {
					detected[fi] = true
					res.Detected++
					break
				}
			}
			sim.Unforce(f.Net)
			// Only a forced controllable keeps its clobbered value past
			// the next settle; driven nets recover by themselves.
			if ci, ok := ctrlIdx[f.Net]; ok {
				sim.Set(f.Net, vals[ci])
			}
		}
		res.CumulativeDetected = append(res.CumulativeDetected, res.Detected)
	}
	return res, nil
}
