// Package logicbist grades the testability of the BIST controllers'
// own logic — the paper's §3 discussion: the controller must itself be
// testable, and the two programmable architectures differ in how their
// storage units are exercised (scan-only registers "could be used as a
// set of stimulus test points to test the entire memory BIST unit",
// versus random logic BIST over the FSM architecture's functional-clock
// register file).
//
// The model is standard full-scan random-pattern logic BIST: every
// flip-flop is scan-controllable and scan-observable, so each random
// pattern assigns all primary inputs and flip-flop outputs
// (pseudo-inputs) and observes all primary outputs and flip-flop D
// inputs (pseudo-outputs). Faults are single stuck-at-0/1 on every
// driven net, simulated serially against the good machine.
package logicbist

import (
	"fmt"
	"math/rand"

	"repro/internal/gatesim"
	"repro/internal/netlist"
)

// Fault is a single stuck-at fault on a net.
type Fault struct {
	Net     netlist.NetID
	StuckAt bool
}

// EnumerateFaults lists stuck-at-0 and stuck-at-1 on every primary
// input and every instance output — the collapsed-enough fault list a
// logic BIST grading uses.
func EnumerateFaults(nl *netlist.Netlist) []Fault {
	var fs []Fault
	add := func(id netlist.NetID) {
		fs = append(fs, Fault{Net: id, StuckAt: false}, Fault{Net: id, StuckAt: true})
	}
	for _, id := range nl.Inputs() {
		add(id)
	}
	for _, inst := range nl.Instances() {
		add(inst.Out)
	}
	return fs
}

// Result reports a random-pattern fault-grading run.
type Result struct {
	Faults   int
	Detected int
	Patterns int
	// CumulativeDetected[i] is the detected-fault count after pattern
	// i+1 — the logic-BIST coverage curve.
	CumulativeDetected []int
}

// Coverage returns the final fault coverage in [0,1].
func (r *Result) Coverage() float64 {
	if r.Faults == 0 {
		return 1
	}
	return float64(r.Detected) / float64(r.Faults)
}

func (r *Result) String() string {
	return fmt.Sprintf("%d/%d stuck-at faults detected (%.1f%%) with %d random patterns",
		r.Detected, r.Faults, 100*r.Coverage(), r.Patterns)
}

// RandomPatternCoverage grades the netlist's combinational logic under
// full-scan random-pattern BIST: patterns random patterns are applied
// to primary inputs and flip-flop outputs, and fault effects are
// observed at primary outputs and flip-flop D inputs.
func RandomPatternCoverage(nl *netlist.Netlist, patterns int, seed int64) (*Result, error) {
	sim, err := gatesim.New(nl)
	if err != nil {
		return nil, err
	}

	// Controllable and observable net sets under full scan.
	var controls []netlist.NetID
	controls = append(controls, nl.Inputs()...)
	var observes []netlist.NetID
	observes = append(observes, nl.Outputs()...)
	for _, inst := range nl.Instances() {
		if inst.Kind.IsSequential() {
			controls = append(controls, inst.Out)
			observes = append(observes, inst.In[0])
		}
	}
	if len(controls) == 0 || len(observes) == 0 {
		return nil, fmt.Errorf("logicbist: netlist %s has no scan test access", nl.Name)
	}

	faults := EnumerateFaults(nl)
	res := &Result{Faults: len(faults), Patterns: patterns}
	detected := make([]bool, len(faults))

	rng := rand.New(rand.NewSource(seed))
	good := make([]bool, len(observes))
	for p := 0; p < patterns; p++ {
		// Apply one random pattern.
		vals := make([]bool, len(controls))
		for i, id := range controls {
			vals[i] = rng.Intn(2) == 1
			sim.Set(id, vals[i])
		}
		sim.Eval()
		for i, id := range observes {
			good[i] = sim.Get(id)
		}

		// Serial fault simulation against the good responses.
		for fi, f := range faults {
			if detected[fi] {
				continue
			}
			sim.Force(f.Net, f.StuckAt)
			sim.Eval()
			for i, id := range observes {
				if sim.Get(id) != good[i] {
					detected[fi] = true
					res.Detected++
					break
				}
			}
			sim.Unforce(f.Net)
			// Restore controllable values clobbered by forcing a
			// controllable net.
			for i, id := range controls {
				sim.Set(id, vals[i])
			}
		}
		res.CumulativeDetected = append(res.CumulativeDetected, res.Detected)
	}
	return res, nil
}
