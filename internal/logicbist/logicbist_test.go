package logicbist

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/fsmbist"
	"repro/internal/march"
	"repro/internal/microbist"
	"repro/internal/netlist"
)

func TestAndGateFullyTestable(t *testing.T) {
	nl := netlist.New("and2")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	nl.AddOutput("y", nl.And2(a, b))
	res, err := RandomPatternCoverage(nl, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 3 nets x 2 polarities; every stuck-at on a 2-input AND is
	// detectable, and 64 random patterns on 2 inputs exhaust the space.
	if res.Faults != 6 || res.Detected != 6 {
		t.Errorf("AND2 coverage %s", res)
	}
}

func TestRedundantLogicUndetectable(t *testing.T) {
	// y = a OR (a AND b): the AND is redundant, its stuck-at-0 is
	// undetectable — coverage must be below 100%.
	nl := netlist.New("redundant")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	nl.AddOutput("y", nl.Or2(a, nl.And2(a, b)))
	res, err := RandomPatternCoverage(nl, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected == res.Faults {
		t.Errorf("redundant fault reported detected: %s", res)
	}
	// Exactly three undetectable faults: AND-output stuck-at-0 and both
	// polarities of input b (y = a regardless of b).
	if res.Faults-res.Detected != 3 {
		t.Errorf("undetected = %d, want the 3 redundancy faults: %s", res.Faults-res.Detected, res)
	}
}

func TestCoverageCurveMonotonic(t *testing.T) {
	nl := netlist.New("cnt")
	en := nl.AddInput("en")
	c := nl.BuildCounter("q", 4, en, netlist.Invalid, netlist.Invalid)
	nl.AddOutput("tc", c.Terminal)
	nl.SweepDead() // drop the incrementer's unused final carry gate
	res, err := RandomPatternCoverage(nl, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for i, v := range res.CumulativeDetected {
		if v < prev {
			t.Fatalf("coverage curve decreased at pattern %d", i)
		}
		prev = v
	}
	if res.CumulativeDetected[len(res.CumulativeDetected)-1] != res.Detected {
		t.Error("curve endpoint disagrees with total")
	}
	// A counter under full scan is highly random-pattern testable.
	if res.Coverage() < 0.95 {
		t.Errorf("counter coverage only %.1f%%", res.Coverage()*100)
	}
}

// TestControllerLogicTestability reproduces the paper's §3 testability
// point: both programmable controllers' logic reaches high stuck-at
// coverage under full-scan random-pattern BIST, with the scan chains
// (modelled as controllable/observable flip-flops) providing the
// stimulus points.
func TestControllerLogicTestability(t *testing.T) {
	p, err := microbist.Assemble(march.MarchC(), microbist.AssembleOpts{WordOriented: true, Multiport: true})
	if err != nil {
		t.Fatal(err)
	}
	hw, err := microbist.BuildHardware(p, microbist.HWConfig{
		Slots: p.Len(), AddrBits: 4, Width: 1, Ports: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RandomPatternCoverage(hw.Netlist, 96, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("microcode controller: %s", res)
	if res.Coverage() < 0.90 {
		t.Errorf("microcode controller random-pattern coverage %.1f%% < 90%%", res.Coverage()*100)
	}
	if !strings.Contains(res.String(), "stuck-at") {
		t.Error("report rendering broken")
	}
}

// TestWordParallelMatchesSerial is the engine cross-check the
// bit-parallel rewrite promises: for the same seed, the 64-way engine
// and the one-fault-at-a-time oracle produce bit-identical Results —
// including the per-pattern CumulativeDetected curve — on both
// synthesised programmable-controller netlists and a small
// combinational block with redundant (undetectable) faults.
func TestWordParallelMatchesSerial(t *testing.T) {
	redundant := netlist.New("redundant")
	a := redundant.AddInput("a")
	b := redundant.AddInput("b")
	redundant.AddOutput("y", redundant.Or2(a, redundant.And2(a, b)))

	mp, err := microbist.Assemble(march.MarchC(), microbist.AssembleOpts{WordOriented: true, Multiport: true})
	if err != nil {
		t.Fatal(err)
	}
	mhw, err := microbist.BuildHardware(mp, microbist.HWConfig{
		Slots: mp.Len(), AddrBits: 4, Width: 1, Ports: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := fsmbist.Compile(march.MarchC(), fsmbist.CompileOpts{WordOriented: true, Multiport: true})
	if err != nil {
		t.Fatal(err)
	}
	fhw, err := fsmbist.BuildHardware(fp, fsmbist.HWConfig{
		Slots: fp.Len(), AddrBits: 4, Width: 1, Ports: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		nl       *netlist.Netlist
		patterns int
		seed     int64
	}{
		{redundant, 128, 1},
		{mhw.Netlist, 48, 3},
		{mhw.Netlist, 48, 11},
		{fhw.Netlist, 48, 3},
	}
	for _, c := range cases {
		word, err := RandomPatternCoverage(c.nl, c.patterns, c.seed)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := RandomPatternCoverageSerial(c.nl, c.patterns, c.seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(word, serial) {
			t.Errorf("%s seed %d: word engine %+v, serial engine %+v", c.nl.Name, c.seed, word, serial)
		}
	}
}

func TestNoTestAccessError(t *testing.T) {
	nl := netlist.New("blackhole")
	nl.AddInput("a")
	if _, err := RandomPatternCoverage(nl, 4, 1); err == nil {
		t.Error("netlist with no observables graded")
	}
}
