package diag

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/march"
)

// locateAfterMarch runs the full diagnosis flow: march test implicates
// a victim, LocateAggressor probes for the aggressor.
func locateAfterMarch(t *testing.T, f faults.Fault, size, width int) ([]Suspect, int) {
	t.Helper()
	mem := faults.NewInjected(size, width, 1, f)
	res, err := march.Run(march.MarchC(), mem, march.RunOpts{SinglePort: true, SingleBackground: width == 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected() {
		t.Fatalf("march test missed %v", f)
	}
	b := BuildBitmap(res.Fails, size, width)
	victims := b.FailingCells()
	if len(victims) != 1 {
		t.Fatalf("expected one victim, bitmap has %v", victims)
	}
	// Probe on a fresh copy (the march run left the array dirty).
	mem2 := faults.NewInjected(size, width, 1, f)
	return LocateAggressor(mem2, 0, victims[0]), victims[0]
}

func TestLocateCFinAggressor(t *testing.T) {
	f := faults.Fault{Kind: faults.CFin, Aggressor: 3, Cell: 11, AggVal: true, Port: faults.AnyPort}
	suspects, victim := locateAfterMarch(t, f, 16, 1)
	if victim != 11 {
		t.Fatalf("victim = %d", victim)
	}
	cells := AggressorCells(suspects)
	if len(cells) != 1 || cells[0] != 3 {
		t.Fatalf("aggressors = %v, want [3] (suspects %v)", cells, suspects)
	}
	for _, s := range suspects {
		if !s.Rise {
			t.Errorf("CFin<↑> flagged on a falling transition: %v", s)
		}
	}
}

func TestLocateCFidAggressorAndDirection(t *testing.T) {
	f := faults.Fault{Kind: faults.CFid, Aggressor: 9, Cell: 2, AggVal: false, Value: true, Port: faults.AnyPort}
	suspects, _ := locateAfterMarch(t, f, 16, 1)
	cells := AggressorCells(suspects)
	if len(cells) != 1 || cells[0] != 9 {
		t.Fatalf("aggressors = %v, want [9]", cells)
	}
	for _, s := range suspects {
		if s.Rise {
			t.Errorf("CFid<↓;1> flagged on a rising transition: %v", s)
		}
		if s.VictimWas {
			t.Errorf("CFid<↓;1> upsets only a 0 victim, flagged %v", s)
		}
	}
}

func TestLocateIntraWordAggressor(t *testing.T) {
	// Coupling between two bits of the same word.
	f := faults.Fault{Kind: faults.CFid, Aggressor: 5*4 + 3, Cell: 5*4 + 1,
		AggVal: true, Value: true, Port: faults.AnyPort}
	mem := faults.NewInjected(16, 4, 1, f)
	suspects := LocateAggressor(mem, 0, 5*4+1)
	cells := AggressorCells(suspects)
	if len(cells) != 1 || cells[0] != 5*4+3 {
		t.Fatalf("aggressors = %v, want [23]", cells)
	}
}

func TestLocateStuckVictimImplicatesEverything(t *testing.T) {
	// A stuck-at victim fails regardless of the candidate: the probe
	// implicates (nearly) every cell, which callers read as
	// "not a coupling defect".
	f := faults.Fault{Kind: faults.SA, Cell: 6, Value: true, Port: faults.AnyPort}
	mem := faults.NewInjected(16, 1, 1, f)
	suspects := LocateAggressor(mem, 0, 6)
	if len(AggressorCells(suspects)) < 14 {
		t.Errorf("stuck victim implicated only %d cells", len(AggressorCells(suspects)))
	}
}

func TestLocateCleanVictimFindsNothing(t *testing.T) {
	mem := faults.NewInjected(16, 1, 1)
	if suspects := LocateAggressor(mem, 0, 5); len(suspects) != 0 {
		t.Errorf("clean memory produced suspects %v", suspects)
	}
}

func TestLocatePanicsOnBadVictim(t *testing.T) {
	mem := faults.NewInjected(8, 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range victim accepted")
		}
	}()
	LocateAggressor(mem, 0, 99)
}
