// Package diag turns BIST fail logs into diagnostic artefacts: a
// physical fail bitmap and a coarse fault classification. The paper
// motivates the extra logic overhead of programmable BIST with exactly
// this use — reusing the same controller for production test and for
// diagnostics/process monitoring, where the full fail log (not just a
// go/no-go bit) is collected.
package diag

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/march"
)

// Bitmap is a per-cell miscompare count over the memory array.
type Bitmap struct {
	Size   int
	Width  int
	Counts []int // [addr*Width + bit]
}

// BuildBitmap folds a fail log into a bitmap. Word miscompares are
// attributed to the individual failing bits (expected XOR got).
func BuildBitmap(fails []march.Fail, size, width int) *Bitmap {
	b := &Bitmap{Size: size, Width: width, Counts: make([]int, size*width)}
	for _, f := range fails {
		if f.Addr < 0 || f.Addr >= size {
			continue
		}
		diff := f.Expected ^ f.Got
		for bit := 0; bit < width; bit++ {
			if diff>>uint(bit)&1 == 1 {
				b.Counts[f.Addr*width+bit]++
			}
		}
	}
	return b
}

// FailingCells returns the cell indices with at least one miscompare,
// ascending.
func (b *Bitmap) FailingCells() []int {
	var cells []int
	for c, n := range b.Counts {
		if n > 0 {
			cells = append(cells, c)
		}
	}
	return cells
}

// FailingAddresses returns the word addresses with at least one failing
// bit, ascending.
func (b *Bitmap) FailingAddresses() []int {
	seen := make(map[int]bool)
	for _, c := range b.FailingCells() {
		seen[c/b.Width] = true
	}
	addrs := make([]int, 0, len(seen))
	for a := range seen {
		addrs = append(addrs, a)
	}
	sort.Ints(addrs)
	return addrs
}

// String renders the bitmap as an ASCII map, one row per address:
// '.' clean, digits 1-9 the miscompare count, '*' for ten or more.
func (b *Bitmap) String() string {
	var s strings.Builder
	for a := 0; a < b.Size; a++ {
		fmt.Fprintf(&s, "%4d ", a)
		for bit := 0; bit < b.Width; bit++ {
			n := b.Counts[a*b.Width+bit]
			switch {
			case n == 0:
				s.WriteByte('.')
			case n < 10:
				s.WriteByte(byte('0' + n))
			default:
				s.WriteByte('*')
			}
		}
		s.WriteByte('\n')
	}
	return s.String()
}

// Class is a coarse fault classification derived from a fail log.
type Class uint8

const (
	// ClassNone means the memory passed.
	ClassNone Class = iota
	// ClassSingleCell covers faults confined to one cell (stuck-at,
	// transition, retention, read-disturb, stuck-open).
	ClassSingleCell
	// ClassCellPair covers two implicated cells (coupling faults or
	// two-address decoder faults).
	ClassCellPair
	// ClassRowColumn covers a failing stripe (decoder or peripheral
	// defects hitting a full address or bit lane).
	ClassRowColumn
	// ClassGross covers widespread failure (array-level defects).
	ClassGross
)

func (c Class) String() string {
	switch c {
	case ClassNone:
		return "pass"
	case ClassSingleCell:
		return "single-cell"
	case ClassCellPair:
		return "cell-pair"
	case ClassRowColumn:
		return "row/column"
	default:
		return "gross"
	}
}

// Diagnosis is the classifier's verdict.
type Diagnosis struct {
	Class Class
	// Cells are the implicated cell indices (bounded to the first 16).
	Cells []int
	// PortSpecific is set when every miscompare occurred on one
	// non-zero port — a port read-circuit defect in a multiport memory.
	PortSpecific bool
	Port         int
	// RetentionOnly is set when every miscompare followed a pause
	// element (data-retention signature).
	RetentionOnly bool
}

// Classify derives a diagnosis from a fail log. alg supplies the pause
// structure for retention detection; pass the algorithm that produced
// the log.
func Classify(fails []march.Fail, alg march.Algorithm, size, width int) Diagnosis {
	if len(fails) == 0 {
		return Diagnosis{Class: ClassNone}
	}
	b := BuildBitmap(fails, size, width)
	cells := b.FailingCells()
	d := Diagnosis{}
	if len(cells) > 16 {
		d.Cells = cells[:16]
	} else {
		d.Cells = cells
	}

	switch {
	case len(cells) == 1:
		d.Class = ClassSingleCell
	case len(cells) == 2:
		d.Class = ClassCellPair
	case stripe(cells, width, size):
		d.Class = ClassRowColumn
	default:
		d.Class = ClassGross
	}

	port := fails[0].Port
	d.PortSpecific = port != 0
	for _, f := range fails {
		if f.Port != port {
			d.PortSpecific = false
			break
		}
	}
	if d.PortSpecific {
		d.Port = port
	}

	d.RetentionOnly = true
	for _, f := range fails {
		if f.Element < 0 || f.Element >= len(alg.Elements) || !alg.Elements[f.Element].PauseBefore {
			d.RetentionOnly = false
			break
		}
	}
	return d
}

// stripe reports whether the failing cells form one full row (all bits
// of one address) or one full column (one bit lane across all
// addresses).
func stripe(cells []int, width, size int) bool {
	if width > 1 && len(cells) == width {
		row := cells[0] / width
		full := true
		for _, c := range cells {
			if c/width != row {
				full = false
				break
			}
		}
		if full {
			return true
		}
	}
	if width > 1 && len(cells) == size {
		lane := cells[0] % width
		for _, c := range cells {
			if c%width != lane {
				return false
			}
		}
		return true
	}
	return false
}
