package diag

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/march"
)

// runFull runs the algorithm with an unbounded fail log (diagnostic
// mode) and returns the fails.
func runFull(t *testing.T, alg march.Algorithm, size, width, ports int, fs ...faults.Fault) []march.Fail {
	t.Helper()
	mem := faults.NewInjected(size, width, ports, fs...)
	res, err := march.Run(alg, mem, march.RunOpts{SinglePort: ports == 1, SingleBackground: width == 1})
	if err != nil {
		t.Fatal(err)
	}
	return res.Fails
}

func TestBitmapSingleStuckAt(t *testing.T) {
	fails := runFull(t, march.MarchC(), 16, 1, 1,
		faults.Fault{Kind: faults.SA, Cell: 5, Value: true, Port: faults.AnyPort})
	b := BuildBitmap(fails, 16, 1)
	cells := b.FailingCells()
	if len(cells) != 1 || cells[0] != 5 {
		t.Fatalf("failing cells = %v, want [5]", cells)
	}
	if got := b.FailingAddresses(); len(got) != 1 || got[0] != 5 {
		t.Errorf("failing addresses = %v", got)
	}
}

func TestBitmapWordAttributesBits(t *testing.T) {
	// SA on bit 2 of word 3 in a 4-bit memory.
	fails := runFull(t, march.MarchC(), 8, 4, 1,
		faults.Fault{Kind: faults.SA, Cell: 3*4 + 2, Value: true, Port: faults.AnyPort})
	b := BuildBitmap(fails, 8, 4)
	cells := b.FailingCells()
	if len(cells) != 1 || cells[0] != 3*4+2 {
		t.Fatalf("failing cells = %v, want [14]", cells)
	}
}

func TestBitmapString(t *testing.T) {
	fails := []march.Fail{{Addr: 1, Expected: 1, Got: 0}}
	b := BuildBitmap(fails, 4, 1)
	s := b.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("bitmap has %d lines, want 4:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[1], "1") || strings.Contains(lines[0], "1") {
		t.Errorf("bitmap rows wrong:\n%s", s)
	}
}

func TestClassifySingleCell(t *testing.T) {
	for _, f := range []faults.Fault{
		{Kind: faults.SA, Cell: 7, Value: true, Port: faults.AnyPort},
		{Kind: faults.TF, Cell: 7, Value: true, Port: faults.AnyPort},
	} {
		fails := runFull(t, march.MarchC(), 16, 1, 1, f)
		d := Classify(fails, march.MarchC(), 16, 1)
		if d.Class != ClassSingleCell {
			t.Errorf("%v classified as %v", f, d.Class)
		}
		if len(d.Cells) != 1 || d.Cells[0] != 7 {
			t.Errorf("%v implicated cells %v", f, d.Cells)
		}
	}
}

func TestClassifyCouplingPair(t *testing.T) {
	// An inversion coupling fault usually implicates only the victim in
	// the log; a decoder AFmap implicates two addresses.
	fails := runFull(t, march.MarchC(), 16, 1, 1,
		faults.Fault{Kind: faults.AFMap, Addr: 4, AggAddr: 5, Port: faults.AnyPort})
	d := Classify(fails, march.MarchC(), 16, 1)
	if d.Class != ClassCellPair {
		t.Errorf("AFmap classified as %v (cells %v)", d.Class, d.Cells)
	}
}

func TestClassifyGross(t *testing.T) {
	var fs []faults.Fault
	for c := 0; c < 16; c++ {
		fs = append(fs, faults.Fault{Kind: faults.SA, Cell: c, Value: true, Port: faults.AnyPort})
	}
	fails := runFull(t, march.MarchC(), 16, 1, 1, fs...)
	d := Classify(fails, march.MarchC(), 16, 1)
	if d.Class != ClassGross {
		t.Errorf("whole-array failure classified as %v", d.Class)
	}
	if len(d.Cells) > 16 {
		t.Errorf("cells not bounded: %d", len(d.Cells))
	}
}

func TestClassifyRowStripe(t *testing.T) {
	// All bits of one word stuck: a row defect.
	var fs []faults.Fault
	for bit := 0; bit < 4; bit++ {
		fs = append(fs, faults.Fault{Kind: faults.SA, Cell: 2*4 + bit, Value: true, Port: faults.AnyPort})
	}
	fails := runFull(t, march.MarchC(), 8, 4, 1, fs...)
	d := Classify(fails, march.MarchC(), 8, 4)
	if d.Class != ClassRowColumn {
		t.Errorf("row defect classified as %v (cells %v)", d.Class, d.Cells)
	}
}

func TestClassifyColumnStripe(t *testing.T) {
	// One bit lane failing at every address: a column defect.
	var fs []faults.Fault
	for a := 0; a < 8; a++ {
		fs = append(fs, faults.Fault{Kind: faults.SA, Cell: a*4 + 1, Value: true, Port: faults.AnyPort})
	}
	fails := runFull(t, march.MarchC(), 8, 4, 1, fs...)
	d := Classify(fails, march.MarchC(), 8, 4)
	if d.Class != ClassRowColumn {
		t.Errorf("column defect classified as %v (cells %v)", d.Class, d.Cells)
	}
}

func TestClassifyRetentionSignature(t *testing.T) {
	alg := march.MarchCPlus()
	fails := runFull(t, alg, 16, 1, 1,
		faults.Fault{Kind: faults.DRF, Cell: 3, Value: true, Port: faults.AnyPort})
	d := Classify(fails, alg, 16, 1)
	if !d.RetentionOnly {
		t.Errorf("DRF fail log not flagged retention-only: %+v (fails %v)", d, fails)
	}
	// A stuck-at fault is not retention-only.
	fails2 := runFull(t, alg, 16, 1, 1,
		faults.Fault{Kind: faults.SA, Cell: 3, Value: true, Port: faults.AnyPort})
	d2 := Classify(fails2, alg, 16, 1)
	if d2.RetentionOnly {
		t.Error("stuck-at fail log flagged retention-only")
	}
}

func TestClassifyPortSpecific(t *testing.T) {
	fails := runFull(t, march.MarchC(), 16, 1, 2,
		faults.Fault{Kind: faults.SA, Cell: 6, Value: true, Port: 1})
	d := Classify(fails, march.MarchC(), 16, 1)
	if !d.PortSpecific || d.Port != 1 {
		t.Errorf("port-1 fault not flagged: %+v", d)
	}
}

func TestClassifyPass(t *testing.T) {
	d := Classify(nil, march.MarchC(), 16, 1)
	if d.Class != ClassNone {
		t.Errorf("empty log classified as %v", d.Class)
	}
}

func TestClassStrings(t *testing.T) {
	for c := ClassNone; c <= ClassGross; c++ {
		if c.String() == "" {
			t.Errorf("class %d has no name", c)
		}
	}
}
