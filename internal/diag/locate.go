package diag

import (
	"fmt"

	"repro/internal/memory"
)

// Suspect is a candidate aggressor found by LocateAggressor: toggling
// (or holding) cell Cell with a rising (Rise) or falling transition
// upset the victim.
type Suspect struct {
	Cell int
	Rise bool
	// VictimWas is the victim value that was corrupted.
	VictimWas bool
}

func (s Suspect) String() string {
	dir := "↓"
	if s.Rise {
		dir = "↑"
	}
	return fmt.Sprintf("cell %d %s upsets victim at %v", s.Cell, dir, s.VictimWas)
}

// LocateAggressor actively probes for the aggressor(s) coupling into a
// known victim cell — the adaptive diagnosis pass a programmable BIST
// unit can run after a march test implicates a victim (the paper's
// diagnostics use case). For every candidate cell the victim is set to
// each value, the candidate is driven through both transitions, and the
// victim is re-read; any upset registers the candidate as a suspect.
//
// A clean coupling fault yields exactly the aggressor (one or two
// transition polarities). A victim that fails regardless of candidate
// (e.g. a stuck-at cell) implicates almost every candidate — callers
// should treat a suspect list covering most of the array as
// "not a coupling defect".
func LocateAggressor(mem memory.Memory, port, victimCell int) []Suspect {
	size, width := mem.Size(), mem.Width()
	nCells := size * width
	if victimCell < 0 || victimCell >= nCells {
		panic(fmt.Sprintf("diag: victim cell %d out of range", victimCell))
	}
	vAddr, vBit := victimCell/width, victimCell%width

	getBit := func(addr, bit int) bool {
		return mem.Read(port, addr)>>uint(bit)&1 == 1
	}
	setBit := func(addr, bit int, v bool) {
		w := mem.Read(port, addr)
		if v {
			w |= 1 << uint(bit)
		} else {
			w &^= 1 << uint(bit)
		}
		mem.Write(port, addr, w)
	}

	var suspects []Suspect
	for c := 0; c < nCells; c++ {
		if c == victimCell {
			continue
		}
		cAddr, cBit := c/width, c%width
		for _, vVal := range []bool{false, true} {
			for _, rise := range []bool{true, false} {
				// Pre-condition candidate and victim.
				setBit(cAddr, cBit, !rise)
				setBit(vAddr, vBit, vVal)
				// Trigger the candidate transition.
				setBit(cAddr, cBit, rise)
				// Observe the victim.
				if getBit(vAddr, vBit) != vVal {
					suspects = append(suspects, Suspect{Cell: c, Rise: rise, VictimWas: vVal})
					// Repair the victim for the next probe.
					setBit(vAddr, vBit, vVal)
				}
			}
		}
	}
	return suspects
}

// AggressorCells reduces a suspect list to the distinct implicated
// cells, preserving probe order.
func AggressorCells(suspects []Suspect) []int {
	seen := make(map[int]bool)
	var cells []int
	for _, s := range suspects {
		if !seen[s.Cell] {
			seen[s.Cell] = true
			cells = append(cells, s.Cell)
		}
	}
	return cells
}
