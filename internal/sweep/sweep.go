// Package sweep is the shared workload plumbing of the coverage
// drivers. cmd/mbistcov (flags) and cmd/mbistd (JSON requests) resolve
// the same Spec into the same Workload — one place owns the algorithm
// list, architecture, engine and lane defaults, so the CLI and the
// service cannot drift, and a service-graded report diffs
// byte-identical against the CLI's stdout.
//
// It also owns the shard file format: one workload slice graded into
// per-algorithm coverage.States, persisted through the same
// internal/resilience envelope (versioned, checksummed, bound to the
// workload fingerprint) that mbistcov checkpoints use. Shards graded
// anywhere merge into reports byte-identical to an unsharded sweep.
package sweep

import (
	"context"
	"flag"
	"fmt"
	"hash/crc32"
	"strings"
	"time"

	"repro/internal/coverage"
	"repro/internal/march"
	"repro/internal/resilience"
)

// Shared workload defaults. Register and Spec.Workload apply them, so
// every driver resolves an empty field the same way.
const (
	DefaultAlgs    = "mats+,marchx,marchy,marchc,marchc+,marchc++,marcha,marchb"
	DefaultArch    = "reference"
	DefaultSize    = 16
	DefaultWidth   = 1
	DefaultPorts   = 1
	DefaultWorkers = 0
	DefaultEngine  = "auto"
	DefaultLanes   = "auto"
	DefaultReplay  = "compiled"
)

// Spec is the wire/flag form of one coverage workload. The zero value
// of any field means "default" — a JSON request body of {} and a flag
// set with no arguments resolve to the same workload.
//
// Every field must be threaded through the Workload resolver (and from
// there into the workload fingerprint) or carry an explicit
// //mbist:fingerprint-exclude annotation; the fingerprint analyzer in
// internal/vet enforces this, so a new wire knob cannot silently skip
// shard-compatibility checking.
//
//mbist:fingerprint-source Workload
type Spec struct {
	// Algs is the comma-separated algorithm list.
	Algs string `json:"algs,omitempty"`
	// Arch names the architecture: reference, microcode, fsm, hardwired.
	Arch string `json:"arch,omitempty"`
	// Size, Width and Ports are the memory geometry.
	Size  int `json:"size,omitempty"`
	Width int `json:"width,omitempty"`
	Ports int `json:"ports,omitempty"`
	// Workers is the grading worker count (0 = all CPUs, 1 = serial).
	Workers int `json:"workers,omitempty"`
	// Engine selects the fault-simulation engine: auto or scalar.
	Engine string `json:"engine,omitempty"`
	// Lanes is the lane-engine batch width: auto, 64, 128, 256 or 512.
	Lanes string `json:"lanes,omitempty"`
	// Replay selects the lane engine's stream execution: compiled
	// (µop kernels) or interpreted (per-op reference path).
	Replay string `json:"replay,omitempty"`
	// Timeout is the per-run deadline as a Go duration string ("90s",
	// "5m"); empty means no deadline. A run that hits its deadline stops
	// at the last graded fault and reports Partial results.
	//mbist:fingerprint-exclude execution policy: a deadline truncates a run, it never changes any verdict
	Timeout string `json:"timeout,omitempty"`
	// Retries bounds how many times a transiently failing job is re-run
	// after its first attempt: 0 means the executing driver's default,
	// negative means never retry. Only mbistd acts on it.
	//mbist:fingerprint-exclude execution policy: re-running a deterministic workload cannot change its identity
	Retries int `json:"retries,omitempty"`
}

// Register binds the shared workload flags onto fs, with the shared
// defaults, writing into s.
func (s *Spec) Register(fs *flag.FlagSet) {
	fs.StringVar(&s.Algs, "algs", DefaultAlgs, "comma-separated library algorithms")
	fs.StringVar(&s.Arch, "arch", DefaultArch, "architecture: reference, microcode, fsm, hardwired")
	fs.IntVar(&s.Size, "size", DefaultSize, "memory addresses")
	fs.IntVar(&s.Width, "width", DefaultWidth, "word width in bits")
	fs.IntVar(&s.Ports, "ports", DefaultPorts, "memory ports")
	fs.IntVar(&s.Workers, "workers", DefaultWorkers, "concurrent grading workers (0 = all CPUs, 1 = serial)")
	fs.StringVar(&s.Engine, "engine", DefaultEngine, "fault-simulation engine: auto (lane-parallel stream replay with scalar fallback) or scalar (one fault at a time)")
	fs.StringVar(&s.Lanes, "lanes", DefaultLanes, "lane-engine batch width: auto, 64, 128, 256 or 512 logical fault lanes (ignored by -engine scalar; reports are byte-identical at every width)")
	fs.StringVar(&s.Replay, "replay", DefaultReplay, "lane-engine stream execution: compiled (µop kernels) or interpreted (per-op reference path; reports are byte-identical in both modes)")
	fs.StringVar(&s.Timeout, "timeout", "", "per-run deadline as a Go duration (e.g. 90s, 5m); empty = none; an expired run reports Partial results (execution policy — excluded from the workload fingerprint)")
	fs.IntVar(&s.Retries, "retries", 0, "transient-failure retry budget for service jobs: 0 = service default, negative = never retry (execution policy — excluded from the workload fingerprint)")
}

// TimeoutDuration parses the spec's per-run deadline. Zero means no
// deadline. Negative or unparsable durations are rejected — a deadline
// typo must fail the request, not silently grade forever.
func (s Spec) TimeoutDuration() (time.Duration, error) {
	if s.Timeout == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s.Timeout)
	if err != nil {
		return 0, fmt.Errorf("invalid timeout %q: %v", s.Timeout, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("invalid timeout %q: must not be negative", s.Timeout)
	}
	return d, nil
}

// RetryBudget resolves the spec's retry budget against the executing
// driver's default: 0 defers to def, negative means never retry.
func (s Spec) RetryBudget(def int) int {
	switch {
	case s.Retries < 0:
		return 0
	case s.Retries == 0:
		return def
	default:
		return s.Retries
	}
}

// Workload is a resolved Spec: parsed algorithms, architecture and
// grading options, ready to grade.
//
//mbist:fingerprint-source
type Workload struct {
	Algs []march.Algorithm
	Arch coverage.Architecture
	Opts coverage.Options
}

// Workload resolves the spec, applying the shared defaults to zero
// fields and rejecting unknown names.
func (s Spec) Workload() (*Workload, error) {
	if s.Algs == "" {
		s.Algs = DefaultAlgs
	}
	if s.Arch == "" {
		s.Arch = DefaultArch
	}
	if s.Size == 0 {
		s.Size = DefaultSize
	}
	if s.Width == 0 {
		s.Width = DefaultWidth
	}
	if s.Ports == 0 {
		s.Ports = DefaultPorts
	}
	if s.Engine == "" {
		s.Engine = DefaultEngine
	}
	if s.Lanes == "" {
		s.Lanes = DefaultLanes
	}
	if s.Replay == "" {
		s.Replay = DefaultReplay
	}
	arch, err := ParseArch(s.Arch)
	if err != nil {
		return nil, err
	}
	engine, err := ParseEngine(s.Engine)
	if err != nil {
		return nil, err
	}
	lanes, err := ParseLanes(s.Lanes)
	if err != nil {
		return nil, err
	}
	replay, err := ParseReplay(s.Replay)
	if err != nil {
		return nil, err
	}
	w := &Workload{
		Arch: arch,
		Opts: coverage.Options{
			Size: s.Size, Width: s.Width, Ports: s.Ports,
			Workers: s.Workers, Engine: engine, Lanes: lanes, Replay: replay,
		},
	}
	for _, name := range strings.Split(s.Algs, ",") {
		alg, ok := march.ByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown algorithm %q", name)
		}
		w.Algs = append(w.Algs, alg)
	}
	return w, nil
}

// Names returns the workload's algorithm names in grading order.
func (w *Workload) Names() []string {
	names := make([]string, len(w.Algs))
	for i, alg := range w.Algs {
		names[i] = alg.Name
	}
	return names
}

// Fingerprint binds persisted state (checkpoints, shard files) to this
// exact workload: a readable architecture/geometry/algorithm summary
// plus a checksum of the per-algorithm coverage fingerprints (which
// fold in the universe options and each algorithm's march notation) in
// grading order. Worker count, engine, lanes and replay mode are
// excluded — verdicts are byte-identical across all four, so state
// persisted under one configuration resumes under any other.
func (w *Workload) Fingerprint() string {
	names := w.Names()
	fps := make([]string, len(w.Algs))
	for i, alg := range w.Algs {
		fps[i] = coverage.Fingerprint(alg, w.Arch, w.Opts)
	}
	return fmt.Sprintf("%v %dx%d/%d algs[%s] %08x",
		w.Arch, w.Opts.Size, w.Opts.Width, w.Opts.Ports,
		strings.Join(names, ","),
		crc32.ChecksumIEEE([]byte(strings.Join(fps, ";"))))
}

// Grade grades every workload algorithm in order and returns the
// reports. On error (including cancellation) the reports graded so far
// are returned alongside it.
func (w *Workload) Grade(ctx context.Context) ([]*coverage.Report, error) {
	reports := make([]*coverage.Report, 0, len(w.Algs))
	for _, alg := range w.Algs {
		rep, err := coverage.GradeContext(ctx, alg, w.Arch, w.Opts)
		if err != nil {
			return reports, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// RenderText renders reports exactly as mbistcov prints an unsharded
// matrix run, so service responses and merged shard sweeps diff
// byte-identical against the CLI.
func (w *Workload) RenderText(reports []*coverage.Report) string {
	return fmt.Sprintf("fault coverage on %v (%d x %d bits, %d ports):\n\n%s",
		w.Arch, w.Opts.Size, w.Opts.Width, w.Opts.Ports, coverage.RenderMatrix(reports))
}

// ParseArch maps an architecture name to its coverage constant.
func ParseArch(s string) (coverage.Architecture, error) {
	switch s {
	case "reference":
		return coverage.Reference, nil
	case "microcode":
		return coverage.Microcode, nil
	case "fsm":
		return coverage.ProgFSM, nil
	case "hardwired":
		return coverage.Hardwired, nil
	}
	return 0, fmt.Errorf("unknown architecture %q", s)
}

// ParseEngine maps an engine name to its coverage constant.
func ParseEngine(s string) (coverage.Engine, error) {
	switch s {
	case "auto":
		return coverage.EngineAuto, nil
	case "scalar":
		return coverage.EngineScalar, nil
	}
	return 0, fmt.Errorf("unknown engine %q", s)
}

// ParseLanes maps a lane-width name to Options.Lanes: "auto" (or
// empty) defers to the library default, otherwise the value must be a
// supported logical lane width.
func ParseLanes(s string) (int, error) {
	switch s {
	case "auto", "":
		return 0, nil
	case "64":
		return 64, nil
	case "128":
		return 128, nil
	case "256":
		return 256, nil
	case "512":
		return 512, nil
	}
	return 0, fmt.Errorf("unknown lane width %q (want auto, 64, 128, 256 or 512)", s)
}

// ParseReplay maps a replay-mode name to its coverage constant.
// "compiled" (or empty) is the default µop-kernel path; "interpreted"
// pins the per-op reference replay the kernels are validated against.
func ParseReplay(s string) (coverage.Replay, error) {
	switch s {
	case "compiled", "":
		return coverage.ReplayCompiled, nil
	case "interpreted":
		return coverage.ReplayInterpreted, nil
	}
	return 0, fmt.Errorf("unknown replay mode %q (want compiled or interpreted)", s)
}

// Shard is one graded workload slice: shard Shard of Of, with one
// coverage.State per algorithm. It is the payload of a shard file.
type Shard struct {
	Algs   []string                   `json:"algs"`
	Shard  int                        `json:"shard"`
	Of     int                        `json:"of"`
	States map[string]*coverage.State `json:"states"`
}

// GradeShard grades slice shard of `of` for every workload algorithm.
func (w *Workload) GradeShard(ctx context.Context, shard, of int) (*Shard, error) {
	s := &Shard{
		Algs:   w.Names(),
		Shard:  shard,
		Of:     of,
		States: make(map[string]*coverage.State, len(w.Algs)),
	}
	for _, alg := range w.Algs {
		st, err := coverage.GradeShardContext(ctx, alg, w.Arch, w.Opts, shard, of)
		if err != nil {
			return nil, err
		}
		s.States[alg.Name] = st
	}
	return s, nil
}

// SaveShard persists a shard file: a resilience envelope bound to the
// workload fingerprint, so a shard graded against different flags (or
// a corrupted file) is rejected at load instead of silently merged.
func (w *Workload) SaveShard(path string, s *Shard) error {
	return resilience.Save(path, w.Fingerprint(), s)
}

// LoadShard loads and validates one shard file for this workload.
func (w *Workload) LoadShard(path string) (*Shard, error) {
	var s Shard
	if err := resilience.Load(path, w.Fingerprint(), &s); err != nil {
		return nil, err
	}
	if s.Of <= 0 || s.Shard < 0 || s.Shard >= s.Of {
		return nil, fmt.Errorf("%s: %w: shard %d of %d out of range", path, resilience.ErrCorrupt, s.Shard, s.Of)
	}
	return &s, nil
}

// Merge combines a full shard set into final reports, byte-identical
// to an unsharded sweep of the same workload. Every shard 0..of-1 must
// appear exactly once and carry a state for every workload algorithm.
func (w *Workload) Merge(shards ...*Shard) ([]*coverage.Report, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("merge of zero shards")
	}
	of := shards[0].Of
	seen := make([]bool, of)
	for _, s := range shards {
		if s.Of != of {
			return nil, fmt.Errorf("shard %d/%d mixed into a %d-shard sweep", s.Shard, s.Of, of)
		}
		if seen[s.Shard] {
			return nil, fmt.Errorf("shard %d/%d appears twice", s.Shard, s.Of)
		}
		seen[s.Shard] = true
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("shard %d/%d missing from merge", i, of)
		}
	}
	reports := make([]*coverage.Report, 0, len(w.Algs))
	for _, alg := range w.Algs {
		states := make([]*coverage.State, 0, len(shards))
		for _, s := range shards {
			st := s.States[alg.Name]
			if st == nil {
				return nil, fmt.Errorf("shard %d/%d has no state for algorithm %q", s.Shard, s.Of, alg.Name)
			}
			states = append(states, st)
		}
		merged, err := coverage.MergeStates(states...)
		if err != nil {
			return nil, fmt.Errorf("merge %s: %w", alg.Name, err)
		}
		rep, err := coverage.ReportFromState(alg, w.Arch, w.Opts, merged)
		if err != nil {
			return nil, fmt.Errorf("report %s: %w", alg.Name, err)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}
