package sweep

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/resilience"
)

func TestSpecDefaults(t *testing.T) {
	// An empty Spec (a JSON body of {}) and a flag set parsed with no
	// arguments must resolve to the same workload.
	var flagged Spec
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	flagged.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	fw, err := flagged.Workload()
	if err != nil {
		t.Fatal(err)
	}
	zw, err := Spec{}.Workload()
	if err != nil {
		t.Fatal(err)
	}
	if fw.Fingerprint() != zw.Fingerprint() {
		t.Fatalf("flag defaults and zero-Spec defaults diverge:\n%s\n%s", fw.Fingerprint(), zw.Fingerprint())
	}
	if len(zw.Algs) != 8 {
		t.Fatalf("default workload has %d algorithms, want 8", len(zw.Algs))
	}
	if zw.Opts.Size != DefaultSize || zw.Opts.Width != DefaultWidth || zw.Opts.Ports != DefaultPorts {
		t.Fatalf("default geometry %dx%d/%d", zw.Opts.Size, zw.Opts.Width, zw.Opts.Ports)
	}
}

func TestSpecRejectsUnknownNames(t *testing.T) {
	for _, s := range []Spec{
		{Algs: "nosuch"},
		{Arch: "quantum"},
		{Engine: "warp"},
		{Lanes: "96"},
	} {
		if _, err := s.Workload(); err == nil {
			t.Errorf("Spec %+v resolved, want error", s)
		}
	}
}

func TestFingerprintExcludesExecutionKnobs(t *testing.T) {
	base := Spec{Algs: "marchc", Size: 8}
	w0, err := base.Workload()
	if err != nil {
		t.Fatal(err)
	}
	// Workers, engine and lanes must not move the fingerprint: state
	// persisted under one configuration resumes under any other.
	for _, s := range []Spec{
		{Algs: "marchc", Size: 8, Workers: 7},
		{Algs: "marchc", Size: 8, Engine: "scalar"},
		{Algs: "marchc", Size: 8, Lanes: "512"},
		{Algs: "marchc", Size: 8, Timeout: "90s", Retries: 3},
	} {
		w, err := s.Workload()
		if err != nil {
			t.Fatal(err)
		}
		if w.Fingerprint() != w0.Fingerprint() {
			t.Errorf("Spec %+v shifted the fingerprint", s)
		}
	}
	// Geometry and algorithm list must.
	for _, s := range []Spec{
		{Algs: "marchc", Size: 16},
		{Algs: "marchc,mats+", Size: 8},
		{Algs: "marchc", Size: 8, Arch: "microcode"},
	} {
		w, err := s.Workload()
		if err != nil {
			t.Fatal(err)
		}
		if w.Fingerprint() == w0.Fingerprint() {
			t.Errorf("Spec %+v did not shift the fingerprint", s)
		}
	}
}

// TestShardFilesMergeByteIdentical pins the driver-level sharding
// round trip: grade N shards, persist each through the resilience
// envelope, load them back, merge, and render text byte-identical to
// the unsharded sweep.
func TestShardFilesMergeByteIdentical(t *testing.T) {
	spec := Spec{Algs: "mats+,marchc", Size: 8, Workers: 2}
	w, err := spec.Workload()
	if err != nil {
		t.Fatal(err)
	}
	full, err := w.Grade(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := w.RenderText(full)

	const n = 3
	dir := t.TempDir()
	paths := make([]string, n)
	for i := 0; i < n; i++ {
		s, err := w.GradeShard(context.Background(), i, n)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard%d.json", i))
		if err := w.SaveShard(paths[i], s); err != nil {
			t.Fatalf("save shard %d: %v", i, err)
		}
	}
	shards := make([]*Shard, n)
	for i, p := range paths {
		if shards[i], err = w.LoadShard(p); err != nil {
			t.Fatalf("load shard %d: %v", i, err)
		}
	}
	merged, err := w.Merge(shards...)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.RenderText(merged); got != want {
		t.Fatalf("merged shard sweep diverges from unsharded:\n--- merged\n%s\n--- unsharded\n%s", got, want)
	}
}

func TestLoadShardRejectsForeignWorkload(t *testing.T) {
	spec := Spec{Algs: "mats+", Size: 8}
	w, err := spec.Workload()
	if err != nil {
		t.Fatal(err)
	}
	s, err := w.GradeShard(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shard.json")
	if err := w.SaveShard(path, s); err != nil {
		t.Fatal(err)
	}
	other, err := Spec{Algs: "mats+", Size: 16}.Workload()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.LoadShard(path); !errors.Is(err, resilience.ErrMismatch) {
		t.Fatalf("foreign workload loaded shard file, err=%v", err)
	}
}

func TestMergeRejectsBadShardSets(t *testing.T) {
	w, err := Spec{Algs: "mats+", Size: 8}.Workload()
	if err != nil {
		t.Fatal(err)
	}
	s0, err := w.GradeShard(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := w.GradeShard(context.Background(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Merge(); err == nil {
		t.Error("merge of zero shards accepted")
	}
	if _, err := w.Merge(s0); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("merge with missing shard accepted, err=%v", err)
	}
	if _, err := w.Merge(s0, s0); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("merge with duplicate shard accepted, err=%v", err)
	}
	odd, err := w.GradeShard(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Merge(s0, s1, odd); err == nil || !strings.Contains(err.Error(), "mixed") {
		t.Errorf("merge with mixed shard counts accepted, err=%v", err)
	}
	if _, err := w.Merge(s0, s1); err != nil {
		t.Errorf("valid merge rejected: %v", err)
	}
}

func TestSpecTimeoutDuration(t *testing.T) {
	cases := []struct {
		in      string
		want    time.Duration
		wantErr bool
	}{
		{"", 0, false},
		{"90s", 90 * time.Second, false},
		{"5m", 5 * time.Minute, false},
		{"-1s", 0, true},
		{"ninety", 0, true},
	}
	for _, c := range cases {
		d, err := Spec{Timeout: c.in}.TimeoutDuration()
		if (err != nil) != c.wantErr {
			t.Errorf("TimeoutDuration(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if d != c.want {
			t.Errorf("TimeoutDuration(%q) = %v, want %v", c.in, d, c.want)
		}
	}
}

func TestSpecRetryBudget(t *testing.T) {
	if got := (Spec{}).RetryBudget(2); got != 2 {
		t.Errorf("unset Retries: budget %d, want the driver default 2", got)
	}
	if got := (Spec{Retries: 5}).RetryBudget(2); got != 5 {
		t.Errorf("Retries=5: budget %d, want 5", got)
	}
	if got := (Spec{Retries: -1}).RetryBudget(2); got != 0 {
		t.Errorf("Retries=-1: budget %d, want 0 (never retry)", got)
	}
}
