package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// NetID identifies a boolean net within a Netlist.
type NetID int

// Invalid is the zero NetID sentinel; valid nets are strictly positive.
const Invalid NetID = 0

// Instance is one placed standard cell.
type Instance struct {
	Kind CellKind
	In   []NetID
	Out  NetID
	// Init is the asynchronous-reset value for sequential cells.
	Init bool
}

// Netlist is a flat single-clock gate-level design. Net 0 is reserved as
// the invalid net; constants are explicit nets returned by Const0/Const1.
type Netlist struct {
	Name string

	numNets int
	names   map[NetID]string
	insts   []Instance

	inputs  []NetID
	outputs []portBinding

	const0, const1 NetID

	driver map[NetID]int // net -> instance index driving it
}

// New returns an empty netlist with the given design name.
func New(name string) *Netlist {
	n := &Netlist{
		Name:   name,
		names:  make(map[NetID]string),
		driver: make(map[NetID]int),
	}
	return n
}

// NewNet allocates a fresh unnamed net.
func (n *Netlist) NewNet() NetID {
	n.numNets++
	return NetID(n.numNets)
}

// NamedNet allocates a fresh net carrying a debug name.
func (n *Netlist) NamedNet(name string) NetID {
	id := n.NewNet()
	n.names[id] = name
	return id
}

// SetNetName assigns a debug name to a net.
func (n *Netlist) SetNetName(id NetID, name string) { n.names[id] = name }

// NetName returns the debug name of a net, or "n<id>".
func (n *Netlist) NetName(id NetID) string {
	if s, ok := n.names[id]; ok {
		return s
	}
	return fmt.Sprintf("n%d", id)
}

// NumNets returns the number of allocated nets.
func (n *Netlist) NumNets() int { return n.numNets }

// AddInput declares a primary input and returns its net.
func (n *Netlist) AddInput(name string) NetID {
	id := n.NamedNet(name)
	n.inputs = append(n.inputs, id)
	return id
}

// portBinding names one primary output; several outputs may expose the
// same net under different names.
type portBinding struct {
	name string
	id   NetID
}

// AddOutput declares net id as a primary output under the given name.
func (n *Netlist) AddOutput(name string, id NetID) {
	if _, taken := n.names[id]; !taken {
		n.names[id] = name
	}
	n.outputs = append(n.outputs, portBinding{name: name, id: id})
}

// Inputs returns the primary input nets in declaration order.
func (n *Netlist) Inputs() []NetID { return n.inputs }

// Outputs returns the primary output nets in declaration order.
func (n *Netlist) Outputs() []NetID {
	ids := make([]NetID, len(n.outputs))
	for i, b := range n.outputs {
		ids[i] = b.id
	}
	return ids
}

// OutputBindings returns the (name, net) pairs in declaration order.
func (n *Netlist) OutputBindings() (names []string, ids []NetID) {
	for _, b := range n.outputs {
		names = append(names, b.name)
		ids = append(ids, b.id)
	}
	return names, ids
}

// InputByName returns the primary input with the given name.
func (n *Netlist) InputByName(name string) (NetID, bool) {
	for _, id := range n.inputs {
		if n.names[id] == name {
			return id, true
		}
	}
	return Invalid, false
}

// OutputByName returns the primary output with the given name.
func (n *Netlist) OutputByName(name string) (NetID, bool) {
	for _, b := range n.outputs {
		if b.name == name {
			return b.id, true
		}
	}
	return Invalid, false
}

// Const0 returns the constant-zero net, creating it on first use.
// It is modelled as a zero-area tie cell (no instance).
func (n *Netlist) Const0() NetID {
	if n.const0 == Invalid {
		n.const0 = n.NamedNet("const0")
	}
	return n.const0
}

// Const1 returns the constant-one net, creating it on first use.
func (n *Netlist) Const1() NetID {
	if n.const1 == Invalid {
		n.const1 = n.NamedNet("const1")
	}
	return n.const1
}

// IsConst reports whether id is one of the constant nets, and its value.
func (n *Netlist) IsConst(id NetID) (isConst, value bool) {
	switch id {
	case n.const0:
		return id != Invalid, false
	case n.const1:
		return id != Invalid, true
	}
	return false, false
}

// Add places a cell instance driving a fresh net and returns that net.
func (n *Netlist) Add(kind CellKind, in ...NetID) NetID {
	if len(in) != kind.NumInputs() {
		panic(fmt.Sprintf("netlist: %s expects %d inputs, got %d", kind, kind.NumInputs(), len(in)))
	}
	for _, i := range in {
		if i == Invalid {
			panic("netlist: invalid input net on " + kind.String())
		}
	}
	out := n.NewNet()
	n.insts = append(n.insts, Instance{Kind: kind, In: append([]NetID(nil), in...), Out: out})
	n.driver[out] = len(n.insts) - 1
	return out
}

// AddFF places a flip-flop of the given kind with reset value init.
func (n *Netlist) AddFF(kind CellKind, d NetID, init bool) NetID {
	if !kind.IsSequential() {
		panic("netlist: AddFF on combinational cell " + kind.String())
	}
	if d == Invalid {
		panic("netlist: invalid D input")
	}
	out := n.NewNet()
	n.insts = append(n.insts, Instance{Kind: kind, In: []NetID{d}, Out: out, Init: init})
	n.driver[out] = len(n.insts) - 1
	return out
}

// SetFFInput rewires the D input of the flip-flop driving net q. It
// enables the two-phase construction pattern used by counters and FSMs,
// where state bits must exist before their next-state logic.
func (n *Netlist) SetFFInput(q, d NetID) {
	idx, ok := n.driver[q]
	if !ok || !n.insts[idx].Kind.IsSequential() {
		panic("netlist: SetFFInput target is not a flip-flop output")
	}
	if d == Invalid {
		panic("netlist: invalid D input")
	}
	n.insts[idx].In[0] = d
}

// Instances returns the placed instances. The returned slice is owned by
// the netlist and must not be modified.
func (n *Netlist) Instances() []Instance { return n.insts }

// Driver returns the index of the instance driving net id, or -1 for
// primary inputs and constants.
func (n *Netlist) Driver(id NetID) int {
	if idx, ok := n.driver[id]; ok {
		return idx
	}
	return -1
}

// Validate checks structural sanity: every instance input is driven by an
// instance, a primary input or a constant, and no net has two drivers.
func (n *Netlist) Validate() error {
	driven := make(map[NetID]bool, n.numNets)
	for _, id := range n.inputs {
		driven[id] = true
	}
	if n.const0 != Invalid {
		driven[n.const0] = true
	}
	if n.const1 != Invalid {
		driven[n.const1] = true
	}
	for i, inst := range n.insts {
		if driven[inst.Out] {
			return fmt.Errorf("netlist %s: net %s has multiple drivers (instance %d)", n.Name, n.NetName(inst.Out), i)
		}
		driven[inst.Out] = true
	}
	for i, inst := range n.insts {
		for _, in := range inst.In {
			if !driven[in] {
				return fmt.Errorf("netlist %s: instance %d (%s) input %s undriven", n.Name, i, inst.Kind, n.NetName(in))
			}
		}
	}
	for _, out := range n.outputs {
		if !driven[out.id] {
			return fmt.Errorf("netlist %s: output %s undriven", n.Name, out.name)
		}
	}
	return nil
}

// SweepDead removes logic that can influence neither a primary output
// nor any live flip-flop — the dead-gate cleanup a synthesis tool runs
// before area reporting. A flip-flop is live only if its output
// (transitively) reaches a primary output. Returns the number of
// instances removed.
func (n *Netlist) SweepDead() int {
	live := make(map[NetID]bool)
	var mark func(id NetID)
	mark = func(id NetID) {
		if live[id] {
			return
		}
		live[id] = true
		if d := n.Driver(id); d >= 0 {
			for _, in := range n.insts[d].In {
				mark(in)
			}
		}
	}
	for _, out := range n.outputs {
		mark(out.id)
	}

	var kept []Instance
	for _, inst := range n.insts {
		if live[inst.Out] {
			kept = append(kept, inst)
		}
	}
	removed := len(n.insts) - len(kept)
	n.insts = kept
	n.driver = make(map[NetID]int, len(kept))
	for i, inst := range n.insts {
		n.driver[inst.Out] = i
	}
	return removed
}

// Stats summarises a netlist against a library.
type Stats struct {
	Design    string
	CellCount map[CellKind]int
	Cells     int     // total instances
	FlipFlops int     // sequential instances
	GE        float64 // 2-input-NAND gate equivalents
	AreaUm2   float64 // physical area under the library
}

// StatsFor computes cell counts, gate equivalents and area for the
// netlist under lib.
func (n *Netlist) StatsFor(lib *Library) Stats {
	s := Stats{Design: n.Name, CellCount: make(map[CellKind]int)}
	for _, inst := range n.insts {
		s.CellCount[inst.Kind]++
		s.Cells++
		if inst.Kind.IsSequential() {
			s.FlipFlops++
		}
		s.GE += lib.GE[inst.Kind]
		s.AreaUm2 += lib.Area[inst.Kind]
	}
	return s
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d cells (%d FFs), %.1f GE, %.0f um2", s.Design, s.Cells, s.FlipFlops, s.GE, s.AreaUm2)
}

// Breakdown renders a deterministic per-cell-kind table.
func (s Stats) Breakdown() string {
	kinds := make([]CellKind, 0, len(s.CellCount))
	for k := range s.CellCount {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	var b strings.Builder
	for _, k := range kinds {
		fmt.Fprintf(&b, "%-6s %d\n", k, s.CellCount[k])
	}
	return b.String()
}
