package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// NetID identifies a boolean net within a Netlist.
type NetID int

// Invalid is the zero NetID sentinel; valid nets are strictly positive.
const Invalid NetID = 0

// Instance is one placed standard cell.
type Instance struct {
	Kind CellKind
	In   []NetID
	Out  NetID
	// Init is the asynchronous-reset value for sequential cells.
	Init bool
}

// Netlist is a flat single-clock gate-level design. Net 0 is reserved as
// the invalid net; constants are explicit nets returned by Const0/Const1.
type Netlist struct {
	Name string

	numNets int
	names   map[NetID]string
	insts   []Instance

	inputs  []NetID
	outputs []portBinding

	const0, const1 NetID

	driver map[NetID]int // net -> instance index driving it

	// collect switches structural errors from panics to a collected
	// list the linter can report (see CollectErrors).
	collect bool
	cerrs   []error
}

// New returns an empty netlist with the given design name.
func New(name string) *Netlist {
	n := &Netlist{
		Name:   name,
		names:  make(map[NetID]string),
		driver: make(map[NetID]int),
	}
	return n
}

// CollectErrors switches the netlist between the default panic-on-bug
// construction mode and a collected-error mode: structural errors
// (bad cell arity, invalid input nets, duplicate drivers, rewiring a
// non-existent instance) are recorded instead of panicking, the
// offending construction call becomes a no-op that still allocates its
// result net, and the accumulated errors are available through
// ConstructionErrors. Generators keep the panic default — a structural
// error there is a programming bug — while the linter builds suspect
// netlists in collected mode and reports every error as a finding.
func (n *Netlist) CollectErrors(on bool) { n.collect = on }

// ConstructionErrors returns the structural errors recorded while the
// netlist was in collected-error mode, in occurrence order.
func (n *Netlist) ConstructionErrors() []error { return n.cerrs }

// fail reports a structural construction error: collected when
// CollectErrors mode is on, a panic otherwise.
func (n *Netlist) fail(format string, args ...interface{}) {
	err := fmt.Errorf("netlist %s: "+format, append([]interface{}{n.Name}, args...)...)
	if n.collect {
		n.cerrs = append(n.cerrs, err)
		return
	}
	panic(err.Error())
}

// NewNet allocates a fresh unnamed net.
func (n *Netlist) NewNet() NetID {
	n.numNets++
	return NetID(n.numNets)
}

// NamedNet allocates a fresh net carrying a debug name.
func (n *Netlist) NamedNet(name string) NetID {
	id := n.NewNet()
	n.names[id] = name
	return id
}

// SetNetName assigns a debug name to a net.
func (n *Netlist) SetNetName(id NetID, name string) { n.names[id] = name }

// NetName returns the debug name of a net, or "n<id>".
func (n *Netlist) NetName(id NetID) string {
	if s, ok := n.names[id]; ok {
		return s
	}
	return fmt.Sprintf("n%d", id)
}

// NumNets returns the number of allocated nets.
func (n *Netlist) NumNets() int { return n.numNets }

// AddInput declares a primary input and returns its net.
func (n *Netlist) AddInput(name string) NetID {
	id := n.NamedNet(name)
	n.inputs = append(n.inputs, id)
	return id
}

// portBinding names one primary output; several outputs may expose the
// same net under different names.
type portBinding struct {
	name string
	id   NetID
}

// AddOutput declares net id as a primary output under the given name.
func (n *Netlist) AddOutput(name string, id NetID) {
	if _, taken := n.names[id]; !taken {
		n.names[id] = name
	}
	n.outputs = append(n.outputs, portBinding{name: name, id: id})
}

// Inputs returns the primary input nets in declaration order.
func (n *Netlist) Inputs() []NetID { return n.inputs }

// Outputs returns the primary output nets in declaration order.
func (n *Netlist) Outputs() []NetID {
	ids := make([]NetID, len(n.outputs))
	for i, b := range n.outputs {
		ids[i] = b.id
	}
	return ids
}

// OutputBindings returns the (name, net) pairs in declaration order.
func (n *Netlist) OutputBindings() (names []string, ids []NetID) {
	for _, b := range n.outputs {
		names = append(names, b.name)
		ids = append(ids, b.id)
	}
	return names, ids
}

// InputByName returns the primary input with the given name.
func (n *Netlist) InputByName(name string) (NetID, bool) {
	for _, id := range n.inputs {
		if n.names[id] == name {
			return id, true
		}
	}
	return Invalid, false
}

// OutputByName returns the primary output with the given name.
func (n *Netlist) OutputByName(name string) (NetID, bool) {
	for _, b := range n.outputs {
		if b.name == name {
			return b.id, true
		}
	}
	return Invalid, false
}

// Const0 returns the constant-zero net, creating it on first use.
// It is modelled as a zero-area tie cell (no instance).
func (n *Netlist) Const0() NetID {
	if n.const0 == Invalid {
		n.const0 = n.NamedNet("const0")
	}
	return n.const0
}

// Const1 returns the constant-one net, creating it on first use.
func (n *Netlist) Const1() NetID {
	if n.const1 == Invalid {
		n.const1 = n.NamedNet("const1")
	}
	return n.const1
}

// IsConst reports whether id is one of the constant nets, and its value.
func (n *Netlist) IsConst(id NetID) (isConst, value bool) {
	switch id {
	case n.const0:
		return id != Invalid, false
	case n.const1:
		return id != Invalid, true
	}
	return false, false
}

// checkCell validates the arity and input nets of a prospective
// instance; it reports each violation through fail and returns whether
// the instance is safe to place.
func (n *Netlist) checkCell(kind CellKind, in []NetID) bool {
	ok := true
	if len(in) != kind.NumInputs() {
		n.fail("%s expects %d inputs, got %d", kind, kind.NumInputs(), len(in))
		ok = false
	}
	for _, i := range in {
		if i == Invalid {
			n.fail("invalid input net on %s", kind)
			ok = false
		}
	}
	return ok
}

// Add places a cell instance driving a fresh net and returns that net.
func (n *Netlist) Add(kind CellKind, in ...NetID) NetID {
	out := n.NewNet()
	if !n.checkCell(kind, in) {
		return out
	}
	n.insts = append(n.insts, Instance{Kind: kind, In: append([]NetID(nil), in...), Out: out})
	n.driver[out] = len(n.insts) - 1
	return out
}

// AddInto places a cell instance driving the pre-allocated net out —
// the two-phase pattern for structures whose nets must exist before
// their logic. Driving a net that already has a driver (an instance, a
// primary input or a constant) is a structural error: a panic, or a
// collected error under CollectErrors mode.
func (n *Netlist) AddInto(out NetID, kind CellKind, in ...NetID) {
	if out == Invalid || int(out) > n.numNets {
		n.fail("AddInto target %d is not an allocated net", int(out))
		return
	}
	if _, driven := n.driver[out]; driven {
		n.fail("net %s has multiple drivers (%s)", n.NetName(out), kind)
		return
	}
	for _, id := range n.inputs {
		if id == out {
			n.fail("net %s has multiple drivers (primary input and %s)", n.NetName(out), kind)
			return
		}
	}
	if c, _ := n.IsConst(out); c {
		n.fail("net %s has multiple drivers (constant and %s)", n.NetName(out), kind)
		return
	}
	if !n.checkCell(kind, in) {
		return
	}
	n.insts = append(n.insts, Instance{Kind: kind, In: append([]NetID(nil), in...), Out: out})
	n.driver[out] = len(n.insts) - 1
}

// AddFF places a flip-flop of the given kind with reset value init.
func (n *Netlist) AddFF(kind CellKind, d NetID, init bool) NetID {
	out := n.NewNet()
	if !kind.IsSequential() {
		n.fail("AddFF on combinational cell %s", kind)
		return out
	}
	if d == Invalid {
		n.fail("invalid D input")
		return out
	}
	n.insts = append(n.insts, Instance{Kind: kind, In: []NetID{d}, Out: out, Init: init})
	n.driver[out] = len(n.insts) - 1
	return out
}

// SetFFInput rewires the D input of the flip-flop driving net q. It
// enables the two-phase construction pattern used by counters and FSMs,
// where state bits must exist before their next-state logic.
func (n *Netlist) SetFFInput(q, d NetID) {
	idx, ok := n.driver[q]
	if !ok || !n.insts[idx].Kind.IsSequential() {
		n.fail("SetFFInput target %s is not a flip-flop output", n.NetName(q))
		return
	}
	if d == Invalid {
		n.fail("invalid D input")
		return
	}
	n.insts[idx].In[0] = d
}

// SetGateInput rewires input pin of the instance driving net out. It is
// the combinational counterpart of SetFFInput; rewiring can create
// combinational cycles, which the lint layer detects.
func (n *Netlist) SetGateInput(out NetID, pin int, d NetID) {
	idx, ok := n.driver[out]
	if !ok {
		n.fail("SetGateInput target %s has no driving instance", n.NetName(out))
		return
	}
	if pin < 0 || pin >= len(n.insts[idx].In) {
		n.fail("SetGateInput pin %d out of range on %s", pin, n.insts[idx].Kind)
		return
	}
	if d == Invalid {
		n.fail("invalid input net on %s", n.insts[idx].Kind)
		return
	}
	n.insts[idx].In[pin] = d
}

// Instances returns the placed instances. The returned slice is owned by
// the netlist and must not be modified.
func (n *Netlist) Instances() []Instance { return n.insts }

// Driver returns the index of the instance driving net id, or -1 for
// primary inputs and constants.
func (n *Netlist) Driver(id NetID) int {
	if idx, ok := n.driver[id]; ok {
		return idx
	}
	return -1
}

// NumInstances returns the number of placed instances.
func (n *Netlist) NumInstances() int { return len(n.insts) }

// FanoutMap returns, for every net, the indices of the instances that
// read it, in instance order. Nets with no readers are absent.
func (n *Netlist) FanoutMap() map[NetID][]int {
	fan := make(map[NetID][]int)
	for i, inst := range n.insts {
		for _, in := range inst.In {
			fan[in] = append(fan[in], i)
		}
	}
	return fan
}

// NamedNets returns every net carrying a debug name, in ascending net
// order.
func (n *Netlist) NamedNets() []NetID {
	ids := make([]NetID, 0, len(n.names))
	for id := range n.names {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// NameOf returns the debug name of a net and whether one was assigned
// (NetName, by contrast, synthesises an "n<id>" fallback).
func (n *Netlist) NameOf(id NetID) (string, bool) {
	s, ok := n.names[id]
	return s, ok
}

// IsInput reports whether id is a declared primary input.
func (n *Netlist) IsInput(id NetID) bool {
	for _, in := range n.inputs {
		if in == id {
			return true
		}
	}
	return false
}

// Validate checks structural sanity: every instance input is driven by an
// instance, a primary input or a constant, and no net has two drivers.
func (n *Netlist) Validate() error {
	driven := make(map[NetID]bool, n.numNets)
	for _, id := range n.inputs {
		driven[id] = true
	}
	if n.const0 != Invalid {
		driven[n.const0] = true
	}
	if n.const1 != Invalid {
		driven[n.const1] = true
	}
	for i, inst := range n.insts {
		if driven[inst.Out] {
			return fmt.Errorf("netlist %s: net %s has multiple drivers (instance %d)", n.Name, n.NetName(inst.Out), i)
		}
		driven[inst.Out] = true
	}
	for i, inst := range n.insts {
		for _, in := range inst.In {
			if !driven[in] {
				return fmt.Errorf("netlist %s: instance %d (%s) input %s undriven", n.Name, i, inst.Kind, n.NetName(in))
			}
		}
	}
	for _, out := range n.outputs {
		if !driven[out.id] {
			return fmt.Errorf("netlist %s: output %s undriven", n.Name, out.name)
		}
	}
	return nil
}

// SweepDead removes logic that can influence neither a primary output
// nor any live flip-flop — the dead-gate cleanup a synthesis tool runs
// before area reporting. A flip-flop is live only if its output
// (transitively) reaches a primary output. Returns the number of
// instances removed.
func (n *Netlist) SweepDead() int {
	live := make(map[NetID]bool)
	var mark func(id NetID)
	mark = func(id NetID) {
		if live[id] {
			return
		}
		live[id] = true
		if d := n.Driver(id); d >= 0 {
			for _, in := range n.insts[d].In {
				mark(in)
			}
		}
	}
	for _, out := range n.outputs {
		mark(out.id)
	}

	var kept []Instance
	for _, inst := range n.insts {
		if live[inst.Out] {
			kept = append(kept, inst)
		} else {
			// The swept instance's output net becomes an orphan; drop
			// its debug name so it does not read as a dangling net.
			delete(n.names, inst.Out)
		}
	}
	removed := len(n.insts) - len(kept)
	n.insts = kept
	n.driver = make(map[NetID]int, len(kept))
	for i, inst := range n.insts {
		n.driver[inst.Out] = i
	}
	return removed
}

// Stats summarises a netlist against a library.
type Stats struct {
	Design    string
	CellCount map[CellKind]int
	Cells     int     // total instances
	FlipFlops int     // sequential instances
	GE        float64 // 2-input-NAND gate equivalents
	AreaUm2   float64 // physical area under the library
}

// StatsFor computes cell counts, gate equivalents and area for the
// netlist under lib.
func (n *Netlist) StatsFor(lib *Library) Stats {
	s := Stats{Design: n.Name, CellCount: make(map[CellKind]int)}
	for _, inst := range n.insts {
		s.CellCount[inst.Kind]++
		s.Cells++
		if inst.Kind.IsSequential() {
			s.FlipFlops++
		}
		s.GE += lib.GE[inst.Kind]
		s.AreaUm2 += lib.Area[inst.Kind]
	}
	return s
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d cells (%d FFs), %.1f GE, %.0f um2", s.Design, s.Cells, s.FlipFlops, s.GE, s.AreaUm2)
}

// Breakdown renders a deterministic per-cell-kind table.
func (s Stats) Breakdown() string {
	kinds := make([]CellKind, 0, len(s.CellCount))
	for k := range s.CellCount {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	var b strings.Builder
	for _, k := range kinds {
		fmt.Fprintf(&b, "%-6s %d\n", k, s.CellCount[k])
	}
	return b.String()
}
