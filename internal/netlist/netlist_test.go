package netlist

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

func TestAddAndValidate(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")
	b := n.AddInput("b")
	o := n.Nand2(a, b)
	n.AddOutput("o", o)
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := len(n.Instances()); got != 1 {
		t.Errorf("instances = %d, want 1", got)
	}
}

func TestValidateCatchesUndriven(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")
	ghost := n.NewNet() // never driven
	o := n.Add(CellAnd2, a, ghost)
	n.AddOutput("o", o)
	if err := n.Validate(); err == nil {
		t.Fatal("Validate accepted an undriven net")
	}
}

func TestConstFolding(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")

	if got := n.And2(a, n.Const1()); got != a {
		t.Error("a AND 1 did not fold to a")
	}
	if got := n.And2(a, n.Const0()); got != n.Const0() {
		t.Error("a AND 0 did not fold to 0")
	}
	if got := n.Or2(a, n.Const0()); got != a {
		t.Error("a OR 0 did not fold to a")
	}
	if got := n.Or2(a, n.Const1()); got != n.Const1() {
		t.Error("a OR 1 did not fold to 1")
	}
	if got := n.Xor2(a, a); got != n.Const0() {
		t.Error("a XOR a did not fold to 0")
	}
	if got := n.Mux2(n.Const0(), a, n.Const1()); got != a {
		t.Error("mux with const sel did not fold")
	}
	if got := len(n.Instances()); got != 0 {
		t.Errorf("folding left %d instances", got)
	}
}

func TestMux2SemiConstFolding(t *testing.T) {
	n := New("t")
	s := n.AddInput("s")
	d := n.AddInput("d")
	// sel ? d : 0  ==  sel AND d
	got := n.Mux2(s, n.Const0(), d)
	if n.Instances()[n.Driver(got)].Kind != CellAnd2 {
		t.Errorf("mux(s,0,d) mapped to %v, want AND2", n.Instances()[n.Driver(got)].Kind)
	}
	// sel ? 1 : d == sel OR d
	got = n.Mux2(s, d, n.Const1())
	if n.Instances()[n.Driver(got)].Kind != CellOr2 {
		t.Errorf("mux(s,d,1) mapped to %v, want OR2", n.Instances()[n.Driver(got)].Kind)
	}
	// sel ? 1 : 0 == sel
	if got := n.Mux2(s, n.Const0(), n.Const1()); got != s {
		t.Error("mux(s,0,1) did not fold to s")
	}
}

func TestStats(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")
	b := n.AddInput("b")
	x := n.Xor2(a, b)
	q := n.AddFF(CellDFF, x, false)
	n.AddOutput("q", q)

	s := n.StatsFor(&CMOS5SLike)
	if s.Cells != 2 || s.FlipFlops != 1 {
		t.Errorf("cells=%d ffs=%d, want 2/1", s.Cells, s.FlipFlops)
	}
	wantGE := CMOS5SLike.GE[CellXor2] + CMOS5SLike.GE[CellDFF]
	if s.GE != wantGE {
		t.Errorf("GE=%v want %v", s.GE, wantGE)
	}
	wantArea := CMOS5SLike.Area[CellXor2] + CMOS5SLike.Area[CellDFF]
	if s.AreaUm2 != wantArea {
		t.Errorf("Area=%v want %v", s.AreaUm2, wantArea)
	}
	if !strings.Contains(s.Breakdown(), "XOR2") {
		t.Errorf("Breakdown missing XOR2: %q", s.Breakdown())
	}
}

func TestCellEval(t *testing.T) {
	cases := []struct {
		kind CellKind
		in   []bool
		want bool
	}{
		{CellInv, []bool{true}, false},
		{CellBuf, []bool{true}, true},
		{CellNand2, []bool{true, true}, false},
		{CellNand2, []bool{true, false}, true},
		{CellNor2, []bool{false, false}, true},
		{CellAnd2, []bool{true, true}, true},
		{CellOr2, []bool{false, true}, true},
		{CellXor2, []bool{true, true}, false},
		{CellXnor2, []bool{true, true}, true},
		{CellMux2, []bool{false, true, false}, true},
		{CellMux2, []bool{true, true, false}, false},
	}
	for _, c := range cases {
		if got := c.kind.Eval(c.in); got != c.want {
			t.Errorf("%v.Eval(%v) = %v, want %v", c.kind, c.in, got, c.want)
		}
	}
}

func TestCellEvalPanicsOnFF(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Eval on DFF did not panic")
		}
	}()
	CellDFF.Eval([]bool{true})
}

func TestFromCoverConstants(t *testing.T) {
	n := New("t")
	if got := n.FromCover(nil, nil); got != n.Const0() {
		t.Error("nil cover is not const0")
	}
	if got := n.FromCover(logic.Cover{{}}, nil); got != n.Const1() {
		t.Error("empty-cube cover is not const1")
	}
}

func TestMuxNPanicsOnOverflow(t *testing.T) {
	n := New("t")
	s := n.AddInput("s")
	a := n.AddInput("a")
	defer func() {
		if recover() == nil {
			t.Error("MuxN with 3 data on 1 select bit did not panic")
		}
	}()
	n.MuxN([]NetID{s}, []NetID{a, a, a})
}

func TestSweepDead(t *testing.T) {
	n := New("sweep")
	a := n.AddInput("a")
	b := n.AddInput("b")
	live := n.And2(a, b)
	n.AddOutput("y", live)
	dead := n.Or2(a, b) // drives nothing
	deadFF := n.AddFF(CellDFF, dead, false)
	n.Xor2(deadFF, a) // dead cone off a dead FF
	liveFF := n.AddFF(CellDFF, live, false)
	n.AddOutput("q", liveFF) // live FF
	_ = dead

	removed := n.SweepDead()
	if removed != 3 {
		t.Errorf("swept %d instances, want 3 (OR, dead FF, XOR)", removed)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s := n.StatsFor(&CMOS5SLike)
	if s.Cells != 2 || s.FlipFlops != 1 {
		t.Errorf("after sweep: %d cells %d FFs, want 2/1", s.Cells, s.FlipFlops)
	}
	// Sweeping an already-clean netlist is a no-op.
	if again := n.SweepDead(); again != 0 {
		t.Errorf("second sweep removed %d", again)
	}
}

func TestSweepKeepsSelfLoopedLiveFF(t *testing.T) {
	// A scan-only storage cell (D = Q) exposed at an output must
	// survive the sweep.
	n := New("store")
	q := n.StorageRegister("m", CellSODFF, 2, []bool{true, false})
	n.AddOutput("m0", q[0])
	n.AddOutput("m1", q[1])
	if removed := n.SweepDead(); removed != 0 {
		t.Errorf("sweep removed %d live storage cells", removed)
	}
}

func TestDoubleDriverRejected(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")
	o := n.Add(CellInv, a)
	// Force a second driver onto the same net via instance surgery: not
	// possible through the public API, so check that AddOutput of a
	// driven net plus valid structure passes instead, and that re-adding
	// the same output name is tolerated.
	n.AddOutput("o", o)
	n.AddOutput("o2", o)
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}
