package netlist

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

func TestAddAndValidate(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")
	b := n.AddInput("b")
	o := n.Nand2(a, b)
	n.AddOutput("o", o)
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := len(n.Instances()); got != 1 {
		t.Errorf("instances = %d, want 1", got)
	}
}

func TestValidateCatchesUndriven(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")
	ghost := n.NewNet() // never driven
	o := n.Add(CellAnd2, a, ghost)
	n.AddOutput("o", o)
	if err := n.Validate(); err == nil {
		t.Fatal("Validate accepted an undriven net")
	}
}

func TestConstFolding(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")

	if got := n.And2(a, n.Const1()); got != a {
		t.Error("a AND 1 did not fold to a")
	}
	if got := n.And2(a, n.Const0()); got != n.Const0() {
		t.Error("a AND 0 did not fold to 0")
	}
	if got := n.Or2(a, n.Const0()); got != a {
		t.Error("a OR 0 did not fold to a")
	}
	if got := n.Or2(a, n.Const1()); got != n.Const1() {
		t.Error("a OR 1 did not fold to 1")
	}
	if got := n.Xor2(a, a); got != n.Const0() {
		t.Error("a XOR a did not fold to 0")
	}
	if got := n.Mux2(n.Const0(), a, n.Const1()); got != a {
		t.Error("mux with const sel did not fold")
	}
	if got := len(n.Instances()); got != 0 {
		t.Errorf("folding left %d instances", got)
	}
}

func TestMux2SemiConstFolding(t *testing.T) {
	n := New("t")
	s := n.AddInput("s")
	d := n.AddInput("d")
	// sel ? d : 0  ==  sel AND d
	got := n.Mux2(s, n.Const0(), d)
	if n.Instances()[n.Driver(got)].Kind != CellAnd2 {
		t.Errorf("mux(s,0,d) mapped to %v, want AND2", n.Instances()[n.Driver(got)].Kind)
	}
	// sel ? 1 : d == sel OR d
	got = n.Mux2(s, d, n.Const1())
	if n.Instances()[n.Driver(got)].Kind != CellOr2 {
		t.Errorf("mux(s,d,1) mapped to %v, want OR2", n.Instances()[n.Driver(got)].Kind)
	}
	// sel ? 1 : 0 == sel
	if got := n.Mux2(s, n.Const0(), n.Const1()); got != s {
		t.Error("mux(s,0,1) did not fold to s")
	}
}

func TestStats(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")
	b := n.AddInput("b")
	x := n.Xor2(a, b)
	q := n.AddFF(CellDFF, x, false)
	n.AddOutput("q", q)

	s := n.StatsFor(&CMOS5SLike)
	if s.Cells != 2 || s.FlipFlops != 1 {
		t.Errorf("cells=%d ffs=%d, want 2/1", s.Cells, s.FlipFlops)
	}
	wantGE := CMOS5SLike.GE[CellXor2] + CMOS5SLike.GE[CellDFF]
	if s.GE != wantGE {
		t.Errorf("GE=%v want %v", s.GE, wantGE)
	}
	wantArea := CMOS5SLike.Area[CellXor2] + CMOS5SLike.Area[CellDFF]
	if s.AreaUm2 != wantArea {
		t.Errorf("Area=%v want %v", s.AreaUm2, wantArea)
	}
	if !strings.Contains(s.Breakdown(), "XOR2") {
		t.Errorf("Breakdown missing XOR2: %q", s.Breakdown())
	}
}

func TestCellEval(t *testing.T) {
	cases := []struct {
		kind CellKind
		in   []bool
		want bool
	}{
		{CellInv, []bool{true}, false},
		{CellBuf, []bool{true}, true},
		{CellNand2, []bool{true, true}, false},
		{CellNand2, []bool{true, false}, true},
		{CellNor2, []bool{false, false}, true},
		{CellAnd2, []bool{true, true}, true},
		{CellOr2, []bool{false, true}, true},
		{CellXor2, []bool{true, true}, false},
		{CellXnor2, []bool{true, true}, true},
		{CellMux2, []bool{false, true, false}, true},
		{CellMux2, []bool{true, true, false}, false},
	}
	for _, c := range cases {
		if got := c.kind.Eval(c.in); got != c.want {
			t.Errorf("%v.Eval(%v) = %v, want %v", c.kind, c.in, got, c.want)
		}
	}
}

func TestCellEvalPanicsOnFF(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Eval on DFF did not panic")
		}
	}()
	CellDFF.Eval([]bool{true})
}

func TestFromCoverConstants(t *testing.T) {
	n := New("t")
	if got := n.FromCover(nil, nil); got != n.Const0() {
		t.Error("nil cover is not const0")
	}
	if got := n.FromCover(logic.Cover{{}}, nil); got != n.Const1() {
		t.Error("empty-cube cover is not const1")
	}
}

func TestMuxNPanicsOnOverflow(t *testing.T) {
	n := New("t")
	s := n.AddInput("s")
	a := n.AddInput("a")
	defer func() {
		if recover() == nil {
			t.Error("MuxN with 3 data on 1 select bit did not panic")
		}
	}()
	n.MuxN([]NetID{s}, []NetID{a, a, a})
}

func TestSweepDead(t *testing.T) {
	n := New("sweep")
	a := n.AddInput("a")
	b := n.AddInput("b")
	live := n.And2(a, b)
	n.AddOutput("y", live)
	dead := n.Or2(a, b) // drives nothing
	deadFF := n.AddFF(CellDFF, dead, false)
	n.Xor2(deadFF, a) // dead cone off a dead FF
	liveFF := n.AddFF(CellDFF, live, false)
	n.AddOutput("q", liveFF) // live FF
	_ = dead

	removed := n.SweepDead()
	if removed != 3 {
		t.Errorf("swept %d instances, want 3 (OR, dead FF, XOR)", removed)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s := n.StatsFor(&CMOS5SLike)
	if s.Cells != 2 || s.FlipFlops != 1 {
		t.Errorf("after sweep: %d cells %d FFs, want 2/1", s.Cells, s.FlipFlops)
	}
	// Sweeping an already-clean netlist is a no-op.
	if again := n.SweepDead(); again != 0 {
		t.Errorf("second sweep removed %d", again)
	}
}

func TestSweepKeepsSelfLoopedLiveFF(t *testing.T) {
	// A scan-only storage cell (D = Q) exposed at an output must
	// survive the sweep.
	n := New("store")
	q := n.StorageRegister("m", CellSODFF, 2, []bool{true, false})
	n.AddOutput("m0", q[0])
	n.AddOutput("m1", q[1])
	if removed := n.SweepDead(); removed != 0 {
		t.Errorf("sweep removed %d live storage cells", removed)
	}
}

func TestDoubleDriverRejected(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")
	o := n.Add(CellInv, a)
	// Force a second driver onto the same net via instance surgery: not
	// possible through the public API, so check that AddOutput of a
	// driven net plus valid structure passes instead, and that re-adding
	// the same output name is tolerated.
	n.AddOutput("o", o)
	n.AddOutput("o2", o)
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAddIntoDrivesPreallocatedNet(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")
	o := n.NewNet()
	n.AddInto(o, CellInv, a)
	n.AddOutput("o", o)
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d := n.Driver(o); d != 0 {
		t.Errorf("Driver(o) = %d, want 0", d)
	}
}

func TestAddIntoPanicsOnDoubleDriver(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")
	o := n.Add(CellInv, a)
	defer func() {
		if recover() == nil {
			t.Error("AddInto onto a driven net did not panic")
		}
	}()
	n.AddInto(o, CellBuf, a)
}

func TestCollectErrorsMode(t *testing.T) {
	n := New("t")
	n.CollectErrors(true)
	a := n.AddInput("a")

	o := n.Add(CellInv, a)    // fine
	bad := n.Add(CellAnd2, a) // arity error, still returns a fresh net
	if bad == Invalid {
		t.Error("failed Add returned Invalid, want a fresh net")
	}
	n.AddInto(o, CellBuf, a)         // duplicate instance driver
	n.AddInto(a, CellBuf, o)         // duplicate driver on a primary input
	n.Add(CellInv, Invalid)          // invalid input net
	n.AddFF(CellAnd2, a, false)      // AddFF on a combinational cell
	n.SetFFInput(o, a)               // not a flip-flop output
	n.SetGateInput(o, 3, a)          // pin out of range
	n.SetGateInput(n.NewNet(), 0, a) // no driving instance

	errs := n.ConstructionErrors()
	if len(errs) != 8 {
		for _, e := range errs {
			t.Log(e)
		}
		t.Fatalf("collected %d errors, want 8", len(errs))
	}
	for _, e := range errs {
		if !strings.Contains(e.Error(), "netlist t:") {
			t.Errorf("error missing design name: %v", e)
		}
	}
	// Failed constructions were skipped: only the one good INV placed.
	if got := n.NumInstances(); got != 1 {
		t.Errorf("instances = %d, want 1", got)
	}

	// Switching collection off restores panics.
	n.CollectErrors(false)
	defer func() {
		if recover() == nil {
			t.Error("structural error did not panic with collection off")
		}
	}()
	n.Add(CellAnd2, a)
}

func TestTraversalAccessors(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")
	b := n.AddInput("b")
	x := n.Add(CellAnd2, a, b)
	y := n.Add(CellOr2, a, x)
	n.AddOutput("y", y)

	if !n.IsInput(a) || !n.IsInput(b) {
		t.Error("IsInput false for a primary input")
	}
	if n.IsInput(x) {
		t.Error("IsInput true for a gate output")
	}
	if got := n.NumInstances(); got != 2 {
		t.Errorf("NumInstances = %d, want 2", got)
	}

	fan := n.FanoutMap()
	if got := fan[a]; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("fanout(a) = %v, want [0 1]", got)
	}
	if got := fan[x]; len(got) != 1 || got[0] != 1 {
		t.Errorf("fanout(x) = %v, want [1]", got)
	}
	if _, ok := fan[y]; ok {
		t.Error("output net y has no instance readers, but appears in FanoutMap")
	}

	named := n.NamedNets()
	if len(named) != 3 { // a, b, y
		t.Fatalf("NamedNets = %v, want 3 entries", named)
	}
	for i := 1; i < len(named); i++ {
		if named[i-1] >= named[i] {
			t.Errorf("NamedNets not sorted: %v", named)
		}
	}
	if s, ok := n.NameOf(y); !ok || s != "y" {
		t.Errorf("NameOf(y) = %q,%v", s, ok)
	}
	if _, ok := n.NameOf(x); ok {
		t.Error("NameOf reported a name for an unnamed net")
	}
}

func TestSetGateInputRewires(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")
	b := n.AddInput("b")
	o := n.Add(CellAnd2, a, a)
	n.SetGateInput(o, 1, b)
	inst := n.Instances()[n.Driver(o)]
	if inst.In[1] != b {
		t.Errorf("pin 1 = %v, want %v", inst.In[1], b)
	}
}

func TestSweepDeadPrunesOrphanNames(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")
	dead := n.Add(CellInv, a)
	n.SetNetName(dead, "dead_inv")
	live := n.Add(CellBuf, a)
	n.AddOutput("y", live)
	if removed := n.SweepDead(); removed != 1 {
		t.Fatalf("swept %d, want 1", removed)
	}
	if _, ok := n.NameOf(dead); ok {
		t.Error("swept net kept its debug name")
	}
}
