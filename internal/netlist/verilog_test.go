package netlist

import (
	"strings"
	"testing"
)

func buildSmallDesign() *Netlist {
	n := New("toggle-counter")
	en := n.AddInput("en")
	c := n.BuildCounter("cnt", 3, en, Invalid, Invalid)
	n.AddOutput("tc", c.Terminal)
	for i, q := range c.Q {
		n.AddOutput([]string{"q0", "q1", "q2"}[i], q)
	}
	return n
}

func TestWriteVerilogStructure(t *testing.T) {
	n := buildSmallDesign()
	var sb strings.Builder
	if err := n.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	v := sb.String()

	for _, frag := range []string{
		"module toggle_counter (",
		"input  wire clk",
		"input  wire rst_n",
		"input  wire en",
		"output wire tc",
		"endmodule",
	} {
		if !strings.Contains(v, frag) {
			t.Errorf("Verilog missing %q:\n%s", frag, v)
		}
	}
	// One always block per flip-flop.
	ffs := n.StatsFor(&CMOS5SLike).FlipFlops
	if got := strings.Count(v, "always @(posedge clk"); got != ffs {
		t.Errorf("always blocks = %d, want %d", got, ffs)
	}
}

func TestWriteVerilogDeterministic(t *testing.T) {
	n := buildSmallDesign()
	var a, b strings.Builder
	if err := n.WriteVerilog(&a); err != nil {
		t.Fatal(err)
	}
	if err := n.WriteVerilog(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("Verilog emission not deterministic")
	}
}

func TestWriteVerilogLegalIdentifiers(t *testing.T) {
	n := New("weird [name]")
	a := n.AddInput("mem_q[3]")
	q := n.AddFF(CellDFF, a, true)
	n.SetNetName(q, "pc[0]")
	n.AddOutput("out.x", n.Inv(q))
	var sb strings.Builder
	if err := n.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	for _, bad := range []string{"[", "]", "weird name", "out.x"} {
		// Brackets may legitimately appear in comments; check only
		// declaration lines.
		for _, line := range strings.Split(v, "\n") {
			if strings.Contains(line, "//") {
				line = line[:strings.Index(line, "//")]
			}
			if strings.Contains(line, bad) && !strings.HasPrefix(strings.TrimSpace(line), "//") {
				t.Errorf("illegal fragment %q in line %q", bad, line)
			}
		}
	}
	if !strings.Contains(v, "mem_q_3") || !strings.Contains(v, "pc_0") {
		t.Errorf("sanitised names missing:\n%s", v)
	}
}

func TestWriteVerilogInitValues(t *testing.T) {
	n := New("init")
	a := n.AddInput("a")
	q1 := n.AddFF(CellDFF, a, true)
	q0 := n.AddFF(CellDFF, a, false)
	n.AddOutput("q1", q1)
	n.AddOutput("q0", q0)
	var sb strings.Builder
	if err := n.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	if !strings.Contains(v, "q1 <= 1'b1;") {
		t.Errorf("reset-to-one missing:\n%s", v)
	}
	if !strings.Contains(v, "q0 <= 1'b0;") {
		t.Errorf("reset-to-zero missing:\n%s", v)
	}
}

func TestWriteVerilogOutputAliases(t *testing.T) {
	// An output whose declared name differs from the net name gets an
	// alias assign; an FF exposed directly becomes an output reg.
	n := New("alias")
	a := n.AddInput("a")
	q := n.AddFF(CellDFF, a, false)
	n.SetNetName(q, "state_bit")
	n.AddOutput("test_end", q)  // alias onto a reg net
	n.AddOutput("state_bit", q) // direct reg port
	var sb strings.Builder
	if err := n.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	if !strings.Contains(v, "output wire test_end") {
		t.Errorf("alias port not declared:\n%s", v)
	}
	if !strings.Contains(v, "assign test_end = state_bit;") {
		t.Errorf("alias assign missing:\n%s", v)
	}
	if !strings.Contains(v, "output reg  state_bit") {
		t.Errorf("direct reg port not declared as reg:\n%s", v)
	}
	if strings.Contains(v, "  reg  state_bit;") {
		t.Errorf("port net double-declared:\n%s", v)
	}
}

func TestWriteVerilogRejectsInvalidNetlist(t *testing.T) {
	n := New("bad")
	ghost := n.NewNet()
	n.AddOutput("o", n.Add(CellInv, ghost))
	var sb strings.Builder
	if err := n.WriteVerilog(&sb); err == nil {
		t.Error("invalid netlist emitted")
	}
}
