package netlist

import (
	"fmt"

	"repro/internal/logic"
)

// Register builds a width-bit register of the given flip-flop kind with a
// synchronous load enable: q' = en ? d : q. It returns the Q nets.
// init supplies per-bit reset values (nil means all-zero).
func (n *Netlist) Register(prefix string, kind CellKind, width int, d []NetID, en NetID, init []bool) []NetID {
	if len(d) != width {
		panic(fmt.Sprintf("netlist: register %s: %d data nets for width %d", prefix, len(d), width))
	}
	q := make([]NetID, width)
	for i := 0; i < width; i++ {
		iv := false
		if init != nil {
			iv = init[i]
		}
		// Placeholder D; rewired below once Q exists.
		q[i] = n.AddFF(kind, n.Const0(), iv)
		n.names[q[i]] = fmt.Sprintf("%s[%d]", prefix, i)
		n.SetFFInput(q[i], n.Mux2(en, q[i], d[i]))
	}
	return q
}

// StorageRegister builds a width-bit register with no functional-data
// path at all: its contents are assumed loaded through the scan chain
// (kind CellSODFF) or tied at initialisation. Returns the Q nets.
// This models the microcode storage unit's scan-only re-design.
func (n *Netlist) StorageRegister(prefix string, kind CellKind, width int, init []bool) []NetID {
	q := make([]NetID, width)
	for i := 0; i < width; i++ {
		iv := false
		if init != nil {
			iv = init[i]
		}
		q[i] = n.AddFF(kind, n.Const0(), iv)
		n.names[q[i]] = fmt.Sprintf("%s[%d]", prefix, i)
		// Scan-only cells hold their value on the functional clock.
		n.SetFFInput(q[i], q[i])
	}
	return q
}

// Incrementer builds a width-bit incrementer: sum = a + 1 when en, else a.
// It returns the sum nets and the carry-out (asserted when a is all ones
// and en is high), using a ripple half-adder chain.
func (n *Netlist) Incrementer(a []NetID, en NetID) (sum []NetID, carry NetID) {
	carry = en
	sum = make([]NetID, len(a))
	for i := range a {
		sum[i] = n.Xor2(a[i], carry)
		carry = n.And2(a[i], carry)
	}
	return sum, carry
}

// Decrementer builds a width-bit decrementer: dif = a - 1 when en, else a.
// borrow is asserted when a is zero and en is high.
func (n *Netlist) Decrementer(a []NetID, en NetID) (dif []NetID, borrow NetID) {
	borrow = en
	dif = make([]NetID, len(a))
	for i := range a {
		dif[i] = n.Xor2(a[i], borrow)
		borrow = n.And2(n.Inv(a[i]), borrow)
	}
	return dif, borrow
}

// Counter is the result of BuildCounter: an up (or up/down) binary
// counter with enable and optional direction control.
type Counter struct {
	Q        []NetID // state bits, LSB first
	Terminal NetID   // asserted when the counter is at its final value for the current direction
}

// BuildCounter builds a width-bit binary counter.
//
//	en   — count enable
//	down — count direction (Invalid for an up-only counter)
//	clr  — synchronous clear to zero (Invalid if unused)
//
// Terminal is all-ones when counting up and all-zeros when counting down.
func (n *Netlist) BuildCounter(prefix string, width int, en, down, clr NetID) Counter {
	q := make([]NetID, width)
	for i := range q {
		q[i] = n.AddFF(CellDFF, n.Const0(), false)
		n.names[q[i]] = fmt.Sprintf("%s[%d]", prefix, i)
	}

	inc, _ := n.Incrementer(q, n.Const1())
	var next []NetID
	if down == Invalid {
		next = inc
	} else {
		dec, _ := n.Decrementer(q, n.Const1())
		next = make([]NetID, width)
		for i := range next {
			next[i] = n.Mux2(down, inc[i], dec[i])
		}
	}

	for i := range q {
		d := n.Mux2(en, q[i], next[i])
		if clr != Invalid {
			d = n.And2(d, n.Inv(clr))
		}
		n.SetFFInput(q[i], d)
	}

	allOnes := n.AndN(q...)
	if down == Invalid {
		return Counter{Q: q, Terminal: allOnes}
	}
	inv := make([]NetID, width)
	for i := range q {
		inv[i] = n.Inv(q[i])
	}
	allZero := n.AndN(inv...)
	return Counter{Q: q, Terminal: n.Mux2(down, allOnes, allZero)}
}

// EqualsConst builds a comparator asserting when bus a equals constant k.
func (n *Netlist) EqualsConst(a []NetID, k uint64) NetID {
	terms := make([]NetID, len(a))
	for i := range a {
		if k>>uint(i)&1 == 1 {
			terms[i] = a[i]
		} else {
			terms[i] = n.Inv(a[i])
		}
	}
	return n.AndN(terms...)
}

// EqualsBus builds an equality comparator between two buses.
func (n *Netlist) EqualsBus(a, b []NetID) NetID {
	if len(a) != len(b) {
		panic("netlist: EqualsBus width mismatch")
	}
	terms := make([]NetID, len(a))
	for i := range a {
		terms[i] = n.Xnor2(a[i], b[i])
	}
	return n.AndN(terms...)
}

// Decoder builds a full binary decoder of the select bus: output i is
// asserted when the bus value is i. outputs is capped at 2^len(sel).
func (n *Netlist) Decoder(sel []NetID, outputs int) []NetID {
	max := 1 << uint(len(sel))
	if outputs > max {
		panic("netlist: decoder outputs exceed select range")
	}
	out := make([]NetID, outputs)
	for i := range out {
		out[i] = n.EqualsConst(sel, uint64(i))
	}
	return out
}

// FromCover synthesises a sum-of-products cover over the given variable
// nets as AND/OR trees with shared input inverters, returning the output
// net. A nil cover is constant zero; the empty cube is constant one.
func (n *Netlist) FromCover(cv logic.Cover, vars []NetID) NetID {
	if len(cv) == 0 {
		return n.Const0()
	}
	invCache := make(map[NetID]NetID)
	inv := func(a NetID) NetID {
		if v, ok := invCache[a]; ok {
			return v
		}
		v := n.Inv(a)
		invCache[a] = v
		return v
	}
	terms := make([]NetID, 0, len(cv))
	for _, cube := range cv {
		var lits []NetID
		for k := 0; k < len(vars); k++ {
			bit := uint64(1) << uint(k)
			if cube.Mask&bit == 0 {
				continue
			}
			if cube.Value&bit != 0 {
				lits = append(lits, vars[k])
			} else {
				lits = append(lits, inv(vars[k]))
			}
		}
		terms = append(terms, n.AndN(lits...))
	}
	return n.OrN(terms...)
}

// FromTruthTable minimises the table and synthesises it over vars.
func (n *Netlist) FromTruthTable(t *logic.TruthTable, vars []NetID) NetID {
	if len(vars) != t.NumInputs() {
		panic("netlist: FromTruthTable variable count mismatch")
	}
	return n.FromCover(logic.Minimize(t), vars)
}
