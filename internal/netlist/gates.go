package netlist

// Gate-construction helpers with light constant folding. Folding keeps
// generated controllers free of tie-high/tie-low logic, the same clean-up
// a synthesis tool performs before area reporting.

// Inv returns NOT a.
func (n *Netlist) Inv(a NetID) NetID {
	if c, v := n.IsConst(a); c {
		if v {
			return n.Const0()
		}
		return n.Const1()
	}
	return n.Add(CellInv, a)
}

// And2 returns a AND b.
func (n *Netlist) And2(a, b NetID) NetID {
	if c, v := n.IsConst(a); c {
		if v {
			return b
		}
		return n.Const0()
	}
	if c, v := n.IsConst(b); c {
		if v {
			return a
		}
		return n.Const0()
	}
	if a == b {
		return a
	}
	return n.Add(CellAnd2, a, b)
}

// Or2 returns a OR b.
func (n *Netlist) Or2(a, b NetID) NetID {
	if c, v := n.IsConst(a); c {
		if v {
			return n.Const1()
		}
		return b
	}
	if c, v := n.IsConst(b); c {
		if v {
			return n.Const1()
		}
		return a
	}
	if a == b {
		return a
	}
	return n.Add(CellOr2, a, b)
}

// Nand2 returns NOT(a AND b).
func (n *Netlist) Nand2(a, b NetID) NetID {
	if c, v := n.IsConst(a); c {
		if v {
			return n.Inv(b)
		}
		return n.Const1()
	}
	if c, v := n.IsConst(b); c {
		if v {
			return n.Inv(a)
		}
		return n.Const1()
	}
	return n.Add(CellNand2, a, b)
}

// Nor2 returns NOT(a OR b).
func (n *Netlist) Nor2(a, b NetID) NetID {
	if c, v := n.IsConst(a); c {
		if v {
			return n.Const0()
		}
		return n.Inv(b)
	}
	if c, v := n.IsConst(b); c {
		if v {
			return n.Const0()
		}
		return n.Inv(a)
	}
	return n.Add(CellNor2, a, b)
}

// Xor2 returns a XOR b.
func (n *Netlist) Xor2(a, b NetID) NetID {
	if c, v := n.IsConst(a); c {
		if v {
			return n.Inv(b)
		}
		return b
	}
	if c, v := n.IsConst(b); c {
		if v {
			return n.Inv(a)
		}
		return a
	}
	if a == b {
		return n.Const0()
	}
	return n.Add(CellXor2, a, b)
}

// Xnor2 returns NOT(a XOR b).
func (n *Netlist) Xnor2(a, b NetID) NetID {
	return n.Inv(n.Xor2(a, b)) // folded by Inv when Xor2 folded to a constant
}

// Mux2 returns sel ? d1 : d0.
func (n *Netlist) Mux2(sel, d0, d1 NetID) NetID {
	if c, v := n.IsConst(sel); c {
		if v {
			return d1
		}
		return d0
	}
	if d0 == d1 {
		return d0
	}
	if c0, v0 := n.IsConst(d0); c0 {
		if c1, v1 := n.IsConst(d1); c1 {
			switch {
			case !v0 && v1:
				return sel
			case v0 && !v1:
				return n.Inv(sel)
			}
		}
		if v0 {
			return n.Or2(n.Inv(sel), d1) // 1 when sel=0
		}
		return n.And2(sel, d1) // 0 when sel=0
	}
	if c1, v1 := n.IsConst(d1); c1 {
		if v1 {
			return n.Or2(sel, d0)
		}
		return n.And2(n.Inv(sel), d0)
	}
	return n.Add(CellMux2, sel, d0, d1)
}

// AndN returns the conjunction of all nets as a balanced AND2 tree.
// AndN() is constant one.
func (n *Netlist) AndN(in ...NetID) NetID {
	return n.tree(in, n.And2, n.Const1)
}

// OrN returns the disjunction of all nets as a balanced OR2 tree.
// OrN() is constant zero.
func (n *Netlist) OrN(in ...NetID) NetID {
	return n.tree(in, n.Or2, n.Const0)
}

// XorN returns the parity of all nets. XorN() is constant zero.
func (n *Netlist) XorN(in ...NetID) NetID {
	return n.tree(in, n.Xor2, n.Const0)
}

func (n *Netlist) tree(in []NetID, op func(a, b NetID) NetID, empty func() NetID) NetID {
	switch len(in) {
	case 0:
		return empty()
	case 1:
		return in[0]
	}
	mid := len(in) / 2
	return op(n.tree(in[:mid], op, empty), n.tree(in[mid:], op, empty))
}

// MuxN selects among 2^len(sel) data inputs with a balanced MUX2 tree.
// data shorter than 2^len(sel) is padded with constant zero.
func (n *Netlist) MuxN(sel []NetID, data []NetID) NetID {
	want := 1 << uint(len(sel))
	if len(data) > want {
		panic("netlist: MuxN has more data inputs than the select can address")
	}
	for len(data) < want {
		data = append(data, n.Const0())
	}
	return n.muxTree(sel, data)
}

func (n *Netlist) muxTree(sel []NetID, data []NetID) NetID {
	if len(sel) == 0 {
		return data[0]
	}
	half := len(data) / 2
	// The most significant select bit picks the half; recurse on the rest.
	hiSel := sel[len(sel)-1]
	lo := n.muxTree(sel[:len(sel)-1], data[:half])
	hi := n.muxTree(sel[:len(sel)-1], data[half:])
	return n.Mux2(hiSel, lo, hi)
}
