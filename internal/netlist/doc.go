// Package netlist provides a gate-level structural hardware model: a
// standard-cell library, a flat netlist of cell instances over boolean
// nets, convenience builders (gate trees, registers, counters,
// multiplexers, decoders) and an area model that reports both 2-input-NAND
// gate equivalents and µm² under a selectable technology library.
//
// The paper's Tables 1-3 report controller sizes as "internal area
// (2x2-input NAND gates)" and µm² in IBM CMOS5S (0.35µm); this package is
// the substrate that regenerates those columns for every BIST
// architecture in the repository.
package netlist
