package netlist

import "fmt"

// CellKind identifies a standard cell.
type CellKind uint8

// The cell library. All cells have a single output. Sequential cells
// (the DFF variants) are clocked by an implicit global clock and carry an
// implicit asynchronous reset to their Init value.
const (
	CellInv CellKind = iota
	CellBuf
	CellNand2
	CellNor2
	CellAnd2
	CellOr2
	CellXor2
	CellXnor2
	CellMux2 // inputs: sel, d0, d1; out = sel ? d1 : d0
	CellDFF  // plain D flip-flop, input: D
	CellSDFF // full-scan D flip-flop (mux-D scan), input: D
	// CellSODFF is a scan-only storage cell: writable only through the
	// scan chain, no functional-clock data path. IBM ASIC libraries
	// provide these at roughly 1/4.5 the area of a full-scan register;
	// the paper's Table 3 re-design of the microcode storage unit is
	// built from them.
	CellSODFF
	numCellKinds
)

var cellNames = [numCellKinds]string{
	"INV", "BUF", "NAND2", "NOR2", "AND2", "OR2", "XOR2", "XNOR2",
	"MUX2", "DFF", "SDFF", "SODFF",
}

var cellInputs = [numCellKinds]int{
	1, 1, 2, 2, 2, 2, 2, 2, 3, 1, 1, 1,
}

func (k CellKind) String() string {
	if int(k) < len(cellNames) {
		return cellNames[k]
	}
	return fmt.Sprintf("CellKind(%d)", int(k))
}

// NumInputs returns the number of input pins of the cell.
func (k CellKind) NumInputs() int { return cellInputs[k] }

// IsSequential reports whether the cell is a flip-flop.
func (k CellKind) IsSequential() bool {
	return k == CellDFF || k == CellSDFF || k == CellSODFF
}

// Eval computes the combinational function of the cell on inputs in.
// Calling Eval on a sequential cell panics.
func (k CellKind) Eval(in []bool) bool {
	switch k {
	case CellInv:
		return !in[0]
	case CellBuf:
		return in[0]
	case CellNand2:
		return !(in[0] && in[1])
	case CellNor2:
		return !(in[0] || in[1])
	case CellAnd2:
		return in[0] && in[1]
	case CellOr2:
		return in[0] || in[1]
	case CellXor2:
		return in[0] != in[1]
	case CellXnor2:
		return in[0] == in[1]
	case CellMux2:
		if in[0] {
			return in[2]
		}
		return in[1]
	default:
		panic("netlist: Eval on sequential cell " + k.String())
	}
}

// Library maps each cell to a gate-equivalent weight (2-input NAND = 1.0)
// and a physical area in µm².
type Library struct {
	Name string
	GE   [numCellKinds]float64
	Area [numCellKinds]float64 // µm²
}

// CMOS5SLike is a synthetic 0.35µm standard-cell library calibrated to
// published footprints of that generation (NAND2 ≈ 50µm², standard cell
// height ≈ 13µm). It substitutes for the IBM CMOS5S library the paper
// sized its controllers with; Tables 1-3 compare relative areas, which
// any internally consistent library preserves.
// CMOS6SLike is a second synthetic library modelled on the next
// process generation (0.25µm-class): smaller absolute areas and
// slightly different cell-area ratios. The evaluation's qualitative
// observations must hold under any internally consistent library; the
// test suite re-checks them against this one.
var CMOS6SLike = Library{
	Name: "cmos6s-like-0.25um",
	GE: [numCellKinds]float64{
		CellInv:   0.5,
		CellBuf:   1.0,
		CellNand2: 1.0,
		CellNor2:  1.0,
		CellAnd2:  1.25,
		CellOr2:   1.25,
		CellXor2:  2.25,
		CellXnor2: 2.25,
		CellMux2:  1.75,
		CellDFF:   4.5,
		CellSDFF:  6.0,
		CellSODFF: 1.5,
	},
	Area: [numCellKinds]float64{
		CellInv:   11,
		CellBuf:   18,
		CellNand2: 20,
		CellNor2:  20,
		CellAnd2:  25,
		CellOr2:   25,
		CellXor2:  45,
		CellXnor2: 45,
		CellMux2:  35,
		CellDFF:   90,
		CellSDFF:  116,
		CellSODFF: 29, // 116 / 4.0
	},
}

var CMOS5SLike = Library{
	Name: "cmos5s-like-0.35um",
	GE: [numCellKinds]float64{
		CellInv:   0.5,
		CellBuf:   1.0,
		CellNand2: 1.0,
		CellNor2:  1.0,
		CellAnd2:  1.5,
		CellOr2:   1.5,
		CellXor2:  2.5,
		CellXnor2: 2.5,
		CellMux2:  2.0,
		CellDFF:   5.0,
		CellSDFF:  6.5,
		CellSODFF: 1.5, // scan-only cell, ~1/4.5 of a full-scan register
	},
	Area: [numCellKinds]float64{
		CellInv:   27,
		CellBuf:   43,
		CellNand2: 50,
		CellNor2:  50,
		CellAnd2:  66,
		CellOr2:   66,
		CellXor2:  116,
		CellXnor2: 116,
		CellMux2:  93,
		CellDFF:   233,
		CellSDFF:  293,
		CellSODFF: 65, // 293 / 4.5
	},
}
