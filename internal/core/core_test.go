package core

import (
	"strings"
	"testing"

	"repro/internal/netlist"
)

func TestTable1Structure(t *testing.T) {
	tb, err := Table1(&netlist.CMOS5SLike)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 || len(tb.Rows[0]) != 8 {
		t.Fatalf("Table 1 has %d geometries x %d rows, want 1x8", len(tb.Rows), len(tb.Rows[0]))
	}
	rows := tb.Rows[0]
	if rows[0].Flexibility != High || rows[1].Flexibility != Medium {
		t.Errorf("programmable flexibility ratings wrong: %v %v", rows[0].Flexibility, rows[1].Flexibility)
	}
	for _, r := range rows[2:] {
		if r.Flexibility != Low {
			t.Errorf("%s flexibility = %v, want LOW", r.Method, r.Flexibility)
		}
	}
	for _, r := range rows {
		if r.ControllerGE <= 0 || r.ControllerUm2 <= 0 {
			t.Errorf("%s has degenerate size: %+v", r.Method, r)
		}
		if r.UnitGE < r.ControllerGE {
			t.Errorf("%s unit smaller than controller", r.Method)
		}
	}
	out := tb.String()
	for _, frag := range []string{"Microcode-Based", "Prog. FSM-Based", "March A++", "HIGH", "LOW"} {
		if !strings.Contains(out, frag) {
			t.Errorf("rendered table missing %q", frag)
		}
	}
}

func TestTable2GeometriesGrow(t *testing.T) {
	t1, err := Table1(&netlist.CMOS5SLike)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Table2(&netlist.CMOS5SLike)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 2 {
		t.Fatalf("Table 2 has %d geometries, want 2", len(t2.Rows))
	}
	// Unit sizes must grow bit -> word -> multiport for every method.
	for m := range t2.Rows[0] {
		bit := t1.Rows[0][m].UnitUm2
		word := t2.Rows[0][m].UnitUm2
		multi := t2.Rows[1][m].UnitUm2
		if !(bit < word && word < multi) {
			t.Errorf("%s unit areas not monotone: %.0f %.0f %.0f",
				t2.Rows[0][m].Method, bit, word, multi)
		}
	}
}

func TestTable3ScanOnly(t *testing.T) {
	t3, err := Table3(&netlist.CMOS5SLike)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 3 {
		t.Fatalf("Table 3 has %d rows, want 3", len(t3.Rows))
	}
	t1, err := Table1(&netlist.CMOS5SLike)
	if err != nil {
		t.Fatal(err)
	}
	adj := t3.Rows[0][0].ControllerUm2
	orig := t1.Rows[0][0].ControllerUm2
	if adj >= orig {
		t.Errorf("adjusted controller %.0f not smaller than original %.0f", adj, orig)
	}
	for _, rows := range t3.Rows {
		if !rows[0].ScanOnly {
			t.Error("Table 3 row not marked scan-only")
		}
	}
}

func TestObservationsHold(t *testing.T) {
	obs, err := Measure(&netlist.CMOS5SLike)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Check(); err != nil {
		t.Errorf("%v\n%s", err, obs)
	}
	out := obs.String()
	for _, frag := range []string{"O1", "O2", "O3", "O4"} {
		if !strings.Contains(out, frag) {
			t.Errorf("observations rendering missing %q", frag)
		}
	}
}

// TestObservationsLibraryIndependent re-checks the paper's four
// observations under the second (0.25µm-class) technology library: the
// qualitative claims must not depend on the cell-area calibration —
// the premise of substituting a synthetic library for IBM CMOS5S.
func TestObservationsLibraryIndependent(t *testing.T) {
	obs, err := Measure(&netlist.CMOS6SLike)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Check(); err != nil {
		t.Errorf("observations fail under %s: %v\n%s", netlist.CMOS6SLike.Name, err, obs)
	}
}

func TestScanOnlyRejectedForFSM(t *testing.T) {
	ms := Methods()
	if _, err := SizeMethod(ms[1], BitOriented, true, &netlist.CMOS5SLike); err == nil {
		t.Error("programmable FSM accepted scan-only storage; its buffer shifts at functional clock")
	}
}

func TestMethodsOrderStable(t *testing.T) {
	names := []string{
		"Microcode-Based", "Prog. FSM-Based",
		"March C", "March C+", "March C++",
		"March A", "March A+", "March A++",
	}
	ms := Methods()
	if len(ms) != len(names) {
		t.Fatalf("%d methods, want %d", len(ms), len(names))
	}
	for i, m := range ms {
		if m.Name != names[i] {
			t.Errorf("method %d = %s, want %s", i, m.Name, names[i])
		}
	}
}
