package core

import (
	"fmt"
	"strings"

	"repro/internal/march"
	"repro/internal/netlist"
)

// Stage is one phase of a memory's test life cycle, with the test
// algorithm that phase requires. The paper's introduction argues that
// memories "undergo different types of testing during the course of
// their design and fabrication", and that a programmable BIST unit —
// able to run every stage's algorithm on the same hardware — yields
// "lower overall memory test logic overhead" than dedicating a
// hardwired controller to each requirement.
type Stage struct {
	Name      string
	Algorithm march.Algorithm
}

// LifecycleStages returns the six test phases the paper's §3 baseline
// set maps onto: from fast wafer-level screening to the full
// static-fault qualification suite.
func LifecycleStages() []Stage {
	return []Stage{
		{Name: "wafer probe", Algorithm: march.MarchC()},
		{Name: "final test", Algorithm: march.MarchCPlus()},
		{Name: "qualification", Algorithm: march.MarchCPlusPlus()},
		{Name: "process monitor", Algorithm: march.MarchA()},
		{Name: "burn-in", Algorithm: march.MarchAPlus()},
		{Name: "field diagnosis", Algorithm: march.MarchAPlusPlus()},
	}
}

// LifecycleCost compares the total controller logic needed to cover all
// stages: one programmable controller (sized for the largest program,
// reloaded per stage) versus one hardwired controller per stage
// algorithm.
type LifecycleCost struct {
	Stages []Stage
	// ProgrammableUm2 is the adjusted (scan-only storage)
	// microcode-based controller area — a single instance serves every
	// stage.
	ProgrammableUm2 float64
	// HardwiredUm2 maps each stage to its dedicated controller area.
	HardwiredUm2 map[string]float64
	// HardwiredTotalUm2 is the summed hardwired area.
	HardwiredTotalUm2 float64
}

// MeasureLifecycle sizes the lifecycle comparison at the bit-oriented
// geometry under lib.
func MeasureLifecycle(lib *netlist.Library) (*LifecycleCost, error) {
	stages := LifecycleStages()
	lc := &LifecycleCost{Stages: stages, HardwiredUm2: make(map[string]float64)}

	micro, err := SizeMethod(Methods()[0], BitOriented, true, lib)
	if err != nil {
		return nil, err
	}
	lc.ProgrammableUm2 = micro.ControllerUm2

	for _, m := range Methods()[2:] {
		for _, st := range stages {
			if m.Name != st.Algorithm.Name {
				continue
			}
			r, err := SizeMethod(m, BitOriented, false, lib)
			if err != nil {
				return nil, err
			}
			lc.HardwiredUm2[st.Name] = r.ControllerUm2
			lc.HardwiredTotalUm2 += r.ControllerUm2
		}
	}
	if len(lc.HardwiredUm2) != len(stages) {
		return nil, fmt.Errorf("core: lifecycle stages do not all map onto §3 baselines")
	}
	return lc, nil
}

// Saving returns the fractional logic saved by the programmable
// approach over the per-stage hardwired controllers.
func (lc *LifecycleCost) Saving() float64 {
	if lc.HardwiredTotalUm2 == 0 {
		return 0
	}
	return 1 - lc.ProgrammableUm2/lc.HardwiredTotalUm2
}

// String renders the comparison.
func (lc *LifecycleCost) String() string {
	var b strings.Builder
	b.WriteString("Lifecycle test-logic overhead (bit-oriented, 1K):\n")
	for _, st := range lc.Stages {
		fmt.Fprintf(&b, "  %-16s %-10s hardwired %8.0f um2\n",
			st.Name, st.Algorithm.Name, lc.HardwiredUm2[st.Name])
	}
	fmt.Fprintf(&b, "  hardwired total                    %8.0f um2\n", lc.HardwiredTotalUm2)
	fmt.Fprintf(&b, "  one programmable (adj. microcode)  %8.0f um2\n", lc.ProgrammableUm2)
	fmt.Fprintf(&b, "  overall saving: %.0f%%\n", lc.Saving()*100)
	return b.String()
}
