package core

import (
	"testing"

	"repro/internal/march"
)

func TestMicrocodeLoadCostSingleLoadWhenFits(t *testing.T) {
	micro, _ := StorageSlots()
	for _, alg := range BaselineAlgorithms() {
		lc, err := MicrocodeLoadCost(alg, micro)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name, err)
		}
		if lc.Loads != 1 {
			t.Errorf("%s needs %d loads with suite-sized storage", alg.Name, lc.Loads)
		}
		if lc.TotalScanCycles != micro*10 {
			t.Errorf("%s scan cycles = %d, want %d", alg.Name, lc.TotalScanCycles, micro*10)
		}
	}
}

func TestSmallBufferNeedsMultipleLoads(t *testing.T) {
	// The paper's criticism of [3]: a buffer smaller than the program
	// forces multiple loads.
	lc, err := MicrocodeLoadCost(march.MarchAPlusPlus(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if lc.Loads < 3 {
		t.Errorf("March A++ in an 8-slot buffer takes %d loads, want >= 3 (program %d words)",
			lc.Loads, lc.ProgramWords)
	}
	if lc.TotalScanCycles != lc.Loads*8*10 {
		t.Errorf("scan cycle arithmetic wrong: %+v", lc)
	}
}

func TestProgFSMLoadCost(t *testing.T) {
	lc, err := ProgFSMLoadCost(march.MarchC(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if lc.ProgramWords != 8 || lc.Loads != 1 || lc.ScanCyclesPerLoad != 64 {
		t.Errorf("March C FSM load cost = %+v", lc)
	}
}

func TestLoadCostRejectsBadSlots(t *testing.T) {
	if _, err := MicrocodeLoadCost(march.MarchC(), 0); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := ProgFSMLoadCost(march.MarchC(), -1); err == nil {
		t.Error("negative slots accepted")
	}
}
