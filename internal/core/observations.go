package core

import (
	"fmt"

	"repro/internal/netlist"
)

// Observations quantifies the paper's four concluding observations from
// the regenerated tables.
type Observations struct {
	// ScanOnlyReduction is observation 1: the fractional controller
	// area saved by the scan-only storage re-design (paper: ≈60%).
	ScanOnlyReduction float64
	// MicroGE and ProgFSMGE support observation 2: the microcode-based
	// controller is more flexible AND smaller than the programmable
	// FSM-based controller. MicroGE is the adjusted (scan-only storage)
	// figure: unlike the FSM architecture's circular buffer, which
	// shifts at functional clock, the microcode storage has no
	// functional-clock data path, so the cheap cells are available to
	// it by construction — the architectural asymmetry the paper's
	// comparison rests on.
	MicroGE   float64
	ProgFSMGE float64
	// BaselineGrowth is observation 3: hardwired controller GE by
	// algorithm, in enhancement order (C, C+, C++, A, A+, A++) — each
	// family must grow.
	BaselineGrowth map[string]float64
	// GapPlain and GapEnhanced support observation 4: the area gap
	// between the (adjusted) microcode controller and the hardwired
	// controllers narrows as the baselines are enhanced. Gaps are
	// micro/baseline area ratios for the plainest (March C) and most
	// enhanced (March A++) baselines.
	GapPlain    float64
	GapEnhanced float64
}

// Measure computes the observations at the bit-oriented geometry.
func Measure(lib *netlist.Library) (*Observations, error) {
	obs := &Observations{BaselineGrowth: map[string]float64{}}
	ms := Methods()

	microFull, err := SizeMethod(ms[0], BitOriented, false, lib)
	if err != nil {
		return nil, err
	}
	microScan, err := SizeMethod(ms[0], BitOriented, true, lib)
	if err != nil {
		return nil, err
	}
	obs.ScanOnlyReduction = 1 - microScan.ControllerUm2/microFull.ControllerUm2
	obs.MicroGE = microScan.ControllerGE

	prog, err := SizeMethod(ms[1], BitOriented, false, lib)
	if err != nil {
		return nil, err
	}
	obs.ProgFSMGE = prog.ControllerGE

	var plain, enhanced float64
	for _, m := range ms[2:] {
		r, err := SizeMethod(m, BitOriented, false, lib)
		if err != nil {
			return nil, err
		}
		obs.BaselineGrowth[m.Name] = r.ControllerGE
		switch m.Name {
		case "March C":
			plain = r.ControllerUm2
		case "March A++":
			enhanced = r.ControllerUm2
		}
	}
	if plain == 0 || enhanced == 0 {
		return nil, fmt.Errorf("core: baseline sizing incomplete")
	}
	obs.GapPlain = microScan.ControllerUm2 / plain
	obs.GapEnhanced = microScan.ControllerUm2 / enhanced
	return obs, nil
}

// Check verifies all four observations hold, returning a descriptive
// error for the first violation.
func (o *Observations) Check() error {
	if o.ScanOnlyReduction < 0.40 || o.ScanOnlyReduction > 0.75 {
		return fmt.Errorf("observation 1: scan-only reduction %.0f%% outside the paper's ≈60%% band", o.ScanOnlyReduction*100)
	}
	if o.MicroGE >= o.ProgFSMGE {
		return fmt.Errorf("observation 2: microcode controller (%.1f GE) not smaller than programmable FSM (%.1f GE)", o.MicroGE, o.ProgFSMGE)
	}
	for _, fam := range [][]string{
		{"March C", "March C+", "March C++"},
		{"March A", "March A+", "March A++"},
	} {
		for i := 1; i < len(fam); i++ {
			if o.BaselineGrowth[fam[i]] <= o.BaselineGrowth[fam[i-1]] {
				return fmt.Errorf("observation 3: %s (%.1f GE) not larger than %s (%.1f GE)",
					fam[i], o.BaselineGrowth[fam[i]], fam[i-1], o.BaselineGrowth[fam[i-1]])
			}
		}
	}
	if o.GapEnhanced >= o.GapPlain {
		return fmt.Errorf("observation 4: gap did not narrow (micro/baseline ratio %.2f vs %.2f)",
			o.GapPlain, o.GapEnhanced)
	}
	return nil
}

// String renders the observations.
func (o *Observations) String() string {
	s := fmt.Sprintf("O1 scan-only storage re-design: %.0f%% controller area reduction\n", o.ScanOnlyReduction*100)
	s += fmt.Sprintf("O2 microcode %.1f GE vs programmable FSM %.1f GE\n", o.MicroGE, o.ProgFSMGE)
	s += "O3 hardwired controller growth (GE):"
	for _, name := range []string{"March C", "March C+", "March C++", "March A", "March A+", "March A++"} {
		s += fmt.Sprintf(" %s=%.0f", name, o.BaselineGrowth[name])
	}
	s += "\n"
	s += fmt.Sprintf("O4 adjusted-microcode/baseline area ratio: %.2f (March C) -> %.2f (March A++)\n",
		o.GapPlain, o.GapEnhanced)
	return s
}
