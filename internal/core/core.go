// Package core assembles the paper's evaluation: it builds every memory
// BIST method of §3 (the microcode-based and programmable FSM-based
// controllers plus the six hardwired March C/A baselines), sizes them
// under the CMOS5S-like library, regenerates the structure of Tables
// 1-3, and checks the paper's four concluding observations.
package core

import (
	"fmt"
	"strings"

	"repro/internal/fsmbist"
	"repro/internal/hardbist"
	"repro/internal/march"
	"repro/internal/microbist"
	"repro/internal/netlist"
)

// Flexibility is the paper's qualitative flexibility rating.
type Flexibility string

// Flexibility ratings of Table 1.
const (
	High   Flexibility = "HIGH"
	Medium Flexibility = "MEDIUM"
	Low    Flexibility = "LOW"
)

// Geometry describes the memory under test.
type Geometry struct {
	AddrBits int
	Width    int
	Ports    int
}

// The paper's three evaluation geometries (1K addresses).
var (
	BitOriented  = Geometry{AddrBits: 10, Width: 1, Ports: 1}
	WordOriented = Geometry{AddrBits: 10, Width: 8, Ports: 1}
	Multiport    = Geometry{AddrBits: 10, Width: 8, Ports: 2}
)

func (g Geometry) String() string {
	return fmt.Sprintf("%d-bit x %d words x %d ports", g.Width, 1<<uint(g.AddrBits), g.Ports)
}

// delayTimerBits is the retention-delay timer width given to every
// method that must support pause phases.
const delayTimerBits = 8

// microSlots and fsmSlots size the programmable controllers' storage to
// hold the largest algorithm of the baseline suite (March A++ with the
// word-oriented and multiport loops) — the capacity a programmable unit
// needs to actually replace all six hardwired controllers.
var microSlots, fsmSlots = func() (int, int) {
	micro, fsmN := 0, 0
	for _, alg := range BaselineAlgorithms() {
		p, err := microbist.Assemble(alg, microbist.AssembleOpts{WordOriented: true, Multiport: true})
		if err != nil {
			panic(err)
		}
		if p.Len() > micro {
			micro = p.Len()
		}
		q, err := fsmbist.Compile(alg, fsmbist.CompileOpts{WordOriented: true, Multiport: true})
		if err != nil {
			panic(err)
		}
		if q.Len() > fsmN {
			fsmN = q.Len()
		}
	}
	return micro, fsmN
}()

// StorageSlots reports the storage capacities used for the tables
// (microcode words, SM instructions).
func StorageSlots() (micro, fsmSlotCount int) { return microSlots, fsmSlots }

// Method is one BIST methodology under evaluation.
type Method struct {
	Name        string
	Flexibility Flexibility
	// build returns the method's netlist for a geometry; scanOnly
	// selects the Table 3 storage re-design (microcode only).
	build func(g Geometry, includeDatapath, scanOnly bool) (*netlist.Netlist, error)
	// scanOnlyCapable marks methods whose storage can use scan-only
	// cells (no functional-clock data path).
	scanOnlyCapable bool
}

// Methods returns the eight methods of Tables 1-2 in paper order.
func Methods() []Method {
	ms := []Method{
		{
			Name:            "Microcode-Based",
			Flexibility:     High,
			scanOnlyCapable: true,
			build: func(g Geometry, dp, scan bool) (*netlist.Netlist, error) {
				p, err := microbist.Assemble(march.MarchC(), microbist.AssembleOpts{
					WordOriented: g.Width > 1, Multiport: g.Ports > 1,
				})
				if err != nil {
					return nil, err
				}
				hw, err := microbist.BuildHardware(p, microbist.HWConfig{
					Slots: microSlots, AddrBits: g.AddrBits, Width: g.Width, Ports: g.Ports,
					ScanOnlyStorage: scan, IncludeDatapath: dp, DelayTimerBits: delayTimerBits,
				})
				if err != nil {
					return nil, err
				}
				return hw.Netlist, nil
			},
		},
		{
			Name:        "Prog. FSM-Based",
			Flexibility: Medium,
			build: func(g Geometry, dp, _ bool) (*netlist.Netlist, error) {
				p, err := fsmbist.Compile(march.MarchC(), fsmbist.CompileOpts{
					WordOriented: g.Width > 1, Multiport: g.Ports > 1,
				})
				if err != nil {
					return nil, err
				}
				hw, err := fsmbist.BuildHardware(p, fsmbist.HWConfig{
					Slots: fsmSlots, AddrBits: g.AddrBits, Width: g.Width, Ports: g.Ports,
					IncludeDatapath: dp, DelayTimerBits: delayTimerBits,
				})
				if err != nil {
					return nil, err
				}
				return hw.Netlist, nil
			},
		},
	}
	for _, alg := range BaselineAlgorithms() {
		alg := alg
		ms = append(ms, Method{
			Name:        alg.Name,
			Flexibility: Low,
			build: func(g Geometry, dp, _ bool) (*netlist.Netlist, error) {
				timer := 0
				if alg.Pauses() > 0 {
					timer = delayTimerBits
				}
				c, err := hardbist.Generate(alg, hardbist.Config{
					WordOriented: g.Width > 1, Multiport: g.Ports > 1,
					AddrBits: g.AddrBits, Width: g.Width, Ports: g.Ports,
					IncludeDatapath: dp, DelayTimerBits: timer,
				})
				if err != nil {
					return nil, err
				}
				return c.Synthesise()
			},
		})
	}
	return ms
}

// BaselineAlgorithms returns the six hardwired baselines of §3 in paper
// order: March C, C+, C++, A, A+, A++.
func BaselineAlgorithms() []march.Algorithm {
	return []march.Algorithm{
		march.MarchC(), march.MarchCPlus(), march.MarchCPlusPlus(),
		march.MarchA(), march.MarchAPlus(), march.MarchAPlusPlus(),
	}
}

// Row is one method's sizing at one geometry.
type Row struct {
	Method      string
	Flexibility Flexibility
	// Controller-only figures (the paper's "Int. Area" in 2-input NAND
	// gate equivalents and "Size" in µm²).
	ControllerGE   float64
	ControllerUm2  float64
	ControllerFFs  int
	UnitGE         float64 // controller + datapath
	UnitUm2        float64
	ScanOnly       bool
	FlipFlopsTotal int
}

// SizeMethod sizes one method at a geometry under the library.
func SizeMethod(m Method, g Geometry, scanOnly bool, lib *netlist.Library) (Row, error) {
	if scanOnly && !m.scanOnlyCapable {
		return Row{}, fmt.Errorf("core: %s cannot use scan-only storage", m.Name)
	}
	ctrl, err := m.build(g, false, scanOnly)
	if err != nil {
		return Row{}, err
	}
	cs := ctrl.StatsFor(lib)
	unit, err := m.build(g, true, scanOnly)
	if err != nil {
		return Row{}, err
	}
	us := unit.StatsFor(lib)
	return Row{
		Method:         m.Name,
		Flexibility:    m.Flexibility,
		ControllerGE:   cs.GE,
		ControllerUm2:  cs.AreaUm2,
		ControllerFFs:  cs.FlipFlops,
		UnitGE:         us.GE,
		UnitUm2:        us.AreaUm2,
		ScanOnly:       scanOnly,
		FlipFlopsTotal: us.FlipFlops,
	}, nil
}

// Table is a rendered area comparison.
type Table struct {
	Title    string
	Geometry []Geometry
	// Rows[g][m] is method m at geometry Geometry[g].
	Rows [][]Row
}

// Table1 regenerates the structure of the paper's Table 1: every method
// sized for a bit-oriented single-port memory.
func Table1(lib *netlist.Library) (*Table, error) {
	return buildTable("Table 1: memory BIST size, bit-oriented single-port",
		[]Geometry{BitOriented}, lib)
}

// Table2 regenerates the paper's Table 2: word-oriented and multiport
// memories.
func Table2(lib *netlist.Library) (*Table, error) {
	return buildTable("Table 2: memory BIST size, word-oriented and multiport",
		[]Geometry{WordOriented, Multiport}, lib)
}

func buildTable(title string, gs []Geometry, lib *netlist.Library) (*Table, error) {
	t := &Table{Title: title, Geometry: gs}
	for _, g := range gs {
		var rows []Row
		for _, m := range Methods() {
			r, err := SizeMethod(m, g, false, lib)
			if err != nil {
				return nil, fmt.Errorf("%s at %v: %w", m.Name, g, err)
			}
			rows = append(rows, r)
		}
		t.Rows = append(t.Rows, rows)
	}
	return t, nil
}

// Table3 regenerates the paper's Table 3: the microcode-based
// controller re-designed with scan-only storage cells, at all three
// geometries.
func Table3(lib *netlist.Library) (*Table, error) {
	t := &Table{
		Title:    "Table 3: adjusted size of microcode-based controller (scan-only storage)",
		Geometry: []Geometry{BitOriented, WordOriented, Multiport},
	}
	micro := Methods()[0]
	for _, g := range t.Geometry {
		r, err := SizeMethod(micro, g, true, lib)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []Row{r})
	}
	return t, nil
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	for gi, g := range t.Geometry {
		fmt.Fprintf(&b, "-- %v --\n", g)
		fmt.Fprintf(&b, "%-18s %-7s %12s %12s %12s %12s\n",
			"Method", "Flex.", "Ctrl GE", "Ctrl um2", "Unit GE", "Unit um2")
		for _, r := range t.Rows[gi] {
			fmt.Fprintf(&b, "%-18s %-7s %12.1f %12.0f %12.1f %12.0f\n",
				r.Method, r.Flexibility, r.ControllerGE, r.ControllerUm2, r.UnitGE, r.UnitUm2)
		}
	}
	return b.String()
}
