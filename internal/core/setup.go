package core

import (
	"fmt"

	"repro/internal/fsmbist"
	"repro/internal/march"
	"repro/internal/microbist"
)

// LoadCost models the one-time programming cost of a programmable BIST
// controller: the number of scan loads the algorithm needs and the
// scan-shift cycles per load. The paper criticises the architecture of
// Shephard III et al. [3] precisely for needing *multiple* loads when
// the algorithm does not fit its buffer ("time consuming and might not
// always be feasible"); this model quantifies that trade-off against
// storage size.
type LoadCost struct {
	// ProgramWords is the assembled program length.
	ProgramWords int
	// Loads is how many times the storage must be (re)loaded to run the
	// whole algorithm with a storage of the given capacity.
	Loads int
	// ScanCyclesPerLoad is the scan-chain length (slots × word bits).
	ScanCyclesPerLoad int
	// TotalScanCycles = Loads × ScanCyclesPerLoad.
	TotalScanCycles int
}

func newLoadCost(programWords, slots, wordBits int) LoadCost {
	loads := (programWords + slots - 1) / slots
	if loads < 1 {
		loads = 1
	}
	per := slots * wordBits
	return LoadCost{
		ProgramWords:      programWords,
		Loads:             loads,
		ScanCyclesPerLoad: per,
		TotalScanCycles:   loads * per,
	}
}

// MicrocodeLoadCost computes the scan-load cost of running the
// algorithm on a microcode controller with the given storage capacity.
func MicrocodeLoadCost(alg march.Algorithm, slots int) (LoadCost, error) {
	if slots <= 0 {
		return LoadCost{}, fmt.Errorf("core: slots must be positive")
	}
	p, err := microbist.Assemble(alg, microbist.AssembleOpts{WordOriented: true, Multiport: true})
	if err != nil {
		return LoadCost{}, err
	}
	return newLoadCost(p.Len(), slots, microbist.WordBits), nil
}

// ProgFSMLoadCost computes the load cost for the programmable
// FSM-based controller's circular buffer.
func ProgFSMLoadCost(alg march.Algorithm, slots int) (LoadCost, error) {
	if slots <= 0 {
		return LoadCost{}, fmt.Errorf("core: slots must be positive")
	}
	p, err := fsmbist.Compile(alg, fsmbist.CompileOpts{WordOriented: true, Multiport: true})
	if err != nil {
		return LoadCost{}, err
	}
	return newLoadCost(p.Len(), slots, fsmbist.WordBits), nil
}
