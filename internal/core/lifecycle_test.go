package core

import (
	"strings"
	"testing"

	"repro/internal/netlist"
)

func TestLifecycleProgrammableWins(t *testing.T) {
	lc, err := MeasureLifecycle(&netlist.CMOS5SLike)
	if err != nil {
		t.Fatal(err)
	}
	if len(lc.HardwiredUm2) != 6 {
		t.Fatalf("lifecycle covers %d stages, want 6", len(lc.HardwiredUm2))
	}
	if lc.ProgrammableUm2 >= lc.HardwiredTotalUm2 {
		t.Errorf("programmable %.0f um2 not below hardwired total %.0f um2 — the paper's overall-overhead claim fails",
			lc.ProgrammableUm2, lc.HardwiredTotalUm2)
	}
	if s := lc.Saving(); s <= 0 || s >= 1 {
		t.Errorf("saving = %.2f out of (0,1)", s)
	}
	out := lc.String()
	for _, frag := range []string{"wafer probe", "field diagnosis", "saving"} {
		if !strings.Contains(out, frag) {
			t.Errorf("rendering missing %q:\n%s", frag, out)
		}
	}
}

func TestLifecycleStagesAreValidAlgorithms(t *testing.T) {
	for _, st := range LifecycleStages() {
		if err := st.Algorithm.Validate(); err != nil {
			t.Errorf("%s: %v", st.Name, err)
		}
	}
}
