package microbist

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/march"
	"repro/internal/memory"
)

// execVsOracle runs the same algorithm through the microcode executor
// and the march reference runner on two identically faulty memories and
// requires byte-identical fail logs.
func execVsOracle(t *testing.T, alg march.Algorithm, size, width, ports int, fs ...faults.Fault) {
	t.Helper()
	opts := AssembleOpts{WordOriented: width > 1, Multiport: ports > 1}
	p, err := Assemble(alg, opts)
	if err != nil {
		t.Fatalf("%s: %v", alg.Name, err)
	}

	memA := faults.NewInjected(size, width, ports, fs...)
	got, err := p.Run(memA, ExecOpts{})
	if err != nil {
		t.Fatalf("%s: %v", alg.Name, err)
	}
	if !got.Terminated {
		t.Fatalf("%s: executor hit the cycle budget", alg.Name)
	}

	memB := faults.NewInjected(size, width, ports, fs...)
	want, err := march.Run(alg, memB, march.RunOpts{
		SinglePort:       ports == 1,
		SingleBackground: width == 1,
	})
	if err != nil {
		t.Fatalf("%s oracle: %v", alg.Name, err)
	}

	if len(got.Fails) != len(want.Fails) {
		t.Fatalf("%s with %v: executor logged %d fails, oracle %d\nexec: %v\noracle: %v",
			alg.Name, fs, len(got.Fails), len(want.Fails), got.Fails, want.Fails)
	}
	for i := range got.Fails {
		if got.Fails[i] != want.Fails[i] {
			t.Fatalf("%s with %v: fail %d differs\nexec:   %v\noracle: %v",
				alg.Name, fs, i, got.Fails[i], want.Fails[i])
		}
	}
	if got.Operations != want.Operations {
		t.Errorf("%s: executor issued %d memory ops, oracle %d", alg.Name, got.Operations, want.Operations)
	}
	if got.PauseCount != want.PauseCount {
		t.Errorf("%s: executor paused %d times, oracle %d", alg.Name, got.PauseCount, want.PauseCount)
	}
}

func TestExecutorMatchesOracleCleanMemory(t *testing.T) {
	for name, f := range march.Library() {
		t.Run(name, func(t *testing.T) {
			execVsOracle(t, f(), 16, 1, 1)
		})
	}
}

func TestExecutorMatchesOracleUnderFaults(t *testing.T) {
	universe := faults.Universe(8, 1, faults.UniverseOpts{})
	algs := []march.Algorithm{
		march.MATSPlus(), march.MarchC(), march.MarchA(),
		march.MarchCPlus(), march.MarchCPlusPlus(), march.MarchB(),
	}
	for _, alg := range algs {
		for _, f := range universe {
			execVsOracle(t, alg, 8, 1, 1, f)
		}
	}
}

func TestExecutorMatchesOracleWordOriented(t *testing.T) {
	universe := faults.Universe(8, 4, faults.UniverseOpts{CellSample: 6, CouplingPairs: 8, AddrSample: 2, Seed: 3})
	for _, f := range universe {
		execVsOracle(t, march.MarchC(), 8, 4, 1, f)
	}
}

func TestExecutorMatchesOracleMultiport(t *testing.T) {
	universe := faults.Universe(8, 2, faults.UniverseOpts{CellSample: 4, CouplingPairs: 4, AddrSample: 2, Ports: 2, Seed: 5})
	for _, f := range universe {
		execVsOracle(t, march.MarchC(), 8, 2, 2, f)
	}
}

func TestExecutorMatchesOracleMultipleFaults(t *testing.T) {
	// Two simultaneous faults; the single-fault assumption of the
	// models still yields deterministic behaviour both sides share.
	fs := []faults.Fault{
		{Kind: faults.SA, Cell: 2, Value: true, Port: faults.AnyPort},
		{Kind: faults.TF, Cell: 9, Value: true, Port: faults.AnyPort},
	}
	execVsOracle(t, march.MarchC(), 16, 1, 1, fs...)
}

func TestExecutorFoldIrrelevantToBehaviour(t *testing.T) {
	// Folded and unfolded programs must produce identical fail logs.
	f := faults.Fault{Kind: faults.CFid, Aggressor: 3, Cell: 11, AggVal: true, Value: true, Port: faults.AnyPort}
	for _, alg := range []march.Algorithm{march.MarchC(), march.MarchA()} {
		pFold, _ := Assemble(alg, AssembleOpts{})
		pFlat, _ := Assemble(alg, AssembleOpts{DisableFold: true})
		if !pFold.Folded || pFlat.Folded {
			t.Fatalf("%s: fold flags wrong", alg.Name)
		}
		mA := faults.NewInjected(16, 1, 1, f)
		rA, err := pFold.Run(mA, ExecOpts{})
		if err != nil {
			t.Fatal(err)
		}
		mB := faults.NewInjected(16, 1, 1, f)
		rB, err := pFlat.Run(mB, ExecOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if len(rA.Fails) != len(rB.Fails) {
			t.Fatalf("%s: folded %d fails, flat %d", alg.Name, len(rA.Fails), len(rB.Fails))
		}
		for i := range rA.Fails {
			if rA.Fails[i] != rB.Fails[i] {
				t.Errorf("%s fail %d: folded %v, flat %v", alg.Name, i, rA.Fails[i], rB.Fails[i])
			}
		}
		if rA.Operations != rB.Operations {
			t.Errorf("%s: folded %d ops, flat %d", alg.Name, rA.Operations, rB.Operations)
		}
	}
}

func TestExecutorDetectsDRFViaPauseInstruction(t *testing.T) {
	p, err := Assemble(march.MarchCPlus(), AssembleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	mem := faults.NewInjected(16, 1, 1, faults.Fault{
		Kind: faults.DRF, Cell: 7, Value: true, Port: faults.AnyPort,
	})
	res, err := p.Run(mem, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected() {
		t.Error("microcode March C+ missed a DRF")
	}
	if res.PauseCount != 2 {
		t.Errorf("pauses = %d, want 2", res.PauseCount)
	}
}

func TestExecutorMaxFailsStopsEarly(t *testing.T) {
	var fs []faults.Fault
	for c := 0; c < 16; c++ {
		fs = append(fs, faults.Fault{Kind: faults.SA, Cell: c, Value: true, Port: faults.AnyPort})
	}
	p, _ := Assemble(march.MarchC(), AssembleOpts{})
	mem := faults.NewInjected(16, 1, 1, fs...)
	res, err := p.Run(mem, ExecOpts{MaxFails: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fails) != 3 {
		t.Errorf("fails = %d, want 3", len(res.Fails))
	}
}

func TestExecutorCycleBudgetTripsOnRunaway(t *testing.T) {
	// A hand-built program that never terminates: loopdata forever is
	// impossible (it resets), so use hold with AddrInc false.
	p := &Program{
		Name: "runaway",
		Instructions: []Instruction{
			{Write: true, AddrInc: false, Cond: CondHold}, // never reaches last address
			{Cond: CondTerminate},
		},
		Source: []SourceRef{{0, 0}, {-1, -1}},
	}
	mem := memory.NewSRAM(8, 1, 1)
	res, err := p.Run(mem, ExecOpts{MaxCycles: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminated {
		t.Error("runaway program reported clean termination")
	}
	if res.Cycles != 100 {
		t.Errorf("cycles = %d, want budget 100", res.Cycles)
	}
}

func TestExecutorCycleCountBitOriented(t *testing.T) {
	// For a bit-oriented single-port memory, March C (10N ops) over N=32
	// takes 10*32 memory-op cycles plus a pass of flow overhead:
	// the Repeat instruction executes twice and terminate once.
	p, _ := Assemble(march.MarchC(), AssembleOpts{})
	mem := memory.NewSRAM(32, 1, 1)
	res, err := p.Run(mem, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	wantOps := 10 * 32
	if res.Operations != wantOps {
		t.Errorf("operations = %d, want %d", res.Operations, wantOps)
	}
	overhead := res.Cycles - wantOps
	if overhead < 1 || overhead > 8 {
		t.Errorf("flow overhead = %d cycles, want small (1..8)", overhead)
	}
}

func TestExecutorSignatureStable(t *testing.T) {
	p, _ := Assemble(march.MarchC(), AssembleOpts{})
	m1 := memory.NewSRAM(16, 1, 1)
	r1, _ := p.Run(m1, ExecOpts{})
	m2 := memory.NewSRAM(16, 1, 1)
	r2, _ := p.Run(m2, ExecOpts{})
	if r1.Signature != r2.Signature {
		t.Error("signatures differ across identical runs")
	}
	// Faulty memory changes the signature.
	m3 := faults.NewInjected(16, 1, 1, faults.Fault{Kind: faults.SA, Cell: 3, Value: true, Port: faults.AnyPort})
	r3, _ := p.Run(m3, ExecOpts{})
	if r3.Signature == r1.Signature {
		t.Error("fault did not change the MISR signature")
	}
}
