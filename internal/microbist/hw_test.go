package microbist

import (
	"testing"

	"repro/internal/gatesim"
	"repro/internal/march"
	"repro/internal/netlist"
)

func mustProgram(t *testing.T, alg march.Algorithm) *Program {
	t.Helper()
	p, err := Assemble(alg, AssembleOpts{WordOriented: true, Multiport: true})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildHardwareValidates(t *testing.T) {
	p := mustProgram(t, march.MarchC())
	for _, cfg := range []HWConfig{
		DefaultHWConfig(),
		{Slots: 16, AddrBits: 10, Width: 8, Ports: 1},
		{Slots: 16, AddrBits: 10, Width: 8, Ports: 2, IncludeDatapath: true},
		{Slots: 16, AddrBits: 10, Width: 1, Ports: 1, ScanOnlyStorage: true},
		{Slots: 16, AddrBits: 10, Width: 1, Ports: 1, DelayTimerBits: 8},
	} {
		hw, err := BuildHardware(p, cfg)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if err := hw.Netlist.Validate(); err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
	}
}

func TestScanOnlyStorageShrinksController(t *testing.T) {
	// The Table 3 observation: re-designing the storage unit with
	// scan-only cells cuts the controller area by roughly 60%.
	p := mustProgram(t, march.MarchC())
	full, err := BuildHardware(p, HWConfig{Slots: 16, AddrBits: 10, Width: 1, Ports: 1})
	if err != nil {
		t.Fatal(err)
	}
	scan, err := BuildHardware(p, HWConfig{Slots: 16, AddrBits: 10, Width: 1, Ports: 1, ScanOnlyStorage: true})
	if err != nil {
		t.Fatal(err)
	}
	lib := &netlist.CMOS5SLike
	fullArea := full.Netlist.StatsFor(lib).AreaUm2
	scanArea := scan.Netlist.StatsFor(lib).AreaUm2
	reduction := 1 - scanArea/fullArea
	if reduction < 0.40 || reduction > 0.75 {
		t.Errorf("scan-only re-design reduces area by %.0f%%, want roughly 60%%", reduction*100)
	}
}

func TestStorageDominatesArea(t *testing.T) {
	// The paper observes that storage-unit area reduction has the
	// largest effect — i.e. storage dominates the controller.
	p := mustProgram(t, march.MarchC())
	hw, err := BuildHardware(p, HWConfig{Slots: 16, AddrBits: 10, Width: 1, Ports: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := hw.Netlist.StatsFor(&netlist.CMOS5SLike)
	storageArea := float64(s.CellCount[netlist.CellSDFF]) * netlist.CMOS5SLike.Area[netlist.CellSDFF]
	if storageArea < s.AreaUm2/2 {
		t.Errorf("storage = %.0f of %.0f um2; expected storage-dominated", storageArea, s.AreaUm2)
	}
}

func TestSlotsGrowToFitProgram(t *testing.T) {
	p := mustProgram(t, march.MarchCPlusPlus()) // long program
	hw, err := BuildHardware(p, HWConfig{Slots: 4, AddrBits: 6, Width: 1, Ports: 1})
	if err != nil {
		t.Fatal(err)
	}
	if hw.Config.Slots < p.Len() {
		t.Errorf("slots = %d < program %d", hw.Config.Slots, p.Len())
	}
}

func TestMorePortsAndWidthGrowDatapath(t *testing.T) {
	p := mustProgram(t, march.MarchC())
	lib := &netlist.CMOS5SLike
	area := func(cfg HWConfig) float64 {
		hw, err := BuildHardware(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return hw.Netlist.StatsFor(lib).AreaUm2
	}
	bit := area(HWConfig{Slots: 16, AddrBits: 10, Width: 1, Ports: 1, IncludeDatapath: true})
	word := area(HWConfig{Slots: 16, AddrBits: 10, Width: 8, Ports: 1, IncludeDatapath: true})
	multi := area(HWConfig{Slots: 16, AddrBits: 10, Width: 8, Ports: 2, IncludeDatapath: true})
	if !(bit < word && word < multi) {
		t.Errorf("areas not monotone: bit %.0f, word %.0f, multiport %.0f", bit, word, multi)
	}
}

func TestControllerAreaIndependentOfAlgorithm(t *testing.T) {
	// The whole point of programmability: the same hardware runs March C
	// and March A++; only storage contents (not area) change, as long as
	// the program fits the slots.
	lib := &netlist.CMOS5SLike
	var areas []float64
	for _, alg := range []march.Algorithm{march.MarchC(), march.MarchA(), march.MarchCPlus()} {
		p, err := Assemble(alg, AssembleOpts{WordOriented: true, Multiport: true})
		if err != nil {
			t.Fatal(err)
		}
		hw, err := BuildHardware(p, HWConfig{Slots: 24, AddrBits: 10, Width: 1, Ports: 1})
		if err != nil {
			t.Fatal(err)
		}
		areas = append(areas, hw.Netlist.StatsFor(lib).AreaUm2)
	}
	for i := 1; i < len(areas); i++ {
		if areas[i] != areas[0] {
			t.Errorf("area changed with algorithm: %v", areas)
		}
	}
}

// TestDecoderGateEquivalence proves the synthesised instruction decoder
// matches decoderSpec for every input assignment.
func TestDecoderGateEquivalence(t *testing.T) {
	nl := netlist.New("decoder")
	cond := []netlist.NetID{nl.AddInput("c0"), nl.AddInput("c1"), nl.AddInput("c2")}
	la := nl.AddInput("last_addr")
	ld := nl.AddInput("last_data")
	lp := nl.AddInput("last_port")
	rp := nl.AddInput("repeat")
	dec := buildDecoder(nl, cond, la, ld, lp, rp)
	outs := map[string]netlist.NetID{
		"hold": dec.hold, "load0": dec.load0, "load1": dec.load1,
		"loadBreg": dec.loadBreg, "saveBreg": dec.saveBreg,
		"setRepeat": dec.setRepeat, "clrRepeat": dec.clrRepeat,
		"stepData": dec.stepData, "clrData": dec.clrData,
		"stepPort": dec.stepPort, "terminate": dec.terminate,
		"addrClr": dec.addrClr, "pauseGate": dec.pauseGate,
	}
	for name, id := range outs {
		nl.AddOutput(name, id)
	}
	sim, err := gatesim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < 128; row++ {
		c := Cond(row & 7)
		lav := row>>3&1 == 1
		ldv := row>>4&1 == 1
		lpv := row>>5&1 == 1
		rpv := row>>6&1 == 1
		sim.SetBus(cond, uint64(c))
		sim.Set(la, lav)
		sim.Set(ld, ldv)
		sim.Set(lp, lpv)
		sim.Set(rp, rpv)
		sim.Eval()
		want := decoderSpec(c, lav, ldv, lpv, rpv)
		for name, id := range outs {
			if got := sim.Get(id); got != want[name] {
				t.Errorf("cond %v la=%v ld=%v lp=%v rp=%v: %s = %v, want %v",
					c, lav, ldv, lpv, rpv, name, got, want[name])
			}
		}
	}
}

func TestHardwareStatsBreakdown(t *testing.T) {
	p := mustProgram(t, march.MarchC())
	hw, err := BuildHardware(p, DefaultHWConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := hw.Netlist.StatsFor(&netlist.CMOS5SLike)
	// Storage alone is Z*10 = 160 scan FFs.
	if got := s.CellCount[netlist.CellSDFF]; got != 160 {
		t.Errorf("storage cells = %d, want 160", got)
	}
	// PC is log2(16)+1 = 5 bits, branch reg 4, reference 4: >= 13 DFFs.
	if got := s.CellCount[netlist.CellDFF]; got < 13 {
		t.Errorf("control DFFs = %d, want >= 13", got)
	}
}
