package microbist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/faults"
	"repro/internal/march"
)

// TestRandomAlgorithmEquivalenceProperty fuzzes the full pipeline:
// random valid march algorithms are assembled (with folding when the
// generator happens to produce symmetry), executed against a memory
// with one random fault, and the fail log must equal the reference
// runner's byte for byte.
func TestRandomAlgorithmEquivalenceProperty(t *testing.T) {
	universe := faults.Universe(8, 1, faults.UniverseOpts{})
	f := func(seed int64, faultIdx uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		alg := march.Random(rng)
		fault := universe[int(faultIdx)%len(universe)]

		p, err := Assemble(alg, AssembleOpts{})
		if err != nil {
			return false
		}
		memA := faults.NewInjected(8, 1, 1, fault)
		got, err := p.Run(memA, ExecOpts{})
		if err != nil || !got.Terminated {
			return false
		}

		memB := faults.NewInjected(8, 1, 1, fault)
		want, err := march.Run(alg, memB, march.RunOpts{SinglePort: true, SingleBackground: true})
		if err != nil {
			return false
		}
		if len(got.Fails) != len(want.Fails) || got.Operations != want.Operations {
			return false
		}
		for i := range got.Fails {
			if got.Fails[i] != want.Fails[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestRandomAlgorithmScanImageProperty: assembling, imaging and
// decoding a random algorithm preserves the instruction sequence.
func TestRandomAlgorithmScanImageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alg := march.Random(rng)
		p, err := Assemble(alg, AssembleOpts{WordOriented: true, Multiport: true})
		if err != nil {
			return false
		}
		bits, err := p.ScanImage(p.Len())
		if err != nil {
			return false
		}
		back, err := ProgramFromScanImage("x", bits)
		if err != nil || back.Len() != p.Len() {
			return false
		}
		for i := range p.Instructions {
			if back.Instructions[i] != p.Instructions[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
