package microbist

import (
	"fmt"

	"repro/internal/bist"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// HWConfig sizes the structural model of the microcode-based controller.
type HWConfig struct {
	// Slots is the storage-unit capacity Z in instructions. A program
	// longer than Slots grows the storage to fit.
	Slots int
	// AddrBits is the address-generator width (log2 of the memory size).
	AddrBits int
	// Width is the memory word width (1 = bit-oriented).
	Width int
	// Ports is the memory port count (1 = single port).
	Ports int
	// ScanOnlyStorage selects the Table 3 re-design: the storage unit
	// uses scan-only cells (≈4.5× smaller than full-scan registers)
	// because the microcode has no functional-clock data path.
	ScanOnlyStorage bool
	// IncludeDatapath adds the shared BIST datapath (address generator,
	// data-background generator, comparator, port counter) so the full
	// unit can be sized; false sizes the controller alone, matching the
	// paper's tables.
	IncludeDatapath bool
	// DelayTimerBits adds a retention delay timer of the given width
	// (needed when the programmed algorithms use pause phases).
	DelayTimerBits int
}

// DefaultHWConfig matches the paper's first experiment: bit-oriented
// single-port memory, 16-slot storage, 10-bit addresses (1K memory).
func DefaultHWConfig() HWConfig {
	return HWConfig{Slots: 16, AddrBits: 10, Width: 1, Ports: 1}
}

// Hardware couples the generated netlist with its interface nets.
type Hardware struct {
	Netlist *netlist.Netlist
	Config  HWConfig

	// PC is the instruction counter (log2(Z)+1 bits; the MSB is the
	// paper's test-end flag).
	PC []netlist.NetID
	// Word is the selected microcode word.
	Word []netlist.NetID
	// Control outputs toward the datapath.
	ReadEn, WriteEn, AddrInc, AddrDown, DataInv, CmpInv netlist.NetID
	Terminate                                           netlist.NetID
}

// storageKind returns the register cell used for the storage unit.
func (cfg HWConfig) storageKind() netlist.CellKind {
	if cfg.ScanOnlyStorage {
		return netlist.CellSODFF
	}
	return netlist.CellSDFF
}

// BuildHardware generates the structural netlist of the microcode-based
// BIST controller of Fig. 1: storage unit, instruction counter,
// instruction selector, branch register, instruction decoder and
// reference register. The storage unit is initialised with the program
// (loaded through the scan chain in silicon; the paper's 2-bit
// initialisation selects default or custom microcode).
func BuildHardware(p *Program, cfg HWConfig) (*Hardware, error) {
	if cfg.Slots <= 0 {
		cfg.Slots = 16
	}
	if p != nil && p.Len() > cfg.Slots {
		cfg.Slots = p.Len()
	}
	if cfg.AddrBits <= 0 {
		return nil, fmt.Errorf("microbist: AddrBits must be positive")
	}
	z := cfg.Slots
	selBits := logic.Log2Ceil(z)
	if selBits == 0 {
		selBits = 1
	}
	pcBits := selBits + 1 // MSB is the test-end flag

	nl := netlist.New("microcode-bist")
	hw := &Hardware{Netlist: nl, Config: cfg}

	// Condition inputs; replaced by datapath nets when included.
	lastAddr := nl.AddInput("last_address")
	lastData := nl.AddInput("last_data")
	lastPort := nl.AddInput("last_port")
	delayDone := netlist.NetID(0)
	if cfg.DelayTimerBits > 0 {
		// Retention delay timer: free-running counter whose terminal
		// count gates the pause state.
		en := nl.Const1()
		timer := nl.BuildCounter("delay", cfg.DelayTimerBits, en, netlist.Invalid, netlist.Invalid)
		delayDone = timer.Terminal
	}

	// Storage unit: Z words of 10 bits, scan-loaded.
	words := make([][]netlist.NetID, z)
	for i := range words {
		var init []bool
		if p != nil && i < p.Len() {
			enc := p.Instructions[i].Encode()
			init = make([]bool, WordBits)
			for b := 0; b < WordBits; b++ {
				init[b] = enc>>uint(b)&1 == 1
			}
		}
		words[i] = nl.StorageRegister(fmt.Sprintf("ucode%d", i), cfg.storageKind(), WordBits, init)
	}

	// Instruction counter.
	pc := make([]netlist.NetID, pcBits)
	for i := range pc {
		pc[i] = nl.AddFF(netlist.CellDFF, nl.Const0(), false)
		nl.SetNetName(pc[i], fmt.Sprintf("pc[%d]", i))
	}
	hw.PC = pc

	// Instruction selector: Y parallel Z:1 multiplexers.
	word := make([]netlist.NetID, WordBits)
	for b := 0; b < WordBits; b++ {
		data := make([]netlist.NetID, z)
		for i := 0; i < z; i++ {
			data[i] = words[i][b]
		}
		word[b] = nl.MuxN(pc[:selBits], data)
	}
	hw.Word = word

	// Field split.
	addrInc, addrDown := word[0], word[1]
	dataGenInc := word[2]
	dataInv, cmpInv := word[3], word[4]
	readEn, writeEn := word[5], word[6]
	cond := word[7:10]

	// Branch register.
	breg := make([]netlist.NetID, selBits)
	for i := range breg {
		breg[i] = nl.AddFF(netlist.CellDFF, nl.Const0(), false)
		nl.SetNetName(breg[i], fmt.Sprintf("breg[%d]", i))
	}

	// Reference register: repeat bit + auxiliary order/data/compare.
	repeatQ := nl.AddFF(netlist.CellDFF, nl.Const0(), false)
	refOrder := nl.AddFF(netlist.CellDFF, nl.Const0(), false)
	refData := nl.AddFF(netlist.CellDFF, nl.Const0(), false)
	refCmp := nl.AddFF(netlist.CellDFF, nl.Const0(), false)
	nl.SetNetName(repeatQ, "ref_repeat")
	nl.SetNetName(refOrder, "ref_order")
	nl.SetNetName(refData, "ref_data")
	nl.SetNetName(refCmp, "ref_cmp")

	// Instruction decoder: two-level logic over cond + conditions. The
	// word's Hold/Inc-Data-Gen field gates the background step (the
	// assembler always sets it on the background-loop instruction).
	dec := buildDecoder(nl, cond, lastAddr, lastData, lastPort, repeatQ)
	dec.stepData = nl.And2(dec.stepData, dataGenInc)
	if delayDone != netlist.Invalid {
		// A pause instruction additionally waits for the delay timer;
		// approximated by gating the PC advance.
		dec.hold = nl.Or2(dec.hold, nl.And2(dec.pauseGate, nl.Inv(delayDone)))
	}

	// Next-PC datapath.
	inc, _ := nl.Incrementer(pc, nl.Const1())
	one := make([]netlist.NetID, pcBits)
	zero := make([]netlist.NetID, pcBits)
	for i := range one {
		zero[i] = nl.Const0()
		if i == 0 {
			one[i] = nl.Const1()
		} else {
			one[i] = nl.Const0()
		}
	}
	bregExt := make([]netlist.NetID, pcBits)
	for i := range bregExt {
		if i < selBits {
			bregExt[i] = breg[i]
		} else {
			bregExt[i] = nl.Const0()
		}
	}
	for i := 0; i < pcBits; i++ {
		next := inc[i]
		next = nl.Mux2(dec.hold, next, pc[i])
		next = nl.Mux2(dec.load0, next, zero[i])
		next = nl.Mux2(dec.load1, next, one[i])
		next = nl.Mux2(dec.loadBreg, next, bregExt[i])
		// Once the end flag (MSB) is set the counter freezes.
		next = nl.Mux2(pc[pcBits-1], next, pc[i])
		// Terminate forces the end flag.
		if i == pcBits-1 {
			next = nl.Or2(next, dec.terminate)
		}
		nl.SetFFInput(pc[i], next)
	}

	// Branch register load.
	for i := range breg {
		nl.SetFFInput(breg[i], nl.Mux2(dec.saveBreg, breg[i], pc[i]))
	}

	// Reference register update.
	repeatNext := nl.Or2(nl.And2(repeatQ, nl.Inv(dec.clrRepeat)), dec.setRepeat)
	nl.SetFFInput(repeatQ, repeatNext)
	nl.SetFFInput(refOrder, refBit(nl, refOrder, addrDown, dec))
	nl.SetFFInput(refData, refBit(nl, refData, dataInv, dec))
	nl.SetFFInput(refCmp, refBit(nl, refCmp, cmpInv, dec))

	// Effective field polarities (XOR with the reference register).
	hw.AddrDown = nl.Xor2(addrDown, refOrder)
	hw.DataInv = nl.Xor2(dataInv, refData)
	hw.CmpInv = nl.Xor2(cmpInv, refCmp)
	hw.AddrInc = addrInc
	hw.ReadEn = readEn
	hw.WriteEn = writeEn
	hw.Terminate = pc[pcBits-1]

	nl.AddOutput("read_en", hw.ReadEn)
	nl.AddOutput("write_en", hw.WriteEn)
	nl.AddOutput("addr_inc", hw.AddrInc)
	nl.AddOutput("addr_down", hw.AddrDown)
	nl.AddOutput("data_inv", hw.DataInv)
	nl.AddOutput("cmp_inv", hw.CmpInv)
	nl.AddOutput("test_end", hw.Terminate)
	// The remaining decoder controls are part of the controller's
	// datapath interface even when the datapath is not instantiated.
	nl.AddOutput("step_data", dec.stepData)
	nl.AddOutput("clr_data", dec.clrData)
	nl.AddOutput("step_port", dec.stepPort)
	nl.AddOutput("addr_clr", dec.addrClr)
	nl.AddOutput("pause", dec.pauseGate)

	if cfg.IncludeDatapath {
		attachDatapath(nl, hw, lastAddr, lastData, lastPort, dec)
	}

	nl.SweepDead()
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return hw, nil
}

// decoderNets are the instruction decoder's control outputs.
type decoderNets struct {
	hold      netlist.NetID
	load0     netlist.NetID
	load1     netlist.NetID
	loadBreg  netlist.NetID
	saveBreg  netlist.NetID
	setRepeat netlist.NetID
	clrRepeat netlist.NetID
	stepData  netlist.NetID
	clrData   netlist.NetID
	stepPort  netlist.NetID
	terminate netlist.NetID
	addrClr   netlist.NetID
	pauseGate netlist.NetID
}

// decoderSpec computes the behavioural decoder outputs for one input
// assignment; it is the single source of truth shared by the netlist
// synthesis and the gate-level equivalence test.
func decoderSpec(cond Cond, lastAddr, lastData, lastPort, repeat bool) map[string]bool {
	out := map[string]bool{}
	out["hold"] = cond == CondHold && !lastAddr
	out["load0"] = (cond == CondLoopData && !lastData) || (cond == CondLoopPort && !lastPort)
	out["load1"] = cond == CondRepeat && !repeat
	out["loadBreg"] = cond == CondLoopBack && !lastAddr
	out["saveBreg"] = cond == CondSave
	out["setRepeat"] = cond == CondRepeat && !repeat
	out["clrRepeat"] = cond == CondRepeat && repeat
	out["stepData"] = cond == CondLoopData && !lastData
	out["clrData"] = (cond == CondLoopData && lastData) || (cond == CondLoopPort && !lastPort)
	out["stepPort"] = cond == CondLoopPort && !lastPort
	out["terminate"] = cond == CondTerminate || (cond == CondLoopPort && lastPort)
	out["addrClr"] = ((cond == CondHold || cond == CondLoopBack) && lastAddr) ||
		(cond == CondRepeat && !repeat) ||
		(cond == CondLoopData && !lastData) ||
		(cond == CondLoopPort && !lastPort)
	out["pauseGate"] = cond == CondNop
	return out
}

var decoderOutputs = []string{
	"hold", "load0", "load1", "loadBreg", "saveBreg", "setRepeat",
	"clrRepeat", "stepData", "clrData", "stepPort", "terminate",
	"addrClr", "pauseGate",
}

func buildDecoder(nl *netlist.Netlist, cond []netlist.NetID, lastAddr, lastData, lastPort, repeat netlist.NetID) decoderNets {
	vars := []netlist.NetID{cond[0], cond[1], cond[2], lastAddr, lastData, lastPort, repeat}
	nets := make(map[string]netlist.NetID, len(decoderOutputs))
	for _, name := range decoderOutputs {
		tt := logic.NewTruthTable(7)
		for row := 0; row < tt.NumRows(); row++ {
			c := Cond(row & 7)
			la := row>>3&1 == 1
			ld := row>>4&1 == 1
			lp := row>>5&1 == 1
			rp := row>>6&1 == 1
			tt.SetBool(row, decoderSpec(c, la, ld, lp, rp)[name])
		}
		nets[name] = nl.FromTruthTable(tt, vars)
	}
	return decoderNets{
		hold:      nets["hold"],
		load0:     nets["load0"],
		load1:     nets["load1"],
		loadBreg:  nets["loadBreg"],
		saveBreg:  nets["saveBreg"],
		setRepeat: nets["setRepeat"],
		clrRepeat: nets["clrRepeat"],
		stepData:  nets["stepData"],
		clrData:   nets["clrData"],
		stepPort:  nets["stepPort"],
		terminate: nets["terminate"],
		addrClr:   nets["addrClr"],
		pauseGate: nets["pauseGate"],
	}
}

func refBit(nl *netlist.Netlist, q, field netlist.NetID, dec decoderNets) netlist.NetID {
	// Load the field on setRepeat, clear on clrRepeat, else hold.
	v := nl.Mux2(dec.setRepeat, q, field)
	return nl.And2(v, nl.Inv(dec.clrRepeat))
}

// attachDatapath replaces the condition primary inputs with a real
// datapath: address generator, data-background generator, comparator
// and port counter.
func attachDatapath(nl *netlist.Netlist, hw *Hardware, lastAddr, lastData, lastPort netlist.NetID, dec decoderNets) {
	cfg := hw.Config
	ag := bist.BuildAddressGen(nl, cfg.AddrBits, hw.AddrInc, hw.AddrDown, dec.addrClr)
	// The pattern polarity is the write-data field on write cycles and
	// the compare field on read cycles (they are distinct microcode
	// fields, unlike the FSM architectures' single relative polarity).
	inv := nl.Mux2(hw.ReadEn, hw.DataInv, hw.CmpInv)
	dg := bist.BuildDataGen(nl, cfg.Width, dec.stepData, dec.clrData, inv)
	read := make([]netlist.NetID, cfg.Width)
	for i := range read {
		read[i] = nl.AddInput(fmt.Sprintf("mem_q[%d]", i))
	}
	mismatch := bist.BuildComparator(nl, read, dg.Pattern, hw.ReadEn)
	nl.AddOutput("mismatch", mismatch)
	for i, q := range ag.Q {
		nl.AddOutput(fmt.Sprintf("mem_addr[%d]", i), q)
	}
	for i, d := range dg.Pattern {
		nl.AddOutput(fmt.Sprintf("mem_d[%d]", i), d)
	}
	// Feed the condition inputs from the datapath through buffers; the
	// primary inputs remain as tie-off points for controller-only mode.
	_ = lastAddr
	_ = lastData
	_ = lastPort
	nl.AddOutput("dp_last_address", ag.Last)
	nl.AddOutput("dp_last_data", dg.Last)
	if cfg.Ports > 1 {
		pq, plast := bist.BuildPortCounter(nl, cfg.Ports, dec.stepPort, netlist.Invalid)
		for i, q := range pq {
			nl.AddOutput(fmt.Sprintf("mem_port[%d]", i), q)
		}
		nl.AddOutput("dp_last_port", plast)
	}
}
