package microbist

import (
	"fmt"

	"repro/internal/bist"
	"repro/internal/march"
	"repro/internal/memory"
)

// ExecOpts tunes the behavioural executor.
type ExecOpts struct {
	// MaxFails caps the fail log (0 = unlimited).
	MaxFails int
	// MaxCycles overrides the runaway-protection cycle budget
	// (0 = computed from the program and memory geometry).
	MaxCycles int
	// Trace, when non-nil, receives one entry per executed cycle — the
	// controller-visible state and control outputs. The gate-level
	// equivalence test replays a trace against the synthesised netlist.
	Trace func(TraceEntry)
}

// TraceEntry is the per-cycle architectural state of the controller:
// what the instruction decoder saw and what control outputs it drove.
type TraceEntry struct {
	PC int
	// Condition inputs as sampled by the decoder this cycle.
	LastAddr, LastData, LastPort bool
	// Effective (reference-register-adjusted) control outputs.
	Read, Write       bool
	AddrInc, AddrDown bool
	DataInv, CmpInv   bool
	Repeat            bool // repeat-loop bit before this cycle
	Terminated        bool // this cycle ended the test
}

// ExecResult is the outcome of executing a microcode program.
type ExecResult struct {
	Fails      []march.Fail
	Cycles     int
	Operations int // memory reads + writes issued
	PauseCount int
	Signature  uint16
	// Terminated is true when the program ended through its terminate
	// path rather than the cycle budget.
	Terminated bool
}

// Detected reports whether any miscompare occurred.
func (r *ExecResult) Detected() bool { return len(r.Fails) > 0 }

// controller is the architectural state of the microcode-based BIST
// controller (Fig. 1): instruction counter, branch register, reference
// register (repeat bit + auxiliary order/data/compare) and the shared
// datapath components.
type controller struct {
	pc        int
	branchReg int
	repeat    bool
	refOrder  bool
	refData   bool
	refCmp    bool

	addrGen  *bist.AddressGenerator
	dataGen  *bist.DataGenerator
	portSel  *bist.PortSelector
	analyzer *bist.ResponseAnalyzer

	needAddrReset bool
}

// Run executes the program cycle-accurately against the memory under
// test: one instruction per clock cycle, matching the storage-unit /
// instruction-counter / branch-register / reference-register
// architecture of the paper's Fig. 1.
func (p *Program) Run(mem memory.Memory, opts ExecOpts) (*ExecResult, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	c := &controller{
		addrGen:       bist.NewAddressGenerator(mem.Size()),
		dataGen:       bist.NewDataGenerator(mem.Width()),
		portSel:       bist.NewPortSelector(mem.Ports()),
		analyzer:      bist.NewResponseAnalyzer(opts.MaxFails),
		needAddrReset: true,
	}
	res := &ExecResult{}

	budget := opts.MaxCycles
	if budget == 0 {
		perPass := 0
		for _, in := range p.Instructions {
			if in.Read || in.Write {
				perPass += mem.Size()
			}
			perPass += 4
		}
		// Two passes per background (Repeat), per background, per port,
		// plus generous slack.
		budget = (perPass*2+16)*c.dataGen.Count()*mem.Ports() + 256
	}

	for res.Cycles = 0; res.Cycles < budget; {
		res.Cycles++
		in := p.Instructions[c.pc]
		src := p.Source[c.pc]

		effDown := in.AddrDown != c.refOrder
		effDataInv := in.DataInv != c.refData
		effCmpInv := in.CmpInv != c.refCmp

		if (in.Read || in.Write) && c.needAddrReset {
			c.addrGen.Reset(effDown)
			c.needAddrReset = false
		}

		switch {
		case in.Read:
			expected := c.dataGen.Pattern(effCmpInv)
			got := mem.Read(c.portSel.Port(), c.addrGen.Addr())
			res.Operations++
			elem := src.Element
			if c.repeat && elem >= 1 {
				// During the Repeat pass the instructions implement the
				// mirrored elements of the original algorithm.
				elem += p.FoldLen
			}
			c.analyzer.Compare(got, expected, march.Fail{
				Port:       c.portSel.Port(),
				Background: c.dataGen.Background(),
				Element:    elem,
				OpIndex:    src.Op,
				Addr:       c.addrGen.Addr(),
			})
			if opts.MaxFails > 0 && len(c.analyzer.Fails()) >= opts.MaxFails {
				res.Fails = c.analyzer.Fails()
				res.Signature = c.analyzer.Signature()
				res.Terminated = true
				return res, nil
			}
		case in.Write:
			mem.Write(c.portSel.Port(), c.addrGen.Addr(), c.dataGen.Pattern(effDataInv))
			res.Operations++
		case in.Cond == CondNop:
			// Pure no-op models the retention delay phase.
			mem.Pause()
			res.PauseCount++
		}

		lastAddr := c.addrGen.Last()
		lastData := c.dataGen.Last()
		lastPort := c.portSel.Last()
		trace := TraceEntry{
			PC:       c.pc,
			LastAddr: lastAddr, LastData: lastData, LastPort: lastPort,
			Read: in.Read, Write: in.Write,
			AddrInc: in.AddrInc, AddrDown: effDown,
			DataInv: effDataInv, CmpInv: effCmpInv,
			Repeat: c.repeat,
		}
		if in.AddrInc {
			c.addrGen.Step()
		}

		done := false
		switch in.Cond {
		case CondNop:
			c.pc++
		case CondSave:
			c.branchReg = c.pc
			c.pc++
		case CondHold:
			if lastAddr {
				c.pc++
				c.needAddrReset = true
			}
			// else: hold at the same instruction
		case CondLoopBack:
			if lastAddr {
				c.pc++
				c.needAddrReset = true
			} else {
				c.pc = c.branchReg
			}
		case CondRepeat:
			if !c.repeat {
				c.repeat = true
				c.refOrder = in.AddrDown
				c.refData = in.DataInv
				c.refCmp = in.CmpInv
				c.pc = 1
				c.needAddrReset = true
			} else {
				c.repeat = false
				c.refOrder, c.refData, c.refCmp = false, false, false
				c.pc++
			}
		case CondLoopData:
			if c.dataGen.Last() {
				c.dataGen.Reset()
				c.pc++
			} else {
				c.dataGen.Step()
				c.pc = 0
				c.needAddrReset = true
			}
		case CondLoopPort:
			if c.portSel.Last() {
				done = true
			} else {
				c.portSel.Step()
				c.dataGen.Reset()
				c.pc = 0
				c.needAddrReset = true
			}
		case CondTerminate:
			done = true
		default:
			return nil, fmt.Errorf("microbist: undefined condition %d at pc %d", in.Cond, c.pc)
		}

		if done || c.pc >= len(p.Instructions) {
			res.Terminated = true
		}
		if opts.Trace != nil {
			trace.Terminated = res.Terminated
			opts.Trace(trace)
		}
		if res.Terminated {
			break
		}
	}

	res.Fails = c.analyzer.Fails()
	res.Signature = c.analyzer.Signature()
	return res, nil
}
