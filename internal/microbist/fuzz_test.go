package microbist

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/march"
	"repro/internal/memory"
)

// FuzzAssemble drives the assembler with arbitrary parsed march
// notation and uses the unfolded program as a differential oracle for
// the Repeat/reference-register folding: for every accepted algorithm,
// the folded and fold-disabled programs must terminate and produce
// identical verdicts, operation counts and MISR signatures on both a
// clean memory and one with an injected stuck-at fault.
func FuzzAssemble(f *testing.F) {
	for _, name := range []string{"marchc", "marchc++", "marcha", "mats+"} {
		alg, ok := march.ByName(name)
		if !ok {
			f.Fatalf("library lacks %s", name)
		}
		f.Add(strings.Trim(alg.String(), "{}"), true, true)
	}
	f.Add("b(w0); u(r0,w1); d(r1,w0)", false, false)
	f.Add("del u(w1); del d(r1)", true, false)
	f.Fuzz(func(t *testing.T, text string, word, multi bool) {
		alg, err := march.Parse("fuzz", text)
		if err != nil {
			return
		}
		if alg.OpCount() > 64 {
			return
		}
		opts := AssembleOpts{WordOriented: word, Multiport: multi}
		folded, err := Assemble(alg, opts)
		if err != nil {
			t.Fatalf("assemble of valid algorithm %q: %v", alg, err)
		}
		opts.DisableFold = true
		plain, err := Assemble(alg, opts)
		if err != nil {
			t.Fatalf("fold-disabled assemble of valid algorithm %q: %v", alg, err)
		}

		width, ports := 1, 1
		if word {
			width = 4
		}
		if multi {
			ports = 2
		}
		const size = 8
		sa := faults.Fault{Kind: faults.SA, Cell: 5*width + width/2, Value: true, Port: faults.AnyPort}
		for _, mk := range []func() memory.Memory{
			func() memory.Memory { return memory.NewSRAM(size, width, ports) },
			func() memory.Memory { return faults.NewInjected(size, width, ports, sa) },
		} {
			fr, err := folded.Run(mk(), ExecOpts{})
			if err != nil {
				t.Fatalf("folded run of %q: %v", alg, err)
			}
			pr, err := plain.Run(mk(), ExecOpts{})
			if err != nil {
				t.Fatalf("unfolded run of %q: %v", alg, err)
			}
			if !fr.Terminated || !pr.Terminated {
				t.Fatalf("%q exceeded its cycle budget (folded=%v unfolded=%v)", alg, fr.Terminated, pr.Terminated)
			}
			if fr.Detected() != pr.Detected() || fr.Operations != pr.Operations || fr.Signature != pr.Signature {
				t.Fatalf("folded/unfolded divergence on %q: detected %v/%v, ops %d/%d, signature %04x/%04x",
					alg, fr.Detected(), pr.Detected(), fr.Operations, pr.Operations, fr.Signature, pr.Signature)
			}
		}
	})
}
