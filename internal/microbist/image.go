package microbist

import (
	"fmt"
	"io"
	"strings"
)

// Program storage images. In silicon the storage unit is written
// through its scan chain (the paper's 2-bit initialisation selects the
// default or a custom microcode); these helpers produce and parse the
// corresponding bit streams and Verilog $readmemb memory files, so an
// assembled algorithm can be handed to a DFT insertion flow.

// ScanImage returns the storage-unit scan bitstream for a storage of
// the given capacity: slot 0 first, each word LSB-first, unused slots
// zero-filled. slots must hold the program.
func (p *Program) ScanImage(slots int) ([]bool, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	if p.Len() > slots {
		return nil, fmt.Errorf("microbist: program %s (%d words) exceeds %d slots", p.Name, p.Len(), slots)
	}
	bits := make([]bool, slots*WordBits)
	for i, in := range p.Instructions {
		enc := in.Encode()
		for b := 0; b < WordBits; b++ {
			bits[i*WordBits+b] = enc>>uint(b)&1 == 1
		}
	}
	return bits, nil
}

// ProgramFromScanImage decodes a scan bitstream back into a program.
// Trailing all-zero words beyond the last terminate/port-loop word are
// dropped. The source map is unavailable (fail records from the decoded
// program attribute to element -1).
func ProgramFromScanImage(name string, bits []bool) (*Program, error) {
	if len(bits)%WordBits != 0 {
		return nil, fmt.Errorf("microbist: scan image length %d is not a multiple of %d", len(bits), WordBits)
	}
	p := &Program{Name: name}
	for i := 0; i+WordBits <= len(bits); i += WordBits {
		var enc uint16
		for b := 0; b < WordBits; b++ {
			if bits[i+b] {
				enc |= 1 << uint(b)
			}
		}
		p.Instructions = append(p.Instructions, Decode(enc))
		p.Source = append(p.Source, SourceRef{Element: -1, Op: -1})
	}
	// Trim zero padding: keep up to the last terminating instruction.
	last := -1
	for i, in := range p.Instructions {
		if in.Cond == CondTerminate || in.Cond == CondLoopPort {
			last = i
		}
	}
	if last < 0 {
		return nil, fmt.Errorf("microbist: scan image has no terminating instruction")
	}
	p.Instructions = p.Instructions[:last+1]
	p.Source = p.Source[:last+1]
	if err := p.check(); err != nil {
		return nil, err
	}
	return p, nil
}

// WriteMemb writes the storage contents in Verilog $readmemb format
// (one 10-bit binary word per line, slot 0 first), suitable for
// initialising the generated RTL's storage in simulation.
func (p *Program) WriteMemb(w io.Writer, slots int) error {
	if p.Len() > slots {
		return fmt.Errorf("microbist: program %s (%d words) exceeds %d slots", p.Name, p.Len(), slots)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// %s — %d instructions in %d slots\n", p.Name, p.Len(), slots)
	for i := 0; i < slots; i++ {
		var enc uint16
		if i < p.Len() {
			enc = p.Instructions[i].Encode()
		}
		fmt.Fprintf(&b, "%010b\n", enc)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
