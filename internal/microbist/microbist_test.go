package microbist

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/march"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(w uint16) bool {
		w &= 1<<WordBits - 1
		return Decode(w).Encode() == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeFieldPlacement(t *testing.T) {
	in := Instruction{AddrInc: true, Read: true, Cond: CondHold}
	w := in.Encode()
	if w != 1|1<<5|uint16(CondHold)<<7 {
		t.Errorf("encoding = %010b", w)
	}
	back := Decode(w)
	if back != in {
		t.Errorf("round trip: %+v vs %+v", back, in)
	}
}

func TestAssembleMarchCMatchesFig2(t *testing.T) {
	// The paper's Fig. 2: March C with word-oriented and multiport
	// support assembles to 9 instructions using the Repeat fold.
	p, err := Assemble(march.MarchC(), AssembleOpts{WordOriented: true, Multiport: true})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Folded {
		t.Error("March C did not fold")
	}
	if p.Len() != 9 {
		t.Fatalf("March C assembles to %d instructions, want 9 (Fig. 2):\n%s", p.Len(), p.Listing())
	}
	ins := p.Instructions
	// 1: w0 up inc hold
	if !ins[0].Write || ins[0].DataInv || !ins[0].AddrInc || ins[0].Cond != CondHold {
		t.Errorf("instr 1 = %v", ins[0])
	}
	// 2: r0 save / 3: w1 inc loopback
	if !ins[1].Read || ins[1].CmpInv || ins[1].Cond != CondSave {
		t.Errorf("instr 2 = %v", ins[1])
	}
	if !ins[2].Write || !ins[2].DataInv || !ins[2].AddrInc || ins[2].Cond != CondLoopBack {
		t.Errorf("instr 3 = %v", ins[2])
	}
	// 4: r1 save / 5: w0 inc loopback
	if !ins[3].Read || !ins[3].CmpInv || ins[3].Cond != CondSave {
		t.Errorf("instr 4 = %v", ins[3])
	}
	// 6: repeat with order-only mask (March C's fold).
	if ins[5].Cond != CondRepeat || !ins[5].AddrDown || ins[5].DataInv || ins[5].CmpInv {
		t.Errorf("instr 6 = %v, want repeat with order-only mask", ins[5])
	}
	// 7: final verify r0 hold
	if !ins[6].Read || ins[6].CmpInv || ins[6].Cond != CondHold {
		t.Errorf("instr 7 = %v", ins[6])
	}
	// 8: loopdata, 9: loopport
	if ins[7].Cond != CondLoopData || !ins[7].DataInc {
		t.Errorf("instr 8 = %v", ins[7])
	}
	if ins[8].Cond != CondLoopPort {
		t.Errorf("instr 9 = %v", ins[8])
	}
}

func TestAssembleMarchAFoldMask(t *testing.T) {
	p, err := Assemble(march.MarchA(), AssembleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Folded {
		t.Fatal("March A did not fold")
	}
	var rep *Instruction
	for i := range p.Instructions {
		if p.Instructions[i].Cond == CondRepeat {
			rep = &p.Instructions[i]
		}
	}
	if rep == nil {
		t.Fatal("no repeat instruction")
	}
	if !rep.AddrDown || !rep.DataInv || !rep.CmpInv {
		t.Errorf("March A repeat mask = %v, want full complement", *rep)
	}
}

func TestAssembleNoFoldGrowsProgram(t *testing.T) {
	folded, err := Assemble(march.MarchC(), AssembleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Assemble(march.MarchC(), AssembleOpts{DisableFold: true})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Folded {
		t.Error("DisableFold ignored")
	}
	if flat.Len() <= folded.Len() {
		t.Errorf("flat %d <= folded %d instructions", flat.Len(), folded.Len())
	}
}

func TestAssembleRetentionEmitsPause(t *testing.T) {
	p, err := Assemble(march.MarchCPlus(), AssembleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	pauses := 0
	for _, in := range p.Instructions {
		if !in.Read && !in.Write && in.Cond == CondNop {
			pauses++
		}
	}
	if pauses != 2 {
		t.Errorf("March C+ program has %d pause instructions, want 2\n%s", pauses, p.Listing())
	}
}

func TestAssembleAllLibraryAlgorithms(t *testing.T) {
	for name, f := range march.Library() {
		for _, opts := range []AssembleOpts{
			{},
			{WordOriented: true},
			{WordOriented: true, Multiport: true},
			{DisableFold: true},
		} {
			p, err := Assemble(f(), opts)
			if err != nil {
				t.Errorf("%s %+v: %v", name, opts, err)
				continue
			}
			if p.Len() == 0 {
				t.Errorf("%s: empty program", name)
			}
		}
	}
}

func TestListingReadable(t *testing.T) {
	p, err := Assemble(march.MarchC(), AssembleOpts{WordOriented: true, Multiport: true})
	if err != nil {
		t.Fatal(err)
	}
	l := p.Listing()
	for _, frag := range []string{"March C", "folded", "repeat", "loopdata", "loopport", "hold"} {
		if !strings.Contains(l, frag) {
			t.Errorf("listing missing %q:\n%s", frag, l)
		}
	}
}

func TestRejectsInvalidAlgorithm(t *testing.T) {
	bad := march.Algorithm{Name: "bad", Elements: []march.Element{
		{Order: march.Up, Ops: []march.Op{march.R(true)}},
	}}
	if _, err := Assemble(bad, AssembleOpts{}); err == nil {
		t.Error("invalid algorithm assembled")
	}
}

func TestCondStrings(t *testing.T) {
	for c := CondNop; c <= CondTerminate; c++ {
		if s := c.String(); s == "" || strings.HasPrefix(s, "cond(") {
			t.Errorf("cond %d has no name", c)
		}
	}
}
