package microbist

import (
	"testing"

	"repro/internal/gatesim"
	"repro/internal/logic"
	"repro/internal/march"
	"repro/internal/memory"
)

// TestControllerNetlistMatchesExecutor is the strongest structural
// check in the package: the behavioural executor emits a per-cycle
// trace of decoder conditions and control outputs, and the synthesised
// controller netlist — storage unit, instruction counter, selector,
// branch register, reference register and decoder — is clocked through
// the same condition stream in the gate-level simulator. Instruction
// counter value and every control output must agree on every cycle of
// the whole test, including the Repeat fold, the background loop and
// the port loop.
func TestControllerNetlistMatchesExecutor(t *testing.T) {
	algs := []march.Algorithm{
		march.MATSPlus(), march.MarchC(), march.MarchA(), march.MarchY(),
	}
	for _, alg := range algs {
		t.Run(alg.Name, func(t *testing.T) {
			p, err := Assemble(alg, AssembleOpts{WordOriented: true, Multiport: true})
			if err != nil {
				t.Fatal(err)
			}

			// Small geometry keeps the trace short but still exercises
			// both loops: 4 addresses, 2-bit words, 2 ports.
			mem := memory.NewSRAM(4, 2, 2)
			var entries []TraceEntry
			res, err := p.Run(mem, ExecOpts{Trace: func(e TraceEntry) {
				entries = append(entries, e)
			}})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Terminated {
				t.Fatal("executor did not terminate")
			}
			if len(entries) != res.Cycles {
				t.Fatalf("trace has %d entries for %d cycles", len(entries), res.Cycles)
			}

			hw, err := BuildHardware(p, HWConfig{Slots: p.Len(), AddrBits: 2, Width: 2, Ports: 2})
			if err != nil {
				t.Fatal(err)
			}
			sim, err := gatesim.New(hw.Netlist)
			if err != nil {
				t.Fatal(err)
			}

			selBits := logic.Log2Ceil(hw.Config.Slots)
			if selBits == 0 {
				selBits = 1
			}
			for ci, e := range entries {
				sim.SetByName("last_address", e.LastAddr)
				sim.SetByName("last_data", e.LastData)
				sim.SetByName("last_port", e.LastPort)
				sim.Eval()

				if got := int(sim.GetBus(hw.PC[:selBits])); got != e.PC {
					t.Fatalf("cycle %d: netlist pc %d, executor pc %d", ci, got, e.PC)
				}
				if sim.Get(hw.Terminate) {
					t.Fatalf("cycle %d: netlist already terminated", ci)
				}
				checks := []struct {
					name string
					got  bool
					want bool
				}{
					{"read_en", sim.Get(hw.ReadEn), e.Read},
					{"write_en", sim.Get(hw.WriteEn), e.Write},
					{"addr_inc", sim.Get(hw.AddrInc), e.AddrInc},
					{"addr_down", sim.Get(hw.AddrDown), e.AddrDown},
					{"data_inv", sim.Get(hw.DataInv), e.DataInv},
					{"cmp_inv", sim.Get(hw.CmpInv), e.CmpInv},
				}
				for _, c := range checks {
					if c.got != c.want {
						t.Fatalf("cycle %d pc %d: %s = %v, executor %v", ci, e.PC, c.name, c.got, c.want)
					}
				}
				sim.Step()
			}

			// After the final traced cycle the end flag must be set.
			sim.Eval()
			if !sim.Get(hw.Terminate) {
				t.Error("netlist test_end not asserted after the final cycle")
			}
			// And the counter must stay frozen.
			endPC := sim.GetBus(hw.PC)
			sim.StepN(3)
			if sim.GetBus(hw.PC) != endPC {
				t.Error("instruction counter moved after test end")
			}
		})
	}
}

// TestControllerNetlistScanOnlyBehavesIdentically re-runs a shortened
// trace against the Table 3 scan-only storage variant: the re-design
// changes area, never behaviour.
func TestControllerNetlistScanOnlyBehavesIdentically(t *testing.T) {
	p, err := Assemble(march.MarchC(), AssembleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	mem := memory.NewSRAM(4, 1, 1)
	var entries []TraceEntry
	if _, err := p.Run(mem, ExecOpts{Trace: func(e TraceEntry) { entries = append(entries, e) }}); err != nil {
		t.Fatal(err)
	}
	for _, scan := range []bool{false, true} {
		hw, err := BuildHardware(p, HWConfig{Slots: p.Len(), AddrBits: 2, Width: 1, Ports: 1, ScanOnlyStorage: scan})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := gatesim.New(hw.Netlist)
		if err != nil {
			t.Fatal(err)
		}
		for ci, e := range entries {
			sim.SetByName("last_address", e.LastAddr)
			sim.SetByName("last_data", e.LastData)
			sim.SetByName("last_port", e.LastPort)
			sim.Eval()
			if sim.Get(hw.ReadEn) != e.Read || sim.Get(hw.WriteEn) != e.Write {
				t.Fatalf("scan=%v cycle %d: control mismatch", scan, ci)
			}
			sim.Step()
		}
	}
}
