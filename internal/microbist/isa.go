// Package microbist implements the paper's primary contribution: the
// microcode-based programmable memory BIST controller (§2.1, Figs 1-2).
//
// The controller consists of a storage unit (Z instructions of Y=10
// bits), an instruction counter, an instruction selector, a branch
// register, an instruction decoder and a 4-bit reference register
// (repeat-loop bit plus auxiliary address-order/data/compare bits).
// A march algorithm is assembled into the 10-bit microcode ISA; the
// Repeat mechanism folds symmetric algorithm halves through the
// reference register, and the trailing data-background and port loops
// support word-oriented and multiport memories.
//
// The package provides the ISA with binary encode/decode, an assembler
// from march algorithms (including automatic symmetry folding), a
// cycle-accurate behavioural executor validated against the march
// reference runner, and a structural netlist generator used by the
// paper's area evaluation (Tables 1-3), including the Table 3 scan-only
// storage-cell re-design.
package microbist

import (
	"fmt"
	"strings"
)

// Cond is the 3-bit condition/flow field of a microcode instruction.
// The eight opcodes correspond to the paper's Fig. 2 list; the branch
// conditions (Last Address, Last Data, Last Port, Repeat Loop bit) are
// bound per opcode as documented on each constant.
type Cond uint8

const (
	// CondNop takes no flow action: the instruction counter advances.
	// An instruction with no read and no write under CondNop models the
	// retention delay phase (the executor issues a memory Pause).
	CondNop Cond = iota
	// CondLoopBack is "Cond. Branch to branch reg.": while Last Address
	// is not reached, branch to the instruction saved in the branch
	// register (the current march element's first instruction).
	CondLoopBack
	// CondRepeat is "Cond. Branch to specified inst." with the paper's
	// reference-register side effects: on first execution it loads the
	// auxiliary address-order/data/compare bits from this instruction's
	// fields, sets the repeat-loop bit and branches to instruction 1;
	// on re-execution it is a no-operation that clears the repeat bit
	// and the reference register.
	CondRepeat
	// CondLoopData is "Cond. Branch to top": while Last Data is not
	// reached, step the data-background generator and branch to
	// instruction 0; at the last background, reset the generator and
	// advance.
	CondLoopData
	// CondHold is "Cond. hold": while Last Address is not reached, stay
	// on this instruction (single-operation march elements).
	CondHold
	// CondLoopPort is "Cond. Inc. Port": while Last Port is not
	// reached, activate the next port and branch to instruction 0; at
	// the last port, terminate the test.
	CondLoopPort
	// CondSave is "Save Current Address": copy the instruction counter
	// into the branch register (marking a march element's first
	// instruction), then advance.
	CondSave
	// CondTerminate is "Unconditional terminate".
	CondTerminate
)

var condNames = [...]string{
	"nop", "loopback", "repeat", "loopdata", "hold", "loopport", "save", "term",
}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", int(c))
}

// Instruction is one 10-bit microcode word. Field layout (LSB first):
//
//	bit 0   AddrInc  — advance the address generator after the operation
//	bit 1   AddrDown — descending address order (XORed with the
//	                   reference register's auxiliary order bit)
//	bit 2   DataInc  — step the data-background generator
//	bit 3   DataInv  — inverted test data (XORed with auxiliary data bit)
//	bit 4   CmpInv   — inverted compare polarity (XORed with auxiliary
//	                   compare bit)
//	bit 5   Read     — read enable
//	bit 6   Write    — write enable
//	bits 7-9 Cond    — condition/flow field
type Instruction struct {
	AddrInc  bool
	AddrDown bool
	DataInc  bool
	DataInv  bool
	CmpInv   bool
	Read     bool
	Write    bool
	Cond     Cond
}

// WordBits is the microcode word width (the paper's Y).
const WordBits = 10

// Encode packs the instruction into its 10-bit binary form.
func (in Instruction) Encode() uint16 {
	var w uint16
	set := func(bit int, v bool) {
		if v {
			w |= 1 << uint(bit)
		}
	}
	set(0, in.AddrInc)
	set(1, in.AddrDown)
	set(2, in.DataInc)
	set(3, in.DataInv)
	set(4, in.CmpInv)
	set(5, in.Read)
	set(6, in.Write)
	w |= uint16(in.Cond&7) << 7
	return w
}

// Decode unpacks a 10-bit word into an instruction.
func Decode(w uint16) Instruction {
	get := func(bit int) bool { return w>>uint(bit)&1 == 1 }
	return Instruction{
		AddrInc:  get(0),
		AddrDown: get(1),
		DataInc:  get(2),
		DataInv:  get(3),
		CmpInv:   get(4),
		Read:     get(5),
		Write:    get(6),
		Cond:     Cond(w >> 7 & 7),
	}
}

// String renders the instruction as a compact mnemonic, e.g.
// "r0 up hold" or "w1 up inc loopback".
func (in Instruction) String() string {
	var parts []string
	switch {
	case in.Read && in.Write:
		parts = append(parts, "rw?")
	case in.Read:
		parts = append(parts, "r"+b01(in.CmpInv))
	case in.Write:
		parts = append(parts, "w"+b01(in.DataInv))
	default:
		parts = append(parts, "--")
	}
	if in.AddrDown {
		parts = append(parts, "down")
	} else {
		parts = append(parts, "up")
	}
	if in.AddrInc {
		parts = append(parts, "inc")
	}
	if in.DataInc {
		parts = append(parts, "bg+")
	}
	parts = append(parts, in.Cond.String())
	return strings.Join(parts, " ")
}

func b01(v bool) string {
	if v {
		return "1"
	}
	return "0"
}

// Program is an assembled microcode program plus its source map.
type Program struct {
	Name         string
	Instructions []Instruction
	// Source maps each instruction to the (element, op) of the original
	// march algorithm it implements; flow-only instructions carry
	// Element = -1.
	Source []SourceRef
	// Folded records whether the assembler used the Repeat mechanism.
	Folded bool
	// FoldLen is the folded block's length in elements (0 when not
	// folded). During the Repeat pass, fail records attribute
	// operations to the mirrored elements by adding this offset.
	FoldLen int
}

// SourceRef locates an instruction's origin in the march algorithm.
type SourceRef struct {
	Element int
	Op      int
}

// Len returns the instruction count (the paper's Z requirement).
func (p *Program) Len() int { return len(p.Instructions) }

// Listing renders the program one instruction per line, numbered from 1
// like the paper's Fig. 2.
func (p *Program) Listing() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d instructions%s)\n", p.Name, p.Len(), foldNote(p.Folded))
	for i, in := range p.Instructions {
		fmt.Fprintf(&b, "%2d: %-24s ; %010b\n", i+1, in.String(), in.Encode())
	}
	return b.String()
}

func foldNote(folded bool) string {
	if folded {
		return ", folded"
	}
	return ""
}
