package microbist

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/gatesim"
	"repro/internal/march"
	"repro/internal/memory"
)

// buildUnit assembles the algorithm and generates the full BIST unit
// netlist (controller + datapath) for a size×width single-port memory.
func buildUnit(t *testing.T, alg march.Algorithm, addrBits, width int) *Hardware {
	t.Helper()
	p, err := Assemble(alg, AssembleOpts{WordOriented: width > 1, Multiport: true})
	if err != nil {
		t.Fatal(err)
	}
	hw, err := BuildHardware(p, HWConfig{
		Slots: p.Len(), AddrBits: addrBits, Width: width, Ports: 1,
		IncludeDatapath: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return hw
}

// TestGateLevelClosedLoop runs the complete microcode BIST unit — every
// gate of the controller, address generator, background generator and
// comparator — closed-loop against a behavioural memory, and requires
// the observed memory-operation stream to equal the march algorithm's
// canonical stream exactly.
func TestGateLevelClosedLoop(t *testing.T) {
	cases := []struct {
		alg   march.Algorithm
		width int
	}{
		{march.MATSPlus(), 1},
		{march.MarchC(), 1},
		{march.MarchA(), 1},
		{march.MarchC(), 4}, // word-oriented: exercises the background loop
	}
	const addrBits = 3
	size := 1 << addrBits
	for _, c := range cases {
		t.Run(c.alg.Name, func(t *testing.T) {
			hw := buildUnit(t, c.alg, addrBits, c.width)
			mem := memory.NewSRAM(size, c.width, 1)
			want := march.OpStream(c.alg, size, c.width)

			res, err := gatesim.RunBISTUnit(hw.Netlist, mem, 20*len(want)+200)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Ended {
				t.Fatalf("gate-level unit did not raise test_end in %d cycles (%d ops)", res.Cycles, len(res.Ops))
			}
			if res.Detected() {
				t.Fatalf("comparator flagged a clean memory at %v", res.MismatchAddrs)
			}
			if len(res.Ops) != len(want) {
				t.Fatalf("gate-level unit issued %d ops, want %d", len(res.Ops), len(want))
			}
			for i := range want {
				got := res.Ops[i]
				if got.Write != want[i].Write || got.Addr != want[i].Addr || got.Data != want[i].Data {
					t.Fatalf("op %d: gate %+v, golden %+v", i, got, want[i])
				}
			}
		})
	}
}

// TestGateLevelMultiport runs the unit against a dual-port 2-bit
// memory: the port loop, background loop and port-specific fault
// detection all at gate level.
func TestGateLevelMultiport(t *testing.T) {
	const addrBits, width, ports = 3, 2, 2
	size := 1 << addrBits
	alg := march.MarchC()
	p, err := Assemble(alg, AssembleOpts{WordOriented: true, Multiport: true})
	if err != nil {
		t.Fatal(err)
	}
	hw, err := BuildHardware(p, HWConfig{
		Slots: p.Len(), AddrBits: addrBits, Width: width, Ports: ports,
		IncludeDatapath: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	mem := memory.NewSRAM(size, width, ports)
	want := march.OpStreamPorts(alg, size, width, ports)
	res, err := gatesim.RunBISTUnit(hw.Netlist, mem, 20*len(want)+500)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ended || res.Detected() {
		t.Fatalf("clean multiport run: ended=%v mismatches=%v", res.Ended, res.MismatchAddrs)
	}
	if len(res.Ops) != len(want) {
		t.Fatalf("unit issued %d ops, want %d", len(res.Ops), len(want))
	}
	for i := range want {
		got := res.Ops[i]
		if got.Write != want[i].Write || got.Port != want[i].Port ||
			got.Addr != want[i].Addr || got.Data != want[i].Data {
			t.Fatalf("op %d: gate %+v, golden %+v", i, got, want[i])
		}
	}

	// A port-1-only read fault must be flagged.
	fmem := faults.NewInjected(size, width, ports, faults.Fault{
		Kind: faults.SA, Cell: 3 * width, Value: true, Port: 1,
	})
	res2, err := gatesim.RunBISTUnit(hw.Netlist, fmem, 20*len(want)+500)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Detected() {
		t.Error("gate-level unit missed a port-1 fault")
	}
}

// TestGateLevelDetectsFault injects a stuck-at fault and checks the
// gate-level comparator flags it at the same first address the
// reference runner reports.
func TestGateLevelDetectsFault(t *testing.T) {
	const addrBits = 3
	size := 1 << addrBits
	alg := march.MarchC()
	f := faults.Fault{Kind: faults.SA, Cell: 5, Value: true, Port: faults.AnyPort}

	hw := buildUnit(t, alg, addrBits, 1)
	mem := faults.NewInjected(size, 1, 1, f)
	res, err := gatesim.RunBISTUnit(hw.Netlist, mem, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ended {
		t.Fatal("unit did not finish")
	}
	if !res.Detected() {
		t.Fatal("gate-level comparator missed the fault")
	}

	oracle := faults.NewInjected(size, 1, 1, f)
	want, err := march.Run(alg, oracle, march.RunOpts{SinglePort: true, SingleBackground: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MismatchAddrs) != len(want.Fails) {
		t.Fatalf("gate mismatches %d, oracle fails %d", len(res.MismatchAddrs), len(want.Fails))
	}
	for i, addr := range res.MismatchAddrs {
		if addr != want.Fails[i].Addr {
			t.Errorf("mismatch %d at addr %d, oracle at %d", i, addr, want.Fails[i].Addr)
		}
	}
}
