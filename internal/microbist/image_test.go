package microbist

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/march"
)

func TestScanImageRoundTrip(t *testing.T) {
	for _, algf := range []func() march.Algorithm{march.MarchC, march.MarchAPlusPlus, march.MATSPlus} {
		alg := algf()
		p, err := Assemble(alg, AssembleOpts{WordOriented: true, Multiport: true})
		if err != nil {
			t.Fatal(err)
		}
		bits, err := p.ScanImage(32)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name, err)
		}
		if len(bits) != 32*WordBits {
			t.Fatalf("%s: image length %d", alg.Name, len(bits))
		}
		back, err := ProgramFromScanImage(alg.Name, bits)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name, err)
		}
		if back.Len() != p.Len() {
			t.Fatalf("%s: round trip %d instructions, want %d", alg.Name, back.Len(), p.Len())
		}
		for i := range p.Instructions {
			if back.Instructions[i] != p.Instructions[i] {
				t.Errorf("%s instruction %d: %v vs %v", alg.Name, i, back.Instructions[i], p.Instructions[i])
			}
		}
	}
}

func TestDecodedProgramBehavesIdentically(t *testing.T) {
	alg := march.MarchC()
	p, err := Assemble(alg, AssembleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	bits, err := p.ScanImage(p.Len())
	if err != nil {
		t.Fatal(err)
	}
	back, err := ProgramFromScanImage(alg.Name, bits)
	if err != nil {
		t.Fatal(err)
	}
	f := faults.Fault{Kind: faults.SA, Cell: 9, Value: true, Port: faults.AnyPort}

	memA := faults.NewInjected(16, 1, 1, f)
	ra, err := p.Run(memA, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	memB := faults.NewInjected(16, 1, 1, f)
	rb, err := back.Run(memB, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Cycles != rb.Cycles || ra.Operations != rb.Operations || ra.Signature != rb.Signature {
		t.Errorf("decoded program diverged: cycles %d/%d ops %d/%d sig %04x/%04x",
			ra.Cycles, rb.Cycles, ra.Operations, rb.Operations, ra.Signature, rb.Signature)
	}
	if len(ra.Fails) != len(rb.Fails) {
		t.Errorf("fail counts differ: %d vs %d", len(ra.Fails), len(rb.Fails))
	}
}

func TestScanImageTooSmall(t *testing.T) {
	p, _ := Assemble(march.MarchAPlusPlus(), AssembleOpts{WordOriented: true, Multiport: true})
	if _, err := p.ScanImage(8); err == nil {
		t.Error("oversized program accepted")
	}
}

func TestProgramFromScanImageErrors(t *testing.T) {
	if _, err := ProgramFromScanImage("bad", make([]bool, 7)); err == nil {
		t.Error("misaligned image accepted")
	}
	if _, err := ProgramFromScanImage("empty", make([]bool, 3*WordBits)); err == nil {
		t.Error("image with no terminator accepted")
	}
}

func TestWriteMemb(t *testing.T) {
	p, err := Assemble(march.MarchC(), AssembleOpts{WordOriented: true, Multiport: true})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := p.WriteMemb(&sb, 16); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 17 { // comment + 16 words
		t.Fatalf("memb has %d lines, want 17", len(lines))
	}
	// First data line is instruction 1: w0 up inc hold.
	want := "1001000001"
	if lines[1] != want {
		t.Errorf("word 0 = %s, want %s", lines[1], want)
	}
	// Padding rows are zero.
	if lines[16] != "0000000000" {
		t.Errorf("padding = %s", lines[16])
	}
}
