package microbist

import (
	"fmt"

	"repro/internal/march"
)

// AssembleOpts configures the assembler.
type AssembleOpts struct {
	// WordOriented emits the trailing data-background loop (the paper's
	// instruction 8), repeating the algorithm per background pattern.
	WordOriented bool
	// Multiport emits the trailing port loop (the paper's instruction
	// 9), repeating the whole test per port; it terminates the test at
	// the last port.
	Multiport bool
	// DisableFold suppresses the Repeat/reference-register symmetry
	// folding even when the algorithm is symmetric.
	DisableFold bool
}

// Assemble compiles a march algorithm into a microcode program.
//
// When the algorithm has a symmetric block starting at element 1 and the
// leading element compiles to a single instruction, the assembler folds
// the block with a Repeat instruction whose address-order/data/compare
// fields carry the fold mask — exactly the paper's Fig. 2 March C
// encoding (9 instructions with both word-oriented and multiport loops).
func Assemble(a march.Algorithm, opts AssembleOpts) (*Program, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	p := &Program{Name: a.Name}

	elems := a.Elements
	var fold march.Fold
	folded := false
	if !opts.DisableFold {
		if reduced, f, ok := a.Folded(); ok && foldEncodable(a, f) {
			elems = reduced.Elements
			fold = f
			folded = true
		}
	}

	for ei, e := range elems {
		srcElem := sourceElement(ei, fold, folded)
		emitElement(p, e, srcElem)
		if folded && ei == fold.Start+fold.Len-1 {
			// Close the folded block with the Repeat instruction
			// carrying the reference-register mask.
			p.emit(Instruction{
				AddrDown: fold.Mask.Order,
				DataInv:  fold.Mask.Data,
				CmpInv:   fold.Mask.Compare,
				Cond:     CondRepeat,
			}, SourceRef{Element: -1, Op: -1})
		}
	}
	p.Folded = folded
	if folded {
		p.FoldLen = fold.Len
	}

	if opts.WordOriented {
		p.emit(Instruction{DataInc: true, Cond: CondLoopData}, SourceRef{Element: -1, Op: -1})
	}
	if opts.Multiport {
		p.emit(Instruction{Cond: CondLoopPort}, SourceRef{Element: -1, Op: -1})
	} else {
		p.emit(Instruction{Cond: CondTerminate}, SourceRef{Element: -1, Op: -1})
	}

	if err := p.check(); err != nil {
		return nil, err
	}
	return p, nil
}

// foldEncodable reports whether the fold fits the Repeat instruction's
// hardwired branch target (instruction 1): the folded block must start
// at element 1 and element 0 must compile to exactly one instruction
// (single-op, no pause).
func foldEncodable(a march.Algorithm, f march.Fold) bool {
	return f.Start == 1 && len(a.Elements[0].Ops) == 1 && !a.Elements[0].PauseBefore
}

// sourceElement maps an element index of the folded program back to the
// original algorithm's element index.
func sourceElement(ei int, fold march.Fold, folded bool) int {
	if !folded || ei < fold.Start+fold.Len {
		return ei
	}
	return ei + fold.Len
}

func emitElement(p *Program, e march.Element, srcElem int) {
	down := e.Order == march.Down
	if e.PauseBefore {
		// A no-operation instruction models the retention delay phase.
		p.emit(Instruction{Cond: CondNop}, SourceRef{Element: srcElem, Op: -1})
	}
	if len(e.Ops) == 1 {
		in := opInstruction(e.Ops[0], down)
		in.AddrInc = true
		in.Cond = CondHold
		p.emit(in, SourceRef{Element: srcElem, Op: 0})
		return
	}
	for oi, op := range e.Ops {
		in := opInstruction(op, down)
		switch oi {
		case 0:
			in.Cond = CondSave
		case len(e.Ops) - 1:
			in.AddrInc = true
			in.Cond = CondLoopBack
		default:
			in.Cond = CondNop
		}
		p.emit(in, SourceRef{Element: srcElem, Op: oi})
	}
}

func opInstruction(op march.Op, down bool) Instruction {
	in := Instruction{AddrDown: down}
	if op.Kind == march.Read {
		in.Read = true
		in.CmpInv = op.Data
	} else {
		in.Write = true
		in.DataInv = op.Data
	}
	return in
}

func (p *Program) emit(in Instruction, src SourceRef) {
	p.Instructions = append(p.Instructions, in)
	p.Source = append(p.Source, src)
}

// check verifies internal consistency of the assembled program.
func (p *Program) check() error {
	if len(p.Instructions) != len(p.Source) {
		return fmt.Errorf("microbist: program %s source map out of sync", p.Name)
	}
	if len(p.Instructions) == 0 {
		return fmt.Errorf("microbist: program %s is empty", p.Name)
	}
	last := p.Instructions[len(p.Instructions)-1].Cond
	if last != CondTerminate && last != CondLoopPort {
		return fmt.Errorf("microbist: program %s does not end in terminate or port loop", p.Name)
	}
	for i, in := range p.Instructions {
		if in.Read && in.Write {
			return fmt.Errorf("microbist: instruction %d reads and writes simultaneously", i)
		}
		if in.Cond == CondRepeat && i < 2 {
			return fmt.Errorf("microbist: repeat instruction %d has no block to repeat", i)
		}
	}
	return nil
}
