package logic

import "math/bits"

// Log2Ceil returns the number of bits needed to represent n distinct
// values, i.e. ceil(log2(n)). Log2Ceil(0) and Log2Ceil(1) return 0.
func Log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// OnesCount returns the number of set bits in v.
func OnesCount(v uint64) int {
	return bits.OnesCount64(v)
}

// ReverseBits reverses the low n bits of v.
func ReverseBits(v uint64, n int) uint64 {
	var r uint64
	for i := 0; i < n; i++ {
		r <<= 1
		r |= (v >> i) & 1
	}
	return r
}

// GrayCode returns the i-th Gray code value.
func GrayCode(i uint64) uint64 {
	return i ^ (i >> 1)
}
