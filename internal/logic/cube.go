package logic

import (
	"sort"
	"strings"
)

// Cube is a product term over up to MaxInputs variables. A variable k
// appears in the term iff bit k of Mask is set; its required value is then
// bit k of Value. Bits of Value outside Mask must be zero.
type Cube struct {
	Value uint64 // literal polarities for variables in Mask
	Mask  uint64 // which variables are bound by this cube
}

// Covers reports whether the cube covers minterm m.
func (c Cube) Covers(m uint64) bool {
	return m&c.Mask == c.Value
}

// Contains reports whether cube c covers every minterm of cube d.
func (c Cube) Contains(d Cube) bool {
	// c contains d iff every variable bound by c is bound by d with the
	// same polarity.
	return c.Mask&d.Mask == c.Mask && d.Value&c.Mask == c.Value
}

// Literals returns the number of literals (bound variables) in the cube.
func (c Cube) Literals() int {
	return OnesCount(c.Mask)
}

// Combine attempts to merge two cubes that differ in exactly one bound
// variable, producing the cube with that variable freed. ok is false when
// the cubes are not adjacent.
func (c Cube) Combine(d Cube) (merged Cube, ok bool) {
	if c.Mask != d.Mask {
		return Cube{}, false
	}
	diff := c.Value ^ d.Value
	if OnesCount(diff) != 1 {
		return Cube{}, false
	}
	m := c.Mask &^ diff
	return Cube{Value: c.Value & m, Mask: m}, true
}

// String renders the cube over n variables as a position string, e.g.
// "1-0" (variable 0 is the leftmost character).
func (c Cube) StringN(n int) string {
	var b strings.Builder
	for k := 0; k < n; k++ {
		bit := uint64(1) << uint(k)
		switch {
		case c.Mask&bit == 0:
			b.WriteByte('-')
		case c.Value&bit != 0:
			b.WriteByte('1')
		default:
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Cover is a sum of product terms.
type Cover []Cube

// Eval evaluates the cover on input assignment in.
func (cv Cover) Eval(in uint64) bool {
	for _, c := range cv {
		if c.Covers(in) {
			return true
		}
	}
	return false
}

// Literals returns the total literal count of the cover.
func (cv Cover) Literals() int {
	n := 0
	for _, c := range cv {
		n += c.Literals()
	}
	return n
}

// Sort orders the cover deterministically (by mask, then value) so that
// synthesis output is reproducible run to run.
func (cv Cover) Sort() {
	sort.Slice(cv, func(i, j int) bool {
		if cv[i].Mask != cv[j].Mask {
			return cv[i].Mask < cv[j].Mask
		}
		return cv[i].Value < cv[j].Value
	})
}

// EquivalentTo reports whether the cover realises truth table t: it must
// evaluate to 1 on every minterm and to 0 on every maxterm; don't-care
// rows are unconstrained.
func (cv Cover) EquivalentTo(t *TruthTable) bool {
	for i := 0; i < t.NumRows(); i++ {
		switch t.Get(i) {
		case One:
			if !cv.Eval(uint64(i)) {
				return false
			}
		case Zero:
			if cv.Eval(uint64(i)) {
				return false
			}
		}
	}
	return true
}
