package logic

import "sort"

// Minimize computes a near-minimal sum-of-products cover of truth table t
// using the Quine-McCluskey procedure: prime implicant generation over the
// ON-set plus DC-set, essential prime selection, then a greedy set cover
// for the residue. The returned cover is deterministic for a given table.
//
// A constant function yields a nil cover (constant 0) or the single
// all-don't-care cube (constant 1).
func Minimize(t *TruthTable) Cover {
	on := t.Minterms()
	if len(on) == 0 {
		return nil
	}
	dc := t.DontCares()
	if len(on)+len(dc) == t.NumRows() {
		return Cover{{Value: 0, Mask: 0}} // constant one
	}
	primes := primeImplicants(on, dc, t.NumInputs())
	return selectCover(primes, on)
}

// primeImplicants generates all prime implicants of the function whose
// ON-set is on and DC-set is dc, over n variables.
func primeImplicants(on, dc []int, n int) []Cube {
	fullMask := uint64(1)<<uint(n) - 1
	if n == 0 {
		fullMask = 0
	}

	// Current generation of cubes, deduplicated.
	cur := make(map[Cube]bool, len(on)+len(dc))
	for _, m := range on {
		cur[Cube{Value: uint64(m), Mask: fullMask}] = true
	}
	for _, m := range dc {
		cur[Cube{Value: uint64(m), Mask: fullMask}] = true
	}

	var primes []Cube
	for len(cur) > 0 {
		// Group cubes by mask, then by popcount of value, so only
		// plausible neighbours are compared.
		combined := make(map[Cube]bool, len(cur))
		next := make(map[Cube]bool)

		byMask := make(map[uint64][]Cube)
		for c := range cur {
			byMask[c.Mask] = append(byMask[c.Mask], c)
		}
		for _, group := range byMask {
			sort.Slice(group, func(i, j int) bool { return group[i].Value < group[j].Value })
			// Index by popcount for adjacency pruning.
			byCount := make(map[int][]Cube)
			for _, c := range group {
				byCount[OnesCount(c.Value)] = append(byCount[OnesCount(c.Value)], c)
			}
			for cnt, lo := range byCount {
				hi := byCount[cnt+1]
				for _, a := range lo {
					for _, b := range hi {
						if m, ok := a.Combine(b); ok {
							next[m] = true
							combined[a] = true
							combined[b] = true
						}
					}
				}
			}
		}
		// Cubes that combined with nothing are prime.
		for c := range cur {
			if !combined[c] {
				primes = append(primes, c)
			}
		}
		cur = next
	}
	Cover(primes).Sort()
	return primes
}

// selectCover picks a small subset of primes covering every ON-set
// minterm: essential primes first, then greedy largest-cover selection.
func selectCover(primes []Cube, on []int) Cover {
	uncovered := make(map[int]bool, len(on))
	for _, m := range on {
		uncovered[m] = true
	}
	coveredBy := make(map[int][]int, len(on)) // minterm -> prime indices
	for pi, p := range primes {
		for _, m := range on {
			if p.Covers(uint64(m)) {
				coveredBy[m] = append(coveredBy[m], pi)
			}
		}
	}

	chosen := make(map[int]bool)
	// Essential primes: a minterm covered by exactly one prime forces it.
	for _, m := range on {
		if len(coveredBy[m]) == 1 {
			chosen[coveredBy[m][0]] = true
		}
	}
	for pi := range chosen {
		for _, m := range on {
			if primes[pi].Covers(uint64(m)) {
				delete(uncovered, m)
			}
		}
	}

	// Greedy: repeatedly take the prime covering the most remaining
	// minterms; ties broken by fewer literals, then by index for
	// determinism.
	for len(uncovered) > 0 {
		best, bestGain := -1, -1
		for pi, p := range primes {
			if chosen[pi] {
				continue
			}
			gain := 0
			for m := range uncovered {
				if p.Covers(uint64(m)) {
					gain++
				}
			}
			if gain == 0 {
				continue
			}
			if gain > bestGain ||
				(gain == bestGain && p.Literals() < primes[best].Literals()) ||
				(gain == bestGain && p.Literals() == primes[best].Literals() && pi < best) {
				best, bestGain = pi, gain
			}
		}
		if best < 0 {
			break // unreachable if primes cover the ON-set
		}
		chosen[best] = true
		for m := range uncovered {
			if primes[best].Covers(uint64(m)) {
				delete(uncovered, m)
			}
		}
	}

	var cover Cover
	for pi := range chosen {
		cover = append(cover, primes[pi])
	}
	cover.Sort()
	return cover
}
