package logic

import "testing"

func TestLog2Ceil(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{16, 4}, {17, 5}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := Log2Ceil(c.n); got != c.want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false, want true", n)
		}
	}
	for _, n := range []int{0, -1, 3, 5, 6, 7, 9, 1023} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true, want false", n)
		}
	}
}

func TestReverseBits(t *testing.T) {
	if got := ReverseBits(0b001, 3); got != 0b100 {
		t.Errorf("ReverseBits(001,3) = %03b, want 100", got)
	}
	if got := ReverseBits(0b1101, 4); got != 0b1011 {
		t.Errorf("ReverseBits(1101,4) = %04b, want 1011", got)
	}
	// Double reversal is identity.
	for v := uint64(0); v < 64; v++ {
		if got := ReverseBits(ReverseBits(v, 6), 6); got != v {
			t.Fatalf("double ReverseBits(%d) = %d", v, got)
		}
	}
}

func TestGrayCode(t *testing.T) {
	// Successive Gray codes differ in exactly one bit.
	for i := uint64(0); i < 255; i++ {
		d := GrayCode(i) ^ GrayCode(i+1)
		if OnesCount(d) != 1 {
			t.Fatalf("GrayCode(%d) and GrayCode(%d) differ in %d bits", i, i+1, OnesCount(d))
		}
	}
}
