package logic

import (
	"fmt"
	"strings"
)

// Value is a three-valued logic value used in truth tables: 0, 1 or
// don't-care.
type Value uint8

// Truth-table output values.
const (
	Zero Value = iota
	One
	DontCare
)

func (v Value) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	default:
		return "-"
	}
}

// TruthTable is a single-output boolean function of NumInputs variables
// with explicit don't-care rows. Row index i encodes the input assignment
// where bit k of i is the value of input variable k.
type TruthTable struct {
	numInputs int
	rows      []Value
}

// NewTruthTable returns a truth table of n inputs with every row set to
// Zero. n must be in [0, MaxInputs].
func NewTruthTable(n int) *TruthTable {
	if n < 0 || n > MaxInputs {
		panic(fmt.Sprintf("logic: truth table inputs %d out of range [0,%d]", n, MaxInputs))
	}
	return &TruthTable{numInputs: n, rows: make([]Value, 1<<uint(n))}
}

// MaxInputs bounds the truth-table size; 2^16 rows is ample for the
// controller-scale synthesis problems in this repository.
const MaxInputs = 16

// NumInputs returns the number of input variables.
func (t *TruthTable) NumInputs() int { return t.numInputs }

// NumRows returns 2^NumInputs.
func (t *TruthTable) NumRows() int { return len(t.rows) }

// Set assigns value v to row i.
func (t *TruthTable) Set(i int, v Value) {
	t.rows[i] = v
}

// SetBool assigns boolean b to row i.
func (t *TruthTable) SetBool(i int, b bool) {
	if b {
		t.rows[i] = One
	} else {
		t.rows[i] = Zero
	}
}

// Get returns the value of row i.
func (t *TruthTable) Get(i int) Value { return t.rows[i] }

// Minterms returns the row indices whose value is One.
func (t *TruthTable) Minterms() []int {
	var m []int
	for i, v := range t.rows {
		if v == One {
			m = append(m, i)
		}
	}
	return m
}

// DontCares returns the row indices whose value is DontCare.
func (t *TruthTable) DontCares() []int {
	var m []int
	for i, v := range t.rows {
		if v == DontCare {
			m = append(m, i)
		}
	}
	return m
}

// IsConstant reports whether the care-set of the function is constant,
// and if so which constant it can be implemented as. A function whose
// care-set is empty is constant Zero.
func (t *TruthTable) IsConstant() (constant bool, value bool) {
	sawZero, sawOne := false, false
	for _, v := range t.rows {
		switch v {
		case Zero:
			sawZero = true
		case One:
			sawOne = true
		}
	}
	switch {
	case !sawOne:
		return true, false
	case !sawZero:
		return true, true
	default:
		return false, false
	}
}

// Eval evaluates the function on the input assignment encoded in bits of
// in, treating don't-care rows as Zero.
func (t *TruthTable) Eval(in uint64) bool {
	return t.rows[in&uint64(len(t.rows)-1)] == One
}

// String renders the table in minterm-list form, e.g. "f(3) = Σm(1,2,4) + d(7)".
func (t *TruthTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "f(%d) = Σm(", t.numInputs)
	for i, m := range t.Minterms() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", m)
	}
	b.WriteByte(')')
	if dc := t.DontCares(); len(dc) > 0 {
		b.WriteString(" + d(")
		for i, m := range dc {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", m)
		}
		b.WriteByte(')')
	}
	return b.String()
}
