package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// tableFromFunc builds a truth table of n inputs from a boolean function.
func tableFromFunc(n int, f func(uint64) bool) *TruthTable {
	t := NewTruthTable(n)
	for i := 0; i < t.NumRows(); i++ {
		t.SetBool(i, f(uint64(i)))
	}
	return t
}

func TestMinimizeConstants(t *testing.T) {
	zero := NewTruthTable(3)
	if cv := Minimize(zero); cv != nil {
		t.Errorf("Minimize(const 0) = %v, want nil", cv)
	}

	one := NewTruthTable(3)
	for i := 0; i < one.NumRows(); i++ {
		one.Set(i, One)
	}
	cv := Minimize(one)
	if len(cv) != 1 || cv[0].Mask != 0 {
		t.Errorf("Minimize(const 1) = %v, want single empty cube", cv)
	}
}

func TestMinimizeXOR(t *testing.T) {
	// XOR has no adjacent minterms: cover must keep all 2^(n-1) cubes.
	tt := tableFromFunc(3, func(in uint64) bool {
		return OnesCount(in&0b111)%2 == 1
	})
	cv := Minimize(tt)
	if len(cv) != 4 {
		t.Errorf("3-input XOR cover has %d cubes, want 4", len(cv))
	}
	if !cv.EquivalentTo(tt) {
		t.Errorf("XOR cover not equivalent to table")
	}
}

func TestMinimizeAbsorbsDontCares(t *testing.T) {
	// Classic 4-variable example: f = Σm(1,3,7,11,15) + d(0,2,5).
	tt := NewTruthTable(4)
	for _, m := range []int{1, 3, 7, 11, 15} {
		tt.Set(m, One)
	}
	for _, m := range []int{0, 2, 5} {
		tt.Set(m, DontCare)
	}
	cv := Minimize(tt)
	if !cv.EquivalentTo(tt) {
		t.Fatalf("cover %v not equivalent to %v", cv, tt)
	}
	// Known minimal solution has 2 terms (x3x4 + x1'x2' style).
	if len(cv) > 2 {
		t.Errorf("cover has %d terms, want <= 2 (classic QM example)", len(cv))
	}
}

func TestMinimizeSingleVariable(t *testing.T) {
	tt := tableFromFunc(4, func(in uint64) bool { return in&0b0100 != 0 })
	cv := Minimize(tt)
	if len(cv) != 1 || cv[0].Literals() != 1 {
		t.Errorf("single-variable function minimised to %v", cv)
	}
	if !cv.EquivalentTo(tt) {
		t.Errorf("cover not equivalent")
	}
}

func TestMinimizeMajority(t *testing.T) {
	tt := tableFromFunc(3, func(in uint64) bool { return OnesCount(in&7) >= 2 })
	cv := Minimize(tt)
	if !cv.EquivalentTo(tt) {
		t.Fatalf("majority cover wrong")
	}
	if len(cv) != 3 {
		t.Errorf("majority-of-3 cover has %d cubes, want 3", len(cv))
	}
	for _, c := range cv {
		if c.Literals() != 2 {
			t.Errorf("majority cube %v has %d literals, want 2", c, c.Literals())
		}
	}
}

// TestMinimizeRandomEquivalence is the core property test: for random
// functions with don't-cares, the minimised cover must agree with the
// table on its entire care-set, and be no larger than the minterm count.
func TestMinimizeRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(7) // 1..7 inputs
		tt := NewTruthTable(n)
		onCount := 0
		for i := 0; i < tt.NumRows(); i++ {
			switch rng.Intn(4) {
			case 0, 1:
				tt.Set(i, Zero)
			case 2:
				tt.Set(i, One)
				onCount++
			case 3:
				tt.Set(i, DontCare)
			}
		}
		cv := Minimize(tt)
		if !cv.EquivalentTo(tt) {
			t.Fatalf("trial %d: cover %v not equivalent to %v", trial, cv, tt)
		}
		if len(cv) > onCount {
			t.Fatalf("trial %d: cover has %d cubes for %d minterms", trial, len(cv), onCount)
		}
	}
}

func TestMinimizeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tt := NewTruthTable(6)
	for i := 0; i < tt.NumRows(); i++ {
		tt.Set(i, Value(rng.Intn(3)))
	}
	first := Minimize(tt)
	for k := 0; k < 5; k++ {
		again := Minimize(tt)
		if len(again) != len(first) {
			t.Fatalf("run %d: %d cubes vs %d", k, len(again), len(first))
		}
		for i := range again {
			if again[i] != first[i] {
				t.Fatalf("run %d: cube %d differs: %v vs %v", k, i, again[i], first[i])
			}
		}
	}
}

func TestCubeCombine(t *testing.T) {
	a := Cube{Value: 0b101, Mask: 0b111}
	b := Cube{Value: 0b100, Mask: 0b111}
	m, ok := a.Combine(b)
	if !ok {
		t.Fatal("adjacent cubes did not combine")
	}
	if m.Mask != 0b110 || m.Value != 0b100 {
		t.Errorf("combined = %v", m)
	}
	// Non-adjacent.
	c := Cube{Value: 0b010, Mask: 0b111}
	if _, ok := a.Combine(c); ok {
		t.Error("non-adjacent cubes combined")
	}
	// Different masks never combine.
	d := Cube{Value: 0b100, Mask: 0b110}
	if _, ok := a.Combine(d); ok {
		t.Error("different-mask cubes combined")
	}
}

func TestCubeContains(t *testing.T) {
	big := Cube{Value: 0b100, Mask: 0b100}   // x2
	small := Cube{Value: 0b101, Mask: 0b111} // x2 x1' x0
	if !big.Contains(small) {
		t.Error("x2 should contain x2x1'x0")
	}
	if small.Contains(big) {
		t.Error("x2x1'x0 should not contain x2")
	}
}

func TestCubeCoversProperty(t *testing.T) {
	// Property: Combine yields a cube covering exactly the minterms of
	// both parents.
	f := func(val uint16, flip uint8) bool {
		v := uint64(val) & 0xff
		bit := uint64(1) << (uint(flip) % 8)
		a := Cube{Value: v, Mask: 0xff}
		b := Cube{Value: v ^ bit, Mask: 0xff}
		m, ok := a.Combine(b)
		if !ok {
			return false
		}
		for x := uint64(0); x < 256; x++ {
			want := a.Covers(x) || b.Covers(x)
			if m.Covers(x) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTruthTableString(t *testing.T) {
	tt := NewTruthTable(2)
	tt.Set(1, One)
	tt.Set(3, DontCare)
	got := tt.String()
	want := "f(2) = Σm(1) + d(3)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestCubeStringN(t *testing.T) {
	c := Cube{Value: 0b001, Mask: 0b011}
	if got := c.StringN(3); got != "10-" {
		t.Errorf("StringN = %q, want \"10-\"", got)
	}
}

func TestIsConstant(t *testing.T) {
	tt := NewTruthTable(2)
	if c, v := tt.IsConstant(); !c || v {
		t.Error("all-zero table should be constant 0")
	}
	tt.Set(0, DontCare)
	if c, v := tt.IsConstant(); !c || v {
		t.Error("zero+dc table should be constant 0")
	}
	tt.Set(1, One)
	tt.Set(2, One)
	tt.Set(3, One)
	if c, v := tt.IsConstant(); !c || !v {
		t.Error("one+dc table should be constant 1")
	}
	tt.Set(2, Zero)
	if c, _ := tt.IsConstant(); c {
		t.Error("mixed table should not be constant")
	}
}
