// Package logic provides a small boolean-function toolkit used to
// synthesise the control logic of the memory BIST architectures: truth
// tables with don't-cares, cube covers, Quine-McCluskey two-level
// minimisation, and a NAND-NAND technology-independent cost model.
//
// The package is deliberately sized for controller-scale problems (up to
// ~14 input variables); it is not a general-purpose logic synthesiser.
package logic
