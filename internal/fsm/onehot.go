package fsm

import (
	"fmt"

	"repro/internal/netlist"
)

// SynthesiseOneHot builds a one-hot-encoded realisation of the spec:
// one flip-flop per state, next-state logic built directly from the
// transition guards (no boolean minimisation needed), outputs as OR
// trees over the asserting states. One-hot machines trade register
// count for simpler next-state logic — the classic encoding choice a
// synthesis tool makes; the benchmark suite compares it against the
// binary encoding for the hardwired BIST controllers.
func SynthesiseOneHot(sp *Spec) (*Synthesised, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	nl := netlist.New(sp.Name + "-onehot")
	syn := &Synthesised{
		Spec:      sp,
		Netlist:   nl,
		InputNet:  make(map[string]netlist.NetID, sp.Inputs.Len()),
		OutputNet: make(map[string]netlist.NetID, len(sp.Outputs)),
	}
	for _, name := range sp.Inputs.Names() {
		syn.InputNet[name] = nl.AddInput(name)
	}

	n := len(sp.States)
	state := make([]netlist.NetID, n)
	for i := range state {
		state[i] = nl.AddFF(netlist.CellDFF, nl.Const0(), i == sp.Reset)
		nl.SetNetName(state[i], fmt.Sprintf("oh_state[%d]", i))
	}
	syn.StateQ = state

	// guardNet builds the product term of a guard over the inputs.
	guardNet := func(g Guard) netlist.NetID {
		lits := []netlist.NetID{}
		for b := 0; b < sp.Inputs.Len(); b++ {
			bit := uint64(1) << uint(b)
			if g.Mask&bit == 0 {
				continue
			}
			in := syn.InputNet[sp.Inputs.Names()[b]]
			if g.Value&bit != 0 {
				lits = append(lits, in)
			} else {
				lits = append(lits, nl.Inv(in))
			}
		}
		return nl.AndN(lits...)
	}

	// Collect entry terms per target state.
	into := make([][]netlist.NetID, n)
	for i, st := range sp.States {
		remaining := nl.Const1()
		for _, tr := range st.Transitions {
			g := guardNet(tr.Guard)
			take := nl.AndN(state[i], remaining, g)
			into[tr.Next] = append(into[tr.Next], take)
			remaining = nl.And2(remaining, nl.Inv(g))
		}
		// No transition matched: hold the state.
		into[i] = append(into[i], nl.And2(state[i], remaining))
	}
	for i := range state {
		nl.SetFFInput(state[i], nl.OrN(into[i]...))
	}

	// Moore outputs: OR of the asserting states.
	for _, name := range sp.Outputs {
		var terms []netlist.NetID
		for i, st := range sp.States {
			if st.Outputs[name] {
				terms = append(terms, state[i])
			}
		}
		out := nl.OrN(terms...)
		syn.OutputNet[name] = out
		nl.AddOutput(name, out)
	}
	return syn, nil
}

// OneHotState decodes a one-hot state vector to its index; ok is false
// when the vector is not one-hot (an illegal machine state).
func OneHotState(bits uint64, n int) (int, bool) {
	idx := -1
	for i := 0; i < n; i++ {
		if bits>>uint(i)&1 == 1 {
			if idx >= 0 {
				return -1, false
			}
			idx = i
		}
	}
	if idx < 0 {
		return -1, false
	}
	return idx, true
}
