package fsm

import (
	"math/rand"
	"testing"

	"repro/internal/gatesim"
	"repro/internal/netlist"
)

func TestOneHotMatchesMachine(t *testing.T) {
	sp := trafficLight()
	syn, err := SynthesiseOneHot(sp)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := gatesim.New(syn.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(sp)
	rng := rand.New(rand.NewSource(13))
	for cycle := 0; cycle < 200; cycle++ {
		in := uint64(rng.Intn(2))
		sim.Set(syn.InputNet["go"], in == 1)
		sim.Eval()
		idx, ok := OneHotState(sim.GetBus(syn.StateQ), len(sp.States))
		if !ok {
			t.Fatalf("cycle %d: state vector %b not one-hot", cycle, sim.GetBus(syn.StateQ))
		}
		if idx != m.State() {
			t.Fatalf("cycle %d: one-hot state %d, machine %d", cycle, idx, m.State())
		}
		for _, o := range sp.Outputs {
			if sim.Get(syn.OutputNet[o]) != m.Output(o) {
				t.Fatalf("cycle %d: output %s mismatch", cycle, o)
			}
		}
		sim.Step()
		m.Step(in)
	}
}

func TestOneHotRandomSpecEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 20; trial++ {
		sp := randomSpec(rng, 2+rng.Intn(6), 1+rng.Intn(3))
		syn, err := SynthesiseOneHot(sp)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := gatesim.New(syn.Netlist)
		if err != nil {
			t.Fatal(err)
		}
		m := NewMachine(sp)
		for cycle := 0; cycle < 80; cycle++ {
			in := uint64(rng.Intn(1 << uint(sp.Inputs.Len())))
			for _, name := range sp.Inputs.Names() {
				sim.Set(syn.InputNet[name], in>>uint(sp.Inputs.Bit(name))&1 == 1)
			}
			sim.Eval()
			idx, ok := OneHotState(sim.GetBus(syn.StateQ), len(sp.States))
			if !ok || idx != m.State() {
				t.Fatalf("trial %d cycle %d: one-hot %d (ok=%v), machine %d", trial, cycle, idx, ok, m.State())
			}
			sim.Step()
			m.Step(in)
		}
	}
}

func TestOneHotMoreFFsFewerGates(t *testing.T) {
	// The classic trade-off: one-hot uses more flip-flops; binary uses
	// more combinational logic per state bit.
	sp := trafficLight()
	bin, err := Synthesise(sp)
	if err != nil {
		t.Fatal(err)
	}
	oh, err := SynthesiseOneHot(sp)
	if err != nil {
		t.Fatal(err)
	}
	bs := bin.Netlist.StatsFor(&netlist.CMOS5SLike)
	os := oh.Netlist.StatsFor(&netlist.CMOS5SLike)
	if os.FlipFlops <= bs.FlipFlops {
		t.Errorf("one-hot FFs %d <= binary FFs %d", os.FlipFlops, bs.FlipFlops)
	}
}

func TestOneHotStateDecode(t *testing.T) {
	if idx, ok := OneHotState(0b0100, 4); !ok || idx != 2 {
		t.Errorf("decode(0100) = %d,%v", idx, ok)
	}
	if _, ok := OneHotState(0b0110, 4); ok {
		t.Error("two-hot accepted")
	}
	if _, ok := OneHotState(0, 4); ok {
		t.Error("zero-hot accepted")
	}
}
