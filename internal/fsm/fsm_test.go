package fsm

import (
	"math/rand"
	"testing"

	"repro/internal/gatesim"
	"repro/internal/netlist"
)

// trafficLight builds a small 3-state machine with one input, used across
// the unit tests: green -> yellow (always), yellow -> red (always),
// red -> green when "go" is asserted.
func trafficLight() *Spec {
	in := NewInputSet("go")
	return &Spec{
		Name:    "traffic",
		Inputs:  in,
		Outputs: []string{"stop", "caution"},
		States: []State{
			{Name: "green", Transitions: []Transition{{Always, 1}}},
			{Name: "yellow", Outputs: map[string]bool{"caution": true}, Transitions: []Transition{{Always, 2}}},
			{Name: "red", Outputs: map[string]bool{"stop": true}, Transitions: []Transition{{in.If("go", true), 0}}},
		},
	}
}

func TestMachineStepping(t *testing.T) {
	sp := trafficLight()
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(sp)
	if m.StateName() != "green" {
		t.Fatalf("reset state = %s", m.StateName())
	}
	m.Step(0)
	if m.StateName() != "yellow" || !m.Output("caution") {
		t.Fatalf("after 1 step: %s caution=%v", m.StateName(), m.Output("caution"))
	}
	m.Step(0)
	if m.StateName() != "red" || !m.Output("stop") {
		t.Fatalf("after 2 steps: %s", m.StateName())
	}
	// Holds in red until go.
	m.Step(0)
	if m.StateName() != "red" {
		t.Fatalf("red did not hold: %s", m.StateName())
	}
	m.Step(1)
	if m.StateName() != "green" {
		t.Fatalf("go did not return to green: %s", m.StateName())
	}
}

func TestGuardAnd(t *testing.T) {
	in := NewInputSet("a", "b", "c")
	g := in.If("a", true).And(in.If("c", false))
	if !g.Holds(0b001) || g.Holds(0b101) || g.Holds(0b000) {
		t.Errorf("guard a&!c misbehaves")
	}
	defer func() {
		if recover() == nil {
			t.Error("contradictory guard did not panic")
		}
	}()
	_ = in.If("a", true).And(in.If("a", false))
}

func TestValidateErrors(t *testing.T) {
	in := NewInputSet("x")
	bad := &Spec{Name: "bad", Inputs: in, States: []State{
		{Name: "s0", Transitions: []Transition{{Always, 5}}},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range transition accepted")
	}
	bad2 := &Spec{Name: "bad2", Inputs: in, States: []State{
		{Name: "s0", Outputs: map[string]bool{"nope": true}},
	}}
	if err := bad2.Validate(); err == nil {
		t.Error("undeclared output accepted")
	}
	empty := &Spec{Name: "empty", Inputs: in}
	if err := empty.Validate(); err == nil {
		t.Error("empty spec accepted")
	}
}

// TestSynthesisedMatchesMachine drives the behavioural machine and the
// synthesised netlist with the same random input streams and checks state
// and outputs agree every cycle.
func TestSynthesisedMatchesMachine(t *testing.T) {
	sp := trafficLight()
	syn, err := Synthesise(sp)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := gatesim.New(syn.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(sp)
	rng := rand.New(rand.NewSource(5))
	for cycle := 0; cycle < 300; cycle++ {
		in := uint64(rng.Intn(2))
		sim.Set(syn.InputNet["go"], in == 1)
		sim.Eval()
		if got := int(sim.GetBus(syn.StateQ)); got != m.State() {
			t.Fatalf("cycle %d: netlist state %d, machine state %d", cycle, got, m.State())
		}
		for _, o := range sp.Outputs {
			if sim.Get(syn.OutputNet[o]) != m.Output(o) {
				t.Fatalf("cycle %d: output %s mismatch", cycle, o)
			}
		}
		sim.Step()
		m.Step(in)
	}
}

// randomSpec builds a random but valid Moore machine for the equivalence
// property test.
func randomSpec(rng *rand.Rand, nStates, nInputs int) *Spec {
	names := make([]string, nInputs)
	for i := range names {
		names[i] = "i" + string(rune('0'+i))
	}
	in := NewInputSet(names...)
	sp := &Spec{Name: "rand", Inputs: in, Outputs: []string{"o0", "o1"}}
	for s := 0; s < nStates; s++ {
		st := State{Name: "s" + string(rune('0'+s)), Outputs: map[string]bool{
			"o0": rng.Intn(2) == 1,
			"o1": rng.Intn(2) == 1,
		}}
		nTrans := rng.Intn(3)
		for k := 0; k < nTrans; k++ {
			mask := uint64(rng.Intn(1 << uint(nInputs)))
			val := uint64(rng.Intn(1<<uint(nInputs))) & mask
			st.Transitions = append(st.Transitions, Transition{
				Guard: Guard{Value: val, Mask: mask},
				Next:  rng.Intn(nStates),
			})
		}
		sp.States = append(sp.States, st)
	}
	return sp
}

func TestRandomSpecEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		sp := randomSpec(rng, 2+rng.Intn(6), 1+rng.Intn(3))
		syn, err := Synthesise(sp)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := gatesim.New(syn.Netlist)
		if err != nil {
			t.Fatal(err)
		}
		m := NewMachine(sp)
		for cycle := 0; cycle < 100; cycle++ {
			in := uint64(rng.Intn(1 << uint(sp.Inputs.Len())))
			for _, name := range sp.Inputs.Names() {
				sim.Set(syn.InputNet[name], in>>uint(sp.Inputs.Bit(name))&1 == 1)
			}
			sim.Eval()
			if got := int(sim.GetBus(syn.StateQ)); got != m.State() {
				t.Fatalf("trial %d cycle %d: state %d vs %d", trial, cycle, got, m.State())
			}
			sim.Step()
			m.Step(in)
		}
	}
}

func TestSynthesiseIntoSharedNetlist(t *testing.T) {
	sp := trafficLight()
	nl := netlist.New("parent")
	goNet := nl.AddInput("go")
	syn, err := SynthesiseInto(sp, nl, "tl_")
	if err != nil {
		t.Fatal(err)
	}
	if syn.InputNet["go"] != goNet {
		t.Error("SynthesiseInto did not reuse the existing input net")
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStateBits(t *testing.T) {
	in := NewInputSet()
	mk := func(n int) *Spec {
		sp := &Spec{Name: "n", Inputs: in}
		for i := 0; i < n; i++ {
			sp.States = append(sp.States, State{Name: "s"})
		}
		return sp
	}
	cases := []struct{ states, bits int }{{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {17, 5}}
	for _, c := range cases {
		if got := mk(c.states).StateBits(); got != c.bits {
			t.Errorf("StateBits(%d states) = %d, want %d", c.states, got, c.bits)
		}
	}
}

func TestResetStateEncoded(t *testing.T) {
	// A machine whose reset state is not state 0 must come out of reset
	// in the right state.
	in := NewInputSet("x")
	sp := &Spec{
		Name: "rst", Inputs: in, Outputs: []string{"o"},
		Reset: 2,
		States: []State{
			{Name: "a", Transitions: []Transition{{Always, 1}}},
			{Name: "b", Transitions: []Transition{{Always, 2}}},
			{Name: "c", Outputs: map[string]bool{"o": true}, Transitions: []Transition{{Always, 0}}},
		},
	}
	syn, err := Synthesise(sp)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := gatesim.New(syn.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.GetBus(syn.StateQ); got != 2 {
		t.Fatalf("reset state code = %d, want 2", got)
	}
	if !sim.Get(syn.OutputNet["o"]) {
		t.Error("reset-state output not asserted")
	}
}
