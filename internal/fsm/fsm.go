// Package fsm models Moore finite state machines and synthesises them to
// gate-level netlists (binary state encoding, Quine-McCluskey next-state
// and output logic). It is the engine behind both the hardwired
// (non-programmable) March controllers and the lower-level controller of
// the programmable FSM-based BIST architecture.
package fsm

import (
	"fmt"

	"repro/internal/logic"
)

// Guard is a condition over the FSM inputs, expressed as a cube: the
// guard holds when (inputs & Mask) == Value. The zero Guard always holds.
type Guard struct {
	Value uint64
	Mask  uint64
}

// Always is the guard that holds for every input assignment.
var Always = Guard{}

// Holds reports whether the guard matches the input assignment.
func (g Guard) Holds(inputs uint64) bool {
	return inputs&g.Mask == g.Value
}

// InputSet tracks named input signals and builds guards over them.
type InputSet struct {
	names []string
	index map[string]int
}

// NewInputSet returns an input set over the given signal names.
func NewInputSet(names ...string) *InputSet {
	s := &InputSet{names: append([]string(nil), names...), index: make(map[string]int)}
	for i, n := range names {
		if _, dup := s.index[n]; dup {
			panic("fsm: duplicate input name " + n)
		}
		s.index[n] = i
	}
	return s
}

// Names returns the input names in bit order.
func (s *InputSet) Names() []string { return s.names }

// Len returns the number of inputs.
func (s *InputSet) Len() int { return len(s.names) }

// Has reports whether the set declares the named input.
func (s *InputSet) Has(name string) bool {
	_, ok := s.index[name]
	return ok
}

// Bit returns the bit position of a named input.
func (s *InputSet) Bit(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic("fsm: unknown input " + name)
	}
	return i
}

// If builds a guard requiring the named input to have value v.
func (s *InputSet) If(name string, v bool) Guard {
	bit := uint64(1) << uint(s.Bit(name))
	g := Guard{Mask: bit}
	if v {
		g.Value = bit
	}
	return g
}

// And conjoins two guards; conflicting requirements panic (the guard
// would be unsatisfiable, always a spec bug).
func (g Guard) And(h Guard) Guard {
	common := g.Mask & h.Mask
	if g.Value&common != h.Value&common {
		panic("fsm: contradictory guard conjunction")
	}
	return Guard{Value: g.Value | h.Value, Mask: g.Mask | h.Mask}
}

// Transition is one outgoing edge of a state. Transitions are evaluated
// in declaration order; the first whose guard holds is taken. If none
// holds the machine stays in its current state.
type Transition struct {
	Guard Guard
	Next  int
}

// State is one Moore state: a name, the outputs asserted while in it,
// and its outgoing transitions.
type State struct {
	Name        string
	Outputs     map[string]bool
	Transitions []Transition
}

// Spec is a complete Moore machine description.
type Spec struct {
	Name    string
	Inputs  *InputSet
	Outputs []string
	States  []State
	Reset   int // reset state index
}

// Validate checks structural consistency of the spec.
func (sp *Spec) Validate() error {
	if len(sp.States) == 0 {
		return fmt.Errorf("fsm %s: no states", sp.Name)
	}
	if sp.Reset < 0 || sp.Reset >= len(sp.States) {
		return fmt.Errorf("fsm %s: reset state %d out of range", sp.Name, sp.Reset)
	}
	outs := make(map[string]bool, len(sp.Outputs))
	for _, o := range sp.Outputs {
		if outs[o] {
			return fmt.Errorf("fsm %s: duplicate output %s", sp.Name, o)
		}
		outs[o] = true
	}
	for _, st := range sp.States {
		for o := range st.Outputs {
			if !outs[o] {
				return fmt.Errorf("fsm %s: state %s asserts undeclared output %s", sp.Name, st.Name, o)
			}
		}
		for ti, tr := range st.Transitions {
			if tr.Next < 0 || tr.Next >= len(sp.States) {
				return fmt.Errorf("fsm %s: state %s transition %d targets state %d out of range", sp.Name, st.Name, ti, tr.Next)
			}
			maxMask := uint64(1)<<uint(sp.Inputs.Len()) - 1
			if sp.Inputs.Len() == 0 {
				maxMask = 0
			}
			if tr.Guard.Mask&^maxMask != 0 {
				return fmt.Errorf("fsm %s: state %s transition %d guard uses undeclared input bits", sp.Name, st.Name, ti)
			}
		}
	}
	return nil
}

// NextState returns the successor of state si under the input assignment.
func (sp *Spec) NextState(si int, inputs uint64) int {
	for _, tr := range sp.States[si].Transitions {
		if tr.Guard.Holds(inputs) {
			return tr.Next
		}
	}
	return si
}

// Machine is a behavioural executor of a Spec.
type Machine struct {
	Spec  *Spec
	state int
}

// NewMachine returns an executor positioned in the reset state.
func NewMachine(sp *Spec) *Machine {
	return &Machine{Spec: sp, state: sp.Reset}
}

// Reset returns the machine to its reset state.
func (m *Machine) Reset() { m.state = m.Spec.Reset }

// State returns the current state index.
func (m *Machine) State() int { return m.state }

// StateName returns the current state's name.
func (m *Machine) StateName() string { return m.Spec.States[m.state].Name }

// Output returns the Moore output value in the current state.
func (m *Machine) Output(name string) bool {
	return m.Spec.States[m.state].Outputs[name]
}

// Step advances one cycle under the given input assignment.
func (m *Machine) Step(inputs uint64) {
	m.state = m.Spec.NextState(m.state, inputs)
}

// StateBits returns the width of the binary state encoding.
func (sp *Spec) StateBits() int {
	return max(1, logic.Log2Ceil(len(sp.States)))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
