package fsm

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Synthesised couples a spec's netlist with handles to its interface
// nets so simulators and parent designs can wire it up.
type Synthesised struct {
	Spec     *Spec
	Netlist  *netlist.Netlist
	InputNet map[string]netlist.NetID
	// OutputNet maps each declared Moore output to its net.
	OutputNet map[string]netlist.NetID
	// StateQ are the state-register outputs, LSB first.
	StateQ []netlist.NetID
}

// Synthesise builds a gate-level realisation of the spec into a fresh
// netlist: binary state encoding in declaration order, ripple-free
// two-level next-state and output logic from Quine-McCluskey covers.
// Unused state codes are don't-cares.
func Synthesise(sp *Spec) (*Synthesised, error) {
	nl := netlist.New(sp.Name)
	syn, err := SynthesiseInto(sp, nl, "")
	if err != nil {
		return nil, err
	}
	for _, name := range sp.Outputs {
		nl.AddOutput(name, syn.OutputNet[name])
	}
	return syn, nil
}

// SynthesiseInto builds the spec inside an existing netlist so a larger
// design (e.g. the programmable FSM-based BIST unit) can embed it. When
// prefix is non-empty it namespaces the state register nets. Inputs are
// declared as primary inputs of nl only when nl has no input of that
// name yet; otherwise the existing net is reused.
func SynthesiseInto(sp *Spec, nl *netlist.Netlist, prefix string) (*Synthesised, error) {
	return SynthesiseIntoWith(sp, nl, prefix, nil)
}

// SynthesiseIntoWith is SynthesiseInto with explicit input bindings:
// inputs named in bind are driven by the given internal nets instead of
// primary inputs.
func SynthesiseIntoWith(sp *Spec, nl *netlist.Netlist, prefix string, bind map[string]netlist.NetID) (*Synthesised, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	sb := sp.StateBits()
	ni := sp.Inputs.Len()
	nvars := sb + ni
	if nvars > logic.MaxInputs {
		return nil, fmt.Errorf("fsm %s: %d state bits + %d inputs exceeds synthesis limit of %d variables",
			sp.Name, sb, ni, logic.MaxInputs)
	}

	syn := &Synthesised{
		Spec:      sp,
		Netlist:   nl,
		InputNet:  make(map[string]netlist.NetID, ni),
		OutputNet: make(map[string]netlist.NetID, len(sp.Outputs)),
	}

	// Interface nets.
	for _, name := range sp.Inputs.Names() {
		if id, ok := bind[name]; ok {
			syn.InputNet[name] = id
		} else if id, ok := nl.InputByName(name); ok {
			syn.InputNet[name] = id
		} else {
			syn.InputNet[name] = nl.AddInput(name)
		}
	}

	// State register with reset to the reset-state code.
	resetCode := uint64(sp.Reset)
	syn.StateQ = make([]netlist.NetID, sb)
	for i := 0; i < sb; i++ {
		syn.StateQ[i] = nl.AddFF(netlist.CellDFF, nl.Const0(), resetCode>>uint(i)&1 == 1)
		nl.SetNetName(syn.StateQ[i], fmt.Sprintf("%sstate[%d]", prefix, i))
	}

	// Variable ordering for the truth tables: state bits 0..sb-1 are the
	// low variables, inputs follow.
	vars := make([]netlist.NetID, 0, nvars)
	vars = append(vars, syn.StateQ...)
	for _, name := range sp.Inputs.Names() {
		vars = append(vars, syn.InputNet[name])
	}

	// Next-state tables.
	nextTables := make([]*logic.TruthTable, sb)
	for i := range nextTables {
		nextTables[i] = logic.NewTruthTable(nvars)
	}
	outTables := make(map[string]*logic.TruthTable, len(sp.Outputs))
	for _, o := range sp.Outputs {
		outTables[o] = logic.NewTruthTable(nvars)
	}

	numCodes := 1 << uint(sb)
	numIn := 1 << uint(ni)
	for code := 0; code < numCodes; code++ {
		for in := 0; in < numIn; in++ {
			row := code | in<<uint(sb)
			if code >= len(sp.States) {
				for i := range nextTables {
					nextTables[i].Set(row, logic.DontCare)
				}
				for _, t := range outTables {
					t.Set(row, logic.DontCare)
				}
				continue
			}
			next := sp.NextState(code, uint64(in))
			for i := range nextTables {
				nextTables[i].SetBool(row, next>>uint(i)&1 == 1)
			}
			for o, t := range outTables {
				t.SetBool(row, sp.States[code].Outputs[o])
			}
		}
	}

	for i := 0; i < sb; i++ {
		nl.SetFFInput(syn.StateQ[i], nl.FromTruthTable(nextTables[i], vars))
	}
	for _, o := range sp.Outputs {
		syn.OutputNet[o] = nl.FromTruthTable(outTables[o], vars)
	}
	return syn, nil
}
