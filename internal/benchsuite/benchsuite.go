// Package benchsuite defines the tracked benchmark suite: the paired
// Serial/Parallel measurements of the two fault-simulation fast paths.
// The root package's Benchmark* functions and cmd/mbistbench (the CI
// regression gate) both execute these definitions, so "what CI gates
// on" and "what go test -bench measures" cannot drift apart.
//
// Importing testing from a non-test package is deliberate: the suite
// must be callable both from *_test.go wrappers and from the
// mbistbench binary via testing.Benchmark.
package benchsuite

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/coverage"
	"repro/internal/logicbist"
	"repro/internal/march"
	"repro/internal/microbist"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// LogicBISTPatterns and LogicBISTSeed fix the random-pattern workload
// both logic-BIST engines are measured on.
const (
	LogicBISTPatterns = 64
	LogicBISTSeed     = 11
)

// ControllerNetlist synthesises the netlist both logic-BIST engines
// are benchmarked on — the March C microcode controller, the same unit
// the §3 testability measurements grade.
func ControllerNetlist(tb testing.TB) *netlist.Netlist {
	tb.Helper()
	p, err := microbist.Assemble(march.MarchC(), microbist.AssembleOpts{WordOriented: true, Multiport: true})
	if err != nil {
		tb.Fatal(err)
	}
	hw, err := microbist.BuildHardware(p, microbist.HWConfig{
		Slots: p.Len(), AddrBits: 4, Width: 1, Ports: 1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return hw.Netlist
}

// LogicBISTSerial measures the one-fault-at-a-time oracle engine.
func LogicBISTSerial(b *testing.B) {
	logicBIST(b, logicbist.RandomPatternCoverageSerial)
}

// LogicBISTWordParallel measures the 64-lane PPSFP engine.
func LogicBISTWordParallel(b *testing.B) {
	logicBIST(b, logicbist.RandomPatternCoverage)
}

// logicBIST runs one untimed warm-up call before measuring, so
// allocs/op reports the steady state (cross-call caches populated)
// independently of the iteration count — a prerequisite for the CI
// allocs_per_op gate to be stable across benchtime and host speed.
func logicBIST(b *testing.B, engine func(*netlist.Netlist, int, int64) (*logicbist.Result, error)) {
	nl := ControllerNetlist(b)
	if _, err := engine(nl, LogicBISTPatterns, LogicBISTSeed); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var res *logicbist.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = engine(nl, LogicBISTPatterns, LogicBISTSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Coverage(), "coverage%")
}

func grade(b *testing.B, workers int, engine coverage.Engine) {
	gradeOpts(b, coverage.Options{Size: 16, Workers: workers, Engine: engine})
}

func gradeLanes(b *testing.B, workers int, engine coverage.Engine, lanes int) {
	gradeOpts(b, coverage.Options{Size: 16, Workers: workers, Engine: engine, Lanes: lanes})
}

func gradeOpts(b *testing.B, opts coverage.Options) {
	alg, ok := march.ByName("marchc")
	if !ok {
		b.Fatal("march library lost marchc")
	}
	// Untimed warm-up: populate the stream/universe/levelization caches
	// and the arena pool so allocs/op reports the steady state
	// independently of the iteration count (see logicBIST).
	if _, err := coverage.Grade(alg, coverage.Microcode, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var rep *coverage.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = coverage.Grade(alg, coverage.Microcode, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Reported after the loop: ResetTimer deletes user metrics, so
	// anything recorded earlier would be lost.
	b.ReportMetric(rep.Overall.Percent(), "coverage%")
	b.ReportMetric(float64(opts.Workers), "workers")
}

// GradeLaneWidth returns a benchmark of the lane engine pinned to an
// explicit logical lane width on one worker — the sweep behind the
// EXPERIMENTS.md X10 lanes × workers speedup curve. Reports stay
// byte-identical across widths, so the curve isolates pure batching
// throughput.
func GradeLaneWidth(lanes int) func(*testing.B) {
	return func(b *testing.B) {
		gradeLanes(b, 1, coverage.EngineAuto, lanes)
		b.ReportMetric(float64(lanes), "lanes")
	}
}

// GradeSerial measures scalar functional-fault grading on one worker
// (one injected memory and one full test execution per fault).
func GradeSerial(b *testing.B) { grade(b, 1, coverage.EngineScalar) }

// GradeParallel measures the scalar engine's GOMAXPROCS worker pool.
// The worker count is passed explicitly (not left to the Options
// default) so the recorded "workers" extra is exactly the pool size
// the measurement ran with.
func GradeParallel(b *testing.B) {
	grade(b, runtime.GOMAXPROCS(0), coverage.EngineScalar)
}

// GradeLane measures the 63-fault lane-batched stream-replay engine on
// one worker; its speedup is tracked against GradeSerial.
func GradeLane(b *testing.B) { grade(b, 1, coverage.EngineAuto) }

// GradeLaneParallel measures the lane engine's batch worker pool at an
// explicit GOMAXPROCS worker count (see GradeParallel).
func GradeLaneParallel(b *testing.B) {
	grade(b, runtime.GOMAXPROCS(0), coverage.EngineAuto)
}

// GradeLaneInterpreted measures the lane engine with Options.Replay
// pinned to the per-op interpreted path — the reference the compiled
// kernels are validated against. Its ratio to GradeLane is the
// compiled-replay speedup (EXPERIMENTS.md X12).
func GradeLaneInterpreted(b *testing.B) {
	gradeOpts(b, coverage.Options{Size: 16, Workers: 1, Replay: coverage.ReplayInterpreted})
}

// GradeSharded measures the 4-shard sweep path end to end: grade four
// universe slices, merge their states, rebuild the report. Tracked
// against GradeLane (the same workload unsharded), it pins the
// shard/merge overhead the mbistd service pays for distributable
// sweeps.
func GradeSharded(b *testing.B) {
	const shards = 4
	alg, ok := march.ByName("marchc")
	if !ok {
		b.Fatal("march library lost marchc")
	}
	opts := coverage.Options{Size: 16, Workers: 1}
	run := func() *coverage.Report {
		states := make([]*coverage.State, shards)
		for i := range states {
			var err error
			if states[i], err = coverage.GradeShard(alg, coverage.Microcode, opts, i, shards); err != nil {
				b.Fatal(err)
			}
		}
		merged, err := coverage.MergeStates(states...)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := coverage.ReportFromState(alg, coverage.Microcode, opts, merged)
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	run() // untimed warm-up (see logicBIST)
	b.ReportAllocs()
	b.ResetTimer()
	var rep *coverage.Report
	for i := 0; i < b.N; i++ {
		rep = run()
	}
	b.ReportMetric(rep.Overall.Percent(), "coverage%")
	b.ReportMetric(float64(shards), "shards")
}

// GradeLaneMetricsOn measures the lane engine with the obs registry
// enabled. Tracked against GradeLane, it pins the <2% observability
// overhead budget on the batched path (DESIGN.md "Observability").
// It also asserts the compiled-replay counters: the budget measurement
// is only meaningful if the metered runs actually compiled the stream
// and dispatched specialized kernels rather than silently degrading to
// the interpreted or general path.
func GradeLaneMetricsOn(b *testing.B) {
	reg := obs.Enable()
	defer obs.Disable()
	grade(b, 1, coverage.EngineAuto)
	if reg.Counter("coverage.compiled_streams").Value() == 0 {
		b.Fatal("metrics-on grade never took the compiled replay path")
	}
	if reg.Counter("coverage.fast_kernel_batches").Value() == 0 {
		b.Fatal("metrics-on grade replayed no batch through a specialized kernel")
	}
	// The service durability layer (journal appends, retry/watchdog
	// bookkeeping) must stay off the grade hot path: a bare grading run
	// may not touch any serve.* instrument.
	for _, m := range reg.Snapshot() {
		if strings.HasPrefix(m.Name, "serve.") {
			b.Fatalf("grade hot path touched service instrument %s", m.Name)
		}
	}
}

// Case is one tracked benchmark. Serial names the paired serial
// baseline a parallel case's speedup is computed against ("" for the
// serial cases themselves).
type Case struct {
	Name   string
	Serial string
	F      func(*testing.B)
}

// Suite returns the tracked benchmarks in execution order. Names match
// the root package's go-test benchmark names so BENCH_*.json baselines
// and -bench output line up.
func Suite() []Case {
	return []Case{
		{Name: "BenchmarkLogicBISTSerial", F: LogicBISTSerial},
		{Name: "BenchmarkLogicBISTWordParallel", Serial: "BenchmarkLogicBISTSerial", F: LogicBISTWordParallel},
		{Name: "BenchmarkGradeSerial", F: GradeSerial},
		{Name: "BenchmarkGradeParallel", Serial: "BenchmarkGradeSerial", F: GradeParallel},
		{Name: "BenchmarkGradeLane", Serial: "BenchmarkGradeSerial", F: GradeLane},
		{Name: "BenchmarkGradeLaneInterpreted", Serial: "BenchmarkGradeSerial", F: GradeLaneInterpreted},
		{Name: "BenchmarkGradeLaneParallel", Serial: "BenchmarkGradeSerial", F: GradeLaneParallel},
		{Name: "BenchmarkGradeLaneMetricsOn", Serial: "BenchmarkGradeLane", F: GradeLaneMetricsOn},
		{Name: "BenchmarkGradeSharded", Serial: "BenchmarkGradeLane", F: GradeSharded},
	}
}
