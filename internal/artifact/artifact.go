// Package artifact is the repo's content-addressed synthesis cache: a
// bounded, singleflight-deduplicating map from a content key to an
// expensively synthesised artifact (a controller program, a recorded
// operation stream, a fault universe, a netlist). The key is the
// artifact's full content address — every input that determines the
// synthesis output (algorithm fingerprint, architecture, geometry,
// options) folded into one comparable struct — so two semantically
// identical requests share one artifact and two requests differing in
// any synthesis-relevant field cannot alias.
//
// The cache exists because matrix sweeps and the grading service
// re-request the same artifacts constantly: one sweep grades the same
// (algorithm, architecture, geometry) across thousands of faults, and
// the service amortises one synthesis across many HTTP requests.
// Synthesis happens at most once per key even under concurrent first
// requests: the first caller builds while later callers wait on the
// in-flight entry (singleflight). Build errors are never cached — the
// waiters of the failing flight all receive the error, and the next
// request retries the build.
//
// Cached values are shared, not copied: callers must treat them as
// immutable. Every artifact this repo caches is read-only after
// construction (programs and controllers build fresh execution state
// per Run; streams and universes are only read during replay).
//
// Instrumentation follows the internal/obs conventions: each cache is
// named, and reports artifact.<name>.{hits,misses,builds,waits,
// build_errors,build_panics,flushes} on the active registry. The
// counters are the contract the service's "served from cache, nothing
// re-synthesised" assertions are written against.
package artifact

import (
	"errors"
	"sync"

	"repro/internal/obs"
)

// DefaultLimit bounds a cache constructed with New(name, 0). 64 keys
// comfortably covers the synthesised matrix axes (8 library algorithms
// × 4 architectures × 3 geometries collapses to well under 64 distinct
// keys per artifact kind) while keeping a runaway keyspace from
// retaining unbounded memory.
const DefaultLimit = 64

// ErrBuildPanicked is what waiters of a singleflight build receive
// when the builder panicked instead of returning. The builder's own
// goroutine re-raises the original panic; the waiters get this error
// and the next Get retries the build.
var ErrBuildPanicked = errors.New("artifact: build panicked")

// entry is one cache slot. done is closed once the build finished;
// until then val/err are unreadable and waiters block on done.
type entry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Cache is a bounded content-addressed cache with singleflight build
// deduplication. The zero value is not usable; construct with New.
// All methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	name  string
	limit int

	// Counter names are precomputed so the hit path does zero string
	// building (the obs registry resolves nil — and free — when
	// metrics are disabled, but name concatenation would still
	// allocate per Get).
	nHits, nMisses, nWaits, nBuilds    string
	nBuildErrors, nBuildPanics, nFlush string

	mu      sync.Mutex
	entries map[K]*entry[V]
	hook    func()
}

// New returns an empty cache. name scopes the obs counters
// (artifact.<name>.*); limit bounds the number of retained keys
// (0 selects DefaultLimit). When inserting past the limit the cache is
// flushed whole — completed entries are dropped, in-flight builds are
// kept so waiters always resolve.
func New[K comparable, V any](name string, limit int) *Cache[K, V] {
	if limit <= 0 {
		limit = DefaultLimit
	}
	prefix := "artifact." + name + "."
	return &Cache[K, V]{
		name:         name,
		limit:        limit,
		nHits:        prefix + "hits",
		nMisses:      prefix + "misses",
		nWaits:       prefix + "waits",
		nBuilds:      prefix + "builds",
		nBuildErrors: prefix + "build_errors",
		nBuildPanics: prefix + "build_panics",
		nFlush:       prefix + "flushes",
		entries:      make(map[K]*entry[V]),
	}
}

// counter resolves one of the cache's obs counters against the active
// registry at call time (nil and therefore free when metrics are
// disabled). name is one of the precomputed c.n* fields.
func (c *Cache[K, V]) counter(name string) *obs.Counter {
	return obs.Active().Counter(name)
}

// Get returns the artifact for key, synthesising it with build on the
// first request. Concurrent first requests synthesise exactly once:
// one caller runs build, the rest wait for its result. A failed build
// is returned to every waiter of that flight and is not cached — the
// next Get retries. A panicking build fails the flight with
// ErrBuildPanicked for the waiters and re-raises the panic in the
// builder's goroutine.
func (c *Cache[K, V]) Get(key K, build func() (V, error)) (V, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		select {
		case <-e.done:
			// Built: a plain hit.
			c.counter(c.nHits).Add(1)
		default:
			// In flight: wait for the builder.
			c.counter(c.nWaits).Add(1)
			<-e.done
		}
		return e.val, e.err
	}
	// Miss: claim the flight before unlocking so a concurrent Get for
	// the same key waits instead of building twice.
	if len(c.entries) >= c.limit {
		c.flushLocked()
	}
	e := &entry[V]{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.counter(c.nMisses).Add(1)

	// resolve publishes the flight's outcome: failed builds are dropped
	// from the cache (unless a concurrent flush already replaced the
	// slot) before the waiters are released.
	resolve := func() {
		if e.err != nil {
			c.mu.Lock()
			if cur, ok := c.entries[key]; ok && cur == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
		}
		close(e.done)
	}
	completed := false
	defer func() {
		if completed {
			return
		}
		// build panicked past us: fail the flight so no waiter blocks
		// forever, then let the panic keep unwinding this goroutine.
		e.err = ErrBuildPanicked
		c.counter(c.nBuildPanics).Add(1)
		resolve()
	}()
	e.val, e.err = build()
	completed = true
	if e.err != nil {
		c.counter(c.nBuildErrors).Add(1)
	} else {
		c.counter(c.nBuilds).Add(1)
	}
	resolve()
	return e.val, e.err
}

// Len returns the number of retained keys (including in-flight
// builds).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Flush drops every completed entry. In-flight builds are kept so
// their waiters resolve; the next Get for a dropped key rebuilds.
func (c *Cache[K, V]) Flush() {
	c.mu.Lock()
	c.flushLocked()
	c.mu.Unlock()
}

func (c *Cache[K, V]) flushLocked() {
	kept := make(map[K]*entry[V])
	for k, e := range c.entries {
		select {
		case <-e.done:
			// Completed: drop.
		default:
			kept[k] = e
		}
	}
	c.entries = kept
	c.counter(c.nFlush).Add(1)
	if c.hook != nil {
		c.hook()
	}
}

// SetFlushHook registers f to run after every flush, whether explicit
// (Flush) or capacity-triggered from Get. Dependent caches use it to
// drop derived state whose lifetime is bound to this cache's entries
// (e.g. the coverage arena pool follows the partition plans its
// batches alias). f runs with the cache lock held: it must be brief
// and must not call back into this cache.
func (c *Cache[K, V]) SetFlushHook(f func()) {
	c.mu.Lock()
	c.hook = f
	c.mu.Unlock()
}
