package artifact

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestFlushDuringFlight hammers the eviction/singleflight seam: while
// builder goroutines run Gets (some failing), a flusher evicts
// concurrently, including from inside the flush hook's own cadence.
// The invariants under -race:
//
//   - a Get whose build succeeded never observes an error, and every
//     waiter of a flight sees that flight's exact value;
//   - a failed build is never served to a later Get (errors are not
//     cached): after the failing flight resolves, the next Get for
//     that key rebuilds and succeeds;
//   - flushing an in-flight entry never strands its waiters.
func TestFlushDuringFlight(t *testing.T) {
	c := New[int, int]("flushrace", 8)
	var hookRuns atomic.Int64
	c.SetFlushHook(func() { hookRuns.Add(1) })

	const (
		workers = 8
		rounds  = 400
		keys    = 32
	)
	errBoom := errors.New("boom")
	var builds atomic.Int64

	var flusher sync.WaitGroup
	var wg sync.WaitGroup
	stop := make(chan struct{})
	flusher.Add(1)
	go func() {
		defer flusher.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Flush()
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				key := (w + r) % keys
				fail := key%5 == 0 && r%3 == 0
				v, err := c.Get(key, func() (int, error) {
					builds.Add(1)
					if fail {
						return 0, errBoom
					}
					return key * 1000, nil
				})
				if fail {
					// This call either ran the failing build itself or
					// joined a flight; a joined flight may have been a
					// succeeding builder's. Either outcome is legal —
					// what is not legal is an unknown error or a wrong
					// value.
					if err == nil && v != key*1000 {
						t.Errorf("key %d: err==nil but v=%d", key, v)
					}
					if err != nil && !errors.Is(err, errBoom) {
						t.Errorf("key %d: unexpected error %v", key, err)
					}
					continue
				}
				if err != nil && !errors.Is(err, errBoom) {
					t.Errorf("key %d: unexpected error %v", key, err)
				}
				if err == nil && v != key*1000 {
					t.Errorf("key %d: got %d, want %d", key, v, key*1000)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	flusher.Wait()

	// Errors were never cached: with the flusher stopped, one Get per
	// key must succeed (rebuilding if its slot was evicted or its last
	// flight failed).
	for key := 0; key < keys; key++ {
		v, err := c.Get(key, func() (int, error) { return key * 1000, nil })
		if err != nil {
			t.Fatalf("key %d: error after storm: %v", key, err)
		}
		if v != key*1000 {
			t.Fatalf("key %d: got %d, want %d", key, v, key*1000)
		}
	}
	if builds.Load() == 0 {
		t.Fatal("no builds ran")
	}
	if hookRuns.Load() == 0 {
		t.Fatal("flush hook never ran")
	}
}

// TestFlushKeepsInFlightEntry pins the documented Flush contract
// directly: flushing while a build is in flight keeps the entry, so a
// concurrent Get for the same key waits for that flight instead of
// building a second time.
func TestFlushKeepsInFlightEntry(t *testing.T) {
	c := New[string, int]("flushkeep", 4)
	inBuild := make(chan struct{})
	release := make(chan struct{})
	var builds atomic.Int64

	done := make(chan int, 1)
	go func() {
		v, err := c.Get("k", func() (int, error) {
			builds.Add(1)
			close(inBuild)
			<-release
			return 7, nil
		})
		if err != nil {
			t.Errorf("builder Get: %v", err)
		}
		done <- v
	}()

	<-inBuild
	c.Flush()
	if n := c.Len(); n != 1 {
		t.Fatalf("flush dropped the in-flight entry: Len=%d, want 1", n)
	}

	joined := make(chan int, 1)
	go func() {
		v, err := c.Get("k", func() (int, error) {
			builds.Add(1)
			return -1, nil
		})
		if err != nil {
			t.Errorf("waiter Get: %v", err)
		}
		joined <- v
	}()

	close(release)
	if v := <-done; v != 7 {
		t.Fatalf("builder got %d, want 7", v)
	}
	if v := <-joined; v != 7 {
		t.Fatalf("waiter got %d, want 7 (joined flight's value)", v)
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times, want 1 (waiter must join the kept flight)", n)
	}
}
