package artifact

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// optsKey mirrors the shape of a real synthesis key: an options struct
// whose every field is cache-relevant.
type optsKey struct {
	Alg          uint64
	Arch         int
	Size, Width  int
	Ports        int
	WordOriented bool
}

// TestKeyingFieldSensitivity pins the content-addressing contract:
// two options structs differing in any cache-relevant field miss, and
// semantically identical ones hit.
func TestKeyingFieldSensitivity(t *testing.T) {
	c := New[optsKey, string]("test", 0)
	base := optsKey{Alg: 7, Arch: 1, Size: 16, Width: 8, Ports: 1, WordOriented: true}

	var builds atomic.Int64
	get := func(k optsKey) string {
		v, err := c.Get(k, func() (string, error) {
			builds.Add(1)
			return fmt.Sprintf("artifact-for-%+v", k), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	first := get(base)
	if builds.Load() != 1 {
		t.Fatalf("first request built %d times, want 1", builds.Load())
	}
	// A semantically identical key (fresh struct, same field values)
	// must hit without rebuilding.
	same := optsKey{Alg: 7, Arch: 1, Size: 16, Width: 8, Ports: 1, WordOriented: true}
	if got := get(same); got != first {
		t.Fatalf("identical key returned different artifact: %q vs %q", got, first)
	}
	if builds.Load() != 1 {
		t.Fatalf("identical key rebuilt: %d builds, want 1", builds.Load())
	}

	// Every single-field perturbation must miss and build anew.
	variants := []optsKey{base, base, base, base, base, base}
	variants[0].Alg = 8
	variants[1].Arch = 2
	variants[2].Size = 32
	variants[3].Width = 1
	variants[4].Ports = 2
	variants[5].WordOriented = false
	for i, k := range variants {
		before := builds.Load()
		get(k)
		if builds.Load() != before+1 {
			t.Errorf("variant %d (%+v) did not build: %d builds, want %d", i, k, builds.Load(), before+1)
		}
	}
}

// TestSingleflight pins the synthesise-exactly-once contract:
// concurrent first requests for one key run one build, and every
// caller receives the builder's value. Run under -race this also
// proves the waiters' reads of the built value are properly
// synchronised.
func TestSingleflight(t *testing.T) {
	c := New[int, int]("test", 0)
	const callers = 32

	var builds atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]int, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = c.Get(42, func() (int, error) {
				builds.Add(1)
				// Hold the flight open until every caller has had a
				// chance to pile onto it.
				<-release
				return 4242, nil
			})
		}()
	}
	// Wait until the flight is claimed, give the other callers time to
	// queue, then release the build.
	for c.Len() == 0 {
	}
	close(release)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("%d concurrent first requests ran %d builds, want exactly 1", callers, got)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != 4242 {
			t.Fatalf("caller %d got %d, want 4242", i, results[i])
		}
	}
	if v, _ := c.Get(42, func() (int, error) { t.Fatal("rebuilt after singleflight"); return 0, nil }); v != 4242 {
		t.Fatalf("post-flight hit got %d, want 4242", v)
	}
}

// TestErrorsNotCached pins the retry contract: a failed build is
// handed to its flight's callers but not cached, so the next request
// rebuilds (and can succeed).
func TestErrorsNotCached(t *testing.T) {
	c := New[string, int]("test", 0)
	boom := errors.New("synthesis failed")
	calls := 0
	_, err := c.Get("k", func() (int, error) { calls++; return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("first Get err = %v, want %v", err, boom)
	}
	v, err := c.Get("k", func() (int, error) { calls++; return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry Get = (%d, %v), want (7, nil)", v, err)
	}
	if calls != 2 {
		t.Fatalf("build ran %d times, want 2 (error must not be cached)", calls)
	}
	if c.Len() != 1 {
		t.Fatalf("cache retains %d entries, want 1", c.Len())
	}
}

// TestBuildPanicResolvesFlight pins the panic contract: the builder's
// goroutine re-raises the panic, waiters get ErrBuildPanicked instead
// of blocking forever, and the key is rebuildable afterwards.
func TestBuildPanicResolvesFlight(t *testing.T) {
	c := New[string, int]("test", 0)

	inFlight := make(chan struct{})
	waiterArrived := make(chan struct{})
	waiterDone := make(chan error, 1)
	go func() {
		<-inFlight
		close(waiterArrived)
		// The waiter either joins the panicked flight (ErrBuildPanicked)
		// or arrives after it resolved and rebuilds; its build returns
		// the same value the final Get expects so both schedules are
		// observable below.
		_, err := c.Get("k", func() (int, error) { return 9, nil })
		waiterDone <- err
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("builder's panic did not propagate")
			}
		}()
		c.Get("k", func() (int, error) {
			close(inFlight)
			// Give the waiter a moment to pile onto this flight before
			// blowing it up. Purely a scheduling bias: the assertions
			// below accept the waiter arriving late too.
			<-waiterArrived
			time.Sleep(time.Millisecond)
			panic("synthesis exploded")
		})
	}()

	// The waiter either joined the panicked flight (ErrBuildPanicked)
	// or arrived after it resolved and rebuilt successfully (nil).
	if err := <-waiterDone; err != nil && !errors.Is(err, ErrBuildPanicked) {
		t.Fatalf("waiter err = %v, want nil or ErrBuildPanicked", err)
	}
	v, err := c.Get("k", func() (int, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Fatalf("Get after panic = (%d, %v), want (9, nil)", v, err)
	}
}

// TestBoundedFlush pins the bound: inserting past the limit flushes
// completed entries, and the cache keeps functioning.
func TestBoundedFlush(t *testing.T) {
	c := New[int, int]("test", 4)
	for i := 0; i < 10; i++ {
		v, err := c.Get(i, func() (int, error) { return i * i, nil })
		if err != nil || v != i*i {
			t.Fatalf("Get(%d) = (%d, %v)", i, v, err)
		}
	}
	if c.Len() > 4 {
		t.Fatalf("cache holds %d entries past limit 4", c.Len())
	}
	// Flushed keys rebuild on demand.
	rebuilt := false
	if v, _ := c.Get(0, func() (int, error) { rebuilt = true; return 0, nil }); v != 0 {
		t.Fatalf("Get(0) after flush = %d", v)
	}
	_ = rebuilt // either outcome is legal; the value contract is what matters
}

// TestObsCounters pins the instrumentation the service's cache
// assertions rely on: builds/hits/misses are visible on the active
// registry under the cache's name.
func TestObsCounters(t *testing.T) {
	reg := obs.Enable()
	defer obs.Disable()

	c := New[int, int]("counters", 0)
	c.Get(1, func() (int, error) { return 1, nil })
	c.Get(1, func() (int, error) { return 1, nil })
	c.Get(2, func() (int, error) { return 0, errors.New("no") })

	if got := reg.Counter("artifact.counters.builds").Value(); got != 1 {
		t.Errorf("builds = %d, want 1", got)
	}
	if got := reg.Counter("artifact.counters.hits").Value(); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if got := reg.Counter("artifact.counters.misses").Value(); got != 2 {
		t.Errorf("misses = %d, want 2", got)
	}
	if got := reg.Counter("artifact.counters.build_errors").Value(); got != 1 {
		t.Errorf("build_errors = %d, want 1", got)
	}
}
