package gatesim_test

// Multi-plane WordSimulator equivalence: at 4 planes (256 logical
// lanes) fault detection must match the scalar engine exactly, active
// planes must shrink and warm-start without corrupting lane values,
// and repeated construction must hit the levelization cache.

import (
	"math/rand"
	"testing"

	"repro/internal/gatesim"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// TestWordSimPlanesFaultDetectionMatchesSerial packs stuck-at faults
// 255 to a settle pass on a 4-plane simulator (lane 0 good) and asserts
// the detected-fault set equals the scalar engine's, one fault at a
// time — on both controller netlists. Batch occupancy drives
// SetActivePlanes exactly like the logic-BIST engine, so the shrink /
// warm-start path is exercised on a real workload, including the
// partial final batch of each pattern.
func TestWordSimPlanesFaultDetectionMatchesSerial(t *testing.T) {
	const planes = 4
	for _, nl := range controllerNetlists(t) {
		t.Run(nl.Name, func(t *testing.T) {
			ser, err := gatesim.New(nl)
			if err != nil {
				t.Fatal(err)
			}
			ws, err := gatesim.NewWordPlanes(nl, planes)
			if err != nil {
				t.Fatal(err)
			}
			if ws.Planes() != planes || ws.TotalLanes() != planes*gatesim.Lanes {
				t.Fatalf("Planes/TotalLanes = %d/%d, want %d/%d",
					ws.Planes(), ws.TotalLanes(), planes, planes*gatesim.Lanes)
			}

			// Full-scan access: inputs and FF outputs controllable,
			// outputs and FF D inputs observable.
			controls := append([]netlist.NetID(nil), nl.Inputs()...)
			observes := append([]netlist.NetID(nil), nl.Outputs()...)
			type fault struct {
				net netlist.NetID
				sa  bool
			}
			var faultList []fault
			for _, id := range nl.Inputs() {
				faultList = append(faultList, fault{id, false}, fault{id, true})
			}
			for _, inst := range nl.Instances() {
				if inst.Kind.IsSequential() {
					controls = append(controls, inst.Out)
					observes = append(observes, inst.In[0])
				}
				faultList = append(faultList, fault{inst.Out, false}, fault{inst.Out, true})
			}
			ctrlVal := make(map[netlist.NetID]bool, len(controls))

			rng := rand.New(rand.NewSource(5))
			for pattern := 0; pattern < 3; pattern++ {
				for _, id := range controls {
					v := rng.Intn(2) == 1
					ctrlVal[id] = v
					ser.Set(id, v)
					ws.Set(id, v)
				}
				ser.Eval()
				good := make([]bool, len(observes))
				for i, id := range observes {
					good[i] = ser.Get(id)
				}

				// Serial oracle: one force + settle per fault.
				serialDet := make([]bool, len(faultList))
				for fi, f := range faultList {
					ser.Force(f.net, f.sa)
					ser.Eval()
					for i, id := range observes {
						if ser.Get(id) != good[i] {
							serialDet[fi] = true
							break
						}
					}
					ser.Unforce(f.net)
					if v, ok := ctrlVal[f.net]; ok {
						ser.Set(f.net, v)
					}
				}

				// Word engine: up to 255 faults per settle on logical
				// lanes 1..255, active planes sized to the batch.
				wordDet := make([]bool, len(faultList))
				maxBatch := planes*gatesim.Lanes - 1
				for start := 0; start < len(faultList); start += maxBatch {
					end := start + maxBatch
					if end > len(faultList) {
						end = len(faultList)
					}
					batch := faultList[start:end]
					np := len(batch)>>6 + 1 // highest occupied lane is len(batch)
					ws.SetActivePlanes(np)
					if ws.ActivePlanes() != np {
						t.Fatalf("ActivePlanes = %d, want %d", ws.ActivePlanes(), np)
					}
					for k, f := range batch {
						ws.ForceLane(f.net, k+1, f.sa)
					}
					if got := ws.ForcedLanes(); got != len(batch) {
						t.Fatalf("batch %d: %d forced lanes, want %d", start, got, len(batch))
					}
					ws.Eval()
					var diff [planes]uint64
					for _, id := range observes {
						g := -(ws.GetPlane(id, 0) & 1) // lane 0 = good machine
						for p := 0; p < np; p++ {
							diff[p] |= ws.GetPlane(id, p) ^ g
						}
					}
					for k := range batch {
						l := k + 1
						wordDet[start+k] = diff[l>>6]>>uint(l&63)&1 == 1
					}
					ws.ClearForces()
					for _, f := range batch {
						if v, ok := ctrlVal[f.net]; ok {
							ws.Set(f.net, v)
						}
					}
				}

				for fi, f := range faultList {
					if serialDet[fi] != wordDet[fi] {
						t.Fatalf("pattern %d: fault %s stuck-at-%v serial=%v word=%v",
							pattern, nl.NetName(f.net), f.sa, serialDet[fi], wordDet[fi])
					}
				}
			}
		})
	}
}

// TestWordSimSetActivePlanes pins the shrink / warm-start contract on a
// small combinational block: deactivated planes are skipped by settle,
// and re-activated planes mirror plane 0 (the settled good machine).
func TestWordSimSetActivePlanes(t *testing.T) {
	nl := netlist.New("active")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	out := nl.Xor2(nl.And2(a, b), nl.Or2(a, b))
	nl.AddOutput("f", out)
	ws, err := gatesim.NewWordPlanes(nl, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Distinct stimulus per plane, all planes active.
	words := [4]uint64{0x0123456789abcdef, 0xfedcba9876543210, 0xaaaa5555aaaa5555, 0x00ff00ff00ff00ff}
	for p, w := range words {
		ws.SetWordPlane(a, p, w)
		ws.SetWordPlane(b, p, ^w)
	}
	ws.Eval()
	var settled [4]uint64
	for p := range settled {
		settled[p] = ws.GetPlane(out, p)
	}

	// Shrink to 2 planes: new stimulus must settle planes 0-1 only;
	// planes 2-3 keep stale values (per the documented contract).
	ws.SetActivePlanes(2)
	ws.SetWordPlane(a, 0, 0)
	ws.SetWordPlane(b, 0, 0)
	ws.SetWordPlane(a, 1, ^uint64(0))
	ws.SetWordPlane(b, 1, ^uint64(0))
	ws.Eval()
	if got := ws.GetPlane(out, 0); got != 0 {
		t.Errorf("plane 0 after shrink = %#x, want 0", got)
	}
	if got := ws.GetPlane(out, 1); got != 0 {
		t.Errorf("plane 1 after shrink = %#x, want 0 (xor of and/or on all-ones)", got)
	}

	// Regrow to 4: planes 2-3 warm-start from plane 0 for every net, so
	// after a settle they must mirror plane 0 exactly.
	ws.SetActivePlanes(4)
	ws.Eval()
	for p := 2; p < 4; p++ {
		if got, want := ws.GetPlane(out, p), ws.GetPlane(out, 0); got != want {
			t.Errorf("re-activated plane %d = %#x, want plane-0 value %#x", p, got, want)
		}
		if got, want := ws.GetPlane(a, p), ws.GetPlane(a, 0); got != want {
			t.Errorf("re-activated input plane %d = %#x, want %#x", p, got, want)
		}
	}

	// Clamping: out-of-range requests saturate at [1, Planes()].
	ws.SetActivePlanes(0)
	if ws.ActivePlanes() != 1 {
		t.Errorf("SetActivePlanes(0) left %d active, want 1", ws.ActivePlanes())
	}
	ws.SetActivePlanes(99)
	if ws.ActivePlanes() != 4 {
		t.Errorf("SetActivePlanes(99) left %d active, want 4", ws.ActivePlanes())
	}
	_ = settled
}

// TestWordSimPlanesLaneIndependence checks every logical lane of a
// 4-plane simulator evaluates exactly like a scalar simulation fed that
// lane's stimulus bits.
func TestWordSimPlanesLaneIndependence(t *testing.T) {
	nl := netlist.New("planelanes")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	c := nl.AddInput("c")
	nl.AddOutput("f", nl.Xor2(nl.And2(a, b), nl.Mux2(c, a, nl.Nor2(b, c))))
	ws, err := gatesim.NewWordPlanes(nl, 4)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := gatesim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	out := nl.Outputs()[0]
	rng := rand.New(rand.NewSource(12))
	var wa, wb, wc [4]uint64
	for trial := 0; trial < 10; trial++ {
		for p := 0; p < 4; p++ {
			wa[p], wb[p], wc[p] = rng.Uint64(), rng.Uint64(), rng.Uint64()
			ws.SetWordPlane(a, p, wa[p])
			ws.SetWordPlane(b, p, wb[p])
			ws.SetWordPlane(c, p, wc[p])
		}
		ws.Eval()
		for lane := 0; lane < ws.TotalLanes(); lane++ {
			p, bit := lane>>6, uint(lane&63)
			ser.Set(a, wa[p]>>bit&1 == 1)
			ser.Set(b, wb[p]>>bit&1 == 1)
			ser.Set(c, wc[p]>>bit&1 == 1)
			ser.Eval()
			if ws.GetLane(out, lane) != ser.Get(out) {
				t.Fatalf("trial %d lane %d: word=%v serial=%v",
					trial, lane, ws.GetLane(out, lane), ser.Get(out))
			}
		}
	}
}

// TestLevelizationCacheHits pins the cross-simulator levelization
// cache: repeated construction over one netlist levelises once and
// counts a cache hit for every later build.
func TestLevelizationCacheHits(t *testing.T) {
	reg := obs.Enable()
	defer obs.Disable()

	nl := netlist.New("levcache")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	nl.AddOutput("f", nl.And2(a, b))

	hits := func() int64 {
		for _, m := range reg.Snapshot() {
			if m.Name == "gatesim.levelization_cache_hits" {
				return m.Value
			}
		}
		return 0
	}

	if _, err := gatesim.New(nl); err != nil { // first build levelises
		t.Fatal(err)
	}
	base := hits()
	if _, err := gatesim.NewWord(nl); err != nil {
		t.Fatal(err)
	}
	if _, err := gatesim.NewWordPlanes(nl, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := gatesim.New(nl); err != nil {
		t.Fatal(err)
	}
	if got := hits() - base; got != 3 {
		t.Errorf("levelization cache hits after 3 rebuilds = %d, want 3", got)
	}
}
