package gatesim

import (
	"strings"
	"testing"

	"repro/internal/memory"
	"repro/internal/netlist"
)

func TestRunBISTUnitRejectsMissingInterface(t *testing.T) {
	nl := netlist.New("bare")
	a := nl.AddInput("a")
	nl.AddOutput("y", nl.Inv(a))
	_, err := RunBISTUnit(nl, memory.NewSRAM(8, 1, 1), 100)
	if err == nil || !strings.Contains(err.Error(), "lacks") {
		t.Errorf("bare netlist accepted: %v", err)
	}
}

func TestRunBISTUnitRejectsGeometryMismatch(t *testing.T) {
	// A minimal netlist with the right net names but a 2-address bus
	// against an 8-word memory.
	nl := netlist.New("tiny")
	nl.AddInput("last_address")
	nl.AddInput("last_data")
	nl.AddInput("last_port")
	q := nl.AddInput("mem_q[0]")
	c0 := nl.Const0()
	addr := nl.AddFF(netlist.CellDFF, c0, false)
	nl.AddOutput("mem_addr[0]", addr)
	nl.AddOutput("mem_d[0]", q)
	nl.AddOutput("read_en", c0)
	nl.AddOutput("write_en", c0)
	nl.AddOutput("mismatch", c0)
	nl.AddOutput("test_end", nl.Const1())
	nl.AddOutput("dp_last_address", c0)
	nl.AddOutput("dp_last_data", c0)

	if _, err := RunBISTUnit(nl, memory.NewSRAM(8, 1, 1), 100); err == nil {
		t.Error("address-bus/memory size mismatch accepted")
	}
	if _, err := RunBISTUnit(nl, memory.NewSRAM(2, 2, 1), 100); err == nil {
		t.Error("width mismatch accepted")
	}
	// Matching geometry: ends immediately via test_end.
	res, err := RunBISTUnit(nl, memory.NewSRAM(2, 1, 1), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ended || len(res.Ops) != 0 {
		t.Errorf("trivial unit: ended=%v ops=%d", res.Ended, len(res.Ops))
	}
}

func TestRunBISTUnitRejectsMultiportWithoutPortBus(t *testing.T) {
	nl := netlist.New("noport")
	nl.AddInput("last_address")
	nl.AddInput("last_data")
	nl.AddInput("last_port")
	q := nl.AddInput("mem_q[0]")
	c0 := nl.Const0()
	nl.AddOutput("mem_addr[0]", nl.AddFF(netlist.CellDFF, c0, false))
	nl.AddOutput("mem_d[0]", q)
	nl.AddOutput("read_en", c0)
	nl.AddOutput("write_en", c0)
	nl.AddOutput("mismatch", c0)
	nl.AddOutput("test_end", nl.Const1())
	nl.AddOutput("dp_last_address", c0)
	nl.AddOutput("dp_last_data", c0)
	if _, err := RunBISTUnit(nl, memory.NewSRAM(2, 1, 2), 100); err == nil {
		t.Error("multiport memory without port bus accepted")
	}
}

func TestForceOverridesDriver(t *testing.T) {
	nl := netlist.New("force")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	mid := nl.And2(a, b)
	out := nl.Inv(mid)
	nl.AddOutput("y", out)
	sim, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	sim.Set(a, true)
	sim.Set(b, true)
	sim.Eval()
	if sim.Get(out) {
		t.Fatal("baseline wrong")
	}
	sim.Force(mid, false) // stuck-at-0 on the AND output
	sim.Eval()
	if !sim.Get(out) {
		t.Error("forced value not observed")
	}
	sim.Unforce(mid)
	sim.Eval()
	if sim.Get(out) {
		t.Error("unforce did not restore")
	}
}
