package gatesim

import (
	"context"
	"fmt"

	"repro/internal/memory"
	"repro/internal/netlist"
)

// BISTOp is one memory operation observed on a gate-level BIST unit's
// memory interface.
type BISTOp struct {
	Write bool
	Port  int
	Addr  int
	Data  uint64 // written word, or the word presented on the read bus
}

// BISTResult is the outcome of a closed-loop gate-level BIST run.
type BISTResult struct {
	Ops []BISTOp
	// MismatchAddrs records the address of every cycle on which the
	// unit's comparator flagged a miscompare.
	MismatchAddrs []int
	Cycles        int
	// Ended is true when the unit raised test_end before the cycle
	// budget expired.
	Ended bool
}

// Detected reports whether the comparator flagged at least one
// miscompare.
func (r *BISTResult) Detected() bool { return len(r.MismatchAddrs) > 0 }

// RunBISTUnit executes a complete BIST unit netlist (controller +
// datapath, as produced by the IncludeDatapath builders) closed-loop
// against a behavioural memory through port 0: every clock cycle the
// harness feeds the datapath's own last-address/last-data/last-port
// flags back into the controller's condition inputs, serves reads from
// the memory onto the mem_q bus, commits writes from the mem_addr/mem_d
// buses, and records the comparator's mismatch output — a gate-level
// end-to-end self-test run.
//
// Required nets: inputs last_address, last_data, last_port and a
// mem_q[i] bus; outputs mem_addr[i], mem_d[i], read_en/write_en (or
// read/write), mismatch, test_end, dp_last_address, dp_last_data and
// optionally dp_last_port. Inputs named start and delay_done, when
// present, are held high.
func RunBISTUnit(nl *netlist.Netlist, mem memory.Memory, maxCycles int) (*BISTResult, error) {
	//mbist:exempt ctxflow compatibility wrapper over RunBISTUnitContext
	return RunBISTUnitContext(context.Background(), nl, mem, maxCycles)
}

// RunBISTUnitContext is RunBISTUnit with cancellation: the run stops at
// the next cycle boundary once ctx is cancelled or past its deadline,
// returning the partial result alongside the context's error. A netlist
// whose combinational loops oscillate stops with ErrUnsettled the same
// way instead of stepping a dead simulator to the cycle budget.
func RunBISTUnitContext(ctx context.Context, nl *netlist.Netlist, mem memory.Memory, maxCycles int) (*BISTResult, error) {
	sim, err := New(nl)
	if err != nil {
		return nil, err
	}
	sim.SetContext(ctx)
	if err := sim.Err(); err != nil {
		// The post-reset settle can already trip the oscillation watchdog.
		return nil, fmt.Errorf("gatesim: BIST unit %s: %w", nl.Name, err)
	}

	in := func(name string) (netlist.NetID, bool) { return nl.InputByName(name) }
	out := func(name string) (netlist.NetID, bool) { return nl.OutputByName(name) }
	need := func(get func(string) (netlist.NetID, bool), name string) (netlist.NetID, error) {
		id, ok := get(name)
		if !ok {
			return netlist.Invalid, fmt.Errorf("gatesim: BIST unit %s lacks net %q", nl.Name, name)
		}
		return id, nil
	}

	lastAddrIn, ok := in("last_address")
	if !ok {
		if lastAddrIn, err = need(in, "last_addr"); err != nil {
			return nil, err
		}
	}
	// Controllers generated for simpler memories may have no data or
	// port condition pin at all; the feedback loop skips absent inputs.
	lastDataIn, hasLastData := in("last_data")
	lastPortIn, hasLastPort := in("last_port")
	readEn, ok := out("read_en")
	if !ok {
		if readEn, err = need(out, "read"); err != nil {
			return nil, err
		}
	}
	writeEn, ok := out("write_en")
	if !ok {
		if writeEn, err = need(out, "write"); err != nil {
			return nil, err
		}
	}
	mismatch, err := need(out, "mismatch")
	if err != nil {
		return nil, err
	}
	testEnd, err := need(out, "test_end")
	if err != nil {
		return nil, err
	}
	dpLastAddr, err := need(out, "dp_last_address")
	if err != nil {
		return nil, err
	}
	dpLastData, err := need(out, "dp_last_data")
	if err != nil {
		return nil, err
	}
	dpLastPort, hasPortLoop := out("dp_last_port")

	bus := func(get func(string) (netlist.NetID, bool), prefix string) []netlist.NetID {
		var ids []netlist.NetID
		for i := 0; ; i++ {
			id, ok := get(fmt.Sprintf("%s[%d]", prefix, i))
			if !ok {
				break
			}
			ids = append(ids, id)
		}
		return ids
	}
	addrBus := bus(out, "mem_addr")
	dataBus := bus(out, "mem_d")
	qBus := bus(in, "mem_q")
	portBus := bus(out, "mem_port")
	if mem.Ports() > 1 && len(portBus) == 0 {
		return nil, fmt.Errorf("gatesim: BIST unit %s lacks a port bus for a %d-port memory", nl.Name, mem.Ports())
	}
	if len(addrBus) == 0 || len(dataBus) == 0 || len(qBus) == 0 {
		return nil, fmt.Errorf("gatesim: BIST unit %s lacks a memory interface (addr %d, d %d, q %d)",
			nl.Name, len(addrBus), len(dataBus), len(qBus))
	}
	if len(dataBus) != mem.Width() || len(qBus) != mem.Width() {
		return nil, fmt.Errorf("gatesim: BIST unit width %d does not match memory width %d",
			len(dataBus), mem.Width())
	}
	if 1<<uint(len(addrBus)) != mem.Size() {
		return nil, fmt.Errorf("gatesim: BIST unit addresses %d words, memory has %d",
			1<<uint(len(addrBus)), mem.Size())
	}

	if id, ok := in("start"); ok {
		sim.Set(id, true)
	}
	if id, ok := in("delay_done"); ok {
		sim.Set(id, true)
	}

	res := &BISTResult{}
	for res.Cycles = 0; res.Cycles < maxCycles; res.Cycles++ {
		// A cancelled context or tripped oscillation watchdog surfaces
		// here: hand back the partial result with the sticky error.
		if err := sim.Err(); err != nil {
			return res, fmt.Errorf("gatesim: BIST unit %s: %w", nl.Name, err)
		}
		// Feed the datapath's condition flags back to the controller.
		sim.Eval()
		sim.Set(lastAddrIn, sim.Get(dpLastAddr))
		if hasLastData {
			sim.Set(lastDataIn, sim.Get(dpLastData))
		}
		if hasLastPort {
			if hasPortLoop {
				sim.Set(lastPortIn, sim.Get(dpLastPort))
			} else {
				sim.Set(lastPortIn, true)
			}
		}
		sim.Eval()

		if sim.Get(testEnd) {
			res.Ended = true
			break
		}

		addr := int(sim.GetBus(addrBus))
		port := 0
		if len(portBus) > 0 {
			port = int(sim.GetBus(portBus)) % mem.Ports()
		}
		// Serve the read combinationally, then settle the comparator.
		if sim.Get(readEn) {
			word := mem.Read(port, addr)
			sim.SetBus(qBus, word)
			sim.Eval()
			res.Ops = append(res.Ops, BISTOp{Port: port, Addr: addr, Data: word})
			if sim.Get(mismatch) {
				res.MismatchAddrs = append(res.MismatchAddrs, addr)
			}
		} else if sim.Get(writeEn) {
			word := sim.GetBus(dataBus)
			mem.Write(port, addr, word)
			res.Ops = append(res.Ops, BISTOp{Write: true, Port: port, Addr: addr, Data: word})
		}
		sim.Step()
	}
	return res, nil
}
