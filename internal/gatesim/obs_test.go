package gatesim

import (
	"reflect"
	"testing"

	"repro/internal/netlist"
	"repro/internal/obs"
)

func instrumentedWorkloadSnapshot(t *testing.T) []obs.Metric {
	t.Helper()
	reg := obs.Enable()
	defer obs.Disable()

	n := netlist.New("obs")
	a := n.AddInput("a")
	b := n.AddInput("b")
	x := n.Xor2(a, b)
	n.AddOutput("x", x)
	n.AddOutput("y", n.And2(a, x))

	s, err := New(n) // New settles once via Reset
	if err != nil {
		t.Fatal(err)
	}
	s.Eval()
	s.Step() // two settles

	w, err := NewWord(n) // one settle
	if err != nil {
		t.Fatal(err)
	}
	w.ForceLane(x, 3, true)
	w.ForceLane(x, 7, false)
	w.Eval()
	w.ClearForces()
	w.Eval()
	return reg.Snapshot()
}

// TestInstrumentedCountsAreExact pins the settle/gate/lane metrics to
// the workload's known event counts.
func TestInstrumentedCountsAreExact(t *testing.T) {
	snap := instrumentedWorkloadSnapshot(t)
	byName := make(map[string]obs.Metric, len(snap))
	for _, m := range snap {
		byName[m.Name] = m
	}

	// Scalar: Reset settle + Eval + Step's two settles = 4, over the
	// netlist's 2 gates (XOR, AND).
	if got := byName["gatesim.settles"].Value; got != 4 {
		t.Errorf("gatesim.settles = %d, want 4", got)
	}
	if got := byName["gatesim.gates_evaluated"].Value; got != 4*2 {
		t.Errorf("gatesim.gates_evaluated = %d, want 8", got)
	}
	// Word: Reset settle + two Evals = 3 settles.
	if got := byName["gatesim.word.settles"].Value; got != 3 {
		t.Errorf("gatesim.word.settles = %d, want 3", got)
	}
	if got := byName["gatesim.word.gates_evaluated"].Value; got != 3*2 {
		t.Errorf("gatesim.word.gates_evaluated = %d, want 6", got)
	}
	// Lane occupancy samples: 0 (reset), 2 (forced Eval), 0 (cleared).
	lanes := byName["gatesim.word.forced_lanes"]
	if lanes.Count != 3 || lanes.Sum != 2 || lanes.Min != 0 || lanes.Max != 2 {
		t.Errorf("forced_lanes = count %d sum %d min %d max %d, want 3/2/0/2",
			lanes.Count, lanes.Sum, lanes.Min, lanes.Max)
	}
}

// TestInstrumentedSnapshotDeterministic runs the identical workload
// twice and requires identical snapshots.
func TestInstrumentedSnapshotDeterministic(t *testing.T) {
	first := instrumentedWorkloadSnapshot(t)
	second := instrumentedWorkloadSnapshot(t)
	if !reflect.DeepEqual(first, second) {
		t.Errorf("snapshots differ:\n%v\n%v", first, second)
	}
}

// TestDisabledMetricsLeaveSimulatorUninstrumented checks the no-op
// binding: simulators built with metrics off hold nil instruments.
func TestDisabledMetricsLeaveSimulatorUninstrumented(t *testing.T) {
	obs.Disable()
	n := netlist.New("plain")
	a := n.AddInput("a")
	n.AddOutput("q", n.Inv(a))
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWord(n)
	if err != nil {
		t.Fatal(err)
	}
	if s.mSettles != nil || s.mGates != nil {
		t.Error("scalar simulator bound live instruments with metrics disabled")
	}
	if w.mSettles != nil || w.mGates != nil || w.mLanes != nil {
		t.Error("word simulator bound live instruments with metrics disabled")
	}
	s.Eval()
	w.Eval()
}
