// Package gatesim simulates flattened netlists from internal/netlist:
// two-phase (settle combinational logic, clock flip-flops) with a
// levelised evaluation order. It exists to check that every synthesised
// BIST controller netlist matches its behavioural model cycle for cycle.
package gatesim

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/obs"
)

// Simulator executes one netlist. The zero value is not usable; call New.
type Simulator struct {
	nl     *netlist.Netlist
	values []bool // indexed by NetID
	order  []int  // combinational instance indices in topological order
	ffs    []int  // sequential instance indices
	const1 netlist.NetID
	cycles int
	// forced nets override their driver's value during settling —
	// the stuck-at fault injection mechanism of the logic-BIST fault
	// simulator.
	forced map[netlist.NetID]bool
	// Metrics are bound once at construction from the registry active
	// at that time; nil (the no-op instrument) when metrics are off.
	mSettles *obs.Counter
	mGates   *obs.Counter
}

// levelise validates the netlist and computes the evaluation structures
// shared by Simulator and WordSimulator: the combinational instance
// indices in topological order and the sequential instance indices. It
// fails on combinational loops or structural errors.
func levelise(nl *netlist.Netlist) (order, ffs []int, err error) {
	if err := nl.Validate(); err != nil {
		return nil, nil, err
	}
	insts := nl.Instances()
	// Kahn levelisation over combinational instances. FF outputs,
	// primary inputs and constants are sources.
	indeg := make([]int, len(insts))
	fanout := make(map[netlist.NetID][]int)
	for i, inst := range insts {
		if inst.Kind.IsSequential() {
			ffs = append(ffs, i)
			continue
		}
		for _, in := range inst.In {
			d := nl.Driver(in)
			if d >= 0 && !insts[d].Kind.IsSequential() {
				indeg[i]++
				fanout[insts[d].Out] = append(fanout[insts[d].Out], i)
			}
		}
	}
	var queue []int
	for i, inst := range insts {
		if !inst.Kind.IsSequential() && indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, j := range fanout[insts[i].Out] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	combCount := 0
	for _, inst := range insts {
		if !inst.Kind.IsSequential() {
			combCount++
		}
	}
	if len(order) != combCount {
		return nil, nil, fmt.Errorf("gatesim: netlist %s has a combinational loop", nl.Name)
	}
	return order, ffs, nil
}

// New levelises the netlist and returns a simulator in the post-reset
// state. It fails on combinational loops or structural errors.
func New(nl *netlist.Netlist) (*Simulator, error) {
	order, ffs, err := levelise(nl)
	if err != nil {
		return nil, err
	}
	reg := obs.Active()
	s := &Simulator{
		nl:       nl,
		values:   make([]bool, nl.NumNets()+1),
		order:    order,
		ffs:      ffs,
		mSettles: reg.Counter("gatesim.settles"),
		mGates:   reg.Counter("gatesim.gates_evaluated"),
	}
	s.const1 = s.constNet(true)
	s.Reset()
	return s, nil
}

// Reset applies the asynchronous reset: every flip-flop takes its Init
// value and the combinational logic settles. Primary inputs keep their
// current values. The cycle counter restarts at zero.
func (s *Simulator) Reset() {
	insts := s.nl.Instances()
	for _, i := range s.ffs {
		s.values[insts[i].Out] = insts[i].Init
	}
	s.settle()
	s.cycles = 0
}

func (s *Simulator) settle() {
	if s.const1 != netlist.Invalid {
		s.values[s.const1] = true
	}
	for id, v := range s.forced {
		s.values[id] = v
	}
	insts := s.nl.Instances()
	var in [3]bool
	for _, i := range s.order {
		inst := insts[i]
		for k, net := range inst.In {
			in[k] = s.values[net]
		}
		v := inst.Kind.Eval(in[:len(inst.In)])
		if fv, ok := s.forced[inst.Out]; ok {
			v = fv
		}
		s.values[inst.Out] = v
	}
	s.mSettles.Add(1)
	s.mGates.Add(int64(len(s.order)))
}

// Force pins a net to a value during settling regardless of its driver
// — stuck-at fault injection. Forcing also applies to primary inputs
// and flip-flop outputs.
func (s *Simulator) Force(id netlist.NetID, v bool) {
	if s.forced == nil {
		s.forced = make(map[netlist.NetID]bool)
	}
	s.forced[id] = v
	s.values[id] = v
}

// Unforce releases a forced net.
func (s *Simulator) Unforce(id netlist.NetID) {
	delete(s.forced, id)
}

func (s *Simulator) constNet(one bool) netlist.NetID {
	// Constants are identified through IsConst on candidate nets; the
	// netlist does not expose them directly, so probe via name lookup.
	for id := netlist.NetID(1); id <= netlist.NetID(s.nl.NumNets()); id++ {
		if c, v := s.nl.IsConst(id); c && v == one {
			return id
		}
	}
	return netlist.Invalid
}

// Set drives a primary input net.
func (s *Simulator) Set(id netlist.NetID, v bool) {
	s.values[id] = v
}

// SetByName drives the primary input with the given name, panicking if it
// does not exist (a test programming error).
func (s *Simulator) SetByName(name string, v bool) {
	id, ok := s.nl.InputByName(name)
	if !ok {
		panic("gatesim: no input named " + name)
	}
	s.Set(id, v)
}

// Get returns the settled value of a net.
func (s *Simulator) Get(id netlist.NetID) bool {
	return s.values[id]
}

// GetByName returns the value of the primary output with the given name.
func (s *Simulator) GetByName(name string) bool {
	id, ok := s.nl.OutputByName(name)
	if !ok {
		panic("gatesim: no output named " + name)
	}
	return s.Get(id)
}

// checkBusWidth rejects buses that cannot be represented in a uint64;
// wider buses would silently alias onto the low 64 bits.
func checkBusWidth(ids []netlist.NetID) {
	if len(ids) > 64 {
		panic(fmt.Sprintf("gatesim: bus of %d nets exceeds the 64-bit word", len(ids)))
	}
}

// GetBus reads a bus of nets as an unsigned integer, LSB first. Buses
// wider than 64 nets panic.
func (s *Simulator) GetBus(ids []netlist.NetID) uint64 {
	checkBusWidth(ids)
	var v uint64
	for i, id := range ids {
		if s.values[id] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// SetBus drives a bus of input nets from an unsigned integer, LSB
// first. Buses wider than 64 nets panic.
func (s *Simulator) SetBus(ids []netlist.NetID, v uint64) {
	checkBusWidth(ids)
	for i, id := range ids {
		s.Set(id, v>>uint(i)&1 == 1)
	}
}

// Eval settles combinational logic without clocking, so outputs reflect
// the current inputs. Useful for probing Mealy outputs mid-cycle.
func (s *Simulator) Eval() { s.settle() }

// Step advances one clock cycle: settle, capture every flip-flop's D,
// update Qs, settle again.
func (s *Simulator) Step() {
	s.settle()
	insts := s.nl.Instances()
	next := make([]bool, len(s.ffs))
	for k, i := range s.ffs {
		next[k] = s.values[insts[i].In[0]]
	}
	for k, i := range s.ffs {
		s.values[insts[i].Out] = next[k]
	}
	s.settle()
	s.cycles++
}

// StepN advances n clock cycles.
func (s *Simulator) StepN(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Cycles returns the number of Step calls since the last Reset.
func (s *Simulator) Cycles() int { return s.cycles }
