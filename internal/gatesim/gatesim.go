// Package gatesim simulates flattened netlists from internal/netlist:
// two-phase (settle combinational logic, clock flip-flops) with a
// levelised evaluation order. It exists to check that every synthesised
// BIST controller netlist matches its behavioural model cycle for cycle.
//
// Netlists with combinational cycles — wired-AND buses with feedback,
// cross-coupled latches, or loops closed by injected coupling faults —
// are simulated with a bounded-iteration relaxation settle instead of a
// levelised single pass. A cycle that reaches a fixpoint behaves like
// any other logic; one that oscillates trips the watchdog and surfaces
// as a sticky ErrUnsettled through Err rather than hanging or crashing
// the run. Long-running drives can also be cancelled: SetContext arms a
// periodic deadline/cancellation check in Step, again surfaced through
// Err.
package gatesim

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/netlist"
	"repro/internal/obs"
)

// ErrUnsettled is the sentinel every non-convergence failure wraps:
// the combinational relaxation loop exhausted its iteration watchdog
// without reaching a fixpoint, i.e. the netlist oscillates under the
// current inputs and forces. Test for it with errors.Is.
var ErrUnsettled = errors.New("gatesim: combinational logic did not settle")

// UnsettledError reports which netlist failed to settle and how many
// relaxation passes the watchdog allowed. It unwraps to ErrUnsettled.
type UnsettledError struct {
	Netlist string
	Iters   int
}

func (e *UnsettledError) Error() string {
	return fmt.Sprintf("gatesim: netlist %s did not settle after %d relaxation passes (oscillation)", e.Netlist, e.Iters)
}

func (e *UnsettledError) Unwrap() error { return ErrUnsettled }

// ctxCheckInterval is how many Step calls pass between context
// cancellation checks — frequent enough for prompt SIGINT response,
// rare enough to keep the per-cycle cost invisible.
const ctxCheckInterval = 256

// settleBudget bounds the relaxation passes a cyclic netlist gets
// before the watchdog declares oscillation. A convergent loop of n
// gates needs at most n passes; the budget is deliberately generous so
// only genuine oscillation trips it.
func settleBudget(cyclic int) int { return 2*cyclic + 8 }

// Simulator executes one netlist. The zero value is not usable; call New.
type Simulator struct {
	nl     *netlist.Netlist
	values []bool // indexed by NetID
	order  []int  // combinational instance indices in topological order
	cyclic []int  // combinational instances on loops, in index order
	ffs    []int  // sequential instance indices
	const1 netlist.NetID
	cycles int
	ctx    context.Context // optional cancellation, checked periodically
	err    error           // sticky: ErrUnsettled or ctx.Err()
	// forced nets override their driver's value during settling —
	// the stuck-at fault injection mechanism of the logic-BIST fault
	// simulator.
	forced map[netlist.NetID]bool
	// Metrics are bound once at construction from the registry active
	// at that time; nil (the no-op instrument) when metrics are off.
	mSettles   *obs.Counter
	mGates     *obs.Counter
	mUnsettled *obs.Counter
}

// levelCache memoises levelisation results across Simulator and
// WordSimulator instances built from the same netlist — grading loops
// construct thousands of simulators over a handful of controller
// netlists, and Kahn levelisation (plus Validate) dominated their
// construction cost. Entries are keyed by netlist pointer and guarded
// by a cheap structural fingerprint, so mutating a netlist (e.g.
// SetGateInput) invalidates its entry instead of serving stale orders.
// The cached slices are shared read-only by every simulator.
var (
	levelMu    sync.Mutex
	levelCache = map[*netlist.Netlist]levelEntry{}
)

// levelCacheLimit bounds the cache; netlist churn past it flushes the
// whole map (simpler than LRU and the working set is a few netlists).
const levelCacheLimit = 64

type levelEntry struct {
	fp     uint64
	order  []int
	cyclic []int
	ffs    []int
}

// topoFingerprint hashes the structure levelisation depends on — net
// count and every instance's kind and connectivity — with FNV-1a. It is
// two orders of magnitude cheaper than re-levelising and catches any
// post-construction mutation that could change the evaluation order.
func topoFingerprint(nl *netlist.Netlist) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(nl.NumNets()))
	for _, inst := range nl.Instances() {
		mix(uint64(inst.Kind))
		mix(uint64(inst.Out))
		for _, in := range inst.In {
			mix(uint64(in))
		}
	}
	return h
}

// levelise validates the netlist and computes the evaluation structures
// shared by Simulator and WordSimulator: the combinational instance
// indices in topological order, the instances on combinational loops
// (empty for the acyclic netlists every generator emits), and the
// sequential instance indices. It fails on structural errors. Results
// are cached per netlist (see levelCache); a cache hit skips both
// Validate and the Kahn pass.
func levelise(nl *netlist.Netlist) (order, cyclic, ffs []int, err error) {
	fp := topoFingerprint(nl)
	levelMu.Lock()
	if e, ok := levelCache[nl]; ok && e.fp == fp {
		levelMu.Unlock()
		obs.Active().Counter("gatesim.levelization_cache_hits").Add(1)
		return e.order, e.cyclic, e.ffs, nil
	}
	levelMu.Unlock()
	order, cyclic, ffs, err = leveliseUncached(nl)
	if err != nil {
		return nil, nil, nil, err
	}
	levelMu.Lock()
	if len(levelCache) >= levelCacheLimit {
		levelCache = map[*netlist.Netlist]levelEntry{}
	}
	levelCache[nl] = levelEntry{fp: fp, order: order, cyclic: cyclic, ffs: ffs}
	levelMu.Unlock()
	return order, cyclic, ffs, nil
}

func leveliseUncached(nl *netlist.Netlist) (order, cyclic, ffs []int, err error) {
	if err := nl.Validate(); err != nil {
		return nil, nil, nil, err
	}
	insts := nl.Instances()
	// Kahn levelisation over combinational instances. FF outputs,
	// primary inputs and constants are sources.
	indeg := make([]int, len(insts))
	fanout := make(map[netlist.NetID][]int)
	for i, inst := range insts {
		if inst.Kind.IsSequential() {
			ffs = append(ffs, i)
			continue
		}
		for _, in := range inst.In {
			d := nl.Driver(in)
			if d >= 0 && !insts[d].Kind.IsSequential() {
				indeg[i]++
				fanout[insts[d].Out] = append(fanout[insts[d].Out], i)
			}
		}
	}
	var queue []int
	for i, inst := range insts {
		if !inst.Kind.IsSequential() && indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	inOrder := make([]bool, len(insts))
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		inOrder[i] = true
		for _, j := range fanout[insts[i].Out] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	// Whatever Kahn could not order sits on (or downstream of) a
	// combinational loop; those instances are evaluated by relaxation.
	for i, inst := range insts {
		if !inst.Kind.IsSequential() && !inOrder[i] {
			cyclic = append(cyclic, i)
		}
	}
	return order, cyclic, ffs, nil
}

// New levelises the netlist and returns a simulator in the post-reset
// state. It fails on structural errors. Combinational loops are legal:
// the simulator settles them by bounded relaxation, and a loop that
// oscillates surfaces as ErrUnsettled through Err after the settle that
// tripped the watchdog.
func New(nl *netlist.Netlist) (*Simulator, error) {
	order, cyclic, ffs, err := levelise(nl)
	if err != nil {
		return nil, err
	}
	reg := obs.Active()
	s := &Simulator{
		nl:         nl,
		values:     make([]bool, nl.NumNets()+1),
		order:      order,
		cyclic:     cyclic,
		ffs:        ffs,
		mSettles:   reg.Counter("gatesim.settles"),
		mGates:     reg.Counter("gatesim.gates_evaluated"),
		mUnsettled: reg.Counter("gatesim.unsettled"),
	}
	s.const1 = s.constNet(true)
	s.Reset()
	return s, nil
}

// SetContext arms periodic cancellation checks: once ctx is cancelled
// or past its deadline, Step becomes a no-op within ctxCheckInterval
// cycles and Err returns the context's error. A nil ctx disarms.
func (s *Simulator) SetContext(ctx context.Context) { s.ctx = ctx }

// Err returns the sticky failure state: an *UnsettledError once a
// settle trips the oscillation watchdog, or the context error once a
// SetContext context is cancelled. Reset clears it. Drivers that loop
// over Step/Eval must check Err at their own boundaries — the
// per-cycle methods keep their void signatures.
func (s *Simulator) Err() error { return s.err }

// Reset applies the asynchronous reset: every flip-flop takes its Init
// value and the combinational logic settles. Primary inputs keep their
// current values. The cycle counter restarts at zero and the sticky
// error state clears.
func (s *Simulator) Reset() {
	insts := s.nl.Instances()
	for _, i := range s.ffs {
		s.values[insts[i].Out] = insts[i].Init
	}
	s.err = nil
	s.settle()
	s.cycles = 0
}

//mbist:hotpath
func (s *Simulator) settle() {
	if s.const1 != netlist.Invalid {
		s.values[s.const1] = true
	}
	for id, v := range s.forced {
		s.values[id] = v
	}
	passes := 1
	if s.settlePass() && len(s.cyclic) > 0 {
		// Values on loops moved: relax to a fixpoint under the watchdog.
		budget := settleBudget(len(s.cyclic))
		for changed := true; changed; passes++ {
			if passes >= budget {
				s.err = &UnsettledError{Netlist: s.nl.Name, Iters: passes}
				s.mUnsettled.Add(1)
				break
			}
			changed = s.settlePass()
		}
	}
	s.mSettles.Add(1)
	s.mGates.Add(int64(passes * (len(s.order) + len(s.cyclic))))
}

// settlePass evaluates every combinational instance once — topological
// order first, loop members last — and reports whether any loop
// member's output changed (the fixpoint test; acyclic outputs are
// final after one pass by construction).
//
//mbist:hotpath
func (s *Simulator) settlePass() bool {
	insts := s.nl.Instances()
	var in [3]bool
	eval := func(i int) bool { //mbist:exempt hotpathalloc non-escaping closure, stack-allocated; pinned at 0 allocs/op by the gatesim alloc tests
		inst := insts[i]
		for k, net := range inst.In {
			in[k] = s.values[net]
		}
		v := inst.Kind.Eval(in[:len(inst.In)])
		if fv, ok := s.forced[inst.Out]; ok {
			v = fv
		}
		changed := s.values[inst.Out] != v
		s.values[inst.Out] = v
		return changed
	}
	for _, i := range s.order {
		eval(i)
	}
	changed := false
	for _, i := range s.cyclic {
		if eval(i) {
			changed = true
		}
	}
	return changed
}

// Force pins a net to a value during settling regardless of its driver
// — stuck-at fault injection. Forcing also applies to primary inputs
// and flip-flop outputs.
func (s *Simulator) Force(id netlist.NetID, v bool) {
	if s.forced == nil {
		s.forced = make(map[netlist.NetID]bool)
	}
	s.forced[id] = v
	s.values[id] = v
}

// Unforce releases a forced net.
func (s *Simulator) Unforce(id netlist.NetID) {
	delete(s.forced, id)
}

func (s *Simulator) constNet(one bool) netlist.NetID {
	// Constants are identified through IsConst on candidate nets; the
	// netlist does not expose them directly, so probe via name lookup.
	for id := netlist.NetID(1); id <= netlist.NetID(s.nl.NumNets()); id++ {
		if c, v := s.nl.IsConst(id); c && v == one {
			return id
		}
	}
	return netlist.Invalid
}

// Set drives a primary input net.
func (s *Simulator) Set(id netlist.NetID, v bool) {
	s.values[id] = v
}

// SetByName drives the primary input with the given name, panicking if it
// does not exist (a test programming error).
func (s *Simulator) SetByName(name string, v bool) {
	id, ok := s.nl.InputByName(name)
	if !ok {
		panic("gatesim: no input named " + name)
	}
	s.Set(id, v)
}

// Get returns the settled value of a net.
func (s *Simulator) Get(id netlist.NetID) bool {
	return s.values[id]
}

// GetByName returns the value of the primary output with the given name.
func (s *Simulator) GetByName(name string) bool {
	id, ok := s.nl.OutputByName(name)
	if !ok {
		panic("gatesim: no output named " + name)
	}
	return s.Get(id)
}

// checkBusWidth rejects buses that cannot be represented in a uint64;
// wider buses would silently alias onto the low 64 bits.
func checkBusWidth(ids []netlist.NetID) {
	if len(ids) > 64 {
		panic(fmt.Sprintf("gatesim: bus of %d nets exceeds the 64-bit word", len(ids)))
	}
}

// GetBus reads a bus of nets as an unsigned integer, LSB first. Buses
// wider than 64 nets panic.
func (s *Simulator) GetBus(ids []netlist.NetID) uint64 {
	checkBusWidth(ids)
	var v uint64
	for i, id := range ids {
		if s.values[id] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// SetBus drives a bus of input nets from an unsigned integer, LSB
// first. Buses wider than 64 nets panic.
func (s *Simulator) SetBus(ids []netlist.NetID, v uint64) {
	checkBusWidth(ids)
	for i, id := range ids {
		s.Set(id, v>>uint(i)&1 == 1)
	}
}

// Eval settles combinational logic without clocking, so outputs reflect
// the current inputs. Useful for probing Mealy outputs mid-cycle.
func (s *Simulator) Eval() { s.settle() }

// Step advances one clock cycle: settle, capture every flip-flop's D,
// update Qs, settle again. Once Err is non-nil — oscillation watchdog
// or cancelled context — Step is a no-op, so runaway drivers that fail
// to check Err stop making progress instead of burning CPU on an
// already-failed run.
func (s *Simulator) Step() {
	if s.err != nil {
		return
	}
	if s.ctx != nil && s.cycles%ctxCheckInterval == 0 {
		if err := s.ctx.Err(); err != nil {
			s.err = err
			return
		}
	}
	s.settle()
	insts := s.nl.Instances()
	next := make([]bool, len(s.ffs))
	for k, i := range s.ffs {
		next[k] = s.values[insts[i].In[0]]
	}
	for k, i := range s.ffs {
		s.values[insts[i].Out] = next[k]
	}
	s.settle()
	s.cycles++
}

// StepN advances n clock cycles, stopping early once Err is non-nil.
func (s *Simulator) StepN(n int) {
	for i := 0; i < n && s.err == nil; i++ {
		s.Step()
	}
}

// Cycles returns the number of Step calls since the last Reset.
func (s *Simulator) Cycles() int { return s.cycles }
