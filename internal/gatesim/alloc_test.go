package gatesim_test

import (
	"testing"

	"repro/internal/gatesim"
	"repro/internal/netlist"
	"repro/internal/raceflag"
)

// TestWordSimSettleZeroAlloc pins the zero-allocation steady state of
// the word-simulator settle path on a real controller netlist: once
// constructed, a force / evaluate / read / clear cycle — including
// active-plane shrinking and regrowth — must not allocate. A
// regression here shows up as allocs-per-op growth in
// BenchmarkLogicBISTWordParallel.
func TestWordSimSettleZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; alloc pins need a non-race build")
	}
	nl := controllerNetlists(t)[0]
	ws, err := gatesim.NewWordPlanes(nl, 4)
	if err != nil {
		t.Fatal(err)
	}
	inputs := nl.Inputs()
	outputs := nl.Outputs()
	var sink uint64
	cycle := func() {
		ws.SetActivePlanes(4)
		for k, id := range inputs {
			ws.ForceLane(id, k+1, k&1 == 0)
		}
		ws.Eval()
		for _, id := range outputs {
			for p := 0; p < 4; p++ {
				sink ^= ws.GetPlane(id, p)
			}
		}
		ws.ClearForces()
		// The dense tail path: shrink to one plane and settle again.
		ws.SetActivePlanes(1)
		ws.Eval()
		sink ^= ws.Get(outputs[0])
	}
	cycle() // warm the forcedNets list to steady-state capacity

	if avg := testing.AllocsPerRun(50, cycle); avg != 0 {
		t.Errorf("settle path allocates %.1f objects per cycle in steady state, want 0", avg)
	}
	_ = sink
}

// TestWordSimStepZeroAlloc extends the pin to the clocked path: Step
// (settle, capture, update, settle) must also be allocation-free.
func TestWordSimStepZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; alloc pins need a non-race build")
	}
	nl := netlist.New("stepalloc")
	a := nl.AddInput("a")
	q := nl.AddFF(netlist.CellDFF, nl.Inv(a), false)
	nl.AddOutput("f", nl.And2(a, q))
	ws, err := gatesim.NewWord(nl)
	if err != nil {
		t.Fatal(err)
	}
	ws.Step()
	if avg := testing.AllocsPerRun(50, func() {
		ws.SetWord(a, 0xdeadbeef)
		ws.Step()
	}); avg != 0 {
		t.Errorf("Step allocates %.1f objects per cycle, want 0", avg)
	}
}
