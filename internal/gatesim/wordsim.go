package gatesim

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/netlist"
	"repro/internal/obs"
)

// Lanes is the machine-word parallelism of one bit-plane of the
// WordSimulator: one settle pass over a single plane evaluates this
// many independent copies of the netlist. A multi-plane simulator
// (NewWordPlanes) carries Planes()×Lanes logical lanes.
const Lanes = 64

// MaxPlanes bounds the plane count of NewWordPlanes: 8 planes give 512
// logical lanes, past which the per-instance scratch stops fitting the
// stack-friendly fixed buffers and the working set outgrows L1 anyway.
const MaxPlanes = 8

// WordSimulator is the bit-parallel counterpart of Simulator: every net
// holds P ≥ 1 uint64 bit-planes whose bit L of plane p is the net's
// value in logical lane p*64+L, so one settle pass evaluates up to
// P×64 independent copies of the netlist. The intended use is
// PPSFP-style fault simulation — lane 0 carries the good machine and
// the remaining lanes faulty machines distinguished only by per-lane
// forced nets — but nothing in the simulator itself assumes that
// layout. The multi-plane inner loop amortises instruction decode,
// force lookups and fixpoint bookkeeping over P words per gate, which
// is where the >64-lane speedup comes from.
//
// Evaluation semantics match Simulator exactly, lane by lane: the same
// levelised two-phase model (settle combinational logic, clock
// flip-flops), the same forced-net override order, the same reset
// behaviour. A lane with no forces always computes the same values the
// scalar Simulator would.
type WordSimulator struct {
	nl     *netlist.Netlist
	planes int      // P: uint64 bit-planes per net
	active int      // planes currently settled, in [1, P]; see SetActivePlanes
	values []uint64 // indexed by NetID*P+p; bit L = value in lane p*64+L
	order  []int    // combinational instance indices in topological order
	cyclic []int    // combinational instances on loops, in index order
	ffs    []int    // sequential instance indices
	next   []uint64 // Step scratch, P words per flip-flop
	const1 netlist.NetID
	cycles int
	ctx    context.Context // optional cancellation, checked periodically
	err    error           // sticky: ErrUnsettled or ctx.Err()
	// Per-net-plane force masks: where forceMask has a bit set, the net
	// is pinned to the corresponding forceVal bit during settling — the
	// per-lane stuck-at injection mechanism. Nets with all-zero masks
	// are unforced; forcedNets lists the nets with any non-zero plane
	// mask so ClearForces is O(active forces).
	forceMask  []uint64
	forceVal   []uint64
	forcedNets []netlist.NetID
	forcedFlag []bool // per net: any plane forced — one byte answers "is this net forced?"
	// Metrics are bound once at construction from the registry active
	// at that time; nil (the no-op instrument) when metrics are off.
	// mLanes samples the forced-lane occupancy at every settle — how
	// full the PPSFP batches keep the logical lanes.
	mSettles   *obs.Counter
	mGates     *obs.Counter
	mUnsettled *obs.Counter
	mLanes     *obs.Span
}

// NewWord levelises the netlist and returns a single-plane (64-lane)
// word simulator in the post-reset state. It fails on structural
// errors; combinational loops are settled by bounded relaxation exactly
// like the scalar Simulator, with oscillation surfacing through Err as
// ErrUnsettled.
func NewWord(nl *netlist.Netlist) (*WordSimulator, error) {
	return NewWordPlanes(nl, 1)
}

// NewWordPlanes is NewWord with planes uint64 bit-planes per net,
// giving planes×64 logical lanes per settle. planes must be in
// [1, MaxPlanes].
func NewWordPlanes(nl *netlist.Netlist, planes int) (*WordSimulator, error) {
	if planes < 1 || planes > MaxPlanes {
		return nil, fmt.Errorf("gatesim: %d planes outside [1,%d]", planes, MaxPlanes)
	}
	order, cyclic, ffs, err := levelise(nl)
	if err != nil {
		return nil, err
	}
	reg := obs.Active()
	n := (nl.NumNets() + 1) * planes
	s := &WordSimulator{
		nl:         nl,
		planes:     planes,
		active:     planes,
		values:     make([]uint64, n),
		order:      order,
		cyclic:     cyclic,
		ffs:        ffs,
		next:       make([]uint64, len(ffs)*planes),
		forceMask:  make([]uint64, n),
		forceVal:   make([]uint64, n),
		forcedFlag: make([]bool, nl.NumNets()+1),
		mSettles:   reg.Counter("gatesim.word.settles"),
		mGates:     reg.Counter("gatesim.word.gates_evaluated"),
		mUnsettled: reg.Counter("gatesim.word.unsettled"),
		mLanes:     reg.Span("gatesim.word.forced_lanes"),
	}
	for id := netlist.NetID(1); id <= netlist.NetID(nl.NumNets()); id++ {
		if c, v := nl.IsConst(id); c && v {
			s.const1 = id
			break
		}
	}
	s.Reset()
	return s, nil
}

// Planes returns the number of uint64 bit-planes per net.
func (s *WordSimulator) Planes() int { return s.planes }

// ActivePlanes returns the number of planes the next settle evaluates.
func (s *WordSimulator) ActivePlanes() int { return s.active }

// SetActivePlanes bounds settling to the first n planes, so a batching
// layer whose occupancy shrank (fault dropping) pays per-gate settle
// cost proportional to the lanes it actually uses instead of the full
// allocated width. Planes at index n and beyond keep stale values and
// must not be read until re-activated. Re-activating planes warm-starts
// them from plane 0 — every reactivated lane mirrors the settled good
// machine, which is exactly the state a scalar fault simulation starts
// from. n is clamped to [1, Planes()].
func (s *WordSimulator) SetActivePlanes(n int) {
	if n < 1 {
		n = 1
	}
	if n > s.planes {
		n = s.planes
	}
	if n > s.active {
		P := s.planes
		for o := 0; o < len(s.values); o += P {
			v := s.values[o]
			for p := s.active; p < n; p++ {
				s.values[o+p] = v
			}
		}
	}
	s.active = n
}

// TotalLanes returns the number of logical lanes (Planes()×64).
func (s *WordSimulator) TotalLanes() int { return s.planes * Lanes }

// Reset applies the asynchronous reset in every lane: each flip-flop
// takes its Init value and the combinational logic settles. Primary
// inputs keep their current values. The cycle counter restarts at zero.
func (s *WordSimulator) Reset() {
	insts := s.nl.Instances()
	for _, i := range s.ffs {
		var v uint64
		if insts[i].Init {
			v = ^uint64(0)
		}
		o := int(insts[i].Out) * s.planes
		for p := 0; p < s.planes; p++ {
			s.values[o+p] = v
		}
	}
	s.err = nil
	s.settle()
	s.cycles = 0
}

// SetContext arms periodic cancellation checks: once ctx is cancelled
// or past its deadline, Step becomes a no-op within ctxCheckInterval
// cycles and Err returns the context's error. A nil ctx disarms.
func (s *WordSimulator) SetContext(ctx context.Context) { s.ctx = ctx }

// Err returns the sticky failure state: an *UnsettledError once a
// settle trips the oscillation watchdog, or the context error once a
// SetContext context is cancelled. Reset clears it.
func (s *WordSimulator) Err() error { return s.err }

//mbist:hotpath
func (s *WordSimulator) settle() {
	P := s.planes
	A := s.active
	if s.const1 != netlist.Invalid {
		o := int(s.const1) * P
		for p := 0; p < A; p++ {
			s.values[o+p] = ^uint64(0)
		}
	}
	for _, id := range s.forcedNets {
		o := int(id) * P
		for p := 0; p < A; p++ {
			m := s.forceMask[o+p]
			s.values[o+p] = s.values[o+p]&^m | s.forceVal[o+p]&m
		}
	}
	passes := 1
	if s.settlePass() && len(s.cyclic) > 0 {
		// Values on loops moved: relax to a fixpoint under the watchdog.
		budget := settleBudget(len(s.cyclic))
		for changed := true; changed; passes++ {
			if passes >= budget {
				s.err = &UnsettledError{Netlist: s.nl.Name, Iters: passes}
				s.mUnsettled.Add(1)
				break
			}
			changed = s.settlePass()
		}
	}
	s.mSettles.Add(1)
	s.mGates.Add(int64(passes * (len(s.order) + len(s.cyclic)) * A))
	if s.mLanes != nil { // skip the popcount walk when metrics are off
		s.mLanes.Observe(int64(s.ForcedLanes()))
	}
}

//mbist:hotpath
func (s *WordSimulator) settlePass() bool {
	if s.planes == 1 {
		return s.settlePass1()
	}
	if s.planes == 4 && s.active == 4 {
		return s.settlePass4()
	}
	return s.settlePassN()
}

// settlePass1 evaluates every combinational instance once on the
// single-plane layout — topological order first, loop members last —
// and reports whether any loop member's output word changed (the
// fixpoint test). It is kept separate from settlePassN so the 64-lane
// path pays no per-plane loop overhead.
//
//mbist:hotpath
func (s *WordSimulator) settlePass1() bool {
	insts := s.nl.Instances()
	eval := func(i int) bool { //mbist:exempt hotpathalloc non-escaping closure, stack-allocated; pinned at 0 allocs/op by the gatesim alloc tests
		inst := &insts[i]
		var v uint64
		switch inst.Kind {
		case netlist.CellInv:
			v = ^s.values[inst.In[0]]
		case netlist.CellBuf:
			v = s.values[inst.In[0]]
		case netlist.CellNand2:
			v = ^(s.values[inst.In[0]] & s.values[inst.In[1]])
		case netlist.CellNor2:
			v = ^(s.values[inst.In[0]] | s.values[inst.In[1]])
		case netlist.CellAnd2:
			v = s.values[inst.In[0]] & s.values[inst.In[1]]
		case netlist.CellOr2:
			v = s.values[inst.In[0]] | s.values[inst.In[1]]
		case netlist.CellXor2:
			v = s.values[inst.In[0]] ^ s.values[inst.In[1]]
		case netlist.CellXnor2:
			v = ^(s.values[inst.In[0]] ^ s.values[inst.In[1]])
		case netlist.CellMux2:
			sel := s.values[inst.In[0]]
			v = sel&s.values[inst.In[2]] | ^sel&s.values[inst.In[1]]
		default:
			panic("gatesim: word eval on sequential cell " + inst.Kind.String())
		}
		if m := s.forceMask[inst.Out]; m != 0 {
			v = v&^m | s.forceVal[inst.Out]&m
		}
		changed := s.values[inst.Out] != v
		s.values[inst.Out] = v
		return changed
	}
	for _, i := range s.order {
		eval(i)
	}
	changed := false
	for _, i := range s.cyclic {
		if eval(i) {
			changed = true
		}
	}
	return changed
}

// settlePassN is settlePass1 generalised to P planes: each instance is
// decoded once and its operation applied to the active plane words, so
// the per-gate overhead (dispatch, force lookup, change tracking) is
// amortised across up to P×64 lanes while shrunken batches only pay
// for the planes they occupy.
//
//mbist:hotpath
func (s *WordSimulator) settlePassN() bool {
	P := s.planes
	A := s.active
	insts := s.nl.Instances()
	vals := s.values
	var nv [MaxPlanes]uint64
	eval := func(i int) bool { //mbist:exempt hotpathalloc non-escaping closure, stack-allocated; pinned at 0 allocs/op by the gatesim alloc tests
		inst := &insts[i]
		a := int(inst.In[0]) * P
		switch inst.Kind {
		case netlist.CellInv:
			for p := 0; p < A; p++ {
				nv[p] = ^vals[a+p]
			}
		case netlist.CellBuf:
			for p := 0; p < A; p++ {
				nv[p] = vals[a+p]
			}
		case netlist.CellNand2:
			b := int(inst.In[1]) * P
			for p := 0; p < A; p++ {
				nv[p] = ^(vals[a+p] & vals[b+p])
			}
		case netlist.CellNor2:
			b := int(inst.In[1]) * P
			for p := 0; p < A; p++ {
				nv[p] = ^(vals[a+p] | vals[b+p])
			}
		case netlist.CellAnd2:
			b := int(inst.In[1]) * P
			for p := 0; p < A; p++ {
				nv[p] = vals[a+p] & vals[b+p]
			}
		case netlist.CellOr2:
			b := int(inst.In[1]) * P
			for p := 0; p < A; p++ {
				nv[p] = vals[a+p] | vals[b+p]
			}
		case netlist.CellXor2:
			b := int(inst.In[1]) * P
			for p := 0; p < A; p++ {
				nv[p] = vals[a+p] ^ vals[b+p]
			}
		case netlist.CellXnor2:
			b := int(inst.In[1]) * P
			for p := 0; p < A; p++ {
				nv[p] = ^(vals[a+p] ^ vals[b+p])
			}
		case netlist.CellMux2:
			b := int(inst.In[1]) * P
			c := int(inst.In[2]) * P
			for p := 0; p < A; p++ {
				sel := vals[a+p]
				nv[p] = sel&vals[c+p] | ^sel&vals[b+p]
			}
		default:
			panic("gatesim: word eval on sequential cell " + inst.Kind.String())
		}
		o := int(inst.Out) * P
		changed := false
		for p := 0; p < A; p++ {
			v := nv[p]
			if m := s.forceMask[o+p]; m != 0 {
				v = v&^m | s.forceVal[o+p]&m
			}
			if vals[o+p] != v {
				vals[o+p] = v
				changed = true
			}
		}
		return changed
	}
	for _, i := range s.order {
		eval(i)
	}
	changed := false
	for _, i := range s.cyclic {
		if eval(i) {
			changed = true
		}
	}
	return changed
}

// settlePass4 is the fully unrolled 4-plane kernel (the default
// multi-plane width at full occupancy): each instance is decoded once
// for four 64-lane words held in registers, with the force blend gated
// on a one-byte per-net flag instead of four mask loads. This is where
// the >64-lane engine earns its speedup — per plane word it is cheaper
// than the single-plane pass because dispatch, bounds checks and change
// tracking are amortised 4×.
//
//mbist:hotpath
func (s *WordSimulator) settlePass4() bool {
	insts := s.nl.Instances()
	vals := s.values
	eval := func(i int) bool { //mbist:exempt hotpathalloc non-escaping closure, stack-allocated; pinned at 0 allocs/op by the gatesim alloc tests
		inst := &insts[i]
		a := int(inst.In[0]) * 4
		ax := (*[4]uint64)(vals[a : a+4])
		var n0, n1, n2, n3 uint64
		switch inst.Kind {
		case netlist.CellInv:
			n0, n1, n2, n3 = ^ax[0], ^ax[1], ^ax[2], ^ax[3]
		case netlist.CellBuf:
			n0, n1, n2, n3 = ax[0], ax[1], ax[2], ax[3]
		case netlist.CellNand2:
			b := int(inst.In[1]) * 4
			bx := (*[4]uint64)(vals[b : b+4])
			n0, n1, n2, n3 = ^(ax[0] & bx[0]), ^(ax[1] & bx[1]), ^(ax[2] & bx[2]), ^(ax[3] & bx[3])
		case netlist.CellNor2:
			b := int(inst.In[1]) * 4
			bx := (*[4]uint64)(vals[b : b+4])
			n0, n1, n2, n3 = ^(ax[0] | bx[0]), ^(ax[1] | bx[1]), ^(ax[2] | bx[2]), ^(ax[3] | bx[3])
		case netlist.CellAnd2:
			b := int(inst.In[1]) * 4
			bx := (*[4]uint64)(vals[b : b+4])
			n0, n1, n2, n3 = ax[0]&bx[0], ax[1]&bx[1], ax[2]&bx[2], ax[3]&bx[3]
		case netlist.CellOr2:
			b := int(inst.In[1]) * 4
			bx := (*[4]uint64)(vals[b : b+4])
			n0, n1, n2, n3 = ax[0]|bx[0], ax[1]|bx[1], ax[2]|bx[2], ax[3]|bx[3]
		case netlist.CellXor2:
			b := int(inst.In[1]) * 4
			bx := (*[4]uint64)(vals[b : b+4])
			n0, n1, n2, n3 = ax[0]^bx[0], ax[1]^bx[1], ax[2]^bx[2], ax[3]^bx[3]
		case netlist.CellXnor2:
			b := int(inst.In[1]) * 4
			bx := (*[4]uint64)(vals[b : b+4])
			n0, n1, n2, n3 = ^(ax[0] ^ bx[0]), ^(ax[1] ^ bx[1]), ^(ax[2] ^ bx[2]), ^(ax[3] ^ bx[3])
		case netlist.CellMux2:
			b := int(inst.In[1]) * 4
			c := int(inst.In[2]) * 4
			bx := (*[4]uint64)(vals[b : b+4])
			cx := (*[4]uint64)(vals[c : c+4])
			n0 = ax[0]&cx[0] | ^ax[0]&bx[0]
			n1 = ax[1]&cx[1] | ^ax[1]&bx[1]
			n2 = ax[2]&cx[2] | ^ax[2]&bx[2]
			n3 = ax[3]&cx[3] | ^ax[3]&bx[3]
		default:
			panic("gatesim: word eval on sequential cell " + inst.Kind.String())
		}
		o := int(inst.Out) * 4
		if s.forcedFlag[inst.Out] {
			fm := (*[4]uint64)(s.forceMask[o : o+4])
			fv := (*[4]uint64)(s.forceVal[o : o+4])
			n0 = n0&^fm[0] | fv[0]&fm[0]
			n1 = n1&^fm[1] | fv[1]&fm[1]
			n2 = n2&^fm[2] | fv[2]&fm[2]
			n3 = n3&^fm[3] | fv[3]&fm[3]
		}
		ox := (*[4]uint64)(vals[o : o+4])
		changed := ox[0] != n0 || ox[1] != n1 || ox[2] != n2 || ox[3] != n3
		ox[0], ox[1], ox[2], ox[3] = n0, n1, n2, n3
		return changed
	}
	for _, i := range s.order {
		eval(i)
	}
	changed := false
	for _, i := range s.cyclic {
		if eval(i) {
			changed = true
		}
	}
	return changed
}

// ForceLane pins a net to a value in one logical lane during settling
// regardless of its driver — per-lane stuck-at fault injection. Forcing
// also applies to primary inputs and flip-flop outputs. Lane 0 is
// conventionally kept unforced as the good machine, but the simulator
// does not enforce that.
func (s *WordSimulator) ForceLane(id netlist.NetID, lane int, v bool) {
	if lane < 0 || lane >= s.TotalLanes() {
		panic("gatesim: force lane out of range")
	}
	P := s.planes
	o := int(id) * P
	if !s.forcedFlag[id] {
		s.forcedFlag[id] = true
		s.forcedNets = append(s.forcedNets, id)
	}
	idx := o + lane>>6
	bit := uint64(1) << uint(lane&63)
	s.forceMask[idx] |= bit
	if v {
		s.forceVal[idx] |= bit
	} else {
		s.forceVal[idx] &^= bit
	}
	s.values[idx] = s.values[idx]&^bit | s.forceVal[idx]&bit
}

// Unforce releases every forced lane of a net. Like the scalar
// simulator's Unforce, it does not restore the net's pre-force value:
// driven nets recover on the next settle, while primary inputs and
// flip-flop outputs keep the forced bits until re-Set.
func (s *WordSimulator) Unforce(id netlist.NetID) {
	o := int(id) * s.planes
	for p := 0; p < s.planes; p++ {
		s.forceMask[o+p] = 0
		s.forceVal[o+p] = 0
	}
	if !s.forcedFlag[id] {
		return
	}
	s.forcedFlag[id] = false
	for i, fid := range s.forcedNets {
		if fid == id {
			s.forcedNets = append(s.forcedNets[:i], s.forcedNets[i+1:]...)
			break
		}
	}
}

// ClearForces releases every forced net in O(active forces).
func (s *WordSimulator) ClearForces() {
	P := s.planes
	for _, id := range s.forcedNets {
		o := int(id) * P
		for p := 0; p < P; p++ {
			s.forceMask[o+p] = 0
			s.forceVal[o+p] = 0
		}
		s.forcedFlag[id] = false
	}
	s.forcedNets = s.forcedNets[:0]
}

// ForcedLanes returns the number of distinct logical lanes with at
// least one active force — a sanity probe for batching layers.
func (s *WordSimulator) ForcedLanes() int {
	P := s.planes
	n := 0
	for p := 0; p < P; p++ {
		var m uint64
		for _, id := range s.forcedNets {
			m |= s.forceMask[int(id)*P+p]
		}
		n += bits.OnesCount64(m)
	}
	return n
}

// Set drives a primary input net to the same value in every lane of
// every plane.
func (s *WordSimulator) Set(id netlist.NetID, v bool) {
	var w uint64
	if v {
		w = ^uint64(0)
	}
	o := int(id) * s.planes
	for p := 0; p < s.planes; p++ {
		s.values[o+p] = w
	}
}

// SetWord drives plane 0 of a primary input net with an arbitrary
// per-lane word (the planes beyond the first are untouched; see
// SetWordPlane).
func (s *WordSimulator) SetWord(id netlist.NetID, w uint64) {
	s.values[int(id)*s.planes] = w
}

// SetWordPlane drives one plane of a primary input net with an
// arbitrary per-lane word.
func (s *WordSimulator) SetWordPlane(id netlist.NetID, plane int, w uint64) {
	s.values[int(id)*s.planes+plane] = w
}

// Get returns the settled plane-0 word of a net (lanes 0..63).
func (s *WordSimulator) Get(id netlist.NetID) uint64 {
	return s.values[int(id)*s.planes]
}

// GetPlane returns the settled word of one plane of a net (logical
// lanes plane*64..plane*64+63).
func (s *WordSimulator) GetPlane(id netlist.NetID, plane int) uint64 {
	return s.values[int(id)*s.planes+plane]
}

// GetLane returns the settled value of a net in one logical lane.
func (s *WordSimulator) GetLane(id netlist.NetID, lane int) bool {
	return s.values[int(id)*s.planes+lane>>6]>>uint(lane&63)&1 == 1
}

// Eval settles combinational logic in every lane without clocking.
func (s *WordSimulator) Eval() { s.settle() }

// Step advances one clock cycle in every lane: settle, capture every
// flip-flop's D words, update Qs, settle again. Once Err is non-nil —
// oscillation watchdog or cancelled context — Step is a no-op.
func (s *WordSimulator) Step() {
	if s.err != nil {
		return
	}
	if s.ctx != nil && s.cycles%ctxCheckInterval == 0 {
		if err := s.ctx.Err(); err != nil {
			s.err = err
			return
		}
	}
	s.settle()
	P := s.planes
	insts := s.nl.Instances()
	for k, i := range s.ffs {
		d := int(insts[i].In[0]) * P
		copy(s.next[k*P:(k+1)*P], s.values[d:d+P])
	}
	for k, i := range s.ffs {
		q := int(insts[i].Out) * P
		copy(s.values[q:q+P], s.next[k*P:(k+1)*P])
	}
	s.settle()
	s.cycles++
}

// StepN advances n clock cycles, stopping early once Err is non-nil.
func (s *WordSimulator) StepN(n int) {
	for i := 0; i < n && s.err == nil; i++ {
		s.Step()
	}
}

// Cycles returns the number of Step calls since the last Reset.
func (s *WordSimulator) Cycles() int { return s.cycles }
