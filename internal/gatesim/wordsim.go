package gatesim

import (
	"context"
	"math/bits"

	"repro/internal/netlist"
	"repro/internal/obs"
)

// Lanes is the machine-word parallelism of the WordSimulator: one settle
// pass evaluates this many independent copies of the netlist.
const Lanes = 64

// WordSimulator is the bit-parallel counterpart of Simulator: every net
// holds a 64-bit word whose bit L is the net's value in machine (lane)
// L, so one settle pass evaluates 64 independent copies of the netlist.
// The intended use is PPSFP-style fault simulation — lane 0 carries the
// good machine and lanes 1..63 carry faulty machines distinguished only
// by per-lane forced nets — but nothing in the simulator itself assumes
// that layout.
//
// Evaluation semantics match Simulator exactly, lane by lane: the same
// levelised two-phase model (settle combinational logic, clock
// flip-flops), the same forced-net override order, the same reset
// behaviour. A lane with no forces always computes the same values the
// scalar Simulator would.
type WordSimulator struct {
	nl     *netlist.Netlist
	values []uint64 // indexed by NetID; bit L = value in lane L
	order  []int    // combinational instance indices in topological order
	cyclic []int    // combinational instances on loops, in index order
	ffs    []int    // sequential instance indices
	next   []uint64 // Step scratch, one word per flip-flop
	const1 netlist.NetID
	cycles int
	ctx    context.Context // optional cancellation, checked periodically
	err    error           // sticky: ErrUnsettled or ctx.Err()
	// Per-net force masks: where forceMask has a bit set, the net is
	// pinned to the corresponding forceVal bit during settling — the
	// per-lane stuck-at injection mechanism. Nets with a zero mask are
	// unforced; forcedNets lists the nets with a non-zero mask so
	// ClearForces is O(active forces).
	forceMask  []uint64
	forceVal   []uint64
	forcedNets []netlist.NetID
	// Metrics are bound once at construction from the registry active
	// at that time; nil (the no-op instrument) when metrics are off.
	// mLanes samples the forced-lane occupancy at every settle — how
	// full the PPSFP batches keep the 64-lane word.
	mSettles   *obs.Counter
	mGates     *obs.Counter
	mUnsettled *obs.Counter
	mLanes     *obs.Span
}

// NewWord levelises the netlist and returns a word simulator in the
// post-reset state. It fails on structural errors; combinational loops
// are settled by bounded relaxation exactly like the scalar Simulator,
// with oscillation surfacing through Err as ErrUnsettled.
func NewWord(nl *netlist.Netlist) (*WordSimulator, error) {
	order, cyclic, ffs, err := levelise(nl)
	if err != nil {
		return nil, err
	}
	reg := obs.Active()
	s := &WordSimulator{
		nl:         nl,
		values:     make([]uint64, nl.NumNets()+1),
		order:      order,
		cyclic:     cyclic,
		ffs:        ffs,
		next:       make([]uint64, len(ffs)),
		forceMask:  make([]uint64, nl.NumNets()+1),
		forceVal:   make([]uint64, nl.NumNets()+1),
		mSettles:   reg.Counter("gatesim.word.settles"),
		mGates:     reg.Counter("gatesim.word.gates_evaluated"),
		mUnsettled: reg.Counter("gatesim.word.unsettled"),
		mLanes:     reg.Span("gatesim.word.forced_lanes"),
	}
	for id := netlist.NetID(1); id <= netlist.NetID(nl.NumNets()); id++ {
		if c, v := nl.IsConst(id); c && v {
			s.const1 = id
			break
		}
	}
	s.Reset()
	return s, nil
}

// Reset applies the asynchronous reset in every lane: each flip-flop
// takes its Init value and the combinational logic settles. Primary
// inputs keep their current values. The cycle counter restarts at zero.
func (s *WordSimulator) Reset() {
	insts := s.nl.Instances()
	for _, i := range s.ffs {
		if insts[i].Init {
			s.values[insts[i].Out] = ^uint64(0)
		} else {
			s.values[insts[i].Out] = 0
		}
	}
	s.err = nil
	s.settle()
	s.cycles = 0
}

// SetContext arms periodic cancellation checks: once ctx is cancelled
// or past its deadline, Step becomes a no-op within ctxCheckInterval
// cycles and Err returns the context's error. A nil ctx disarms.
func (s *WordSimulator) SetContext(ctx context.Context) { s.ctx = ctx }

// Err returns the sticky failure state: an *UnsettledError once a
// settle trips the oscillation watchdog, or the context error once a
// SetContext context is cancelled. Reset clears it.
func (s *WordSimulator) Err() error { return s.err }

func (s *WordSimulator) settle() {
	if s.const1 != netlist.Invalid {
		s.values[s.const1] = ^uint64(0)
	}
	for _, id := range s.forcedNets {
		m := s.forceMask[id]
		s.values[id] = s.values[id]&^m | s.forceVal[id]&m
	}
	passes := 1
	if s.settlePass() && len(s.cyclic) > 0 {
		// Values on loops moved: relax to a fixpoint under the watchdog.
		budget := settleBudget(len(s.cyclic))
		for changed := true; changed; passes++ {
			if passes >= budget {
				s.err = &UnsettledError{Netlist: s.nl.Name, Iters: passes}
				s.mUnsettled.Add(1)
				break
			}
			changed = s.settlePass()
		}
	}
	s.mSettles.Add(1)
	s.mGates.Add(int64(passes * (len(s.order) + len(s.cyclic))))
	if s.mLanes != nil { // skip the popcount walk when metrics are off
		s.mLanes.Observe(int64(s.ForcedLanes()))
	}
}

// settlePass evaluates every combinational instance once — topological
// order first, loop members last — and reports whether any loop
// member's output word changed (the fixpoint test).
func (s *WordSimulator) settlePass() bool {
	insts := s.nl.Instances()
	eval := func(i int) bool {
		inst := &insts[i]
		var v uint64
		switch inst.Kind {
		case netlist.CellInv:
			v = ^s.values[inst.In[0]]
		case netlist.CellBuf:
			v = s.values[inst.In[0]]
		case netlist.CellNand2:
			v = ^(s.values[inst.In[0]] & s.values[inst.In[1]])
		case netlist.CellNor2:
			v = ^(s.values[inst.In[0]] | s.values[inst.In[1]])
		case netlist.CellAnd2:
			v = s.values[inst.In[0]] & s.values[inst.In[1]]
		case netlist.CellOr2:
			v = s.values[inst.In[0]] | s.values[inst.In[1]]
		case netlist.CellXor2:
			v = s.values[inst.In[0]] ^ s.values[inst.In[1]]
		case netlist.CellXnor2:
			v = ^(s.values[inst.In[0]] ^ s.values[inst.In[1]])
		case netlist.CellMux2:
			sel := s.values[inst.In[0]]
			v = sel&s.values[inst.In[2]] | ^sel&s.values[inst.In[1]]
		default:
			panic("gatesim: word eval on sequential cell " + inst.Kind.String())
		}
		if m := s.forceMask[inst.Out]; m != 0 {
			v = v&^m | s.forceVal[inst.Out]&m
		}
		changed := s.values[inst.Out] != v
		s.values[inst.Out] = v
		return changed
	}
	for _, i := range s.order {
		eval(i)
	}
	changed := false
	for _, i := range s.cyclic {
		if eval(i) {
			changed = true
		}
	}
	return changed
}

// ForceLane pins a net to a value in one lane during settling regardless
// of its driver — per-lane stuck-at fault injection. Forcing also
// applies to primary inputs and flip-flop outputs. Lane 0 is
// conventionally kept unforced as the good machine, but the simulator
// does not enforce that.
func (s *WordSimulator) ForceLane(id netlist.NetID, lane int, v bool) {
	if lane < 0 || lane >= Lanes {
		panic("gatesim: force lane out of range")
	}
	if s.forceMask[id] == 0 {
		s.forcedNets = append(s.forcedNets, id)
	}
	bit := uint64(1) << uint(lane)
	s.forceMask[id] |= bit
	if v {
		s.forceVal[id] |= bit
	} else {
		s.forceVal[id] &^= bit
	}
	s.values[id] = s.values[id]&^bit | s.forceVal[id]&bit
}

// Unforce releases every forced lane of a net. Like the scalar
// simulator's Unforce, it does not restore the net's pre-force value:
// driven nets recover on the next settle, while primary inputs and
// flip-flop outputs keep the forced bits until re-Set.
func (s *WordSimulator) Unforce(id netlist.NetID) {
	if s.forceMask[id] == 0 {
		return
	}
	s.forceMask[id] = 0
	s.forceVal[id] = 0
	for i, fid := range s.forcedNets {
		if fid == id {
			s.forcedNets = append(s.forcedNets[:i], s.forcedNets[i+1:]...)
			break
		}
	}
}

// ClearForces releases every forced net in O(active forces).
func (s *WordSimulator) ClearForces() {
	for _, id := range s.forcedNets {
		s.forceMask[id] = 0
		s.forceVal[id] = 0
	}
	s.forcedNets = s.forcedNets[:0]
}

// ForcedLanes returns the number of distinct lanes with at least one
// active force — a sanity probe for batching layers.
func (s *WordSimulator) ForcedLanes() int {
	var m uint64
	for _, id := range s.forcedNets {
		m |= s.forceMask[id]
	}
	return bits.OnesCount64(m)
}

// Set drives a primary input net to the same value in every lane.
func (s *WordSimulator) Set(id netlist.NetID, v bool) {
	if v {
		s.values[id] = ^uint64(0)
	} else {
		s.values[id] = 0
	}
}

// SetWord drives a primary input net with an arbitrary per-lane word.
func (s *WordSimulator) SetWord(id netlist.NetID, w uint64) {
	s.values[id] = w
}

// Get returns the settled per-lane word of a net.
func (s *WordSimulator) Get(id netlist.NetID) uint64 {
	return s.values[id]
}

// GetLane returns the settled value of a net in one lane.
func (s *WordSimulator) GetLane(id netlist.NetID, lane int) bool {
	return s.values[id]>>uint(lane)&1 == 1
}

// Eval settles combinational logic in every lane without clocking.
func (s *WordSimulator) Eval() { s.settle() }

// Step advances one clock cycle in every lane: settle, capture every
// flip-flop's D word, update Qs, settle again. Once Err is non-nil —
// oscillation watchdog or cancelled context — Step is a no-op.
func (s *WordSimulator) Step() {
	if s.err != nil {
		return
	}
	if s.ctx != nil && s.cycles%ctxCheckInterval == 0 {
		if err := s.ctx.Err(); err != nil {
			s.err = err
			return
		}
	}
	s.settle()
	insts := s.nl.Instances()
	for k, i := range s.ffs {
		s.next[k] = s.values[insts[i].In[0]]
	}
	for k, i := range s.ffs {
		s.values[insts[i].Out] = s.next[k]
	}
	s.settle()
	s.cycles++
}

// StepN advances n clock cycles, stopping early once Err is non-nil.
func (s *WordSimulator) StepN(n int) {
	for i := 0; i < n && s.err == nil; i++ {
		s.Step()
	}
}

// Cycles returns the number of Step calls since the last Reset.
func (s *WordSimulator) Cycles() int { return s.cycles }
