package gatesim_test

// Engine-equivalence suite: the bit-parallel WordSimulator must agree
// with the scalar Simulator net for net, cycle for cycle, and report
// identical fault-detection sets — checked on the synthesised
// microcode- and FSM-controller netlists, the real workloads of the
// logic-BIST grading.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fsmbist"
	"repro/internal/gatesim"
	"repro/internal/march"
	"repro/internal/microbist"
	"repro/internal/netlist"
)

// controllerNetlists synthesises the two programmable BIST controllers
// the paper's §3 testability discussion grades.
func controllerNetlists(t testing.TB) []*netlist.Netlist {
	t.Helper()
	mp, err := microbist.Assemble(march.MarchC(), microbist.AssembleOpts{WordOriented: true, Multiport: true})
	if err != nil {
		t.Fatal(err)
	}
	mhw, err := microbist.BuildHardware(mp, microbist.HWConfig{
		Slots: mp.Len(), AddrBits: 4, Width: 1, Ports: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := fsmbist.Compile(march.MarchC(), fsmbist.CompileOpts{WordOriented: true, Multiport: true})
	if err != nil {
		t.Fatal(err)
	}
	fhw, err := fsmbist.BuildHardware(fp, fsmbist.HWConfig{
		Slots: fp.Len(), AddrBits: 4, Width: 1, Ports: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return []*netlist.Netlist{mhw.Netlist, fhw.Netlist}
}

// TestWordSimMatchesSerialPerCycle drives both engines through the same
// reset + random input sequence and asserts every net carries the same
// value in every one of the 64 lanes on every cycle.
func TestWordSimMatchesSerialPerCycle(t *testing.T) {
	for _, nl := range controllerNetlists(t) {
		t.Run(nl.Name, func(t *testing.T) {
			ser, err := gatesim.New(nl)
			if err != nil {
				t.Fatal(err)
			}
			ws, err := gatesim.NewWord(nl)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(21))
			compare := func(cycle int) {
				t.Helper()
				for id := netlist.NetID(1); id <= netlist.NetID(nl.NumNets()); id++ {
					want := ser.Get(id)
					w := ws.Get(id)
					var wantWord uint64
					if want {
						wantWord = ^uint64(0)
					}
					if w != wantWord {
						t.Fatalf("cycle %d net %s: serial=%v word=%#x", cycle, nl.NetName(id), want, w)
					}
				}
			}
			compare(-1) // post-reset state
			for cycle := 0; cycle < 24; cycle++ {
				for _, in := range nl.Inputs() {
					v := rng.Intn(2) == 1
					ser.Set(in, v)
					ws.Set(in, v)
				}
				ser.Eval()
				ws.Eval()
				compare(cycle)
				ser.Step()
				ws.Step()
				if ser.Cycles() != ws.Cycles() {
					t.Fatalf("cycle counters diverged: %d vs %d", ser.Cycles(), ws.Cycles())
				}
			}
		})
	}
}

// TestWordSimFaultDetectionMatchesSerial packs stuck-at faults 63 to a
// settle pass (lane 0 good, per-lane forced nets) and asserts the
// detected-fault set equals the one the scalar engine finds one fault
// at a time — on both controller netlists, under full-scan access.
func TestWordSimFaultDetectionMatchesSerial(t *testing.T) {
	for _, nl := range controllerNetlists(t) {
		t.Run(nl.Name, func(t *testing.T) {
			ser, err := gatesim.New(nl)
			if err != nil {
				t.Fatal(err)
			}
			ws, err := gatesim.NewWord(nl)
			if err != nil {
				t.Fatal(err)
			}

			// Full-scan access: inputs and FF outputs controllable,
			// outputs and FF D inputs observable.
			controls := append([]netlist.NetID(nil), nl.Inputs()...)
			observes := append([]netlist.NetID(nil), nl.Outputs()...)
			type fault struct {
				net netlist.NetID
				sa  bool
			}
			var faultList []fault
			for _, id := range nl.Inputs() {
				faultList = append(faultList, fault{id, false}, fault{id, true})
			}
			for _, inst := range nl.Instances() {
				if inst.Kind.IsSequential() {
					controls = append(controls, inst.Out)
					observes = append(observes, inst.In[0])
				}
				faultList = append(faultList, fault{inst.Out, false}, fault{inst.Out, true})
			}
			ctrlVal := make(map[netlist.NetID]bool, len(controls))

			rng := rand.New(rand.NewSource(5))
			for pattern := 0; pattern < 3; pattern++ {
				for _, id := range controls {
					v := rng.Intn(2) == 1
					ctrlVal[id] = v
					ser.Set(id, v)
					ws.Set(id, v)
				}
				ser.Eval()
				good := make([]bool, len(observes))
				for i, id := range observes {
					good[i] = ser.Get(id)
				}

				// Serial oracle: one force + settle per fault.
				serialDet := make([]bool, len(faultList))
				for fi, f := range faultList {
					ser.Force(f.net, f.sa)
					ser.Eval()
					for i, id := range observes {
						if ser.Get(id) != good[i] {
							serialDet[fi] = true
							break
						}
					}
					ser.Unforce(f.net)
					if v, ok := ctrlVal[f.net]; ok {
						ser.Set(f.net, v)
					}
				}

				// Word engine: 63 faults per settle.
				wordDet := make([]bool, len(faultList))
				for start := 0; start < len(faultList); start += gatesim.Lanes - 1 {
					end := start + gatesim.Lanes - 1
					if end > len(faultList) {
						end = len(faultList)
					}
					for k, f := range faultList[start:end] {
						ws.ForceLane(f.net, k+1, f.sa)
					}
					if got := ws.ForcedLanes(); got != end-start {
						t.Fatalf("batch %d: %d forced lanes, want %d", start, got, end-start)
					}
					ws.Eval()
					var diff uint64
					for _, id := range observes {
						w := ws.Get(id)
						diff |= w ^ -(w & 1)
					}
					for k := range faultList[start:end] {
						wordDet[start+k] = diff>>uint(k+1)&1 == 1
					}
					ws.ClearForces()
					for _, f := range faultList[start:end] {
						if v, ok := ctrlVal[f.net]; ok {
							ws.Set(f.net, v)
						}
					}
				}

				for fi, f := range faultList {
					if serialDet[fi] != wordDet[fi] {
						t.Fatalf("pattern %d: fault %s stuck-at-%v serial=%v word=%v",
							pattern, nl.NetName(f.net), f.sa, serialDet[fi], wordDet[fi])
					}
				}
			}
		})
	}
}

// TestWordSimLaneIndependence checks that distinct per-lane stimulus
// words evaluate exactly like 64 scalar simulations of a combinational
// block.
func TestWordSimLaneIndependence(t *testing.T) {
	nl := netlist.New("lanes")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	c := nl.AddInput("c")
	nl.AddOutput("f", nl.Xor2(nl.And2(a, b), nl.Mux2(c, a, nl.Nor2(b, c))))
	ws, err := gatesim.NewWord(nl)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := gatesim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	out := nl.Outputs()[0]
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		wa, wb, wc := rng.Uint64(), rng.Uint64(), rng.Uint64()
		ws.SetWord(a, wa)
		ws.SetWord(b, wb)
		ws.SetWord(c, wc)
		ws.Eval()
		for lane := 0; lane < gatesim.Lanes; lane++ {
			ser.Set(a, wa>>uint(lane)&1 == 1)
			ser.Set(b, wb>>uint(lane)&1 == 1)
			ser.Set(c, wc>>uint(lane)&1 == 1)
			ser.Eval()
			if ws.GetLane(out, lane) != ser.Get(out) {
				t.Fatalf("trial %d lane %d: word=%v serial=%v", trial, lane, ws.GetLane(out, lane), ser.Get(out))
			}
		}
	}
	// GetLane agrees with the word view.
	w := ws.Get(out)
	for lane := 0; lane < gatesim.Lanes; lane++ {
		if ws.GetLane(out, lane) != (w>>uint(lane)&1 == 1) {
			t.Fatal("GetLane disagrees with Get word")
		}
	}
	if s := fmt.Sprint(ws.Cycles()); s != "0" {
		t.Errorf("Eval advanced the cycle counter: %s", s)
	}
}
