package gatesim

import (
	"context"
	"errors"
	"testing"

	"repro/internal/netlist"
)

// oscillator builds x = INV(x): the smallest netlist whose relaxation
// settle can never reach a fixpoint.
func oscillator(t *testing.T) *netlist.Netlist {
	t.Helper()
	n := netlist.New("osc")
	a := n.AddInput("a")
	x := n.Add(netlist.CellInv, a)
	n.SetGateInput(x, 0, x)
	n.AddOutput("x", x)
	return n
}

// norLatch builds a cross-coupled NOR latch — a combinational loop that
// settles to a stable state under constant inputs.
func norLatch(t *testing.T) (*netlist.Netlist, [2]netlist.NetID, [2]netlist.NetID) {
	t.Helper()
	n := netlist.New("latch")
	r := n.AddInput("r")
	s := n.AddInput("s")
	q := n.Add(netlist.CellNor2, r, s)  // q = NOR(r, qb) once rewired
	qb := n.Add(netlist.CellNor2, s, q) // qb = NOR(s, q)
	n.SetGateInput(q, 1, qb)            // close the loop
	n.AddOutput("q", q)
	n.AddOutput("qb", qb)
	return n, [2]netlist.NetID{r, s}, [2]netlist.NetID{q, qb}
}

func TestOscillatingNetlistReturnsErrUnsettled(t *testing.T) {
	nl := oscillator(t)
	s, err := New(nl)
	if err != nil {
		t.Fatalf("New rejected a cyclic netlist: %v", err)
	}
	if err := s.Err(); !errors.Is(err, ErrUnsettled) {
		t.Fatalf("Err after reset settle = %v, want ErrUnsettled", err)
	}
	var ue *UnsettledError
	if !errors.As(s.Err(), &ue) {
		t.Fatalf("Err is not an *UnsettledError: %v", s.Err())
	}
	if ue.Netlist != "osc" || ue.Iters == 0 {
		t.Errorf("UnsettledError = %+v", ue)
	}
	// Step on a failed simulator is a no-op, not a hang or panic.
	before := s.Cycles()
	s.StepN(10)
	if s.Cycles() != before {
		t.Errorf("Step advanced a failed simulator: %d -> %d", before, s.Cycles())
	}
	// Reset clears the sticky error (and immediately re-trips on this
	// netlist, proving the watchdog runs per settle, not once).
	s.Reset()
	if !errors.Is(s.Err(), ErrUnsettled) {
		t.Errorf("Err after Reset = %v, want ErrUnsettled again", s.Err())
	}
}

func TestOscillatingNetlistWordSimulator(t *testing.T) {
	nl := oscillator(t)
	s, err := NewWord(nl)
	if err != nil {
		t.Fatalf("NewWord rejected a cyclic netlist: %v", err)
	}
	if err := s.Err(); !errors.Is(err, ErrUnsettled) {
		t.Fatalf("word Err after reset settle = %v, want ErrUnsettled", err)
	}
	before := s.Cycles()
	s.StepN(10)
	if s.Cycles() != before {
		t.Errorf("Step advanced a failed word simulator")
	}
}

func TestConvergentLoopSettles(t *testing.T) {
	nl, in, out := norLatch(t)
	s, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	// Set: s=1, r=0 -> q must resolve to 0, qb to... For this wiring
	// q = NOR(r, qb), qb = NOR(s, q): with s=1, qb=0 regardless, so
	// q = NOR(0, 0) = 1.
	s.Set(in[0], false)
	s.Set(in[1], true)
	s.Eval()
	if err := s.Err(); err != nil {
		t.Fatalf("latch failed to settle: %v", err)
	}
	if !s.Get(out[0]) || s.Get(out[1]) {
		t.Errorf("latch state q=%v qb=%v, want q=1 qb=0", s.Get(out[0]), s.Get(out[1]))
	}

	w, err := NewWord(nl)
	if err != nil {
		t.Fatal(err)
	}
	w.Set(in[0], false)
	w.Set(in[1], true)
	w.Eval()
	if err := w.Err(); err != nil {
		t.Fatalf("word latch failed to settle: %v", err)
	}
	if w.Get(out[0]) != ^uint64(0) || w.Get(out[1]) != 0 {
		t.Errorf("word latch q=%x qb=%x, want all-ones/zero", w.Get(out[0]), w.Get(out[1]))
	}
}

// counterNetlist builds a small free-running toggle chain so Step has
// real sequential work for the cancellation tests.
func counterNetlist(t *testing.T) *netlist.Netlist {
	t.Helper()
	n := netlist.New("ctr")
	q0 := n.AddFF(netlist.CellDFF, n.Const0(), false)
	n.SetFFInput(q0, n.Inv(q0))
	n.AddOutput("q0", q0)
	return n
}

func TestScalarContextCancellationStopsStepping(t *testing.T) {
	s, err := New(counterNetlist(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.SetContext(ctx)
	s.StepN(ctxCheckInterval) // runs fine while the context is live
	if err := s.Err(); err != nil {
		t.Fatalf("Err with live context = %v", err)
	}
	cancel()
	s.StepN(10 * ctxCheckInterval)
	if !errors.Is(s.Err(), context.Canceled) {
		t.Fatalf("Err after cancel = %v, want context.Canceled", s.Err())
	}
	if s.Cycles() > 2*ctxCheckInterval {
		t.Errorf("simulator ran %d cycles after cancellation, want a stop within %d",
			s.Cycles(), ctxCheckInterval)
	}
}

func TestWordContextCancellationStopsStepping(t *testing.T) {
	s, err := NewWord(counterNetlist(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.SetContext(ctx)
	s.StepN(10 * ctxCheckInterval)
	if !errors.Is(s.Err(), context.Canceled) {
		t.Fatalf("word Err after cancel = %v, want context.Canceled", s.Err())
	}
}
