package gatesim

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

func TestCombinationalGates(t *testing.T) {
	n := netlist.New("comb")
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.AddOutput("and", n.And2(a, b))
	n.AddOutput("or", n.Or2(a, b))
	n.AddOutput("xor", n.Xor2(a, b))
	n.AddOutput("nand", n.Nand2(a, b))

	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, av := range []bool{false, true} {
		for _, bv := range []bool{false, true} {
			s.SetByName("a", av)
			s.SetByName("b", bv)
			s.Eval()
			if got := s.GetByName("and"); got != (av && bv) {
				t.Errorf("and(%v,%v)=%v", av, bv, got)
			}
			if got := s.GetByName("or"); got != (av || bv) {
				t.Errorf("or(%v,%v)=%v", av, bv, got)
			}
			if got := s.GetByName("xor"); got != (av != bv) {
				t.Errorf("xor(%v,%v)=%v", av, bv, got)
			}
			if got := s.GetByName("nand"); got != !(av && bv) {
				t.Errorf("nand(%v,%v)=%v", av, bv, got)
			}
		}
	}
}

func TestUpCounterMatchesBehaviour(t *testing.T) {
	n := netlist.New("cnt4")
	en := n.AddInput("en")
	c := n.BuildCounter("q", 4, en, netlist.Invalid, netlist.Invalid)
	for i, q := range c.Q {
		n.AddOutput([]string{"q0", "q1", "q2", "q3"}[i], q)
	}
	n.AddOutput("tc", c.Terminal)

	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	s.SetByName("en", true)
	for want := 0; want < 40; want++ {
		got := int(s.GetBus(c.Q))
		if got != want%16 {
			t.Fatalf("cycle %d: counter = %d, want %d", want, got, want%16)
		}
		if tc := s.Get(c.Terminal); tc != (want%16 == 15) {
			t.Fatalf("cycle %d: terminal = %v", want, tc)
		}
		s.Step()
	}
	// Disable: counter holds.
	s.SetByName("en", false)
	before := s.GetBus(c.Q)
	s.StepN(5)
	if after := s.GetBus(c.Q); after != before {
		t.Errorf("disabled counter moved from %d to %d", before, after)
	}
}

func TestUpDownCounter(t *testing.T) {
	n := netlist.New("updown")
	en := n.AddInput("en")
	down := n.AddInput("down")
	c := n.BuildCounter("q", 3, en, down, netlist.Invalid)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	s.SetByName("en", true)
	s.SetByName("down", false)
	s.StepN(5)
	if got := s.GetBus(c.Q); got != 5 {
		t.Fatalf("after 5 up steps: %d", got)
	}
	s.SetByName("down", true)
	s.Eval()
	if s.Get(c.Terminal) {
		t.Error("terminal asserted at 5 counting down")
	}
	s.StepN(5)
	if got := s.GetBus(c.Q); got != 0 {
		t.Fatalf("after 5 down steps: %d", got)
	}
	s.Eval()
	if !s.Get(c.Terminal) {
		t.Error("terminal not asserted at 0 counting down")
	}
}

func TestCounterClear(t *testing.T) {
	n := netlist.New("clr")
	en := n.AddInput("en")
	clr := n.AddInput("clr")
	c := n.BuildCounter("q", 4, en, netlist.Invalid, clr)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	s.SetByName("en", true)
	s.SetByName("clr", false)
	s.StepN(9)
	if got := s.GetBus(c.Q); got != 9 {
		t.Fatalf("count = %d, want 9", got)
	}
	s.SetByName("clr", true)
	s.Step()
	if got := s.GetBus(c.Q); got != 0 {
		t.Fatalf("after clear: %d, want 0", got)
	}
}

func TestRegisterLoadEnable(t *testing.T) {
	n := netlist.New("reg")
	en := n.AddInput("en")
	d := []netlist.NetID{n.AddInput("d0"), n.AddInput("d1"), n.AddInput("d2")}
	q := n.Register("r", netlist.CellDFF, 3, d, en, []bool{true, false, true})
	for _, id := range q {
		n.AddOutput(n.NetName(id), id)
	}
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	// Reset value 101 (bits 0 and 2).
	if got := s.GetBus(q); got != 0b101 {
		t.Fatalf("reset value = %03b, want 101", got)
	}
	s.SetBus(d, 0b010)
	s.SetByName("en", false)
	s.Step()
	if got := s.GetBus(q); got != 0b101 {
		t.Fatalf("load with en=0 changed register to %03b", got)
	}
	s.SetByName("en", true)
	s.Step()
	if got := s.GetBus(q); got != 0b010 {
		t.Fatalf("load with en=1 gave %03b, want 010", got)
	}
}

func TestMuxNSelects(t *testing.T) {
	n := netlist.New("mux")
	sel := []netlist.NetID{n.AddInput("s0"), n.AddInput("s1"), n.AddInput("s2")}
	data := make([]netlist.NetID, 8)
	for i := range data {
		data[i] = n.AddInput("d" + string(rune('0'+i)))
	}
	out := n.MuxN(sel, data)
	n.AddOutput("out", out)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		word := rng.Uint64() & 0xff
		s.SetBus(data, 0)
		for i := 0; i < 8; i++ {
			s.Set(data[i], word>>uint(i)&1 == 1)
		}
		for k := uint64(0); k < 8; k++ {
			s.SetBus(sel, k)
			s.Eval()
			if got := s.Get(out); got != (word>>k&1 == 1) {
				t.Fatalf("word %08b sel %d: got %v", word, k, got)
			}
		}
	}
}

func TestDecoderOneHot(t *testing.T) {
	n := netlist.New("dec")
	sel := []netlist.NetID{n.AddInput("s0"), n.AddInput("s1"), n.AddInput("s2")}
	outs := n.Decoder(sel, 8)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 8; k++ {
		s.SetBus(sel, k)
		s.Eval()
		for i, o := range outs {
			want := uint64(i) == k
			if got := s.Get(o); got != want {
				t.Fatalf("sel=%d out[%d]=%v", k, i, got)
			}
		}
	}
}

func TestEqualsBusAndConst(t *testing.T) {
	n := netlist.New("eq")
	a := []netlist.NetID{n.AddInput("a0"), n.AddInput("a1"), n.AddInput("a2"), n.AddInput("a3")}
	b := []netlist.NetID{n.AddInput("b0"), n.AddInput("b1"), n.AddInput("b2"), n.AddInput("b3")}
	eq := n.EqualsBus(a, b)
	eqc := n.EqualsConst(a, 0b1010)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	for av := uint64(0); av < 16; av++ {
		for bv := uint64(0); bv < 16; bv++ {
			s.SetBus(a, av)
			s.SetBus(b, bv)
			s.Eval()
			if got := s.Get(eq); got != (av == bv) {
				t.Fatalf("eq(%d,%d)=%v", av, bv, got)
			}
			if got := s.Get(eqc); got != (av == 0b1010) {
				t.Fatalf("eqc(%d)=%v", av, got)
			}
		}
	}
}

// TestSynthesisedTableMatchesSim is the key closure property: a random
// truth table minimised by QM and synthesised to gates must evaluate
// identically in the gate-level simulator.
func TestSynthesisedTableMatchesSim(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		nin := 2 + rng.Intn(5)
		tt := logic.NewTruthTable(nin)
		for i := 0; i < tt.NumRows(); i++ {
			tt.SetBool(i, rng.Intn(2) == 1)
		}

		n := netlist.New("sop")
		vars := make([]netlist.NetID, nin)
		for i := range vars {
			vars[i] = n.AddInput("x" + string(rune('0'+i)))
		}
		out := n.FromTruthTable(tt, vars)
		n.AddOutput("f", out)

		s, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		for in := uint64(0); in < uint64(tt.NumRows()); in++ {
			s.SetBus(vars, in)
			s.Eval()
			if got := s.Get(out); got != tt.Eval(in) {
				t.Fatalf("trial %d input %b: gate=%v table=%v", trial, in, got, tt.Eval(in))
			}
		}
	}
}

func TestStorageRegisterHolds(t *testing.T) {
	n := netlist.New("store")
	q := n.StorageRegister("m", netlist.CellSODFF, 4, []bool{true, false, true, true})
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.GetBus(q); got != 0b1101 {
		t.Fatalf("storage reset = %04b, want 1101", got)
	}
	s.StepN(10)
	if got := s.GetBus(q); got != 0b1101 {
		t.Fatalf("storage after 10 cycles = %04b, want 1101", got)
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	n := netlist.New("loop")
	a := n.AddInput("a")
	// Build x = AND(a, y); y = INV(x) by wiring through a placeholder FF
	// trick is not available for comb cells, so construct the loop with
	// instance-level access: add INV of a net that the AND later drives.
	// Simplest honest loop: two cross-coupled gates via NewNet is not
	// expressible through Add (it always makes fresh outputs), so verify
	// instead that a self-feeding FF does NOT count as a loop.
	q := n.AddFF(netlist.CellDFF, a, false)
	n.SetFFInput(q, n.Inv(q)) // toggle FF: q' = !q
	n.AddOutput("q", q)
	s, err := New(n)
	if err != nil {
		t.Fatalf("FF self-loop flagged as combinational: %v", err)
	}
	vals := []bool{s.Get(q)}
	s.Step()
	vals = append(vals, s.Get(q))
	s.Step()
	vals = append(vals, s.Get(q))
	if vals[0] != false || vals[1] != true || vals[2] != false {
		t.Errorf("toggle FF sequence = %v", vals)
	}
}

// TestBusWiderThan64Rejected guards the uint64 bus accessors: a bus
// wider than the machine word used to alias silently onto the low 64
// bits; it must panic instead.
func TestBusWiderThan64Rejected(t *testing.T) {
	n := netlist.New("wide")
	ids := make([]netlist.NetID, 65)
	for i := range ids {
		ids[i] = n.AddInput(fmt.Sprintf("w%d", i))
	}
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on a 65-net bus did not panic", name)
			}
		}()
		f()
	}
	mustPanic("GetBus", func() { s.GetBus(ids) })
	mustPanic("SetBus", func() { s.SetBus(ids, 1) })
	// Exactly 64 nets is the widest legal bus.
	s.SetBus(ids[:64], 1<<63|1)
	if got := s.GetBus(ids[:64]); got != 1<<63|1 {
		t.Errorf("64-net bus round-trip = %#x", got)
	}
}

func TestIncDecBehaviour(t *testing.T) {
	n := netlist.New("incdec")
	a := []netlist.NetID{n.AddInput("a0"), n.AddInput("a1"), n.AddInput("a2")}
	en := n.AddInput("en")
	sum, carry := n.Incrementer(a, en)
	dif, borrow := n.Decrementer(a, en)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 8; v++ {
		s.SetBus(a, v)
		s.SetByName("en", true)
		s.Eval()
		if got := s.GetBus(sum); got != (v+1)%8 {
			t.Errorf("inc(%d) = %d", v, got)
		}
		if got := s.Get(carry); got != (v == 7) {
			t.Errorf("inc carry(%d) = %v", v, got)
		}
		if got := s.GetBus(dif); got != (v+7)%8 {
			t.Errorf("dec(%d) = %d", v, got)
		}
		if got := s.Get(borrow); got != (v == 0) {
			t.Errorf("dec borrow(%d) = %v", v, got)
		}
		s.SetByName("en", false)
		s.Eval()
		if got := s.GetBus(sum); got != v {
			t.Errorf("inc disabled(%d) = %d", v, got)
		}
	}
}
