package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) Status {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit %s: status %d: %s", body, resp.StatusCode, raw)
	}
	var st Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("submit response %q: %v", raw, err)
	}
	return st
}

func waitDone(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case StateDone:
			return st
		case StateFailed:
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 60s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func report(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report %s: status %d: %s", id, resp.StatusCode, raw)
	}
	return string(raw)
}

// TestGradeJobMatchesCLIRendering pins the service contract: a grade
// job's report is byte-identical to what mbistcov prints for the same
// flags (both go through sweep.Workload.RenderText).
func TestGradeJobMatchesCLIRendering(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	spec := sweep.Spec{Algs: "mats+,marchc", Size: 32, Workers: 2}
	st := submit(t, ts, `{"kind":"grade","grade":{"algs":"mats+,marchc","size":32,"workers":2}}`)
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("submitted job is %q", st.State)
	}
	waitDone(t, ts, st.ID)

	w, err := spec.Workload()
	if err != nil {
		t.Fatal(err)
	}
	reports, err := w.Grade(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := report(t, ts, st.ID), w.RenderText(reports); got != want {
		t.Fatalf("service report diverges from CLI rendering:\n--- service\n%s\n--- cli\n%s", got, want)
	}
}

// TestShardedGradeByteIdentical pins the acceptance criterion end to
// end over HTTP: an N-shard grade job returns a report byte-identical
// to the unsharded job.
func TestShardedGradeByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	flat := submit(t, ts, `{"kind":"grade","grade":{"algs":"marchc","size":32}}`)
	sharded := submit(t, ts, `{"kind":"grade","grade":{"algs":"marchc","size":32,"shards":3}}`)
	waitDone(t, ts, flat.ID)
	final := waitDone(t, ts, sharded.ID)
	if final.Total != 4 || final.Done != 4 {
		t.Errorf("3-shard job progress %d/%d, want 4/4 (three shards + merge)", final.Done, final.Total)
	}
	if a, b := report(t, ts, flat.ID), report(t, ts, sharded.ID); a != b {
		t.Fatalf("sharded report diverges from unsharded:\n--- unsharded\n%s\n--- 3-shard\n%s", a, b)
	}
}

// TestRepeatGradeServedFromArtifactCache asserts via obs counters that
// a repeated identical grade request re-synthesises nothing: no new
// universe, stream or controller builds on the second request.
func TestRepeatGradeServedFromArtifactCache(t *testing.T) {
	reg := obs.Enable()
	defer obs.Disable()
	_, ts := newTestServer(t, Options{Workers: 1})
	builds := func(name string) int64 {
		return reg.Counter("artifact." + name + ".builds").Value()
	}

	first := submit(t, ts, `{"kind":"grade","grade":{"algs":"marchc","arch":"microcode","size":40}}`)
	waitDone(t, ts, first.ID)
	u1, s1, c1 := builds("universe"), builds("stream"), builds("controller")

	second := submit(t, ts, `{"kind":"grade","grade":{"algs":"marchc","arch":"microcode","size":40}}`)
	waitDone(t, ts, second.ID)
	if u, s, c := builds("universe"), builds("stream"), builds("controller"); u != u1 || s != s1 || c != c1 {
		t.Fatalf("repeat request re-synthesised: universe %d->%d, stream %d->%d, controller %d->%d",
			u1, u, s1, s, c1, c)
	}
	if hits := reg.Counter("artifact.universe.hits").Value(); hits == 0 {
		t.Fatal("repeat request did not hit the universe cache")
	}
	if a, b := report(t, ts, first.ID), report(t, ts, second.ID); a != b {
		t.Fatalf("cached request diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestLintAssembleAreaJobs(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	lint := submit(t, ts, `{"kind":"lint","lint":{"algs":"mats+","arch":"microcode"}}`)
	asm := submit(t, ts, `{"kind":"assemble","assemble":{"arch":"fsm","alg":"marcha"}}`)
	area := submit(t, ts, `{"kind":"area","area":{"table":1}}`)

	waitDone(t, ts, lint.ID)
	if text := report(t, ts, lint.ID); !strings.Contains(text, "artifacts") && !strings.Contains(text, "clean") {
		t.Errorf("lint report looks wrong:\n%s", text)
	}
	waitDone(t, ts, asm.ID)
	if text := report(t, ts, asm.ID); !strings.Contains(text, "algorithm: March A") {
		t.Errorf("assemble report looks wrong:\n%s", text)
	}
	waitDone(t, ts, area.ID)
	if text := report(t, ts, area.ID); !strings.Contains(text, "Table 1") {
		t.Errorf("area report looks wrong:\n%s", text)
	}
}

func TestSubmitValidationAndLookupErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"kind":"teleport"}`, http.StatusBadRequest},
		{`{"kind":"grade","grade":{"algs":"nosuch"}}`, http.StatusBadRequest},
		{`{"kind":"grade","grade":{"engine":"warp"}}`, http.StatusBadRequest},
		{`{"kind":"grade","grade":{"shards":-1}}`, http.StatusBadRequest},
		{`{"kind":"lint","lint":{"arch":"quantum"}}`, http.StatusBadRequest},
		{`{"kind":"assemble","assemble":{"alg":"nosuch"}}`, http.StatusBadRequest},
		{`{"kind":"area","area":{"table":9}}`, http.StatusBadRequest},
		{`{"kind":"grade","unknown_field":1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("submit %s: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/report", "/v1/jobs/nope/watch"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestWatchStreamsToTerminalState(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	st := submit(t, ts, `{"kind":"grade","grade":{"algs":"mats+","size":16}}`)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body) // the stream ends when the job does
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) == 0 {
		t.Fatal("watch streamed nothing")
	}
	if last := lines[len(lines)-1]; !strings.HasPrefix(last, "done ") {
		t.Fatalf("watch ended on %q, want a done line; full stream:\n%s", last, raw)
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	reg := obs.Enable()
	defer obs.Disable()
	reg.Counter("serve.test_marker").Add(7)
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "serve.test_marker") {
		t.Errorf("metrics text missing counter:\n%s", raw)
	}
	resp, err = http.Get(ts.URL + "/v1/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var ms []obs.Metric
	err = json.NewDecoder(resp.Body).Decode(&ms)
	resp.Body.Close()
	if err != nil || len(ms) == 0 {
		t.Errorf("metrics json: %v (%d metrics)", err, len(ms))
	}

	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz: %v", health)
	}
}

// TestDrainFinishesQueuedJobsThenRejects pins graceful shutdown: every
// job accepted before drain completes, and submissions during/after
// drain are rejected with 503.
func TestDrainFinishesQueuedJobsThenRejects(t *testing.T) {
	s, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ids := make([]string, 3)
	for i := range ids {
		st := submit(t, ts, fmt.Sprintf(`{"kind":"grade","grade":{"algs":"mats+","size":%d}}`, 16+8*i))
		ids[i] = st.ID
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Errorf("job %s is %s after drain, want done", id, st.State)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"grade"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: status %d, want 503", resp.StatusCode)
	}
}
