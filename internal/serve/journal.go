// Job-store durability: every state transition is appended to an
// fsync-per-record JSONL journal (resilience.Journal) and replayed on
// the next start against the same directory.
//
// Journal state machine, one jobEntry per record:
//
//	accepted{id, key, req} ──> running{attempt} ──> checkpointed{n, states}*
//	       │                        │
//	       └────────────────────────┴──> done{result, expired}
//	                                 └─> failed{error} | quarantined{error}
//
// Recovery folds the records per job: a job with a terminal record is
// rebuilt in its terminal state (its report keeps serving); a job
// without one is re-validated from its stored request, seeded with the
// union of its checkpointed coverage states, and re-enqueued — grading
// resumes from the last checkpoint, byte-identical to an uninterrupted
// run. After replay the journal is compacted (atomic rotate) down to
// the live view: one accepted record per job plus its terminal record
// or latest checkpoint.
package serve

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"

	mbist "repro"
	"repro/internal/resilience"
)

// jobsJournalOwner is the journal fingerprint. It binds a journal file
// to the job-store record format; bump it when jobEntry changes
// incompatibly. A journal written by anything else is refused with
// resilience.ErrMismatch.
const jobsJournalOwner = "mbistd-jobs/1"

// jobsJournalName is the journal's file name inside Options.JournalDir.
const jobsJournalName = "jobs.journal"

// compactBytes is the journal size past which a terminal transition
// triggers compaction (checkpoint records dominate growth; the
// compacted view keeps only the latest per job).
const compactBytes = 1 << 20

// Journal record ops, in lifecycle order.
const (
	opAccepted     = "accepted"
	opRunning      = "running"
	opCheckpointed = "checkpointed"
	opDone         = "done"
	opFailed       = "failed"
	opQuarantined  = "quarantined"
)

// jobEntry is one journaled state transition. Op selects which fields
// are meaningful.
type jobEntry struct {
	Op  string `json:"op"`
	ID  string `json:"id"`
	Key string `json:"key,omitempty"` // accepted: idempotency key
	// Req is the validated submission, stored so recovery can rebuild
	// the run closure without the client.
	Req     *Request `json:"req,omitempty"`
	Attempt int      `json:"attempt,omitempty"` // running/failed/quarantined
	// N is the job's cumulative checkpoint count; States carries the
	// checkpointed coverage state(s), keyed by algorithm name (or
	// "alg#shard/of" for sharded grades).
	N       int                             `json:"n,omitempty"`
	States  map[string]*mbist.CoverageState `json:"states,omitempty"`
	Result  string                          `json:"result,omitempty"`  // done
	Expired bool                            `json:"expired,omitempty"` // done: deadline Partial
	Error   string                          `json:"error,omitempty"`   // failed/quarantined
}

// journalAppend appends one transition (no-op without a journal) and
// fires the chaos self-kill when configured. Append failures are
// logged, not fatal: the in-memory store stays authoritative for this
// process; only recovery fidelity degrades.
func (s *Server) journalAppend(e jobEntry) {
	if s.journal == nil {
		return
	}
	s.journalMu.Lock()
	err := s.journal.Append(e)
	size := s.journal.Size()
	s.journalMu.Unlock()
	if err != nil {
		log.Printf("serve: journal append (%s %s): %v", e.Op, e.ID, err)
		return
	}
	s.mJournalBytes.Set(size)
	if e.Op == opCheckpointed && s.crashAfter > 0 && s.crashCount.Add(1) == s.crashAfter {
		// Chaos harness: die like a power cut — no deferred cleanup, no
		// flushes beyond the fsync that just happened.
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
	}
}

// closeJournal releases the journal's append handle on shutdown.
func (s *Server) closeJournal() {
	s.journalMu.Lock()
	defer s.journalMu.Unlock()
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
}

// recovered accumulates one job's journal records during replay.
type recovered struct {
	accepted    *jobEntry
	terminal    *jobEntry
	attempts    int
	checkpoints int
	resume      map[string]*mbist.CoverageState
}

// openJournal opens and replays the job journal, rebuilding the job
// store. It returns the non-terminal jobs to re-enqueue, in submission
// order. Any error — a corrupt or foreign journal file, an undecodable
// record — refuses startup; cmd/mbistd maps ErrCorrupt/ErrMismatch to
// exit code 4.
func (s *Server) openJournal(dir string) ([]*Job, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal dir: %w", err)
	}
	path := filepath.Join(dir, jobsJournalName)
	j, payloads, err := resilience.OpenJournal(path, jobsJournalOwner)
	if err != nil {
		return nil, err
	}
	s.journal = j
	s.mJournalBytes.Set(j.Size())

	recs := make(map[string]*recovered)
	var order []string
	for i, raw := range payloads {
		var e jobEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("%s: %w: record %d payload: %v", path, resilience.ErrCorrupt, i+1, err)
		}
		if e.Op == opAccepted {
			if e.Req == nil {
				return nil, fmt.Errorf("%s: %w: record %d: accepted %s without a request", path, resilience.ErrCorrupt, i+1, e.ID)
			}
			recs[e.ID] = &recovered{accepted: &e}
			order = append(order, e.ID)
			continue
		}
		r := recs[e.ID]
		if r == nil {
			return nil, fmt.Errorf("%s: %w: record %d: %s for unknown job %s", path, resilience.ErrCorrupt, i+1, e.Op, e.ID)
		}
		switch e.Op {
		case opRunning:
			r.attempts = e.Attempt
		case opCheckpointed:
			if r.resume == nil {
				r.resume = make(map[string]*mbist.CoverageState)
			}
			for k, st := range e.States {
				r.resume[k] = st
			}
			r.checkpoints = e.N
		case opDone, opFailed, opQuarantined:
			r.terminal = &e
		default:
			return nil, fmt.Errorf("%s: %w: record %d: unknown op %q", path, resilience.ErrCorrupt, i+1, e.Op)
		}
	}

	var pending []*Job
	for _, id := range order {
		r := recs[id]
		if n, err := strconv.Atoi(strings.TrimPrefix(id, "job-")); err == nil && n > s.nextID {
			s.nextID = n
		}
		job, perr := s.prepJob(*r.accepted.Req)
		if perr != nil {
			// The request validated when first accepted; failing now
			// means the library surface shifted underneath the journal.
			// Keep the job visible, failed with attribution, instead of
			// silently dropping it.
			job = &Job{Kind: r.accepted.Req.Kind, req: *r.accepted.Req}
			job.fail(fmt.Errorf("recovery: request no longer valid: %w", perr))
		}
		job.ID = id
		job.Key = r.accepted.Key
		job.checkpoints = r.checkpoints
		job.resume = r.resume
		switch {
		case perr != nil:
		case r.terminal != nil:
			job.attempt = r.attempts
			switch r.terminal.Op {
			case opDone:
				job.expired = r.terminal.Expired
				job.finish(r.terminal.Result)
			case opFailed:
				job.fail(fmt.Errorf("%s", r.terminal.Error))
			case opQuarantined:
				job.quarantine(fmt.Errorf("%s", r.terminal.Error))
			}
		default:
			// Interrupted mid-flight: re-enqueue from the last
			// checkpoint. The attempt counter restarts — a crash is not
			// a job failure and must not consume the retry budget.
			pending = append(pending, job)
		}
		s.jobs[id] = job
		if job.Key != "" {
			s.keys[job.Key] = id
		}
	}
	if len(payloads) > 0 {
		log.Printf("serve: journal %s: replayed %d record(s), %d job(s), %d to resume", path, len(payloads), len(order), len(pending))
	}
	// Startup compaction: collapse the history to the live view so the
	// journal does not grow across restarts.
	s.compact()
	return pending, nil
}

// compact rewrites the journal to the live view — per job: its
// accepted record, then its terminal record or its latest checkpoint.
// Lock order: s.mu -> job.mu -> s.journalMu, matching every other
// path.
func (s *Server) compact() {
	s.mu.Lock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return jobNum(ids[a]) < jobNum(ids[b]) })
	var payloads []any
	for _, id := range ids {
		job := s.jobs[id]
		job.mu.Lock()
		payloads = append(payloads, jobEntry{Op: opAccepted, ID: id, Key: job.Key, Req: &job.req})
		switch job.state {
		case StateDone:
			payloads = append(payloads, jobEntry{Op: opDone, ID: id, Result: job.result, Expired: job.expired})
		case StateFailed:
			payloads = append(payloads, jobEntry{Op: opFailed, ID: id, Attempt: job.attempt, Error: job.errMsg})
		case StateQuarantined:
			payloads = append(payloads, jobEntry{Op: opQuarantined, ID: id, Attempt: job.attempt, Error: job.errMsg})
		default:
			if len(job.resume) > 0 {
				states := make(map[string]*mbist.CoverageState, len(job.resume))
				for k, st := range job.resume {
					states[k] = st
				}
				payloads = append(payloads, jobEntry{Op: opCheckpointed, ID: id, N: job.checkpoints, States: states})
			}
		}
		job.mu.Unlock()
	}
	s.journalMu.Lock()
	if s.journal != nil {
		if err := s.journal.Rotate(payloads); err != nil {
			log.Printf("serve: journal compaction: %v", err)
		}
		s.mJournalBytes.Set(s.journal.Size())
	}
	s.journalMu.Unlock()
	s.mu.Unlock()
}

// maybeCompact compacts after a terminal transition once the journal
// outgrows compactBytes.
func (s *Server) maybeCompact() {
	s.journalMu.Lock()
	oversized := s.journal != nil && s.journal.Size() > compactBytes
	s.journalMu.Unlock()
	if oversized {
		s.compact()
	}
}

// jobNum extracts the numeric suffix of "job-N" for ordering.
func jobNum(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "job-"))
	return n
}
