package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sweep"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJournalRecoveryResumesByteIdentical pins the tentpole end to
// end in-process: a grade job interrupted mid-run (server torn down
// between checkpoints) is re-enqueued by a new server on the same
// journal directory, resumes from its last coverage checkpoint, and
// its final report is byte-identical to an uninterrupted run.
func TestJournalRecoveryResumesByteIdentical(t *testing.T) {
	reg := obs.Enable()
	defer obs.Disable()
	dir := t.TempDir()
	// Big enough that the second checkpoint (at CheckpointEvery=64)
	// lands long before the run completes — the teardown below must
	// interrupt the job mid-grade.
	spec := sweep.Spec{Algs: "marchc,marchx", Size: 256, Width: 2}
	w, err := spec.Workload()
	if err != nil {
		t.Fatal(err)
	}
	reports, err := w.Grade(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := w.RenderText(reports)

	s1, err := New(Options{Workers: 1, JournalDir: dir, CheckpointEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	job, existing, err := s1.Submit(Request{Kind: "grade", Key: "recover-1", Grade: &GradeRequest{Spec: spec}})
	if err != nil || existing {
		t.Fatalf("submit: existing=%v err=%v", existing, err)
	}
	// Let it journal a few checkpoints, then tear the server down while
	// the job is mid-flight.
	waitFor(t, "checkpoints", func() bool { return job.status().Checkpoints >= 2 })
	s1.Close()
	if st := job.status(); st.State == StateDone {
		t.Fatalf("job finished before the interruption; raise the workload size")
	}

	s2, err := New(Options{Workers: 1, JournalDir: dir, CheckpointEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := reg.Counter("serve.jobs_recovered").Value(); got != 1 {
		t.Errorf("serve.jobs_recovered = %d, want 1", got)
	}
	s2.mu.Lock()
	j2 := s2.jobs[job.ID]
	s2.mu.Unlock()
	if j2 == nil {
		t.Fatalf("job %s not recovered", job.ID)
	}
	j2.mu.Lock()
	resumable := len(j2.resume)
	j2.mu.Unlock()
	if resumable == 0 {
		t.Error("recovered job carries no checkpoint state to resume from")
	}
	waitFor(t, "recovered job", func() bool { return j2.status().State.terminal() })
	st := j2.status()
	if st.State != StateDone {
		t.Fatalf("recovered job ended %s: %s", st.State, st.Error)
	}
	j2.mu.Lock()
	got := j2.result
	j2.mu.Unlock()
	if got != want {
		t.Fatalf("resumed report diverges from uninterrupted run:\n--- resumed\n%s\n--- uninterrupted\n%s", got, want)
	}

	// The idempotency key survives the restart: resubmitting returns
	// the completed job instead of grading again.
	j3, existing, err := s2.Submit(Request{Kind: "grade", Key: "recover-1", Grade: &GradeRequest{Spec: spec}})
	if err != nil || !existing || j3.ID != job.ID {
		t.Fatalf("key replay after restart: job=%v existing=%v err=%v", j3, existing, err)
	}
}

// TestJournalRecoveryKeepsTerminalJobs pins that finished jobs keep
// serving their reports after a restart, and that startup compaction
// shrinks a checkpoint-heavy journal.
func TestJournalRecoveryKeepsTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Options{Workers: 1, JournalDir: dir, CheckpointEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	job, _, err := s1.Submit(Request{Kind: "grade", Grade: &GradeRequest{Spec: sweep.Spec{Algs: "mats+", Size: 24}}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job done", func() bool { return job.status().State.terminal() })
	if st := job.status(); st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	job.mu.Lock()
	want := job.result
	job.mu.Unlock()
	s1.Close()

	s2, err := New(Options{Workers: 1, JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.mu.Lock()
	j2 := s2.jobs[job.ID]
	s2.mu.Unlock()
	if j2 == nil {
		t.Fatalf("done job %s not recovered", job.ID)
	}
	st := j2.status()
	if st.State != StateDone || st.Done != st.Total {
		t.Fatalf("recovered done job status %+v", st)
	}
	j2.mu.Lock()
	got := j2.result
	j2.mu.Unlock()
	if got != want {
		t.Fatalf("recovered report diverges:\n%s\nvs\n%s", got, want)
	}
	// Startup compaction replaced the checkpoint history with the live
	// view: one accepted + one done record.
	s2.journalMu.Lock()
	records := s2.journal.Records()
	s2.journalMu.Unlock()
	if records != 2 {
		t.Errorf("compacted journal holds %d records, want 2 (accepted + done)", records)
	}
}

// TestNewRefusesUntrustedJournal pins the corrupt/foreign journal
// contract New exposes (cmd/mbistd maps these to exit code 4).
func TestNewRefusesUntrustedJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, jobsJournalName)
	j, _, err := resilience.OpenJournal(path, "some-other-owner/1")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(map[string]string{"op": "accepted"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := New(Options{JournalDir: dir}); !errors.Is(err, resilience.ErrMismatch) {
		t.Fatalf("foreign journal: New err = %v, want ErrMismatch", err)
	}

	if err := os.WriteFile(path, []byte("complete garbage line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{JournalDir: dir}); !errors.Is(err, resilience.ErrCorrupt) {
		t.Fatalf("corrupt journal: New err = %v, want ErrCorrupt", err)
	}
}

// TestDeadlineExpiredJobReturnsPartial pins the acceptance criterion:
// a grade job whose sweep.Spec timeout expires still goes to done with
// a valid Partial report and a deadline attribution.
func TestDeadlineExpiredJobReturnsPartial(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	st := submit(t, ts, `{"kind":"grade","grade":{"size":256,"width":2,"timeout":"20ms"}}`)
	final := waitDone(t, ts, st.ID)
	if !final.DeadlineExceeded {
		t.Fatalf("status %+v: deadline_exceeded not set (did the full sweep finish inside 20ms?)", final)
	}
	text := report(t, ts, st.ID)
	if !strings.Contains(text, "partial: deadline 20ms exceeded after ") {
		t.Fatalf("partial report missing deadline attribution:\n%s", text)
	}
	if !strings.HasPrefix(text, "fault coverage on ") {
		t.Fatalf("partial report lost the CLI header:\n%s", text)
	}
}

// TestRetryBudgetDeterministic pins bounded retry: a transiently
// failing job re-runs at most its budget (with the seeded backoff
// schedule between attempts) and succeeds when the fault clears.
func TestRetryBudgetDeterministic(t *testing.T) {
	reg := obs.Enable()
	defer obs.Disable()
	s, err := New(Options{Workers: 1, RetryBase: time.Millisecond, RetryCap: 2 * time.Millisecond, RetrySeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var runs atomic.Int32
	flaky := &Job{Kind: "test", total: 1, retries: 2, run: func(ctx context.Context) (string, error) {
		if runs.Add(1) < 3 {
			return "", errors.New("transient engine fault")
		}
		return "ok", nil
	}}
	if err := s.enqueue(flaky); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "flaky job", func() bool { return flaky.status().State.terminal() })
	if st := flaky.status(); st.State != StateDone || st.Attempt != 3 {
		t.Fatalf("flaky job: %+v, want done on attempt 3", st)
	}
	if got := runs.Load(); got != 3 {
		t.Fatalf("flaky job ran %d times, want 3", got)
	}
	if got := reg.Counter("serve.jobs_retried").Value(); got != 2 {
		t.Errorf("serve.jobs_retried = %d, want 2", got)
	}

	// Budget exhaustion: a job that never recovers fails after exactly
	// retries+1 attempts.
	var hopelessRuns atomic.Int32
	hopeless := &Job{Kind: "test", total: 1, retries: 2, run: func(ctx context.Context) (string, error) {
		hopelessRuns.Add(1)
		return "", errors.New("permanent engine fault")
	}}
	if err := s.enqueue(hopeless); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "hopeless job", func() bool { return hopeless.status().State.terminal() })
	if st := hopeless.status(); st.State != StateFailed || st.Attempt != 3 {
		t.Fatalf("hopeless job: %+v, want failed on attempt 3", st)
	}
	if got := hopelessRuns.Load(); got != 3 {
		t.Fatalf("hopeless job ran %d times, want 3 (1 + retry budget 2)", got)
	}
}

// TestWatchdogKillsStuckJob pins stuck-job detection: a job making no
// checkpoint progress within the window is cancelled and failed with
// watchdog attribution.
func TestWatchdogKillsStuckJob(t *testing.T) {
	reg := obs.Enable()
	defer obs.Disable()
	s, err := New(Options{Workers: 1, Watchdog: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	stuck := &Job{Kind: "test", total: 1, run: func(ctx context.Context) (string, error) {
		<-ctx.Done()
		return "", ctx.Err()
	}}
	if err := s.enqueue(stuck); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "watchdog kill", func() bool { return stuck.status().State.terminal() })
	st := stuck.status()
	if st.State != StateFailed || !strings.Contains(st.Error, "watchdog: no checkpoint progress within 30ms") {
		t.Fatalf("stuck job: %+v, want watchdog-attributed failure", st)
	}
	if got := reg.Counter("serve.watchdog_kills").Value(); got != 1 {
		t.Errorf("serve.watchdog_kills = %d, want 1", got)
	}
}

// TestPanickingJobQuarantined pins the poisoned-input path: a job
// whose attempts all panic lands in quarantined (visible as 500 on the
// report endpoint), not in an engine crash.
func TestPanickingJobQuarantined(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	poisoned := &Job{Kind: "test", total: 1, run: func(ctx context.Context) (string, error) {
		panic("poisoned work item")
	}}
	if err := s.enqueue(poisoned); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "quarantine", func() bool { return poisoned.status().State.terminal() })
	st := poisoned.status()
	if st.State != StateQuarantined || !strings.Contains(st.Error, "poisoned work item") {
		t.Fatalf("panicking job: %+v, want quarantined", st)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("report of quarantined job: status %d, want 500", resp.StatusCode)
	}
}

// TestIdempotencyKeyNeverGradesTwice pins the duplicate-submission
// contract over HTTP: the duplicate gets 200 with the original job,
// and only one job executes.
func TestIdempotencyKeyNeverGradesTwice(t *testing.T) {
	reg := obs.Enable()
	defer obs.Disable()
	_, ts := newTestServer(t, Options{Workers: 1})
	body := `{"kind":"grade","key":"dup-1","grade":{"algs":"mats+","size":16}}`

	post := func() (int, Status) {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, st
	}
	code1, st1 := post()
	code2, st2 := post()
	if code1 != http.StatusAccepted {
		t.Fatalf("first submit: status %d, want 202", code1)
	}
	if code2 != http.StatusOK || st2.ID != st1.ID {
		t.Fatalf("duplicate submit: status %d id %s, want 200 with id %s", code2, st2.ID, st1.ID)
	}
	waitDone(t, ts, st1.ID)
	if got := reg.Counter("serve.jobs_submitted").Value(); got != 1 {
		t.Errorf("serve.jobs_submitted = %d, want 1 (duplicate must not execute)", got)
	}
}

// TestUnavailableResponsesCarryRetryAfter pins the 503 contract for
// both draining and saturation: Retry-After header plus a
// machine-readable JSON body.
func TestUnavailableResponsesCarryRetryAfter(t *testing.T) {
	// Saturation: one blocked worker + a full queue.
	s, ts := newTestServer(t, Options{Workers: 1, Queue: 1})
	started := make(chan struct{})
	blocker := func(ctx context.Context) (string, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return "", ctx.Err()
	}
	if err := s.enqueue(&Job{Kind: "test", total: 1, run: blocker}); err != nil {
		t.Fatal(err)
	}
	<-started // the worker is busy
	if err := s.enqueue(&Job{Kind: "test", total: 1, run: blocker}); err != nil {
		t.Fatal(err) // sits in the queue, filling it
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"area"}`))
	if err != nil {
		t.Fatal(err)
	}
	assert503 := func(resp *http.Response, code, retryAfter string) {
		t.Helper()
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503: %s", resp.StatusCode, raw)
		}
		if got := resp.Header.Get("Retry-After"); got != retryAfter {
			t.Errorf("Retry-After = %q, want %q", got, retryAfter)
		}
		var body struct {
			Error             string `json:"error"`
			Code              string `json:"code"`
			RetryAfterSeconds int    `json:"retry_after_seconds"`
		}
		if err := json.Unmarshal(raw, &body); err != nil {
			t.Fatalf("503 body is not machine-readable JSON: %v: %s", err, raw)
		}
		if body.Code != code || body.Error == "" || body.RetryAfterSeconds == 0 {
			t.Errorf("503 body %+v, want code %q with error and retry_after_seconds", body, code)
		}
	}
	assert503(resp, "saturated", "1")

	// Draining beats saturation reporting.
	s.closeQueue()
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"area"}`))
	if err != nil {
		t.Fatal(err)
	}
	assert503(resp, "draining", "10")
}
