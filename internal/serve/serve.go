// Package serve implements the MBIST grading service behind
// cmd/mbistd: a JSON-over-HTTP job API exposing the repository's
// long-running workloads — coverage grading (optionally sharded),
// full-matrix lint, program assembly and area evaluation — on a
// bounded worker pool.
//
// Every job's text result is byte-identical to the corresponding CLI's
// stdout (mbistcov, mbistlint, mbistasm, mbistarea): the service and
// the CLIs resolve workloads through the same internal/sweep plumbing
// and render through the same library calls, which the service-e2e CI
// lane pins with a literal diff.
//
// API:
//
//	POST /v1/jobs            submit a job        -> 202 {"id":"job-1"}
//	                         (200 when an idempotency key replays)
//	GET  /v1/jobs/{id}       job status JSON
//	GET  /v1/jobs/{id}/report  result text (409 until the job is done)
//	GET  /v1/jobs/{id}/watch   streamed progress lines until terminal
//	GET  /v1/metrics         obs registry snapshot (?format=json)
//	GET  /v1/healthz         liveness + queue depth + journal info
//
// Submissions are validated synchronously — an unknown algorithm,
// architecture or engine is a 400 at POST time, not a failed job.
// During drain (SIGTERM) or queue saturation submissions return 503
// with a Retry-After header and a machine-readable JSON body while
// queued and running jobs finish.
//
// # Durability
//
// With Options.JournalDir set the server journals every job state
// transition (accepted → running → checkpointed(N) → done | failed |
// quarantined) to an append-only, fsync-per-record JSONL log riding
// the internal/resilience envelope (see journal.go). On restart the
// journal is replayed: terminal jobs keep serving their reports,
// interrupted jobs are re-enqueued and grade jobs resume from their
// last coverage.State checkpoint, producing reports byte-identical to
// an uninterrupted run. Jobs additionally get per-request deadlines
// (sweep.Spec.Timeout — an expired job reports Partial results), a
// stuck-job watchdog (no checkpoint progress within Options.Watchdog →
// cancelled and failed with attribution), and bounded retry with
// decorrelated-jitter backoff for transient failures (deterministic
// under Options.RetrySeed).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	mbist "repro"
	"repro/internal/fsmbist"
	"repro/internal/march"
	"repro/internal/microbist"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sweep"
)

// Options configures a Server.
type Options struct {
	// Workers bounds concurrently running jobs (<=0 selects 2).
	Workers int
	// Queue bounds jobs accepted but not yet running (<=0 selects 64).
	// A full queue rejects submissions with 503 instead of buffering
	// without bound.
	Queue int
	// JournalDir, when non-empty, makes the job store durable: every
	// state transition is journaled to <JournalDir>/jobs.journal and
	// replayed on the next New against the same directory. Empty keeps
	// the store in memory only.
	JournalDir string
	// CheckpointEvery is the grade-job checkpoint cadence in graded
	// faults (<=0 selects 2048). Each checkpoint journals the
	// algorithm's coverage state, bounding the work a crash loses.
	CheckpointEvery int
	// Watchdog is the maximum wall time a running job may go without
	// checkpoint progress before it is cancelled and failed with
	// attribution. Zero disables the watchdog.
	Watchdog time.Duration
	// RetryMax is the default transient-failure retry budget (re-runs
	// after the first attempt) for jobs that do not set their own via
	// sweep.Spec.Retries. Zero selects 2; negative disables retries.
	RetryMax int
	// RetryBase and RetryCap bound the decorrelated-jitter backoff
	// delays between retries (defaults 100ms and 5s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// RetrySeed seeds the backoff's jitter source, making retry
	// schedules deterministic for tests. Zero is a valid seed.
	RetrySeed int64
	// CrashAfterCheckpoints is a chaos knob: after the Nth checkpointed
	// journal record the process SIGKILLs itself — a deterministic
	// power-cut for the kill/restart/byte-identity harness. Zero
	// disables it. Requires JournalDir.
	CrashAfterCheckpoints int
}

// Server owns the job store and the worker pool. Create with New,
// mount Handler on an http.Server, and Drain on shutdown.
type Server struct {
	workers         int
	checkpointEvery int
	watchdog        time.Duration
	retryMax        int
	backoff         *resilience.Backoff
	crashAfter      int64
	crashCount      atomic.Int64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	keys     map[string]string // idempotency key -> job ID
	nextID   int
	draining bool

	journal   *resilience.Journal // nil when JournalDir is unset
	journalMu sync.Mutex

	queue   chan *Job
	running atomic.Int64

	mJobs         *obs.Counter
	mDone         *obs.Counter
	mFailed       *obs.Counter
	mWorking      *obs.Gauge
	mRecovered    *obs.Counter
	mRetried      *obs.Counter
	mDeadline     *obs.Counter
	mWatchdog     *obs.Counter
	mJournalBytes *obs.Gauge
}

// New starts a server's worker pool and returns it. With
// Options.JournalDir set it first replays the journal: an error there
// (resilience.ErrCorrupt, resilience.ErrMismatch or I/O) refuses to
// start — a service must not guess at a job log it cannot trust.
func New(opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.Queue <= 0 {
		opts.Queue = 64
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 2048
	}
	if opts.RetryMax == 0 {
		opts.RetryMax = 2
	}
	if opts.RetryMax < 0 {
		opts.RetryMax = 0
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 100 * time.Millisecond
	}
	if opts.RetryCap <= 0 {
		opts.RetryCap = 5 * time.Second
	}
	//mbist:exempt ctxflow server-lifetime root context, cancelled by Close
	ctx, cancel := context.WithCancel(context.Background())
	reg := obs.Active()
	s := &Server{
		workers:         opts.Workers,
		checkpointEvery: opts.CheckpointEvery,
		watchdog:        opts.Watchdog,
		retryMax:        opts.RetryMax,
		backoff:         resilience.NewBackoff(opts.RetryBase, opts.RetryCap, opts.RetrySeed),
		crashAfter:      int64(opts.CrashAfterCheckpoints),
		ctx:             ctx,
		cancel:          cancel,
		jobs:            make(map[string]*Job),
		keys:            make(map[string]string),
		mJobs:           reg.Counter("serve.jobs_submitted"),
		mDone:           reg.Counter("serve.jobs_done"),
		mFailed:         reg.Counter("serve.jobs_failed"),
		mWorking:        reg.Gauge("serve.jobs_running"),
		mRecovered:      reg.Counter("serve.jobs_recovered"),
		mRetried:        reg.Counter("serve.jobs_retried"),
		mDeadline:       reg.Counter("serve.jobs_deadline_exceeded"),
		mWatchdog:       reg.Counter("serve.watchdog_kills"),
		mJournalBytes:   reg.Gauge("serve.journal_bytes"),
	}
	var pending []*Job
	if opts.JournalDir != "" {
		var err error
		if pending, err = s.openJournal(opts.JournalDir); err != nil {
			cancel()
			return nil, err
		}
	}
	// Recovered jobs get guaranteed queue headroom so replay can never
	// deadlock against a small configured queue.
	s.queue = make(chan *Job, opts.Queue+len(pending))
	for _, job := range pending {
		//mbist:exempt ctxflow cannot block: the queue was just sized with len(pending) headroom
		s.queue <- job
	}
	if n := len(pending); n > 0 {
		s.mRecovered.Add(int64(n))
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Drain stops accepting new jobs, waits for queued and running jobs to
// finish, and returns nil — or cancels everything still running and
// returns the context error if ctx expires first.
func (s *Server) Drain(ctx context.Context) error {
	s.closeQueue()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.closeJournal()
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		s.closeJournal()
		return ctx.Err()
	}
}

// Close cancels running jobs and stops the pool without waiting for
// queued work. Tests use it; production shutdown goes through Drain.
// Interrupted jobs stay journaled as running, so a restart against the
// same journal directory re-enqueues and resumes them.
func (s *Server) Close() {
	s.cancel()
	s.closeQueue()
	s.wg.Wait()
	s.closeJournal()
}

// closeQueue flips the server into draining and closes the queue
// exactly once. Submissions enqueue under the same mutex, so a send on
// the closed queue cannot race in.
func (s *Server) closeQueue() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob drives one job through its attempts: run, classify the
// outcome, retry transient failures within the budget, journal every
// terminal transition.
func (s *Server) runJob(job *Job) {
	for {
		attempt := job.startAttempt()
		s.journalAppend(jobEntry{Op: opRunning, ID: job.ID, Attempt: attempt})

		runCtx := s.ctx
		var cancel context.CancelFunc
		if t := job.timeout; t > 0 {
			runCtx, cancel = context.WithTimeout(runCtx, t)
		} else {
			runCtx, cancel = context.WithCancel(runCtx)
		}
		var wdStop chan struct{}
		if s.watchdog > 0 {
			wdStop = make(chan struct{})
			go s.watchJob(job, cancel, wdStop)
		}

		s.mWorking.Set(s.running.Add(1))
		var text string
		var runErr error
		if capErr := resilience.Capture(func() { text, runErr = job.run(runCtx) }); capErr != nil {
			runErr = capErr
		}
		s.mWorking.Set(s.running.Add(-1))
		if wdStop != nil {
			close(wdStop)
		}
		cancel()

		switch {
		case runErr == nil:
			job.finish(text)
			if job.isExpired() {
				s.mDeadline.Add(1)
			}
			s.journalAppend(jobEntry{Op: opDone, ID: job.ID, Result: text, Expired: job.isExpired()})
			s.mDone.Add(1)
			s.maybeCompact()
			return
		case s.ctx.Err() != nil:
			// Server shutdown, not a job failure: fail it in memory for
			// this process but leave the journal at "running", so a
			// restart against the same journal dir re-enqueues and
			// resumes the job.
			job.fail(runErr)
			s.mFailed.Add(1)
			return
		case job.wasWatchdogKilled():
			job.fail(fmt.Errorf("watchdog: no checkpoint progress within %v; attempt %d cancelled", s.watchdog, attempt))
			s.journalAppend(jobEntry{Op: opFailed, ID: job.ID, Attempt: attempt, Error: job.status().Error})
			s.mFailed.Add(1)
			s.maybeCompact()
			return
		case errors.Is(runErr, context.DeadlineExceeded):
			// A deadline that escaped the run closure uncooked. Retrying
			// would only expire again; fail with attribution.
			job.fail(fmt.Errorf("deadline %v exceeded: %w", job.timeout, runErr))
			s.journalAppend(jobEntry{Op: opFailed, ID: job.ID, Attempt: attempt, Error: job.status().Error})
			s.mFailed.Add(1)
			s.maybeCompact()
			return
		default:
			// Transient failure: validation happened at submit, so a run
			// error here is an engine/runtime fault worth re-running —
			// from the last journaled checkpoint, within the budget.
			if attempt <= job.retries {
				s.mRetried.Add(1)
				select {
				case <-time.After(s.backoff.Next()):
					continue
				case <-s.ctx.Done():
					job.fail(runErr)
					s.mFailed.Add(1)
					return
				}
			}
			if _, isPanic := resilience.AsPanic(runErr); isPanic {
				job.quarantine(runErr)
				s.journalAppend(jobEntry{Op: opQuarantined, ID: job.ID, Attempt: attempt, Error: job.status().Error})
			} else {
				job.fail(runErr)
				s.journalAppend(jobEntry{Op: opFailed, ID: job.ID, Attempt: attempt, Error: job.status().Error})
			}
			s.mFailed.Add(1)
			s.maybeCompact()
			return
		}
	}
}

// watchJob cancels a job's attempt when it makes no checkpoint
// progress for the watchdog window.
func (s *Server) watchJob(job *Job, cancel context.CancelFunc, stop chan struct{}) {
	interval := s.watchdog / 4
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			if time.Since(job.progressTime()) > s.watchdog {
				job.markWatchdogKilled()
				s.mWatchdog.Add(1)
				cancel()
				return
			}
		}
	}
}

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle: queued -> running -> done | failed | quarantined.
// Quarantined marks a job whose every attempt panicked — poisoned
// input rather than a transient fault.
const (
	StateQueued      JobState = "queued"
	StateRunning     JobState = "running"
	StateDone        JobState = "done"
	StateFailed      JobState = "failed"
	StateQuarantined JobState = "quarantined"
)

// terminal reports whether a state is final.
func (st JobState) terminal() bool {
	return st == StateDone || st == StateFailed || st == StateQuarantined
}

// Job is one submitted workload. All mutable fields are guarded by mu;
// run closures touch progress through the job's own methods.
type Job struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	Key  string `json:"key,omitempty"`

	mu           sync.Mutex
	state        JobState
	done         int
	total        int
	errMsg       string
	result       string
	attempt      int
	checkpoints  int
	expired      bool
	wdKilled     bool
	lastProgress time.Time
	resume       map[string]*mbist.CoverageState

	req     Request
	timeout time.Duration
	retries int

	run func(ctx context.Context) (string, error)
}

func (j *Job) startAttempt() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.attempt++
	j.wdKilled = false
	j.lastProgress = time.Now()
	return j.attempt
}

func (j *Job) fail(err error) {
	j.mu.Lock()
	j.state = StateFailed
	j.errMsg = err.Error()
	j.mu.Unlock()
}

func (j *Job) quarantine(err error) {
	j.mu.Lock()
	j.state = StateQuarantined
	j.errMsg = err.Error()
	j.mu.Unlock()
}

func (j *Job) finish(text string) {
	j.mu.Lock()
	j.state = StateDone
	j.result = text
	j.done = j.total
	j.mu.Unlock()
}

func (j *Job) step() {
	j.mu.Lock()
	j.done++
	j.lastProgress = time.Now()
	j.mu.Unlock()
}

func (j *Job) markExpired() {
	j.mu.Lock()
	j.expired = true
	j.mu.Unlock()
}

func (j *Job) isExpired() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.expired
}

func (j *Job) markWatchdogKilled() {
	j.mu.Lock()
	j.wdKilled = true
	j.mu.Unlock()
}

func (j *Job) wasWatchdogKilled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.wdKilled
}

func (j *Job) progressTime() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastProgress
}

// resumeState returns the job's last journaled checkpoint for key
// (algorithm name, or "alg#shard/of" for sharded grades), nil when the
// job starts fresh.
func (j *Job) resumeState(key string) *mbist.CoverageState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resume[key]
}

// noteCheckpoint records checkpoint progress on the job and journals
// it. The coverage engine calls the checkpoint hook with grading
// paused, so the synchronous marshal inside Append sees a consistent
// snapshot.
func (s *Server) noteCheckpoint(job *Job, key string, st *mbist.CoverageState) {
	job.mu.Lock()
	job.checkpoints++
	n := job.checkpoints
	job.lastProgress = time.Now()
	if job.resume == nil {
		job.resume = make(map[string]*mbist.CoverageState)
	}
	job.resume[key] = st
	job.mu.Unlock()
	s.journalAppend(jobEntry{
		Op: opCheckpointed, ID: job.ID, N: n,
		States: map[string]*mbist.CoverageState{key: st},
	})
}

// Status is the wire form of a job's state.
type Status struct {
	ID    string   `json:"id"`
	Kind  string   `json:"kind"`
	State JobState `json:"state"`
	Done  int      `json:"done"`
	Total int      `json:"total"`
	// Attempt counts runs of this job (retries increment it).
	Attempt int `json:"attempt,omitempty"`
	// Checkpoints counts journaled coverage checkpoints.
	Checkpoints int `json:"checkpoints,omitempty"`
	// DeadlineExceeded marks a done job whose report is Partial because
	// its sweep.Spec timeout expired.
	DeadlineExceeded bool   `json:"deadline_exceeded,omitempty"`
	Error            string `json:"error,omitempty"`
}

func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID: j.ID, Kind: j.Kind, State: j.state,
		Done: j.done, Total: j.total,
		Attempt: j.attempt, Checkpoints: j.checkpoints,
		DeadlineExceeded: j.expired, Error: j.errMsg,
	}
}

// Request is a job submission body. Kind selects the payload; the
// matching field configures it (absent = all defaults).
type Request struct {
	Kind string `json:"kind"`
	// Key is an optional idempotency key: resubmitting a request with
	// the key of an in-flight or completed job returns that job (200)
	// instead of executing it again.
	Key      string           `json:"key,omitempty"`
	Grade    *GradeRequest    `json:"grade,omitempty"`
	Lint     *LintRequest     `json:"lint,omitempty"`
	Assemble *AssembleRequest `json:"assemble,omitempty"`
	Area     *AreaRequest     `json:"area,omitempty"`
}

// GradeRequest grades a coverage workload; the embedded Spec is the
// exact flag surface of mbistcov (same defaults, same names). Shards
// splits the sweep into that many universe slices graded independently
// and merged — the report is byte-identical at every shard count.
type GradeRequest struct {
	sweep.Spec
	Shards int `json:"shards,omitempty"`
}

// LintRequest lints the synthesised matrix (mbistlint's surface).
type LintRequest struct {
	Algs  string `json:"algs,omitempty"`
	Arch  string `json:"arch,omitempty"`
	Timer int    `json:"timer,omitempty"`
}

// AssembleRequest assembles one algorithm (mbistasm's surface).
type AssembleRequest struct {
	Arch      string `json:"arch,omitempty"` // microcode (default) or fsm
	Alg       string `json:"alg,omitempty"`  // library name (default marchc)
	Spec      string `json:"spec,omitempty"` // custom march notation, overrides Alg
	Word      *bool  `json:"word,omitempty"`
	Multiport *bool  `json:"multiport,omitempty"`
}

// AreaRequest regenerates the paper's area evaluation (mbistarea's
// surface). Table 0 prints all three tables plus the observations.
type AreaRequest struct {
	Table int `json:"table,omitempty"`
}

// Submit validates a request and enqueues it, returning the job and
// whether it was an idempotent replay of an existing one. A validation
// failure is returned synchronously; a draining server returns
// ErrDraining and a full queue ErrSaturated (both wrap
// ErrUnavailable).
func (s *Server) Submit(req Request) (job *Job, existing bool, err error) {
	job, err = s.prepJob(req)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	if req.Key != "" {
		if id, ok := s.keys[req.Key]; ok {
			prior := s.jobs[id]
			s.mu.Unlock()
			return prior, true, nil
		}
	}
	if s.draining {
		s.mu.Unlock()
		return nil, false, ErrDraining
	}
	// All queue sends happen under s.mu, so the capacity check cannot
	// race with another producer — and the send below cannot block.
	if len(s.queue) == cap(s.queue) {
		s.mu.Unlock()
		return nil, false, ErrSaturated
	}
	s.nextID++
	job.ID = fmt.Sprintf("job-%d", s.nextID)
	job.Key = req.Key
	s.jobs[job.ID] = job
	if req.Key != "" {
		s.keys[req.Key] = job.ID
	}
	// Journal before acknowledging: an accepted job survives a crash
	// between this append and the worker picking it up.
	s.journalAppend(jobEntry{Op: opAccepted, ID: job.ID, Key: job.Key, Req: &job.req})
	s.queue <- job
	s.mu.Unlock()
	s.mJobs.Add(1)
	return job, false, nil
}

// enqueue inserts a pre-built job with a custom run closure, bypassing
// request validation and the journal. It is the test seam for the
// retry, watchdog and panic paths.
func (s *Server) enqueue(job *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	if len(s.queue) == cap(s.queue) {
		return ErrSaturated
	}
	s.nextID++
	job.ID = fmt.Sprintf("job-%d", s.nextID)
	job.state = StateQueued
	s.jobs[job.ID] = job
	s.queue <- job
	return nil
}

// ErrUnavailable marks a submission rejected because the server is
// draining or its job queue is full; handlers map it to 503 with a
// Retry-After header. ErrDraining and ErrSaturated identify which.
var (
	ErrUnavailable = errors.New("server is draining or its job queue is full")
	ErrDraining    = fmt.Errorf("draining: %w", ErrUnavailable)
	ErrSaturated   = fmt.Errorf("queue full: %w", ErrUnavailable)
)

// prepJob validates a request into a runnable job. The job's retry
// budget defaults to the server's; grade jobs may override it (and set
// a deadline) through their sweep.Spec.
func (s *Server) prepJob(req Request) (*Job, error) {
	job := &Job{Kind: req.Kind, state: StateQueued, req: req, retries: s.retryMax}
	var err error
	switch req.Kind {
	case "grade":
		err = s.prepGrade(job, req.Grade)
	case "lint":
		err = prepLint(job, req.Lint)
	case "assemble":
		err = prepAssemble(job, req.Assemble)
	case "area":
		err = prepArea(job, req.Area)
	default:
		err = fmt.Errorf("unknown job kind %q (want grade, lint, assemble or area)", req.Kind)
	}
	if err != nil {
		return nil, err
	}
	return job, nil
}

func (s *Server) prepGrade(job *Job, req *GradeRequest) error {
	if req == nil {
		req = &GradeRequest{}
	}
	w, err := req.Spec.Workload()
	if err != nil {
		return err
	}
	timeout, err := req.Spec.TimeoutDuration()
	if err != nil {
		return err
	}
	job.timeout = timeout
	job.retries = req.Spec.RetryBudget(s.retryMax)
	shards := req.Shards
	if shards < 0 {
		return fmt.Errorf("negative shard count %d", shards)
	}
	if shards <= 1 {
		job.total = len(w.Algs)
		job.run = func(ctx context.Context) (string, error) {
			return s.runGrade(ctx, job, w)
		}
		return nil
	}
	job.total = shards + 1 // one unit per shard plus the merge
	job.run = func(ctx context.Context) (string, error) {
		return s.runShardedGrade(ctx, job, w, shards)
	}
	return nil
}

// runGrade grades the workload algorithm by algorithm, journaling a
// checkpoint every checkpointEvery faults and resuming any algorithm
// with a recovered state (a complete recovered state re-grades
// nothing). On its own deadline it returns the valid Partial report
// graded so far instead of an error.
func (s *Server) runGrade(ctx context.Context, job *Job, w *sweep.Workload) (string, error) {
	reports := make([]*mbist.CoverageReport, 0, len(w.Algs))
	for _, alg := range w.Algs {
		algOpts := w.Opts
		algOpts.CheckpointEvery = s.checkpointEvery
		if st := job.resumeState(alg.Name); st != nil {
			algOpts.Resume = st
		}
		name := alg.Name
		algOpts.Checkpoint = func(st *mbist.CoverageState) { s.noteCheckpoint(job, name, st) }
		rep, err := mbist.GradeCoverageContext(ctx, alg, w.Arch, algOpts)
		if err != nil {
			if job.timeout > 0 && errors.Is(ctx.Err(), context.DeadlineExceeded) {
				if rep != nil {
					reports = append(reports, rep)
				}
				job.markExpired()
				return renderPartial(w, reports, job.timeout), nil
			}
			return "", err
		}
		reports = append(reports, rep)
		job.step()
	}
	return w.RenderText(reports), nil
}

// renderPartial renders a deadline-expired grade: the matrix over
// every report produced (the last one Partial but internally
// consistent — each graded verdict exact) plus an attribution line.
func renderPartial(w *sweep.Workload, reports []*mbist.CoverageReport, timeout time.Duration) string {
	complete := 0
	for _, r := range reports {
		if !r.Partial {
			complete++
		}
	}
	return fmt.Sprintf("%s\npartial: deadline %v exceeded after %d/%d algorithms\n",
		strings.TrimRight(w.RenderText(reports), "\n"), timeout, complete, len(w.Algs))
}

// runShardedGrade grades shard by shard with per-(algorithm, shard)
// checkpoint states keyed "alg#shard/of", merging into a report
// byte-identical to the unsharded sweep.
func (s *Server) runShardedGrade(ctx context.Context, job *Job, w *sweep.Workload, shards int) (string, error) {
	pieces := make([]*sweep.Shard, shards)
	for i := range pieces {
		piece := &sweep.Shard{
			Algs:   w.Names(),
			Shard:  i,
			Of:     shards,
			States: make(map[string]*mbist.CoverageState, len(w.Algs)),
		}
		for _, alg := range w.Algs {
			key := fmt.Sprintf("%s#%d/%d", alg.Name, i, shards)
			algOpts := w.Opts
			algOpts.CheckpointEvery = s.checkpointEvery
			if st := job.resumeState(key); st != nil {
				algOpts.Resume = st
			}
			ck := key
			algOpts.Checkpoint = func(st *mbist.CoverageState) { s.noteCheckpoint(job, ck, st) }
			st, err := mbist.GradeCoverageShardContext(ctx, alg, w.Arch, algOpts, i, shards)
			if err != nil {
				if job.timeout > 0 && errors.Is(ctx.Err(), context.DeadlineExceeded) {
					job.markExpired()
					return fmt.Sprintf("fault coverage on %v (%d x %d bits, %d ports):\n\npartial: deadline %v exceeded after %d/%d shards; no merged matrix\n",
						w.Arch, w.Opts.Size, w.Opts.Width, w.Opts.Ports, job.timeout, i, shards), nil
				}
				return "", err
			}
			piece.States[alg.Name] = st
		}
		pieces[i] = piece
		job.step()
	}
	reports, err := w.Merge(pieces...)
	if err != nil {
		return "", err
	}
	job.step()
	return w.RenderText(reports), nil
}

func prepLint(job *Job, req *LintRequest) error {
	if req == nil {
		req = &LintRequest{}
	}
	opts := mbist.LintOptions{DelayTimerBits: req.Timer}
	if req.Algs != "" {
		for _, name := range strings.Split(req.Algs, ",") {
			name = strings.TrimSpace(name)
			if _, ok := march.ByName(name); !ok {
				return fmt.Errorf("unknown algorithm %q", name)
			}
			opts.Algorithms = append(opts.Algorithms, name)
		}
	}
	if req.Arch != "" {
		arch, err := parseLintArch(req.Arch)
		if err != nil {
			return err
		}
		opts.Archs = []mbist.LintArch{arch}
	}
	job.total = 1
	job.run = func(ctx context.Context) (string, error) {
		rep, err := mbist.Lint(opts)
		if err != nil {
			return "", err
		}
		return rep.Text(), nil
	}
	return nil
}

func prepAssemble(job *Job, req *AssembleRequest) error {
	if req == nil {
		req = &AssembleRequest{}
	}
	arch := req.Arch
	if arch == "" {
		arch = "microcode"
	}
	if arch != "microcode" && arch != "fsm" {
		return fmt.Errorf("unknown architecture %q (want microcode or fsm)", arch)
	}
	var alg march.Algorithm
	if req.Spec != "" {
		var err error
		if alg, err = march.Parse("custom", req.Spec); err != nil {
			return err
		}
	} else {
		name := req.Alg
		if name == "" {
			name = "marchc"
		}
		var ok bool
		if alg, ok = march.ByName(name); !ok {
			return fmt.Errorf("unknown algorithm %q", name)
		}
	}
	word, multi := true, true
	if req.Word != nil {
		word = *req.Word
	}
	if req.Multiport != nil {
		multi = *req.Multiport
	}
	job.total = 1
	job.run = func(ctx context.Context) (string, error) {
		var b strings.Builder
		fmt.Fprintf(&b, "algorithm: %s = %s (%dN)\n\n", alg.Name, alg, alg.OpCount())
		switch arch {
		case "microcode":
			p, err := microbist.Assemble(alg, microbist.AssembleOpts{WordOriented: word, Multiport: multi})
			if err != nil {
				return "", err
			}
			b.WriteString(p.Listing())
		case "fsm":
			p, err := fsmbist.Compile(alg, fsmbist.CompileOpts{WordOriented: word, Multiport: multi})
			if err != nil {
				return "", err
			}
			b.WriteString(p.Listing())
			if p.Decomposed {
				fmt.Fprintf(&b, "\nnote: elements decomposed into SM components; realized algorithm:\n%s\n", p.Realized)
			}
		}
		return b.String(), nil
	}
	return nil
}

func prepArea(job *Job, req *AreaRequest) error {
	if req == nil {
		req = &AreaRequest{}
	}
	if req.Table < 0 || req.Table > 3 {
		return fmt.Errorf("no table %d (want 1-3, or 0 for all)", req.Table)
	}
	table := req.Table
	job.total = 1
	job.run = func(ctx context.Context) (string, error) {
		var b strings.Builder
		tables := []func() (*mbist.Table, error){mbist.Table1, mbist.Table2, mbist.Table3}
		for i, f := range tables {
			if table != 0 && table != i+1 {
				continue
			}
			t, err := f()
			if err != nil {
				return "", fmt.Errorf("table %d: %w", i+1, err)
			}
			fmt.Fprintln(&b, t)
		}
		if table == 0 {
			o, err := mbist.MeasureObservations()
			if err != nil {
				return "", err
			}
			fmt.Fprintln(&b, "Observations (paper §3):")
			fmt.Fprint(&b, o)
			if err := o.Check(); err != nil {
				return "", fmt.Errorf("observation check failed: %w", err)
			}
			fmt.Fprintln(&b, "all four observations hold")
		}
		return b.String(), nil
	}
	return nil
}

func parseLintArch(s string) (mbist.LintArch, error) {
	switch s {
	case "microcode":
		return mbist.LintMicrocode, nil
	case "microcode-scan":
		return mbist.LintMicrocodeScan, nil
	case "fsm":
		return mbist.LintProgFSM, nil
	case "hardwired":
		return mbist.LintHardwired, nil
	}
	return 0, fmt.Errorf("unknown architecture %q", s)
}

// Retry-After seconds the 503 responses advertise: a saturated queue
// clears as soon as a worker frees a slot; a draining server never
// comes back, so the client should wait for its replacement.
const (
	retryAfterSaturated = 1
	retryAfterDraining  = 10
)

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/jobs/{id}/watch", s.handleWatch)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	job, existing, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrUnavailable):
		code, retryAfter := "saturated", retryAfterSaturated
		if errors.Is(err, ErrDraining) {
			code, retryAfter = "draining", retryAfterDraining
		}
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":               err.Error(),
			"code":                code,
			"retry_after_seconds": retryAfter,
		})
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if existing {
		writeJSON(w, http.StatusOK, job.status())
		return
	}
	writeJSON(w, http.StatusAccepted, job.status())
}

func (s *Server) lookup(r *http.Request) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[r.PathValue("id")]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r)
	if job == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job.status())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r)
	if job == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	st := job.status()
	switch st.State {
	case StateFailed, StateQuarantined:
		httpError(w, http.StatusInternalServerError, fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error))
	case StateDone:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		job.mu.Lock()
		result := job.result
		job.mu.Unlock()
		fmt.Fprint(w, result)
	default:
		httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s; report is available once it is done", st.ID, st.State))
	}
}

// handleWatch streams progress lines ("state done/total") until the
// job reaches a terminal state or the client goes away.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r)
	if job == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	ticker := time.NewTicker(50 * time.Millisecond)
	defer ticker.Stop()
	var last Status
	for first := true; ; first = false {
		st := job.status()
		if first || st != last {
			fmt.Fprintf(w, "%s %d/%d\n", st.State, st.Done, st.Total)
			if flusher != nil {
				flusher.Flush()
			}
			last = st
		}
		if st.State.terminal() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ms := obs.Active().Snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := obs.WriteJSON(w, ms); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	obs.WriteText(w, ms)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.jobs)
	draining := s.draining
	s.mu.Unlock()
	body := map[string]any{
		"status":   "ok",
		"jobs":     n,
		"queued":   len(s.queue),
		"workers":  s.workers,
		"draining": draining,
	}
	s.journalMu.Lock()
	if s.journal != nil {
		body["journal"] = map[string]any{
			"path":    s.journal.Path(),
			"bytes":   s.journal.Size(),
			"records": s.journal.Records(),
		}
	}
	s.journalMu.Unlock()
	writeJSON(w, http.StatusOK, body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]any{"error": err.Error()})
}
