// Package serve implements the MBIST grading service behind
// cmd/mbistd: a JSON-over-HTTP job API exposing the repository's
// long-running workloads — coverage grading (optionally sharded),
// full-matrix lint, program assembly and area evaluation — on a
// bounded worker pool.
//
// Every job's text result is byte-identical to the corresponding CLI's
// stdout (mbistcov, mbistlint, mbistasm, mbistarea): the service and
// the CLIs resolve workloads through the same internal/sweep plumbing
// and render through the same library calls, which the service-e2e CI
// lane pins with a literal diff.
//
// API:
//
//	POST /v1/jobs            submit a job        -> 202 {"id":"job-1"}
//	GET  /v1/jobs/{id}       job status JSON
//	GET  /v1/jobs/{id}/report  result text (409 until the job is done)
//	GET  /v1/jobs/{id}/watch   streamed progress lines until terminal
//	GET  /v1/metrics         obs registry snapshot (?format=json)
//	GET  /v1/healthz         liveness + queue depth
//
// Submissions are validated synchronously — an unknown algorithm,
// architecture or engine is a 400 at POST time, not a failed job.
// During drain (SIGTERM) submissions return 503 while queued and
// running jobs finish.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	mbist "repro"
	"repro/internal/fsmbist"
	"repro/internal/march"
	"repro/internal/microbist"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// Options configures a Server.
type Options struct {
	// Workers bounds concurrently running jobs (<=0 selects 2).
	Workers int
	// Queue bounds jobs accepted but not yet running (<=0 selects 64).
	// A full queue rejects submissions with 503 instead of buffering
	// without bound.
	Queue int
}

// Server owns the job store and the worker pool. Create with New,
// mount Handler on an http.Server, and Drain on shutdown.
type Server struct {
	workers int

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	nextID   int
	draining bool

	queue   chan *Job
	running atomic.Int64

	mJobs    *obs.Counter
	mDone    *obs.Counter
	mFailed  *obs.Counter
	mWorking *obs.Gauge
}

// New starts a server's worker pool and returns it.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.Queue <= 0 {
		opts.Queue = 64
	}
	//mbist:exempt ctxflow server-lifetime root context, cancelled by Close
	ctx, cancel := context.WithCancel(context.Background())
	reg := obs.Active()
	s := &Server{
		workers:  opts.Workers,
		ctx:      ctx,
		cancel:   cancel,
		jobs:     make(map[string]*Job),
		queue:    make(chan *Job, opts.Queue),
		mJobs:    reg.Counter("serve.jobs_submitted"),
		mDone:    reg.Counter("serve.jobs_done"),
		mFailed:  reg.Counter("serve.jobs_failed"),
		mWorking: reg.Gauge("serve.jobs_running"),
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Drain stops accepting new jobs, waits for queued and running jobs to
// finish, and returns nil — or cancels everything still running and
// returns the context error if ctx expires first.
func (s *Server) Drain(ctx context.Context) error {
	s.closeQueue()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		return ctx.Err()
	}
}

// Close cancels running jobs and stops the pool without waiting for
// queued work. Tests use it; production shutdown goes through Drain.
func (s *Server) Close() {
	s.cancel()
	s.closeQueue()
	s.wg.Wait()
}

// closeQueue flips the server into draining and closes the queue
// exactly once. Submissions enqueue under the same mutex, so a send on
// the closed queue cannot race in.
func (s *Server) closeQueue() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		job.setState(StateRunning)
		s.mWorking.Set(s.running.Add(1))
		text, err := job.run(s.ctx)
		s.mWorking.Set(s.running.Add(-1))
		if err != nil {
			job.fail(err)
			s.mFailed.Add(1)
			continue
		}
		job.finish(text)
		s.mDone.Add(1)
	}
}

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle: queued -> running -> done | failed.
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// Job is one submitted workload. All mutable fields are guarded by mu;
// run closures touch progress through the job's own methods.
type Job struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`

	mu     sync.Mutex
	state  JobState
	done   int
	total  int
	errMsg string
	result string

	run func(ctx context.Context) (string, error)
}

func (j *Job) setState(st JobState) {
	j.mu.Lock()
	j.state = st
	j.mu.Unlock()
}

func (j *Job) fail(err error) {
	j.mu.Lock()
	j.state = StateFailed
	j.errMsg = err.Error()
	j.mu.Unlock()
}

func (j *Job) finish(text string) {
	j.mu.Lock()
	j.state = StateDone
	j.result = text
	j.done = j.total
	j.mu.Unlock()
}

func (j *Job) step() {
	j.mu.Lock()
	j.done++
	j.mu.Unlock()
}

// Status is the wire form of a job's state.
type Status struct {
	ID    string   `json:"id"`
	Kind  string   `json:"kind"`
	State JobState `json:"state"`
	Done  int      `json:"done"`
	Total int      `json:"total"`
	Error string   `json:"error,omitempty"`
}

func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID: j.ID, Kind: j.Kind, State: j.state,
		Done: j.done, Total: j.total, Error: j.errMsg,
	}
}

// Request is a job submission body. Kind selects the payload; the
// matching field configures it (absent = all defaults).
type Request struct {
	Kind     string           `json:"kind"`
	Grade    *GradeRequest    `json:"grade,omitempty"`
	Lint     *LintRequest     `json:"lint,omitempty"`
	Assemble *AssembleRequest `json:"assemble,omitempty"`
	Area     *AreaRequest     `json:"area,omitempty"`
}

// GradeRequest grades a coverage workload; the embedded Spec is the
// exact flag surface of mbistcov (same defaults, same names). Shards
// splits the sweep into that many universe slices graded independently
// and merged — the report is byte-identical at every shard count.
type GradeRequest struct {
	sweep.Spec
	Shards int `json:"shards,omitempty"`
}

// LintRequest lints the synthesised matrix (mbistlint's surface).
type LintRequest struct {
	Algs  string `json:"algs,omitempty"`
	Arch  string `json:"arch,omitempty"`
	Timer int    `json:"timer,omitempty"`
}

// AssembleRequest assembles one algorithm (mbistasm's surface).
type AssembleRequest struct {
	Arch      string `json:"arch,omitempty"` // microcode (default) or fsm
	Alg       string `json:"alg,omitempty"`  // library name (default marchc)
	Spec      string `json:"spec,omitempty"` // custom march notation, overrides Alg
	Word      *bool  `json:"word,omitempty"`
	Multiport *bool  `json:"multiport,omitempty"`
}

// AreaRequest regenerates the paper's area evaluation (mbistarea's
// surface). Table 0 prints all three tables plus the observations.
type AreaRequest struct {
	Table int `json:"table,omitempty"`
}

// Submit validates a request and enqueues it, returning the job. A
// validation failure is returned synchronously; a draining server or a
// full queue returns ErrUnavailable.
func (s *Server) Submit(req Request) (*Job, error) {
	job := &Job{Kind: req.Kind, state: StateQueued}
	var err error
	switch req.Kind {
	case "grade":
		err = prepGrade(job, req.Grade)
	case "lint":
		err = prepLint(job, req.Lint)
	case "assemble":
		err = prepAssemble(job, req.Assemble)
	case "area":
		err = prepArea(job, req.Area)
	default:
		err = fmt.Errorf("unknown job kind %q (want grade, lint, assemble or area)", req.Kind)
	}
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrUnavailable
	}
	s.nextID++
	job.ID = fmt.Sprintf("job-%d", s.nextID)
	select {
	case s.queue <- job:
	default:
		s.nextID--
		s.mu.Unlock()
		return nil, ErrUnavailable
	}
	s.jobs[job.ID] = job
	s.mu.Unlock()
	s.mJobs.Add(1)
	return job, nil
}

// ErrUnavailable marks a submission rejected because the server is
// draining or its queue is full; handlers map it to 503.
var ErrUnavailable = fmt.Errorf("server is draining or its job queue is full")

func prepGrade(job *Job, req *GradeRequest) error {
	if req == nil {
		req = &GradeRequest{}
	}
	w, err := req.Spec.Workload()
	if err != nil {
		return err
	}
	shards := req.Shards
	if shards < 0 {
		return fmt.Errorf("negative shard count %d", shards)
	}
	if shards <= 1 {
		job.total = len(w.Algs)
		job.run = func(ctx context.Context) (string, error) {
			reports := make([]*mbist.CoverageReport, 0, len(w.Algs))
			for _, alg := range w.Algs {
				rep, err := mbist.GradeCoverageContext(ctx, alg, w.Arch, w.Opts)
				if err != nil {
					return "", err
				}
				reports = append(reports, rep)
				job.step()
			}
			return w.RenderText(reports), nil
		}
		return nil
	}
	job.total = shards + 1 // one unit per shard plus the merge
	job.run = func(ctx context.Context) (string, error) {
		pieces := make([]*sweep.Shard, shards)
		for i := range pieces {
			var err error
			if pieces[i], err = w.GradeShard(ctx, i, shards); err != nil {
				return "", err
			}
			job.step()
		}
		reports, err := w.Merge(pieces...)
		if err != nil {
			return "", err
		}
		job.step()
		return w.RenderText(reports), nil
	}
	return nil
}

func prepLint(job *Job, req *LintRequest) error {
	if req == nil {
		req = &LintRequest{}
	}
	opts := mbist.LintOptions{DelayTimerBits: req.Timer}
	if req.Algs != "" {
		for _, name := range strings.Split(req.Algs, ",") {
			name = strings.TrimSpace(name)
			if _, ok := march.ByName(name); !ok {
				return fmt.Errorf("unknown algorithm %q", name)
			}
			opts.Algorithms = append(opts.Algorithms, name)
		}
	}
	if req.Arch != "" {
		arch, err := parseLintArch(req.Arch)
		if err != nil {
			return err
		}
		opts.Archs = []mbist.LintArch{arch}
	}
	job.total = 1
	job.run = func(ctx context.Context) (string, error) {
		rep, err := mbist.Lint(opts)
		if err != nil {
			return "", err
		}
		return rep.Text(), nil
	}
	return nil
}

func prepAssemble(job *Job, req *AssembleRequest) error {
	if req == nil {
		req = &AssembleRequest{}
	}
	arch := req.Arch
	if arch == "" {
		arch = "microcode"
	}
	if arch != "microcode" && arch != "fsm" {
		return fmt.Errorf("unknown architecture %q (want microcode or fsm)", arch)
	}
	var alg march.Algorithm
	if req.Spec != "" {
		var err error
		if alg, err = march.Parse("custom", req.Spec); err != nil {
			return err
		}
	} else {
		name := req.Alg
		if name == "" {
			name = "marchc"
		}
		var ok bool
		if alg, ok = march.ByName(name); !ok {
			return fmt.Errorf("unknown algorithm %q", name)
		}
	}
	word, multi := true, true
	if req.Word != nil {
		word = *req.Word
	}
	if req.Multiport != nil {
		multi = *req.Multiport
	}
	job.total = 1
	job.run = func(ctx context.Context) (string, error) {
		var b strings.Builder
		fmt.Fprintf(&b, "algorithm: %s = %s (%dN)\n\n", alg.Name, alg, alg.OpCount())
		switch arch {
		case "microcode":
			p, err := microbist.Assemble(alg, microbist.AssembleOpts{WordOriented: word, Multiport: multi})
			if err != nil {
				return "", err
			}
			b.WriteString(p.Listing())
		case "fsm":
			p, err := fsmbist.Compile(alg, fsmbist.CompileOpts{WordOriented: word, Multiport: multi})
			if err != nil {
				return "", err
			}
			b.WriteString(p.Listing())
			if p.Decomposed {
				fmt.Fprintf(&b, "\nnote: elements decomposed into SM components; realized algorithm:\n%s\n", p.Realized)
			}
		}
		return b.String(), nil
	}
	return nil
}

func prepArea(job *Job, req *AreaRequest) error {
	if req == nil {
		req = &AreaRequest{}
	}
	if req.Table < 0 || req.Table > 3 {
		return fmt.Errorf("no table %d (want 1-3, or 0 for all)", req.Table)
	}
	table := req.Table
	job.total = 1
	job.run = func(ctx context.Context) (string, error) {
		var b strings.Builder
		tables := []func() (*mbist.Table, error){mbist.Table1, mbist.Table2, mbist.Table3}
		for i, f := range tables {
			if table != 0 && table != i+1 {
				continue
			}
			t, err := f()
			if err != nil {
				return "", fmt.Errorf("table %d: %w", i+1, err)
			}
			fmt.Fprintln(&b, t)
		}
		if table == 0 {
			o, err := mbist.MeasureObservations()
			if err != nil {
				return "", err
			}
			fmt.Fprintln(&b, "Observations (paper §3):")
			fmt.Fprint(&b, o)
			if err := o.Check(); err != nil {
				return "", fmt.Errorf("observation check failed: %w", err)
			}
			fmt.Fprintln(&b, "all four observations hold")
		}
		return b.String(), nil
	}
	return nil
}

func parseLintArch(s string) (mbist.LintArch, error) {
	switch s {
	case "microcode":
		return mbist.LintMicrocode, nil
	case "microcode-scan":
		return mbist.LintMicrocodeScan, nil
	case "fsm":
		return mbist.LintProgFSM, nil
	case "hardwired":
		return mbist.LintHardwired, nil
	}
	return 0, fmt.Errorf("unknown architecture %q", s)
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/jobs/{id}/watch", s.handleWatch)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	job, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrUnavailable):
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.status())
}

func (s *Server) lookup(r *http.Request) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[r.PathValue("id")]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r)
	if job == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job.status())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r)
	if job == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	st := job.status()
	switch st.State {
	case StateFailed:
		httpError(w, http.StatusInternalServerError, fmt.Errorf("job %s failed: %s", st.ID, st.Error))
	case StateDone:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		job.mu.Lock()
		result := job.result
		job.mu.Unlock()
		fmt.Fprint(w, result)
	default:
		httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s; report is available once it is done", st.ID, st.State))
	}
}

// handleWatch streams progress lines ("state done/total") until the
// job reaches a terminal state or the client goes away.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r)
	if job == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	ticker := time.NewTicker(50 * time.Millisecond)
	defer ticker.Stop()
	var last Status
	for first := true; ; first = false {
		st := job.status()
		if first || st != last {
			fmt.Fprintf(w, "%s %d/%d\n", st.State, st.Done, st.Total)
			if flusher != nil {
				flusher.Flush()
			}
			last = st
		}
		if st.State == StateDone || st.State == StateFailed {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ms := obs.Active().Snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := obs.WriteJSON(w, ms); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	obs.WriteText(w, ms)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.jobs)
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"jobs":     n,
		"queued":   len(s.queue),
		"workers":  s.workers,
		"draining": draining,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]any{"error": err.Error()})
}
