package bist

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/march"
	"repro/internal/netlist"
)

// Hardware builders for the shared datapath. The area evaluation of the
// paper sizes controllers; these builders additionally let the full BIST
// unit (controller + datapath) be sized, which is how the word-oriented
// and multiport extensions of Table 2 grow the non-controller hardware.

// AddressGenNets exposes the address-generator hardware interface.
type AddressGenNets struct {
	Q    []netlist.NetID // current address
	Last netlist.NetID   // terminal-address flag for the current direction
}

// BuildAddressGen builds the address generator using the
// XOR-complement scheme standard in BIST datapaths: an up-only counter
// provides the sweep position, and the physical address is the counter
// XORed with the direction bit — a descending sweep therefore starts at
// the top address with no reload, and every sweep ends when the counter
// reaches all-ones (the Last condition), wrapping naturally to the next
// element's start. en advances the counter, down selects direction, clr
// synchronously restarts the sweep.
func BuildAddressGen(nl *netlist.Netlist, bits int, en, down, clr netlist.NetID) AddressGenNets {
	c := nl.BuildCounter("addr", bits, en, netlist.Invalid, clr)
	q := make([]netlist.NetID, bits)
	for i := range q {
		q[i] = nl.Xor2(c.Q[i], down)
	}
	return AddressGenNets{Q: q, Last: c.Terminal}
}

// DataGenNets exposes the data-generator hardware interface.
type DataGenNets struct {
	BgIndex []netlist.NetID // background counter state
	Last    netlist.NetID   // last-background flag
	Pattern []netlist.NetID // test word after polarity XOR
}

// BuildDataGen builds the background generator for a word width: a
// background-index counter (step advances, clr restarts) and the decoded
// pattern, XORed with the invert polarity input.
func BuildDataGen(nl *netlist.Netlist, width int, step, clr, invert netlist.NetID) DataGenNets {
	bgs := march.Backgrounds(width)
	if len(bgs) == 1 {
		// A single background (bit-oriented memories) needs no counter:
		// the generator degenerates to the polarity XOR and a tied-high
		// last-background flag. Building the counter anyway would leave
		// a flip-flop that can never leave its reset value.
		pattern := make([]netlist.NetID, width)
		for lane := 0; lane < width; lane++ {
			bit := nl.Const0()
			if bgs[0]>>uint(lane)&1 == 1 {
				bit = nl.Const1()
			}
			pattern[lane] = nl.Xor2(bit, invert)
		}
		return DataGenNets{Last: nl.Const1(), Pattern: pattern}
	}
	bgBits := logic.Log2Ceil(len(bgs))
	c := nl.BuildCounter("bg", bgBits, step, netlist.Invalid, clr)
	last := nl.EqualsConst(c.Q, uint64(len(bgs)-1))

	pattern := make([]netlist.NetID, width)
	for lane := 0; lane < width; lane++ {
		tt := logic.NewTruthTable(bgBits)
		for row := 0; row < tt.NumRows(); row++ {
			if row >= len(bgs) {
				tt.Set(row, logic.DontCare)
				continue
			}
			tt.SetBool(row, bgs[row]>>uint(lane)&1 == 1)
		}
		lanePat := nl.FromTruthTable(tt, c.Q)
		pattern[lane] = nl.Xor2(lanePat, invert)
	}
	return DataGenNets{BgIndex: c.Q, Last: last, Pattern: pattern}
}

// BuildComparator builds a width-bit equality comparator with a compare
// enable: mismatch = en AND (read != expected).
func BuildComparator(nl *netlist.Netlist, read, expected []netlist.NetID, en netlist.NetID) netlist.NetID {
	if len(read) != len(expected) {
		panic(fmt.Sprintf("bist: comparator width mismatch %d vs %d", len(read), len(expected)))
	}
	diffs := make([]netlist.NetID, len(read))
	for i := range read {
		diffs[i] = nl.Xor2(read[i], expected[i])
	}
	return nl.And2(en, nl.OrN(diffs...))
}

// BuildPortCounter builds the port selector for a multiport memory.
func BuildPortCounter(nl *netlist.Netlist, ports int, step, clr netlist.NetID) (q []netlist.NetID, last netlist.NetID) {
	bits := logic.Log2Ceil(ports)
	if bits == 0 {
		bits = 1
	}
	c := nl.BuildCounter("port", bits, step, netlist.Invalid, clr)
	return c.Q, nl.EqualsConst(c.Q, uint64(ports-1))
}

// BuildMISR builds a 16-bit internal-XOR MISR compacting the data nets
// (lanes beyond 16 are folded in modulo 16) when en is asserted.
func BuildMISR(nl *netlist.Netlist, data []netlist.NetID, en netlist.NetID) []netlist.NetID {
	const n = 16
	q := make([]netlist.NetID, n)
	for i := range q {
		q[i] = nl.AddFF(netlist.CellDFF, nl.Const0(), false)
		nl.SetNetName(q[i], fmt.Sprintf("misr[%d]", i))
	}
	fb := q[n-1]
	for i := 0; i < n; i++ {
		var d netlist.NetID
		if i == 0 {
			d = fb
		} else {
			d = q[i-1]
			// Polynomial taps of x^16+x^12+x^5+1: bits 12 and 5.
			if i == 12 || i == 5 {
				d = nl.Xor2(d, fb)
			}
		}
		for lane := i; lane < len(data); lane += n {
			d = nl.Xor2(d, data[lane])
		}
		nl.SetFFInput(q[i], nl.Mux2(en, q[i], d))
	}
	return q
}
