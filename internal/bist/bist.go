// Package bist provides the datapath components every memory BIST
// architecture in the paper shares: the address generator, the data
// background generator, the port selector and the response analyser
// (comparator, fail log and an optional MISR signature). Each component
// has a behavioural model used by the controller executors and a
// netlist builder used for the area evaluation.
package bist

import (
	"fmt"

	"repro/internal/march"
)

// AddressGenerator is a binary up/down address counter over [0, N).
type AddressGenerator struct {
	n    int
	cur  int
	down bool
}

// NewAddressGenerator returns a generator over n addresses positioned at
// the start of an ascending sweep.
func NewAddressGenerator(n int) *AddressGenerator {
	if n <= 0 {
		panic(fmt.Sprintf("bist: address space %d must be positive", n))
	}
	return &AddressGenerator{n: n}
}

// Reset restarts a sweep in the given direction: address 0 when
// ascending, N-1 when descending.
func (g *AddressGenerator) Reset(down bool) {
	g.down = down
	if down {
		g.cur = g.n - 1
	} else {
		g.cur = 0
	}
}

// Addr returns the current address.
func (g *AddressGenerator) Addr() int { return g.cur }

// Down reports the current direction.
func (g *AddressGenerator) Down() bool { return g.down }

// Last reports whether the current address is the final one of the
// sweep — the "Last Address" condition of the paper's instruction
// decoders.
func (g *AddressGenerator) Last() bool {
	if g.down {
		return g.cur == 0
	}
	return g.cur == g.n-1
}

// Step advances one address, wrapping to the start of the sweep after
// the last address.
func (g *AddressGenerator) Step() {
	if g.Last() {
		g.Reset(g.down)
		return
	}
	if g.down {
		g.cur--
	} else {
		g.cur++
	}
}

// DataGenerator cycles through the data background patterns of a word
// width (see march.Backgrounds).
type DataGenerator struct {
	width int
	bgs   []uint64
	idx   int
	mask  uint64
}

// NewDataGenerator returns a generator for the given word width,
// positioned at the solid background.
func NewDataGenerator(width int) *DataGenerator {
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("bist: width %d out of [1,64]", width))
	}
	mask := ^uint64(0)
	if width < 64 {
		mask = uint64(1)<<uint(width) - 1
	}
	return &DataGenerator{width: width, bgs: march.Backgrounds(width), mask: mask}
}

// Reset returns to the solid background.
func (g *DataGenerator) Reset() { g.idx = 0 }

// Background returns the index of the current background.
func (g *DataGenerator) Background() int { return g.idx }

// Count returns the number of backgrounds.
func (g *DataGenerator) Count() int { return len(g.bgs) }

// Last reports whether the current background is the final one — the
// "Last Data" condition.
func (g *DataGenerator) Last() bool { return g.idx == len(g.bgs)-1 }

// Step advances to the next background, wrapping after the last.
func (g *DataGenerator) Step() { g.idx = (g.idx + 1) % len(g.bgs) }

// Pattern returns the current test word: the background when invert is
// false ("0" polarity), its complement when true ("1" polarity).
func (g *DataGenerator) Pattern(invert bool) uint64 {
	if invert {
		return ^g.bgs[g.idx] & g.mask
	}
	return g.bgs[g.idx]
}

// PortSelector steps through the ports of a multiport memory.
type PortSelector struct {
	ports int
	cur   int
}

// NewPortSelector returns a selector over the given port count.
func NewPortSelector(ports int) *PortSelector {
	if ports <= 0 {
		panic(fmt.Sprintf("bist: ports %d must be positive", ports))
	}
	return &PortSelector{ports: ports}
}

// Reset returns to port 0.
func (s *PortSelector) Reset() { s.cur = 0 }

// Port returns the current port.
func (s *PortSelector) Port() int { return s.cur }

// Last reports whether the current port is the final one — the
// "Last Port" condition.
func (s *PortSelector) Last() bool { return s.cur == s.ports-1 }

// Step advances to the next port, wrapping after the last.
func (s *PortSelector) Step() { s.cur = (s.cur + 1) % s.ports }
