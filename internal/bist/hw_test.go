package bist

import (
	"testing"

	"repro/internal/gatesim"
	"repro/internal/netlist"
)

func TestBuildAddressGenMatchesBehaviour(t *testing.T) {
	nl := netlist.New("addrgen")
	en := nl.AddInput("en")
	down := nl.AddInput("down")
	clr := nl.AddInput("clr")
	ag := BuildAddressGen(nl, 3, en, down, clr)
	nl.AddOutput("last", ag.Last)
	sim, err := gatesim.New(nl)
	if err != nil {
		t.Fatal(err)
	}

	// Up and down sweeps over the full 8-address space (the
	// XOR-complement scheme makes both start correctly with no reload).
	for _, down := range []bool{false, true} {
		sim.SetByName("en", true)
		sim.SetByName("down", down)
		sim.SetByName("clr", true)
		sim.Step() // synchronous clear restarts the sweep
		sim.SetByName("clr", false)
		beh := NewAddressGenerator(8)
		beh.Reset(down)
		for i := 0; i < 20; i++ {
			sim.Eval()
			if got := int(sim.GetBus(ag.Q)); got != beh.Addr() {
				t.Fatalf("down=%v step %d: hw %d, behavioural %d", down, i, got, beh.Addr())
			}
			if got := sim.Get(ag.Last); got != beh.Last() {
				t.Fatalf("down=%v step %d: hw last %v, behavioural %v", down, i, got, beh.Last())
			}
			sim.Step()
			beh.Step()
		}
	}
}

func TestBuildDataGenMatchesBehaviour(t *testing.T) {
	const width = 8
	nl := netlist.New("datagen")
	step := nl.AddInput("step")
	clr := nl.AddInput("clr")
	invert := nl.AddInput("invert")
	dg := BuildDataGen(nl, width, step, clr, invert)
	sim, err := gatesim.New(nl)
	if err != nil {
		t.Fatal(err)
	}

	beh := NewDataGenerator(width)
	sim.SetByName("clr", false)
	for cycle := 0; cycle < 10; cycle++ {
		for _, inv := range []bool{false, true} {
			sim.SetByName("invert", inv)
			sim.SetByName("step", false)
			sim.Eval()
			if got := sim.GetBus(dg.Pattern); got != beh.Pattern(inv) {
				t.Fatalf("cycle %d inv %v: hw %x, behavioural %x", cycle, inv, got, beh.Pattern(inv))
			}
		}
		if got := sim.Get(dg.Last); got != beh.Last() {
			t.Fatalf("cycle %d: hw last %v, behavioural %v", cycle, sim.Get(dg.Last), beh.Last())
		}
		sim.SetByName("step", true)
		sim.Step()
		beh.Step()
	}
}

func TestBuildComparator(t *testing.T) {
	nl := netlist.New("cmp")
	read := []netlist.NetID{nl.AddInput("r0"), nl.AddInput("r1")}
	exp := []netlist.NetID{nl.AddInput("e0"), nl.AddInput("e1")}
	en := nl.AddInput("en")
	mm := BuildComparator(nl, read, exp, en)
	nl.AddOutput("mismatch", mm)
	sim, err := gatesim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	for r := uint64(0); r < 4; r++ {
		for e := uint64(0); e < 4; e++ {
			sim.SetBus(read, r)
			sim.SetBus(exp, e)
			sim.SetByName("en", true)
			sim.Eval()
			if got := sim.Get(mm); got != (r != e) {
				t.Errorf("cmp(%d,%d) = %v", r, e, got)
			}
			sim.SetByName("en", false)
			sim.Eval()
			if sim.Get(mm) {
				t.Error("mismatch asserted with compare disabled")
			}
		}
	}
}

func TestBuildPortCounter(t *testing.T) {
	nl := netlist.New("port")
	step := nl.AddInput("step")
	clr := nl.AddInput("clr")
	q, last := BuildPortCounter(nl, 3, step, clr)
	nl.AddOutput("last", last)
	sim, err := gatesim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetByName("step", true)
	sim.SetByName("clr", false)
	for i := 0; i < 3; i++ {
		if got := int(sim.GetBus(q)); got != i {
			t.Fatalf("port = %d, want %d", got, i)
		}
		if got := sim.Get(last); got != (i == 2) {
			t.Fatalf("port %d: last = %v", i, got)
		}
		sim.Step()
	}
	// Clear restarts.
	sim.SetByName("clr", true)
	sim.Step()
	if got := int(sim.GetBus(q)); got != 0 {
		t.Errorf("after clear: port %d", got)
	}
}

func TestBuildMISRMatchesBehaviour(t *testing.T) {
	nl := netlist.New("misr")
	data := make([]netlist.NetID, 16)
	for i := range data {
		data[i] = nl.AddInput("d" + string(rune('a'+i)))
	}
	en := nl.AddInput("en")
	q := BuildMISR(nl, data, en)
	sim, err := gatesim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	var beh MISR
	stream := []uint64{0x1234, 0xFFFF, 0x0000, 0xA5A5, 0x8001, 0x7FFE}
	sim.SetByName("en", true)
	for _, d := range stream {
		sim.SetBus(data, d)
		sim.Step()
		beh.Shift(d)
		if got := uint16(sim.GetBus(q)); got != beh.Signature() {
			t.Fatalf("after %04x: hw %04x, behavioural %04x", d, got, beh.Signature())
		}
	}
	// Disabled MISR holds.
	sim.SetByName("en", false)
	before := sim.GetBus(q)
	sim.SetBus(data, 0xDEAD)
	sim.StepN(3)
	if sim.GetBus(q) != before {
		t.Error("disabled MISR advanced")
	}
}

func TestDatapathAreaIsPositive(t *testing.T) {
	nl := netlist.New("dp")
	en := nl.AddInput("en")
	ag := BuildAddressGen(nl, 10, en, nl.AddInput("down"), nl.AddInput("clr"))
	dg := BuildDataGen(nl, 8, nl.AddInput("bgstep"), nl.AddInput("bgclr"), nl.AddInput("inv"))
	read := make([]netlist.NetID, 8)
	for i := range read {
		read[i] = nl.AddInput("rd" + string(rune('0'+i)))
	}
	mm := BuildComparator(nl, read, dg.Pattern, nl.AddInput("cmpen"))
	nl.AddOutput("mismatch", mm)
	nl.AddOutput("lastaddr", ag.Last)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	s := nl.StatsFor(&netlist.CMOS5SLike)
	if s.FlipFlops < 12 { // 10 addr + 2 bg
		t.Errorf("datapath FFs = %d", s.FlipFlops)
	}
	if s.AreaUm2 <= 0 || s.GE <= 0 {
		t.Errorf("degenerate stats: %v", s)
	}
}
