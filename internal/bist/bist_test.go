package bist

import (
	"testing"

	"repro/internal/march"
)

func TestAddressGeneratorUpSweep(t *testing.T) {
	g := NewAddressGenerator(4)
	g.Reset(false)
	want := []int{0, 1, 2, 3}
	for i, w := range want {
		if g.Addr() != w {
			t.Fatalf("step %d: addr %d, want %d", i, g.Addr(), w)
		}
		if g.Last() != (i == 3) {
			t.Fatalf("step %d: last = %v", i, g.Last())
		}
		g.Step()
	}
	// Wraps back to the sweep start.
	if g.Addr() != 0 {
		t.Errorf("after wrap: %d", g.Addr())
	}
}

func TestAddressGeneratorDownSweep(t *testing.T) {
	g := NewAddressGenerator(4)
	g.Reset(true)
	want := []int{3, 2, 1, 0}
	for i, w := range want {
		if g.Addr() != w {
			t.Fatalf("step %d: addr %d, want %d", i, g.Addr(), w)
		}
		if g.Last() != (i == 3) {
			t.Fatalf("step %d: last = %v", i, g.Last())
		}
		g.Step()
	}
	if g.Addr() != 3 {
		t.Errorf("after wrap: %d", g.Addr())
	}
}

func TestAddressGeneratorNonPow2(t *testing.T) {
	g := NewAddressGenerator(5)
	g.Reset(false)
	n := 0
	for !g.Last() {
		g.Step()
		n++
		if n > 10 {
			t.Fatal("sweep never terminates")
		}
	}
	if n != 4 {
		t.Errorf("5-address up sweep took %d steps to last, want 4", n)
	}
}

func TestDataGeneratorPatterns(t *testing.T) {
	g := NewDataGenerator(8)
	if g.Count() != 4 {
		t.Fatalf("8-bit backgrounds = %d, want 4", g.Count())
	}
	if g.Pattern(false) != 0x00 || g.Pattern(true) != 0xFF {
		t.Errorf("solid background: %x / %x", g.Pattern(false), g.Pattern(true))
	}
	g.Step()
	if g.Pattern(false) != 0xAA || g.Pattern(true) != 0x55 {
		t.Errorf("checkerboard: %x / %x", g.Pattern(false), g.Pattern(true))
	}
	g.Step()
	g.Step()
	if !g.Last() {
		t.Error("last background not flagged")
	}
	g.Step()
	if g.Background() != 0 {
		t.Error("background did not wrap")
	}
}

func TestDataGeneratorBitOriented(t *testing.T) {
	g := NewDataGenerator(1)
	if g.Count() != 1 || !g.Last() {
		t.Errorf("bit-oriented generator: count %d last %v", g.Count(), g.Last())
	}
	if g.Pattern(false) != 0 || g.Pattern(true) != 1 {
		t.Errorf("patterns %d/%d", g.Pattern(false), g.Pattern(true))
	}
}

func TestPortSelector(t *testing.T) {
	s := NewPortSelector(3)
	seq := []int{0, 1, 2, 0}
	for i, w := range seq {
		if s.Port() != w {
			t.Fatalf("step %d: port %d, want %d", i, s.Port(), w)
		}
		if s.Last() != (w == 2) {
			t.Fatalf("step %d: last = %v", i, s.Last())
		}
		s.Step()
	}
}

func TestResponseAnalyzer(t *testing.T) {
	r := NewResponseAnalyzer(2)
	pos := march.Fail{Addr: 7}
	if !r.Compare(1, 1, pos) {
		t.Error("match reported as mismatch")
	}
	if r.Compare(0, 1, pos) {
		t.Error("mismatch reported as match")
	}
	r.Compare(0, 1, pos)
	r.Compare(0, 1, pos) // beyond cap
	if len(r.Fails()) != 2 {
		t.Errorf("fails = %d, want capped 2", len(r.Fails()))
	}
	if r.Pass() {
		t.Error("Pass() with fails")
	}
	if r.Reads() != 4 {
		t.Errorf("reads = %d, want 4", r.Reads())
	}
	if r.Fails()[0].Addr != 7 || r.Fails()[0].Expected != 1 || r.Fails()[0].Got != 0 {
		t.Errorf("fail record = %+v", r.Fails()[0])
	}
	r.Reset()
	if !r.Pass() || r.Reads() != 0 || r.Signature() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestMISRDiscriminates(t *testing.T) {
	var a, b MISR
	stream := []uint64{1, 0, 1, 1, 0, 1, 0, 0, 1}
	for _, d := range stream {
		a.Shift(d)
		b.Shift(d)
	}
	if a.Signature() != b.Signature() {
		t.Fatal("identical streams give different signatures")
	}
	b.Shift(1)
	a.Shift(0)
	if a.Signature() == b.Signature() {
		t.Error("diverging streams give identical signatures (16-bit aliasing this early is a bug)")
	}
}

func TestMISRSingleBitError(t *testing.T) {
	// A single flipped bit anywhere in a 100-word stream changes the
	// signature (linearity of the MISR: error signature is the error
	// polynomial's remainder, non-zero for a single bit).
	base := make([]uint64, 100)
	for i := range base {
		base[i] = uint64(i * 2654435761)
	}
	var ref MISR
	for _, d := range base {
		ref.Shift(d)
	}
	for flip := 0; flip < 100; flip += 7 {
		var m MISR
		for i, d := range base {
			if i == flip {
				d ^= 1
			}
			m.Shift(d)
		}
		if m.Signature() == ref.Signature() {
			t.Errorf("single-bit error at word %d aliased", flip)
		}
	}
}
