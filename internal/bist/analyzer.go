package bist

import "repro/internal/march"

// MISR is a multiple-input signature register: a 16-bit internal-XOR
// LFSR (CRC-16-CCITT polynomial) that compacts the read-data stream into
// a signature. It gives the BIST unit a compact pass/fail indication
// when the full fail log is not observable.
type MISR struct {
	state uint16
}

// misrPoly is x^16 + x^12 + x^5 + 1.
const misrPoly = 0x1021

// Reset clears the signature.
func (m *MISR) Reset() { m.state = 0 }

// Shift compacts one data word (low 16 bits contribute).
func (m *MISR) Shift(data uint64) {
	m.state = m.state<<1 ^ uint16(data) ^ maskIfMSB(m.state)
}

func maskIfMSB(s uint16) uint16 {
	if s&0x8000 != 0 {
		return misrPoly
	}
	return 0
}

// Signature returns the current signature.
func (m *MISR) Signature() uint16 { return m.state }

// ResponseAnalyzer compares read data against the expected pattern,
// accumulates a fail log and a MISR signature, and implements the
// comparator-polarity XOR of the paper's architectures.
type ResponseAnalyzer struct {
	fails    []march.Fail
	maxFails int
	misr     MISR
	reads    int
}

// NewResponseAnalyzer returns an analyser keeping at most maxFails fail
// records (0 = unlimited).
func NewResponseAnalyzer(maxFails int) *ResponseAnalyzer {
	return &ResponseAnalyzer{maxFails: maxFails}
}

// Reset clears the fail log, signature and counters.
func (r *ResponseAnalyzer) Reset() {
	r.fails = nil
	r.misr.Reset()
	r.reads = 0
}

// Compare checks one read against its expected value and logs a fail
// (attributed with the given position) on miscompare. It returns true
// when the read matched.
func (r *ResponseAnalyzer) Compare(got, expected uint64, pos march.Fail) bool {
	r.misr.Shift(got)
	r.reads++
	if got == expected {
		return true
	}
	if r.maxFails == 0 || len(r.fails) < r.maxFails {
		pos.Got = got
		pos.Expected = expected
		r.fails = append(r.fails, pos)
	}
	return false
}

// Fails returns the accumulated fail records.
func (r *ResponseAnalyzer) Fails() []march.Fail { return r.fails }

// Pass reports whether no miscompare occurred.
func (r *ResponseAnalyzer) Pass() bool { return len(r.fails) == 0 }

// Reads returns the number of comparisons performed.
func (r *ResponseAnalyzer) Reads() int { return r.reads }

// Signature returns the MISR signature of the read stream.
func (r *ResponseAnalyzer) Signature() uint16 { return r.misr.Signature() }
