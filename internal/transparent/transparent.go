// Package transparent implements transparent memory BIST (Nicolaidis,
// ITC 1992) — the on-line testing application the paper's conclusion
// cites as the payoff of programmable BIST: because the microcode
// controller can be reloaded in the field, the same hardware that runs
// March tests at production can run content-preserving transparent
// tests periodically in the system.
//
// A transparent march test re-expresses every operation relative to the
// memory's current content c: "0" means c, "1" means c̄. The
// initialisation element is dropped. In the signature-prediction phase
// the test's reads execute with writes suppressed, each read value
// XORed with its relative polarity before entering the MISR — which
// predicts exactly the read stream of the test phase. In the test phase
// writes derive their data from the last value read at the cell (a
// read-modify-write), so the hardware needs only a word-wide data
// register, no reference data and no comparator. The two signatures
// disagree exactly when a fault disturbed the test-phase read stream.
package transparent

import (
	"fmt"
	"strings"

	"repro/internal/bist"
	"repro/internal/march"
	"repro/internal/memory"
)

// Test is a transparent march test: the embedded elements' data
// polarities are relative to the initial cell content ("0" = c,
// "1" = c̄).
type Test struct {
	Name string
	// Elements of the transparent test, polarity-relative. Every write
	// is preceded by a read in the same element (the read-modify-write
	// constraint of the transparent implementation).
	Elements []march.Element
	// RestoreAppended is true when a trailing read+write-back element
	// had to be added because the source algorithm would otherwise
	// leave the memory complemented.
	RestoreAppended bool
}

// Transform derives the transparent version of a march algorithm:
// leading write-only (initialisation) elements are removed, the rest is
// reinterpreted content-relative, and a restore element ⇕(rc̄,wc) is
// appended if the algorithm ends with cells complemented. Algorithms
// with a non-leading write-only element cannot be made transparent
// (their writes have no same-element read to derive data from).
func Transform(a march.Algorithm) (*Test, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	t := &Test{Name: a.Name + " (transparent)"}

	start := 0
	for start < len(a.Elements) && writeOnly(a.Elements[start]) {
		start++
	}
	if start == len(a.Elements) {
		return nil, fmt.Errorf("transparent: %s has only initialisation writes", a.Name)
	}
	if start == 0 {
		return nil, fmt.Errorf("transparent: %s reads before any state is established", a.Name)
	}
	for ei, e := range a.Elements[start:] {
		if err := checkReadBeforeWrite(e); err != nil {
			return nil, fmt.Errorf("transparent: %s element %d: %w", a.Name, start+ei, err)
		}
		t.Elements = append(t.Elements, e)
	}

	// Relative state after the test (Validate guarantees consistency).
	state := false
	for _, e := range t.Elements {
		for _, op := range e.Ops {
			if op.Kind == march.Write {
				state = op.Data
			}
		}
	}
	if state {
		t.Elements = append(t.Elements, march.Element{
			Order: march.Any,
			Ops:   []march.Op{march.R(true), march.W(false)},
		})
		t.RestoreAppended = true
	}
	return t, nil
}

func writeOnly(e march.Element) bool {
	for _, op := range e.Ops {
		if op.Kind != march.Write {
			return false
		}
	}
	return true
}

func checkReadBeforeWrite(e march.Element) error {
	seenRead := false
	for _, op := range e.Ops {
		switch op.Kind {
		case march.Read:
			seenRead = true
		case march.Write:
			if !seenRead {
				return fmt.Errorf("write with no preceding read in %v", e)
			}
		}
	}
	return nil
}

// String renders the test in content-relative notation, e.g.
// "{⇑(rc,wc̄); ⇑(rc̄,wc); ...}".
func (t *Test) String() string {
	var parts []string
	for _, e := range t.Elements {
		var ops []string
		for _, op := range e.Ops {
			k := "r"
			if op.Kind == march.Write {
				k = "w"
			}
			d := "c"
			if op.Data {
				d = "c̄"
			}
			ops = append(ops, k+d)
		}
		s := ""
		if e.PauseBefore {
			s = "Del "
		}
		parts = append(parts, s+e.Order.String()+"("+strings.Join(ops, ",")+")")
	}
	return "{" + strings.Join(parts, "; ") + "}"
}

// OpCount returns test-phase operations per cell; the prediction phase
// additionally performs every read once.
func (t *Test) OpCount() int {
	n := 0
	for _, e := range t.Elements {
		n += len(e.Ops)
	}
	return n
}

// Result is the outcome of one transparent test run.
type Result struct {
	// SignaturePredicted and SignatureObserved are the phase-1 and
	// phase-2 MISR signatures; the test fails when they differ.
	SignaturePredicted uint16
	SignatureObserved  uint16
	// Reads and Writes count test-phase operations; PredictionReads
	// counts phase-1 reads.
	Reads, Writes   int
	PredictionReads int
	// ContentPreserved reports whether the memory content after the
	// test equals the content before it (harness check; the BIST
	// hardware itself never stores the content).
	ContentPreserved bool
}

// Detected reports whether the signatures disagree.
func (r *Result) Detected() bool {
	return r.SignaturePredicted != r.SignatureObserved
}

// Run executes the transparent test through one port.
func (t *Test) Run(mem memory.Memory, port int) (*Result, error) {
	if port < 0 || port >= mem.Ports() {
		return nil, fmt.Errorf("transparent: port %d out of range", port)
	}
	n := mem.Size()
	mask := ^uint64(0)
	if mem.Width() < 64 {
		mask = uint64(1)<<uint(mem.Width()) - 1
	}
	pol := func(q bool) uint64 {
		if q {
			return mask
		}
		return 0
	}
	res := &Result{}

	// Harness snapshot for the preservation check only.
	before := make([]uint64, n)
	for a := 0; a < n; a++ {
		before[a] = mem.Read(port, a)
	}

	// Phase 1 — signature prediction: reads only, polarity-corrected.
	// The memory content is untouched, so a read with relative polarity
	// q must deliver c; XORing q in predicts the test-phase value c⊕q.
	var pred bist.MISR
	t.sweep(n, func(addr int, op march.Op) {
		if op.Kind != march.Read {
			return
		}
		v := mem.Read(port, addr) ^ pol(op.Data)
		pred.Shift(v & mask)
		res.PredictionReads++
	}, func() { mem.Pause() })

	// Phase 2 — the test: reads feed the MISR raw; each write derives
	// its data from the last value read at this cell in this element
	// visit (read-modify-write with a single word register).
	var obs bist.MISR
	t.sweep2(n, func(addr int, ops []march.Op) {
		var dataReg uint64
		var lastReadPol bool
		for _, op := range ops {
			if op.Kind == march.Read {
				dataReg = mem.Read(port, addr)
				lastReadPol = op.Data
				obs.Shift(dataReg)
				res.Reads++
			} else {
				v := dataReg ^ pol(lastReadPol != op.Data)
				mem.Write(port, addr, v&mask)
				res.Writes++
			}
		}
	}, func() { mem.Pause() })

	res.SignaturePredicted = pred.Signature()
	res.SignatureObserved = obs.Signature()

	res.ContentPreserved = true
	for a := 0; a < n; a++ {
		if mem.Read(port, a) != before[a] {
			res.ContentPreserved = false
			break
		}
	}
	return res, nil
}

// sweep walks elements op by op.
func (t *Test) sweep(n int, visit func(addr int, op march.Op), pause func()) {
	t.sweep2(n, func(addr int, ops []march.Op) {
		for _, op := range ops {
			visit(addr, op)
		}
	}, pause)
}

// sweep2 walks elements cell visit by cell visit.
func (t *Test) sweep2(n int, visit func(addr int, ops []march.Op), pause func()) {
	for _, e := range t.Elements {
		if e.PauseBefore && pause != nil {
			pause()
		}
		for k := 0; k < n; k++ {
			addr := k
			if e.Order == march.Down {
				addr = n - 1 - k
			}
			visit(addr, e.Ops)
		}
	}
}
