package transparent

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/march"
	"repro/internal/memory"
)

func TestTransformMarchC(t *testing.T) {
	tr, err := Transform(march.MarchC())
	if err != nil {
		t.Fatal(err)
	}
	// Initialisation element dropped: 5 elements remain; March C ends
	// at relative state 0, so no restore element.
	if len(tr.Elements) != 5 {
		t.Fatalf("transparent March C has %d elements, want 5: %s", len(tr.Elements), tr)
	}
	if tr.RestoreAppended {
		t.Error("March C needed a restore element")
	}
	want := "{⇑(rc,wc̄); ⇑(rc̄,wc); ⇓(rc,wc̄); ⇓(rc̄,wc); ⇕(rc)}"
	if got := tr.String(); got != want {
		t.Errorf("notation = %s, want %s", got, want)
	}
}

func TestTransformErrors(t *testing.T) {
	onlyInit := march.Algorithm{Name: "init", Elements: []march.Element{
		{Order: march.Any, Ops: []march.Op{march.W(false)}},
	}}
	if _, err := Transform(onlyInit); err == nil {
		t.Error("write-only algorithm transformed")
	}
	// A mid-algorithm write-only element has no read to derive data
	// from.
	midWrite := march.MustParse("midw", "b(w0); u(r0,w1); b(w0); u(r0)")
	if _, err := Transform(midWrite); err == nil {
		t.Error("mid-algorithm write-only element transformed")
	}
}

func TestContentPreservedOnFaultFreeMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, algf := range []func() march.Algorithm{march.MarchC, march.MarchA, march.MarchY, march.MarchCPlus, march.MATSPlus} {
		alg := algf()
		tr, err := Transform(alg)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name, err)
		}
		for trial := 0; trial < 10; trial++ {
			mem := memory.NewSRAM(32, 8, 1)
			want := make([]uint64, 32)
			for a := range want {
				want[a] = rng.Uint64() & 0xFF
				mem.Write(0, a, want[a])
			}
			res, err := tr.Run(mem, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Detected() {
				t.Fatalf("%s: false positive on fault-free memory (pred %04x obs %04x)",
					alg.Name, res.SignaturePredicted, res.SignatureObserved)
			}
			if !res.ContentPreserved {
				t.Fatalf("%s: content not preserved", alg.Name)
			}
			for a := range want {
				if got := mem.Read(0, a); got != want[a] {
					t.Fatalf("%s: word %d = %x, want %x", alg.Name, a, got, want[a])
				}
			}
		}
	}
}

func TestRestoreAppendedWhenComplemented(t *testing.T) {
	// An algorithm ending with cells complemented.
	alg := march.MustParse("inv-final", "b(w0); u(r0,w1); b(r1)")
	tr, err := Transform(alg)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.RestoreAppended {
		t.Fatal("restore element not appended")
	}
	mem := memory.NewSRAM(16, 4, 1)
	for a := 0; a < 16; a++ {
		mem.Write(0, a, uint64(a))
	}
	res, err := tr.Run(mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ContentPreserved || res.Detected() {
		t.Errorf("restore run: preserved=%v detected=%v", res.ContentPreserved, res.Detected())
	}
}

// transparentDetects runs the transparent March variant against a fault
// and reports detection.
func transparentDetects(t *testing.T, alg march.Algorithm, content []uint64, f faults.Fault) bool {
	t.Helper()
	tr, err := Transform(alg)
	if err != nil {
		t.Fatal(err)
	}
	mem := faults.NewInjected(16, 1, 1, f)
	for a, v := range content {
		mem.Write(0, a, v)
	}
	res, err := tr.Run(mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res.Detected()
}

func TestDetectsStuckAtAnyContent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		content := make([]uint64, 16)
		for a := range content {
			content[a] = uint64(rng.Intn(2))
		}
		for _, v := range []bool{false, true} {
			f := faults.Fault{Kind: faults.SA, Cell: 6, Value: v, Port: faults.AnyPort}
			if !transparentDetects(t, march.MarchC(), content, f) {
				t.Errorf("trial %d: transparent March C missed SA%v with content %v", trial, v, content)
			}
		}
	}
}

func TestDetectsTransitionAndCoupling(t *testing.T) {
	content := make([]uint64, 16) // all zero
	cases := []faults.Fault{
		{Kind: faults.TF, Cell: 3, Value: true, Port: faults.AnyPort},
		{Kind: faults.TF, Cell: 3, Value: false, Port: faults.AnyPort},
		{Kind: faults.CFin, Aggressor: 2, Cell: 9, AggVal: true, Port: faults.AnyPort},
		{Kind: faults.CFid, Aggressor: 9, Cell: 2, AggVal: false, Value: true, Port: faults.AnyPort},
		{Kind: faults.AFMap, Addr: 4, AggAddr: 5, Port: faults.AnyPort},
	}
	for _, f := range cases {
		if !transparentDetects(t, march.MarchC(), content, f) {
			t.Errorf("transparent March C missed %v", f)
		}
	}
}

func TestDetectsRetentionWithPlusVariant(t *testing.T) {
	content := make([]uint64, 16)
	for _, v := range []bool{false, true} {
		f := faults.Fault{Kind: faults.DRF, Cell: 8, Value: v, Port: faults.AnyPort}
		if !transparentDetects(t, march.MarchCPlus(), content, f) {
			t.Errorf("transparent March C+ missed DRF%v", v)
		}
		if transparentDetects(t, march.MarchC(), content, f) {
			t.Errorf("transparent March C (no pause) detected DRF%v; model broken", v)
		}
	}
}

// TestCoverageCloseToNonTransparent quantifies the classical result
// that transparent BIST loses little coverage versus the original
// march test.
func TestCoverageCloseToNonTransparent(t *testing.T) {
	tr, err := Transform(march.MarchC())
	if err != nil {
		t.Fatal(err)
	}
	universe := faults.Universe(16, 1, faults.UniverseOpts{})
	detected, total := 0, 0
	refDetected := 0
	for _, f := range universe {
		if f.Kind == faults.DRF || f.Kind == faults.RDF {
			continue // out of March C's reach in either form
		}
		total++

		mem := faults.NewInjected(16, 1, 1, f)
		res, err := tr.Run(mem, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected() {
			detected++
		}

		mem2 := faults.NewInjected(16, 1, 1, f)
		ref, err := march.Run(march.MarchC(), mem2, march.RunOpts{MaxFails: 1, SinglePort: true, SingleBackground: true})
		if err != nil {
			t.Fatal(err)
		}
		if ref.Detected() {
			refDetected++
		}
	}
	tCov := float64(detected) / float64(total)
	rCov := float64(refDetected) / float64(total)
	t.Logf("transparent March C coverage %.1f%%, standard %.1f%% (%d faults)", tCov*100, rCov*100, total)
	if tCov < rCov-0.10 {
		t.Errorf("transparent coverage %.1f%% more than 10 points below standard %.1f%%", tCov*100, rCov*100)
	}
}

func TestOpCountAndNotation(t *testing.T) {
	tr, err := Transform(march.MarchA())
	if err != nil {
		t.Fatal(err)
	}
	// March A is 15N; dropping the 1-op initialisation leaves 14 ops.
	if got := tr.OpCount(); got != 14 {
		t.Errorf("OpCount = %d, want 14", got)
	}
	if !strings.Contains(tr.String(), "wc̄") {
		t.Errorf("notation missing relative polarity: %s", tr)
	}
}

func TestRunRejectsBadPort(t *testing.T) {
	tr, _ := Transform(march.MarchC())
	if _, err := tr.Run(memory.NewSRAM(8, 1, 1), 2); err == nil {
		t.Error("bad port accepted")
	}
}
