// Package vettest is the golden-file harness for the mbistvet
// analyzer suite, mirroring the x/tools analysistest convention on the
// stdlib-only internal/vet/analysis substrate.
//
// A test package lives under testdata/src/<name>/ next to the calling
// test. Its imports resolve testdata-first: an import path with a
// directory under testdata/src is type-checked from that source
// (letting tests stub repo packages like obs or gatesim with
// two-line doubles), and anything else resolves against the real
// toolchain's export data via `go list -export`.
//
// Expected findings are written in the source as trailing comments:
//
//	reg.Counter(fmt.Sprintf("x.%d", i)) // want "built at the lookup site"
//
// The string is a regular expression matched against analyzer
// diagnostics reported on that line. Every want must be matched by a
// diagnostic and every diagnostic by a want; either direction failing
// fails the test, so goldens pin both the flagged and the accepted
// cases.
package vettest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/vet/analysis"
)

// Run loads testdata/src/<pkg> (relative to the caller's directory),
// runs the analyzer over it and diffs the findings against the
// source's want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	ld := newLoader(root)
	u, err := ld.load(pkg)
	if err != nil {
		t.Fatalf("load %s: %v", pkg, err)
	}
	diags, err := analysis.Run(u, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, pkg, err)
	}
	checkWants(t, u, diags)
}

// want is one expectation parsed from a `// want "re"` comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

func checkWants(t *testing.T, u *analysis.Unit, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					pos := u.Fset.Position(c.Pos())
					pat, err := unquoteWant(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.raw)
		}
	}
}

// unquoteWant resolves the \" and \\ escapes the want grammar allows
// inside its quoted pattern.
func unquoteWant(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			if i+1 >= len(s) {
				return "", fmt.Errorf("trailing backslash")
			}
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}

// loader type-checks testdata packages, resolving imports
// testdata-first and falling back to toolchain export data.
type loader struct {
	root    string
	fset    *token.FileSet
	pkgs    map[string]*types.Package // memoized local packages
	units   map[string]*analysis.Unit
	exports map[string]string // stdlib package path -> export file
	gc      types.Importer
}

func newLoader(root string) *loader {
	ld := &loader{
		root:  root,
		fset:  token.NewFileSet(),
		pkgs:  map[string]*types.Package{},
		units: map[string]*analysis.Unit{},
	}
	ld.gc = importer.ForCompiler(ld.fset, "gc", func(path string) (io.ReadCloser, error) {
		if ld.exports == nil {
			if err := ld.resolveStdlib(); err != nil {
				return nil, err
			}
		}
		file, ok := ld.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return ld
}

// Import implements types.Importer over the testdata-first scheme.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(ld.root, path); isDir(dir) {
		u, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return u.Pkg, nil
	}
	return ld.gc.Import(path)
}

func (ld *loader) load(path string) (*analysis.Unit, error) {
	if u, ok := ld.units[path]; ok {
		return u, nil
	}
	dir := filepath.Join(ld.root, path)
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer: ld,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	info := analysis.NewInfo()
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	u := &analysis.Unit{ImportPath: path, Fset: ld.fset, Files: files, Pkg: pkg, TypesInfo: info}
	ld.units[path] = u
	return u, nil
}

// resolveStdlib builds the export-data map for every non-testdata
// import reachable from the testdata tree, in one `go list` call.
func (ld *loader) resolveStdlib() error {
	std := map[string]bool{}
	err := filepath.WalkDir(ld.root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if !isDir(filepath.Join(ld.root, p)) {
				std[p] = true
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	ld.exports = map[string]string{}
	if len(std) == 0 {
		return nil
	}
	roots := make([]string, 0, len(std))
	for p := range std {
		roots = append(roots, p)
	}
	sort.Strings(roots)
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export"}, roots...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		if p.Export != "" {
			ld.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}
