package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves the package patterns in dir with the go tool and
// type-checks every matched (non-dependency) package against the
// compiler's export data, exactly as a `go vet` unit would see it.
// Test files are not loaded — the vet-driver path covers those.
func Load(dir string, patterns ...string) ([]*Unit, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{} // package path -> export data file
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			pkg := p
			targets = append(targets, &pkg)
		}
	}

	var units []*Unit
	for _, p := range targets {
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		u, err := CheckFiles(p.ImportPath, files, exports)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// CheckFiles parses and type-checks one compilation unit whose imports
// resolve through the export-data map (package path -> compiled export
// file, as produced by `go list -export` or a vet.cfg PackageFile
// table).
func CheckFiles(importPath string, files []string, exports map[string]string) (*Unit, error) {
	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	info := NewInfo()
	pkg, err := conf.Check(importPath, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &Unit{
		ImportPath: importPath,
		Fset:       fset,
		Files:      parsed,
		Pkg:        pkg,
		TypesInfo:  info,
	}, nil
}
