// Package analysis is the repo's self-contained static-analysis
// substrate: the Analyzer/Pass/Diagnostic shape of
// golang.org/x/tools/go/analysis rebuilt on the standard library only,
// so the mbistvet suite needs no module dependencies (the build
// environment is hermetic — see go.mod).
//
// An Analyzer inspects one type-checked package (a Pass) and reports
// Diagnostics. Drivers — cmd/mbistvet standalone mode, its `go vet
// -vettool` unit mode, and the vettest golden harness — construct
// Passes from different package sources but run the same analyzer
// code, so a finding means the same thing in CI, in an editor and in a
// golden test.
//
// # Exemption grammar
//
// A finding is suppressed by an in-source exemption comment on the
// reported line or the line immediately above it:
//
//	//mbist:exempt <analyzer> <reason>
//
// The analyzer name must match the reporting analyzer ("*" matches
// all) and the reason is mandatory — an exemption documents why the
// invariant does not apply, it is not a mute button. Exemptions are
// resolved centrally in Pass.Report so every analyzer honours them
// uniformly.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in findings, -only filters and
	// exemption comments. It must be a lowercase identifier.
	Name string
	// Doc is the one-paragraph description `mbistvet help` prints.
	Doc string
	// Run inspects the package and reports findings via pass.Report.
	// The returned error aborts the whole run (driver failure, not a
	// finding).
	Run func(pass *Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Pass holds one type-checked package and the reporting sink for one
// analyzer's run over it.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report receives non-exempted findings.
	report func(Diagnostic)

	// exemptions maps "file:line" to the exemption comments parsed from
	// that line. Built lazily from Files.
	exemptions map[string][]exemption
}

type exemption struct {
	analyzer string
	reason   string
}

// Reportf reports a finding at pos unless an exemption comment
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.exempted(position) {
		return
	}
	p.report(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. Several
// invariants (ctxflow's Background ban, obsname) are relaxed in tests.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

func key(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

func (p *Pass) exempted(pos token.Position) bool {
	if p.exemptions == nil {
		p.exemptions = map[string][]exemption{}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//mbist:exempt")
					if !ok {
						continue
					}
					fields := strings.Fields(text)
					if len(fields) < 2 {
						// An exemption without a reason is itself a
						// defect; leave it inert so the finding it
						// tried to hide still surfaces.
						continue
					}
					cp := p.Fset.Position(c.Pos())
					e := exemption{analyzer: fields[0], reason: strings.Join(fields[1:], " ")}
					// The comment covers its own line (trailing
					// comment) and the line below (comment-above
					// style).
					p.exemptions[key(cp.Filename, cp.Line)] = append(p.exemptions[key(cp.Filename, cp.Line)], e)
					p.exemptions[key(cp.Filename, cp.Line+1)] = append(p.exemptions[key(cp.Filename, cp.Line+1)], e)
				}
			}
		}
	}
	for _, e := range p.exemptions[key(pos.Filename, pos.Line)] {
		if e.analyzer == "*" || e.analyzer == p.Analyzer.Name {
			return true
		}
	}
	return false
}

// Unit is one loadable compilation unit: parsed, type-checked source
// ready to run analyzers over. Both the standalone loader (Load) and
// the vet-driver config path construct Units.
type Unit struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
}

// Run executes each analyzer over the unit and returns the collected
// findings sorted by position.
func Run(u *Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.TypesInfo,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, u.ImportPath, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
