package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/vet/analysis"
)

// ObsName enforces the internal/obs naming contract: instrument names
// are package-prefixed ("coverage.batches_replayed") and precomputed —
// the name an instrument lookup receives is never built at the lookup
// site. Per-call fmt.Sprintf or concatenation of a metric name
// allocates on every event even with metrics disabled (the PR 8
// artifact-cache bug class) and breaks the zero-alloc-when-disabled
// budget obs is built around.
//
// At every call to (*obs.Registry).Counter/Gauge/Span the name
// argument must be either a compile-time constant string of the form
// "<prefix>.<name>", or a plain reference (identifier, field, index)
// to a name computed once at construction time — the
// artifact.Cache.nHits pattern. Constructing expressions (calls,
// concatenation) at the lookup site are findings.
var ObsName = &analysis.Analyzer{
	Name: "obsname",
	Doc:  "obs instrument names must be precomputed, package-prefixed constants",
	Run:  runObsName,
}

func runObsName(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isObsLookup(pass, sel) {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				return true
			}
			arg := call.Args[0]
			tv := pass.TypesInfo.Types[arg]
			if tv.Value != nil {
				// Constant: must be package-prefixed.
				name := constant.StringVal(tv.Value)
				if !strings.Contains(name, ".") {
					pass.Reportf(arg.Pos(), "obs instrument name %q is not package-prefixed (want \"<pkg>.<name>\")", name)
				}
				return true
			}
			switch arg.(type) {
			case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
				// A reference to a precomputed name: allowed.
			default:
				pass.Reportf(arg.Pos(), "obs instrument name is built at the lookup site — precompute it once (constant or construction-time field)")
			}
			return true
		})
	}
	return nil
}

// isObsLookup reports whether sel names the Counter, Gauge or Span
// method of the obs Registry.
func isObsLookup(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Counter", "Gauge", "Span":
	default:
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Path() == "obs" || strings.HasSuffix(pkg.Path(), "/obs"))
}
