package analyzers_test

import (
	"testing"

	"repro/internal/vet/analyzers"
	"repro/internal/vet/vettest"
)

func TestHotPathAllocGolden(t *testing.T) {
	vettest.Run(t, analyzers.HotPathAlloc, "hotpathalloc")
}
