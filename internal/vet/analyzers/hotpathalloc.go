package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/vet/analysis"
)

// HotPathAlloc enforces the grading pipeline's steady-state allocation
// budget (BENCH_pr8.json pins BenchmarkGradeLane at 11 allocs/op, all
// of them setup): a function annotated
//
//	//mbist:hotpath
//
// in its doc comment is an inner loop of the grade/replay/settle
// machinery and may not contain allocating constructs. Flagged inside
// an annotated function:
//
//   - make/new and slice- or map-typed composite literals
//   - closures (func literals) and go statements
//   - defer inside a loop (deferred frames allocate per iteration)
//   - calls into package fmt and non-constant string concatenation
//   - append that grows anything but a caller-supplied buffer (the
//     first append argument must resolve to a parameter, the receiver
//     or one of their fields — the scratch-reuse pattern ReadLanes and
//     replayStream use)
//   - interface boxing: a non-pointer-shaped concrete value passed or
//     converted to an interface
//
// Two escapes keep the annotation honest rather than aspirational:
// allocation inside a panic(...) argument or inside a return statement
// is cold by construction (the replay is aborting) and is not flagged,
// and a deliberate exception carries //mbist:exempt hotpathalloc with
// a reason.
var HotPathAlloc = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "report allocating constructs inside //mbist:hotpath functions",
	Run:  runHotPathAlloc,
}

const hotpathMarker = "//mbist:hotpath"

func runHotPathAlloc(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasMarker(fn.Doc, hotpathMarker) {
				continue
			}
			params := paramObjects(pass, fn)
			w := &hotpathWalker{pass: pass, params: params}
			w.walk(fn.Body, 0)
		}
	}
	return nil
}

func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// paramObjects collects the declared objects of fn's parameters
// (including the receiver): the only things append may grow.
func paramObjects(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	objs := map[types.Object]bool{}
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					objs[obj] = true
				}
			}
		}
	}
	add(fn.Recv)
	add(fn.Type.Params)
	return objs
}

type hotpathWalker struct {
	pass   *analysis.Pass
	params map[types.Object]bool
}

// walk descends stmt-by-stmt; loopDepth tracks enclosing for/range
// statements for the defer rule.
func (w *hotpathWalker) walk(n ast.Node, loopDepth int) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			// Recurse manually so the loop body sees loopDepth+1.
			var body *ast.BlockStmt
			switch l := n.(type) {
			case *ast.ForStmt:
				if l.Init != nil {
					w.walk(l.Init, loopDepth)
				}
				if l.Cond != nil {
					w.walk(l.Cond, loopDepth)
				}
				if l.Post != nil {
					w.walk(l.Post, loopDepth)
				}
				body = l.Body
			case *ast.RangeStmt:
				if l.X != nil {
					w.walk(l.X, loopDepth)
				}
				body = l.Body
			}
			w.walk(body, loopDepth+1)
			return false
		case *ast.ReturnStmt:
			// Cold: the function is exiting (error construction lives
			// here by design).
			return false
		case *ast.DeferStmt:
			if loopDepth > 0 {
				w.pass.Reportf(n.Pos(), "defer inside a loop in a //mbist:hotpath function allocates per iteration")
			}
			return false
		case *ast.GoStmt:
			w.pass.Reportf(n.Pos(), "go statement in a //mbist:hotpath function allocates a goroutine")
			return false
		case *ast.FuncLit:
			w.pass.Reportf(n.Pos(), "closure in a //mbist:hotpath function allocates")
			return false
		case *ast.CompositeLit:
			if t := w.pass.TypesInfo.Types[n].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					w.pass.Reportf(n.Pos(), "%s literal in a //mbist:hotpath function allocates", kindName(t))
				}
			}
		case *ast.CallExpr:
			if isPanicCall(n) {
				// Cold: panic arguments may format freely.
				return false
			}
			w.checkCall(n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && w.isNonConstString(n) {
				w.pass.Reportf(n.Pos(), "string concatenation in a //mbist:hotpath function allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && w.isNonConstString(n.Lhs[0]) {
				w.pass.Reportf(n.Pos(), "string concatenation in a //mbist:hotpath function allocates")
			}
		}
		return true
	})
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}

func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (w *hotpathWalker) isNonConstString(e ast.Expr) bool {
	tv, ok := w.pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (w *hotpathWalker) checkCall(call *ast.CallExpr) {
	// Builtins: make, new, append.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if obj, isBuiltin := w.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch obj.Name() {
			case "make", "new":
				w.pass.Reportf(call.Pos(), "%s in a //mbist:hotpath function allocates", obj.Name())
			case "append":
				if len(call.Args) > 0 && !w.isParamBacked(call.Args[0]) {
					w.pass.Reportf(call.Pos(), "append grows a non-parameter buffer in a //mbist:hotpath function (thread a caller-supplied scratch slice)")
				}
			}
			return
		}
	}
	// Calls into package fmt.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := w.pass.TypesInfo.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			w.pass.Reportf(call.Pos(), "fmt.%s in a //mbist:hotpath function allocates", sel.Sel.Name)
			return
		}
	}
	// Interface boxing at the call site: a concrete, non-pointer-shaped
	// argument passed to an interface parameter.
	sig := w.callSignature(call)
	if sig == nil {
		// A conversion, not a call: T(x) with interface T boxes.
		if tv, ok := w.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			if types.IsInterface(tv.Type) && len(call.Args) == 1 && w.boxes(call.Args[0]) {
				w.pass.Reportf(call.Pos(), "conversion to interface in a //mbist:hotpath function boxes (allocates)")
			}
		}
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // passing a slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && w.boxes(arg) {
			w.pass.Reportf(arg.Pos(), "argument boxes into interface parameter in a //mbist:hotpath function (allocates)")
		}
	}
}

// isParamBacked reports whether e is (a slice or field of) a parameter
// or the receiver of the annotated function — a caller-owned buffer
// (ReadLanes' dst, LaneInjected's preallocated dirtyList) that append
// may grow without a steady-state allocation.
func (w *hotpathWalker) isParamBacked(e ast.Expr) bool {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return w.params[w.pass.TypesInfo.Uses[v]]
		case *ast.SliceExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		default:
			return false
		}
	}
}

// boxes reports whether passing e to an interface allocates: true for
// concrete values that are not pointer-shaped and not the nil constant.
func (w *hotpathWalker) boxes(e ast.Expr) bool {
	tv, ok := w.pass.TypesInfo.Types[e]
	if !ok || tv.IsNil() || tv.Type == nil {
		return false
	}
	t := tv.Type
	if types.IsInterface(t) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	return true
}

func (w *hotpathWalker) callSignature(call *ast.CallExpr) *types.Signature {
	tv, ok := w.pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}
