package analyzers_test

import (
	"testing"

	"repro/internal/vet/analyzers"
	"repro/internal/vet/vettest"
)

func TestStaticOnlyGolden(t *testing.T) {
	vettest.Run(t, analyzers.StaticOnly, "staticonly")
}

func TestStaticOnlyOnlyChecksLintPackage(t *testing.T) {
	vettest.Run(t, analyzers.StaticOnly, "notlint")
}
