package analyzers_test

import (
	"testing"

	"repro/internal/vet/analyzers"
	"repro/internal/vet/vettest"
)

func TestFingerprintGolden(t *testing.T) {
	vettest.Run(t, analyzers.Fingerprint, "fingerprint")
}
