// Package analyzers holds the mbistvet analyzer suite: the repo's
// cross-cutting invariants — the ones the compiler cannot see and
// earlier PRs caught by hand or at runtime — encoded as static
// analyses over type-checked packages.
//
// The catalog (see DESIGN.md "Go-level static analysis" for the full
// contract of each):
//
//   - hotpathalloc:  //mbist:hotpath functions must not allocate
//   - ctxflow:       context.Context is threaded, never invented
//   - obsname:       obs instrument names are precomputed, package-prefixed
//   - paniccontract: Validate-front-door packages panic only on contract
//   - fingerprint:   checkpoint fingerprints cover every workload knob
//   - staticonly:    internal/lint never simulates
//
// Every analyzer honours the //mbist:exempt suppression grammar (see
// internal/vet/analysis).
package analyzers

import "repro/internal/vet/analysis"

// All returns the full suite in stable (reporting) order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		HotPathAlloc,
		CtxFlow,
		ObsName,
		PanicContract,
		Fingerprint,
		StaticOnly,
	}
}

// ByName resolves a comma-separated -only list against the suite.
func ByName(names []string) ([]*analysis.Analyzer, bool) {
	byName := map[string]*analysis.Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, true
}
