package analyzers_test

import (
	"testing"

	"repro/internal/vet/analyzers"
	"repro/internal/vet/vettest"
)

func TestPanicContractGolden(t *testing.T) {
	vettest.Run(t, analyzers.PanicContract, "paniccontract")
}

func TestPanicContractRequiresValidateGate(t *testing.T) {
	vettest.Run(t, analyzers.PanicContract, "nopanicgate")
}
