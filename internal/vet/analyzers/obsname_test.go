package analyzers_test

import (
	"testing"

	"repro/internal/vet/analyzers"
	"repro/internal/vet/vettest"
)

func TestObsNameGolden(t *testing.T) {
	vettest.Run(t, analyzers.ObsName, "obsname")
}
