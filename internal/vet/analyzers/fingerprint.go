package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/vet/analysis"
)

// Fingerprint closes the checkpoint-compatibility loophole the -replay
// knob exposed: a new field on a workload-options struct silently
// changes what a run computes without changing the persisted
// fingerprint, so stale checkpoints and shard files resume under the
// new semantics (or, inverted, a cosmetic knob gratuitously invalidates
// them). Every field must therefore be an explicit decision.
//
// A struct annotated in its doc comment with
//
//	//mbist:fingerprint-source [FuncName]
//
// (FuncName defaults to Fingerprint) must have each field either
//   - referenced inside the package function/method FuncName — the
//     field is folded into the fingerprint (or, for resolver functions
//     like sweep.Spec.Workload, threaded into the fingerprinted
//     form), or
//   - annotated //mbist:fingerprint-exclude <why> in its doc or line
//     comment — the field provably cannot change verdicts.
//
// A field that is both referenced and annotated excluded is also a
// finding: the annotation is stale and lies to the next reader.
var Fingerprint = &analysis.Analyzer{
	Name: "fingerprint",
	Doc:  "workload-option fields must be folded into or excluded from the checkpoint fingerprint",
	Run:  runFingerprint,
}

const (
	fpSourceMarker  = "//mbist:fingerprint-source"
	fpExcludeMarker = "//mbist:fingerprint-exclude"
)

func runFingerprint(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				fnName, marked := fingerprintSource(doc)
				if !marked {
					continue
				}
				checkFingerprintStruct(pass, ts, st, fnName)
			}
		}
	}
	return nil
}

// fingerprintSource extracts the //mbist:fingerprint-source marker and
// its optional function name from a doc comment.
func fingerprintSource(doc *ast.CommentGroup) (fn string, ok bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text, found := strings.CutPrefix(strings.TrimSpace(c.Text), fpSourceMarker)
		if !found {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) > 0 {
			return fields[0], true
		}
		return "Fingerprint", true
	}
	return "", false
}

func checkFingerprintStruct(pass *analysis.Pass, ts *ast.TypeSpec, st *ast.StructType, fnName string) {
	obj := pass.TypesInfo.Defs[ts.Name]
	if obj == nil {
		return
	}
	structType, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	// The field objects, for matching selections in the source function.
	fieldObjs := map[types.Object]*ast.Field{}
	i := 0
	for _, field := range st.Fields.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // embedded
		}
		for j := 0; j < n; j++ {
			if i < structType.NumFields() {
				fieldObjs[structType.Field(i)] = field
			}
			i++
		}
	}

	fn := findFunc(pass, fnName)
	if fn == nil {
		pass.Reportf(ts.Pos(), "struct %s declares //mbist:fingerprint-source %s but the package has no function %s", ts.Name.Name, fnName, fnName)
		return
	}

	referenced := map[types.Object]bool{}
	ast.Inspect(fn, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		if _, mine := fieldObjs[s.Obj()]; mine {
			referenced[s.Obj()] = true
		}
		return true
	})

	for i := 0; i < structType.NumFields(); i++ {
		fobj := structType.Field(i)
		field := fieldObjs[fobj]
		if field == nil {
			continue
		}
		excluded := hasMarker(field.Doc, fpExcludeMarker) || hasMarker(field.Comment, fpExcludeMarker)
		switch {
		case referenced[fobj] && excluded:
			pass.Reportf(field.Pos(), "field %s.%s is annotated //mbist:fingerprint-exclude but %s references it — stale annotation", ts.Name.Name, fobj.Name(), fnName)
		case !referenced[fobj] && !excluded:
			pass.Reportf(field.Pos(), "field %s.%s is neither folded into %s nor annotated //mbist:fingerprint-exclude — a new knob must not silently bypass the checkpoint fingerprint", ts.Name.Name, fobj.Name(), fnName)
		}
	}
}

// findFunc returns the package-level function or method named name.
func findFunc(pass *analysis.Pass, name string) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Name.Name == name {
				return fn
			}
		}
	}
	return nil
}
