// Package gatesim is the golden-test stub of the banned simulation
// package: the staticonly analyzer matches banned imports on the last
// path element, so this two-line double trips it exactly like the real
// repro/internal/gatesim.
package gatesim

// Sim is a stand-in simulator.
type Sim struct{}

// Run executes the simulation.
func (s Sim) Run() {}

// RunContext executes the simulation under a context.
func (s Sim) RunContext() {}
