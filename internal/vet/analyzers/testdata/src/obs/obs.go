// Package obs is the golden-test double of repro/internal/obs: just
// enough surface for the obsname analyzer to recognise instrument
// lookups by method name and receiver type.
package obs

// Registry is the instrument registry double.
type Registry struct{}

// Counter returns the named counter.
func (r *Registry) Counter(name string) *Counter { return nil }

// Gauge returns the named gauge.
func (r *Registry) Gauge(name string) *Gauge { return nil }

// Span returns the named span.
func (r *Registry) Span(name string) *Span { return nil }

// Counter is a cumulative instrument.
type Counter struct{}

// Add increments the counter.
func (c *Counter) Add(n int64) {}

// Gauge is a last-value instrument.
type Gauge struct{}

// Set stores the value.
func (g *Gauge) Set(n int64) {}

// Span is a distribution instrument.
type Span struct{}
