// Package demo pins the ctxflow cmd/ exception: command packages are
// the stack roots allowed to mint root contexts and to loop without a
// threaded context.
package demo

import "context"

// Root mints the process context: allowed under cmd/.
func Root() context.Context {
	return context.Background()
}

// Serve loops over a channel without a context: allowed under cmd/.
func Serve(in chan int, handle func(int)) {
	for v := range in {
		handle(<-makeTick(v))
	}
}

func makeTick(v int) chan int {
	ch := make(chan int, 1)
	ch <- v
	return ch
}
