// Package hotpathalloc exercises the hotpathalloc analyzer: annotated
// functions may not allocate outside the documented cold paths.
package hotpathalloc

import "fmt"

type ring struct {
	buf  []int
	free []int32
}

type anyT = interface{}

func run() {}

func sink(v interface{}) {}

func variadic(vs ...interface{}) {}

// hot is the annotated kernel: every allocating construct below is a
// finding.
//
//mbist:hotpath
func hot(m *ring, dst []byte, pre []interface{}, n int, name string) []byte {
	x := make([]int, n) // want "make in a //mbist:hotpath function allocates"
	_ = x
	p := new(int) // want "new in a //mbist:hotpath function allocates"
	_ = p
	s := []int{1, 2} // want "slice literal in a //mbist:hotpath function allocates"
	_ = s
	mp := map[int]int{} // want "map literal in a //mbist:hotpath function allocates"
	_ = mp
	go run()       // want "go statement in a //mbist:hotpath function allocates a goroutine"
	f := func() {} // want "closure in a //mbist:hotpath function allocates"
	f()
	fmt.Println(n)    // want "fmt.Println in a //mbist:hotpath function allocates"
	msg := "x" + name // want "string concatenation in a //mbist:hotpath function allocates"
	_ = msg
	var local []byte
	local = append(local, 1) // want "append grows a non-parameter buffer"
	_ = local
	dst = append(dst, 1)       // caller-supplied scratch: allowed
	m.free = append(m.free, 2) // field of a parameter: allowed
	st := ring{}               // struct literal is stack-shaped: allowed
	_ = st
	for i := 0; i < n; i++ {
		defer run() // want "defer inside a loop in a //mbist:hotpath function allocates per iteration"
	}
	sink(n)          // want "argument boxes into interface parameter"
	variadic(n)      // want "argument boxes into interface parameter"
	variadic(pre...) // passing the slice through: allowed
	_ = anyT(n)      // want "conversion to interface in a //mbist:hotpath function boxes"
	sink(&n)         // pointer-shaped: allowed
	return dst
}

// coldPaths pins the two escapes: panic arguments and return
// statements may build errors freely.
//
//mbist:hotpath
func coldPaths(n int) error {
	if n < 0 {
		panic(fmt.Sprintf("hotpathalloc: bad %d", n))
	}
	return fmt.Errorf("n=%d", n)
}

// exempted pins the suppression mechanism: the annotated reason keeps
// the allocation quiet.
//
//mbist:hotpath
func exempted(n int) {
	buf := make([]int, n) //mbist:exempt hotpathalloc one-time warmup allocation, measured cold
	_ = buf
}

// unannotated functions allocate freely.
func unannotated(n int) {
	_ = make([]int, n)
}
