// Package fingerprint exercises the fingerprint analyzer: every field
// of a marked struct is either folded into the named source function
// or carries an explicit exclusion.
package fingerprint

// Options is the annotated struct under the default source name.
//
//mbist:fingerprint-source
type Options struct {
	Size  int
	Width int
	// Workers cannot change verdicts.
	//mbist:fingerprint-exclude throughput knob only
	Workers int
	Lanes   int // want "neither folded into Fingerprint nor annotated"
	//mbist:fingerprint-exclude stale by construction
	Depth int // want "annotated //mbist:fingerprint-exclude but Fingerprint references it"
}

// Fingerprint folds the workload identity.
func Fingerprint(o Options) string {
	_ = o.Size
	_ = o.Width
	_ = o.Depth
	return "v1"
}

// Req resolves through a named source function instead of the default.
//
//mbist:fingerprint-source Workload
type Req struct {
	Algs string
	//mbist:fingerprint-exclude presentation only
	Pretty bool
}

// Workload resolves Req.
func Workload(r Req) string { return r.Algs }

// Spec names a resolver that does not exist.
//
//mbist:fingerprint-source Resolve
type Spec struct { // want "no function Resolve"
	N int
}

// Plain structs without the marker are not checked.
type Plain struct {
	Whatever int
}
