// Package nopanicgate pins the analyzer's gating: a package with no
// exported Validate front door is outside the contract and may panic
// however it likes.
package nopanicgate

func check(n int) {
	if n < 0 {
		panic("anything goes here")
	}
}
