// Package ctxflow exercises the ctxflow analyzer: contexts flow in
// from the caller, blocking library loops must be cancellable.
package ctxflow

import (
	"context"
	"time"
)

func run(ctx context.Context) { _ = ctx }

// Grade invents a root context in library code (rule 1).
func Grade() {
	ctx := context.Background() // want "in library code — accept a context.Context"
	_ = ctx
}

func todo() {
	run(context.TODO()) // want "in library code — accept a context.Context"
}

// GradeCompat pins the exemption path for documented compat wrappers.
func GradeCompat() {
	//mbist:exempt ctxflow compatibility wrapper, pinned by the golden test
	run(context.Background())
}

// Process declares ctx and ignores it (rule 2).
func Process(ctx context.Context, n int) { // want "declares context parameter .ctx. but never uses it"
	_ = n
}

func used(ctx context.Context) { <-ctx.Done() }

// Pump copies between channels forever with no cancellation (rule 3).
func Pump(in, out chan int) {
	for v := range in {
		out <- v // want "blocks inside a loop but accepts no context.Context"
	}
}

// Poll busy-waits with no cancellation (rule 3).
func Poll(done func() bool) {
	for !done() {
		time.Sleep(time.Millisecond) // want "blocks inside a loop but accepts no context.Context"
	}
}

// PumpCtx is the cancellable version: accepted.
func PumpCtx(ctx context.Context, in, out chan int) {
	for v := range in {
		select {
		case out <- v:
		case <-ctx.Done():
			return
		}
	}
}

// pump is unexported: internal helpers inherit their caller's
// contract and are not flagged.
func pump(in, out chan int) {
	for v := range in {
		out <- v
	}
}

// Spawn returns a closure; the closure owns its own contract.
func Spawn(in chan int) func() {
	return func() {
		for range in {
		}
	}
}
