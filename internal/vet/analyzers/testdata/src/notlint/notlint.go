// Package notlint pins the staticonly gating: outside the lint
// package, simulation imports and Run calls are unrestricted.
package notlint

import "gatesim"

// Drive simulates; allowed anywhere but internal/lint.
func Drive() {
	var s gatesim.Sim
	s.Run()
}
