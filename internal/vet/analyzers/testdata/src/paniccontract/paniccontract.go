// Package paniccontract exercises the panic-contract analyzer: the
// exported Validate front door arms it, and every panic must then be
// attributable.
package paniccontract

import (
	"errors"
	"fmt"
)

// Validate is the error-returning front door that arms the analyzer
// for this package.
func Validate(n int) error {
	if n < 0 {
		return errors.New("paniccontract: negative")
	}
	return nil
}

func check(n int, err error) {
	if n < -1 {
		panic("paniccontract: negative size") // constant, prefixed: allowed
	}
	if n == 1 {
		panic(fmt.Sprintf("paniccontract: bad n %d", n)) // prefixed constant format: allowed
	}
	if err != nil {
		panic(err.Error()) // re-raising a validation error: allowed
	}
}

func violations(n int, err error) {
	if n == 2 {
		panic("negative size") // want "panic outside the paniccontract package contract"
	}
	if n == 3 {
		panic(fmt.Sprintf("bad n %d", n)) // want "panic outside the paniccontract package contract"
	}
	if n == 4 {
		panic(err) // want "panic outside the paniccontract package contract"
	}
	panic(n) // want "panic outside the paniccontract package contract"
}
