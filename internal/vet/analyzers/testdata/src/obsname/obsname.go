// Package obsname exercises the obsname analyzer: instrument names
// must be package-prefixed and precomputed, never built at the lookup
// site.
package obsname

import (
	"fmt"

	"obs"
)

var reg *obs.Registry

const (
	cGood = "pkg.requests"
	cBare = "requests"
)

// precomputed names in the construction-time-field style.
var (
	vName = "pkg.precomputed"
	table = [2]string{"pkg.worker.00", "pkg.worker.01"}
)

type holder struct{ name string }

func lookups(h holder, i int, dyn func(int) string) {
	reg.Counter("pkg.ok").Add(1)           // constant, prefixed: allowed
	reg.Counter(cGood).Add(1)              // named constant, prefixed: allowed
	reg.Counter("bare").Add(1)             // want "not package-prefixed"
	reg.Counter(cBare).Add(1)              // want "not package-prefixed"
	reg.Counter(vName).Add(1)              // identifier reference: allowed
	reg.Counter(h.name).Add(1)             // field reference: allowed
	reg.Gauge(table[i]).Set(2)             // index into a precomputed table: allowed
	_ = reg.Span(fmt.Sprintf("pkg.%d", i)) // want "built at the lookup site"
	reg.Counter("pkg." + dyn(i)).Add(1)    // want "built at the lookup site"
	reg.Counter(dyn(i)).Add(1)             // want "built at the lookup site"
}

func exempted(i int, dyn func(int) string) {
	reg.Counter(dyn(i)).Add(1) //mbist:exempt obsname migration shim, pinned by the golden test
}
