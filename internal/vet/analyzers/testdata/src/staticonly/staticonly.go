// Package lint is the golden double of internal/lint: the staticonly
// analyzer engages only on packages named lint.
package lint

import (
	"sort"

	"gatesim" // want "lint imports gatesim: the lint layer must stay static"
)

// Check is free to analyse statically (sorting is fine) but every
// executor call is a finding.
func Check(names []string) {
	sort.Strings(names)
	var s gatesim.Sim
	s.Run()        // want "lint calls Run: lint analyses artifacts, it does not execute them"
	s.RunContext() // want "lint calls RunContext: lint analyses artifacts, it does not execute them"
}
