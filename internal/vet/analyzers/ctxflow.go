package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/vet/analysis"
)

// CtxFlow enforces the PR 5 cancellation contract: long-running
// library code is cancellable because every blocking loop threads a
// context.Context handed down from the caller — contexts flow from
// cmd/ main loops inward and are never invented mid-stack. Three
// rules:
//
//  1. context.Background() and context.TODO() are banned outside cmd/
//     packages and _test.go files. Library compat wrappers (Grade,
//     GradeShard) and nil-context guards carry an explicit
//     //mbist:exempt ctxflow with the reason.
//  2. A declared context.Context parameter must be used — an ignored
//     ctx means the function looks cancellable but is not.
//  3. An exported library function that loops over work and blocks
//     inside the loop (channel operation, select, time.Sleep) must
//     accept a context.Context.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "enforce context threading through blocking library loops",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) error {
	isCmd := isCommandPackage(pass.Pkg.Path())
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ctxParams := contextParams(pass, fn)
			// Rule 2: unused context parameter.
			for name, obj := range ctxParams {
				if name == "_" {
					continue
				}
				if !usesObject(pass, fn.Body, obj) {
					pass.Reportf(fn.Pos(), "%s declares context parameter %q but never uses it — propagate it or drop it", fn.Name.Name, name)
				}
			}
			// Rule 3: exported blocking loop without a context.
			if fn.Name.IsExported() && !isCmd && len(ctxParams) == 0 && !pass.InTestFile(fn.Pos()) {
				if at, blocks := blockingLoop(fn.Body); blocks {
					pass.Reportf(at.Pos(), "%s blocks inside a loop but accepts no context.Context — long-running library loops must be cancellable", fn.Name.Name)
				}
			}
		}
		// Rule 1: invented contexts.
		if isCmd {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
				return true
			}
			if (sel.Sel.Name == "Background" || sel.Sel.Name == "TODO") && !pass.InTestFile(call.Pos()) {
				pass.Reportf(call.Pos(), "context.%s() in library code — accept a context.Context from the caller instead", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}

// isCommandPackage reports whether path is a main-package home (cmd/
// tree or examples): the stack roots allowed to mint root contexts.
func isCommandPackage(path string) bool {
	return strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/") ||
		strings.HasPrefix(path, "examples/") || strings.Contains(path, "/examples/")
}

// contextParams returns fn's context.Context parameters by name.
func contextParams(pass *analysis.Pass, fn *ast.FuncDecl) map[string]types.Object {
	out := map[string]types.Object{}
	if fn.Type.Params == nil {
		return out
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if named, ok := obj.Type().(*types.Named); ok {
				o := named.Obj()
				if o.Name() == "Context" && o.Pkg() != nil && o.Pkg().Path() == "context" {
					out[name.Name] = obj
				}
			}
		}
	}
	return out
}

func usesObject(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
			return false
		}
		return !used
	})
	return used
}

// blockingLoop reports the first blocking operation inside a for/range
// loop in body: a channel send/receive, a select, or time.Sleep.
func blockingLoop(body *ast.BlockStmt) (pos ast.Node, blocks bool) {
	var found ast.Node
	var inLoop func(n ast.Node, depth int)
	inLoop = func(n ast.Node, depth int) {
		if found != nil || n == nil {
			return
		}
		ast.Inspect(n, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			switch n := n.(type) {
			case *ast.ForStmt:
				if n.Init != nil {
					inLoop(n.Init, depth)
				}
				inLoop(n.Body, depth+1)
				return false
			case *ast.RangeStmt:
				inLoop(n.Body, depth+1)
				return false
			case *ast.FuncLit:
				// A nested closure owns its own contract.
				return false
			case *ast.SendStmt:
				if depth > 0 {
					found = n
				}
			case *ast.SelectStmt:
				if depth > 0 {
					found = n
				}
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" && depth > 0 {
					found = n
				}
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && depth > 0 {
					if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "time" && sel.Sel.Name == "Sleep" {
						found = n
					}
				}
			}
			return true
		})
	}
	inLoop(body, 0)
	if found != nil {
		return found, true
	}
	return nil, false
}
