package analyzers

import (
	"go/ast"
	"go/constant"
	"strings"

	"repro/internal/vet/analysis"
)

// PanicContract enforces the PR 5 validation contract in packages with
// an error-returning Validate front door (memory, faults): unvalidated
// input goes through Validate and gets an error; the constructors and
// per-operation hot paths panic only on programming errors, and every
// such panic is attributable. Concretely, in any package that declares
// an exported Validate function, each panic argument must be one of:
//
//   - a constant string prefixed "<pkg>: " (the documented message form)
//   - fmt.Sprintf with a constant "<pkg>: "-prefixed format
//   - an <expr>.Error() call — re-raising a validation error, the
//     NewSRAM pattern
//
// Anything else (a bare error value, an integer, an unprefixed string)
// would surface in quarantine verdicts and crash reports without
// naming its origin, and is a finding. Test files are not checked.
var PanicContract = &analysis.Analyzer{
	Name: "paniccontract",
	Doc:  "Validate-front-door packages panic only via the documented contract",
	Run:  runPanicContract,
}

func runPanicContract(pass *analysis.Pass) error {
	if !declaresExportedValidate(pass) {
		return nil
	}
	prefix := pass.Pkg.Name() + ": "
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPanicCall(call) || len(call.Args) != 1 {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				return true
			}
			if !panicArgOnContract(pass, call.Args[0], prefix) {
				pass.Reportf(call.Pos(), "panic outside the %s package contract: message must be a constant or constant-format fmt.Sprintf prefixed %q, or err.Error()", pass.Pkg.Name(), prefix)
			}
			return true
		})
	}
	return nil
}

func declaresExportedValidate(pass *analysis.Pass) bool {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Recv == nil && fn.Name.Name == "Validate" {
				return true
			}
		}
	}
	return false
}

func panicArgOnContract(pass *analysis.Pass, arg ast.Expr, prefix string) bool {
	// Constant string with the package prefix.
	if tv := pass.TypesInfo.Types[arg]; tv.Value != nil && tv.Value.Kind() == constant.String {
		return strings.HasPrefix(constant.StringVal(tv.Value), prefix)
	}
	call, ok := arg.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// <expr>.Error(): re-raising a validation error.
	if sel.Sel.Name == "Error" && len(call.Args) == 0 {
		return true
	}
	// fmt.Sprintf with a constant, prefixed format.
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" && sel.Sel.Name == "Sprintf" && len(call.Args) > 0 {
		if tv := pass.TypesInfo.Types[call.Args[0]]; tv.Value != nil && tv.Value.Kind() == constant.String {
			return strings.HasPrefix(constant.StringVal(tv.Value), prefix)
		}
	}
	return false
}
