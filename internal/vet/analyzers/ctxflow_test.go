package analyzers_test

import (
	"testing"

	"repro/internal/vet/analyzers"
	"repro/internal/vet/vettest"
)

func TestCtxFlowGolden(t *testing.T) {
	vettest.Run(t, analyzers.CtxFlow, "ctxflow")
}

func TestCtxFlowCommandPackagesExempt(t *testing.T) {
	vettest.Run(t, analyzers.CtxFlow, "cmd/demo")
}
