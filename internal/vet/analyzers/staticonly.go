package analyzers

import (
	"go/ast"
	"strconv"
	"strings"

	"repro/internal/vet/analysis"
)

// StaticOnly is the PR 4 lint-layer contract, promoted from a bespoke
// go/parser test into the suite: internal/lint analyses artifacts, it
// never simulates them. Two rules, applied only to the lint package:
//
//  1. The simulation and execution packages (gatesim, coverage,
//     logicbist, faults, memory) may not be imported — lint reasons
//     about netlists, programs and march algorithms structurally.
//  2. No call to a method named Run or RunContext: march, microbist,
//     fsmbist and hardbist expose behavioural executors through Run
//     methods, so even a types-only import becomes a simulation the
//     moment Run is called.
var StaticOnly = &analysis.Analyzer{
	Name: "staticonly",
	Doc:  "internal/lint must stay static: no simulation imports, no Run calls",
	Run:  runStaticOnly,
}

// staticOnlyBanned is the banned import set, matched on the import
// path's last element so the golden-test stub packages trip it too.
var staticOnlyBanned = map[string]bool{
	"gatesim":   true,
	"coverage":  true,
	"logicbist": true,
	"faults":    true,
	"memory":    true,
}

func runStaticOnly(pass *analysis.Pass) error {
	if pass.Pkg.Name() != "lint" {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if last := path[strings.LastIndex(path, "/")+1:]; staticOnlyBanned[last] {
				pass.Reportf(imp.Pos(), "lint imports %s: the lint layer must stay static", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name == "Run" || sel.Sel.Name == "RunContext" {
				pass.Reportf(call.Pos(), "lint calls %s: lint analyses artifacts, it does not execute them", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
