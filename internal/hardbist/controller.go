// Package hardbist generates the paper's non-programmable baselines:
// hardwired FSM controllers that realise one fixed march algorithm
// (March C, C+, C++, A, A+, A++ in §3). The generator turns a march
// algorithm into a Moore machine — one state per operation, plus pause
// states for retention delays and loop states for data backgrounds and
// ports — which internal/fsm synthesises to gates for the area tables.
//
// Any change to the test algorithm requires regenerating (re-designing)
// the controller: the LOW-flexibility end of the paper's comparison.
package hardbist

import (
	"fmt"

	"repro/internal/fsm"
	"repro/internal/march"
	"repro/internal/netlist"
)

// Config selects the memory geometry support compiled into the
// controller.
type Config struct {
	// WordOriented adds the data-background loop.
	WordOriented bool
	// Multiport adds the port loop.
	Multiport bool
	// AddrBits, Width, Ports size the optional datapath and the area
	// accounting; they do not change the state graph.
	AddrBits int
	Width    int
	Ports    int
	// IncludeDatapath adds the shared datapath to the netlist.
	IncludeDatapath bool
	// DelayTimerBits adds a retention delay timer when the algorithm
	// pauses.
	DelayTimerBits int
	// OneHot selects one-hot state encoding instead of binary — the
	// synthesis trade-off the encoding ablation benchmark explores.
	// One-hot synthesis does not support the internal delay timer or
	// datapath attachment (it is a controller-area experiment).
	OneHot bool
}

// DefaultConfig matches the paper's first experiment: bit-oriented,
// single-port, 1K addresses.
func DefaultConfig() Config {
	return Config{AddrBits: 10, Width: 1, Ports: 1}
}

// stateKind classifies generated states for the executor.
type stateKind uint8

const (
	kindIdle stateKind = iota
	kindPause
	kindOp
	kindCheck // bg/port check states
	kindStep  // bg/port step states
	kindDone
)

type stateMeta struct {
	kind    stateKind
	element int // op/pause states: element index
	op      int // op states: op index within the element
}

// Controller is a generated hardwired BIST controller.
type Controller struct {
	Algorithm march.Algorithm
	Config    Config
	Spec      *fsm.Spec
	meta      []stateMeta
}

// Moore output names of the generated machines.
var outputNames = []string{
	"read", "write", "data_inv", "addr_down", "addr_inc",
	"step_data", "data_clr", "step_port", "pause", "test_end",
}

// Generate builds the hardwired controller for the algorithm.
func Generate(a march.Algorithm, cfg Config) (*Controller, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if cfg.AddrBits <= 0 {
		cfg.AddrBits = 10
	}
	if cfg.Width <= 0 {
		cfg.Width = 1
	}
	if cfg.Ports <= 0 {
		cfg.Ports = 1
	}

	// Declare only the condition inputs this configuration's guards can
	// use; a hardwired controller for a simpler memory has no last_data
	// or last_port pin at all (the linter flags inputs nothing reads).
	names := []string{"start", "last_addr"}
	if cfg.WordOriented {
		names = append(names, "last_data")
	}
	if cfg.Multiport {
		names = append(names, "last_port")
	}
	if a.Pauses() > 0 {
		names = append(names, "delay_done")
	}
	inputs := fsm.NewInputSet(names...)
	c := &Controller{Algorithm: a, Config: cfg}
	sp := &fsm.Spec{
		Name:    "hardwired-" + a.Name,
		Inputs:  inputs,
		Outputs: outputNames,
	}

	add := func(st fsm.State, m stateMeta) int {
		sp.States = append(sp.States, st)
		c.meta = append(c.meta, m)
		return len(sp.States) - 1
	}

	// State indices are assigned sequentially; compute the index of
	// each element's first state (pause state when present) up front so
	// transitions can reference forward states.
	idle := add(fsm.State{Name: "Idle"}, stateMeta{kind: kindIdle})

	firstOf := make([]int, len(a.Elements))
	next := idle + 1
	for ei, e := range a.Elements {
		firstOf[ei] = next
		if e.PauseBefore {
			next++
		}
		next += len(e.Ops)
	}
	afterBody := next // first state after the last element

	for ei, e := range a.Elements {
		if e.PauseBefore {
			idx := add(fsm.State{
				Name:    fmt.Sprintf("Pause%d", ei),
				Outputs: map[string]bool{"pause": true},
				Transitions: []fsm.Transition{
					{Guard: inputs.If("delay_done", true), Next: firstOf[ei] + 1},
				},
			}, stateMeta{kind: kindPause, element: ei})
			if idx != firstOf[ei] {
				return nil, fmt.Errorf("hardbist: state layout drift at element %d", ei)
			}
		}
		opBase := firstOf[ei]
		if e.PauseBefore {
			opBase++
		}
		for oi, op := range e.Ops {
			out := map[string]bool{
				"addr_down": e.Order == march.Down,
			}
			if op.Kind == march.Read {
				out["read"] = true
			} else {
				out["write"] = true
			}
			out["data_inv"] = op.Data
			st := fsm.State{Name: fmt.Sprintf("E%dO%d", ei, oi), Outputs: out}
			if oi == len(e.Ops)-1 {
				out["addr_inc"] = true
				nextElem := afterBody
				if ei+1 < len(a.Elements) {
					nextElem = firstOf[ei+1]
				}
				st.Transitions = []fsm.Transition{
					{Guard: inputs.If("last_addr", true), Next: nextElem},
					{Guard: fsm.Always, Next: opBase},
				}
			} else {
				st.Transitions = []fsm.Transition{{Guard: fsm.Always, Next: opBase + oi + 1}}
			}
			add(st, stateMeta{kind: kindOp, element: ei, op: oi})
		}
	}

	// Tail: optional background loop, optional port loop, Done.
	// Forward indices depend on which loops exist.
	cur := afterBody
	bgStep, portCheck, portStep := -1, -1, -1
	if cfg.WordOriented {
		bgStep = cur + 1
		cur += 2
	}
	if cfg.Multiport {
		portCheck, portStep = cur, cur+1
		cur += 2
	}
	done := cur

	afterBg := done
	if cfg.Multiport {
		afterBg = portCheck
	}
	if cfg.WordOriented {
		add(fsm.State{Name: "BgCheck", Transitions: []fsm.Transition{
			{Guard: inputs.If("last_data", true), Next: afterBg},
			{Guard: fsm.Always, Next: bgStep},
		}}, stateMeta{kind: kindCheck})
		add(fsm.State{Name: "BgStep",
			Outputs:     map[string]bool{"step_data": true},
			Transitions: []fsm.Transition{{Guard: fsm.Always, Next: firstOf[0]}},
		}, stateMeta{kind: kindStep})
	}
	if cfg.Multiport {
		add(fsm.State{Name: "PortCheck", Transitions: []fsm.Transition{
			{Guard: inputs.If("last_port", true), Next: done},
			{Guard: fsm.Always, Next: portStep},
		}}, stateMeta{kind: kindCheck})
		add(fsm.State{Name: "PortStep",
			Outputs:     map[string]bool{"step_port": true, "data_clr": true},
			Transitions: []fsm.Transition{{Guard: fsm.Always, Next: firstOf[0]}},
		}, stateMeta{kind: kindStep})
	}
	add(fsm.State{Name: "Done", Outputs: map[string]bool{"test_end": true}}, stateMeta{kind: kindDone})

	// Idle waits for start.
	sp.States[idle].Transitions = []fsm.Transition{
		{Guard: inputs.If("start", true), Next: firstOf[0]},
	}
	sp.Reset = idle

	if err := sp.Validate(); err != nil {
		return nil, err
	}
	c.Spec = sp
	return c, nil
}

// NumStates returns the controller's state count.
func (c *Controller) NumStates() int { return len(c.Spec.States) }

// Synthesise builds the controller's gate-level netlist, optionally
// with the shared datapath. When a delay timer is configured it drives
// the FSM's delay_done condition internally (a free-running counter
// whose terminal count releases the pause states); otherwise delay_done
// stays a primary input.
func (c *Controller) Synthesise() (*netlist.Netlist, error) {
	cfg := c.Config
	if cfg.OneHot {
		if cfg.DelayTimerBits > 0 || cfg.IncludeDatapath {
			return nil, fmt.Errorf("hardbist: one-hot synthesis supports the bare controller only")
		}
		syn, err := fsm.SynthesiseOneHot(c.Spec)
		if err != nil {
			return nil, err
		}
		syn.Netlist.SweepDead()
		if err := syn.Netlist.Validate(); err != nil {
			return nil, err
		}
		return syn.Netlist, nil
	}
	nl := netlist.New(c.Spec.Name)
	var bind map[string]netlist.NetID
	if cfg.DelayTimerBits > 0 && c.Spec.Inputs.Has("delay_done") {
		timer := nl.BuildCounter("delay", cfg.DelayTimerBits, nl.Const1(), netlist.Invalid, netlist.Invalid)
		bind = map[string]netlist.NetID{"delay_done": timer.Terminal}
	}
	syn, err := fsm.SynthesiseIntoWith(c.Spec, nl, "", bind)
	if err != nil {
		return nil, err
	}
	for _, name := range c.Spec.Outputs {
		nl.AddOutput(name, syn.OutputNet[name])
	}
	if cfg.IncludeDatapath {
		attachDatapath(nl, syn, cfg)
	}
	nl.SweepDead()
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return nl, nil
}
