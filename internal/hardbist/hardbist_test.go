package hardbist

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/march"
	"repro/internal/memory"
	"repro/internal/netlist"
)

func execVsOracle(t *testing.T, alg march.Algorithm, size, width, ports int, fs ...faults.Fault) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Width = width
	cfg.Ports = ports
	cfg.WordOriented = width > 1
	cfg.Multiport = ports > 1
	c, err := Generate(alg, cfg)
	if err != nil {
		t.Fatalf("%s: %v", alg.Name, err)
	}

	memA := faults.NewInjected(size, width, ports, fs...)
	got, err := c.Run(memA, ExecOpts{})
	if err != nil {
		t.Fatalf("%s: %v", alg.Name, err)
	}
	if !got.Terminated {
		t.Fatalf("%s: executor hit the cycle budget", alg.Name)
	}

	memB := faults.NewInjected(size, width, ports, fs...)
	want, err := march.Run(alg, memB, march.RunOpts{
		SinglePort:       ports == 1,
		SingleBackground: width == 1,
	})
	if err != nil {
		t.Fatalf("%s oracle: %v", alg.Name, err)
	}

	if len(got.Fails) != len(want.Fails) {
		t.Fatalf("%s with %v: executor %d fails, oracle %d\nexec: %v\noracle: %v",
			alg.Name, fs, len(got.Fails), len(want.Fails), got.Fails, want.Fails)
	}
	for i := range got.Fails {
		if got.Fails[i] != want.Fails[i] {
			t.Fatalf("%s with %v: fail %d differs\nexec:   %v\noracle: %v",
				alg.Name, fs, i, got.Fails[i], want.Fails[i])
		}
	}
	if got.Operations != want.Operations {
		t.Errorf("%s: executor %d ops, oracle %d", alg.Name, got.Operations, want.Operations)
	}
	if got.PauseCount != want.PauseCount {
		t.Errorf("%s: executor %d pauses, oracle %d", alg.Name, got.PauseCount, want.PauseCount)
	}
}

func TestExecutorMatchesOracleCleanMemory(t *testing.T) {
	for name, f := range march.Library() {
		t.Run(name, func(t *testing.T) {
			execVsOracle(t, f(), 16, 1, 1)
		})
	}
}

func TestExecutorMatchesOracleUnderFaults(t *testing.T) {
	universe := faults.Universe(8, 1, faults.UniverseOpts{})
	algs := []march.Algorithm{
		march.MarchC(), march.MarchCPlus(), march.MarchCPlusPlus(),
		march.MarchA(), march.MarchAPlus(), march.MarchAPlusPlus(),
	}
	for _, alg := range algs {
		for _, f := range universe {
			execVsOracle(t, alg, 8, 1, 1, f)
		}
	}
}

func TestExecutorMatchesOracleWordOriented(t *testing.T) {
	universe := faults.Universe(8, 4, faults.UniverseOpts{CellSample: 6, CouplingPairs: 8, AddrSample: 2, Seed: 3})
	for _, f := range universe {
		execVsOracle(t, march.MarchC(), 8, 4, 1, f)
	}
}

func TestExecutorMatchesOracleMultiport(t *testing.T) {
	universe := faults.Universe(8, 2, faults.UniverseOpts{CellSample: 4, CouplingPairs: 4, AddrSample: 2, Ports: 2, Seed: 5})
	for _, f := range universe {
		execVsOracle(t, march.MarchC(), 8, 2, 2, f)
	}
}

func TestStateCountsTrackAlgorithmSize(t *testing.T) {
	// One state per operation plus pauses plus fixed overhead: enhanced
	// algorithms must have strictly more states.
	counts := map[string]int{}
	for _, algf := range []func() march.Algorithm{
		march.MarchC, march.MarchCPlus, march.MarchCPlusPlus,
		march.MarchA, march.MarchAPlus, march.MarchAPlusPlus,
	} {
		alg := algf()
		c, err := Generate(alg, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		counts[alg.Name] = c.NumStates()
		// Idle + ops + pauses + Done.
		want := 2 + alg.OpCount() + alg.Pauses()
		if c.NumStates() != want {
			t.Errorf("%s: %d states, want %d", alg.Name, c.NumStates(), want)
		}
	}
	if !(counts["March C"] < counts["March C+"] && counts["March C+"] < counts["March C++"]) {
		t.Errorf("March C family state counts not increasing: %v", counts)
	}
	if !(counts["March A"] < counts["March A+"] && counts["March A+"] < counts["March A++"]) {
		t.Errorf("March A family state counts not increasing: %v", counts)
	}
}

func TestSynthesiseAllBaselines(t *testing.T) {
	lib := &netlist.CMOS5SLike
	for _, algf := range []func() march.Algorithm{
		march.MarchC, march.MarchCPlus, march.MarchA,
	} {
		alg := algf()
		c, err := Generate(alg, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		nl, err := c.Synthesise()
		if err != nil {
			t.Fatalf("%s: %v", alg.Name, err)
		}
		s := nl.StatsFor(lib)
		if s.GE <= 0 {
			t.Errorf("%s: degenerate stats %v", alg.Name, s)
		}
	}
}

func TestEnhancementGrowsArea(t *testing.T) {
	// The paper's observation 3: enhancing the fault model grows the
	// non-programmable controller.
	lib := &netlist.CMOS5SLike
	area := func(alg march.Algorithm, timer int) float64 {
		cfg := DefaultConfig()
		cfg.DelayTimerBits = timer
		c, err := Generate(alg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nl, err := c.Synthesise()
		if err != nil {
			t.Fatal(err)
		}
		return nl.StatsFor(lib).AreaUm2
	}
	c := area(march.MarchC(), 0)
	cp := area(march.MarchCPlus(), 8)
	cpp := area(march.MarchCPlusPlus(), 8)
	if !(c < cp && cp < cpp) {
		t.Errorf("March C family area not increasing: %.0f %.0f %.0f", c, cp, cpp)
	}
}

func TestWordMultiportSupportGrowsController(t *testing.T) {
	lib := &netlist.CMOS5SLike
	area := func(word, multi bool) float64 {
		cfg := DefaultConfig()
		cfg.WordOriented = word
		cfg.Multiport = multi
		if word {
			cfg.Width = 8
		}
		if multi {
			cfg.Ports = 2
		}
		c, err := Generate(march.MarchC(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		nl, err := c.Synthesise()
		if err != nil {
			t.Fatal(err)
		}
		return nl.StatsFor(lib).AreaUm2
	}
	bit := area(false, false)
	word := area(true, false)
	multi := area(true, true)
	if !(bit < word && word < multi) {
		t.Errorf("controller areas not monotone: %.0f %.0f %.0f", bit, word, multi)
	}
}

func TestOneHotSynthesis(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OneHot = true
	c, err := Generate(march.MarchC(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := c.Synthesise()
	if err != nil {
		t.Fatal(err)
	}
	s := nl.StatsFor(&netlist.CMOS5SLike)
	// One FF per state.
	if s.FlipFlops != c.NumStates() {
		t.Errorf("one-hot FFs = %d, want %d states", s.FlipFlops, c.NumStates())
	}
	// Binary encoding for comparison.
	cfgB := DefaultConfig()
	cB, err := Generate(march.MarchC(), cfgB)
	if err != nil {
		t.Fatal(err)
	}
	nlB, err := cB.Synthesise()
	if err != nil {
		t.Fatal(err)
	}
	sB := nlB.StatsFor(&netlist.CMOS5SLike)
	if s.FlipFlops <= sB.FlipFlops {
		t.Errorf("one-hot FFs %d <= binary FFs %d", s.FlipFlops, sB.FlipFlops)
	}
}

func TestOneHotRejectsTimerAndDatapath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OneHot = true
	cfg.DelayTimerBits = 4
	c, err := Generate(march.MarchCPlus(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Synthesise(); err == nil {
		t.Error("one-hot with timer accepted")
	}
}

func TestRunOnCleanMemoryTerminates(t *testing.T) {
	c, err := Generate(march.MarchA(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(memory.NewSRAM(64, 1, 1), ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated || res.Detected() {
		t.Errorf("clean run: terminated=%v fails=%d", res.Terminated, len(res.Fails))
	}
	if res.Operations != 15*64 {
		t.Errorf("ops = %d, want %d", res.Operations, 15*64)
	}
	// Cycle overhead: Idle + Done + per-pass transitions only.
	if res.Cycles < res.Operations || res.Cycles > res.Operations+8 {
		t.Errorf("cycles = %d for %d ops", res.Cycles, res.Operations)
	}
}

func TestGenerateRejectsInvalid(t *testing.T) {
	bad := march.Algorithm{Name: "bad", Elements: []march.Element{
		{Order: march.Up, Ops: []march.Op{march.R(true)}},
	}}
	if _, err := Generate(bad, DefaultConfig()); err == nil {
		t.Error("invalid algorithm generated a controller")
	}
}
