package hardbist

import (
	"fmt"

	"repro/internal/bist"
	"repro/internal/fsm"
	"repro/internal/march"
	"repro/internal/memory"
	"repro/internal/netlist"
)

// ExecOpts tunes the behavioural executor.
type ExecOpts struct {
	MaxFails  int
	MaxCycles int
}

// ExecResult is the outcome of running the hardwired controller.
type ExecResult struct {
	Fails      []march.Fail
	Cycles     int
	Operations int
	PauseCount int
	Signature  uint16
	Terminated bool
}

// Detected reports whether any miscompare occurred.
func (r *ExecResult) Detected() bool { return len(r.Fails) > 0 }

// Run executes the controller against a memory by interpreting the
// generated FSM spec directly with fsm.Machine — the same state graph
// the netlist is synthesised from — wired to the behavioural datapath.
// One state visit is one clock cycle.
func (c *Controller) Run(mem memory.Memory, opts ExecOpts) (*ExecResult, error) {
	m := fsm.NewMachine(c.Spec)
	in := c.Spec.Inputs
	addrGen := bist.NewAddressGenerator(mem.Size())
	dataGen := bist.NewDataGenerator(mem.Width())
	portSel := bist.NewPortSelector(mem.Ports())
	analyzer := bist.NewResponseAnalyzer(opts.MaxFails)
	res := &ExecResult{}

	budget := opts.MaxCycles
	if budget == 0 {
		budget = (c.Algorithm.OpCount()*mem.Size()+4*len(c.Spec.States)+16)*
			dataGen.Count()*mem.Ports() + 256
	}

	prevElement := -1
	for res.Cycles < budget {
		res.Cycles++
		meta := c.meta[m.State()]

		// Element boundary: restart the address sweep in the element's
		// direction.
		if meta.kind == kindOp && meta.element != prevElement {
			addrGen.Reset(m.Output("addr_down"))
			prevElement = meta.element
		}
		if meta.kind == kindStep || meta.kind == kindCheck {
			prevElement = -1
		}

		switch {
		case m.Output("read"):
			expected := dataGen.Pattern(m.Output("data_inv"))
			got := mem.Read(portSel.Port(), addrGen.Addr())
			res.Operations++
			analyzer.Compare(got, expected, march.Fail{
				Port:       portSel.Port(),
				Background: dataGen.Background(),
				Element:    meta.element,
				OpIndex:    meta.op,
				Addr:       addrGen.Addr(),
			})
			if opts.MaxFails > 0 && len(analyzer.Fails()) >= opts.MaxFails {
				res.Fails = analyzer.Fails()
				res.Signature = analyzer.Signature()
				res.Terminated = true
				return res, nil
			}
		case m.Output("write"):
			mem.Write(portSel.Port(), addrGen.Addr(), dataGen.Pattern(m.Output("data_inv")))
			res.Operations++
		case m.Output("pause"):
			mem.Pause()
			res.PauseCount++
		}

		// Sample conditions before stepping the generators.
		var inputs uint64
		setBit := func(name string, v bool) {
			if v && in.Has(name) {
				inputs |= 1 << uint(in.Bit(name))
			}
		}
		setBit("start", true)
		setBit("last_addr", addrGen.Last())
		setBit("last_data", dataGen.Last())
		setBit("last_port", portSel.Last())
		setBit("delay_done", true)

		if m.Output("addr_inc") {
			addrGen.Step()
		}
		if m.Output("step_data") {
			dataGen.Step()
		}
		if m.Output("data_clr") {
			dataGen.Reset()
		}
		if m.Output("step_port") {
			portSel.Step()
		}
		if m.Output("test_end") {
			res.Terminated = true
			break
		}
		m.Step(inputs)
	}

	res.Fails = analyzer.Fails()
	res.Signature = analyzer.Signature()
	return res, nil
}

// attachDatapath adds the shared datapath to a synthesised controller.
func attachDatapath(nl *netlist.Netlist, syn *fsm.Synthesised, cfg Config) {
	ag := bist.BuildAddressGen(nl, cfg.AddrBits,
		syn.OutputNet["addr_inc"], syn.OutputNet["addr_down"], netlist.Invalid)
	dg := bist.BuildDataGen(nl, cfg.Width,
		syn.OutputNet["step_data"], syn.OutputNet["data_clr"], syn.OutputNet["data_inv"])
	read := make([]netlist.NetID, cfg.Width)
	for i := range read {
		read[i] = nl.AddInput(fmt.Sprintf("mem_q[%d]", i))
	}
	mismatch := bist.BuildComparator(nl, read, dg.Pattern, syn.OutputNet["read"])
	nl.AddOutput("mismatch", mismatch)
	nl.AddOutput("read_en", syn.OutputNet["read"])
	nl.AddOutput("write_en", syn.OutputNet["write"])
	for i, q := range ag.Q {
		nl.AddOutput(fmt.Sprintf("mem_addr[%d]", i), q)
	}
	for i, d := range dg.Pattern {
		nl.AddOutput(fmt.Sprintf("mem_d[%d]", i), d)
	}
	nl.AddOutput("dp_last_address", ag.Last)
	nl.AddOutput("dp_last_data", dg.Last)
	if cfg.Ports > 1 {
		pq, plast := bist.BuildPortCounter(nl, cfg.Ports, syn.OutputNet["step_port"], netlist.Invalid)
		for i, q := range pq {
			nl.AddOutput(fmt.Sprintf("mem_port[%d]", i), q)
		}
		nl.AddOutput("dp_last_port", plast)
	}
}
