package hardbist

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/gatesim"
	"repro/internal/march"
	"repro/internal/memory"
)

func buildUnit(t *testing.T, alg march.Algorithm, addrBits, width int) *Controller {
	t.Helper()
	cfg := Config{
		WordOriented: width > 1,
		AddrBits:     addrBits, Width: width, Ports: 1,
		IncludeDatapath: true,
	}
	if alg.Pauses() > 0 {
		cfg.DelayTimerBits = 2
	}
	c, err := Generate(alg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestGateLevelClosedLoop runs the synthesised hardwired BIST unit
// closed-loop against a memory: the fully synthesised Moore machine
// drives the datapath, and the observed operation stream must equal the
// algorithm's canonical stream.
func TestGateLevelClosedLoop(t *testing.T) {
	cases := []struct {
		alg   march.Algorithm
		width int
	}{
		{march.MATSPlus(), 1},
		{march.MarchC(), 1},
		{march.MarchA(), 1},
		{march.MarchC(), 4}, // background loop
	}
	const addrBits = 3
	size := 1 << addrBits
	for _, c := range cases {
		t.Run(c.alg.Name, func(t *testing.T) {
			ctrl := buildUnit(t, c.alg, addrBits, c.width)
			nl, err := ctrl.Synthesise()
			if err != nil {
				t.Fatal(err)
			}
			mem := memory.NewSRAM(size, c.width, 1)
			want := march.OpStream(c.alg, size, c.width)

			res, err := gatesim.RunBISTUnit(nl, mem, 20*len(want)+500)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Ended {
				t.Fatalf("unit did not raise test_end in %d cycles (%d/%d ops)",
					res.Cycles, len(res.Ops), len(want))
			}
			if res.Detected() {
				t.Fatalf("comparator flagged a clean memory at %v", res.MismatchAddrs)
			}
			if len(res.Ops) != len(want) {
				t.Fatalf("unit issued %d ops, want %d", len(res.Ops), len(want))
			}
			for i := range want {
				got := res.Ops[i]
				if got.Write != want[i].Write || got.Addr != want[i].Addr || got.Data != want[i].Data {
					t.Fatalf("op %d: gate %+v, golden %+v", i, got, want[i])
				}
			}
		})
	}
}

// TestGateLevelMultiport runs the synthesised Moore machine with port
// and background loop states against a dual-port memory.
func TestGateLevelMultiport(t *testing.T) {
	const addrBits, width, ports = 3, 2, 2
	size := 1 << addrBits
	alg := march.MarchC()
	cfg := Config{
		WordOriented: true, Multiport: true,
		AddrBits: addrBits, Width: width, Ports: ports,
		IncludeDatapath: true,
	}
	ctrl, err := Generate(alg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := ctrl.Synthesise()
	if err != nil {
		t.Fatal(err)
	}
	mem := memory.NewSRAM(size, width, ports)
	want := march.OpStreamPorts(alg, size, width, ports)
	res, err := gatesim.RunBISTUnit(nl, mem, 20*len(want)+500)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ended || res.Detected() {
		t.Fatalf("clean multiport run: ended=%v mismatches=%v (%d/%d ops)",
			res.Ended, res.MismatchAddrs, len(res.Ops), len(want))
	}
	if len(res.Ops) != len(want) {
		t.Fatalf("unit issued %d ops, want %d", len(res.Ops), len(want))
	}
	for i := range want {
		got := res.Ops[i]
		if got.Write != want[i].Write || got.Port != want[i].Port ||
			got.Addr != want[i].Addr || got.Data != want[i].Data {
			t.Fatalf("op %d: gate %+v, golden %+v", i, got, want[i])
		}
	}
}

func TestGateLevelDetectsFault(t *testing.T) {
	const addrBits = 3
	size := 1 << addrBits
	alg := march.MarchA()
	f := faults.Fault{Kind: faults.CFid, Aggressor: 1, Cell: 6, AggVal: true, Value: true, Port: faults.AnyPort}

	ctrl := buildUnit(t, alg, addrBits, 1)
	nl, err := ctrl.Synthesise()
	if err != nil {
		t.Fatal(err)
	}
	mem := faults.NewInjected(size, 1, 1, f)
	res, err := gatesim.RunBISTUnit(nl, mem, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ended || !res.Detected() {
		t.Fatalf("ended=%v detected=%v", res.Ended, res.Detected())
	}

	oracle := faults.NewInjected(size, 1, 1, f)
	want, err := march.Run(alg, oracle, march.RunOpts{SinglePort: true, SingleBackground: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MismatchAddrs) != len(want.Fails) {
		t.Fatalf("gate mismatches %v, oracle fails %v", res.MismatchAddrs, want.Fails)
	}
	for i, addr := range res.MismatchAddrs {
		if addr != want.Fails[i].Addr {
			t.Errorf("mismatch %d at addr %d, oracle at %d", i, addr, want.Fails[i].Addr)
		}
	}
}
