package hardbist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/faults"
	"repro/internal/march"
)

// TestRandomAlgorithmEquivalenceProperty fuzzes the FSM generator: for
// random valid march algorithms, the generated Moore machine —
// interpreted by fsm.Machine over the behavioural datapath — must
// produce the reference runner's fail log byte for byte under a random
// fault.
func TestRandomAlgorithmEquivalenceProperty(t *testing.T) {
	universe := faults.Universe(8, 1, faults.UniverseOpts{})
	f := func(seed int64, faultIdx uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		alg := march.Random(rng)
		fault := universe[int(faultIdx)%len(universe)]

		c, err := Generate(alg, DefaultConfig())
		if err != nil {
			return false
		}
		memA := faults.NewInjected(8, 1, 1, fault)
		got, err := c.Run(memA, ExecOpts{})
		if err != nil || !got.Terminated {
			return false
		}

		memB := faults.NewInjected(8, 1, 1, fault)
		want, err := march.Run(alg, memB, march.RunOpts{SinglePort: true, SingleBackground: true})
		if err != nil {
			return false
		}
		if len(got.Fails) != len(want.Fails) || got.Operations != want.Operations {
			return false
		}
		for i := range got.Fails {
			if got.Fails[i] != want.Fails[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
