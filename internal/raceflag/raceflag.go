// Package raceflag reports whether the race detector is compiled in.
// Allocation-regression tests consult it: race instrumentation inserts
// allocations of its own, so testing.AllocsPerRun pins are only
// meaningful in non-race builds.
package raceflag
