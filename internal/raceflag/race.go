//go:build race

package raceflag

// Enabled is true in builds with the race detector.
const Enabled = true
