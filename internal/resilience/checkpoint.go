package resilience

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// Schema is the checkpoint format version. Loaders reject every other
// value; bump it when the envelope or any payload layout changes
// incompatibly.
const Schema = "mbist-checkpoint/1"

// ErrCorrupt marks a checkpoint that exists but cannot be trusted:
// truncated, bit-flipped, syntactically invalid, or carrying a CRC that
// does not match its payload. Use errors.Is to test for it.
var ErrCorrupt = errors.New("checkpoint is corrupt")

// ErrMismatch marks a structurally valid checkpoint written for a
// different workload (schema or fingerprint differ). Use errors.Is.
var ErrMismatch = errors.New("checkpoint does not match this workload")

// CorruptError carries the detail behind an ErrCorrupt/ErrMismatch
// verdict, for checkpoint files and journals alike.
type CorruptError struct {
	Path   string
	Reason string
	what   string // artifact label: "checkpoint" (default) or "journal"
	kind   error  // ErrCorrupt or ErrMismatch
}

func (e *CorruptError) Error() string {
	what := e.what
	if what == "" {
		what = "checkpoint"
	}
	return fmt.Sprintf("%s %s: %s", what, e.Path, e.Reason)
}

func (e *CorruptError) Unwrap() error { return e.kind }

// envelope is the on-disk frame around a checkpoint payload. CRC is the
// IEEE CRC-32 of the raw Payload bytes — cheap, and more than enough to
// catch the truncation and bit-rot failure modes a killed or crashed
// writer leaves behind (the atomic rename below makes torn writes the
// only way a partial file can appear, and then only as a stray .tmp).
type envelope struct {
	Schema      string          `json:"schema"`
	Fingerprint string          `json:"fingerprint"`
	CRC         uint32          `json:"crc"`
	Payload     json.RawMessage `json:"payload"`
}

// Save atomically writes payload as a checkpoint: marshal, frame with
// schema/fingerprint/CRC, write to a sibling temp file, fsync, rename
// over path. A reader never observes a partial checkpoint; a crashed
// writer leaves the previous checkpoint intact.
func Save(path, fingerprint string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("checkpoint %s: marshal: %w", path, err)
	}
	env := envelope{
		Schema:      Schema,
		Fingerprint: fingerprint,
		CRC:         crc32.ChecksumIEEE(raw),
		Payload:     raw,
	}
	data, err := json.MarshalIndent(&env, "", " ")
	if err != nil {
		return fmt.Errorf("checkpoint %s: marshal envelope: %w", path, err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint %s: write: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint %s: sync: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint %s: close: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	obs.Active().Counter("resilience.checkpoint_writes").Add(1)
	return nil
}

// Load reads a checkpoint written by Save into payload, verifying the
// schema version, the workload fingerprint and the payload CRC. It
// returns an error satisfying errors.Is(err, ErrCorrupt) for a damaged
// file, errors.Is(err, ErrMismatch) for a checkpoint from a different
// workload or format version, and os.ErrNotExist when no checkpoint
// exists.
func Load(path, fingerprint string, payload any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		obs.Active().Counter("resilience.checkpoint_corrupt").Add(1)
		return &CorruptError{Path: path, Reason: "invalid JSON: " + err.Error(), kind: ErrCorrupt}
	}
	if env.Schema != Schema {
		return &CorruptError{Path: path,
			Reason: fmt.Sprintf("schema %q, want %q", env.Schema, Schema), kind: ErrMismatch}
	}
	if env.Fingerprint != fingerprint {
		return &CorruptError{Path: path,
			Reason: fmt.Sprintf("fingerprint %q does not match workload %q", env.Fingerprint, fingerprint),
			kind:   ErrMismatch}
	}
	// The envelope is stored indented, which re-formats the embedded
	// payload; compact it back to the canonical form Save checksummed.
	var compact bytes.Buffer
	if err := json.Compact(&compact, env.Payload); err != nil {
		obs.Active().Counter("resilience.checkpoint_corrupt").Add(1)
		return &CorruptError{Path: path, Reason: "payload: " + err.Error(), kind: ErrCorrupt}
	}
	if got := crc32.ChecksumIEEE(compact.Bytes()); got != env.CRC {
		obs.Active().Counter("resilience.checkpoint_corrupt").Add(1)
		return &CorruptError{Path: path,
			Reason: fmt.Sprintf("payload CRC %08x, envelope says %08x", got, env.CRC), kind: ErrCorrupt}
	}
	if err := json.Unmarshal(env.Payload, payload); err != nil {
		obs.Active().Counter("resilience.checkpoint_corrupt").Add(1)
		return &CorruptError{Path: path, Reason: "payload: " + err.Error(), kind: ErrCorrupt}
	}
	obs.Active().Counter("resilience.checkpoint_loads").Add(1)
	return nil
}
