package resilience

import (
	"testing"
	"time"
)

// TestBackoffDeterministicUnderSeed pins the property the retry tests
// lean on: for one seed the delay schedule is a pure function of the
// call count.
func TestBackoffDeterministicUnderSeed(t *testing.T) {
	a := NewBackoff(10*time.Millisecond, time.Second, 42)
	b := NewBackoff(10*time.Millisecond, time.Second, 42)
	for i := 0; i < 50; i++ {
		if da, db := a.Next(), b.Next(); da != db {
			t.Fatalf("call %d: seeds diverged: %v vs %v", i, da, db)
		}
	}
}

func TestBackoffBoundsAndGrowth(t *testing.T) {
	base, cap := 10*time.Millisecond, 200*time.Millisecond
	b := NewBackoff(base, cap, 1)
	prev := base
	sawCapWindow := false
	for i := 0; i < 100; i++ {
		d := b.Next()
		if d < base || d > cap {
			t.Fatalf("call %d: delay %v outside [%v, %v]", i, d, base, cap)
		}
		// Decorrelated jitter: each delay is at most 3x the previous
		// (clamped at the cap).
		hi := prev * 3
		if hi > cap {
			hi = cap
			sawCapWindow = true
		}
		if d > hi {
			t.Fatalf("call %d: delay %v exceeds decorrelated window %v", i, d, hi)
		}
		prev = d
	}
	if !sawCapWindow {
		t.Error("100 draws never reached the cap window — growth is broken")
	}
}

func TestBackoffSeedsDiffer(t *testing.T) {
	a := NewBackoff(time.Millisecond, time.Minute, 1)
	b := NewBackoff(time.Millisecond, time.Minute, 2)
	same := true
	for i := 0; i < 20; i++ {
		if a.Next() != b.Next() {
			same = false
		}
	}
	if same {
		t.Error("20 draws identical across different seeds")
	}
}

func TestBackoffResetRestartsWindow(t *testing.T) {
	base := 5 * time.Millisecond
	b := NewBackoff(base, time.Second, 7)
	for i := 0; i < 10; i++ {
		b.Next()
	}
	b.Reset()
	if d := b.Next(); d > 3*base {
		t.Errorf("first delay after Reset = %v, want within the restarted window [%v, %v]", d, base, 3*base)
	}
}

func TestBackoffDefaults(t *testing.T) {
	b := NewBackoff(0, 0, 1)
	d := b.Next()
	if d < 100*time.Millisecond {
		t.Errorf("defaulted backoff returned %v, want >= the 100ms default base", d)
	}
}
