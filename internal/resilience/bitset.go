package resilience

import (
	"encoding/hex"
	"fmt"
)

// MarshalBits packs a []bool into a lowercase hex string, LSB-first
// within each byte — the compact form checkpoints store per-fault
// graded/detected flags in. The length is not encoded; UnmarshalBits
// takes the expected count.
func MarshalBits(bits []bool) string {
	raw := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b {
			raw[i/8] |= 1 << uint(i%8)
		}
	}
	return hex.EncodeToString(raw)
}

// UnmarshalBits decodes a MarshalBits string into exactly n flags,
// rejecting strings of the wrong length or with set padding bits — both
// are corruption, not versions of a valid state.
func UnmarshalBits(s string, n int) ([]bool, error) {
	wantBytes := (n + 7) / 8
	if len(s) != 2*wantBytes {
		return nil, fmt.Errorf("bitset: %d hex chars for %d bits, want %d", len(s), n, 2*wantBytes)
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("bitset: invalid hex %q: %w", s, err)
	}
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = raw[i/8]>>uint(i%8)&1 == 1
	}
	for i := n; i < 8*wantBytes; i++ {
		if raw[i/8]>>uint(i%8)&1 == 1 {
			return nil, fmt.Errorf("bitset: padding bit %d is set", i)
		}
	}
	return bits, nil
}
