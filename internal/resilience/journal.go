package resilience

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// JournalSchema is the journal record format version. Replay rejects
// every other value; bump it when the record frame or the replay
// semantics change incompatibly.
const JournalSchema = "mbist-journal/1"

// journalRecord is one line of an append-only journal: the same
// verified-frame idea as the checkpoint envelope (schema, fingerprint,
// CRC over the raw payload bytes), plus a sequence number so a
// reordered or doctored file cannot replay silently. Records are
// written compact (one JSON object per line), so the stored Payload is
// exactly the bytes the CRC was computed over — no re-canonicalisation
// on load.
type journalRecord struct {
	Schema      string          `json:"schema"`
	Fingerprint string          `json:"fingerprint"`
	Seq         int             `json:"seq"`
	CRC         uint32          `json:"crc"`
	Payload     json.RawMessage `json:"payload"`
}

// Journal is an append-only, fsync-per-record JSONL log riding the
// checkpoint envelope's verification scheme. It is the durability
// substrate of the mbistd job store: higher layers append one payload
// per state transition and replay the whole log on restart.
//
// Failure semantics, chosen for what a SIGKILL'd writer actually
// leaves behind:
//
//   - A torn tail — the final line has no trailing newline, because the
//     writer died mid-write — is expected damage: OpenJournal drops the
//     tail record, truncates the file back to the last complete record
//     and continues. Every complete record was fsync'd, so at most the
//     in-flight transition is lost.
//   - Anything wrong before the final line, or a complete record whose
//     CRC does not match its payload, is NOT crash debris — it is bit
//     rot or tampering. OpenJournal refuses with ErrCorrupt rather
//     than resurrect jobs from a log it cannot trust.
//   - A journal written for a different owner (schema or fingerprint
//     differ) fails with ErrMismatch.
//
// Journal methods are not safe for concurrent use; callers serialise
// appends (the job store holds its own mutex across the state
// transition and the append, which is the ordering that matters).
type Journal struct {
	path        string
	fingerprint string
	f           *os.File
	seq         int
	size        int64
}

// OpenJournal opens (creating if absent) the journal at path, replays
// and verifies every record, and returns the journal positioned for
// appending plus the replayed payloads in append order. A torn tail
// record is dropped and the file truncated back to the last complete
// record; any other damage returns ErrCorrupt/ErrMismatch and a nil
// journal — the caller must refuse to start rather than guess.
func OpenJournal(path, fingerprint string) (*Journal, []json.RawMessage, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, fmt.Errorf("journal %s: %w", path, err)
	}
	payloads, goodLen, err := replayJournal(path, fingerprint, data)
	if err != nil {
		return nil, nil, err
	}
	if goodLen < len(data) {
		// Torn tail: drop the partial record so the next append starts
		// on a clean line boundary.
		if err := os.Truncate(path, int64(goodLen)); err != nil {
			return nil, nil, fmt.Errorf("journal %s: drop torn tail: %w", path, err)
		}
		obs.Active().Counter("resilience.journal_tail_dropped").Add(1)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal %s: %w", path, err)
	}
	return &Journal{
		path:        path,
		fingerprint: fingerprint,
		f:           f,
		seq:         len(payloads),
		size:        int64(goodLen),
	}, payloads, nil
}

// replayJournal parses and verifies every record in data, returning
// the payloads and the byte length of the verified prefix. A torn tail
// (final line without its newline) is reported by goodLen < len(data)
// with a nil error; all other damage is an error.
func replayJournal(path, fingerprint string, data []byte) (payloads []json.RawMessage, goodLen int, err error) {
	off := 0
	seq := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Final line never got its newline: the writer was killed
			// mid-write. Recoverable — drop it.
			return payloads, off, nil
		}
		line := data[off : off+nl]
		end := off + nl + 1

		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			obs.Active().Counter("resilience.journal_corrupt").Add(1)
			return nil, 0, &CorruptError{Path: path, what: "journal",
				Reason: fmt.Sprintf("record %d: invalid JSON: %v", seq+1, err), kind: ErrCorrupt}
		}
		if rec.Schema != JournalSchema {
			return nil, 0, &CorruptError{Path: path, what: "journal",
				Reason: fmt.Sprintf("record %d: schema %q, want %q", seq+1, rec.Schema, JournalSchema), kind: ErrMismatch}
		}
		if rec.Fingerprint != fingerprint {
			return nil, 0, &CorruptError{Path: path, what: "journal",
				Reason: fmt.Sprintf("record %d: fingerprint %q does not match owner %q", seq+1, rec.Fingerprint, fingerprint),
				kind:   ErrMismatch}
		}
		if rec.Seq != seq+1 {
			obs.Active().Counter("resilience.journal_corrupt").Add(1)
			return nil, 0, &CorruptError{Path: path, what: "journal",
				Reason: fmt.Sprintf("record sequence %d after %d", rec.Seq, seq), kind: ErrCorrupt}
		}
		if got := crc32.ChecksumIEEE(rec.Payload); got != rec.CRC {
			obs.Active().Counter("resilience.journal_corrupt").Add(1)
			return nil, 0, &CorruptError{Path: path, what: "journal",
				Reason: fmt.Sprintf("record %d: payload CRC %08x, record says %08x", rec.Seq, got, rec.CRC), kind: ErrCorrupt}
		}
		payloads = append(payloads, rec.Payload)
		seq++
		off = end
	}
	return payloads, off, nil
}

// Append marshals payload, frames it as the next record and writes it
// with an fsync, so an acknowledged append survives a SIGKILL
// immediately after.
func (j *Journal) Append(payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("journal %s: marshal: %w", j.path, err)
	}
	line, err := json.Marshal(journalRecord{
		Schema:      JournalSchema,
		Fingerprint: j.fingerprint,
		Seq:         j.seq + 1,
		CRC:         crc32.ChecksumIEEE(raw),
		Payload:     raw,
	})
	if err != nil {
		return fmt.Errorf("journal %s: marshal record: %w", j.path, err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("journal %s: write: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal %s: sync: %w", j.path, err)
	}
	j.seq++
	j.size += int64(len(line))
	obs.Active().Counter("resilience.journal_appends").Add(1)
	return nil
}

// Rotate atomically replaces the journal's contents with the given
// payloads — compaction. The replacement is built as a sibling temp
// file (every record re-framed and re-sequenced from 1), fsync'd and
// renamed over the journal, so a crash mid-rotate leaves either the
// old journal or the new one, never a mixture. On success the journal
// continues appending after the new records.
func (j *Journal) Rotate(payloads []any) error {
	var buf bytes.Buffer
	for i, p := range payloads {
		raw, err := json.Marshal(p)
		if err != nil {
			return fmt.Errorf("journal %s: rotate: marshal payload %d: %w", j.path, i, err)
		}
		line, err := json.Marshal(journalRecord{
			Schema:      JournalSchema,
			Fingerprint: j.fingerprint,
			Seq:         i + 1,
			CRC:         crc32.ChecksumIEEE(raw),
			Payload:     raw,
		})
		if err != nil {
			return fmt.Errorf("journal %s: rotate: marshal record %d: %w", j.path, i, err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(j.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("journal %s: rotate: %w", j.path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("journal %s: rotate: write: %w", j.path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal %s: rotate: sync: %w", j.path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal %s: rotate: close: %w", j.path, err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("journal %s: rotate: %w", j.path, err)
	}
	// The old append handle points at the unlinked inode; reopen.
	j.f.Close()
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal %s: rotate: reopen: %w", j.path, err)
	}
	j.f = f
	j.seq = len(payloads)
	j.size = int64(buf.Len())
	obs.Active().Counter("resilience.journal_rotations").Add(1)
	return nil
}

// Size returns the journal's current byte length.
func (j *Journal) Size() int64 { return j.size }

// Records returns the number of records currently in the journal.
func (j *Journal) Records() int { return j.seq }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close releases the append handle. The journal is unusable afterwards.
func (j *Journal) Close() error { return j.f.Close() }
