package resilience

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff computes decorrelated-jitter exponential backoff delays:
// each delay is drawn uniformly from [base, min(cap, prev*3)], so
// retries spread out (no thundering herd of synchronised clients) while
// still growing roughly exponentially toward the cap. The generator is
// seeded, never clocked — for one seed the delay sequence is a pure
// function of the call count, which is what lets the retry tests assert
// exact schedules.
//
// Backoff is safe for concurrent use (the job store shares one across
// workers).
type Backoff struct {
	base, cap time.Duration

	mu   sync.Mutex
	rng  *rand.Rand
	prev time.Duration
}

// NewBackoff returns a backoff over [base, cap] seeded with seed.
// Non-positive base defaults to 100ms; a cap below base is raised to
// base.
func NewBackoff(base, cap time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if cap < base {
		cap = base
	}
	return &Backoff{
		base: base,
		cap:  cap,
		rng:  rand.New(rand.NewSource(seed)),
		prev: base,
	}
}

// Next returns the next delay in the sequence.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	hi := b.prev * 3
	if hi > b.cap {
		hi = b.cap
	}
	d := b.base
	if hi > b.base {
		d = b.base + time.Duration(b.rng.Int63n(int64(hi-b.base)+1))
	}
	b.prev = d
	return d
}

// Reset restarts the sequence as if freshly constructed with the same
// seed state (the RNG stream continues; only the growth window resets).
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.prev = b.base
	b.mu.Unlock()
}
