package resilience

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chaos"
)

type transition struct {
	Op  string `json:"op"`
	Job string `json:"job"`
}

func openAppend(t *testing.T, path, fp string, payloads ...transition) {
	t.Helper()
	j, _, err := OpenJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for _, p := range payloads {
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
}

func replayAll(t *testing.T, path, fp string) []transition {
	t.Helper()
	j, raw, err := OpenJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	out := make([]transition, len(raw))
	for i, r := range raw {
		if err := json.Unmarshal(r, &out[i]); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	want := []transition{{"accepted", "job-1"}, {"running", "job-1"}, {"done", "job-1"}}
	openAppend(t, path, "fp-1", want...)

	got := replayAll(t, path, "fp-1")
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// Appends continue across reopens with the sequence intact.
	openAppend(t, path, "fp-1", transition{"accepted", "job-2"})
	if got := replayAll(t, path, "fp-1"); len(got) != 4 || got[3].Job != "job-2" {
		t.Fatalf("after reopen+append: %+v", got)
	}
}

// TestJournalTornTailDropped pins the recoverable failure mode: a
// SIGKILL mid-append leaves a final line without its newline; replay
// drops exactly that record, truncates the file and continues.
func TestJournalTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	openAppend(t, path, "fp", transition{"accepted", "job-1"}, transition{"running", "job-1"})
	twoRecords, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	openAppend(t, path, "fp", transition{"done", "job-1"})

	// Tear the third record: keep the two complete records plus a few
	// bytes of the third, exactly what a killed writer leaves behind.
	if err := chaos.Truncate(path, twoRecords.Size()+7); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, path, "fp")
	if len(got) != 2 || got[1].Op != "running" {
		t.Fatalf("after torn tail: replayed %+v, want the 2 complete records", got)
	}
	if fi, _ := os.Stat(path); fi.Size() != twoRecords.Size() {
		t.Errorf("torn tail not truncated away: %d bytes, want %d", fi.Size(), twoRecords.Size())
	}

	// The journal must be appendable again on a clean line boundary.
	openAppend(t, path, "fp", transition{"failed", "job-1"})
	if got := replayAll(t, path, "fp"); len(got) != 3 || got[2].Op != "failed" {
		t.Fatalf("append after tail drop: %+v", got)
	}
}

// TestJournalMidFileCorruptionRefused pins the non-recoverable mode: a
// flipped byte in an interior record is bit rot, not crash debris —
// replay must refuse with ErrCorrupt instead of resurrecting jobs from
// a log it cannot trust.
func TestJournalMidFileCorruptionRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	openAppend(t, path, "fp",
		transition{"accepted", "job-1"}, transition{"running", "job-1"}, transition{"done", "job-1"})

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first record's payload (the job ID), well
	// before the final line.
	i := bytes.Index(data, []byte("job-1"))
	if i < 0 {
		t.Fatal("payload bytes not found")
	}
	if err := chaos.FlipByte(path, int64(i)); err != nil {
		t.Fatal(err)
	}
	j, _, err := OpenJournal(path, "fp")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-file flip: error = %v, want ErrCorrupt", err)
	}
	if j != nil {
		t.Fatal("corrupt journal still returned a handle")
	}
}

// A complete final record with a bad CRC is also corruption (an fsync'd
// record cannot be half-written), not a droppable tail.
func TestJournalTailCRCFlipRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	openAppend(t, path, "fp", transition{"accepted", "job-1"}, transition{"running", "job-1"})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.LastIndex(data, []byte("running"))
	if i < 0 {
		t.Fatal("payload bytes not found")
	}
	if err := chaos.FlipByte(path, int64(i)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path, "fp"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tail CRC flip: error = %v, want ErrCorrupt", err)
	}
}

// TestJournalForeignFingerprintRefused pins identity binding: a journal
// written by a different owner (another workload, another store) must
// be refused with ErrMismatch, never merged into this one's state.
func TestJournalForeignFingerprintRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	openAppend(t, path, "owner-a", transition{"accepted", "job-1"})
	_, _, err := OpenJournal(path, "owner-b")
	if !errors.Is(err, ErrMismatch) {
		t.Fatalf("foreign journal: error = %v, want ErrMismatch", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Error("a foreign journal must not read as corruption")
	}
}

func TestJournalSchemaMismatchRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	openAppend(t, path, "fp", transition{"accepted", "job-1"})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(data), JournalSchema, "mbist-journal/0", 1)
	if mutated == string(data) {
		t.Fatal("schema string not found in record")
	}
	if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path, "fp"); !errors.Is(err, ErrMismatch) {
		t.Fatalf("schema mismatch: error = %v, want ErrMismatch", err)
	}
}

func TestJournalSequenceTamperRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	openAppend(t, path, "fp", transition{"accepted", "job-1"}, transition{"running", "job-1"})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate the first record line: the repeated seq 1 after seq 2
	// must be refused.
	nl := bytes.IndexByte(data, '\n')
	doctored := append(data, data[:nl+1]...)
	if err := os.WriteFile(path, doctored, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path, "fp"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sequence tamper: error = %v, want ErrCorrupt", err)
	}
}

func TestJournalRotateCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, _, err := OpenJournal(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(transition{"accepted", "job-1"}); err != nil {
			t.Fatal(err)
		}
	}
	before := j.Size()
	if err := j.Rotate([]any{transition{"done", "job-1"}}); err != nil {
		t.Fatal(err)
	}
	if j.Size() >= before {
		t.Errorf("rotate did not shrink the journal: %d -> %d bytes", before, j.Size())
	}
	if j.Records() != 1 {
		t.Errorf("rotated journal holds %d records, want 1", j.Records())
	}
	// Appends continue after rotation, and a reopen replays the
	// compacted view.
	if err := j.Append(transition{"accepted", "job-2"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	got := replayAll(t, path, "fp")
	if len(got) != 2 || got[0].Op != "done" || got[1].Job != "job-2" {
		t.Fatalf("after rotate+append: %+v", got)
	}
}

func TestJournalEmptyAndMissing(t *testing.T) {
	dir := t.TempDir()
	// Missing file: created empty.
	if got := replayAll(t, filepath.Join(dir, "absent.journal"), "fp"); len(got) != 0 {
		t.Fatalf("fresh journal replayed %+v", got)
	}
	// Existing empty file: no records, no error.
	path := filepath.Join(dir, "empty.journal")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, path, "fp"); len(got) != 0 {
		t.Fatalf("empty journal replayed %+v", got)
	}
}
