package resilience

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCaptureRecoversPanics(t *testing.T) {
	err := Capture(func() { panic("boom") })
	if err == nil {
		t.Fatal("Capture returned nil for a panicking fn")
	}
	pe, ok := AsPanic(err)
	if !ok {
		t.Fatalf("error %v is not a PanicError", err)
	}
	if pe.Value != "boom" {
		t.Errorf("panic value = %v, want boom", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "resilience") {
		t.Errorf("stack does not mention the panicking frame:\n%s", pe.Stack)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Errorf("Error() = %q, want it to carry the panic value", err.Error())
	}
}

func TestCaptureNilOnSuccess(t *testing.T) {
	if err := Capture(func() {}); err != nil {
		t.Fatalf("Capture of a clean fn = %v", err)
	}
	if _, ok := AsPanic(errors.New("plain")); ok {
		t.Error("AsPanic matched a plain error")
	}
	if _, ok := AsPanic(fmt.Errorf("wrapped: %w", &PanicError{Value: 1})); !ok {
		t.Error("AsPanic missed a wrapped PanicError")
	}
}

type payload struct {
	Name string `json:"name"`
	Bits string `json:"bits"`
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	in := payload{Name: "marchc", Bits: MarshalBits([]bool{true, false, true})}
	if err := Save(path, "fp-1", in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, "fp-1", &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
	// Overwrite with new content: the rename path must replace cleanly.
	in.Name = "marchb"
	if err := Save(path, "fp-1", in); err != nil {
		t.Fatal(err)
	}
	if err := Load(path, "fp-1", &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "marchb" {
		t.Errorf("overwrite not visible: %+v", out)
	}
}

func TestCheckpointMissingFile(t *testing.T) {
	var out payload
	err := Load(filepath.Join(t.TempDir(), "absent.json"), "fp", &out)
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing checkpoint error = %v, want ErrNotExist", err)
	}
}

func TestCheckpointTruncationDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	if err := Save(path, "fp", payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, "fp", &out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated checkpoint error = %v, want ErrCorrupt", err)
	}
}

func TestCheckpointBitFlipDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	if err := Save(path, "fp", payload{Name: "marchc"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a character inside the payload's string value, keeping the
	// JSON well-formed so only the CRC can catch it.
	i := strings.Index(string(data), "marchc")
	if i < 0 {
		t.Fatal("payload value not found")
	}
	data[i] = 'X'
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, "fp", &out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flipped checkpoint error = %v, want ErrCorrupt", err)
	}
}

func TestCheckpointFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	if err := Save(path, "workload-a", payload{}); err != nil {
		t.Fatal(err)
	}
	var out payload
	err := Load(path, "workload-b", &out)
	if !errors.Is(err, ErrMismatch) {
		t.Fatalf("fingerprint mismatch error = %v, want ErrMismatch", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Error("mismatch must not read as corruption")
	}
}

func TestCheckpointSchemaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	if err := Save(path, "fp", payload{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(data), Schema, "mbist-checkpoint/0", 1)
	if mutated == string(data) {
		t.Fatal("schema string not found in envelope")
	}
	if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, "fp", &out); !errors.Is(err, ErrMismatch) {
		t.Fatalf("schema mismatch error = %v, want ErrMismatch", err)
	}
}

func TestSaveLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := Save(path, "fp", payload{}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "state.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("directory after Save = %v, want exactly state.json", names)
	}
}

func TestBitsetRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 1000} {
		bits := make([]bool, n)
		for i := range bits {
			bits[i] = i%3 == 0
		}
		s := MarshalBits(bits)
		got, err := UnmarshalBits(s, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("n=%d: bit %d = %v, want %v", n, i, got[i], bits[i])
			}
		}
	}
}

func TestBitsetRejectsBadInput(t *testing.T) {
	if _, err := UnmarshalBits("abc", 8); err == nil { // odd length
		t.Error("odd-length hex accepted")
	}
	if _, err := UnmarshalBits("zz", 8); err == nil {
		t.Error("non-hex accepted")
	}
	if _, err := UnmarshalBits("ffff", 8); err == nil {
		t.Error("wrong bit count accepted")
	}
	if _, err := UnmarshalBits("80", 7); err == nil {
		t.Error("set padding bit accepted")
	}
}
