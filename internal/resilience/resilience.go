// Package resilience is the grading pipeline's failure-handling
// substrate: panic capture for worker isolation, and a versioned,
// corruption-detecting, atomically-written JSON checkpoint store for
// interruptible matrix-scale sweeps.
//
// The package is deliberately generic — it knows nothing about faults,
// coverage reports or march algorithms. Higher layers (internal/coverage,
// cmd/mbistcov) decide what goes into a checkpoint and what to do with a
// captured panic; this package guarantees the mechanics: a panic never
// escapes Capture, a checkpoint on disk is either a complete verified
// write or the previous complete verified write, and a corrupt or
// mismatched checkpoint is detected and reported, never silently loaded.
package resilience

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// PanicError wraps a recovered panic value so it can travel through
// ordinary error plumbing. Stack holds the goroutine stack captured at
// recovery time (trimmed by the runtime, not by us).
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// Capture runs fn and converts a panic into a *PanicError instead of
// unwinding further. A nil return means fn completed normally. Workers
// wrap per-unit work in Capture so one poisoned work item cannot take
// down the pool.
func Capture(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}

// AsPanic reports whether err (anywhere in its chain) is a captured
// panic, returning it when so.
func AsPanic(err error) (*PanicError, bool) {
	var pe *PanicError
	if errors.As(err, &pe) {
		return pe, true
	}
	return nil, false
}
