package memory

import (
	"testing"
	"testing/quick"
)

func TestSRAMReadWrite(t *testing.T) {
	m := NewSRAM(16, 8, 1)
	for a := 0; a < 16; a++ {
		m.Write(0, a, uint64(a*3))
	}
	for a := 0; a < 16; a++ {
		if got := m.Read(0, a); got != uint64(a*3) {
			t.Errorf("Read(%d) = %d, want %d", a, got, a*3)
		}
	}
}

func TestSRAMWidthMask(t *testing.T) {
	m := NewSRAM(4, 4, 1)
	m.Write(0, 0, 0xFFFF)
	if got := m.Read(0, 0); got != 0xF {
		t.Errorf("4-bit write of 0xFFFF reads %x, want F", got)
	}
	m64 := NewSRAM(2, 64, 1)
	m64.Write(0, 0, ^uint64(0))
	if got := m64.Read(0, 0); got != ^uint64(0) {
		t.Errorf("64-bit word truncated: %x", got)
	}
}

func TestSRAMMultiportShareArray(t *testing.T) {
	m := NewSRAM(8, 1, 3)
	m.Write(2, 5, 1)
	for p := 0; p < 3; p++ {
		if got := m.Read(p, 5); got != 1 {
			t.Errorf("port %d sees %d, want 1", p, got)
		}
	}
}

func TestSRAMBoundsPanic(t *testing.T) {
	m := NewSRAM(4, 1, 1)
	for _, f := range []func(){
		func() { m.Read(0, 4) },
		func() { m.Read(0, -1) },
		func() { m.Read(1, 0) },
		func() { m.Write(0, 99, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestNewSRAMGeometryPanics(t *testing.T) {
	for _, g := range [][3]int{{0, 1, 1}, {4, 0, 1}, {4, 65, 1}, {4, 1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSRAM%v did not panic", g)
				}
			}()
			NewSRAM(g[0], g[1], g[2])
		}()
	}
}

func TestFillAndEqual(t *testing.T) {
	a := NewSRAM(32, 2, 1)
	b := NewSRAM(32, 2, 1)
	Fill(a, 0b11)
	if Equal(a, b) {
		t.Error("filled and empty memories compare equal")
	}
	Fill(b, 0b11)
	if !Equal(a, b) {
		t.Error("identically filled memories compare unequal")
	}
	c := NewSRAM(16, 2, 1)
	if Equal(a, c) {
		t.Error("different-size memories compare equal")
	}
}

// TestEqualChecksPorts pins the port count as part of the geometry:
// two memories with identical contents but different port counts are
// not interchangeable under a multiport march pass.
func TestEqualChecksPorts(t *testing.T) {
	a := NewSRAM(8, 2, 1)
	b := NewSRAM(8, 2, 2)
	Fill(a, 0b01)
	Fill(b, 0b01)
	if Equal(a, b) {
		t.Error("memories with different port counts compare equal")
	}
	c := NewSRAM(8, 2, 2)
	Fill(c, 0b01)
	if !Equal(b, c) {
		t.Error("same-geometry identically filled memories compare unequal")
	}
}

// Property: a write is durable and independent of other addresses.
func TestWriteReadProperty(t *testing.T) {
	m := NewSRAM(64, 16, 1)
	f := func(addr uint8, data uint16, other uint8, otherData uint16) bool {
		a := int(addr) % 64
		o := int(other) % 64
		if a == o {
			return true
		}
		m.Write(0, a, uint64(data))
		m.Write(0, o, uint64(otherData))
		return m.Read(0, a) == uint64(data)&0xFFFF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPauseIsNoOp(t *testing.T) {
	m := NewSRAM(8, 1, 1)
	Fill(m, 1)
	m.Pause()
	for a := 0; a < 8; a++ {
		if m.Read(0, a) != 1 {
			t.Fatalf("Pause changed fault-free memory at %d", a)
		}
	}
}
