// Package memory models the memory under test as seen by a BIST
// controller: an addressable array of words with one or more read/write
// ports and an explicit Pause operation (the "hold" phase data-retention
// tests insert between march elements).
package memory

import "fmt"

// Memory is the controller-visible interface of a memory under test.
// Implementations must tolerate any port in [0,Ports) and address in
// [0,Size); data words use the low Width bits.
type Memory interface {
	// Size returns the number of word addresses.
	Size() int
	// Width returns the bits per word (1 for bit-oriented memories).
	Width() int
	// Ports returns the number of access ports.
	Ports() int
	// Read returns the word at addr through the given port.
	Read(port, addr int) uint64
	// Write stores the low Width bits of data at addr through the port.
	Write(port, addr int, data uint64)
	// Pause models a test delay phase (data-retention excitation).
	// Fault-free memories treat it as a no-op.
	Pause()
}

// SRAM is a fault-free behavioural static RAM.
type SRAM struct {
	size  int
	width int
	ports int
	mask  uint64
	words []uint64
}

// NewSRAM returns a fault-free memory of the given geometry. Width must
// be in [1,64]; size and ports must be positive.
func NewSRAM(size, width, ports int) *SRAM {
	if size <= 0 {
		panic(fmt.Sprintf("memory: size %d must be positive", size))
	}
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("memory: width %d out of [1,64]", width))
	}
	if ports <= 0 {
		panic(fmt.Sprintf("memory: ports %d must be positive", ports))
	}
	return &SRAM{
		size:  size,
		width: width,
		ports: ports,
		mask:  wordMask(width),
		words: make([]uint64, size),
	}
}

func wordMask(width int) uint64 {
	if width == 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(width) - 1
}

// Size returns the number of word addresses.
func (m *SRAM) Size() int { return m.size }

// Width returns the bits per word.
func (m *SRAM) Width() int { return m.width }

// Ports returns the number of access ports.
func (m *SRAM) Ports() int { return m.ports }

func (m *SRAM) check(port, addr int) {
	if port < 0 || port >= m.ports {
		panic(fmt.Sprintf("memory: port %d out of [0,%d)", port, m.ports))
	}
	if addr < 0 || addr >= m.size {
		panic(fmt.Sprintf("memory: address %d out of [0,%d)", addr, m.size))
	}
}

// Read returns the word at addr.
func (m *SRAM) Read(port, addr int) uint64 {
	m.check(port, addr)
	return m.words[addr]
}

// Write stores data at addr.
func (m *SRAM) Write(port, addr int, data uint64) {
	m.check(port, addr)
	m.words[addr] = data & m.mask
}

// Pause is a no-op on a fault-free memory.
func (m *SRAM) Pause() {}

// Fill writes the same word to every address through port 0.
func Fill(m Memory, data uint64) {
	for a := 0; a < m.Size(); a++ {
		m.Write(0, a, data)
	}
}

// Equal reports whether two memories have identical geometry and
// contents (as observed through port 0).
func Equal(a, b Memory) bool {
	if a.Size() != b.Size() || a.Width() != b.Width() || a.Ports() != b.Ports() {
		return false
	}
	for i := 0; i < a.Size(); i++ {
		if a.Read(0, i) != b.Read(0, i) {
			return false
		}
	}
	return true
}
