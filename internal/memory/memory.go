// Package memory models the memory under test as seen by a BIST
// controller: an addressable array of words with one or more read/write
// ports and an explicit Pause operation (the "hold" phase data-retention
// tests insert between march elements).
//
// # Panic contract
//
// Validate is the error-returning geometry check; callers holding
// unvalidated user input (the mbist facade, command-line tools) run it
// first and surface the error. The constructors and the per-operation
// Read/Write bounds checks panic instead of returning errors: they sit
// in fault-grading hot loops that execute millions of times per sweep
// over geometry the caller has already validated, so a violation there
// is a programming error (a miscompiled address stream, a corrupted
// controller model), not an input error. The grading pipeline's worker
// isolation (internal/resilience.Capture) converts such panics into
// quarantined verdicts rather than crashed sweeps.
package memory

import "fmt"

// Validate checks a memory geometry: size and ports must be positive
// and width in [1,64]. It is the error-returning front door for
// unvalidated input; NewSRAM panics on the same conditions (see the
// package panic contract).
func Validate(size, width, ports int) error {
	if size <= 0 {
		return fmt.Errorf("memory: size %d must be positive", size)
	}
	if width < 1 || width > 64 {
		return fmt.Errorf("memory: width %d out of [1,64]", width)
	}
	if ports <= 0 {
		return fmt.Errorf("memory: ports %d must be positive", ports)
	}
	return nil
}

// Memory is the controller-visible interface of a memory under test.
// Implementations must tolerate any port in [0,Ports) and address in
// [0,Size); data words use the low Width bits.
type Memory interface {
	// Size returns the number of word addresses.
	Size() int
	// Width returns the bits per word (1 for bit-oriented memories).
	Width() int
	// Ports returns the number of access ports.
	Ports() int
	// Read returns the word at addr through the given port.
	Read(port, addr int) uint64
	// Write stores the low Width bits of data at addr through the port.
	Write(port, addr int, data uint64)
	// Pause models a test delay phase (data-retention excitation).
	// Fault-free memories treat it as a no-op.
	Pause()
}

// SRAM is a fault-free behavioural static RAM.
type SRAM struct {
	size  int
	width int
	ports int
	mask  uint64
	words []uint64
}

// NewSRAM returns a fault-free memory of the given geometry. Width must
// be in [1,64]; size and ports must be positive; it panics otherwise —
// run Validate first on unvalidated input (see the package panic
// contract).
func NewSRAM(size, width, ports int) *SRAM {
	if err := Validate(size, width, ports); err != nil {
		panic(err.Error())
	}
	return &SRAM{
		size:  size,
		width: width,
		ports: ports,
		mask:  wordMask(width),
		words: make([]uint64, size),
	}
}

func wordMask(width int) uint64 {
	if width == 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(width) - 1
}

// Size returns the number of word addresses.
func (m *SRAM) Size() int { return m.size }

// Width returns the bits per word.
func (m *SRAM) Width() int { return m.width }

// Ports returns the number of access ports.
func (m *SRAM) Ports() int { return m.ports }

func (m *SRAM) check(port, addr int) {
	if port < 0 || port >= m.ports {
		panic(fmt.Sprintf("memory: port %d out of [0,%d)", port, m.ports))
	}
	if addr < 0 || addr >= m.size {
		panic(fmt.Sprintf("memory: address %d out of [0,%d)", addr, m.size))
	}
}

// Read returns the word at addr.
func (m *SRAM) Read(port, addr int) uint64 {
	m.check(port, addr)
	return m.words[addr]
}

// Write stores data at addr.
func (m *SRAM) Write(port, addr int, data uint64) {
	m.check(port, addr)
	m.words[addr] = data & m.mask
}

// Pause is a no-op on a fault-free memory.
func (m *SRAM) Pause() {}

// Fill writes the same word to every address through port 0.
func Fill(m Memory, data uint64) {
	for a := 0; a < m.Size(); a++ {
		m.Write(0, a, data)
	}
}

// Equal reports whether two memories have identical geometry and
// contents (as observed through port 0).
func Equal(a, b Memory) bool {
	if a.Size() != b.Size() || a.Width() != b.Width() || a.Ports() != b.Ports() {
		return false
	}
	for i := 0; i < a.Size(); i++ {
		if a.Read(0, i) != b.Read(0, i) {
			return false
		}
	}
	return true
}
