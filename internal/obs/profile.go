package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags bundles the standard observability command-line flags shared
// by the cmd binaries: CPU/heap profiling, execution tracing, and the
// metrics snapshot dump.
type Flags struct {
	CPUProfile string
	MemProfile string
	Trace      string
	Metrics    bool
}

// Register declares the flags on fs (use flag.CommandLine in a main).
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&f.Trace, "trace", "", "write a runtime execution trace to this file")
	fs.BoolVar(&f.Metrics, "metrics", false, "collect metrics and dump the snapshot to stderr at exit")
}

// Start begins whatever the flags request: CPU profiling, execution
// tracing, and global metrics collection. The returned stop function
// must be called exactly once before the process exits (including on
// error paths — keep the work in a run() that returns instead of
// calling log.Fatal); it flushes the profiles, writes the heap
// profile, and dumps the metrics snapshot to stderr.
func (f *Flags) Start() (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
	}
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
	}
	if f.Trace != "" {
		traceFile, err = os.Create(f.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
	}
	if f.Metrics {
		Enable()
	}
	return func() error {
		cleanup()
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err != nil {
				return fmt.Errorf("obs: memprofile: %w", err)
			}
			runtime.GC() // settle live heap before the snapshot
			err = pprof.WriteHeapProfile(mf)
			if cerr := mf.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("obs: memprofile: %w", err)
			}
		}
		if f.Metrics {
			if r := Active(); r != nil {
				fmt.Fprintln(os.Stderr, "metrics snapshot:")
				WriteText(os.Stderr, r.Snapshot())
			}
			Disable()
		}
		return nil
	}, nil
}
