package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeSpanBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(3)
	c.Add(4)
	if got := c.Value(); got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
	if r.Counter("c") != c {
		t.Error("second lookup returned a different counter")
	}

	g := r.Gauge("g")
	g.Set(5)
	g.Raise(3)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge after Raise(3) = %d, want 5", got)
	}
	g.Raise(9)
	if got := g.Value(); got != 9 {
		t.Errorf("gauge after Raise(9) = %d, want 9", got)
	}

	s := r.Span("s")
	for _, v := range []int64{4, 2, 9} {
		s.Observe(v)
	}
	count, sum, min, max := s.Stats()
	if count != 3 || sum != 15 || min != 2 || max != 9 {
		t.Errorf("span stats = (%d,%d,%d,%d), want (3,15,2,9)", count, sum, min, max)
	}
}

func TestEmptySpanStats(t *testing.T) {
	s := NewRegistry().Span("s")
	if count, sum, min, max := s.Stats(); count != 0 || sum != 0 || min != 0 || max != 0 {
		t.Errorf("empty span stats = (%d,%d,%d,%d), want zeros", count, sum, min, max)
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var r *Registry
	c, g, s := r.Counter("c"), r.Gauge("g"), r.Span("s")
	if c != nil || g != nil || s != nil {
		t.Fatal("nil registry handed out non-nil instruments")
	}
	c.Add(1)
	g.Set(1)
	g.Raise(1)
	s.Observe(1)
	s.ObserveSince(s.Start())
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil instruments reported non-zero values")
	}
	if !s.Start().IsZero() {
		t.Error("nil span Start read the clock")
	}
	if got := r.Snapshot(); got != nil {
		t.Errorf("nil registry snapshot = %v, want nil", got)
	}
}

// TestNoopInstrumentsDoNotAllocate is the disabled-path contract: with
// no active registry, instrumented hot paths must not allocate.
func TestNoopInstrumentsDoNotAllocate(t *testing.T) {
	Disable()
	if n := testing.AllocsPerRun(100, func() {
		r := Active()
		c := r.Counter("x")
		c.Add(1)
		r.Gauge("y").Set(2)
		sp := r.Span("z")
		sp.Observe(3)
		sp.ObserveSince(sp.Start())
	}); n != 0 {
		t.Errorf("disabled instrument path allocates %.1f objects per run, want 0", n)
	}
}

func TestEnableDisableGlobal(t *testing.T) {
	defer Disable()
	if Active() != nil {
		t.Fatal("registry active before Enable")
	}
	r := Enable()
	if Active() != r {
		t.Fatal("Active does not return the enabled registry")
	}
	r.Counter("evt").Add(1)
	Disable()
	if Active() != nil {
		t.Fatal("registry still active after Disable")
	}
}

// TestConcurrentAccumulationIsExact hammers one counter, gauge and
// span from many goroutines (run under -race in CI) and checks the
// totals are exact.
func TestConcurrentAccumulationIsExact(t *testing.T) {
	r := NewRegistry()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Lookups race with other goroutines' lookups on purpose.
			c := r.Counter("ops")
			g := r.Gauge("hwm")
			s := r.Span("dist")
			for i := 0; i < each; i++ {
				c.Add(1)
				g.Raise(int64(w*each + i))
				s.Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("ops").Value(); got != workers*each {
		t.Errorf("counter = %d, want %d", got, workers*each)
	}
	if got := r.Gauge("hwm").Value(); got != workers*each-1 {
		t.Errorf("gauge high-water mark = %d, want %d", got, workers*each-1)
	}
	count, sum, min, max := r.Span("dist").Stats()
	wantSum := int64(workers) * each * (each - 1) / 2
	if count != workers*each || sum != wantSum || min != 0 || max != each-1 {
		t.Errorf("span stats = (%d,%d,%d,%d), want (%d,%d,0,%d)",
			count, sum, min, max, workers*each, wantSum, each-1)
	}
}

// TestSnapshotDeterministic runs the same fixed workload on two fresh
// registries — with concurrency, so accumulation order differs — and
// requires byte-identical snapshots.
func TestSnapshotDeterministic(t *testing.T) {
	workload := func() []Metric {
		r := NewRegistry()
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					r.Counter("a.ops").Add(1)
					r.Counter("b.ops").Add(2)
					r.Span("batch").Observe(int64(i % 63))
				}
				r.Gauge("workers").Set(4)
			}(w)
		}
		wg.Wait()
		return r.Snapshot()
	}
	first, second := workload(), workload()
	if !reflect.DeepEqual(first, second) {
		t.Errorf("snapshots differ:\n%v\n%v", first, second)
	}
	var b1, b2 bytes.Buffer
	if err := WriteJSON(&b1, first); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b2, second); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("JSON renderings differ for identical workloads")
	}
}

func TestSnapshotSortedAndRenders(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(1)
	r.Span("m.mid").Observe(7)
	r.Gauge("a.first").Set(2)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(snap))
	}
	for i, want := range []string{"a.first", "m.mid", "z.last"} {
		if snap[i].Name != want {
			t.Errorf("snapshot[%d] = %s, want %s", i, snap[i].Name, want)
		}
	}
	var text bytes.Buffer
	WriteText(&text, snap)
	if text.Len() == 0 {
		t.Error("WriteText produced nothing")
	}
	var jsonBuf bytes.Buffer
	if err := WriteJSON(&jsonBuf, snap); err != nil {
		t.Fatal(err)
	}
	var decoded []Metric
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
}

func TestSpanObserveSince(t *testing.T) {
	s := NewRegistry().Span("t")
	start := s.Start()
	if start.IsZero() {
		t.Fatal("enabled span Start returned the zero time")
	}
	time.Sleep(time.Millisecond)
	s.ObserveSince(start)
	count, sum, _, _ := s.Stats()
	if count != 1 || sum < int64(time.Millisecond) {
		t.Errorf("timed span stats = (count %d, sum %dns), want 1 sample >= 1ms", count, sum)
	}
}
