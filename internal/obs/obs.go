// Package obs is the repo's zero-dependency observability substrate:
// named atomic counters, gauges and span (value/latency distribution)
// accumulators collected in a Registry, with deterministic snapshots
// for dumping and testing.
//
// The package is built so that instrumented hot paths cost nothing
// when metrics are disabled: Registry lookups on a nil registry return
// nil instruments, and every instrument method is a nil-receiver
// no-op. Instrumented code therefore holds *Counter/*Gauge/*Span
// fields unconditionally and calls them unconditionally; with no
// active registry each call is a predicted-not-taken branch and zero
// allocations (asserted by TestNoopInstrumentsDoNotAllocate).
//
// The global registry is process-wide: Enable installs a fresh one
// (commands do this for their -metrics flag), Active returns it (nil
// when disabled), Disable removes it. Code that wants isolated
// collection — tests, the benchmark harness — can use NewRegistry
// directly and never touch the global.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The nil
// Counter is a valid no-op instrument.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins atomic gauge. The nil Gauge is a valid
// no-op instrument.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Raise lifts the gauge to n if n exceeds the current value — a
// high-water mark. No-op on a nil receiver.
func (g *Gauge) Raise(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Span accumulates a distribution of int64 samples — batch sizes,
// lane occupancies, or durations in nanoseconds — as count/sum/min/max.
// The nil Span is a valid no-op instrument.
type Span struct {
	count atomic.Int64
	sum   atomic.Int64
	min   atomic.Int64 // initialised to MaxInt64
	max   atomic.Int64 // initialised to MinInt64
}

func newSpan() *Span {
	s := &Span{}
	s.min.Store(math.MaxInt64)
	s.max.Store(math.MinInt64)
	return s
}

// Observe records one sample. No-op on a nil receiver.
func (s *Span) Observe(v int64) {
	if s == nil {
		return
	}
	s.count.Add(1)
	s.sum.Add(v)
	for {
		m := s.min.Load()
		if v >= m || s.min.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m := s.max.Load()
		if v <= m || s.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Start returns the current time for a later ObserveSince, or the zero
// time on a nil receiver — so disabled timing skips the clock read.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the nanoseconds elapsed since start. No-op on a
// nil receiver or a zero start (the disabled-path value from Start).
func (s *Span) ObserveSince(start time.Time) {
	if s == nil || start.IsZero() {
		return
	}
	s.Observe(time.Since(start).Nanoseconds())
}

// Stats returns the accumulated distribution. Min and max are 0 when
// no samples were observed. All zeros on a nil receiver.
func (s *Span) Stats() (count, sum, min, max int64) {
	if s == nil {
		return 0, 0, 0, 0
	}
	count = s.count.Load()
	if count == 0 {
		return 0, s.sum.Load(), 0, 0
	}
	return count, s.sum.Load(), s.min.Load(), s.max.Load()
}

// Registry holds named instruments. The nil Registry hands out nil
// instruments, so a disabled metrics path needs no branching at the
// lookup sites either.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	spans    map[string]*Span
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		spans:    make(map[string]*Span),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Span returns the named span, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Span(name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.spans[name]
	if !ok {
		s = newSpan()
		r.spans[name] = s
	}
	return s
}

// Metric is one snapshotted instrument. Counter and gauge metrics use
// Value; span metrics use Count/Sum/Min/Max.
type Metric struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"` // "counter", "gauge" or "span"
	Value int64  `json:"value,omitempty"`
	Count int64  `json:"count,omitempty"`
	Sum   int64  `json:"sum,omitempty"`
	Min   int64  `json:"min,omitempty"`
	Max   int64  `json:"max,omitempty"`
}

// Snapshot returns every instrument's current state sorted by name —
// deterministic for a fixed workload regardless of collection order.
// Returns nil on a nil registry.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.spans))
	for name, c := range r.counters {
		ms = append(ms, Metric{Name: name, Kind: "counter", Value: c.Value()})
	}
	for name, g := range r.gauges {
		ms = append(ms, Metric{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, s := range r.spans {
		count, sum, min, max := s.Stats()
		ms = append(ms, Metric{Name: name, Kind: "span", Count: count, Sum: sum, Min: min, Max: max})
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	return ms
}

// WriteText renders a snapshot as an aligned human-readable table.
func WriteText(w io.Writer, ms []Metric) {
	width := 0
	for _, m := range ms {
		if len(m.Name) > width {
			width = len(m.Name)
		}
	}
	for _, m := range ms {
		switch m.Kind {
		case "span":
			avg := float64(0)
			if m.Count > 0 {
				avg = float64(m.Sum) / float64(m.Count)
			}
			fmt.Fprintf(w, "%-*s  count=%d sum=%d avg=%.1f min=%d max=%d\n",
				width, m.Name, m.Count, m.Sum, avg, m.Min, m.Max)
		default:
			fmt.Fprintf(w, "%-*s  %d\n", width, m.Name, m.Value)
		}
	}
}

// WriteJSON renders a snapshot as an indented JSON array.
func WriteJSON(w io.Writer, ms []Metric) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ms)
}

// active is the process-wide registry; nil means metrics are disabled
// (the default).
var active atomic.Pointer[Registry]

// Enable installs a fresh global registry and returns it.
func Enable() *Registry {
	r := NewRegistry()
	active.Store(r)
	return r
}

// Disable removes the global registry; subsequent Active calls return
// nil and instruments already handed out keep accumulating unobserved.
func Disable() {
	active.Store(nil)
}

// Active returns the global registry, or nil when metrics are
// disabled. Instrumented code calls this once per construction or run,
// not per event.
func Active() *Registry {
	return active.Load()
}
