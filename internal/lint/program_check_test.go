package lint

import (
	"testing"

	"repro/internal/march"
	"repro/internal/microbist"
)

func prog(ins ...microbist.Instruction) *microbist.Program {
	return &microbist.Program{Name: "test", Instructions: ins}
}

func TestEmptyProgram(t *testing.T) {
	wantCheck(t, CheckProgram("test", prog()), "empty-program", 1)
}

func TestIllegalEncodings(t *testing.T) {
	fs := CheckProgram("test", prog(
		microbist.Instruction{Read: true, Write: true, AddrInc: true, Cond: microbist.CondHold},
		microbist.Instruction{Cond: microbist.Cond(9)},
		microbist.Instruction{Cond: microbist.CondTerminate},
	))
	wantCheck(t, fs, "illegal-encoding", 2)
}

func TestJumpOutOfRange(t *testing.T) {
	// A Repeat before instruction 2 branches to instruction 1, but there
	// is no completed block in front of it to repeat.
	fs := CheckProgram("test", prog(
		microbist.Instruction{Write: true, Cond: microbist.CondRepeat},
		microbist.Instruction{Cond: microbist.CondTerminate},
	))
	wantCheck(t, fs, "jump-out-of-range", 1)
}

func TestRepeatAfterBlockIsLegal(t *testing.T) {
	fs := CheckProgram("test", prog(
		microbist.Instruction{Write: true, AddrInc: true, Cond: microbist.CondHold},
		microbist.Instruction{Read: true, AddrInc: true, Cond: microbist.CondHold},
		microbist.Instruction{Cond: microbist.CondRepeat},
		microbist.Instruction{Cond: microbist.CondTerminate},
	))
	wantCheck(t, fs, "jump-out-of-range", 0)
	wantCheck(t, fs, "non-termination", 0)
}

func TestNonTerminatingHold(t *testing.T) {
	// Hold without AddrInc waits forever for a last-address flag that
	// never advances.
	fs := CheckProgram("test", prog(
		microbist.Instruction{Write: true, Cond: microbist.CondHold},
		microbist.Instruction{Cond: microbist.CondTerminate},
	))
	wantCheck(t, fs, "non-termination", 1)
}

func TestNonTerminatingLoopBack(t *testing.T) {
	// A Save..LoopBack element in which no instruction steps the address
	// generator can never reach the terminal address.
	fs := CheckProgram("test", prog(
		microbist.Instruction{Cond: microbist.CondSave},
		microbist.Instruction{Write: true, Cond: microbist.CondNop},
		microbist.Instruction{Read: true, Cond: microbist.CondLoopBack},
		microbist.Instruction{Cond: microbist.CondTerminate},
	))
	wantCheck(t, fs, "non-termination", 1)
}

func TestLoopBackWithoutSave(t *testing.T) {
	fs := CheckProgram("test", prog(
		microbist.Instruction{Write: true, AddrInc: true, Cond: microbist.CondLoopBack},
		microbist.Instruction{Cond: microbist.CondTerminate},
	))
	wantCheck(t, fs, "loopback-no-save", 1)
}

func TestNonTerminatingLoopData(t *testing.T) {
	// LoopData branches until the last background, but with DataInc clear
	// the decoder never steps the background generator.
	fs := CheckProgram("test", prog(
		microbist.Instruction{Write: true, AddrInc: true, Cond: microbist.CondHold},
		microbist.Instruction{Cond: microbist.CondLoopData},
		microbist.Instruction{Cond: microbist.CondTerminate},
	))
	wantCheck(t, fs, "non-termination", 1)
}

func TestUnreachableCode(t *testing.T) {
	fs := CheckProgram("test", prog(
		microbist.Instruction{Write: true, AddrInc: true, Cond: microbist.CondHold},
		microbist.Instruction{Cond: microbist.CondTerminate},
		microbist.Instruction{Read: true, AddrInc: true, Cond: microbist.CondHold}, // dead
		microbist.Instruction{Cond: microbist.CondTerminate},                       // dead
	))
	wantCheck(t, fs, "unreachable-code", 2)
}

func TestFallOffEnd(t *testing.T) {
	fs := CheckProgram("test", prog(
		microbist.Instruction{Write: true, AddrInc: true, Cond: microbist.CondHold},
		microbist.Instruction{Read: true, Cond: microbist.CondNop}, // advances past the end
	))
	wantCheck(t, fs, "fall-off-end", 1)
}

func TestFallOffEndOnUnreachablePathIgnored(t *testing.T) {
	fs := CheckProgram("test", prog(
		microbist.Instruction{Cond: microbist.CondTerminate},
		microbist.Instruction{Read: true, Cond: microbist.CondNop}, // unreachable
	))
	wantCheck(t, fs, "fall-off-end", 0)
	wantCheck(t, fs, "unreachable-code", 1)
}

func TestSourceMapMismatch(t *testing.T) {
	p := prog(
		microbist.Instruction{Write: true, AddrInc: true, Cond: microbist.CondHold},
		microbist.Instruction{Cond: microbist.CondTerminate},
	)
	p.Source = []microbist.SourceRef{{Element: 0, Op: 0}}
	wantCheck(t, CheckProgram("test", p), "source-map", 1)
}

func TestIneffectiveFields(t *testing.T) {
	fs := CheckProgram("test", prog(
		// DataInc outside a data loop, AddrInc on Terminate.
		microbist.Instruction{Write: true, AddrInc: true, DataInc: true, Cond: microbist.CondHold},
		microbist.Instruction{AddrInc: true, Cond: microbist.CondTerminate},
	))
	wantCheck(t, fs, "ineffective-field", 2)
}

func TestAssembledProgramsAreClean(t *testing.T) {
	lib := march.Library()
	for name, mk := range lib {
		for _, cfg := range []microbist.AssembleOpts{
			{},
			{WordOriented: true},
			{WordOriented: true, Multiport: true},
		} {
			p, err := microbist.Assemble(mk(), cfg)
			if err != nil {
				t.Fatalf("assemble %s %+v: %v", name, cfg, err)
			}
			if fs := CheckProgram(name, p); len(fs) != 0 {
				t.Errorf("%s %+v: assembler output has findings: %v", name, cfg, fs)
			}
		}
	}
}
