package lint

import (
	"fmt"
	"sort"

	"repro/internal/artifact"
	"repro/internal/fsmbist"
	"repro/internal/hardbist"
	"repro/internal/march"
	"repro/internal/microbist"
	"repro/internal/netlist"
)

// Arch selects one synthesised controller family for the matrix.
type Arch int

// The four synthesised architecture variants the matrix covers: the
// microcode-based controller, its Table 3 scan-only storage re-design,
// the programmable FSM-based unit and the hardwired Moore machines.
const (
	Microcode Arch = iota
	MicrocodeScan
	ProgFSM
	Hardwired
)

var archNames = [...]string{"microcode", "microcode-scan", "fsm", "hardwired"}

func (a Arch) String() string {
	if a >= 0 && int(a) < len(archNames) {
		return archNames[a]
	}
	return fmt.Sprintf("arch(%d)", int(a))
}

// Architectures returns the synthesised matrix axes in order.
func Architectures() []Arch {
	return []Arch{Microcode, MicrocodeScan, ProgFSM, Hardwired}
}

// geometry is a memory configuration of the matrix. The three entries
// mirror the paper's evaluation set (1K addresses; bit-oriented,
// word-oriented and dual-port word-oriented).
type geometry struct {
	name     string
	addrBits int
	width    int
	ports    int
}

var geometries = []geometry{
	{name: "bit", addrBits: 10, width: 1, ports: 1},
	{name: "word", addrBits: 10, width: 8, ports: 1},
	{name: "multiport", addrBits: 10, width: 8, ports: 2},
}

// MatrixOpts tunes what the full-matrix lint covers.
type MatrixOpts struct {
	// Algorithms restricts the march library entries (nil = all).
	Algorithms []string
	// Archs restricts the architecture variants (nil = all four).
	Archs []Arch
	// DelayTimerBits sizes the retention timer for algorithms with
	// pauses (0 selects the evaluation default of 8).
	DelayTimerBits int
}

// Matrix lints the full synthesised matrix: every march library
// algorithm as a march artifact, its microcode program (with fold
// verification) per word/multiport configuration, and the gate-level
// netlist of every architecture variant at every geometry (controller
// alone and full unit with datapath). It returns the aggregate report;
// the error is non-nil only when an artifact cannot be built at all.
func Matrix(opts MatrixOpts) (*Report, error) {
	lib := march.Library()
	names := opts.Algorithms
	if names == nil {
		for name := range lib {
			names = append(names, name)
		}
		sort.Strings(names)
	}
	archs := opts.Archs
	if archs == nil {
		archs = Architectures()
	}
	timerBits := opts.DelayTimerBits
	if timerBits == 0 {
		timerBits = 8
	}

	rep := &Report{}
	for _, name := range names {
		mk, ok := lib[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown algorithm %q", name)
		}
		alg := mk()

		rep.Artifacts++
		rep.Add(CheckMarch("march:"+name, alg)...)
		if _, fold, ok := alg.Folded(); ok {
			rep.Artifacts++
			rep.Add(CheckFold("fold:"+name, alg, fold)...)
		}

		timer := 0
		if alg.Pauses() > 0 {
			timer = timerBits
		}

		for _, g := range geometries {
			word, multi := g.width > 1, g.ports > 1

			// Programs are a function of (algorithm, word, multiport)
			// only; lint them at the geometry where each combination
			// first appears to avoid duplicate artifacts.
			prog, err := cachedProgram(alg, word, multi)
			if err != nil {
				return nil, fmt.Errorf("lint: assemble %s/%s: %w", name, g.name, err)
			}
			rep.Artifacts++
			rep.Add(CheckProgram(fmt.Sprintf("ucode:%s/%s", name, g.name), prog)...)

			for _, arch := range archs {
				for _, unit := range []bool{false, true} {
					nl, err := cachedNetlist(arch, alg, prog, g, unit, timer)
					if err != nil {
						return nil, fmt.Errorf("lint: build %v/%s/%s: %w", arch, name, g.name, err)
					}
					mode := "ctrl"
					if unit {
						mode = "unit"
					}
					artifact := fmt.Sprintf("netlist:%v/%s/%s/%s", arch, name, g.name, mode)
					rep.Artifacts++
					rep.Add(CheckNetlist(artifact, nl)...)
				}
			}
		}
	}
	rep.Sort()
	return rep, nil
}

// Synthesised matrix artifacts are content-addressed in the artifact
// cache and shared across Matrix calls: one full-matrix lint
// synthesises ~400 netlists (~6s), and the grading service fields
// repeated lint requests against the same matrix. Netlists are
// read-only after construction — every Check* pass uses the traversal
// accessors — so sharing is safe. The netlist cache's limit is sized
// to hold one full default matrix (8 algorithms × 4 architectures × 3
// geometries × {ctrl,unit} = 192 cells) without flushing.
type progKey struct {
	algFP       uint64
	word, multi bool
}

var progCache = artifact.New[progKey, *microbist.Program]("lint.program", 0)

func cachedProgram(alg march.Algorithm, word, multi bool) (*microbist.Program, error) {
	return progCache.Get(progKey{algFP: march.Fingerprint(alg), word: word, multi: multi},
		func() (*microbist.Program, error) {
			return microbist.Assemble(alg, microbist.AssembleOpts{WordOriented: word, Multiport: multi})
		})
}

type netKey struct {
	algFP                  uint64
	arch                   Arch
	addrBits, width, ports int
	unit                   bool
	timer                  int
}

var netCache = artifact.New[netKey, *netlist.Netlist]("lint.netlist", 256)

func cachedNetlist(arch Arch, alg march.Algorithm, prog *microbist.Program, g geometry, datapath bool, timer int) (*netlist.Netlist, error) {
	key := netKey{
		algFP: march.Fingerprint(alg), arch: arch,
		addrBits: g.addrBits, width: g.width, ports: g.ports,
		unit: datapath, timer: timer,
	}
	return netCache.Get(key, func() (*netlist.Netlist, error) {
		return buildNetlist(arch, alg, prog, g, datapath, timer)
	})
}

// buildNetlist synthesises one matrix cell.
func buildNetlist(arch Arch, alg march.Algorithm, prog *microbist.Program, g geometry, datapath bool, timer int) (*netlist.Netlist, error) {
	switch arch {
	case Microcode, MicrocodeScan:
		hw, err := microbist.BuildHardware(prog, microbist.HWConfig{
			AddrBits: g.addrBits, Width: g.width, Ports: g.ports,
			ScanOnlyStorage: arch == MicrocodeScan,
			IncludeDatapath: datapath, DelayTimerBits: timer,
		})
		if err != nil {
			return nil, err
		}
		return hw.Netlist, nil
	case ProgFSM:
		p, err := fsmbist.Compile(alg, fsmbist.CompileOpts{WordOriented: g.width > 1, Multiport: g.ports > 1})
		if err != nil {
			return nil, err
		}
		hw, err := fsmbist.BuildHardware(p, fsmbist.HWConfig{
			AddrBits: g.addrBits, Width: g.width, Ports: g.ports,
			IncludeDatapath: datapath, DelayTimerBits: timer,
		})
		if err != nil {
			return nil, err
		}
		return hw.Netlist, nil
	case Hardwired:
		c, err := hardbist.Generate(alg, hardbist.Config{
			WordOriented: g.width > 1, Multiport: g.ports > 1,
			AddrBits: g.addrBits, Width: g.width, Ports: g.ports,
			IncludeDatapath: datapath, DelayTimerBits: timer,
		})
		if err != nil {
			return nil, err
		}
		return c.Synthesise()
	}
	return nil, fmt.Errorf("lint: unknown architecture %v", arch)
}
