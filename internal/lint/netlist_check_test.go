package lint

import (
	"fmt"
	"testing"

	"repro/internal/netlist"
)

func TestCombLoopDetected(t *testing.T) {
	nl := netlist.New("loop")
	a := nl.AddInput("a")
	x := nl.Add(netlist.CellAnd2, a, a)
	y := nl.Add(netlist.CellOr2, x, a)
	nl.SetGateInput(x, 1, y) // close the cycle x -> y -> x
	nl.AddOutput("out", y)

	fs := CheckNetlist("test", nl)
	wantCheck(t, fs, "comb-loop", 1)
	for _, f := range fs {
		if f.Check == "comb-loop" && f.Severity != Error {
			t.Errorf("comb-loop severity = %v, want Error", f.Severity)
		}
	}
}

func TestCombLoopSelfEdge(t *testing.T) {
	nl := netlist.New("self")
	a := nl.AddInput("a")
	x := nl.Add(netlist.CellAnd2, a, a)
	nl.SetGateInput(x, 1, x) // gate feeds itself
	nl.AddOutput("out", x)

	wantCheck(t, CheckNetlist("test", nl), "comb-loop", 1)
}

func TestFlipFlopBreaksLoop(t *testing.T) {
	// A feedback path through a DFF is sequential, not a comb loop.
	nl := netlist.New("seq")
	q := nl.AddFF(netlist.CellDFF, nl.Const0(), false)
	nl.SetFFInput(q, nl.Add(netlist.CellInv, q))
	nl.AddOutput("out", q)

	wantCheck(t, CheckNetlist("test", nl), "comb-loop", 0)
}

func TestDanglingNet(t *testing.T) {
	nl := netlist.New("dangle")
	a := nl.AddInput("a")
	nl.AddOutput("out", nl.Add(netlist.CellBuf, a))
	orphan := nl.NewNet()
	nl.SetNetName(orphan, "forgotten")

	wantCheck(t, CheckNetlist("test", nl), "dangling-net", 1)
}

func TestUndrivenNet(t *testing.T) {
	nl := netlist.New("undriven")
	a := nl.AddInput("a")
	hole := nl.NewNet()
	nl.AddOutput("out", nl.Add(netlist.CellAnd2, a, hole))

	wantCheck(t, CheckNetlist("test", nl), "undriven-net", 1)
}

func TestUndrivenOutputBinding(t *testing.T) {
	nl := netlist.New("undriven-out")
	nl.AddOutput("out", nl.NewNet())

	wantCheck(t, CheckNetlist("test", nl), "undriven-net", 1)
}

func TestUnusedInput(t *testing.T) {
	nl := netlist.New("unused")
	a := nl.AddInput("a")
	nl.AddInput("b") // never read
	nl.AddOutput("out", nl.Add(netlist.CellBuf, a))

	fs := CheckNetlist("test", nl)
	wantCheck(t, fs, "unused-input", 1)
}

func TestInputBoundToOutputNotUnused(t *testing.T) {
	// A feed-through input (bound straight to an output) is used.
	nl := netlist.New("feedthrough")
	a := nl.AddInput("a")
	nl.AddOutput("out", a)

	wantCheck(t, CheckNetlist("test", nl), "unused-input", 0)
}

func TestDeadLogic(t *testing.T) {
	nl := netlist.New("dead")
	a := nl.AddInput("a")
	nl.AddOutput("out", nl.Add(netlist.CellBuf, a))
	nl.Add(netlist.CellInv, a) // outside every output cone

	wantCheck(t, CheckNetlist("test", nl), "dead-logic", 1)
}

func TestFrozenFlopIdentity(t *testing.T) {
	nl := netlist.New("frozen")
	q := nl.AddFF(netlist.CellDFF, nl.Const0(), false)
	nl.SetFFInput(q, q)
	nl.AddOutput("out", q)

	wantCheck(t, CheckNetlist("test", nl), "frozen-flop", 1)
}

func TestFrozenFlopConstD(t *testing.T) {
	nl := netlist.New("const-d")
	q := nl.AddFF(netlist.CellDFF, nl.Const1(), false)
	nl.AddOutput("out", q)

	wantCheck(t, CheckNetlist("test", nl), "frozen-flop", 1)
}

func TestScanCellSelfLoopExempt(t *testing.T) {
	// Scan-only storage intentionally holds its value on the functional
	// clock (it changes through the scan chain), so D == Q is fine.
	nl := netlist.New("scan")
	q := nl.AddFF(netlist.CellSODFF, nl.Const0(), false)
	nl.SetFFInput(q, q)
	nl.AddOutput("out", q)

	wantCheck(t, CheckNetlist("test", nl), "frozen-flop", 0)
}

func TestCounterBitNotFrozen(t *testing.T) {
	// Free-running counter bit: D = Inv(Q) is live toggling, not frozen.
	nl := netlist.New("toggle")
	q := nl.AddFF(netlist.CellDFF, nl.Const0(), false)
	nl.SetFFInput(q, nl.Add(netlist.CellInv, q))
	nl.AddOutput("out", q)

	wantCheck(t, CheckNetlist("test", nl), "frozen-flop", 0)
}

func TestConstructionErrorsReported(t *testing.T) {
	nl := netlist.New("bad-build")
	nl.CollectErrors(true)
	a := nl.AddInput("a")
	x := nl.Add(netlist.CellBuf, a)
	nl.AddInto(x, netlist.CellInv, a) // duplicate driver
	nl.Add(netlist.CellAnd2, a)       // arity violation
	nl.AddOutput("out", x)

	fs := CheckNetlist("test", nl)
	if got := checks(fs)["construction"]; got < 2 {
		t.Errorf("%d construction findings, want >= 2; all: %v", got, fs)
	}
	for _, f := range fs {
		if f.Check == "construction" && f.Severity != Error {
			t.Errorf("construction severity = %v, want Error", f.Severity)
		}
	}
}

func TestCleanNetlistHasNoFindings(t *testing.T) {
	nl := netlist.New("clean")
	en := nl.AddInput("en")
	c := nl.BuildCounter("cnt", 3, en, netlist.Invalid, netlist.Invalid)
	nl.AddOutput("terminal", c.Terminal)
	for i, q := range c.Q {
		nl.AddOutput(fmt.Sprintf("q[%d]", i), q)
	}
	nl.SweepDead()

	if fs := CheckNetlist("test", nl); len(fs) != 0 {
		t.Errorf("clean counter netlist has findings: %v", fs)
	}
}
