package lint

import (
	"strings"
	"testing"
)

// TestMatrixIsClean is the PR's headline acceptance check: every
// artifact of the full synthesised matrix — all four architectures, the
// whole march library, all three geometries, controller and full unit —
// passes every design rule with zero findings.
func TestMatrixIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix lint is slow")
	}
	rep, err := Matrix(MatrixOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("matrix has findings:\n%s", rep.Text())
	}
	// 4 archs x 3 geometries x {ctrl, unit} = 24 netlists per algorithm,
	// plus marches, folds and per-geometry programs; anything below a few
	// hundred artifacts means an axis silently dropped out.
	if rep.Artifacts < 300 {
		t.Errorf("matrix examined only %d artifacts", rep.Artifacts)
	}
}

func TestMatrixFilters(t *testing.T) {
	rep, err := Matrix(MatrixOpts{Algorithms: []string{"marchc"}, Archs: []Arch{Hardwired}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("filtered matrix has findings:\n%s", rep.Text())
	}
	// 1 march + 1 fold (March C folds) + 3 programs + 3 geometries x
	// {ctrl, unit} netlists.
	if want := 1 + 1 + 3 + 6; rep.Artifacts != want {
		t.Errorf("filtered matrix examined %d artifacts, want %d", rep.Artifacts, want)
	}
}

func TestMatrixUnknownAlgorithm(t *testing.T) {
	if _, err := Matrix(MatrixOpts{Algorithms: []string{"no-such-march"}}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestArchNames(t *testing.T) {
	for _, a := range Architectures() {
		if s := a.String(); s == "" || strings.HasPrefix(s, "arch(") {
			t.Errorf("Arch %d has no name", int(a))
		}
	}
	if s := Arch(99).String(); s != "arch(99)" {
		t.Errorf("out-of-range Arch renders as %q", s)
	}
}
