package lint

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenReport is deliberately added out of order: the reporters must
// sort before rendering so output is byte-stable run to run.
func goldenReport() *Report {
	r := &Report{Artifacts: 5}
	r.Add(
		finding(Warning, "unused-input", "netlist:hardwired/marchc/bit/ctrl", "primary input delay_done drives nothing"),
		finding(Error, "comb-loop", "netlist:fsm/marchx/word/unit", "combinational loop through 2 gates: a(AND2), b(OR2)"),
		finding(Error, "non-termination", "ucode:marchy/bit", "hold at instruction 3 never advances the address generator (AddrInc clear)"),
		finding(Info, "single-polarity", "march:demo", "all 2 writes use polarity 0: the complement cell state is never established"),
		finding(Warning, "dead-logic", "netlist:fsm/marchx/word/unit", "1 instances outside every output cone: n9(INV)"),
	)
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s does not match golden file:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestTextReportGolden(t *testing.T) {
	checkGolden(t, "report.txt", []byte(goldenReport().Text()))
}

func TestJSONReportGolden(t *testing.T) {
	b, err := goldenReport().JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.json", b)
}

// TestReportersAreByteStable renders twice from independently built
// reports and demands identical bytes — the property CI diffs rely on.
func TestReportersAreByteStable(t *testing.T) {
	if goldenReport().Text() != goldenReport().Text() {
		t.Error("Text() is not deterministic")
	}
	a, err := goldenReport().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := goldenReport().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("JSON() is not deterministic")
	}
}
