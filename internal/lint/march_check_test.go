package lint

import (
	"testing"

	"repro/internal/march"
)

func TestMarchInvalid(t *testing.T) {
	bad := march.Algorithm{Name: "bad", Elements: []march.Element{
		{Order: march.Any},
	}}
	wantCheck(t, CheckMarch("test", bad), "march-invalid", 1)
}

func TestDuplicateAdjacentElement(t *testing.T) {
	a := march.Algorithm{Name: "dup", Elements: []march.Element{
		{Order: march.Any, Ops: []march.Op{march.W(false)}},
		{Order: march.Up, Ops: []march.Op{march.R(false)}},
		{Order: march.Up, Ops: []march.Op{march.R(false)}},
	}}
	wantCheck(t, CheckMarch("test", a), "duplicate-element", 1)
}

func TestNonAdjacentRepeatsAreNormal(t *testing.T) {
	// March C (11N) legitimately runs ⇕(r0) twice, separated by other
	// work; only back-to-back repeats are suspicious.
	a := march.MarchCOriginal()
	wantCheck(t, CheckMarch("test", a), "duplicate-element", 0)
}

func TestSinglePolarity(t *testing.T) {
	a := march.Algorithm{Name: "mono", Elements: []march.Element{
		{Order: march.Any, Ops: []march.Op{march.W(false)}},
		{Order: march.Up, Ops: []march.Op{march.R(false), march.W(false)}},
	}}
	wantCheck(t, CheckMarch("test", a), "single-polarity", 1)
}

func TestFoldRange(t *testing.T) {
	a := march.Algorithm{Name: "short", Elements: []march.Element{
		{Order: march.Any, Ops: []march.Op{march.W(false)}},
		{Order: march.Up, Ops: []march.Op{march.R(false)}},
	}}
	fs := CheckFold("test", a, march.Fold{Start: 0, Len: 5, Mask: march.Mask{Data: true}})
	wantCheck(t, fs, "fold-range", 1)
}

func TestFoldMaskMismatch(t *testing.T) {
	a := march.Algorithm{Name: "fold", Elements: []march.Element{
		{Order: march.Up, Ops: []march.Op{march.W(false)}},
		{Order: march.Up, Ops: []march.Op{march.W(true)}},
	}}
	good := march.Fold{Start: 0, Len: 1, Mask: march.Mask{Data: true}}
	if fs := CheckFold("test", a, good); len(fs) != 0 {
		t.Fatalf("consistent fold has findings: %v", fs)
	}
	// A doctored mask maps element 0 to ⇓(w0), which element 1 is not.
	bad := march.Fold{Start: 0, Len: 1, Mask: march.Mask{Order: true}}
	wantCheck(t, CheckFold("test", a, bad), "fold-mask", 1)
}

func TestLibraryMarchesAndFoldsAreClean(t *testing.T) {
	for name, mk := range march.Library() {
		a := mk()
		if fs := CheckMarch(name, a); len(fs) != 0 {
			t.Errorf("%s: library algorithm has findings: %v", name, fs)
		}
		if _, fold, ok := a.Folded(); ok {
			if fs := CheckFold(name, a, fold); len(fs) != 0 {
				t.Errorf("%s: detected fold fails verification: %v", name, fs)
			}
		}
	}
}
