package lint

import (
	"encoding/json"
	"testing"
)

func TestSeverityStrings(t *testing.T) {
	cases := []struct {
		s    Severity
		want string
	}{
		{Info, "info"},
		{Warning, "warning"},
		{Error, "error"},
		{Severity(9), "severity(9)"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("Severity(%d).String() = %q, want %q", int(c.s), got, c.want)
		}
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, s := range []Severity{Info, Warning, Error} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal %v: %v", s, err)
		}
		var back Severity
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != s {
			t.Errorf("round trip %v -> %s -> %v", s, b, back)
		}
	}
	var s Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &s); err == nil {
		t.Error("unmarshal of unknown severity succeeded")
	}
}

func TestReportCountsAndSort(t *testing.T) {
	r := &Report{Artifacts: 2}
	r.Add(
		finding(Warning, "z-check", "b:artifact", "later"),
		finding(Error, "a-check", "b:artifact", "mid"),
		finding(Info, "a-check", "a:artifact", "first"),
	)
	if r.Count(Error) != 1 || r.Count(Warning) != 1 || r.Count(Info) != 1 {
		t.Fatalf("counts = %d/%d/%d, want 1/1/1", r.Count(Error), r.Count(Warning), r.Count(Info))
	}
	if !r.HasErrors() {
		t.Fatal("HasErrors = false with one error finding")
	}
	r.Sort()
	order := []string{"a:artifact", "b:artifact", "b:artifact"}
	for i, f := range r.Findings {
		if f.Artifact != order[i] {
			t.Errorf("finding %d artifact = %s, want %s", i, f.Artifact, order[i])
		}
	}
	if r.Findings[1].Check != "a-check" || r.Findings[2].Check != "z-check" {
		t.Errorf("secondary sort by check broken: %v", r.Findings)
	}
}

func TestEmptyReportJSONHasFindingsArray(t *testing.T) {
	r := &Report{Artifacts: 1}
	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Findings []Finding `json:"findings"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Findings == nil {
		t.Errorf("empty report serialises findings as null, want []: %s", b)
	}
}

// checks returns the set of check slugs present in the findings.
func checks(fs []Finding) map[string]int {
	m := map[string]int{}
	for _, f := range fs {
		m[f.Check]++
	}
	return m
}

// wantCheck fails the test unless exactly want findings carry the slug.
func wantCheck(t *testing.T, fs []Finding, slug string, want int) {
	t.Helper()
	if got := checks(fs)[slug]; got != want {
		t.Errorf("%d findings for check %s, want %d; all: %v", got, slug, want, fs)
	}
}
