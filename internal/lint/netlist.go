package lint

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// CheckNetlist runs the netlist design-rule checks and returns the
// findings, tagged with the given artifact label. The checks are purely
// structural:
//
//	construction     errors collected during CollectErrors-mode build
//	multi-driven     a net driven by an instance and an input/constant
//	undriven-net     an instance input or output port with no driver
//	comb-loop        a combinational cycle (SCC excluding flip-flops)
//	dead-logic       instances outside every output's fanin cone
//	unused-input     a primary input nothing reads
//	dangling-net     a named net with no driver and no readers
//	frozen-flop      a DFF whose D is its own Q or a constant — the
//	                 state can never leave its reset value (scan-loaded
//	                 SDFF/SODFF cells are exempt: they change through
//	                 the scan chain, not the functional clock)
func CheckNetlist(artifact string, nl *netlist.Netlist) []Finding {
	var fs []Finding

	for _, err := range nl.ConstructionErrors() {
		fs = append(fs, finding(Error, "construction", artifact, "%v", err))
	}

	insts := nl.Instances()
	fan := nl.FanoutMap()

	// Driven-net map shared by several checks.
	driven := make(map[netlist.NetID]bool)
	for _, id := range nl.Inputs() {
		driven[id] = true
	}
	outNames, outIDs := nl.OutputBindings()
	isOutput := make(map[netlist.NetID]bool, len(outIDs))
	for _, id := range outIDs {
		isOutput[id] = true
	}
	constNet := func(id netlist.NetID) bool { c, _ := nl.IsConst(id); return c }
	for i, inst := range insts {
		if driven[inst.Out] || constNet(inst.Out) {
			fs = append(fs, finding(Error, "multi-driven", artifact,
				"net %s driven by instance %d (%s) and another driver", nl.NetName(inst.Out), i, inst.Kind))
		}
		driven[inst.Out] = true
	}
	if c0, ok := constDriven(nl); ok {
		driven[c0] = true
	}
	if c1, ok := constDriven1(nl); ok {
		driven[c1] = true
	}

	// Undriven nets read by instances or bound to outputs.
	undriven := map[string]bool{}
	for i, inst := range insts {
		for pin, in := range inst.In {
			if !driven[in] {
				fs = append(fs, finding(Error, "undriven-net", artifact,
					"instance %d (%s) pin %d reads undriven net %s", i, inst.Kind, pin, nl.NetName(in)))
				undriven[nl.NetName(in)] = true
			}
		}
	}
	for i, id := range outIDs {
		if !driven[id] {
			fs = append(fs, finding(Error, "undriven-net", artifact,
				"output %s bound to undriven net %s", outNames[i], nl.NetName(id)))
		}
	}

	fs = append(fs, combLoops(artifact, nl)...)

	// Dead logic: backward reachability from the primary outputs — the
	// same cone SweepDead keeps, so generated netlists are clean.
	live := make(map[netlist.NetID]bool)
	var stack []netlist.NetID
	for _, id := range outIDs {
		if !live[id] {
			live[id] = true
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d := nl.Driver(id); d >= 0 {
			for _, in := range insts[d].In {
				if !live[in] {
					live[in] = true
					stack = append(stack, in)
				}
			}
		}
	}
	var deadNames []string
	for _, inst := range insts {
		if !live[inst.Out] {
			deadNames = append(deadNames, fmt.Sprintf("%s(%s)", nl.NetName(inst.Out), inst.Kind))
		}
	}
	if len(deadNames) > 0 {
		sort.Strings(deadNames)
		fs = append(fs, finding(Warning, "dead-logic", artifact,
			"%d instances outside every output cone: %s", len(deadNames), nameList(deadNames, 6)))
	}

	// Unused primary inputs.
	for _, id := range nl.Inputs() {
		if len(fan[id]) == 0 && !isOutput[id] {
			fs = append(fs, finding(Warning, "unused-input", artifact,
				"primary input %s drives nothing", nl.NetName(id)))
		}
	}

	// Dangling named nets: carry a debug name yet have no driver and no
	// readers — typically a net someone allocated and forgot to wire.
	// Ports and constants are exempt (constants are tie cells).
	for _, id := range nl.NamedNets() {
		if driven[id] || constNet(id) || isOutput[id] || nl.IsInput(id) {
			continue
		}
		if len(fan[id]) > 0 {
			continue // read but undriven: already an undriven-net error
		}
		name, _ := nl.NameOf(id)
		fs = append(fs, finding(Warning, "dangling-net", artifact,
			"named net %s has no driver and no readers", name))
	}

	// Frozen flip-flops.
	for i, inst := range insts {
		if inst.Kind != netlist.CellDFF {
			continue // combinational, or scan-loaded storage
		}
		d := inst.In[0]
		switch {
		case d == inst.Out:
			fs = append(fs, finding(Warning, "frozen-flop", artifact,
				"DFF %d output %s feeds back to its own D: state frozen at reset value", i, nl.NetName(inst.Out)))
		case constNet(d):
			fs = append(fs, finding(Warning, "frozen-flop", artifact,
				"DFF %d output %s has constant D input: state fixed after one cycle", i, nl.NetName(inst.Out)))
		}
	}

	return fs
}

// combLoops finds combinational cycles: strongly connected components of
// the gate graph restricted to combinational instances (flip-flops cut
// the graph). Each SCC with more than one node, or with a self edge,
// becomes one Error finding.
func combLoops(artifact string, nl *netlist.Netlist) []Finding {
	insts := nl.Instances()

	// adjacency over combinational instance indices
	comb := make([]bool, len(insts))
	for i, inst := range insts {
		comb[i] = !inst.Kind.IsSequential()
	}
	succ := make([][]int, len(insts))
	selfEdge := make([]bool, len(insts))
	for i, inst := range insts {
		if !comb[i] {
			continue
		}
		for _, in := range inst.In {
			d := nl.Driver(in)
			if d < 0 || !comb[d] {
				continue
			}
			if d == i {
				selfEdge[i] = true
			}
			succ[d] = append(succ[d], i)
		}
	}

	// Iterative Tarjan SCC.
	const unvisited = -1
	index := make([]int, len(insts))
	low := make([]int, len(insts))
	onStack := make([]bool, len(insts))
	for i := range index {
		index[i] = unvisited
	}
	var sccStack []int
	counter := 0
	var fs []Finding

	report := func(scc []int) {
		if len(scc) == 1 && !selfEdge[scc[0]] {
			return
		}
		names := make([]string, len(scc))
		for i, v := range scc {
			names[i] = fmt.Sprintf("%s(%s)", nl.NetName(insts[v].Out), insts[v].Kind)
		}
		sort.Strings(names)
		fs = append(fs, finding(Error, "comb-loop", artifact,
			"combinational loop through %d gates: %s", len(scc), nameList(names, 8)))
	}

	type frame struct {
		v, next int
	}
	for start := range insts {
		if !comb[start] || index[start] != unvisited {
			continue
		}
		stack := []frame{{v: start}}
		index[start], low[start] = counter, counter
		counter++
		sccStack = append(sccStack, start)
		onStack[start] = true
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(succ[f.v]) {
				w := succ[f.v][f.next]
				f.next++
				if index[w] == unvisited {
					index[w], low[w] = counter, counter
					counter++
					sccStack = append(sccStack, w)
					onStack[w] = true
					stack = append(stack, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// post-order: pop
			v := f.v
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := &stack[len(stack)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int
				for {
					w := sccStack[len(sccStack)-1]
					sccStack = sccStack[:len(sccStack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				report(scc)
			}
		}
	}
	return fs
}

// constDriven reports the const-0 net when it has been materialised.
func constDriven(nl *netlist.Netlist) (netlist.NetID, bool) {
	for id := netlist.NetID(1); int(id) <= nl.NumNets(); id++ {
		if c, v := nl.IsConst(id); c && !v {
			return id, true
		}
	}
	return netlist.Invalid, false
}

func constDriven1(nl *netlist.Netlist) (netlist.NetID, bool) {
	for id := netlist.NetID(1); int(id) <= nl.NumNets(); id++ {
		if c, v := nl.IsConst(id); c && v {
			return id, true
		}
	}
	return netlist.Invalid, false
}
