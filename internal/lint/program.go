package lint

import (
	"repro/internal/microbist"
)

// CheckProgram statically analyses a microcode program: control-flow
// sanity (targets in range, reachability), field-encoding legality, and
// a bounded-termination proof by abstract interpretation of the loop
// structure — no instruction is ever executed here.
//
// The termination argument is a lexicographic ranking over the
// controller's counters (port > data background > repeat bit > address
// > pc). Every backward edge of the control-flow graph strictly
// decreases one component while leaving the higher ones unchanged:
//
//   - a Hold self-loop or a LoopBack-to-Save loop advances the address
//     generator, provided some instruction in the loop sets AddrInc —
//     the address sweep is finite, so the loop exits at Last Address;
//   - a Repeat branch is guarded by the repeat-loop bit: the first pass
//     sets it, the re-execution clears it and falls through, so the
//     branch is taken at most once per outer iteration;
//   - a LoopData branch steps the background generator (its DataInc
//     field gates the step in hardware), and the background sequence is
//     finite;
//   - a LoopPort branch steps the port selector, and ports are finite.
//
// A loop that fails its side of the argument (Hold without AddrInc, a
// LoopBack interval with no AddrInc, LoopData without DataInc) can
// never leave the loop and is reported as a non-termination error.
func CheckProgram(artifact string, p *microbist.Program) []Finding {
	var fs []Finding
	n := len(p.Instructions)
	if n == 0 {
		return []Finding{finding(Error, "empty-program", artifact, "program has no instructions")}
	}
	if p.Source != nil && len(p.Source) != n {
		fs = append(fs, finding(Error, "source-map", artifact,
			"source map has %d entries for %d instructions", len(p.Source), n))
	}

	// Per-instruction encoding legality.
	for i, in := range p.Instructions {
		if in.Read && in.Write {
			fs = append(fs, finding(Error, "illegal-encoding", artifact,
				"instruction %d reads and writes simultaneously", i))
		}
		if in.Cond > microbist.CondTerminate {
			fs = append(fs, finding(Error, "illegal-encoding", artifact,
				"instruction %d has undefined condition field %d", i, int(in.Cond)))
		}
	}

	// nearestSave[i] is the index of the closest CondSave before i, or
	// -1. It statically resolves the branch register a LoopBack at i
	// reads (the register is loaded by the Save that opened the current
	// march element).
	nearestSave := make([]int, n)
	save := -1
	for i, in := range p.Instructions {
		nearestSave[i] = save
		if in.Cond == microbist.CondSave {
			save = i
		}
	}

	// Control-flow successors; pcEnd marks a fall-through past the last
	// instruction (the hardware instruction counter would leave the
	// program, so it is an error unless the path is unreachable).
	succ := func(i int) (targets []int, fallsOff bool) {
		step := func(t int) {
			if t >= n {
				fallsOff = true
				return
			}
			targets = append(targets, t)
		}
		in := p.Instructions[i]
		switch in.Cond {
		case microbist.CondNop, microbist.CondSave:
			step(i + 1)
		case microbist.CondHold:
			step(i)
			step(i + 1)
		case microbist.CondLoopBack:
			if s := nearestSave[i]; s >= 0 {
				step(s)
			}
			step(i + 1)
		case microbist.CondRepeat:
			step(1)
			step(i + 1)
		case microbist.CondLoopData:
			step(0)
			step(i + 1)
		case microbist.CondLoopPort:
			step(0) // terminate at last port
		case microbist.CondTerminate:
			// no successors
		default:
			// undefined condition already reported; treat as advance
			step(i + 1)
		}
		return targets, fallsOff
	}

	// Reachability from instruction 0.
	reach := make([]bool, n)
	work := []int{0}
	reach[0] = true
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		ts, _ := succ(i)
		for _, t := range ts {
			if !reach[t] {
				reach[t] = true
				work = append(work, t)
			}
		}
	}
	for i := range p.Instructions {
		if !reach[i] {
			fs = append(fs, finding(Warning, "unreachable-code", artifact,
				"instruction %d is unreachable from instruction 0", i))
		}
	}

	// Jump-target and termination checks on the reachable part.
	for i, in := range p.Instructions {
		if !reach[i] {
			continue
		}
		if _, fallsOff := succ(i); fallsOff {
			fs = append(fs, finding(Error, "fall-off-end", artifact,
				"instruction %d (%s) can advance past the last instruction", i, in.Cond))
		}
		switch in.Cond {
		case microbist.CondHold:
			if !in.AddrInc {
				fs = append(fs, finding(Error, "non-termination", artifact,
					"hold at instruction %d never advances the address generator (AddrInc clear)", i))
			}
		case microbist.CondLoopBack:
			s := nearestSave[i]
			if s < 0 {
				fs = append(fs, finding(Error, "loopback-no-save", artifact,
					"loopback at instruction %d has no preceding save: branch register undefined", i))
				break
			}
			inc := false
			for j := s; j <= i; j++ {
				if p.Instructions[j].AddrInc {
					inc = true
					break
				}
			}
			if !inc {
				fs = append(fs, finding(Error, "non-termination", artifact,
					"loop %d..%d never advances the address generator (no AddrInc in the element)", s, i))
			}
		case microbist.CondRepeat:
			if i < 2 {
				fs = append(fs, finding(Error, "jump-out-of-range", artifact,
					"repeat at instruction %d branches to instruction 1: no block to repeat", i))
			}
		case microbist.CondLoopData:
			if !in.DataInc {
				fs = append(fs, finding(Error, "non-termination", artifact,
					"data loop at instruction %d never steps the background generator (DataInc clear)", i))
			}
		}

		// Field hygiene: flag fields the hardware would act on (or
		// silently ignore) outside their intended instruction.
		if in.DataInc && in.Cond != microbist.CondLoopData {
			fs = append(fs, finding(Warning, "ineffective-field", artifact,
				"instruction %d sets DataInc outside a data loop: the decoder never steps the generator there", i))
		}
		switch in.Cond {
		case microbist.CondRepeat, microbist.CondLoopData, microbist.CondLoopPort, microbist.CondTerminate:
			if in.AddrInc {
				fs = append(fs, finding(Warning, "ineffective-field", artifact,
					"instruction %d sets AddrInc on a flow instruction (%s)", i, in.Cond))
			}
		}
	}

	return fs
}
