package lint

import (
	"repro/internal/march"
)

// CheckMarch runs well-formedness checks on a march algorithm beyond
// Algorithm.Validate:
//
//	march-invalid      Validate failed (read-before-write, polarity
//	                   mismatch, empty element)
//	duplicate-element  two adjacent identical elements — the second
//	                   re-reads or re-writes the same uniform state and
//	                   detects nothing new (identical elements that are
//	                   NOT adjacent are normal: e.g. March C's ⇕(r0))
//	single-polarity    every write uses one polarity, so the complement
//	                   data background is never established
func CheckMarch(artifact string, a march.Algorithm) []Finding {
	var fs []Finding
	if err := a.Validate(); err != nil {
		fs = append(fs, finding(Error, "march-invalid", artifact, "%v", err))
	}

	for i := 1; i < len(a.Elements); i++ {
		if a.Elements[i].Equal(a.Elements[i-1]) {
			fs = append(fs, finding(Warning, "duplicate-element", artifact,
				"elements %d and %d are identical (%s): the repeat adds no coverage", i-1, i, a.Elements[i]))
		}
	}

	wrote0, wrote1 := false, false
	writes := 0
	for _, e := range a.Elements {
		for _, op := range e.Ops {
			if op.Kind == march.Write {
				writes++
				if op.Data {
					wrote1 = true
				} else {
					wrote0 = true
				}
			}
		}
	}
	if writes > 0 && (!wrote0 || !wrote1) {
		pol := "0"
		if wrote1 {
			pol = "1"
		}
		fs = append(fs, finding(Warning, "single-polarity", artifact,
			"all %d writes use polarity %s: the complement cell state is never established", writes, pol))
	}

	return fs
}

// CheckFold verifies a fold descriptor against the algorithm it claims
// to compress: the block [Start+Len, Start+2*Len) must be exactly the
// block [Start, Start+Len) transformed by the mask, element for
// element. The microcode architecture encodes the second block as one
// Repeat instruction, so an inconsistent mask silently runs the wrong
// operations — an Error.
func CheckFold(artifact string, a march.Algorithm, fold march.Fold) []Finding {
	var fs []Finding
	if fold.Start < 0 || fold.Len <= 0 || fold.Start+2*fold.Len > len(a.Elements) {
		return []Finding{finding(Error, "fold-range", artifact,
			"fold [%d,+%d) x2 exceeds the %d-element algorithm", fold.Start, fold.Len, len(a.Elements))}
	}
	for i := 0; i < fold.Len; i++ {
		want := a.Elements[fold.Start+i].Transform(fold.Mask)
		got := a.Elements[fold.Start+fold.Len+i]
		if !got.Equal(want) {
			fs = append(fs, finding(Error, "fold-mask", artifact,
				"element %d is %s but the %s mask maps element %d to %s",
				fold.Start+fold.Len+i, got, fold.Mask, fold.Start+i, want))
		}
	}
	return fs
}
