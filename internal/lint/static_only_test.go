package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestLintIsStaticOnly enforces the package's core contract: the lint
// layer never simulates. It parses every non-test source file and
// rejects (a) imports of the simulation and execution packages, and
// (b) any call to a method named Run — the march, microbist, fsmbist
// and hardbist packages all expose behavioural executors through Run
// methods, so even with their packages imported for type definitions,
// calling Run would turn a static check into a simulation.
func TestLintIsStaticOnly(t *testing.T) {
	forbiddenImports := []string{
		"repro/internal/gatesim",
		"repro/internal/coverage",
		"repro/internal/logicbist",
		"repro/internal/faults",
		"repro/internal/memory",
	}

	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, file := range files {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, file, src, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			for _, bad := range forbiddenImports {
				if path == bad {
					t.Errorf("%s imports %s: the lint layer must stay static", file, path)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name == "Run" {
				pos := fset.Position(call.Pos())
				t.Errorf("%s: call to a Run method — lint analyses artifacts, it does not execute them", pos)
			}
			return true
		})
	}
}
